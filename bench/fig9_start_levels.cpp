// Fig. 9 reproduction: compression-ratio increase rate of QP with
// different level coverage (apply on levels 1..k). Expected shape:
// levels 1-2 carry over 98% of the points and nearly all of the gain;
// adding level 3+ brings modest improvement or degradation.

#include <cstdio>

#include "bench_util.hpp"
#include "compressors/sz3.hpp"

using namespace qip;
using namespace qip::bench;

namespace {

void sweep(const char* name, const Field<float>& f) {
  std::printf("\n--- %s (%s) ---\n", name, f.dims().str().c_str());
  std::printf("%-8s |", "rel_eb");
  for (int ml : {1, 2, 3, 4, 99})
    std::printf("  lvl<=%-3d", ml);
  std::printf("\n");

  for (double rel : {1e-2, 1e-3, 1e-4}) {
    SZ3Config base;
    base.error_bound = abs_eb(f, rel);
    base.auto_fallback = false;
    const auto arc0 = sz3_compress(f.data(), f.dims(), base);
    std::printf("%-8.0e |", rel);
    for (int ml : {1, 2, 3, 4, 99}) {
      SZ3Config c = base;
      c.qp = QPConfig::best_fit();
      c.qp.max_level = ml;
      const auto arc1 = sz3_compress(f.data(), f.dims(), c);
      std::printf(" %+7.1f%%", 100.0 * (static_cast<double>(arc0.size()) /
                                            arc1.size() - 1.0));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  header("Fig. 9: CR increase rate vs QP level coverage (SZ3, 2D Case III)");
  const Field<float> miranda = make_field(
      DatasetId::kMiranda, 1, bench_dims(dataset_spec(DatasetId::kMiranda)), 1);
  const Field<float> segsalt = make_field(
      DatasetId::kSegSalt, 0, bench_dims(dataset_spec(DatasetId::kSegSalt)),
      2000);
  sweep("Miranda Velocityx", miranda);
  sweep("SegSalt Pressure2000", segsalt);
  return 0;
}
