// Fig. 14 reproduction: rate-distortion on the S3D stand-in (double
// precision).

#include "bench_util.hpp"

using namespace qip;
using namespace qip::bench;

int main() {
  const Field<double> f = make_field_f64(
      DatasetId::kS3D, 0, bench_dims(dataset_spec(DatasetId::kS3D)), 3);
  rd_figure("S3D (Fig. 14, double precision)", f);
  return 0;
}
