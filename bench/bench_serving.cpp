// Serving traffic harness for the qipd service: an open-loop load
// generator (Poisson arrivals, mixed codecs, mixed sizes, a
// preview/region mix) that measures jobs/s, p50/p99 latency, and queue
// wait versus worker count and offered load, and writes
// BENCH_serving.json for before/after comparison.
//
//   bench_serving [--jobs N] [--reps-seed S] [--out FILE] [--quick]
//
// Phases:
//   1. capacity probe — closed-loop (blocking admission) run per worker
//      count; its jobs/s is the service capacity and the scaling curve;
//   2. open-loop runs — Poisson arrivals at fixed fractions of the
//      1-worker capacity, reject-on-full admission (open-loop clients
//      don't wait), per-job latency percentiles;
//   3. scheduler A/B — the same saturated run with continuation-priority
//      scheduling on and off, recording caller_drain_share (the share of
//      parallel_for blocks the submitting thread had to drain itself:
//      ~1.0 means intra-job fan-out silently degraded to serial, the
//      defect continuations_jump_queue fixes).
//
// Every served output is hash-checked against a single-threaded direct
// decode of the same bytes; the JSON records the verdict. docs/SERVING.md
// explains how to read the output.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "compressors/sz3.hpp"
#include "parallel/chunked.hpp"
#include "serve/service.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace qip;

namespace {

std::uint64_t fnv1a(std::span<const std::uint8_t> b) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t c : b) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

/// One reusable job description plus the expected output hash from a
/// serial direct run.
struct JobTemplate {
  serve::JobSpec spec;  ///< input spans borrow from Workload storage
  std::uint64_t expect_hash = 0;
};

/// Inputs and archives live here for the whole bench; job specs borrow.
struct Workload {
  std::vector<Field<float>> fields;
  std::vector<std::vector<std::uint8_t>> blobs;  ///< raw dumps + archives
  std::vector<JobTemplate> templates;

  std::span<const std::uint8_t> keep(std::vector<std::uint8_t> b) {
    blobs.push_back(std::move(b));
    return blobs.back();
  }
};

std::span<const std::uint8_t> field_bytes(const Field<float>& f,
                                          Workload& w) {
  std::vector<std::uint8_t> raw(f.size() * sizeof(float));
  std::memcpy(raw.data(), f.data(), raw.size());
  return w.keep(std::move(raw));
}

/// Build the mixed workload: compress jobs (SZ3/QoZ/ZFP, plain and
/// chunked), decompress jobs over the matching archives, and
/// preview/region jobs over a tiled progressive SZ3+QP archive.
Workload build_workload(bool quick) {
  Workload w;
  const std::vector<std::size_t> edges =
      quick ? std::vector<std::size_t>{32, 48}
            : std::vector<std::size_t>{32, 48, 96};
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const std::size_t e = edges[i];
    w.fields.push_back(
        make_field(DatasetId::kMiranda, 0, Dims{e, e, e}, 3 + i));
  }
  // Reserve so spans into `blobs` stay stable while we append.
  w.blobs.reserve(64);

  const char* codecs[] = {"SZ3", "QoZ", "ZFP"};
  for (const Field<float>& f : w.fields) {
    const auto raw = field_bytes(f, w);
    for (const char* codec : codecs) {
      // Compress template.
      JobTemplate t;
      t.spec.kind = serve::JobKind::kCompress;
      t.spec.codec = codec;
      t.spec.input = raw;
      t.spec.dims = f.dims();
      t.spec.options.error_bound = 1e-3;
      const CompressorEntry& e = find_compressor(codec);
      auto arc = e.compress_f32(f.data(), f.dims(), t.spec.options);
      t.expect_hash = fnv1a(arc);
      const auto arc_span = w.keep(std::move(arc));
      w.templates.push_back(t);

      // Matching decompress template, expected bytes from a serial
      // direct decode.
      JobTemplate d;
      d.spec.kind = serve::JobKind::kDecompress;
      d.spec.input = arc_span;
      const Field<float> dec = e.decompress_f32(arc_span);
      std::vector<std::uint8_t> db(dec.size() * sizeof(float));
      std::memcpy(db.data(), dec.data(), db.size());
      d.expect_hash = fnv1a(db);
      w.templates.push_back(d);
    }
    // Chunked SZ3 compress of the same field (exercises slab fan-out).
    {
      JobTemplate t;
      t.spec.kind = serve::JobKind::kCompress;
      t.spec.codec = "SZ3";
      t.spec.chunked = true;
      t.spec.input = raw;
      t.spec.dims = f.dims();
      t.spec.options.error_bound = 1e-3;
      ChunkedOptions co;
      co.compressor = "SZ3";
      co.options = t.spec.options;
      auto arc = chunked_compress(f.data(), f.dims(), co);
      t.expect_hash = fnv1a(arc);
      const auto arc_span = w.keep(std::move(arc));
      w.templates.push_back(t);

      JobTemplate d;
      d.spec.kind = serve::JobKind::kDecompress;
      d.spec.input = arc_span;
      const Field<float> dec = chunked_decompress<float>(arc_span);
      std::vector<std::uint8_t> db(dec.size() * sizeof(float));
      std::memcpy(db.data(), dec.data(), db.size());
      d.expect_hash = fnv1a(db);
      w.templates.push_back(d);
    }
  }

  // Tiled progressive archive for the preview/region mix. Pin the
  // interpolation path: the Lorenzo fallback commits neither a tile
  // directory nor coarse levels, so it can serve neither job kind.
  {
    const Field<float>& f = w.fields[std::min<std::size_t>(1, w.fields.size() - 1)];
    SZ3Config o;
    o.error_bound = 1e-3;
    o.qp = QPConfig::best_fit();
    o.tile_size = 16;
    o.auto_fallback = false;
    const CompressorEntry& e = find_compressor("SZ3");
    const auto arc_span = w.keep(sz3_compress(f.data(), f.dims(), o));

    JobTemplate p;
    p.spec.kind = serve::JobKind::kPreview;
    p.spec.input = arc_span;
    p.spec.level = 1;
    const Field<float> pv = e.decompress_preview_f32(arc_span, 1, nullptr);
    std::vector<std::uint8_t> pb(pv.size() * sizeof(float));
    std::memcpy(pb.data(), pv.data(), pb.size());
    p.expect_hash = fnv1a(pb);
    w.templates.push_back(p);

    JobTemplate r;
    r.spec.kind = serve::JobKind::kRegion;
    r.spec.input = arc_span;
    r.spec.region = Box::whole(f.dims());
    for (int a = 0; a < 3; ++a) {
      r.spec.region.lo[a] = 8;
      r.spec.region.hi[a] = 24;
    }
    const Field<float> rg =
        e.decompress_region_f32(arc_span, r.spec.region, nullptr);
    std::vector<std::uint8_t> rb(rg.size() * sizeof(float));
    std::memcpy(rb.data(), rg.data(), rb.size());
    r.expect_hash = fnv1a(rb);
    w.templates.push_back(r);
  }
  return w;
}

/// A deterministic job sequence: template indices drawn from a seeded
/// generator so every run (and every A/B arm) serves identical traffic.
std::vector<std::size_t> job_sequence(const Workload& w, std::size_t n,
                                      std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, w.templates.size() - 1);
  std::vector<std::size_t> seq(n);
  for (auto& s : seq) s = pick(rng);
  return seq;
}

struct LoadResult {
  std::size_t completed = 0, failed = 0, rejected = 0, mismatched = 0;
  double wall_s = 0;
  double jobs_per_s = 0;
  std::vector<double> latency_s;     ///< admission -> completion
  std::vector<double> queue_wait_s;  ///< admission -> worker pickup
  double caller_drain_share = 0;
  std::uint64_t large_jobs = 0;
  unsigned max_intra_workers = 0;  ///< widest per-job fan-out observed
  std::size_t peak_rss = 0;
};

/// Serve one job sequence. rate > 0: open-loop Poisson arrivals at
/// `rate` jobs/s with reject-on-full admission; rate == 0: closed-loop
/// (submit as fast as admission allows, blocking when the window is
/// full) — the capacity probe.
LoadResult run_load(const Workload& w, const std::vector<std::size_t>& seq,
                    unsigned workers, bool jump, double rate,
                    std::uint64_t seed) {
  serve::ServeOptions so;
  so.workers = workers;
  so.cap_to_hardware = false;  // measure the counts we claim to measure
  so.continuations_jump_queue = jump;
  so.queue_capacity = 32;
  so.policy = rate > 0 ? serve::AdmitPolicy::kReject : serve::AdmitPolicy::kBlock;
  so.large_job_bytes = std::size_t{1} << 20;
  serve::Service svc(so);
  svc.pool().reset_scheduler_stats();

  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> interarrival(rate > 0 ? rate : 1.0);

  struct Pending {
    std::future<serve::JobResult> fut;
    std::size_t tmpl;
  };
  std::vector<Pending> pending;
  pending.reserve(seq.size());
  LoadResult res;

  const auto t0 = std::chrono::steady_clock::now();
  double next_arrival = 0;
  for (std::size_t tmpl : seq) {
    if (rate > 0) {
      next_arrival += interarrival(rng);
      std::this_thread::sleep_until(
          t0 + std::chrono::duration<double>(next_arrival));
    }
    auto fut = svc.submit(w.templates[tmpl].spec);
    if (!fut) {
      ++res.rejected;
      continue;
    }
    pending.push_back({std::move(*fut), tmpl});
  }
  svc.drain();
  res.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                   .count();

  const ThreadPool::SchedulerStats stats = svc.pool().scheduler_stats();
  if (stats.pf_blocks)
    res.caller_drain_share = static_cast<double>(stats.pf_blocks_caller) /
                             static_cast<double>(stats.pf_blocks);
  res.large_jobs = svc.metrics().large_jobs;

  for (Pending& p : pending) {
    const serve::JobResult r = p.fut.get();
    if (!r.metrics.ok) {
      ++res.failed;
      std::fprintf(stderr, "job failed: %s\n", r.metrics.error.c_str());
      continue;
    }
    ++res.completed;
    if (fnv1a(r.bytes) != w.templates[p.tmpl].expect_hash) ++res.mismatched;
    res.max_intra_workers =
        std::max(res.max_intra_workers, r.metrics.intra_workers);
    res.latency_s.push_back(r.metrics.queue_wait_s + r.metrics.service_s);
    res.queue_wait_s.push_back(r.metrics.queue_wait_s);
  }
  res.jobs_per_s =
      res.wall_s > 0 ? static_cast<double>(res.completed) / res.wall_s : 0;
  res.peak_rss = bench::peak_rss_bytes();
  return res;
}

void print_run(std::FILE* out, const char* phase, unsigned workers,
               double offered, bool jump, const LoadResult& r, bool last) {
  std::fprintf(
      out,
      "    {\"phase\": \"%s\", \"workers\": %u, \"offered_jobs_per_s\": %.2f, "
      "\"continuations_jump_queue\": %s,\n"
      "     \"completed\": %zu, \"failed\": %zu, \"rejected\": %zu, "
      "\"output_mismatches\": %zu,\n"
      "     \"wall_s\": %.3f, \"jobs_per_s\": %.2f, "
      "\"p50_latency_s\": %.4f, \"p99_latency_s\": %.4f, "
      "\"p50_queue_wait_s\": %.4f, \"p99_queue_wait_s\": %.4f,\n"
      "     \"large_jobs\": %llu, \"max_intra_workers\": %u, "
      "\"caller_drain_share\": %.3f, "
      "\"peak_rss_bytes\": %zu}%s\n",
      phase, workers, offered, jump ? "true" : "false", r.completed, r.failed,
      r.rejected, r.mismatched, r.wall_s, r.jobs_per_s,
      percentile(r.latency_s, 0.50), percentile(r.latency_s, 0.99),
      percentile(r.queue_wait_s, 0.50), percentile(r.queue_wait_s, 0.99),
      static_cast<unsigned long long>(r.large_jobs), r.max_intra_workers,
      r.caller_drain_share, r.peak_rss, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t njobs = 120;
  std::uint64_t seed = 17;
  std::string out_path = "BENCH_serving.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
      njobs = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (!std::strcmp(argv[i], "--reps-seed") && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_path = argv[++i];
    else if (!std::strcmp(argv[i], "--quick"))
      quick = true;
    else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  if (quick) njobs = std::min<std::size_t>(njobs, 30);

  std::printf("building workload (%s)...\n", quick ? "quick" : "full");
  Workload w = build_workload(quick);
  const std::vector<std::size_t> seq = job_sequence(w, njobs, seed);
  std::printf("%zu job templates, %zu jobs per run\n", w.templates.size(),
              seq.size());

  const std::vector<unsigned> worker_counts =
      quick ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4};

  // Phase 1: closed-loop capacity per worker count.
  std::vector<LoadResult> capacity;
  for (unsigned wc : worker_counts) {
    capacity.push_back(run_load(w, seq, wc, true, 0, seed));
    std::printf("capacity workers=%u: %.2f jobs/s (p99 %.3fs)\n", wc,
                capacity.back().jobs_per_s,
                percentile(capacity.back().latency_s, 0.99));
  }
  const double cap1 = capacity.front().jobs_per_s;

  // Phase 2: open-loop latency at fixed fractions of 1-worker capacity.
  const std::vector<double> load_fracs =
      quick ? std::vector<double>{0.8} : std::vector<double>{0.5, 0.8, 1.2};
  struct OpenRun {
    unsigned workers;
    double offered;
    LoadResult r;
  };
  std::vector<OpenRun> open_runs;
  for (unsigned wc : worker_counts) {
    for (double frac : load_fracs) {
      const double rate = frac * cap1;
      open_runs.push_back({wc, rate, run_load(w, seq, wc, true, rate, seed)});
      const LoadResult& r = open_runs.back().r;
      std::printf(
          "open-loop workers=%u offered=%.2f/s: %.2f jobs/s  p50 %.3fs  "
          "p99 %.3fs  rejected=%zu\n",
          wc, rate, r.jobs_per_s, percentile(r.latency_s, 0.50),
          percentile(r.latency_s, 0.99), r.rejected);
    }
  }

  // Phase 3: scheduler A/B at the largest worker count, closed loop (a
  // standing backlog is exactly the regime where helper tasks queued
  // FIFO-at-the-back starve; see ThreadPool).
  const unsigned ab_workers = worker_counts.back();
  const LoadResult ab_on = run_load(w, seq, ab_workers, true, 0, seed);
  const LoadResult ab_off = run_load(w, seq, ab_workers, false, 0, seed);
  std::printf(
      "A/B workers=%u: continuation-priority %.2f jobs/s "
      "(caller_drain_share %.3f) vs strict FIFO %.2f jobs/s "
      "(caller_drain_share %.3f)\n",
      ab_workers, ab_on.jobs_per_s, ab_on.caller_drain_share,
      ab_off.jobs_per_s, ab_off.caller_drain_share);

  // Large-job probe: one decode-direction job served ALONE on a
  // multi-worker pool must report intra-job fan-out (the whole point of
  // the parallel level walk under serving). The traffic phases can't
  // assert this deterministically — with several large jobs in flight
  // the slab share can legitimately collapse to width 1 — so the probe
  // pins the uncontended case. large_job_bytes = 1 classifies the lone
  // job as large regardless of the workload's sizes (quick mode's
  // fields sit below the production 4 MB threshold).
  unsigned probe_intra = 0;
  {
    serve::ServeOptions so;
    so.workers = ab_workers;
    so.cap_to_hardware = false;
    so.large_job_bytes = 1;
    serve::Service svc(so);
    const JobTemplate* big = nullptr;
    for (const JobTemplate& t : w.templates)
      if (t.spec.kind == serve::JobKind::kDecompress &&
          (!big || t.spec.input.size() > big->spec.input.size()))
        big = &t;
    if (big) {
      auto fut = svc.submit(big->spec);
      if (fut) probe_intra = fut->get().metrics.intra_workers;
    }
  }
  std::printf("large-job probe: workers=%u intra_workers=%u\n", ab_workers,
              probe_intra);

  std::size_t mismatches = ab_on.mismatched + ab_off.mismatched;
  std::size_t failures = ab_on.failed + ab_off.failed;
  for (const LoadResult& r : capacity) {
    mismatches += r.mismatched;
    failures += r.failed;
  }
  for (const OpenRun& o : open_runs) {
    mismatches += o.r.mismatched;
    failures += o.r.failed;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"serving\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"jobs_per_run\": %zu,\n", seq.size());
  std::fprintf(out, "  \"job_templates\": %zu,\n", w.templates.size());
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < capacity.size(); ++i)
    print_run(out, "capacity", worker_counts[i], 0, true, capacity[i], false);
  for (const OpenRun& o : open_runs)
    print_run(out, "open_loop", o.workers, o.offered, true, o.r, false);
  print_run(out, "scheduler_ab", ab_workers, 0, true, ab_on, false);
  print_run(out, "scheduler_ab", ab_workers, 0, false, ab_off, true);
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"scaling\": {\"jobs_per_s\": [");
  for (std::size_t i = 0; i < capacity.size(); ++i)
    std::fprintf(out, "%s%.2f", i ? ", " : "", capacity[i].jobs_per_s);
  std::fprintf(out, "], \"workers\": [");
  for (std::size_t i = 0; i < worker_counts.size(); ++i)
    std::fprintf(out, "%s%u", i ? ", " : "", worker_counts[i]);
  std::fprintf(out,
               "], \"speedup_max_vs_1\": %.3f},\n",
               cap1 > 0 ? capacity.back().jobs_per_s / cap1 : 0);
  std::fprintf(out,
               "  \"large_job_probe\": {\"workers\": %u, "
               "\"intra_workers\": %u},\n",
               ab_workers, probe_intra);
  std::fprintf(out, "  \"all_outputs_bit_identical\": %s,\n",
               mismatches == 0 ? "true" : "false");
  std::fprintf(out, "  \"failed_jobs\": %zu\n", failures);
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf("%s -> %s (mismatches=%zu failed=%zu)\n",
              mismatches == 0 && failures == 0 ? "OK" : "PROBLEMS",
              out_path.c_str(), mismatches, failures);
  return mismatches == 0 && failures == 0 ? 0 : 1;
}
