// Fig. 4 reproduction: Shannon entropy of SZ3's quantization indices by
// slice in the xy / xz / yz planes of SegSalt Pressure2000, sampled at
// stride 2 to isolate the last interpolation level.

#include <cstdio>

#include "bench_util.hpp"
#include "compressors/sz3.hpp"
#include "core/characterize.hpp"

using namespace qip;
using namespace qip::bench;

int main() {
  const auto& spec = dataset_spec(DatasetId::kSegSalt);
  const Dims dims = bench_dims(spec);
  const Field<float> f = make_field(DatasetId::kSegSalt, 0, dims, 2000);

  SZ3Config cfg;
  cfg.error_bound = abs_eb(f, 1e-3);
  cfg.auto_fallback = false;
  SZ3Artifacts art;
  (void)sz3_compress(f.data(), f.dims(), cfg, &art);

  header("Fig. 4: entropy of quantization indices by slice (SZ3, SegSalt "
         "Pressure2000, stride 2)");
  const char* plane_names[] = {"xy (fix z)", "xz (fix y)", "yz (fix x)"};
  for (int axis = 0; axis < 3; ++axis) {
    const auto ent = slice_entropies(art.codes, dims, axis, 2);
    double lo = 1e30, hi = -1e30, sum = 0;
    for (double e : ent) {
      lo = std::min(lo, e);
      hi = std::max(hi, e);
      sum += e;
    }
    std::printf("\nplane %-11s  slices=%zu  min=%.3f  mean=%.3f  max=%.3f\n",
                plane_names[axis], ent.size(), lo, sum / ent.size(), hi);
    // Print a subsampled series (every ~1/16th slice), matching the
    // figure's per-slice curve.
    const std::size_t step = std::max<std::size_t>(1, ent.size() / 16);
    std::printf("  slice:entropy ");
    for (std::size_t s = 0; s < ent.size(); s += step)
      std::printf(" %zu:%.2f", s, ent[s]);
    std::printf("\n");
  }
  return 0;
}
