// Ablation bench for the design choices DESIGN.md calls out (not a paper
// figure): each row isolates one mechanism and reports its effect on the
// archive size at a fixed bound.
//
//  1. QoZ level-wise error bounds (alpha/beta) on/off
//  2. QoZ per-level interpolant tuning on/off
//  3. HPEZ block-wise tuning on/off (heterogeneous field)
//  4. SZ3 Lorenzo fallback on/off (rough field, small bound)
//  5. QP symbol alphabet: compensation vs none at identical traversal
//  6. Future work: QP generalized to SPERR's wavelet indices

#include <cstdio>

#include "bench_util.hpp"
#include "compressors/hpez.hpp"
#include "compressors/qoz.hpp"
#include "compressors/sperr_like.hpp"
#include "compressors/sz3.hpp"

using namespace qip;
using namespace qip::bench;

namespace {

void row(const char* what, std::size_t off_bytes, std::size_t on_bytes) {
  std::printf("%-46s | %10zu | %10zu | %+6.1f%%\n", what, off_bytes, on_bytes,
              100.0 * (static_cast<double>(on_bytes) / off_bytes - 1.0));
}

}  // namespace

int main() {
  header("Ablation: contribution of each design choice (bytes, lower is "
         "better; last column = size change when enabled)");
  std::printf("%-46s | %10s | %10s | %7s\n", "mechanism", "off", "on",
              "delta");

  // 1-2: QoZ tuning mechanisms on the Miranda stand-in.
  {
    const Field<float> f = make_field(DatasetId::kMiranda, 1,
                                      Dims{96, 128, 128}, 1);
    const double eb = abs_eb(f, 1e-3);
    QoZConfig base;
    base.error_bound = eb;
    base.tune_level_eb = false;
    base.alpha = 1.0;
    base.beta = 1.0;
    base.tune_interp = false;
    QoZConfig lvl = base;
    lvl.tune_level_eb = true;
    QoZConfig tune = base;
    tune.tune_interp = true;
    const auto b0 = qoz_compress(f.data(), f.dims(), base).size();
    row("QoZ level-wise error bounds", b0,
        qoz_compress(f.data(), f.dims(), lvl).size());
    row("QoZ per-level interpolant tuning", b0,
        qoz_compress(f.data(), f.dims(), tune).size());
  }

  // 3: HPEZ block tuning on a direction-heterogeneous field.
  {
    Field<float> f(Dims{64, 64, 64});
    for (std::size_t z = 0; z < 64; ++z)
      for (std::size_t y = 0; y < 64; ++y)
        for (std::size_t x = 0; x < 64; ++x)
          f.at(z, y, x) = (x < 32) ? std::sin(0.4f * z) + 0.02f * x +
                                         0.05f * std::sin(0.9f * y)
                                   : std::sin(0.4f * x) + 0.02f * z +
                                         0.05f * std::sin(0.9f * y);
    HPEZConfig off;
    off.error_bound = 1e-4;
    off.tune_blocks = false;
    HPEZConfig on = off;
    on.tune_blocks = true;
    row("HPEZ 32^3 block-wise tuning (hetero field)",
        hpez_compress(f.data(), f.dims(), off).size(),
        hpez_compress(f.data(), f.dims(), on).size());
  }

  // 4: SZ3 Lorenzo fallback on random-walk data at a small bound —
  // strong one-step correlation with no smoothness, the regime where the
  // paper observes SZ3's switch (SegSalt at 1e-5).
  {
    Field<float> f(Dims{64, 64, 64});
    std::uint64_t s = 99;
    float v = 0.f;
    for (std::size_t i = 0; i < f.size(); ++i) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      v += (static_cast<float>(s >> 40) / 8388608.f - 1.f) * 0.01f;
      f[i] = v;
    }
    SZ3Config off;
    off.error_bound = 1e-6;
    off.auto_fallback = false;
    SZ3Config on = off;
    on.auto_fallback = true;
    row("SZ3 sampling-based Lorenzo fallback (rough)",
        sz3_compress(f.data(), f.dims(), off).size(),
        sz3_compress(f.data(), f.dims(), on).size());
  }

  // 5: QP itself at an identical traversal (the headline mechanism).
  {
    const Field<float> f = make_field(DatasetId::kSegSalt, 0,
                                      Dims{128, 128, 96}, 2000);
    SZ3Config off;
    off.error_bound = abs_eb(f, 1e-3);
    off.auto_fallback = false;
    SZ3Config on = off;
    on.qp = QPConfig::best_fit();
    row("QP (2D, Case III, levels 1-2) on SZ3",
        sz3_compress(f.data(), f.dims(), off).size(),
        sz3_compress(f.data(), f.dims(), on).size());
  }

  // 6: future work — QP on the wavelet archetype (helps banded climate
  // data, hurts wavefields; the paper's "not yet adapted" caveat).
  for (auto id : {DatasetId::kCESM, DatasetId::kSegSalt}) {
    const Field<float> f = make_field(id, 0, Dims{64, 128, 128}, 1);
    SPERRConfig off;
    off.error_bound = abs_eb(f, 1e-3);
    SPERRConfig on = off;
    on.index_prediction = true;
    std::string label = std::string("SPERR wavelet-index QP (future work, ") +
                        dataset_spec(id).name + ")";
    row(label.c_str(), sperr_compress(f.data(), f.dims(), off).size(),
        sperr_compress(f.data(), f.dims(), on).size());
  }
  return 0;
}
