// Fig. 18 reproduction: end-to-end parallel data transfer of the 4-D RTM
// stand-in with SZ3 and SZ3+QP, strong-scaling over 225/450/900/1800
// cores on a modeled 461.75 MB/s Globus link (see transfer/pipeline.hpp
// for the substitution notes). The paper reports CRs 21.54 vs 25.06 and
// an overall 1.16x end-to-end gain from QP.

#include <cstdio>

#include "bench_util.hpp"
#include "transfer/pipeline.hpp"

using namespace qip;
using namespace qip::bench;

int main() {
  const auto& spec = dataset_spec(DatasetId::kRTM);
  const Dims dims = bench_dims(spec);
  const Field<float> f = make_field(DatasetId::kRTM, 0, dims, 42);

  header("Fig. 18: end-to-end data transfer, RTM " + dims.str() +
         " (paper scale: " + spec.paper_dims.str() + ")");

  TransferConfig base;
  base.error_bound = 1e-4;
  TransferConfig withqp = base;
  withqp.qp = QPConfig::best_fit();

  TransferReport r0 = run_transfer_pipeline(f, base);
  TransferReport r1 = run_transfer_pipeline(f, withqp);
  std::printf("measured: SZ3 CR %.2f PSNR %.2f | SZ3+QP CR %.2f PSNR %.2f "
              "(%zu slices)\n",
              r0.compression_ratio, r0.psnr, r1.compression_ratio, r1.psnr,
              r0.slice_count);

  // Strong scaling over 225..1800 cores needs more slices than cores;
  // extrapolate the measured per-slice costs to the paper's 3600 time
  // steps (per-slice costs stay measured, volumes scale linearly).
  const double k = 3600.0 / static_cast<double>(r0.slice_count);
  r0 = r0.scaled(k);
  r1 = r1.scaled(k);
  std::printf("extrapolated to %zu slices (x%.0f, paper workload shape)\n",
              r0.slice_count, k);

  std::printf("vanilla transfer (no compression): %.2f s\n",
              r0.vanilla_transfer_seconds());

  std::printf("\n%6s | %-7s | %9s %9s %9s %9s %9s | %9s | %7s\n", "cores",
              "method", "compress", "write", "transfer", "read", "decomp",
              "total", "gain");
  for (unsigned cores : {225u, 450u, 900u, 1800u}) {
    const StageTimes t0 = r0.modeled(cores);
    const StageTimes t1 = r1.modeled(cores);
    std::printf("%6u | %-7s | %9.3f %9.3f %9.3f %9.3f %9.3f | %9.3f |\n",
                cores, "SZ3", t0.compress, t0.write, t0.transfer, t0.read,
                t0.decompress, t0.total());
    std::printf("%6u | %-7s | %9.3f %9.3f %9.3f %9.3f %9.3f | %9.3f | %5.2fx\n",
                cores, "SZ3+QP", t1.compress, t1.write, t1.transfer, t1.read,
                t1.decompress, t1.total(), t0.total() / t1.total());
  }
  std::printf("\n(paper: QP yields ~1.16x end-to-end on 225-1800 cores; the "
              "gain shrinks as link bandwidth grows)\n");
  return 0;
}
