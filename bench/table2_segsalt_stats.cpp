// Table II reproduction: compression statistics on the SegSalt
// Pressure2000 stand-in with every base compressor aligned at PSNR ~75,
// reporting max relative error, PSNR, CR without QP, and CR with QP.
//
// Paper values (for shape comparison, absolute numbers are testbed- and
// data-dependent):
//   MGARD 46.5 -> 54.7, SZ3 119.7 -> 144.3, QoZ 162.6 -> 179.6,
//   HPEZ 277.7 -> 286.6.

#include <cstdio>

#include "bench_util.hpp"

using namespace qip;
using namespace qip::bench;

int main() {
  const auto& spec = dataset_spec(DatasetId::kSegSalt);
  const Dims dims = bench_dims(spec);
  const Field<float> f = make_field(DatasetId::kSegSalt, /*Pressure2000*/ 0,
                                    dims, 2000);

  header("Table II: compression statistics on SegSalt Pressure2000 (" +
         dims.str() + "), all compressors aligned at PSNR ~75");
  std::printf("%-7s | %12s | %8s | %12s | %12s | %7s\n", "comp",
              "max rel err", "PSNR", "CR (orig)", "CR with QP", "dCR%");

  for (const auto* e : qp_base_compressors()) {
    const double eb = find_eb_for_psnr(*e, f, 75.0);
    GenericOptions base;
    base.error_bound = eb;
    GenericOptions withqp = base;
    withqp.qp = QPConfig::best_fit();
    const RunResult r0 = run_once(*e, f, base);
    const RunResult r1 = run_once(*e, f, withqp);
    std::printf("%-7s | %12.5f | %8.2f | %12.2f | %12.2f | %+6.1f%%\n",
                e->name.c_str(), r0.max_rel_err, r0.psnr, r0.cr, r1.cr,
                100.0 * (r1.cr / r0.cr - 1.0));
  }
  return 0;
}
