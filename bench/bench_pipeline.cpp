// Pipeline throughput harness: times every stage of the SZ3+QP pipeline
// (interpolation walk, Huffman, LZB, and the end-to-end archive paths)
// and writes the results to a JSON file for before/after comparison.
//
//   bench_pipeline [nx [ny [nz]]] [--reps N] [--workers W] [--out FILE]
//
// Defaults: 256x256x256 Miranda float field, eb 1e-3, 3 timed
// repetitions after one untimed warm-up. Each stage reports its minimum
// wall time (the noise floor; "seconds"/"bytes_per_s" keep meaning that
// for before/after diffs) plus the median ("median_seconds"), which
// shows whether the minimum was representative. Worker counts sweep
// {1, 2, 4} plus W (default: hardware thread count) when larger; every
// pool is built uncapped, so on undersized machines the multi-worker
// rows measure deliberate oversubscription. Each worker count also gets
// a "forced_seq" A/B row (QIP_INTERP_FORCE_SEQ semantics: the
// interpolation level walk pinned to the sequential path, everything
// else unchanged) re-timing the four interp-bearing stages; the
// workers=1 pair bounds the parallel walk's single-worker overhead.
// All throughputs are relative to the raw input bytes, so stages are
// directly comparable. The archive must be byte-identical across all
// rows; the harness verifies this and records the verdict.
//
// docs/PERFORMANCE.md explains how to read and compare the output.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "compressors/interp_engine.hpp"
#include "compressors/sz3.hpp"
#include "data/synthetic.hpp"
#include "encode/huffman.hpp"
#include "lossless/lzb.hpp"
#include "predict/multilevel.hpp"
#include "simd/dispatch.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace qip;
using bench::Timing;

namespace {

struct StageTimes {
  Timing compress_e2e;
  Timing decompress_e2e;
  Timing interp_enc;
  Timing huffman_enc;
  Timing lzb_enc;
  Timing huffman_dec;
  Timing interp_dec;
  Timing lzb_dec;
};

void print_stages(std::FILE* out, const StageTimes& s, std::size_t bytes,
                  const char* indent, bool interp_only) {
  const struct {
    const char* name;
    Timing t;
    bool interp;  // stage runs through the interpolation level walk
  } rows[] = {{"compress_e2e", s.compress_e2e, true},
              {"decompress_e2e", s.decompress_e2e, true},
              {"interp_enc", s.interp_enc, true},
              {"huffman_enc", s.huffman_enc, false},
              {"lzb_enc", s.lzb_enc, false},
              {"huffman_dec", s.huffman_dec, false},
              {"interp_dec", s.interp_dec, true},
              {"lzb_dec", s.lzb_dec, false}};
  const int n = static_cast<int>(sizeof(rows) / sizeof(rows[0]));
  const int last = interp_only ? 6 : n - 1;  // interp_dec closes seq rows
  for (int i = 0; i < n; ++i) {
    if (interp_only && !rows[i].interp) continue;
    std::fprintf(out,
                 "%s\"%s\": {\"seconds\": %.6f, \"median_seconds\": %.6f, "
                 "\"bytes_per_s\": %.0f}%s\n",
                 indent, rows[i].name, rows[i].t.min_s, rows[i].t.median_s,
                 static_cast<double>(bytes) / rows[i].t.min_s,
                 i < last ? "," : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t nx = 256, ny = 256, nz = 256;
  int reps = 3;
  // Default parallel run: one worker per hardware thread (minimum 2 so
  // the parallel leg is distinct from the serial one even on 1-core
  // machines; the pool is built uncapped below so the count is honored).
  unsigned par_workers = std::max(2u, std::thread::hardware_concurrency());
  std::string out_path = "BENCH_pipeline.json";

  std::vector<std::size_t> extents;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
      par_workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      extents.push_back(static_cast<std::size_t>(std::atoll(argv[i])));
    }
  }
  if (extents.size() >= 1) nx = extents[0];
  ny = extents.size() >= 2 ? extents[1] : nx;
  nz = extents.size() >= 3 ? extents[2] : ny;
  if (reps < 1 || nx == 0 || ny == 0 || nz == 0 || par_workers < 2) {
    std::fprintf(stderr, "bad arguments\n");
    return 2;
  }

  const Dims dims{nx, ny, nz};
  const Field<float> f = make_field(DatasetId::kMiranda, 0, dims, 3);
  const std::size_t bytes = f.size() * sizeof(float);
  const double eb = 1e-3;

  SZ3Config cfg;
  cfg.error_bound = eb;
  cfg.qp = QPConfig::best_fit();

  // Stage inputs, produced once outside the timed region.
  const LevelPlan lp;
  const InterpPlan plan = InterpPlan::uniform(interpolation_level_count(dims), lp);
  LinearQuantizer<float> quant(eb);
  Field<float> work = f.clone();
  const auto res =
      InterpEngine<float>::encode(work.data(), dims, plan, eb, quant, cfg.qp);
  const auto henc = huffman_encode(res.symbols);
  const auto lenc = lzb_compress(henc);

  // The sweep: {1, 2, 4} plus the requested/hardware count when larger,
  // each measured with the parallel level walk allowed and again with
  // it pinned sequential (the A/B the CI gate and the single-worker
  // overhead criterion read).
  std::vector<unsigned> workers = {1u, 2u, 4u};
  if (par_workers > workers.back()) workers.push_back(par_workers);
  struct Row {
    unsigned workers = 1;
    bool forced_seq = false;
    StageTimes s;
    std::size_t rss = 0;
  };
  std::vector<Row> rows;
  for (unsigned w : workers)
    for (bool forced_seq : {false, true})
      rows.push_back({w, forced_seq, {}, 0});

  std::vector<std::uint8_t> reference_arc;
  bool identical = true;

  for (Row& row : rows) {
    // Uncapped: this harness measures the worker counts it claims to,
    // including deliberate oversubscription on small machines.
    ThreadPool pool(row.workers, /*cap_to_hardware=*/false);
    ThreadPool* p = &pool;
    set_interp_force_seq_override(row.forced_seq ? 1 : 0);
    StageTimes& s = row.s;
    SZ3Config wcfg = cfg;
    wcfg.pool = p;

    std::vector<std::uint8_t> arc;
    s.compress_e2e =
        bench::time_reps(reps, [&] { arc = sz3_compress(f.data(), f.dims(), wcfg); });
    if (reference_arc.empty())
      reference_arc = arc;
    else if (arc != reference_arc)
      identical = false;
    s.decompress_e2e =
        bench::time_reps(reps, [&] { (void)sz3_decompress<float>(arc, p); });

    s.interp_enc = bench::time_reps(reps, [&] {
      Field<float> w2 = f.clone();
      LinearQuantizer<float> q(eb);
      (void)InterpEngine<float>::encode(w2.data(), dims, plan, eb, q, cfg.qp,
                                        false, nullptr, nullptr, p);
    });
    // The stage is the decode walk, not the allocator: the output field
    // is constructed (and faulted in) once, outside the timed region.
    Field<float> dec_out(dims);
    s.interp_dec = bench::time_reps(reps, [&] {
      LinearQuantizer<float> q = quant;
      q.reset_cursor();
      InterpEngine<float>::decode(res.symbols, dims, plan, eb, q, cfg.qp,
                                  dec_out.data(), nullptr, 1, p);
    });
    if (!row.forced_seq) {
      // The remaining stages don't route through the level walk; timing
      // them once per worker count keeps A/B rows cheap.
      s.huffman_enc =
          bench::time_reps(reps, [&] { (void)huffman_encode(res.symbols, p); });
      s.lzb_enc = bench::time_reps(reps, [&] { (void)lzb_compress(henc, p); });
      s.huffman_dec =
          bench::time_reps(reps, [&] { (void)huffman_decode(henc, p); });
      s.lzb_dec = bench::time_reps(
          reps, [&] { (void)lzb_decompress(lenc, henc.size(), p); });
    }
    row.rss = bench::peak_rss_bytes();
  }
  set_interp_force_seq_override(-1);

  const double cr = static_cast<double>(bytes) / reference_arc.size();
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"dataset\": \"miranda\",\n");
  std::fprintf(out, "  \"dims\": [%zu, %zu, %zu],\n", nx, ny, nz);
  std::fprintf(out, "  \"dtype\": \"float32\",\n");
  std::fprintf(out, "  \"error_bound\": %.1e,\n", eb);
  std::fprintf(out, "  \"reps\": %d,\n", reps);
  std::fprintf(out, "  \"simd_tier\": \"%s\",\n",
               simd::to_string(simd::active_tier()));
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"input_bytes\": %zu,\n", bytes);
  std::fprintf(out, "  \"archive_bytes\": %zu,\n", reference_arc.size());
  std::fprintf(out, "  \"cr\": %.4f,\n", cr);
  std::fprintf(out, "  \"byte_identical_across_workers\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"workers\": %u, \"interp_walk\": \"%s\", "
                 "\"peak_rss_bytes\": %zu, \"stages\": {\n",
                 row.workers, row.forced_seq ? "forced_seq" : "parallel",
                 row.rss);
    print_stages(out, row.s, bytes, "      ", row.forced_seq);
    std::fprintf(out, "    }}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf("dims=%s bytes=%zu arc=%zu cr=%.2f identical=%s -> %s\n",
              dims.str().c_str(), bytes, reference_arc.size(), cr,
              identical ? "yes" : "NO", out_path.c_str());
  for (const Row& row : rows) {
    const StageTimes& s = row.s;
    std::printf("workers=%u %-10s compress %.3fs (%.1f MB/s)  decompress "
                "%.3fs (%.1f MB/s)  interp enc %.3fs dec %.3fs\n",
                row.workers, row.forced_seq ? "forced_seq" : "parallel",
                s.compress_e2e.min_s, bytes / s.compress_e2e.min_s / 1e6,
                s.decompress_e2e.min_s, bytes / s.decompress_e2e.min_s / 1e6,
                s.interp_enc.min_s, s.interp_dec.min_s);
  }
  return identical ? 0 : 1;
}
