// Fig. 12 reproduction: rate-distortion on the SCALE stand-in. Paper:
// MGARD shows the largest QP improvement on SCALE.

#include "bench_util.hpp"

using namespace qip;
using namespace qip::bench;

int main() {
  const Field<float> f = make_field(
      DatasetId::kScale, 2, bench_dims(dataset_spec(DatasetId::kScale)), 7);
  rd_figure("SCALE (Fig. 12)", f);
  return 0;
}
