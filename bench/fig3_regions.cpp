// Fig. 3 reproduction: selection of clustering regions in SZ3's
// quantization index array on SegSalt Pressure2000. The paper visualizes
// one slice per plane and zooms into three regions whose stage strides
// are 2x2, 1x2 and 1x1 (the three interpolation stages of a level); we
// report the regional entropies and an ASCII rendering of the indices.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "compressors/sz3.hpp"
#include "core/characterize.hpp"

using namespace qip;
using namespace qip::bench;

namespace {

/// ASCII rendering of a region of signed indices, clipped to [-8, 8]
/// like the paper's color scale.
void render_region(const std::vector<std::uint32_t>& codes, const Dims& dims,
                   int fixed_axis, std::size_t slice, std::size_t lo0,
                   std::size_t hi0, std::size_t lo1, std::size_t hi1,
                   std::size_t s0, std::size_t s1) {
  const char* shades = " .:-=+*#%@";
  const int a0 = fixed_axis == 0 ? 1 : 0;
  const int a1 = fixed_axis == 2 ? 1 : 2;
  std::array<std::size_t, kMaxRank> c{0, 0, 0, 0};
  c[fixed_axis] = slice;
  const std::size_t max_rows = 24, max_cols = 64;
  std::size_t rows = 0;
  for (std::size_t i = lo0; i < hi0 && rows < max_rows; i += s0, ++rows) {
    c[a0] = i;
    std::size_t cols = 0;
    for (std::size_t j = lo1; j < hi1 && cols < max_cols; j += s1, ++cols) {
      c[a1] = j;
      const std::int64_t q =
          static_cast<std::int64_t>(codes[dims.index(c[0], c[1], c[2], c[3])]) -
          32768;
      const int mag = static_cast<int>(std::min<std::int64_t>(std::llabs(q), 8));
      std::putchar(q == 0 ? ' ' : shades[1 + mag]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  const auto& spec = dataset_spec(DatasetId::kSegSalt);
  const Dims dims = bench_dims(spec);
  const Field<float> f = make_field(DatasetId::kSegSalt, 0, dims, 2000);

  SZ3Config cfg;
  cfg.error_bound = abs_eb(f, 1e-3);
  cfg.auto_fallback = false;
  SZ3Artifacts art;
  (void)sz3_compress(f.data(), f.dims(), cfg, &art);

  header("Fig. 3: clustering regions of SZ3 quantization indices "
         "(SegSalt Pressure2000, " + dims.str() + ")");

  // Region boxes scaled from the paper's coordinates (at 1008x1008x352)
  // to the bench dims.
  struct Region {
    const char* name;
    int fixed_axis;
    double slice_frac;
    double lo0, hi0, lo1, hi1;  // fractions of the in-plane extents
    std::size_t s0, s1;         // stage strides (2x2 / 1x2 / 2x2 per Fig 5)
  };
  const Region regions[] = {
      {"Region 0 (xy plane, stride 2x2)", 0, 0.60, 0.45, 0.55, 0.05, 0.15, 2, 2},
      {"Region 1 (xz plane, stride 1x2)", 1, 0.22, 0.40, 0.60, 0.05, 0.15, 1, 2},
      {"Region 2 (yz plane, stride 2x2)", 2, 0.15, 0.32, 0.42, 0.50, 0.60, 2, 2},
  };

  for (const auto& rg : regions) {
    const int a0 = rg.fixed_axis == 0 ? 1 : 0;
    const int a1 = rg.fixed_axis == 2 ? 1 : 2;
    const std::size_t slice =
        static_cast<std::size_t>(rg.slice_frac * (dims.extent(rg.fixed_axis) - 1));
    const std::size_t lo0 = static_cast<std::size_t>(rg.lo0 * dims.extent(a0));
    const std::size_t hi0 = static_cast<std::size_t>(rg.hi0 * dims.extent(a0));
    const std::size_t lo1 = static_cast<std::size_t>(rg.lo1 * dims.extent(a1));
    const std::size_t hi1 = static_cast<std::size_t>(rg.hi1 * dims.extent(a1));
    const double ent = region_entropy(art.codes, dims, rg.fixed_axis, slice,
                                      lo0, hi0, lo1, hi1, rg.s0, rg.s1);
    std::printf("\n%s  slice=%zu box=[%zu:%zu, %zu:%zu]  entropy=%.3f bits\n",
                rg.name, slice, lo0, hi0, lo1, hi1, ent);
    render_region(art.codes, dims, rg.fixed_axis, slice, lo0, hi0, lo1, hi1,
                  rg.s0, rg.s1);
  }
  return 0;
}
