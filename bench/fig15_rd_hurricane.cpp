// Fig. 15 reproduction: rate-distortion on the Hurricane stand-in.
// Paper: the weakest dataset for QP (no improvement for MGARD/SZ3/HPEZ).

#include "bench_util.hpp"

using namespace qip;
using namespace qip::bench;

int main() {
  const Field<float> f = make_field(
      DatasetId::kHurricane, 0, bench_dims(dataset_spec(DatasetId::kHurricane)),
      5);
  rd_figure("Hurricane (Fig. 15)", f);
  return 0;
}
