// Fig. 11 reproduction: rate-distortion on the SegSalt stand-in. Paper
// annotation: max 47% CR increase (QoZ at PSNR 108.9); SZ3 switches to
// Lorenzo at the smallest bounds, where QP gains vanish.

#include "bench_util.hpp"

using namespace qip;
using namespace qip::bench;

int main() {
  const Field<float> f = make_field(
      DatasetId::kSegSalt, 0, bench_dims(dataset_spec(DatasetId::kSegSalt)),
      2000);
  rd_figure("SegSalt (Fig. 11)", f);
  return 0;
}
