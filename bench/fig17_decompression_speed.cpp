// Fig. 17 reproduction: decompression speed of the base compressors with
// and without QP. Expected shape: decompression overhead exceeds the
// compression overhead (decompression is faster, so the fixed QP work
// weighs more).

#include <cstdio>

#include "bench_util.hpp"

using namespace qip;
using namespace qip::bench;

int main() {
  header("Fig. 17: decompression speed (MB/s), base vs +QP");
  const struct {
    DatasetId id;
    int field;
    std::uint64_t seed;
  } sets[] = {{DatasetId::kMiranda, 1, 1},
              {DatasetId::kSegSalt, 0, 2000},
              {DatasetId::kScale, 2, 7},
              {DatasetId::kCESM, 0, 11}};

  std::printf("%-9s %-7s %-8s | %10s | %10s | %8s\n", "dataset", "comp",
              "rel_eb", "base MB/s", "+QP MB/s", "overhead");
  for (const auto& s : sets) {
    const auto& spec = dataset_spec(s.id);
    const Field<float> f = make_field(s.id, s.field, bench_dims(spec), s.seed);
    for (const auto* e : qp_base_compressors()) {
      {
        // Warm caches/allocators so the first timed run is not penalized.
        GenericOptions warm;
        warm.error_bound = abs_eb(f, 1e-3);
        run_once(*e, f, warm);
      }
      for (double rel : {1e-3, 1e-4, 1e-5}) {
        GenericOptions base;
        base.error_bound = abs_eb(f, rel);
        GenericOptions withqp = base;
        withqp.qp = QPConfig::best_fit();
        const RunResult r0 = run_once(*e, f, base);
        const RunResult r1 = run_once(*e, f, withqp);
        std::printf("%-9s %-7s %-8.0e | %10.1f | %10.1f | %+7.1f%%\n",
                    spec.name, e->name.c_str(), rel, r0.decompress_mbps,
                    r1.decompress_mbps,
                    100.0 * (r0.decompress_mbps / r1.decompress_mbps - 1.0));
      }
    }
  }
  return 0;
}
