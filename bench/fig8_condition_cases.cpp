// Fig. 8 reproduction: compression-ratio increase rate of QP with
// different gating conditions (Cases I-IV) using the 2D Lorenzo
// predictor. Expected shape: Case III best overall; Case I/II can go
// negative at the extremes; Case IV too conservative.

#include <cstdio>

#include "bench_util.hpp"
#include "compressors/sz3.hpp"

using namespace qip;
using namespace qip::bench;

namespace {

void sweep(const char* name, const Field<float>& f) {
  std::printf("\n--- %s (%s) ---\n", name, f.dims().str().c_str());
  std::printf("%-8s |", "rel_eb");
  for (auto c : {QPCondition::kCaseI, QPCondition::kCaseII,
                 QPCondition::kCaseIII, QPCondition::kCaseIV})
    std::printf(" %9s", to_string(c));
  std::printf("\n");

  for (double rel : {3e-2, 1e-2, 1e-3, 1e-4, 1e-5}) {
    SZ3Config base;
    base.error_bound = abs_eb(f, rel);
    base.auto_fallback = false;
    const auto arc0 = sz3_compress(f.data(), f.dims(), base);
    std::printf("%-8.0e |", rel);
    for (auto cond : {QPCondition::kCaseI, QPCondition::kCaseII,
                      QPCondition::kCaseIII, QPCondition::kCaseIV}) {
      SZ3Config c = base;
      c.qp.enabled = true;
      c.qp.dimension = QPDimension::k2D;
      c.qp.condition = cond;
      c.qp.max_level = 2;
      const auto arc1 = sz3_compress(f.data(), f.dims(), c);
      std::printf(" %+8.1f%%", 100.0 * (static_cast<double>(arc0.size()) /
                                            arc1.size() - 1.0));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  header("Fig. 8: CR increase rate vs QP condition case (SZ3, 2D, levels 1-2)");
  const Field<float> miranda = make_field(
      DatasetId::kMiranda, 1, bench_dims(dataset_spec(DatasetId::kMiranda)), 1);
  const Field<float> segsalt = make_field(
      DatasetId::kSegSalt, 0, bench_dims(dataset_spec(DatasetId::kSegSalt)),
      2000);
  sweep("Miranda Velocityx", miranda);
  sweep("SegSalt Pressure2000", segsalt);
  return 0;
}
