// Fig. 7 reproduction: compression-ratio increase rate of QP with
// different prediction dimensions (1D-Back / 1D-Top / 1D-Left / 2D / 3D)
// on Miranda Velocityx and SegSalt Pressure2000 with SZ3, across error
// bounds. Expected shape: 2D dominates, 1D-Back degrades.

#include <cstdio>

#include "bench_util.hpp"
#include "compressors/sz3.hpp"

using namespace qip;
using namespace qip::bench;

namespace {

void sweep(const char* name, const Field<float>& f) {
  std::printf("\n--- %s (%s) ---\n", name, f.dims().str().c_str());
  std::printf("%-8s |", "rel_eb");
  for (auto d : {QPDimension::k1DBack, QPDimension::k1DTop,
                 QPDimension::k1DLeft, QPDimension::k2D, QPDimension::k3D})
    std::printf(" %9s", to_string(d));
  std::printf("\n");

  for (double rel : {1e-2, 1e-3, 1e-4}) {
    SZ3Config base;
    base.error_bound = abs_eb(f, rel);
    base.auto_fallback = false;
    const auto arc0 = sz3_compress(f.data(), f.dims(), base);
    std::printf("%-8.0e |", rel);
    for (auto d : {QPDimension::k1DBack, QPDimension::k1DTop,
                   QPDimension::k1DLeft, QPDimension::k2D, QPDimension::k3D}) {
      SZ3Config c = base;
      c.qp.enabled = true;
      c.qp.dimension = d;
      c.qp.condition = QPCondition::kCaseIII;
      c.qp.max_level = 2;
      const auto arc1 = sz3_compress(f.data(), f.dims(), c);
      std::printf(" %+8.1f%%", 100.0 * (static_cast<double>(arc0.size()) /
                                            arc1.size() - 1.0));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  header("Fig. 7: CR increase rate vs QP prediction dimension (SZ3, "
         "Case III, levels 1-2)");
  const Field<float> miranda = make_field(
      DatasetId::kMiranda, 1, bench_dims(dataset_spec(DatasetId::kMiranda)), 1);
  const Field<float> segsalt = make_field(
      DatasetId::kSegSalt, 0, bench_dims(dataset_spec(DatasetId::kSegSalt)),
      2000);
  sweep("Miranda Velocityx", miranda);
  sweep("SegSalt Pressure2000", segsalt);
  return 0;
}
