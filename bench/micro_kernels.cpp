// google-benchmark microbenches for the library's hot kernels: Huffman,
// LZB, data-domain Lorenzo, the interpolation engine and the quantizer.
// Not tied to a paper figure; used to track regressions in the pieces
// the end-to-end throughput (Figs. 16-17) is built from.

#include <benchmark/benchmark.h>

#include <random>

#include "compressors/interp_engine.hpp"
#include "compressors/lorenzo_path.hpp"
#include "encode/huffman.hpp"
#include "lossless/lzb.hpp"
#include "predict/multilevel.hpp"
#include "util/field.hpp"

namespace qip {
namespace {

std::vector<std::uint32_t> quant_like_symbols(std::size_t n) {
  std::mt19937 rng(5);
  std::geometric_distribution<int> geo(0.4);
  std::vector<std::uint32_t> s(n);
  for (auto& v : s) v = static_cast<std::uint32_t>(geo(rng));
  return s;
}

Field<float> wavefield(std::size_t edge) {
  Field<float> f(Dims{edge, edge, edge});
  for (std::size_t z = 0; z < edge; ++z)
    for (std::size_t y = 0; y < edge; ++y)
      for (std::size_t x = 0; x < edge; ++x) {
        const float r = std::sqrt(static_cast<float>(z * z + y * y + x * x));
        f.at(z, y, x) = std::sin(0.2f * r) / (1.f + 0.05f * r);
      }
  return f;
}

void BM_HuffmanEncode(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(huffman_encode(syms));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanEncode)->Arg(1 << 16)->Arg(1 << 20);

void BM_HuffmanDecode(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  const auto enc = huffman_encode(syms);
  for (auto _ : state) benchmark::DoNotOptimize(huffman_decode(enc));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanDecode)->Arg(1 << 16)->Arg(1 << 20);

void BM_LzbCompress(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  const auto bytes = huffman_encode(syms);
  for (auto _ : state) benchmark::DoNotOptimize(lzb_compress(bytes));
  state.SetBytesProcessed(state.iterations() * bytes.size());
}
BENCHMARK(BM_LzbCompress)->Arg(1 << 18);

void BM_LzbDecompress(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  const auto enc = lzb_compress(huffman_encode(syms));
  for (auto _ : state) benchmark::DoNotOptimize(lzb_decompress(enc));
  state.SetBytesProcessed(state.iterations() * enc.size());
}
BENCHMARK(BM_LzbDecompress)->Arg(1 << 18);

void BM_LorenzoEncode(benchmark::State& state) {
  const auto f = wavefield(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto work = f.clone();
    LinearQuantizer<float> q(1e-3);
    std::vector<std::uint32_t> syms;
    syms.reserve(f.size());
    std::size_t cur = 0;
    lorenzo_walk<float, true>(work.data(), f.dims(), q, syms, cur);
    benchmark::DoNotOptimize(syms);
  }
  state.SetBytesProcessed(state.iterations() * f.size() * sizeof(float));
}
BENCHMARK(BM_LorenzoEncode)->Arg(64);

void BM_InterpEngineEncode(benchmark::State& state) {
  const auto f = wavefield(static_cast<std::size_t>(state.range(0)));
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  for (auto _ : state) {
    auto work = f.clone();
    LinearQuantizer<float> q(1e-3);
    benchmark::DoNotOptimize(InterpEngine<float>::encode(
        work.data(), f.dims(), plan, 1e-3, q, QPConfig{}));
  }
  state.SetBytesProcessed(state.iterations() * f.size() * sizeof(float));
}
BENCHMARK(BM_InterpEngineEncode)->Arg(64);

void BM_InterpEngineEncodeWithQP(benchmark::State& state) {
  const auto f = wavefield(static_cast<std::size_t>(state.range(0)));
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  for (auto _ : state) {
    auto work = f.clone();
    LinearQuantizer<float> q(1e-3);
    benchmark::DoNotOptimize(InterpEngine<float>::encode(
        work.data(), f.dims(), plan, 1e-3, q, QPConfig::best_fit()));
  }
  state.SetBytesProcessed(state.iterations() * f.size() * sizeof(float));
}
BENCHMARK(BM_InterpEngineEncodeWithQP)->Arg(64);

}  // namespace
}  // namespace qip

BENCHMARK_MAIN();
