// google-benchmark microbenches for the library's hot kernels: Huffman,
// LZB, data-domain Lorenzo, the interpolation engine and the quantizer.
// Not tied to a paper figure; used to track regressions in the pieces
// the end-to-end throughput (Figs. 16-17) is built from.

#include <benchmark/benchmark.h>

#include <random>

#include "compressors/interp_engine.hpp"
#include "compressors/lorenzo_path.hpp"
#include "core/qp.hpp"
#include "encode/huffman.hpp"
#include "lossless/lzb.hpp"
#include "predict/multilevel.hpp"
#include "simd/dispatch.hpp"
#include "util/field.hpp"

namespace qip {
namespace {

std::vector<std::uint32_t> quant_like_symbols(std::size_t n) {
  std::mt19937 rng(5);
  std::geometric_distribution<int> geo(0.4);
  std::vector<std::uint32_t> s(n);
  for (auto& v : s) v = static_cast<std::uint32_t>(geo(rng));
  return s;
}

Field<float> wavefield(std::size_t edge) {
  Field<float> f(Dims{edge, edge, edge});
  for (std::size_t z = 0; z < edge; ++z)
    for (std::size_t y = 0; y < edge; ++y)
      for (std::size_t x = 0; x < edge; ++x) {
        const float r = std::sqrt(static_cast<float>(z * z + y * y + x * x));
        f.at(z, y, x) = std::sin(0.2f * r) / (1.f + 0.05f * r);
      }
  return f;
}

void BM_HuffmanEncode(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(huffman_encode(syms));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanEncode)->Arg(1 << 16)->Arg(1 << 20);

void BM_HuffmanDecode(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  const auto enc = huffman_encode(syms);
  for (auto _ : state) benchmark::DoNotOptimize(huffman_decode(enc));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanDecode)->Arg(1 << 16)->Arg(1 << 20);

// Forces the legacy bit-at-a-time decoder so the table-driven fast path
// above has a same-binary baseline.
void BM_HuffmanDecodeLegacy(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  const auto enc = huffman_encode(syms);
  simd::set_force_scalar_override(1);
  for (auto _ : state) benchmark::DoNotOptimize(huffman_decode(enc));
  simd::set_force_scalar_override(-1);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanDecodeLegacy)->Arg(1 << 16)->Arg(1 << 20);

void BM_LzbCompress(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  const auto bytes = huffman_encode(syms);
  for (auto _ : state) benchmark::DoNotOptimize(lzb_compress(bytes));
  state.SetBytesProcessed(state.iterations() * bytes.size());
}
BENCHMARK(BM_LzbCompress)->Arg(1 << 18);

void BM_LzbDecompress(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  const auto enc = lzb_compress(huffman_encode(syms));
  for (auto _ : state) benchmark::DoNotOptimize(lzb_decompress(enc));
  state.SetBytesProcessed(state.iterations() * enc.size());
}
BENCHMARK(BM_LzbDecompress)->Arg(1 << 18);

void BM_LorenzoEncode(benchmark::State& state) {
  const auto f = wavefield(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto work = f.clone();
    LinearQuantizer<float> q(1e-3);
    std::vector<std::uint32_t> syms;
    syms.reserve(f.size());
    std::size_t cur = 0;
    lorenzo_walk<float, true>(work.data(), f.dims(), q, syms, cur);
    benchmark::DoNotOptimize(syms);
  }
  state.SetBytesProcessed(state.iterations() * f.size() * sizeof(float));
}
BENCHMARK(BM_LorenzoEncode)->Arg(64);

void BM_InterpEngineEncode(benchmark::State& state) {
  const auto f = wavefield(static_cast<std::size_t>(state.range(0)));
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  for (auto _ : state) {
    auto work = f.clone();
    LinearQuantizer<float> q(1e-3);
    benchmark::DoNotOptimize(InterpEngine<float>::encode(
        work.data(), f.dims(), plan, 1e-3, q, QPConfig{}));
  }
  state.SetBytesProcessed(state.iterations() * f.size() * sizeof(float));
}
BENCHMARK(BM_InterpEngineEncode)->Arg(64);

void BM_InterpEngineEncodeWithQP(benchmark::State& state) {
  const auto f = wavefield(static_cast<std::size_t>(state.range(0)));
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  for (auto _ : state) {
    auto work = f.clone();
    LinearQuantizer<float> q(1e-3);
    benchmark::DoNotOptimize(InterpEngine<float>::encode(
        work.data(), f.dims(), plan, 1e-3, q, QPConfig::best_fit()));
  }
  state.SetBytesProcessed(state.iterations() * f.size() * sizeof(float));
}
BENCHMARK(BM_InterpEngineEncodeWithQP)->Arg(64);

// --- SIMD kernel layer: scalar vs dispatched rows -------------------------
//
// Each pair below times one src/simd kernel through the scalar reference
// table and through the runtime-dispatched table on the same inputs, so
// the per-kernel speedup on this machine is one subtraction away. The
// engine-level pairs flip the whole dispatch gate instead.

// RAII force-scalar toggle for the engine-level pairs.
struct ForceScalarGuard {
  ForceScalarGuard() { simd::set_force_scalar_override(1); }
  ~ForceScalarGuard() { simd::set_force_scalar_override(-1); }
};

void BM_InterpEngineEncodeScalar(benchmark::State& state) {
  const auto f = wavefield(static_cast<std::size_t>(state.range(0)));
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  ForceScalarGuard fs;
  for (auto _ : state) {
    auto work = f.clone();
    LinearQuantizer<float> q(1e-3);
    benchmark::DoNotOptimize(InterpEngine<float>::encode(
        work.data(), f.dims(), plan, 1e-3, q, QPConfig::best_fit()));
  }
  state.SetBytesProcessed(state.iterations() * f.size() * sizeof(float));
}
BENCHMARK(BM_InterpEngineEncodeScalar)->Arg(64);

void BM_InterpEngineDecode(benchmark::State& state) {
  const auto f = wavefield(static_cast<std::size_t>(state.range(0)));
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  auto work = f.clone();
  LinearQuantizer<float> q(1e-3);
  const auto res = InterpEngine<float>::encode(work.data(), f.dims(), plan,
                                               1e-3, q, QPConfig::best_fit());
  if (state.range(1)) simd::set_force_scalar_override(1);
  for (auto _ : state) {
    LinearQuantizer<float> qd = q;
    qd.reset_cursor();
    Field<float> out(f.dims());
    InterpEngine<float>::decode(res.symbols, f.dims(), plan, 1e-3, qd,
                                QPConfig::best_fit(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  simd::set_force_scalar_override(-1);
  state.SetBytesProcessed(state.iterations() * f.size() * sizeof(float));
}
BENCHMARK(BM_InterpEngineDecode)
    ->ArgNames({"edge", "scalar"})
    ->Args({64, 0})
    ->Args({64, 1});

// Smooth values and matching predictions: the all-in-range hot path, and
// no outlier-list growth across iterations.
void BM_QuantEncodeBlock(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> vals(n), preds(n), recon(n);
  std::vector<std::uint32_t> codes(n);
  for (std::size_t i = 0; i < n; ++i) {
    vals[i] = std::sin(0.01f * static_cast<float>(i));
    preds[i] = vals[i] + 3e-4f * static_cast<float>(i % 7);
  }
  LinearQuantizer<float> q(1e-3);
  const auto* kt =
      state.range(1) ? &simd::scalar_kernels<float>() : simd::kernels<float>();
  if (!kt) {
    state.SkipWithError("no SIMD tier compiled/active on this machine");
    return;
  }
  for (auto _ : state) {
    kt->quant_encode_block(vals.data(), preds.data(), n, &q, codes.data(),
                           recon.data());
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuantEncodeBlock)
    ->ArgNames({"n", "scalar"})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1});

void BM_QuantRecoverBlock(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> preds(n), out(n);
  std::vector<std::uint32_t> codes(n);
  for (std::size_t i = 0; i < n; ++i) {
    preds[i] = std::sin(0.01f * static_cast<float>(i));
    codes[i] = 32768u + static_cast<std::uint32_t>(i % 31);  // never 0
  }
  LinearQuantizer<float> q(1e-3);
  const auto* kt =
      state.range(1) ? &simd::scalar_kernels<float>() : simd::kernels<float>();
  if (!kt) {
    state.SkipWithError("no SIMD tier compiled/active on this machine");
    return;
  }
  for (auto _ : state) {
    kt->quant_recover_block(codes.data(), preds.data(), n, &q, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuantRecoverBlock)
    ->ArgNames({"n", "scalar"})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1});

// The 2-D stage-grid Lorenzo transform: compensation, forward symbol
// mapping, and the inverse, on quantization-code-shaped inputs.
void BM_Qp2dKernels(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::int32_t kRadius = 32768;
  std::vector<std::uint32_t> left(n), top(n), diag(n), codes(n), syms(n),
      back(n);
  std::vector<std::int32_t> comp(n);
  std::mt19937 rng(11);
  std::geometric_distribution<int> geo(0.4);
  auto code_like = [&] {
    return static_cast<std::uint32_t>(kRadius + (geo(rng) - geo(rng)));
  };
  for (std::size_t i = 0; i < n; ++i) {
    left[i] = code_like();
    top[i] = code_like();
    diag[i] = code_like();
    codes[i] = code_like();
  }
  const auto* kt =
      state.range(1) ? &simd::scalar_kernels<float>() : simd::kernels<float>();
  if (!kt) {
    state.SkipWithError("no SIMD tier compiled/active on this machine");
    return;
  }
  for (auto _ : state) {
    kt->qp2d_comp_block(left.data(), top.data(), diag.data(), n,
                        QPCondition::kCaseIII, kRadius, comp.data());
    kt->qp_sym_encode_block(codes.data(), comp.data(), n, kRadius, syms.data());
    kt->qp_sym_decode_block(syms.data(), comp.data(), n, kRadius, back.data());
    benchmark::DoNotOptimize(back.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * 3);
}
BENCHMARK(BM_Qp2dKernels)
    ->ArgNames({"n", "scalar"})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1});

}  // namespace
}  // namespace qip

BENCHMARK_MAIN();
