// google-benchmark microbenches for the library's hot kernels: Huffman,
// LZB, data-domain Lorenzo, the interpolation engine and the quantizer.
// Not tied to a paper figure; used to track regressions in the pieces
// the end-to-end throughput (Figs. 16-17) is built from.

#include <benchmark/benchmark.h>

#include <random>

#include "compressors/interp_engine.hpp"
#include "compressors/lorenzo_path.hpp"
#include "core/qp.hpp"
#include "encode/huffman.hpp"
#include "lossless/lzb.hpp"
#include "predict/multilevel.hpp"
#include "simd/dispatch.hpp"
#include "util/field.hpp"

namespace qip {
namespace {

std::vector<std::uint32_t> quant_like_symbols(std::size_t n) {
  std::mt19937 rng(5);
  std::geometric_distribution<int> geo(0.4);
  std::vector<std::uint32_t> s(n);
  for (auto& v : s) v = static_cast<std::uint32_t>(geo(rng));
  return s;
}

Field<float> wavefield(std::size_t edge) {
  Field<float> f(Dims{edge, edge, edge});
  for (std::size_t z = 0; z < edge; ++z)
    for (std::size_t y = 0; y < edge; ++y)
      for (std::size_t x = 0; x < edge; ++x) {
        const float r = std::sqrt(static_cast<float>(z * z + y * y + x * x));
        f.at(z, y, x) = std::sin(0.2f * r) / (1.f + 0.05f * r);
      }
  return f;
}

void BM_HuffmanEncode(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(huffman_encode(syms));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanEncode)->Arg(1 << 16)->Arg(1 << 20);

void BM_HuffmanDecode(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  const auto enc = huffman_encode(syms);
  for (auto _ : state) benchmark::DoNotOptimize(huffman_decode(enc));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanDecode)->Arg(1 << 16)->Arg(1 << 20);

// Forces the legacy bit-at-a-time decoder so the table-driven fast path
// above has a same-binary baseline.
void BM_HuffmanDecodeLegacy(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  const auto enc = huffman_encode(syms);
  simd::set_force_scalar_override(1);
  for (auto _ : state) benchmark::DoNotOptimize(huffman_decode(enc));
  simd::set_force_scalar_override(-1);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanDecodeLegacy)->Arg(1 << 16)->Arg(1 << 20);

void BM_LzbCompress(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  const auto bytes = huffman_encode(syms);
  for (auto _ : state) benchmark::DoNotOptimize(lzb_compress(bytes));
  state.SetBytesProcessed(state.iterations() * bytes.size());
}
BENCHMARK(BM_LzbCompress)->Arg(1 << 18);

void BM_LzbDecompress(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  const auto enc = lzb_compress(huffman_encode(syms));
  for (auto _ : state) benchmark::DoNotOptimize(lzb_decompress(enc));
  state.SetBytesProcessed(state.iterations() * enc.size());
}
BENCHMARK(BM_LzbDecompress)->Arg(1 << 18);

void BM_LorenzoEncode(benchmark::State& state) {
  const auto f = wavefield(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto work = f.clone();
    LinearQuantizer<float> q(1e-3);
    std::vector<std::uint32_t> syms;
    syms.reserve(f.size());
    std::size_t cur = 0;
    lorenzo_walk<float, true>(work.data(), f.dims(), q, syms, cur);
    benchmark::DoNotOptimize(syms);
  }
  state.SetBytesProcessed(state.iterations() * f.size() * sizeof(float));
}
BENCHMARK(BM_LorenzoEncode)->Arg(64);

void BM_InterpEngineEncode(benchmark::State& state) {
  const auto f = wavefield(static_cast<std::size_t>(state.range(0)));
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  for (auto _ : state) {
    auto work = f.clone();
    LinearQuantizer<float> q(1e-3);
    benchmark::DoNotOptimize(InterpEngine<float>::encode(
        work.data(), f.dims(), plan, 1e-3, q, QPConfig{}));
  }
  state.SetBytesProcessed(state.iterations() * f.size() * sizeof(float));
}
BENCHMARK(BM_InterpEngineEncode)->Arg(64);

void BM_InterpEngineEncodeWithQP(benchmark::State& state) {
  const auto f = wavefield(static_cast<std::size_t>(state.range(0)));
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  for (auto _ : state) {
    auto work = f.clone();
    LinearQuantizer<float> q(1e-3);
    benchmark::DoNotOptimize(InterpEngine<float>::encode(
        work.data(), f.dims(), plan, 1e-3, q, QPConfig::best_fit()));
  }
  state.SetBytesProcessed(state.iterations() * f.size() * sizeof(float));
}
BENCHMARK(BM_InterpEngineEncodeWithQP)->Arg(64);

// --- SIMD kernel layer: scalar vs dispatched rows -------------------------
//
// Each pair below times one src/simd kernel through the scalar reference
// table and through the runtime-dispatched table on the same inputs, so
// the per-kernel speedup on this machine is one subtraction away. The
// engine-level pairs flip the whole dispatch gate instead.

// RAII force-scalar toggle for the engine-level pairs.
struct ForceScalarGuard {
  ForceScalarGuard() { simd::set_force_scalar_override(1); }
  ~ForceScalarGuard() { simd::set_force_scalar_override(-1); }
};

void BM_InterpEngineEncodeScalar(benchmark::State& state) {
  const auto f = wavefield(static_cast<std::size_t>(state.range(0)));
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  ForceScalarGuard fs;
  for (auto _ : state) {
    auto work = f.clone();
    LinearQuantizer<float> q(1e-3);
    benchmark::DoNotOptimize(InterpEngine<float>::encode(
        work.data(), f.dims(), plan, 1e-3, q, QPConfig::best_fit()));
  }
  state.SetBytesProcessed(state.iterations() * f.size() * sizeof(float));
}
BENCHMARK(BM_InterpEngineEncodeScalar)->Arg(64);

void BM_InterpEngineDecode(benchmark::State& state) {
  const auto f = wavefield(static_cast<std::size_t>(state.range(0)));
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  auto work = f.clone();
  LinearQuantizer<float> q(1e-3);
  const auto res = InterpEngine<float>::encode(work.data(), f.dims(), plan,
                                               1e-3, q, QPConfig::best_fit());
  if (state.range(1)) simd::set_force_scalar_override(1);
  for (auto _ : state) {
    LinearQuantizer<float> qd = q;
    qd.reset_cursor();
    Field<float> out(f.dims());
    InterpEngine<float>::decode(res.symbols, f.dims(), plan, 1e-3, qd,
                                QPConfig::best_fit(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  simd::set_force_scalar_override(-1);
  state.SetBytesProcessed(state.iterations() * f.size() * sizeof(float));
}
BENCHMARK(BM_InterpEngineDecode)
    ->ArgNames({"edge", "scalar"})
    ->Args({64, 0})
    ->Args({64, 1});

// Smooth values and matching predictions: the all-in-range hot path, and
// no outlier-list growth across iterations.
void BM_QuantEncodeBlock(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> vals(n), preds(n), recon(n);
  std::vector<std::uint32_t> codes(n);
  for (std::size_t i = 0; i < n; ++i) {
    vals[i] = std::sin(0.01f * static_cast<float>(i));
    preds[i] = vals[i] + 3e-4f * static_cast<float>(i % 7);
  }
  LinearQuantizer<float> q(1e-3);
  const auto* kt =
      state.range(1) ? &simd::scalar_kernels<float>() : simd::kernels<float>();
  if (!kt) {
    state.SkipWithError("no SIMD tier compiled/active on this machine");
    return;
  }
  for (auto _ : state) {
    kt->quant_encode_block(vals.data(), preds.data(), n, &q, codes.data(),
                           recon.data());
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuantEncodeBlock)
    ->ArgNames({"n", "scalar"})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1});

void BM_QuantRecoverBlock(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> preds(n), out(n);
  std::vector<std::uint32_t> codes(n);
  for (std::size_t i = 0; i < n; ++i) {
    preds[i] = std::sin(0.01f * static_cast<float>(i));
    codes[i] = 32768u + static_cast<std::uint32_t>(i % 31);  // never 0
  }
  LinearQuantizer<float> q(1e-3);
  const auto* kt =
      state.range(1) ? &simd::scalar_kernels<float>() : simd::kernels<float>();
  if (!kt) {
    state.SkipWithError("no SIMD tier compiled/active on this machine");
    return;
  }
  for (auto _ : state) {
    kt->quant_recover_block(codes.data(), preds.data(), n, &q, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuantRecoverBlock)
    ->ArgNames({"n", "scalar"})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1});

// The estep>2 gather path: a level>=2 row whose points sit 4 elements
// apart. The dispatched kernel stages the stencil operand rows into
// contiguous scratch tiles and runs the stride-1 vector loop; the
// scalar reference walks the strided memory directly.
void BM_InterpRowGather(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  const std::size_t estep = 4;
  const std::size_t total = (count + 8) * estep;
  std::vector<float> data(total);
  for (std::size_t i = 0; i < total; ++i)
    data[i] = std::sin(0.003f * static_cast<float>(i));
  std::vector<std::uint32_t> syms(count);
  LinearQuantizer<float> q(1e-3);
  const QPConfig qp;  // disabled: isolates gather + predict + quantize
  const auto* kt =
      state.range(1) ? &simd::scalar_kernels<float>() : simd::kernels<float>();
  if (!kt) {
    state.SkipWithError("no SIMD tier compiled/active on this machine");
    return;
  }
  simd::RowArgs<float> ra;
  ra.data = data.data();
  ra.codes = nullptr;
  ra.total = total;
  ra.i0 = 4 * estep;  // room for the f(x-3s) taps of the cubic stencil
  ra.count = count;
  ra.estep = estep;
  ra.st = static_cast<std::ptrdiff_t>(estep);
  ra.kind = PredKind::kCubic;
  ra.quant = &q;
  ra.qp = &qp;
  ra.level = 3;
  ra.radius = q.radius();
  ra.qp_active = false;
  ra.qp_serial = false;
  ra.syms_out = syms.data();
  for (auto _ : state) {
    kt->encode_row(ra);
    benchmark::DoNotOptimize(syms.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_InterpRowGather)
    ->ArgNames({"n", "scalar"})
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1});

// The fused symbols-to-reconstruction decode kernel: zigzag + QP inverse
// + quantizer recovery in one pass, vs the scalar per-point chain.
void BM_SymRecoverFused(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  LinearQuantizer<float> q(1e-3);
  const std::int32_t radius = q.radius();
  std::vector<std::uint32_t> syms(n);
  std::vector<std::int32_t> comp(n, 0);
  std::vector<float> preds(n), out(n);
  std::mt19937 rng(17);
  std::geometric_distribution<int> geo(0.4);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t code =
        static_cast<std::uint32_t>(radius + (geo(rng) - geo(rng)));  // never 0
    syms[i] = qp_encode_symbol(code, 0, radius);
    preds[i] = std::sin(0.01f * static_cast<float>(i));
  }
  const auto* kt =
      state.range(1) ? &simd::scalar_kernels<float>() : simd::kernels<float>();
  if (!kt) {
    state.SkipWithError("no SIMD tier compiled/active on this machine");
    return;
  }
  for (auto _ : state) {
    kt->sym_recover_block(syms.data(), comp.data(), preds.data(), n, radius,
                          &q, nullptr, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SymRecoverFused)
    ->ArgNames({"n", "scalar"})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1});

// Huffman histogram accumulation: per-lane sub-histograms vs the plain
// single-counter loop, on a skewed quantization-symbol stream.
void BM_HistU32(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  std::uint32_t maxs = 0;
  for (std::uint32_t s : syms) maxs = std::max(maxs, s);
  const std::size_t alphabet = static_cast<std::size_t>(maxs) + 1;
  const auto* bk = state.range(1) ? &simd::scalar_byte_kernels()
                                  : simd::byte_kernels();
  if (!bk) {
    state.SkipWithError("no SIMD tier compiled/active on this machine");
    return;
  }
  std::vector<std::uint64_t> hist(alphabet);
  for (auto _ : state) {
    std::fill(hist.begin(), hist.end(), 0);
    bk->hist_u32(syms.data(), syms.size(), hist.data(), alphabet);
    benchmark::DoNotOptimize(hist.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HistU32)
    ->ArgNames({"n", "scalar"})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

// Forces the scalar histogram + BitWriter code emission so the batched
// encode path measured by BM_HuffmanEncode has a same-binary baseline
// (pairs with BM_HuffmanDecodeLegacy above).
void BM_HuffmanEncodeLegacy(benchmark::State& state) {
  const auto syms = quant_like_symbols(static_cast<std::size_t>(state.range(0)));
  simd::set_force_scalar_override(1);
  for (auto _ : state) benchmark::DoNotOptimize(huffman_encode(syms));
  simd::set_force_scalar_override(-1);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanEncodeLegacy)->Arg(1 << 16)->Arg(1 << 20);

// LZB match scan: W-byte vector compares vs the 8-byte XOR scalar loop,
// on a periodic buffer whose matches run ~1 KiB before a mismatch.
void BM_LzbMatchScan(benchmark::State& state) {
  constexpr std::size_t kPeriod = 251;
  const std::size_t n = std::size_t{1} << 20;
  std::vector<std::uint8_t> buf(n);
  std::mt19937 rng(7);
  for (std::size_t i = 0; i < kPeriod; ++i)
    buf[i] = static_cast<std::uint8_t>(rng());
  for (std::size_t i = kPeriod; i < n; ++i)
    buf[i] = static_cast<std::uint8_t>(buf[i - kPeriod] ^ (i % 1024 == 0));
  const auto* bk = state.range(0) ? &simd::scalar_byte_kernels()
                                  : simd::byte_kernels();
  if (!bk) {
    state.SkipWithError("no SIMD tier compiled/active on this machine");
    return;
  }
  const std::uint8_t* base = buf.data();
  const std::uint8_t* end = base + n;
  std::size_t compared = 0;
  for (auto _ : state) {
    compared = 0;
    for (std::size_t p = 0; p + kPeriod + 64 < n; p += 4096)
      compared += bk->match_len(base + p, base + p + kPeriod, end);
    benchmark::DoNotOptimize(compared);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(compared));
}
BENCHMARK(BM_LzbMatchScan)
    ->ArgNames({"scalar"})
    ->Arg(0)
    ->Arg(1);

// The 2-D stage-grid Lorenzo transform: compensation, forward symbol
// mapping, and the inverse, on quantization-code-shaped inputs.
void BM_Qp2dKernels(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::int32_t kRadius = 32768;
  std::vector<std::uint32_t> left(n), top(n), diag(n), codes(n), syms(n),
      back(n);
  std::vector<std::int32_t> comp(n);
  std::mt19937 rng(11);
  std::geometric_distribution<int> geo(0.4);
  auto code_like = [&] {
    return static_cast<std::uint32_t>(kRadius + (geo(rng) - geo(rng)));
  };
  for (std::size_t i = 0; i < n; ++i) {
    left[i] = code_like();
    top[i] = code_like();
    diag[i] = code_like();
    codes[i] = code_like();
  }
  const auto* kt =
      state.range(1) ? &simd::scalar_kernels<float>() : simd::kernels<float>();
  if (!kt) {
    state.SkipWithError("no SIMD tier compiled/active on this machine");
    return;
  }
  for (auto _ : state) {
    kt->qp2d_comp_block(left.data(), top.data(), diag.data(), n,
                        QPCondition::kCaseIII, kRadius, comp.data());
    kt->qp_sym_encode_block(codes.data(), comp.data(), n, kRadius, syms.data());
    kt->qp_sym_decode_block(syms.data(), comp.data(), n, kRadius, back.data());
    benchmark::DoNotOptimize(back.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * 3);
}
BENCHMARK(BM_Qp2dKernels)
    ->ArgNames({"n", "scalar"})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1});

}  // namespace
}  // namespace qip

BENCHMARK_MAIN();
