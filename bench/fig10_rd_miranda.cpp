// Fig. 10 reproduction: rate-distortion on the Miranda stand-in for the
// four base compressors with and without QP. Paper annotation: max 45%
// CR increase (SZ3 at PSNR 101).

#include "bench_util.hpp"

using namespace qip;
using namespace qip::bench;

int main() {
  const Field<float> f = make_field(
      DatasetId::kMiranda, 1, bench_dims(dataset_spec(DatasetId::kMiranda)), 1);
  rd_figure("Miranda (Fig. 10)", f);
  return 0;
}
