// Table IV reproduction: CR / PSNR / compression and decompression speed
// for all seven compressors (and the +QP variants of the interpolation
// four) on Miranda and SegSalt at absolute-scaled bounds 1e-3 and 1e-5.
//
// Expected shape: HPEZ+QP and SPERR lead the ratios; ZFP leads both
// speeds with the lowest ratios; TTHRESH is the slowest compressor;
// QP turns SZ3/QoZ competitive with HPEZ.

#include <cstdio>

#include "bench_util.hpp"

using namespace qip;
using namespace qip::bench;

int main() {
  header("Table IV: comparison with the state of the art");
  const struct {
    DatasetId id;
    int field;
    std::uint64_t seed;
  } sets[] = {{DatasetId::kMiranda, 1, 1}, {DatasetId::kSegSalt, 0, 2000}};

  for (const auto& s : sets) {
    const auto& spec = dataset_spec(s.id);
    const Field<float> f = make_field(s.id, s.field, bench_dims(spec), s.seed);
    for (double rel : {1e-3, 1e-5}) {
      std::printf("\n-- %s, rel eb %.0e (%s) --\n", spec.name, rel,
                  f.dims().str().c_str());
      std::printf("%-11s | %9s %8s %9s %9s\n", "compressor", "CR", "PSNR",
                  "Sc MB/s", "Sd MB/s");
      for (const auto& e : compressor_registry()) {
        GenericOptions opt;
        opt.error_bound = abs_eb(f, rel);
        const RunResult r = run_once(e, f, opt);
        std::printf("%-11s | %9.2f %8.2f %9.1f %9.1f\n", e.name.c_str(), r.cr,
                    r.psnr, r.compress_mbps, r.decompress_mbps);
        if (e.supports_qp) {
          GenericOptions qopt = opt;
          qopt.qp = QPConfig::best_fit();
          const RunResult rq = run_once(e, f, qopt);
          std::printf("%-11s | %9.2f %8.2f %9.1f %9.1f\n",
                      (e.name + "+QP").c_str(), rq.cr, rq.psnr,
                      rq.compress_mbps, rq.decompress_mbps);
        }
      }
    }
  }
  return 0;
}
