// Fig. 13 reproduction: rate-distortion on the CESM stand-in. Paper:
// the largest overall QP improvement (95% on MGARD at PSNR 75.8); HPEZ
// gains are negligible here.

#include "bench_util.hpp"

using namespace qip;
using namespace qip::bench;

int main() {
  const Field<float> f = make_field(
      DatasetId::kCESM, 0, bench_dims(dataset_spec(DatasetId::kCESM)), 11);
  rd_figure("CESM (Fig. 13)", f);
  return 0;
}
