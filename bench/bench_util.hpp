#pragma once

// Shared harness for the paper-reproduction benches: timed compression
// runs through the registry, PSNR-aligned error-bound search (Table II
// aligns all compressors at PSNR ~75), and plain-text table printing.
//
// Every bench prints the same rows/series as its paper counterpart; see
// DESIGN.md Sec. 3 for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "compressors/registry.hpp"
#include "data/synthetic.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace qip::bench {

/// Process-wide peak resident set size, in bytes (0 where the platform
/// offers no getrusage). Monotonic over the process lifetime: a bench
/// row records the high-water mark up to that point, so rows should be
/// read as "this phase needed at most this much".
inline std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Summary of repeated timed runs of one body.
struct Timing {
  double min_s = 0;     ///< noise floor: best observed wall time
  double median_s = 0;  ///< typical wall time (robust to stragglers)
};

/// Run `body` once untimed (fault in pages, grow allocator arenas, warm
/// branch predictors and caches), then `reps` timed iterations. The
/// minimum filters scheduler noise on shared machines; the median shows
/// whether the minimum is representative or a lucky outlier.
template <class F>
Timing time_reps(int reps, F&& body) {
  body();  // warm-up, untimed
  std::vector<double> t(static_cast<std::size_t>(reps));
  for (auto& sec : t) {
    Timer timer;
    body();
    sec = timer.seconds();
  }
  std::sort(t.begin(), t.end());
  Timing out;
  out.min_s = t.front();
  const std::size_t n = t.size();
  out.median_s =
      n % 2 ? t[n / 2] : 0.5 * (t[n / 2 - 1] + t[n / 2]);
  return out;
}

/// One timed compression + decompression run.
struct RunResult {
  double cr = 0;          ///< compression ratio
  double bit_rate = 0;    ///< bits per scalar
  double psnr = 0;
  double max_rel_err = 0; ///< vs value range
  double compress_mbps = 0;
  double decompress_mbps = 0;
  std::size_t bytes = 0;
};

template <class T>
RunResult run_once(const CompressorEntry& e, const Field<T>& f,
                   const GenericOptions& opt) {
  RunResult r;
  Timer tc;
  std::vector<std::uint8_t> arc;
  Field<T> dec;
  if constexpr (std::is_same_v<T, float>) {
    arc = e.compress_f32(f.data(), f.dims(), opt);
    const double sec_c = tc.seconds();
    Timer td;
    dec = e.decompress_f32(arc);
    const double sec_d = td.seconds();
    r.compress_mbps = f.size() * sizeof(T) / sec_c / 1e6;
    r.decompress_mbps = f.size() * sizeof(T) / sec_d / 1e6;
  } else {
    arc = e.compress_f64(f.data(), f.dims(), opt);
    const double sec_c = tc.seconds();
    Timer td;
    dec = e.decompress_f64(arc);
    const double sec_d = td.seconds();
    r.compress_mbps = f.size() * sizeof(T) / sec_c / 1e6;
    r.decompress_mbps = f.size() * sizeof(T) / sec_d / 1e6;
  }
  r.bytes = arc.size();
  r.cr = static_cast<double>(f.size() * sizeof(T)) / arc.size();
  r.bit_rate = 8.0 * sizeof(T) / r.cr;
  r.psnr = psnr(f.span(), dec.span());
  const auto vr = value_range(f.span());
  r.max_rel_err = vr.width() > 0
                      ? max_abs_error(f.span(), dec.span()) / vr.width()
                      : 0.0;
  return r;
}

/// Bisection search for the absolute error bound that lands the
/// compressor at `target_psnr` (within `tol_db`). Used by the Table II
/// reproduction, which aligns all compressors at the same PSNR.
template <class T>
double find_eb_for_psnr(const CompressorEntry& e, const Field<T>& f,
                        double target_psnr, double tol_db = 0.75,
                        int max_iters = 12) {
  const auto vr = value_range(f.span());
  double lo = 1e-8 * vr.width(), hi = 0.3 * vr.width();
  double eb = std::sqrt(lo * hi);
  for (int i = 0; i < max_iters; ++i) {
    GenericOptions opt;
    opt.error_bound = eb;
    const RunResult r = run_once(e, f, opt);
    if (std::abs(r.psnr - target_psnr) <= tol_db) return eb;
    if (r.psnr > target_psnr)
      lo = eb;  // too accurate -> loosen
    else
      hi = eb;
    eb = std::sqrt(lo * hi);
  }
  return eb;
}

/// Print a horizontal rule + header line.
inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Standard error-bound sweep used by the rate-distortion figures.
inline const std::vector<double>& rd_error_bounds() {
  static const std::vector<double> ebs = {1e-1, 3e-2, 1e-2, 3e-3, 1e-3,
                                          3e-4, 1e-4, 3e-5, 1e-5};
  return ebs;
}

/// Relative error bounds are scaled by the field's value range so that
/// sweeps are comparable across datasets (SDRBench convention).
template <class T>
double abs_eb(const Field<T>& f, double rel) {
  return rel * static_cast<double>(value_range(f.span()).width());
}

/// Rate-distortion sweep of the four QP-capable base compressors, with
/// and without QP, printed as the paper's Figs. 10-15 series. Returns
/// the maximum observed CR increase (annotated in the paper's plots).
template <class T>
double rd_figure(const std::string& dataset_name, const Field<T>& f) {
  header("Rate-distortion on " + dataset_name + " (" + f.dims().str() +
         ")  [paper Figs. 10-15 format]");
  std::printf("%-7s %-7s | %9s %9s %9s | %9s %9s %9s | %7s\n", "comp",
              "rel_eb", "CR", "bitrate", "PSNR", "CR+QP", "bitrate", "PSNR",
              "dCR%");
  double best_gain = 0;
  std::string best_at;
  for (const auto* e : qp_base_compressors()) {
    for (double rel : {1e-2, 3e-3, 1e-3, 3e-4, 1e-4}) {
      GenericOptions base;
      base.error_bound = abs_eb(f, rel);
      GenericOptions withqp = base;
      withqp.qp = QPConfig::best_fit();
      const RunResult r0 = run_once(*e, f, base);
      const RunResult r1 = run_once(*e, f, withqp);
      const double gain = 100.0 * (r1.cr / r0.cr - 1.0);
      if (gain > best_gain) {
        best_gain = gain;
        best_at = e->name + " @ PSNR " + std::to_string(r0.psnr);
      }
      std::printf("%-7s %-7.0e | %9.2f %9.4f %9.2f | %9.2f %9.4f %9.2f | %+6.1f%%\n",
                  e->name.c_str(), rel, r0.cr, r0.bit_rate, r0.psnr, r1.cr,
                  r1.bit_rate, r1.psnr, gain);
    }
  }
  std::printf("max CR increase: %.1f%%  (%s)\n", best_gain, best_at.c_str());
  return best_gain;
}

}  // namespace qip::bench
