// Fig. 5 reproduction: regional entropy of the quantization index array
// for all four interpolation-based compressors, (a) original and (b)
// after quantization index prediction. The QP-transformed array is the
// spatial arrangement of the encoded symbols Q'.

#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "compressors/hpez.hpp"
#include "compressors/mgard.hpp"
#include "compressors/qoz.hpp"
#include "compressors/sz3.hpp"
#include "core/characterize.hpp"

using namespace qip;
using namespace qip::bench;

int main() {
  const auto& spec = dataset_spec(DatasetId::kSegSalt);
  const Dims dims = bench_dims(spec);
  const Field<float> f = make_field(DatasetId::kSegSalt, 0, dims, 2000);
  const double eb = abs_eb(f, 1e-3);

  header("Fig. 5: regional entropy of quantization indices, original vs "
         "with QP (SegSalt Pressure2000, " + dims.str() + ")");

  struct Region {
    const char* name;
    int fixed_axis;
    double slice_frac, lo0, hi0, lo1, hi1;
    std::size_t s0, s1;
  };
  const Region regions[] = {
      {"Region0", 0, 0.60, 0.45, 0.55, 0.05, 0.15, 2, 2},
      {"Region1", 1, 0.22, 0.40, 0.60, 0.05, 0.15, 1, 2},
      {"Region2", 2, 0.15, 0.32, 0.42, 0.50, 0.60, 2, 2},
  };

  auto artifacts_for = [&](const std::string& name,
                           bool qp) -> IndexArtifacts {
    QPConfig qpc = qp ? QPConfig::best_fit() : QPConfig{};
    IndexArtifacts arts;
    if (name == "SZ3") {
      SZ3Config c;
      c.error_bound = eb;
      c.qp = qpc;
      c.auto_fallback = false;
      SZ3Artifacts a;
      (void)sz3_compress(f.data(), dims, c, &a);
      arts.codes = std::move(a.codes);
      arts.symbols_spatial = std::move(a.symbols_spatial);
    } else if (name == "QoZ") {
      QoZConfig c;
      c.error_bound = eb;
      c.qp = qpc;
      (void)qoz_compress(f.data(), dims, c, &arts);
    } else if (name == "HPEZ") {
      HPEZConfig c;
      c.error_bound = eb;
      c.qp = qpc;
      (void)hpez_compress(f.data(), dims, c, &arts);
    } else {
      MGARDConfig c;
      c.error_bound = eb;
      c.qp = qpc;
      (void)mgard_compress(f.data(), dims, c, &arts);
    }
    return arts;
  };

  std::printf("%-7s | %-8s | %10s | %10s | %10s\n", "comp", "array",
              "Region0", "Region1", "Region2");
  for (const char* name : {"MGARD", "SZ3", "QoZ", "HPEZ"}) {
    for (bool qp : {false, true}) {
      const auto arts = artifacts_for(name, qp);
      const auto& arr = qp ? arts.symbols_spatial : arts.codes;
      std::printf("%-7s | %-8s |", name, qp ? "Q' (QP)" : "Q");
      for (const auto& rg : regions) {
        const int a0 = rg.fixed_axis == 0 ? 1 : 0;
        const int a1 = rg.fixed_axis == 2 ? 1 : 2;
        const std::size_t slice = static_cast<std::size_t>(
            rg.slice_frac * (dims.extent(rg.fixed_axis) - 1));
        const double ent = region_entropy(
            arr, dims, rg.fixed_axis, slice,
            static_cast<std::size_t>(rg.lo0 * dims.extent(a0)),
            static_cast<std::size_t>(rg.hi0 * dims.extent(a0)),
            static_cast<std::size_t>(rg.lo1 * dims.extent(a1)),
            static_cast<std::size_t>(rg.hi1 * dims.extent(a1)), rg.s0, rg.s1);
        std::printf(" %10.3f", ent);
      }
      std::printf("\n");
    }
  }
  std::printf("\n(lower Q' entropy than Q inside a region = clustering "
              "removed by QP, paper Fig. 5b)\n");
  return 0;
}
