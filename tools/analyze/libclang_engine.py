"""Optional libclang lexer backend for qip_analyze.

Selected with ``qip_analyze.py --engine=libclang``. The container image
this repo targets ships libclang-cpp.so but not the C-API python
bindings, so the import is performed lazily by the driver and a clear
error is raised when the bindings are absent; the bundled pure-python
lexer (cxx.lex) remains the default and the engine CI runs.

When the bindings are available, this backend tokenizes each file with
clang's own lexer and maps the result onto the cxx.Token stream the
structural Index consumes — the checks themselves are engine-agnostic.
"""

from __future__ import annotations

from pathlib import Path

from cxx import Directive, Token

_KIND_MAP = {
    "IDENTIFIER": "id",
    "KEYWORD": "id",
    "LITERAL": None,  # refined by spelling below
    "PUNCTUATION": "punct",
}


def lex_with_libclang(path: Path):
    import clang.cindex as ci

    tu = ci.Index.create().parse(
        str(path), args=["-std=c++20", "-fsyntax-only"],
        options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    tokens: list[Token] = []
    directives: list[Directive] = []
    pending_directive: list[str] | None = None
    directive_line = 0
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        kind = tok.kind.name
        text = tok.spelling
        line = tok.location.line
        if kind == "COMMENT":
            continue
        if text == "#" and kind == "PUNCTUATION":
            if pending_directive is not None:
                directives.append(
                    Directive(directive_line, " ".join(pending_directive)))
            pending_directive = ["#"]
            directive_line = line
            continue
        if pending_directive is not None and line == directive_line:
            pending_directive.append(text)
            continue
        if pending_directive is not None:
            directives.append(
                Directive(directive_line, " ".join(pending_directive)))
            pending_directive = None
        mapped = _KIND_MAP.get(kind, "punct")
        if mapped is None:  # LITERAL: number vs string vs char
            if text.startswith(('"', 'u"', 'U"', 'L"', 'u8"', 'R"')):
                mapped = "str"
            elif text.startswith("'"):
                mapped = "chr"
            else:
                mapped = "num"
        tokens.append(Token(mapped, text, line))
    if pending_directive is not None:
        directives.append(
            Directive(directive_line, " ".join(pending_directive)))
    return tokens, directives
