"""cxx: a self-contained C++ token/structure front-end for qip_analyze.

The container image this repo builds in ships the clang C++ shared
library but neither the libclang C API nor its Python bindings, so the
analyzer carries its own front-end: a lexer plus a structural pass that
recovers exactly what the checks need — functions (name, head tokens,
parameters, body extent), lambdas (captures, parameters, body extent),
bracket matching, statement segmentation, and control-flow guard
queries. When python bindings for libclang are present they can be
selected with ``qip_analyze.py --engine=libclang`` (see ENGINES in
qip_analyze.py); the bundled engine is the default and the one CI runs.

This is *not* a general C++ parser. It is deliberately scoped to the
syntactic shapes in src/ (see docs/ANALYSIS.md "Engine notes"): it
understands nesting, comments, strings, raw strings, preprocessor
directives, template heads, constructor init lists and trailing return
types well enough to attribute every token to the right function or
lambda body, which is the level the checks reason at.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

# Keywords that can precede '(' without being a function name.
NOT_A_FUNCTION = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "new", "delete", "throw", "assert",
    "alignas", "noexcept", "defined", "constexpr", "requires", "typeid",
    "co_await", "co_return", "co_yield", "and", "or", "not",
}

# Tokens allowed between a function declarator's ')' and its body '{'.
POST_PARAM_OK = {"const", "noexcept", "override", "final", "mutable",
                 "volatile", "&", "&&", "throw", "try", "requires"}

# Head tokens that are not part of the return type proper.
HEAD_SPECIFIERS = {"static", "inline", "constexpr", "consteval", "constinit",
                   "virtual", "explicit", "friend", "typename", "extern",
                   "export", "class", "struct", "public", "private",
                   "protected", "using", "template"}

PUNCTUATORS = [
    "->*", "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "##", "(", ")", "{", "}", "[", "]", "<", ">", ";", ",", ".", "?",
    ":", "=", "+", "-", "*", "/", "%", "&", "|", "^", "!", "~", "#", "@",
]

_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"(?:0[xX][0-9a-fA-F']+|0[bB][01']+|[0-9][0-9a-fA-F'."
                     r"xXbBpP+-]*)[uUlLfz]*")


@dataclass
class Token:
    kind: str  # 'id' | 'num' | 'str' | 'chr' | 'punct'
    text: str
    line: int

    def __repr__(self):  # pragma: no cover - debug aid
        return f"{self.text}@{self.line}"


@dataclass
class Directive:
    line: int
    text: str  # full directive text, continuations joined


def lex(source: str):
    """Tokenize. Returns (tokens, directives)."""
    tokens: list[Token] = []
    directives: list[Directive] = []
    i, n, line = 0, len(source), 1
    at_line_start = True
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                break
            line += source.count("\n", i, end + 2)
            i = end + 2
            continue
        if c == "#" and at_line_start:
            start, dl = i, line
            buf = []
            while i < n:
                if source[i] == "\\" and i + 1 < n and source[i + 1] == "\n":
                    buf.append(source[start:i])
                    i += 2
                    line += 1
                    start = i
                    continue
                if source[i] == "\n":
                    break
                i += 1
            buf.append(source[start:i])
            directives.append(Directive(dl, " ".join(b.strip() for b in buf)))
            continue
        at_line_start = False
        # Raw strings: R"delim( ... )delim"  (also u8R", LR", ...).
        m = re.match(r'(?:u8|[uUL])?R"([^ ()\\\t\n]*)\(', source[i:])
        if m:
            close = ")" + m.group(1) + '"'
            end = source.find(close, i + m.end())
            if end < 0:
                break
            text = source[i:end + len(close)]
            tokens.append(Token("str", text, line))
            line += text.count("\n")
            i = end + len(close)
            continue
        if c == '"' or (c in "uUL" and source[i:i + 2] in ('u"', 'U"', 'L"')):
            j = source.find('"', i) + 1
            while j < n:
                if source[j] == "\\":
                    j += 2
                    continue
                if source[j] == '"':
                    break
                j += 1
            tokens.append(Token("str", source[i:j + 1], line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n:
                if source[j] == "\\":
                    j += 2
                    continue
                if source[j] == "'":
                    break
                j += 1
            tokens.append(Token("chr", source[i:j + 1], line))
            i = j + 1
            continue
        m = _ID_RE.match(source, i)
        if m:
            tokens.append(Token("id", m.group(), line))
            i = m.end()
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            m = _NUM_RE.match(source, i)
            if m:
                tokens.append(Token("num", m.group(), line))
                i = m.end()
                continue
        for p in PUNCTUATORS:
            if source.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            i += 1  # unknown byte: skip
    return tokens, directives


@dataclass
class Param:
    type_text: str
    name: str


@dataclass
class Function:
    name: str
    line: int
    head: tuple[int, int]    # token range [start, name_idx) — attrs + type
    name_idx: int
    params: tuple[int, int]  # token range inside the parens
    body: tuple[int, int] | None  # token range inside the braces
    param_list: list[Param] = field(default_factory=list)

    def is_definition(self) -> bool:
        return self.body is not None


@dataclass
class Lambda:
    line: int
    captures: tuple[int, int]  # token range inside [ ]
    params: tuple[int, int]    # token range inside ( ), possibly empty
    body: tuple[int, int]      # token range inside { }
    param_names: list[str] = field(default_factory=list)
    capture_text: str = ""


class Index:
    """Token stream + bracket matching + functions/lambdas for one file."""

    def __init__(self, source: str, path: str = "<memory>",
                 pretokens=None):
        self.path = path
        # An alternative engine (libclang) may supply the token stream;
        # the structural pass is engine-independent.
        self.tokens, self.directives = pretokens if pretokens is not None \
            else lex(source)
        self.match = self._match_brackets()
        self.lambdas = self._find_lambdas()
        self.functions = self._find_functions()

    # -- generic helpers ---------------------------------------------------

    def text(self, lo: int, hi: int) -> str:
        return " ".join(t.text for t in self.tokens[lo:hi])

    def _match_brackets(self) -> dict[int, int]:
        match: dict[int, int] = {}
        stacks: dict[str, list[int]] = {"(": [], "{": [], "[": []}
        pairs = {")": "(", "}": "{", "]": "["}
        for i, t in enumerate(self.tokens):
            if t.kind != "punct":
                continue
            if t.text in stacks:
                stacks[t.text].append(i)
            elif t.text in pairs and stacks[pairs[t.text]]:
                j = stacks[pairs[t.text]].pop()
                match[i] = j
                match[j] = i
        return match

    def _skip_group(self, i: int) -> int:
        """Token index just past the group opened at i (or i+1)."""
        return self.match.get(i, i) + 1 if i in self.match else i + 1

    # -- lambdas -----------------------------------------------------------

    def _find_lambdas(self) -> list[Lambda]:
        out: list[Lambda] = []
        toks = self.tokens
        for i, t in enumerate(toks):
            if t.kind != "punct" or t.text != "[" or i not in self.match:
                continue
            prev = toks[i - 1] if i > 0 else None
            if prev is not None and (
                    prev.kind in ("id", "num", "str") and
                    prev.text != "return" or
                    prev.kind == "punct" and prev.text in (")", "]")):
                continue  # subscript or array declarator
            close = self.match[i]
            # Attribute [[...]]:
            if close + 1 < len(toks) and i + 1 < len(toks) and \
                    toks[i + 1].text == "[":
                continue
            j = close + 1
            params = (j, j)
            if j < len(toks) and toks[j].text == "(" and j in self.match:
                params = (j + 1, self.match[j])
                j = self.match[j] + 1
            # Skip specifiers / trailing return up to the body.
            while j < len(toks) and toks[j].text != "{":
                if toks[j].text in ("mutable", "noexcept", "constexpr"):
                    j += 1
                elif toks[j].text == "(" and j in self.match:
                    j = self.match[j] + 1
                elif toks[j].text == "->":
                    j += 1
                elif toks[j].kind == "id" or toks[j].text in ("::", "<", ">",
                                                              "&", "*", ","):
                    j += 1
                else:
                    break
            if j >= len(toks) or toks[j].text != "{" or j not in self.match:
                continue
            lam = Lambda(t.line, (i + 1, close), params,
                         (j + 1, self.match[j]))
            lam.capture_text = self.text(i + 1, close)
            lam.param_names = [p.name for p in
                               self._parse_params(*params) if p.name]
            out.append(lam)
        return out

    def lambda_at(self, idx: int) -> Lambda | None:
        """Innermost lambda whose body contains token idx."""
        best = None
        for lam in self.lambdas:
            if lam.body[0] <= idx < lam.body[1]:
                if best is None or lam.body[0] > best.body[0]:
                    best = lam
        return best

    # -- functions ---------------------------------------------------------

    def _find_functions(self) -> list[Function]:
        out: list[Function] = []
        toks = self.tokens

        def in_lambda_head(i: int) -> bool:
            for lam in self.lambdas:
                if lam.captures[0] - 1 <= i < lam.body[0]:
                    return True
            return False

        for i, t in enumerate(toks):
            if t.kind != "punct" or t.text != "(" or i not in self.match:
                continue
            if i == 0 or toks[i - 1].kind != "id":
                continue
            name = toks[i - 1].text
            if name in NOT_A_FUNCTION or in_lambda_head(i):
                continue
            close = self.match[i]
            body = self._body_after(close)
            if body is None:
                continue
            head_start = self._head_start(i - 1)
            fn = Function(name, toks[i - 1].line, (head_start, i - 1), i - 1,
                          (i + 1, close), body)
            fn.param_list = self._parse_params(i + 1, close)
            out.append(fn)
        return out

    def _body_after(self, close: int) -> tuple[int, int] | None:
        """Body token range if the ')' at `close` heads a definition."""
        toks = self.tokens
        j = close + 1
        seen_arrow = False
        while j < len(toks):
            tt = toks[j].text
            if tt == "{":
                if j not in self.match:
                    return None
                return (j + 1, self.match[j])
            if tt in (";", "=", ",", ")"):
                return None
            if tt in POST_PARAM_OK:
                j += 1
            elif tt == "(" and j in self.match:  # noexcept(...)
                j = self.match[j] + 1
            elif tt == "->":
                seen_arrow = True
                j += 1
            elif tt == ":":
                # Constructor init list: skip `name(...)` / `name{...}`
                # pairs until the body brace.
                j += 1
                while j < len(toks) and toks[j].text != "{":
                    if toks[j].text in ("(",) and j in self.match:
                        j = self.match[j] + 1
                    elif toks[j].kind == "id" or toks[j].text in (
                            "::", ",", "<", ">", "...", "{", "}"):
                        if toks[j].text == "{" :
                            break
                        j += 1
                    else:
                        return None
                # Brace groups in the init list: skip `member{...}` pairs
                # while the next-but-one token keeps the list going.
                while (j < len(toks) and toks[j].text == "{" and
                       j in self.match and self.match[j] + 1 < len(toks) and
                       toks[self.match[j] + 1].text in (",",)):
                    j = self.match[j] + 1
            elif seen_arrow and (toks[j].kind == "id" or toks[j].text in (
                    "::", "<", ">", "*", "&", ",", "[", "]")):
                j += 1  # trailing return type tokens
            elif toks[j].kind == "id" and toks[j].text in ("override", "final"):
                j += 1
            else:
                return None
        return None

    def _head_start(self, name_idx: int) -> int:
        """Walk back from the function name over its attrs/type tokens."""
        toks = self.tokens
        i = name_idx - 1
        while i >= 0:
            tt = toks[i].text
            if tt in (";", "{", "}"):  # previous declaration/body boundary
                return i + 1
            if tt == ":" and i >= 1 and toks[i - 1].text in (
                    "public", "private", "protected"):
                return i + 1
            i -= 1
        return 0

    def _parse_params(self, lo: int, hi: int) -> list[Param]:
        toks = self.tokens
        params: list[Param] = []
        start = lo
        depth = 0
        i = lo
        while i <= hi:
            at_end = i == hi
            tt = toks[i].text if not at_end else ","
            if not at_end and tt in ("(", "[", "{"):
                depth += 1
            elif not at_end and tt in (")", "]", "}"):
                depth -= 1
            elif not at_end and tt == "<":
                depth += 1
            elif not at_end and tt == ">":
                depth = max(0, depth - 1)
            if (at_end or (tt == "," and depth == 0)):
                if i > start:
                    seg = toks[start:i]
                    # Strip default argument.
                    for k, s in enumerate(seg):
                        if s.text == "=":
                            seg = seg[:k]
                            break
                    name = ""
                    if seg and seg[-1].kind == "id" and len(seg) > 1:
                        name = seg[-1].text
                        type_toks = seg[:-1]
                    else:
                        type_toks = seg
                    params.append(Param(" ".join(s.text for s in type_toks),
                                        name))
                start = i + 1
            i += 1
        return params

    def enclosing_function(self, idx: int) -> Function | None:
        best = None
        for fn in self.functions:
            if fn.body and fn.body[0] <= idx < fn.body[1]:
                if best is None or fn.body[0] > best.body[0]:
                    best = fn
        return best

    # -- statements and guards ---------------------------------------------

    def statements(self, lo: int, hi: int):
        """Yield (start, end) token ranges of statements in [lo, hi).

        Splits on ';' and on brace boundaries, skipping ';' inside paren
        groups (for-headers). Nested statements are yielded too (the
        ranges of outer compound statements are not).
        """
        i = lo
        start = lo
        while i < hi:
            tt = self.tokens[i].text
            if tt == "(" and i in self.match:
                i = self.match[i] + 1
                continue
            if tt == ";":
                yield (start, i)
                start = i + 1
            elif tt in ("{", "}"):
                if i > start:
                    yield (start, i)
                start = i + 1
            i += 1
        if hi > start:
            yield (start, hi)

    def control_scopes(self, lo: int, hi: int):
        """(keyword, cond_range, scope_range) for if/while/for in [lo, hi).

        scope_range covers the controlled statement (block body or single
        statement up to ';').
        """
        out = []
        i = lo
        toks = self.tokens
        while i < hi:
            t = toks[i]
            if t.kind == "id" and t.text in ("if", "while", "for") and \
                    i + 1 < hi and toks[i + 1].text == "(" and \
                    (i + 1) in self.match:
                cond = (i + 2, self.match[i + 1])
                j = self.match[i + 1] + 1
                if j < hi and toks[j].text == "{" and j in self.match:
                    scope = (j + 1, self.match[j])
                else:
                    k = j
                    while k < hi and toks[k].text != ";":
                        if toks[k].text in ("(", "{") and k in self.match:
                            k = self.match[k]
                        k += 1
                    scope = (j, k)
                out.append((t.text, cond, scope))
            i += 1
        return out

    def throw_guards(self, lo: int, hi: int):
        """(position, cond_text) for every `if (cond) <throw|return|break>`.

        A guard at position p dominates (lexically) every later token in
        the same function body — the approximation the checks use for
        "a cap check dominates the allocation".
        """
        guards = []
        for kw, cond, scope in self.control_scopes(lo, hi):
            if kw != "if":
                continue
            body_text = self.text(*scope)
            if re.search(r"\b(throw|return|break|continue)\b", body_text):
                guards.append((scope[1], self.text(*cond)))
        return guards
