#!/usr/bin/env python3
"""qip_analyze: AST-level invariant analyzer for the qip codebase.

Where tools/qip_lint.py enforces layout conventions with line regexes,
this tool reasons about structure and data flow: which function a token
belongs to, whether a subscript's buffer derives from archive bytes,
whether an allocation size is dominated by a cap check, what a pool
lambda captures. See docs/ANALYSIS.md for the full check catalog.

Checks
------
taint         untrusted-index / untrusted-cursor / unguarded-memcpy —
              archive-derived buffers in decode contexts are read only
              through guarded APIs or size-check-dominated subscripts.
bomb-alloc    resize/reserve/vector-ctor/new[] sized by archive header
              fields must be dominated by a cap check.
pool-capture  pool-shared-write / pool-reentry — parallel_for lambdas
              must not mutate un-partitioned by-ref captures nor
              re-enter pool scheduling.
hygiene       codec-nodiscard / typed-errors — registry-reachable entry
              points are [[nodiscard]] and throw the typed hierarchy.
confinement   simd-confined / archive-magic — AST ports of the old
              regex rules (no string/comment false matches).

Usage
-----
    tools/analyze/qip_analyze.py [--repo DIR] [--compdb PATH|DIR]
        [--checks a,b,...] [--engine internal|libclang]
        [--update-baseline] [--strict] [--list-checks]

The TU list comes from compile_commands.json (every preset exports one;
--compdb points at the file or its build directory, otherwise build*/ is
searched). Headers reachable from src/ are analyzed alongside the TUs.

Exit code 0 when every finding is baselined or allowed inline
(`// qip-analyze: allow(<rule>)`), 1 otherwise; --strict additionally
fails on stale baseline entries so CI keeps the baseline tight. The
baseline lives at tools/qip_analyze_baseline.json and must stay free of
taint/bomb-alloc entries — those are real holes; fix them instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

import cxx  # noqa: E402
from checks import CHECKS, Ctx  # noqa: E402
from qip_checklib import Baseline, Finding, collect_allows, report  # noqa: E402

ENGINES = ("internal", "libclang")


def find_compdb(repo: Path, arg: str | None) -> Path | None:
    if arg:
        p = Path(arg)
        if p.is_dir():
            p = p / "compile_commands.json"
        return p if p.exists() else None
    for cand in sorted(repo.glob("build*/compile_commands.json")):
        return cand
    return None


def compdb_sources(compdb: Path, repo: Path) -> list[Path]:
    entries = json.loads(compdb.read_text())
    out = []
    for e in entries:
        f = Path(e["file"])
        if not f.is_absolute():
            f = Path(e.get("directory", ".")) / f
        try:
            rel = f.resolve().relative_to(repo)
        except ValueError:
            continue
        if rel.as_posix().startswith("src/"):
            out.append(repo / rel)
    return out


def discover_files(repo: Path, compdb: Path | None, err) -> list[Path]:
    """TUs from the compile database plus all src/ headers."""
    files: set[Path] = set()
    if compdb is not None:
        files.update(compdb_sources(compdb, repo))
    else:
        print("qip_analyze: note: no compile_commands.json found "
              "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON or pass "
              "--compdb); falling back to src/**/*.cpp", file=err)
        files.update(repo.glob("src/**/*.cpp"))
    files.update(repo.glob("src/**/*.hpp"))
    return sorted(files)


def make_index(path: Path, rel: str, source: str, engine: str):
    if engine == "libclang":
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            sys.exit("qip_analyze: error: --engine=libclang needs the "
                     "libclang python bindings (pip package `libclang` or "
                     "distro python3-clang), which this environment lacks; "
                     "use the default --engine=internal")
        from libclang_engine import lex_with_libclang
        tokens, directives = lex_with_libclang(path)
        return cxx.Index(source, rel, pretokens=(tokens, directives))
    return cxx.Index(source, rel)


def analyze_file(repo: Path, path: Path, selected: list[str],
                 engine: str) -> list[Finding]:
    rel = path.relative_to(repo).as_posix()
    source = path.read_text()
    raw_lines = source.splitlines()
    ctx = Ctx(make_index(path, rel, source, engine), rel, raw_lines)
    for name in selected:
        CHECKS[name].run(ctx)
    allows = collect_allows(raw_lines, "qip-analyze")
    return [f for f in ctx.findings
            if f.rule not in allows.get(f.line_no, set())]


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--repo", type=Path,
                    default=Path(__file__).resolve().parents[2])
    ap.add_argument("--compdb", help="compile_commands.json or its build dir")
    ap.add_argument("--checks", default=",".join(CHECKS),
                    help="comma-separated subset of checks to run")
    ap.add_argument("--engine", choices=ENGINES, default="internal")
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("--strict", action="store_true",
                    help="also fail on stale baseline entries (CI mode)")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("paths", nargs="*", type=Path,
                    help="restrict analysis to these files")
    args = ap.parse_args()

    if args.list_checks:
        for name, mod in CHECKS.items():
            print(f"{name}: {', '.join(mod.RULES)}")
        return 0

    selected = [c for c in args.checks.split(",") if c]
    unknown = [c for c in selected if c not in CHECKS]
    if unknown:
        print(f"qip_analyze: error: unknown check(s): {', '.join(unknown)} "
              f"(have: {', '.join(CHECKS)})", file=sys.stderr)
        return 2

    repo = args.repo.resolve()
    if args.paths:
        files = [p.resolve() for p in args.paths]
    else:
        compdb = find_compdb(repo, args.compdb)
        files = discover_files(repo, compdb, sys.stderr)
    if not files:
        print(f"qip_analyze: error: no sources under {repo}/src — "
              "wrong --repo?", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in files:
        findings.extend(analyze_file(repo, path, selected, args.engine))

    baseline = Baseline(repo / "tools" / "qip_analyze_baseline.json")
    rc = report("qip_analyze", findings, baseline, args.update_baseline,
                len(files), sys.stderr)
    if rc == 0 and args.strict and not args.update_baseline:
        _, stale = baseline.split(findings)
        if stale:
            print("qip_analyze: --strict: stale baseline entries present; "
                  "run --update-baseline", file=sys.stderr)
            return 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
