"""Layer-confinement checks — AST ports of two qip_lint regex rules.

Working on tokens instead of raw lines means string literals, comments
and doc examples can mention intrinsics or magic values freely; only
real code trips the rules.

* ``simd-confined`` — vector-intrinsic surface (``*intrin.h`` includes,
  ``_mm*``/``_mm256_*``/``_mm512_*`` calls, ``__m64/128/256/512``
  register types) appears only under ``src/simd/``; everyone else goes
  through the dispatch tables so scalar/vector A/B stays a runtime
  switch.
* ``archive-magic`` — the ``0x..504951`` ("QIP?") container magics are
  spelled out only in ``src/compressors/core/container.*``; other
  layers name ``kContainerMagic``/``kChunkedMagic``.
"""

from __future__ import annotations

import re

RULES = ("simd-confined", "archive-magic")

SIMD_HOME = "src/simd/"
ARCHIVE_MAGIC_HOME = "src/compressors/core/container"

SIMD_ID_RE = re.compile(r"^_mm(?:256|512)?_\w+$|^__m(?:64|128|256|512)[di]?$")
INTRIN_INCLUDE_RE = re.compile(r'#\s*include\s*[<"]\w*intrin\.h[>"]')
MAGIC_NUM_RE = re.compile(r"^0[xX][0-9a-fA-F]{1,2}504951[uUlL]*$")


def run(ctx) -> None:
    index = ctx.index
    if not ctx.rel.startswith(SIMD_HOME):
        for d in index.directives:
            if INTRIN_INCLUDE_RE.search(d.text):
                ctx.add("simd-confined", d.line,
                        "intrinsic header include outside src/simd/; call "
                        "through the src/simd/dispatch.hpp tables")
        for t in index.tokens:
            if t.kind == "id" and SIMD_ID_RE.match(t.text):
                ctx.add("simd-confined", t.line,
                        f"intrinsic '{t.text}' outside src/simd/; call "
                        "through the src/simd/dispatch.hpp tables")
    if not ctx.rel.startswith(ARCHIVE_MAGIC_HOME):
        for t in index.tokens:
            if t.kind == "num" and MAGIC_NUM_RE.match(t.text):
                ctx.add("archive-magic", t.line,
                        f"archive magic {t.text} spelled outside the "
                        "container layer; use kContainerMagic/kChunkedMagic")
