"""Shared machinery for the qip_analyze checks: decode-context
classification, intraprocedural taint propagation, and guard queries.

Terminology (see docs/ANALYSIS.md for the full model):

* A **decode context** is a function that handles archive-derived bytes:
  its name matches the decode-family pattern, or it takes a cursor/
  reader parameter (ByteReader/BitReader/ContainerReader), or it takes
  an archive byte span.
* A value is **tainted** when it derives from archive bytes through a
  reader ``get*()`` call or a decode helper; taint propagates through
  assignments within the function (lexical fixpoint, no aliasing).
* A tainted allocation/access is **guarded** when a dominating
  ``if (...) throw/return`` — or an enclosing loop/if condition —
  mentions the value together with a bounding term (``remaining``,
  ``.size``, ``max_*``, ``sizeof``, a ``k``-constant, ``std::min``).
  "Dominating" is approximated lexically: a throw-guard covers every
  later token of the same function body, which matches how the decode
  paths in this repo are written (validate first, then use).
"""

from __future__ import annotations

import re

DECODE_NAME_RE = re.compile(
    r"(?:^|_)(?:decode|decompress|recover|open|parse|inspect|load|read|walk)"
    r"(?:_|$|[A-Z0-9])?", )

READER_TYPES = ("ByteReader", "BitReader", "ContainerReader")

# Calls whose result is archive-derived bytes/symbols.
TAINT_SOURCE_CALLS = (
    "get_varint", "get_svarint", "get_bytes", "get_block", "get",
    "stage_bytes", "huffman_decode", "rle_decode_symbols", "lzb_decompress",
    "read_symbols_stage",
)

# Tokens that make a guard condition an actual *bound* on the value:
# stream budget (remaining), a buffer size, an explicit cap parameter, an
# element-size division, validated dims, or a named constant.
BOUNDING_TOKENS = re.compile(
    r"\bremaining\b|\bsize\b|\bmax_\w*|\bsizeof\b|\bmin\b|\bempty\b|"
    r"\bextent\b|\bdims\b|\bk[A-Z]\w*|\b[A-Z][A-Z0-9_]{2,}\b")

# Files that ARE the guarded byte-access API; raw pointer/memcpy use of
# archive bytes is their job.
GUARDED_API_HOMES = ("src/util/bytes.hpp", "src/encode/bitstream.hpp")

# Directories whose TUs carry decode paths; taint/bomb/hygiene findings
# are scoped here (src/simd kernels run on pre-validated buffers behind
# the dispatch layer and are covered by the forced-scalar A/B tests).
DECODE_DIRS = ("src/compressors/", "src/encode/", "src/lossless/",
               "src/quant/", "src/parallel/", "src/core/", "src/predict/",
               "src/util/", "src/transfer/")


def in_decode_scope(rel_path: str) -> bool:
    return rel_path.startswith(DECODE_DIRS) and \
        rel_path not in GUARDED_API_HOMES


def is_decode_context(fn) -> bool:
    """Does this function handle archive-derived bytes?"""
    if DECODE_NAME_RE.search(fn.name):
        return True
    for p in fn.param_list:
        if any(rt in p.type_text for rt in READER_TYPES):
            return True
        if "span" in p.type_text and "const" in p.type_text and \
                "uint8_t" in p.type_text:
            return True
    return False


def reader_names(index, fn) -> set[str]:
    """Parameters/locals of reader type within `fn`."""
    names = set()
    for p in fn.param_list:
        if any(rt in p.type_text for rt in READER_TYPES):
            if p.name:
                names.add(p.name)
    toks = index.tokens
    lo, hi = fn.body
    for i in range(lo, hi - 1):
        if toks[i].kind == "id" and toks[i].text in READER_TYPES and \
                toks[i + 1].kind == "id":
            names.add(toks[i + 1].text)
    return names


def _stmt_assign_target(toks, lo, hi):
    """Name assigned/initialized in statement [lo, hi), or None."""
    depth = 0
    for i in range(lo, hi):
        tt = toks[i].text
        if tt in ("(", "[", "{"):
            depth += 1
        elif tt in (")", "]", "}"):
            depth -= 1
        elif depth == 0 and tt in ("=", "+=", "-=", "*=", "|=", "&=", "^="):
            if i > lo and toks[i - 1].kind == "id":
                return toks[i - 1].text, i
            return None, i
    return None, None


class TaintState:
    """Per-function taint facts, computed lexically."""

    def __init__(self, index, fn, rel_path: str):
        self.index = index
        self.fn = fn
        self.rel = rel_path
        self.readers = reader_names(index, fn)
        self.scalars: set[str] = set()     # tainted integers/values
        self.containers: set[str] = set()  # tainted byte/symbol buffers
        self.pointer_params = {p.name for p in fn.param_list
                               if p.type_text.rstrip().endswith("*")}
        self._seed_params()
        self._propagate()

    def _seed_params(self):
        for p in self.fn.param_list:
            if not p.name:
                continue
            container_ty = "span" in p.type_text or "vector" in p.type_text
            if container_ty and "const" in p.type_text and \
                    "uint8_t" in p.type_text:
                self.containers.add(p.name)
            elif container_ty and p.name in ("symbols", "bytes", "archive",
                                             "payload", "payloads", "input"):
                self.containers.add(p.name)

    def _source_call_in(self, lo: int, hi: int) -> bool:
        """Does [lo, hi) contain reader.get*() or a decode helper call?"""
        toks = self.index.tokens
        for i in range(lo, hi):
            t = toks[i]
            if t.kind != "id" or t.text not in TAINT_SOURCE_CALLS:
                continue
            # Method call on a reader, or a free decode helper.
            if i > 0 and toks[i - 1].text in (".", "->"):
                base = toks[i - 2].text if i >= 2 else ""
                if base in self.readers or base in ("r", "in", "h", "br"):
                    return True
                # `x.get(...)`-family on a known reader object is the
                # common case; calls named get_varint/stage_bytes etc.
                # only exist on readers/containers in this codebase.
                if t.text != "get":
                    return True
            elif t.text in ("huffman_decode", "rle_decode_symbols",
                            "lzb_decompress", "read_symbols_stage"):
                return True
        return False

    def _expr_tainted(self, lo: int, hi: int) -> bool:
        if self._source_call_in(lo, hi):
            return True
        toks = self.index.tokens
        for i in range(lo, hi):
            t = toks[i]
            if t.kind != "id":
                continue
            if i > 0 and toks[i - 1].text in (".", "->", "::"):
                continue  # member access: not the local name
            if t.text in self.scalars or t.text in self.containers:
                return True
        return False

    def _propagate(self):
        toks = self.index.tokens
        stmts = list(self.index.statements(*self.fn.body))
        container_returns = ("huffman_decode", "rle_decode_symbols",
                            "lzb_decompress", "read_symbols_stage",
                            "get_bytes", "get_block", "stage_bytes")
        for _ in range(3):  # lexical fixpoint: forward decl + reuse
            changed = False
            for lo, hi in stmts:
                name, eq = _stmt_assign_target(toks, lo, hi)
                if not name or eq is None:
                    continue
                rhs_lo, rhs_hi = eq + 1, hi
                if not self._expr_tainted(rhs_lo, rhs_hi):
                    continue
                is_container = any(
                    toks[i].kind == "id" and toks[i].text in container_returns
                    for i in range(rhs_lo, rhs_hi)) or any(
                    toks[i].kind == "id" and toks[i].text in self.containers
                    for i in range(rhs_lo, rhs_hi))
                target = self.containers if is_container else self.scalars
                if name not in target:
                    target.add(name)
                    changed = True
            if not changed:
                break

    # -- guard queries -----------------------------------------------------

    def guarded(self, at: int, names: set[str]) -> bool:
        """Is a use of `names` at token `at` dominated by a bound check?

        True when an earlier `if (...) throw/return` in the same body, or
        any enclosing if/while/for condition, mentions one of `names`
        together with a bounding term.
        """
        def cond_bounds(cond_text: str) -> bool:
            mentions = any(re.search(r"\b" + re.escape(n) + r"\b", cond_text)
                           for n in names if n)
            return mentions and bool(BOUNDING_TOKENS.search(cond_text))

        lo, hi = self.fn.body
        for pos, cond in self.index.throw_guards(lo, hi):
            if pos <= at and cond_bounds(cond):
                return True
        for _kw, cond, scope in self.index.control_scopes(lo, hi):
            if scope[0] <= at < scope[1] and \
                    cond_bounds(self.index.text(*cond)):
                return True
        return False

    def size_guarded(self, at: int, container: str) -> bool:
        """Like guarded(), for `container[...]` accesses: the condition
        must mention the container (its .size()/.empty(), or an arithmetic
        bound derived from it)."""
        return self.guarded(at, {container})
