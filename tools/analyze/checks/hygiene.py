"""codec API hygiene check.

Registry-reachable entry points are the compressor surface every caller
(the CLI, the transfer pipeline, the future qipd daemon) programs
against, so they carry two obligations:

* ``codec-nodiscard`` — a non-void codec-API definition (encode/decode/
  compress/decompress/codec_seal/codec_open*/inspect_container/
  read_dims/stage_bytes names) must be ``[[nodiscard]]``: dropping a
  codec result is always a bug. (qip_lint has a line-regex twin for
  declarations; this AST form sees through multi-line heads.)
* ``typed-errors`` — decode paths and registry lookups must throw the
  typed hierarchy (``DecodeError``, ``UnknownCodecError``), never raw
  ``std::runtime_error``: callers distinguish hostile-archive failures
  from internal assertions by type (see src/util/status.hpp).
"""

from __future__ import annotations

import re

from . import common

RULES = ("codec-nodiscard", "typed-errors")

# The archive-decode surface. src/util/ is deliberately absent:
# field_io.hpp is the CLI's *disk* I/O layer — its runtime_errors report
# local file problems to the operator, not hostile-archive conditions a
# caller would classify by type.
HYGIENE_DIRS = ("src/compressors/", "src/encode/", "src/lossless/",
                "src/quant/", "src/parallel/", "src/transfer/",
                "src/core/", "src/predict/")

API_NAME_RE = re.compile(
    r"^\w*(?:encode|decode|compress|decompress)\w*$"
    r"|^codec_seal$|^codec_open\w*$|^inspect_container$"
    r"|^read_dims$|^stage_bytes$")

REGISTRY_NAME_RE = re.compile(r"^(?:find|make|create)_\w*(?:compressor|codec)")


def run(ctx) -> None:
    if not ctx.rel.startswith(HYGIENE_DIRS):
        return
    index = ctx.index
    toks = index.tokens
    for fn in index.functions:
        if not fn.body:
            continue
        head = index.text(*fn.head)
        # -- codec-nodiscard -----------------------------------------------
        if ctx.rel.endswith(".hpp") and API_NAME_RE.match(fn.name):
            returns_value = head and "void" not in head.split()
            has_type = any(t.kind == "id" for t in
                           toks[fn.head[0]:fn.name_idx])
            if returns_value and has_type and "nodiscard" not in head:
                ctx.add("codec-nodiscard", toks[fn.name_idx].line,
                        f"codec entry point {fn.name}() returns a value "
                        "but is not [[nodiscard]]")
        # -- typed-errors --------------------------------------------------
        if not (common.is_decode_context(fn) or
                REGISTRY_NAME_RE.match(fn.name)):
            continue
        lo, hi = fn.body
        for i in range(lo, hi):
            if toks[i].kind == "id" and toks[i].text == "runtime_error" and \
                    i > lo and toks[i - 1].text in ("::", "throw"):
                # Look back past `std ::` for the throw keyword.
                j = i - 1
                while j > lo and toks[j].text in ("::", "std"):
                    j -= 1
                if toks[j].text != "throw":
                    continue
                kind = "UnknownCodecError" if \
                    REGISTRY_NAME_RE.match(fn.name) else "DecodeError"
                ctx.add("typed-errors", toks[i].line,
                        f"in {fn.name}(): raw std::runtime_error in a "
                        f"decode-facing path; throw {kind} so callers can "
                        "classify the failure (src/util/status.hpp)")
