"""Check registry for qip_analyze.

Each check module exposes ``RULES`` (the rule names it can emit) and
``run(ctx)``; ``ctx`` is one file's analysis context. Checks call
``ctx.add(rule, line_no, note)`` — suppression (inline allows) and
baselining happen in the driver, not here.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from qip_checklib import Finding  # noqa: E402

from . import bomb_alloc, confinement, hygiene, pool_capture, taint  # noqa: E402


class Ctx:
    """One file under analysis: its token index, path, and raw lines."""

    def __init__(self, index, rel: str, raw_lines: list[str]):
        self.index = index
        self.rel = rel
        self.lines = raw_lines
        self.findings: list[Finding] = []

    def add(self, rule: str, line_no: int, note: str = "") -> None:
        text = self.lines[line_no - 1] if 0 < line_no <= len(self.lines) \
            else ""
        self.findings.append(Finding(rule, self.rel, line_no, text, note))


# name -> module; drives --checks selection and the docs catalog.
CHECKS = {
    "taint": taint,
    "bomb-alloc": bomb_alloc,
    "pool-capture": pool_capture,
    "hygiene": hygiene,
    "confinement": confinement,
}

ALL_RULES = tuple(r for mod in CHECKS.values() for r in mod.RULES)
