"""untrusted-byte taint check.

In decode contexts, archive-derived buffers must only be read through
guarded accesses: either the ByteReader/BitReader APIs, or a subscript
dominated by an explicit size check. Three patterns are flagged:

* ``untrusted-index`` — ``buf[i]`` where ``buf`` is archive-derived and
  no dominating condition bounds the access against ``buf``'s size.
* ``untrusted-cursor`` — cursor-walk subscripts (``buf[cur++]``,
  ``buf[pos]``) on container members/params with no dominating bound;
  this is exactly the shape of the two hostile-archive holes the PR 3
  fuzz sweep found (lorenzo_walk, LinearQuantizer::recover).
* ``unguarded-memcpy`` — ``memcpy``/``memmove`` whose source is a
  tainted container's ``.data()`` with no dominating size check.

Raw-pointer parameters are exempt: they have no queryable size, so the
invariant there is "the public boundary validates before handing out the
pointer" (InterpEngine::decode is the template: it checks
``symbols.size() < dims.size()`` once, then walks raw pointers).
"""

from __future__ import annotations

import re

from . import common

RULES = ("untrusted-index", "untrusted-cursor", "unguarded-memcpy")

CURSOR_ID_RE = re.compile(r"\b\w*(?:cursor|pos)\w*\b")


def _ref_alias_names(index, lo: int, hi: int) -> set[str]:
    """Locals bound by reference (``Type& name = ...;``): borrowed views
    of state the function does not own (a member table, a shared
    buffer), so cursor walks over them need the same bounds discipline
    as subscripts of the member itself."""
    toks = index.tokens
    out = set()
    for i in range(lo + 1, hi - 2):
        if toks[i].text == "&" and toks[i + 1].kind == "id" and \
                toks[i + 2].text == "=":
            out.add(toks[i + 1].text)
    return out


def _index_ids(index, lo: int, hi: int) -> set[str]:
    out = set()
    toks = index.tokens
    for i in range(lo, hi):
        if toks[i].kind != "id":
            continue
        if i > 0 and toks[i - 1].text in (".", "->", "::"):
            continue
        out.add(toks[i].text)
    return out


def run(ctx) -> None:
    if not common.in_decode_scope(ctx.rel):
        return
    index = ctx.index
    toks = index.tokens
    for fn in index.functions:
        if not fn.body or not common.is_decode_context(fn):
            continue
        ts = common.TaintState(index, fn, ctx.rel)
        lo, hi = fn.body
        ref_aliases = _ref_alias_names(index, lo, hi)

        for i in range(lo, hi):
            t = toks[i]
            # -- subscript patterns ----------------------------------------
            if t.text == "[" and i in index.match and i > lo and \
                    toks[i - 1].kind == "id":
                base = toks[i - 1].text
                if i >= 2 and toks[i - 2].text in (".", "->", "::"):
                    continue  # member chain (table.symbols[...]): the
                    # owning object's invariants cover it
                if base in ts.pointer_params:
                    continue
                close = index.match[i]
                idx_text = index.text(i + 1, close)
                cursor_like = ("++" in idx_text or "+=" in idx_text or
                               CURSOR_ID_RE.search(idx_text))
                tainted = base in ts.containers
                member_container = base.endswith("_") or base in ref_aliases
                if not tainted and not (cursor_like and member_container):
                    continue
                names = {base} | _index_ids(index, i + 1, close)
                if ts.guarded(i, names):
                    continue
                rule = "untrusted-cursor" if cursor_like else \
                    "untrusted-index"
                ctx.add(rule, t.line,
                        f"in {fn.name}(): subscript of archive-derived "
                        f"'{base}' with no dominating size check; bound it "
                        "against the stream (see docs/ANALYSIS.md#taint)")
            # -- memcpy/memmove from tainted .data() -----------------------
            elif t.kind == "id" and t.text in ("memcpy", "memmove") and \
                    i + 1 < hi and toks[i + 1].text == "(" and \
                    (i + 1) in index.match:
                close = index.match[i + 1]
                args = index.text(i + 2, close)
                hit = None
                for c in ts.containers:
                    if re.search(r"\b" + re.escape(c) + r"\s*(?:\.|->)\s*data\b",
                                 args):
                        hit = c
                        break
                if hit is None or ts.guarded(i, {hit}):
                    continue
                ctx.add("unguarded-memcpy", t.line,
                        f"in {fn.name}(): {t.text} from archive-derived "
                        f"'{hit}' with no dominating size check; use the "
                        "ByteReader get_block/get_bytes APIs instead")
