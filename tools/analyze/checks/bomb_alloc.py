"""bomb-allocation check.

In decode contexts, an allocation whose size derives from an archive
header field (``resize``/``reserve``/``assign``, a ``std::vector``
count constructor, or ``new T[n]``) must be dominated by a cap check —
otherwise a 16-byte hostile archive can demand a multi-gigabyte
allocation before any payload is validated.

Accepted guard shapes (any one suffices):

* an earlier ``if (n > <bound>) throw/return`` in the same body, where
  ``<bound>`` involves the stream budget (``remaining()``), a buffer
  size, an explicit ``max_*`` cap, ``sizeof``, validated ``dims``, or a
  named constant;
* an enclosing ``if``/loop condition with the same shape;
* the size expression itself clamped through ``std::min``.

Iterator-range ``assign(first, last)`` calls are skipped — they copy an
existing in-memory range, not a header-claimed count.
"""

from __future__ import annotations

from . import common

RULES = ("bomb-alloc",)

ALLOC_METHODS = ("resize", "reserve", "assign")


def _direct_read_in(index, ts, lo: int, hi: int) -> bool:
    """Reader ``get*()`` call inside the argument range."""
    toks = index.tokens
    for i in range(lo, hi):
        t = toks[i]
        if t.kind == "id" and t.text in common.TAINT_SOURCE_CALLS and \
                i > 0 and toks[i - 1].text in (".", "->"):
            return True
    return False


def _arg_ids(index, lo: int, hi: int) -> set[str]:
    toks = index.tokens
    out = set()
    for i in range(lo, hi):
        if toks[i].kind == "id" and not (
                i > 0 and toks[i - 1].text in (".", "->", "::")):
            out.add(toks[i].text)
    return out


def _flag_site(ctx, ts, site: int, alo: int, ahi: int, what: str) -> None:
    index = ctx.index
    args = index.text(alo, ahi)
    if "min" in args:
        return  # std::min-clamped size
    tainted = _arg_ids(index, alo, ahi) & ts.scalars
    direct = _direct_read_in(index, ts, alo, ahi)
    if not tainted and not direct:
        return
    if tainted and ts.guarded(site, tainted):
        return
    # A size read straight from the stream into the allocation has no
    # name a guard could mention — always a bomb; name it, check it.
    src = ", ".join(sorted(tainted)) if tainted else "a direct stream read"
    ctx.add("bomb-alloc", index.tokens[site].line,
            f"in {ts.fn.name}(): {what} sized by {src} (archive header "
            "field) with no dominating cap check; bound it against "
            "r.remaining() or an explicit max before allocating")


def run(ctx) -> None:
    if not common.in_decode_scope(ctx.rel):
        return
    index = ctx.index
    toks = index.tokens
    for fn in index.functions:
        if not fn.body or not common.is_decode_context(fn):
            continue
        ts = common.TaintState(index, fn, ctx.rel)
        lo, hi = fn.body
        i = lo
        while i < hi:
            t = toks[i]
            # obj.resize(args) / obj.reserve(args) / obj.assign(args)
            if t.kind == "id" and t.text in ALLOC_METHODS and i > lo and \
                    toks[i - 1].text in (".", "->") and i + 1 < hi and \
                    toks[i + 1].text == "(" and (i + 1) in index.match:
                alo, ahi = i + 2, index.match[i + 1]
                args = index.text(alo, ahi)
                if t.text == "assign" and (".begin" in args.replace(" ", "")
                                           or "begin (" in args):
                    i = ahi + 1
                    continue
                _flag_site(ctx, ts, i, alo, ahi, f".{t.text}()")
                i = ahi + 1
                continue
            # std::vector<T> name(count, ...)
            if t.kind == "id" and t.text == "vector" and i + 1 < hi and \
                    toks[i + 1].text == "<":
                j = i + 1
                depth = 0
                while j < hi:
                    if toks[j].text == "<":
                        depth += 1
                    elif toks[j].text == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    elif toks[j].text == ">>":
                        depth -= 2
                        if depth <= 0:
                            break
                    j += 1
                j += 1
                if j < hi and toks[j].kind == "id" and j + 1 < hi and \
                        toks[j + 1].text == "(" and (j + 1) in index.match:
                    alo, ahi = j + 2, index.match[j + 1]
                    _flag_site(ctx, ts, j + 1, alo, ahi,
                               f"vector '{toks[j].text}' constructor")
                    i = ahi + 1
                    continue
            # new T[n]
            if t.kind == "id" and t.text == "new":
                j = i + 1
                while j < hi and (toks[j].kind == "id" or
                                  toks[j].text in ("::", "<", ">", "const")):
                    j += 1
                if j < hi and toks[j].text == "[" and j in index.match:
                    _flag_site(ctx, ts, j, j + 1, index.match[j], "new[]")
                    i = index.match[j] + 1
                    continue
            i += 1
