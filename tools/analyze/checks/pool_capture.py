"""ThreadPool capture-discipline check.

Lambdas handed to ``ThreadPool::parallel_for`` (or ``submit``) run
concurrently, so the rules are:

* ``pool-shared-write`` — a by-reference-captured local must not be
  mutated unless the write is index-partitioned (``parts[b] = ...``
  where the subscript derives from the lambda's own index parameter),
  the local is a ``std::atomic``, or the mutation sits under a lock.
* ``pool-reentry`` — the lambda must not re-enter pool scheduling
  (nested ``parallel_for``, ``submit``, constructing a ``ThreadPool``):
  the pool is nest-safe for *callers* (the submitting thread
  participates), not for tasks scheduling more tasks, and TSan only
  catches the resulting deadlocks probabilistically.

Both literal lambdas in the call and named lambdas
(``auto work = [&](...){...}; pool.parallel_for(..., work);``) are
resolved.
"""

from __future__ import annotations

import re

from . import common  # noqa: F401  (scope helpers shared across checks)

RULES = ("pool-shared-write", "pool-reentry")

SCHEDULING_APIS = ("parallel_for", "submit")
MUTATE_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=",
              "<<=", ">>=", "++", "--")
MUTATE_METHODS = ("push_back", "emplace_back", "insert", "emplace",
                  "resize", "clear", "assign", "pop_back", "erase")
LOCK_TYPES = ("lock_guard", "scoped_lock", "unique_lock")
CXX_KEYWORDS = {"if", "for", "while", "return", "const", "auto", "else",
                "switch", "case", "break", "continue", "do", "throw",
                "new", "delete", "static", "sizeof", "true", "false"}


def _byref_captures(capture_text: str):
    """(default_byref, explicit byref names) from a capture list."""
    toks = capture_text.split()
    default_byref = False
    names: set[str] = set()
    i = 0
    while i < len(toks):
        if toks[i] == "&":
            if i + 1 < len(toks) and re.fullmatch(r"\w+", toks[i + 1]) and \
                    toks[i + 1] != "this":
                names.add(toks[i + 1])
                i += 2
            else:
                default_byref = True
                i += 1
        else:
            i += 1
    return default_byref, names


def _declared_in(index, lo: int, hi: int) -> set[str]:
    """Names declared inside [lo, hi): `Type [&*>] name =/;/{/(` pairs."""
    toks = index.tokens
    out = set()
    for i in range(lo + 1, hi):
        a, b = toks[i - 1], toks[i]
        if b.kind != "id" or b.text in CXX_KEYWORDS or i + 1 >= hi or \
                toks[i + 1].text not in ("=", ";", "{", "("):
            continue
        # Walk back over declarator punctuation (`Field<T>& name`,
        # `auto& name`, `const T* name`) to the type token.
        j = i - 1
        while j > lo and toks[j].text in ("&", "*", "&&", ">"):
            j -= 1
        a = toks[j]
        if a.kind == "id" and a.text not in CXX_KEYWORDS - {"auto", "const"}:
            out.add(b.text)
    return out


def _atomic_names(index, fn) -> set[str]:
    """Locals of the enclosing function declared std::atomic."""
    toks = index.tokens
    out = set()
    lo, hi = fn.body
    for i in range(lo, hi - 1):
        if toks[i].kind == "id" and toks[i].text.startswith("atomic"):
            for j in range(i + 1, min(i + 8, hi)):
                if toks[j].kind == "id" and toks[j - 1].text in (">", "&"):
                    out.add(toks[j].text)
                    break
                if toks[j].text in (";", "("):
                    break
    return out


def _resolve_lambdas(index, fn, call_open: int):
    """Lambdas passed to the scheduling call at paren `call_open`."""
    close = index.match[call_open]
    toks = index.tokens
    # Literal lambdas whose capture list opens inside the call.
    cands = [lam for lam in index.lambdas
             if call_open < lam.captures[0] - 1 < close]
    # A lambda nested inside another candidate (a per-task helper such as
    # an outlier-segment flush, or a seg_fn handed down to a block-ranged
    # kernel slice) runs on that task's own stack: its by-ref captures
    # resolve to the task's locals. Check only the outermost lambdas —
    # their body scan spans the nested bodies too, so a nested mutation
    # of a *function*-scope capture is still caught.
    found = [lam for lam in cands
             if not any(o is not lam and
                        o.body[0] < lam.captures[0] - 1 < o.body[1]
                        for o in cands)]
    # Named lambdas: bare-id args matching `auto NAME = [...]` earlier.
    arg_names = {toks[i].text for i in range(call_open + 1, close)
                 if toks[i].kind == "id" and
                 not (i > 0 and toks[i - 1].text in (".", "->", "::"))}
    lo, hi = fn.body
    for i in range(lo, min(call_open, hi) - 2):
        if toks[i].text == "auto" and toks[i + 1].kind == "id" and \
                toks[i + 1].text in arg_names and toks[i + 2].text == "=":
            for lam in index.lambdas:
                if lam.captures[0] - 1 == i + 3:
                    found.append(lam)
    return found


def _check_lambda(ctx, fn, lam, atomics: set[str]) -> None:
    index = ctx.index
    toks = index.tokens
    blo, bhi = lam.body
    default_byref, byref = _byref_captures(lam.capture_text)
    local = _declared_in(index, blo, bhi) | set(lam.param_names)

    # Token positions already holding a scope lock (everything after the
    # first lock_guard/scoped_lock declaration in the body).
    lock_at = bhi
    for i in range(blo, bhi):
        if toks[i].kind == "id" and toks[i].text in LOCK_TYPES:
            lock_at = i
            break

    for i in range(blo, bhi):
        t = toks[i]
        if t.kind != "id":
            continue
        # -- re-entry ------------------------------------------------------
        if t.text in SCHEDULING_APIS and i + 1 < bhi and \
                toks[i + 1].text == "(":
            ctx.add("pool-reentry", t.line,
                    f"in {fn.name}(): lambda passed to the pool re-enters "
                    f"scheduling via {t.text}(); restructure so only the "
                    "submitting thread schedules work")
            continue
        if t.text == "ThreadPool" and i + 1 < bhi and \
                toks[i + 1].kind == "id":
            ctx.add("pool-reentry", t.line,
                    f"in {fn.name}(): lambda constructs a ThreadPool; "
                    "pools must be created by the submitting thread")
            continue
        # -- shared-write --------------------------------------------------
        if i > blo and toks[i - 1].text in (".", "->", "::"):
            continue
        name = t.text
        if name in local or name in atomics or name in CXX_KEYWORDS:
            continue
        if not default_byref and name not in byref:
            continue
        if i >= lock_at:
            continue  # mutation under a scope lock
        nxt = toks[i + 1].text if i + 1 < bhi else ""
        # The lexer emits ==/<=/>= as single tokens, so a bare "=" here
        # really is an assignment, not half of a comparison.
        mutated = nxt in MUTATE_OPS
        if i > blo and toks[i - 1].text in ("++", "--"):
            mutated = True
        if nxt in (".", "->") and i + 2 < bhi and \
                toks[i + 2].text in MUTATE_METHODS:
            mutated = True
        if nxt == "[" and (i + 1) in index.match:
            # Index-partitioned write: subscript mentions a lambda param
            # or a body-local index.
            sub_ids = {toks[j].text
                       for j in range(i + 2, index.match[i + 1])
                       if toks[j].kind == "id"}
            if sub_ids & local:
                continue
            after = index.match[i + 1] + 1
            nxt2 = toks[after].text if after < bhi else ""
            mutated = nxt2 in MUTATE_OPS or (
                nxt2 in (".", "->") and after + 1 < bhi and
                toks[after + 1].text in MUTATE_METHODS)
        if mutated:
            ctx.add("pool-shared-write", t.line,
                    f"in {fn.name}(): pool lambda mutates by-ref capture "
                    f"'{name}' without index partitioning, atomics, or a "
                    "lock; give each task its own slot (see "
                    "docs/ANALYSIS.md#pool-capture)")


def run(ctx) -> None:
    index = ctx.index
    toks = index.tokens
    for fn in index.functions:
        if not fn.body:
            continue
        atomics = _atomic_names(index, fn)
        lo, hi = fn.body
        seen: set[int] = set()
        for i in range(lo, hi):
            if toks[i].kind == "id" and toks[i].text in SCHEDULING_APIS \
                    and i + 1 < hi and toks[i + 1].text == "(" and \
                    (i + 1) in index.match:
                for lam in _resolve_lambdas(index, fn, i + 1):
                    if lam.body[0] in seen:
                        continue
                    seen.add(lam.body[0])
                    _check_lambda(ctx, fn, lam, atomics)
