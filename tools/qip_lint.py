#!/usr/bin/env python3
"""qip_lint: repo-invariant linter for the qip codebase.

Enforces the C++ conventions that clang-tidy/compilers don't catch for us
(CONTRIBUTING.md "Layout and conventions"), with a baseline file so
pre-existing, reviewed exceptions stay green while new violations fail.

Rules
-----
raw-alloc        No raw `new[]` / `malloc` / `calloc` / `realloc` / `free`
                 in src/ — containers and RAII only.
raw-cast         No `reinterpret_cast` in src/ — decode paths especially
                 must use memcpy-based ByteReader primitives; reviewed
                 write-side uses are baselined.
pragma-once      Every header under src/ starts with `#pragma once`.
include-order    Within each contiguous `#include` block, paths are
                 lexicographically sorted (quoted and angle includes are
                 not mixed inside one block).
std-endl         No `std::endl` in src/ (flushes in hot loops); use '\n'.
nodiscard        Status/value-returning codec APIs in src/ headers
                 (encode/decode/compress/decompress/codec_*/container
                 names) carry [[nodiscard]].
archive-magic    Archive magic literals (the 0x..504951 "QIP?" family)
                 appear only in compressors/core/container.* — every
                 other layer must name the shared constants.
codec-options    Per-codec *Config structs must not redeclare the common
                 CodecOptions fields (error_bound, qp, radius, kind,
                 pool); they inherit them from CodecOptions.
simd-confined    SIMD intrinsics (<immintrin.h> includes, _mm*/__m128-
                 family identifiers) appear only under src/simd/ — the
                 rest of the tree talks to the dispatch tables in
                 src/simd/dispatch.hpp so scalar/vector A/B stays a
                 runtime switch.

Usage
-----
    tools/qip_lint.py [--repo DIR] [--update-baseline]

Exit code 0 when every finding is baselined, 1 otherwise. Run with
--update-baseline only for violations that were explicitly reviewed, and
commit the updated tools/qip_lint_baseline.json with a justification in
the commit message. An inline `// qip-lint: allow(<rule>)` comment on the
offending line also suppresses a finding.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

RULES = (
    "raw-alloc",
    "raw-cast",
    "pragma-once",
    "include-order",
    "std-endl",
    "nodiscard",
    "archive-magic",
    "codec-options",
    "simd-confined",
)

ALLOW_RE = re.compile(r"//\s*qip-lint:\s*allow\(([a-z-]+)\)")

RAW_ALLOC_RE = re.compile(
    r"\bnew\s+[A-Za-z_][\w:<>]*\s*\[|\b(?:malloc|calloc|realloc|free)\s*\("
)
RAW_CAST_RE = re.compile(r"\breinterpret_cast\s*<")
STD_ENDL_RE = re.compile(r"\bstd::endl\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"][^>"]+[>"])')

# Vector intrinsics: the x86 intrinsic headers, the _mm/_mm256/_mm512
# call families, and the __m128/__m256/__m512 register types. Only
# src/simd/ may use them; __builtin_* (bswap, cpu_supports) is portable
# compiler surface and intentionally not matched.
SIMD_INTRINSIC_RE = re.compile(
    r'#\s*include\s*[<"]\w*intrin\.h[>"]'
    r"|\b_mm(?:256|512)?_\w+\s*\("
    r"|\b__m(?:64|128|256|512)[di]?\b"
)
SIMD_HOME = "src/simd/"

# Both container magics ("QIPC"/"QIPP") end in the bytes "QIP", so any
# 0x..504951 literal is an archive magic. Only the container layer may
# spell them out; everyone else uses kContainerMagic / kChunkedMagic.
ARCHIVE_MAGIC_RE = re.compile(r"0[xX][0-9a-fA-F]{1,2}504951")
ARCHIVE_MAGIC_HOME = "src/compressors/core/container"

# Member declarations of the common CodecOptions fields inside per-codec
# *Config structs. A leading type token keeps call sites and `cfg.qp = x`
# assignments from tripping it; the struct-body tracking in lint_file
# keeps function parameters out.
CODEC_OPTION_FIELD_RE = re.compile(
    r"^\s*(?:double|float|int|bool|std::size_t|std::int32_t|QPConfig|"
    r"InterpKind|ThreadPool\s*\*)\s*&?\s*"
    r"(?:error_bound|qp|radius|kind|pool)\s*[={;]"
)
CODEC_CONFIG_STRUCT_RE = re.compile(r"\bstruct\s+\w*Config\b")
CODEC_OPTIONS_HOME = "src/compressors/core/options.hpp"

# Codec-ish API names whose non-void results must not be silently dropped.
NODISCARD_NAME = (
    r"\w*(?:encode|decode|compress|decompress)\w*"
    r"|codec_seal|codec_open\w*|inspect_container|read_dims|stage_bytes"
)
# A declaration line: a return-type token (identifier/template/ref char)
# followed by whitespace, then the API name and an open paren. Call sites
# (`foo(`, `Obj::foo(`, `= foo(`, `return foo(`) don't match.
NODISCARD_DECL_RE = re.compile(
    r"^\s*(?!return\b)(?!.*[=!]=)(?!.*\breturn\b)(?!#)(?!.*\bvoid\s+\w)"
    r"[\w:\[\]<>,&*\s]*[\w>&*]\s+(" + NODISCARD_NAME + r")\s*\("
)


def strip_comments_and_strings(line: str) -> str:
    """Crudely blank out string/char literals and // comments.

    Good enough for grep-style rules; block comments are handled by the
    caller tracking state across lines.
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, rule: str, path: str, line_no: int, text: str):
        self.rule = rule
        self.path = path
        self.line_no = line_no
        self.text = text.strip()

    def key(self) -> str:
        # Line numbers drift; key on rule + path + offending text so the
        # baseline survives unrelated edits to the same file.
        return f"{self.rule}::{self.path}::{self.text}"

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.text}"


def iter_source_files(repo: Path):
    for pattern in ("src/**/*.hpp", "src/**/*.cpp"):
        yield from sorted(repo.glob(pattern))


def lint_file(repo: Path, path: Path) -> list[Finding]:
    rel = path.relative_to(repo).as_posix()
    raw_lines = path.read_text().splitlines()
    findings: list[Finding] = []
    allows: dict[int, set[str]] = {}
    clean_lines: list[str] = []

    in_block_comment = False
    for idx, raw in enumerate(raw_lines, 1):
        for m in ALLOW_RE.finditer(raw):
            allows.setdefault(idx, set()).add(m.group(1))
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                clean_lines.append("")
                continue
            line = line[end + 2:]
            in_block_comment = False
        # Strip /* ... */ possibly opening here.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]
        clean_lines.append(strip_comments_and_strings(line))

    def add(rule: str, line_no: int, text: str):
        if rule in allows.get(line_no, set()):
            return
        findings.append(Finding(rule, rel, line_no, text))

    # --- line-oriented rules ---
    for idx, line in enumerate(clean_lines, 1):
        if RAW_ALLOC_RE.search(line):
            add("raw-alloc", idx, raw_lines[idx - 1])
        if RAW_CAST_RE.search(line):
            add("raw-cast", idx, raw_lines[idx - 1])
        if STD_ENDL_RE.search(line):
            add("std-endl", idx, raw_lines[idx - 1])
        if ARCHIVE_MAGIC_RE.search(line) and not rel.startswith(
                ARCHIVE_MAGIC_HOME):
            add("archive-magic", idx, raw_lines[idx - 1])
        if SIMD_INTRINSIC_RE.search(line) and not rel.startswith(SIMD_HOME):
            add("simd-confined", idx, raw_lines[idx - 1])

    # --- codec-options: *Config struct bodies must not redeclare the
    # CodecOptions surface they inherit ---
    if (rel.startswith("src/compressors/") and rel.endswith(".hpp")
            and rel != CODEC_OPTIONS_HOME):
        depth = 0
        in_config = False
        for idx, line in enumerate(clean_lines, 1):
            if not in_config:
                if CODEC_CONFIG_STRUCT_RE.search(line) and ";" not in line:
                    in_config = True
                    depth = line.count("{") - line.count("}")
                continue
            if CODEC_OPTION_FIELD_RE.match(line):
                add("codec-options", idx, raw_lines[idx - 1])
            depth += line.count("{") - line.count("}")
            if depth <= 0:
                in_config = False

    # --- pragma-once: first non-blank, non-comment line of a header ---
    if path.suffix == ".hpp":
        first = next(
            ((i, l) for i, l in enumerate(clean_lines, 1) if l.strip()), None
        )
        if first is None or first[1].strip() != "#pragma once":
            add("pragma-once", first[0] if first else 1,
                "header must start with #pragma once")

    # --- include-order: each contiguous include block sorted, unmixed ---
    block: list[tuple[int, str]] = []

    def flush_block():
        nonlocal block
        if len(block) > 1:
            paths = [t for _, t in block]
            if paths != sorted(paths):
                add("include-order", block[0][0],
                    "unsorted include block: " + ", ".join(paths))
            kinds = {t[0] for t in paths}
            if len(kinds) > 1:
                add("include-order", block[0][0],
                    "mixed <...> and \"...\" in one include block")
        block = []

    for idx, line in enumerate(clean_lines, 1):
        m = INCLUDE_RE.match(line)
        if m:
            block.append((idx, m.group(1)))
        elif line.strip():
            flush_block()
        else:
            flush_block()
    flush_block()

    # --- nodiscard on codec APIs in headers ---
    if path.suffix == ".hpp":
        for idx, line in enumerate(clean_lines, 1):
            m = NODISCARD_DECL_RE.match(line)
            if not m:
                continue
            window = " ".join(clean_lines[max(0, idx - 3):idx])
            if "[[nodiscard]]" not in window:
                add("nodiscard", idx, raw_lines[idx - 1])

    return findings


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo", type=Path,
                    default=Path(__file__).resolve().parent.parent)
    ap.add_argument("--update-baseline", action="store_true")
    args = ap.parse_args()

    repo = args.repo.resolve()
    baseline_path = repo / "tools" / "qip_lint_baseline.json"
    baseline = {"findings": []}
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
    known = set(baseline.get("findings", []))

    files = list(iter_source_files(repo))
    if not files:
        print(f"qip_lint: error: no sources under {repo}/src — wrong --repo?",
              file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(repo, path))

    if args.update_baseline:
        baseline_path.write_text(
            json.dumps({"findings": sorted(f.key() for f in findings)},
                       indent=2) + "\n")
        print(f"qip_lint: baseline updated with {len(findings)} finding(s)")
        return 0

    fresh = [f for f in findings if f.key() not in known]
    stale = known - {f.key() for f in findings}
    for f in fresh:
        print(f, file=sys.stderr)
    if stale:
        print(f"qip_lint: note: {len(stale)} baselined finding(s) no longer "
              "occur; consider --update-baseline", file=sys.stderr)
    if fresh:
        print(f"qip_lint: {len(fresh)} new violation(s) "
              f"({len(findings) - len(fresh)} baselined)", file=sys.stderr)
        return 1
    print(f"qip_lint: clean ({len(findings)} baselined finding(s), "
          f"{sum(1 for _ in iter_source_files(repo))} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
