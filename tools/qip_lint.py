#!/usr/bin/env python3
"""qip_lint: repo-invariant linter for the qip codebase.

Enforces the C++ conventions that clang-tidy/compilers don't catch for us
(CONTRIBUTING.md "Layout and conventions"), with a baseline file so
pre-existing, reviewed exceptions stay green while new violations fail.
The finding/baseline/suppression mechanics live in tools/qip_checklib.py
and are shared with the AST analyzer (tools/analyze/qip_analyze.py); the
old `archive-magic` and `simd-confined` regex rules moved there as the
token-level `confinement` check, which doesn't trip on strings/comments.

Rules
-----
raw-alloc        No raw `new[]` / `malloc` / `calloc` / `realloc` / `free`
                 in src/ — containers and RAII only.
raw-cast         No `reinterpret_cast` in src/ — decode paths especially
                 must use memcpy-based ByteReader primitives; reviewed
                 write-side uses are baselined.
pragma-once      Every header under src/ starts with `#pragma once`.
include-order    Within each contiguous `#include` block, paths are
                 lexicographically sorted (quoted and angle includes are
                 not mixed inside one block).
std-endl         No `std::endl` in src/ (flushes in hot loops); use '\n'.
nodiscard        Status/value-returning codec APIs in src/ headers
                 (encode/decode/compress/decompress/codec_*/container
                 names) carry [[nodiscard]].
codec-options    Per-codec *Config structs must not redeclare the common
                 CodecOptions fields (error_bound, qp, radius, kind,
                 pool); they inherit them from CodecOptions.

Usage
-----
    tools/qip_lint.py [--repo DIR] [--update-baseline]

Exit code 0 when every finding is baselined, 1 otherwise. Run with
--update-baseline only for violations that were explicitly reviewed, and
commit the updated tools/qip_lint_baseline.json with a justification in
the commit message. An inline `// qip-lint: allow(<rule>)` comment on the
offending line also suppresses a finding.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from qip_checklib import (  # noqa: E402
    Baseline, Finding, clean_lines, collect_allows, report)

RULES = (
    "raw-alloc",
    "raw-cast",
    "pragma-once",
    "include-order",
    "std-endl",
    "nodiscard",
    "codec-options",
)

RAW_ALLOC_RE = re.compile(
    r"\bnew\s+[A-Za-z_][\w:<>]*\s*\[|\b(?:malloc|calloc|realloc|free)\s*\("
)
RAW_CAST_RE = re.compile(r"\breinterpret_cast\s*<")
STD_ENDL_RE = re.compile(r"\bstd::endl\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"][^>"]+[>"])')

# Member declarations of the common CodecOptions fields inside per-codec
# *Config structs. A leading type token keeps call sites and `cfg.qp = x`
# assignments from tripping it; the struct-body tracking in lint_file
# keeps function parameters out.
CODEC_OPTION_FIELD_RE = re.compile(
    r"^\s*(?:double|float|int|bool|std::size_t|std::int32_t|QPConfig|"
    r"InterpKind|ThreadPool\s*\*)\s*&?\s*"
    r"(?:error_bound|qp|radius|kind|pool)\s*[={;]"
)
CODEC_CONFIG_STRUCT_RE = re.compile(r"\bstruct\s+\w*Config\b")
CODEC_OPTIONS_HOME = "src/compressors/core/options.hpp"

# Codec-ish API names whose non-void results must not be silently dropped.
NODISCARD_NAME = (
    r"\w*(?:encode|decode|compress|decompress)\w*"
    r"|codec_seal|codec_open\w*|inspect_container|read_dims|stage_bytes"
)
# A declaration line: a return-type token (identifier/template/ref char)
# followed by whitespace, then the API name and an open paren. Call sites
# (`foo(`, `Obj::foo(`, `= foo(`, `return foo(`) don't match.
NODISCARD_DECL_RE = re.compile(
    r"^\s*(?!return\b)(?!.*[=!]=)(?!.*\breturn\b)(?!#)(?!.*\bvoid\s+\w)"
    r"[\w:\[\]<>,&*\s]*[\w>&*]\s+(" + NODISCARD_NAME + r")\s*\("
)


def iter_source_files(repo: Path):
    for pattern in ("src/**/*.hpp", "src/**/*.cpp"):
        yield from sorted(repo.glob(pattern))


def lint_file(repo: Path, path: Path) -> list[Finding]:
    rel = path.relative_to(repo).as_posix()
    raw_lines = path.read_text().splitlines()
    findings: list[Finding] = []
    allows = collect_allows(raw_lines, "qip-lint")
    cleaned = clean_lines(raw_lines)

    def add(rule: str, line_no: int, text: str):
        if rule in allows.get(line_no, set()):
            return
        findings.append(Finding(rule, rel, line_no, text))

    # --- line-oriented rules ---
    for idx, line in enumerate(cleaned, 1):
        if RAW_ALLOC_RE.search(line):
            add("raw-alloc", idx, raw_lines[idx - 1])
        if RAW_CAST_RE.search(line):
            add("raw-cast", idx, raw_lines[idx - 1])
        if STD_ENDL_RE.search(line):
            add("std-endl", idx, raw_lines[idx - 1])

    # --- codec-options: *Config struct bodies must not redeclare the
    # CodecOptions surface they inherit ---
    if (rel.startswith("src/compressors/") and rel.endswith(".hpp")
            and rel != CODEC_OPTIONS_HOME):
        depth = 0
        in_config = False
        for idx, line in enumerate(cleaned, 1):
            if not in_config:
                if CODEC_CONFIG_STRUCT_RE.search(line) and ";" not in line:
                    in_config = True
                    depth = line.count("{") - line.count("}")
                continue
            if CODEC_OPTION_FIELD_RE.match(line):
                add("codec-options", idx, raw_lines[idx - 1])
            depth += line.count("{") - line.count("}")
            if depth <= 0:
                in_config = False

    # --- pragma-once: first non-blank, non-comment line of a header ---
    if path.suffix == ".hpp":
        first = next(
            ((i, l) for i, l in enumerate(cleaned, 1) if l.strip()), None
        )
        if first is None or first[1].strip() != "#pragma once":
            add("pragma-once", first[0] if first else 1,
                "header must start with #pragma once")

    # --- include-order: each contiguous include block sorted, unmixed ---
    block: list[tuple[int, str]] = []

    def flush_block():
        nonlocal block
        if len(block) > 1:
            paths = [t for _, t in block]
            if paths != sorted(paths):
                add("include-order", block[0][0],
                    "unsorted include block: " + ", ".join(paths))
            kinds = {t[0] for t in paths}
            if len(kinds) > 1:
                add("include-order", block[0][0],
                    "mixed <...> and \"...\" in one include block")
        block = []

    for idx, line in enumerate(cleaned, 1):
        m = INCLUDE_RE.match(line)
        if m:
            block.append((idx, m.group(1)))
        else:
            flush_block()
    flush_block()

    # --- nodiscard on codec APIs in headers ---
    if path.suffix == ".hpp":
        for idx, line in enumerate(cleaned, 1):
            m = NODISCARD_DECL_RE.match(line)
            if not m:
                continue
            window = " ".join(cleaned[max(0, idx - 3):idx])
            if "[[nodiscard]]" not in window:
                add("nodiscard", idx, raw_lines[idx - 1])

    return findings


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repo", type=Path,
                    default=Path(__file__).resolve().parent.parent)
    ap.add_argument("--update-baseline", action="store_true")
    args = ap.parse_args()

    repo = args.repo.resolve()
    files = list(iter_source_files(repo))
    if not files:
        print(f"qip_lint: error: no sources under {repo}/src — wrong --repo?",
              file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(repo, path))

    baseline = Baseline(repo / "tools" / "qip_lint_baseline.json")
    return report("qip_lint", findings, baseline, args.update_baseline,
                  len(files), sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
