// qipc — command-line front end for the qip compression library.
//
//   qipc compress   -i data.raw --dims 100x500x500 -o data.qip
//                   [-c SZ3|QoZ|HPEZ|MGARD|ZFP|TTHRESH|SPERR] [-e 1e-3]
//                   [--rel] [--qp] [--tiles N] [--double]
//                   [--chunked [--slab N]]
//   qipc decompress -i data.qip -o recon.qfld [--raw recon.raw]
//   qipc preview    -i data.qip --level L -o coarse.qfld [--stats]
//   qipc extract    -i data.qip --region 0:64,0:64,0:64 -o sub.qfld [--stats]
//   qipc gen        -d miranda [-f 0] [--dims 256x384x384] -o field.qfld
//   qipc eval       -a orig.qfld -b recon.qfld
//   qipc info       -i data.qip
//
// Raw inputs are bare little-endian scalars (SDRBench layout) and need
// --dims; .qfld files are self-describing. preview/extract need a
// container-v3 archive (preview additionally needs a progressive codec;
// extract needs one compressed with --tiles).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compressors/core/container.hpp"
#include "compressors/registry.hpp"
#include "data/synthetic.hpp"
#include "parallel/chunked.hpp"
#include "serve/service.hpp"
#include "simd/dispatch.hpp"
#include "util/field_io.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace qip;

[[noreturn]] void usage(const char* why = nullptr) {
  if (why) std::fprintf(stderr, "qipc: %s\n\n", why);
  std::fprintf(stderr,
               "usage:\n"
               "  qipc compress   -i IN [--dims ZxYxX] -o OUT [-c COMP] [-e EB]\n"
               "                  [--rel] [--qp] [--tiles N] [--double]\n"
               "                  [--chunked] [--slab N]\n"
               "  qipc decompress -i IN.qip -o OUT.qfld [--double] [--raw]\n"
               "  qipc preview    -i IN.qip --level L -o OUT.qfld [--double]\n"
               "                  [--raw] [--stats]\n"
               "  qipc extract    -i IN.qip --region A:B,A:B,... -o OUT.qfld\n"
               "                  [--double] [--raw] [--stats]\n"
               "  qipc gen        -d DATASET [-f IDX] [--dims ZxYxX] [--seed S] -o OUT.qfld\n"
               "  qipc eval       -a A.qfld -b B.qfld\n"
               "  qipc info       -i IN.qip\n"
               "  qipc serve      --jobs FILE|- [--workers N] [--queue N]\n"
               "                  [--policy block|reject] [--out-dir DIR]\n"
               "                  [--metrics FILE]\n"
               "  qipc cpu\n"
               "compressors: MGARD SZ3 QoZ HPEZ ZFP TTHRESH SPERR\n"
               "datasets: miranda hurricane segsalt scale s3d cesm rtm\n");
  std::exit(2);
}

Dims parse_dims(const std::string& s) {
  std::size_t e[kMaxRank] = {0, 0, 0, 0};
  int rank = 0;
  std::size_t pos = 0;
  while (pos < s.size() && rank < kMaxRank) {
    std::size_t next = s.find('x', pos);
    if (next == std::string::npos) next = s.size();
    e[rank++] = static_cast<std::size_t>(std::stoull(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  switch (rank) {
    case 1: return Dims{e[0]};
    case 2: return Dims{e[0], e[1]};
    case 3: return Dims{e[0], e[1], e[2]};
    case 4: return Dims{e[0], e[1], e[2], e[3]};
    default: usage("bad --dims");
  }
}

struct Args {
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) != 0; }
  std::string get(const std::string& k, const std::string& dflt = "") const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  std::string require(const std::string& k) const {
    if (!has(k)) usage(("missing " + k).c_str());
    return kv.at(k);
  }
};

Args parse_args(int argc, char** argv, int from) {
  Args a;
  for (int i = from; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("-", 0) != 0) usage(("unexpected argument " + key).c_str());
    const bool flag = key == "--rel" || key == "--qp" || key == "--double" ||
                      key == "--chunked" || key == "--raw" || key == "--stats";
    if (flag) {
      a.kv[key] = std::string("1");
    } else {
      if (i + 1 >= argc) usage(("missing value for " + key).c_str());
      // std::string(p) rather than operator=(const char*): the latter
      // trips a GCC 12 -O3 -Wrestrict false positive under -Werror.
      a.kv[key] = std::string(argv[++i]);
    }
  }
  return a;
}

template <class T>
Field<T> load_input(const Args& a) {
  const std::string in = a.require("-i");
  if (in.size() > 5 && in.substr(in.size() - 5) == ".qfld")
    return read_qfld<T>(in);
  if (!a.has("--dims")) usage("raw input needs --dims");
  return read_raw<T>(in, parse_dims(a.get("--dims")));
}

template <class T>
int do_compress_t(const Args& a) {
  const Field<T> f = load_input<T>(a);
  const std::string comp = a.get("-c", "SZ3");
  double eb = std::stod(a.get("-e", "1e-3"));
  if (a.has("--rel"))
    eb *= static_cast<double>(value_range(f.span()).width());

  GenericOptions opt;
  opt.error_bound = eb;
  if (a.has("--qp")) opt.qp = QPConfig::best_fit();
  if (a.has("--tiles"))
    opt.tile_size = static_cast<std::size_t>(std::stoull(a.get("--tiles")));

  Timer t;
  std::vector<std::uint8_t> arc;
  if (a.has("--chunked")) {
    ChunkedOptions copt;
    copt.compressor = comp;
    copt.options = opt;
    if (a.has("--slab"))
      copt.slab = static_cast<std::size_t>(std::stoull(a.get("--slab")));
    arc = chunked_compress(f.data(), f.dims(), copt);
  } else {
    const auto& e = find_compressor(comp);
    if constexpr (std::is_same_v<T, float>)
      arc = e.compress_f32(f.data(), f.dims(), opt);
    else
      arc = e.compress_f64(f.data(), f.dims(), opt);
  }
  const double sec = t.seconds();
  write_bytes(a.require("-o"), arc);
  std::printf("%s %s  %zu -> %zu bytes  (CR %.2f)  %.2f MB/s  abs eb %.3e\n",
              comp.c_str(), f.dims().str().c_str(), f.size() * sizeof(T),
              arc.size(),
              static_cast<double>(f.size() * sizeof(T)) / arc.size(),
              f.size() * sizeof(T) / sec / 1e6, eb);
  return 0;
}

int do_compress(const Args& a) {
  return a.has("--double") ? do_compress_t<double>(a) : do_compress_t<float>(a);
}

template <class T>
int do_decompress_t(const Args& a) {
  const auto arc = read_bytes(a.require("-i"));
  Timer t;
  Field<T> out = [&] {
    // Chunked archives carry their own magic.
    ByteReader r(arc);
    if (r.get<std::uint32_t>() == kChunkedMagic)
      return chunked_decompress<T>(arc);
    const CompressorEntry& e = find_compressor_for(arc);
    if constexpr (std::is_same_v<T, float>)
      return e.decompress_f32(arc);
    else
      return e.decompress_f64(arc);
  }();
  const double sec = t.seconds();
  const std::string out_path = a.require("-o");
  if (a.has("--raw"))
    write_raw(out_path, out);
  else
    write_qfld(out_path, out);
  std::printf("decompressed %s  %.2f MB/s -> %s\n", out.dims().str().c_str(),
              out.size() * sizeof(T) / sec / 1e6, out_path.c_str());
  return 0;
}

void print_partial_stats(const PartialDecodeStats& st) {
  const double pct = st.payload_bytes_total
                         ? 100.0 * static_cast<double>(st.payload_bytes_read) /
                               static_cast<double>(st.payload_bytes_total)
                         : 100.0;
  std::printf("  payload read: %zu of %zu bytes (%.1f%%)\n",
              st.payload_bytes_read, st.payload_bytes_total, pct);
}

template <class T>
void write_field_output(const Args& a, const Field<T>& out) {
  const std::string out_path = a.require("-o");
  if (a.has("--raw"))
    write_raw(out_path, out);
  else
    write_qfld(out_path, out);
}

template <class T>
int do_preview_t(const Args& a) {
  const auto arc = read_bytes(a.require("-i"));
  const int level = std::stoi(a.require("--level"));
  const CompressorEntry& e = find_compressor_for(arc);
  PartialDecodeStats st;
  Timer t;
  Field<T> out = [&] {
    if constexpr (std::is_same_v<T, float>)
      return e.decompress_preview_f32(arc, level, &st);
    else
      return e.decompress_preview_f64(arc, level, &st);
  }();
  const double sec = t.seconds();
  write_field_output(a, out);
  std::printf("preview level %d: %s  %.2f MB/s\n", level,
              out.dims().str().c_str(),
              out.size() * sizeof(T) / sec / 1e6);
  if (a.has("--stats")) print_partial_stats(st);
  return 0;
}

/// "A:B,A:B,..." per leading axis; unmentioned axes span the full
/// extent. Half-open, field coordinates.
Box parse_region(const std::string& s, const Dims& dims) {
  Box b = Box::whole(dims);
  int axis = 0;
  std::size_t pos = 0;
  while (pos < s.size() && axis < dims.rank()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    const std::string part = s.substr(pos, next - pos);
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) usage("bad --region (want A:B,A:B,...)");
    b.lo[axis] = static_cast<std::size_t>(std::stoull(part.substr(0, colon)));
    b.hi[axis] = static_cast<std::size_t>(std::stoull(part.substr(colon + 1)));
    ++axis;
    pos = next + 1;
  }
  return b;
}

template <class T>
int do_extract_t(const Args& a) {
  const auto arc = read_bytes(a.require("-i"));
  const ContainerInfo info = inspect_container(arc);
  const Box box = parse_region(a.require("--region"), info.dims);
  const CompressorEntry& e = find_compressor_for(arc);
  PartialDecodeStats st;
  Timer t;
  Field<T> out = [&] {
    if constexpr (std::is_same_v<T, float>)
      return e.decompress_region_f32(arc, box, &st);
    else
      return e.decompress_region_f64(arc, box, &st);
  }();
  const double sec = t.seconds();
  write_field_output(a, out);
  std::printf("extracted %s of %s  %.2f MB/s\n", out.dims().str().c_str(),
              info.dims.str().c_str(), out.size() * sizeof(T) / sec / 1e6);
  if (a.has("--stats")) print_partial_stats(st);
  return 0;
}

int do_gen(const Args& a) {
  const std::string want = a.require("-d");
  const DatasetSpec* spec = nullptr;
  for (const auto& s : dataset_specs()) {
    std::string n = s.name;
    for (auto& ch : n) ch = static_cast<char>(std::tolower(ch));
    if (n == want) spec = &s;
  }
  if (!spec) usage("unknown dataset");
  const Dims dims =
      a.has("--dims") ? parse_dims(a.get("--dims")) : spec->bench_dims;
  const int field = std::stoi(a.get("-f", "0"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(std::stoull(a.get("--seed", "1")));
  const Field<float> f = make_field(spec->id, field, dims, seed);
  write_qfld(a.require("-o"), f);
  std::printf("generated %s field %d at %s -> %s\n", spec->name, field,
              dims.str().c_str(), a.require("-o").c_str());
  return 0;
}

int do_eval(const Args& a) {
  const Field<float> x = read_qfld<float>(a.require("-a"));
  const Field<float> y = read_qfld<float>(a.require("-b"));
  if (x.dims() != y.dims()) {
    std::fprintf(stderr, "shape mismatch: %s vs %s\n", x.dims().str().c_str(),
                 y.dims().str().c_str());
    return 1;
  }
  std::printf("PSNR %.3f dB  max|err| %.6e  MSE %.6e\n", psnr(x.span(), y.span()),
              max_abs_error(x.span(), y.span()), mse(x.span(), y.span()));
  return 0;
}

// Dispatch report: which SIMD tiers this binary carries, what the CPU
// supports, and what the runtime gates resolve to right now.
int do_cpu() {
  using simd::Tier;
  const char* fs = std::getenv("QIP_SIMD_FORCE_SCALAR");
  const char* cap = std::getenv("QIP_SIMD_TIER");
  std::printf("cpu tier:      %s\n", simd::to_string(simd::cpu_tier()));
  std::printf("avx512:        %s\n",
              simd::cpu_has_avx512() ? "yes (f+bw+dq+vl)" : "no");
  std::printf("compiled:     ");
  for (Tier t : {Tier::kScalar, Tier::kSSE42, Tier::kAVX2, Tier::kAVX512})
    if (simd::tier_compiled(t)) std::printf(" %s", simd::to_string(t));
  std::printf("\n");
  std::printf("tier cap:      %s\n", simd::to_string(simd::tier_cap()));
  std::printf("active tier:   %s%s\n", simd::to_string(simd::active_tier()),
              simd::force_scalar() ? "  (forced scalar)" : "");
  std::printf("huffman fast:  %s\n", simd::huffman_fast_enabled() ? "on" : "off");
  std::printf("QIP_SIMD_FORCE_SCALAR=%s  QIP_SIMD_TIER=%s\n",
              fs ? fs : "<unset>", cap ? cap : "<unset>");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  return 0;
}

const char* dtype_str(std::uint8_t tag) {
  return tag == 1 ? "f32" : tag == 2 ? "f64" : "unknown";
}

double pct_of(std::size_t part, std::size_t total) {
  return total ? 100.0 * static_cast<double>(part) /
                     static_cast<double>(total)
               : 0.0;
}

/// Per-level payload breakdown of one container-v3 directory, with tile
/// chunk counts on the tiled levels.
void print_payload_directory(const ContainerReader& in) {
  if (in.version() < 3) return;
  const PayloadDirectory& dir = in.directory();
  const std::size_t total = in.payload_bytes_declared();
  if (dir.tiling.active())
    std::printf("  tile directory: edge %zu, tiled levels 1..%d\n",
                dir.tiling.tile_size, dir.tiling.max_level);
  struct Agg {
    std::size_t chunks = 0, tiled = 0, bytes = 0, symbols = 0;
  };
  std::map<int, Agg, std::greater<int>> by_level;
  for (const ChunkEntry& c : dir.chunks) {
    Agg& g = by_level[c.level];
    ++g.chunks;
    if (c.tile != kWholeDomainTile) ++g.tiled;
    g.bytes += static_cast<std::size_t>(c.length);
    g.symbols += c.symbol_count;
  }
  for (const auto& [level, g] : by_level) {
    if (g.tiled)
      std::printf(
          "  level %-2d %8zu bytes (%5.1f%% of payload)  %zu tile chunks, "
          "%zu symbols\n",
          level, g.bytes, pct_of(g.bytes, total), g.tiled, g.symbols);
    else
      std::printf(
          "  level %-2d %8zu bytes (%5.1f%% of payload)  %zu chunk(s), "
          "%zu symbols\n",
          level, g.bytes, pct_of(g.bytes, total), g.chunks, g.symbols);
  }
}

/// What `qipc preview`/`qipc extract` will do with THIS archive, and —
/// when a capability is missing — why. Region decode needs all three of
/// codec support, a v3 payload directory, and a tile directory, so the
/// reason names the first missing ingredient.
void print_partial_capabilities(const ContainerReader& in,
                                const CompressorEntry* entry) {
  const bool codec_preview = entry && entry->supports_preview;
  const bool codec_region = entry && entry->supports_region;
  const bool v3 = in.version() >= 3;
  const bool tiled = v3 && in.directory().tiling.active();

  if (codec_preview && v3)
    std::printf("  preview: yes (per-level payload chunks)\n");
  else if (!codec_preview)
    std::printf("  preview: no (codec has no progressive decoder)\n");
  else
    std::printf(
        "  preview: no (container v%u predates the per-level payload "
        "directory; recompress to get v3)\n",
        static_cast<unsigned>(in.version()));

  if (codec_region && tiled) {
    std::printf("  region:  yes (tile directory present)\n");
  } else if (!codec_region) {
    std::printf("  region:  no (codec has no random-access region decoder)\n");
  } else if (!v3) {
    std::printf("  region:  no (container predates the payload directory)\n");
  } else {
    // The archive could have supported regions but was written untiled.
    // For HPEZ that is a deliberate trade: without --tiles the fine
    // levels go to block-wise plan refinement (better ratio) instead of
    // independently decodable tile chunks.
    std::printf(
        "  region:  no (archive is untiled; recompress with --tiles N%s)\n",
        entry->name == "HPEZ"
            ? " — untiled HPEZ spends the fine levels on block-wise plan "
              "refinement instead"
            : "");
  }
}

int do_info(const Args& a) {
  const auto arc = read_bytes(a.require("-i"));
  if (arc.size() >= 4) {
    ByteReader r(arc);
    if (r.get<std::uint32_t>() == kChunkedMagic) {
      const std::uint8_t dtype = r.get<std::uint8_t>();
      const Dims dims = read_dims(r);
      const std::size_t slab = static_cast<std::size_t>(r.get_varint());
      const std::size_t nchunks = static_cast<std::size_t>(r.get_varint());
      const std::size_t name_len = static_cast<std::size_t>(r.get_varint());
      if (name_len > r.remaining())
        throw DecodeError("chunked archive name overruns buffer");
      const auto name_bytes = r.get_bytes(name_len);
      const std::string name(name_bytes.begin(), name_bytes.end());
      std::printf(
          "chunked qip archive: codec=%s  dtype=%s  dims=%s  %zu bytes\n"
          "  slab=%zu  chunks=%zu\n",
          name.c_str(), dtype_str(dtype), dims.str().c_str(), arc.size(),
          slab, nchunks);
      // Aggregate the slabs' stage and payload-level breakdowns so a
      // chunked archive is as inspectable as a plain one.
      std::map<std::string, std::size_t> stage_bytes;
      std::map<int, std::size_t, std::greater<int>> level_bytes;
      std::size_t payload_total = 0;
      for (std::size_t c = 0; c < nchunks; ++c) {
        const ContainerReader in(r.get_block());
        for (const auto& s : in.sections())
          stage_bytes[stage_name(s.id)] += s.size;
        if (in.version() >= 3) {
          payload_total += in.payload_bytes_declared();
          for (const ChunkEntry& ce : in.directory().chunks)
            level_bytes[ce.level] += static_cast<std::size_t>(ce.length);
        }
      }
      for (const auto& [sname, size] : stage_bytes)
        std::printf("  stage %-11s %zu bytes (all slabs)\n", sname.c_str(),
                    size);
      for (const auto& [level, size] : level_bytes)
        std::printf("  level %-2d %8zu bytes (%5.1f%% of payload, all slabs)\n",
                    level, size, pct_of(size, payload_total));
      return 0;
    }
  }
  // inspect_container throws UnknownCodecError (with the offending
  // version) on a format this build cannot read; an unknown codec id is
  // still reported below from the registry miss.
  const ContainerInfo info = inspect_container(arc);
  std::string codec =
      "unknown id " + std::to_string(static_cast<unsigned>(info.codec));
  const CompressorEntry* entry = nullptr;
  for (const auto& e : compressor_registry())
    if (e.id == info.codec) {
      codec = e.name;
      entry = &e;
    }
  std::printf(
      "qip container v%u: codec=%s  dtype=%s  dims=%s\n"
      "  %zu bytes = %zu header + %zu compressed stage body\n",
      static_cast<unsigned>(info.version), codec.c_str(),
      dtype_str(info.dtype), info.dims.str().c_str(), arc.size(),
      info.header_bytes, info.body_bytes);
  const ContainerReader in(arc);
  for (const auto& s : in.sections())
    std::printf("  stage %-11s %zu bytes\n", stage_name(s.id).c_str(),
                s.size);
  print_payload_directory(in);
  print_partial_capabilities(in, entry);
  return 0;
}

const char* kind_str(serve::JobKind k) {
  switch (k) {
    case serve::JobKind::kCompress: return "compress";
    case serve::JobKind::kDecompress: return "decompress";
    case serve::JobKind::kPreview: return "preview";
    case serve::JobKind::kRegion: return "region";
  }
  return "?";
}

/// One job description per line, whitespace-separated:
///
///   compress   PATH ZxYxX CODEC [EB] [chunked] [double] [qp] [tiles=N]
///   decompress PATH
///   preview    PATH LEVEL
///   region     PATH A:B,A:B,...
///
/// PATH is mapped (zero-copy when the file is mappable) and served by
/// the qipd Service; decode-direction jobs detect dtype and format from
/// the archive header. Blank lines and #-comments are skipped.
bool parse_job_line(const std::string& line, serve::JobSpec& spec) {
  std::istringstream ss(line);
  std::string kind, path;
  if (!(ss >> kind) || kind[0] == '#') return false;
  if (!(ss >> path)) usage(("serve: job line needs a path: " + line).c_str());

  // Map the input; non-mappable files fall back to a buffered read.
  auto mf = std::make_shared<MappedFile>(MappedFile::map(path));
  if (mf->valid()) {
    spec.input = mf->bytes();
    spec.keepalive = std::move(mf);
  } else {
    auto buf = std::make_shared<std::vector<std::uint8_t>>(read_bytes(path));
    spec.input = *buf;
    spec.keepalive = std::move(buf);
  }

  if (kind == "compress") {
    spec.kind = serve::JobKind::kCompress;
    std::string dims, codec;
    if (!(ss >> dims >> codec))
      usage(("serve: compress line needs DIMS CODEC: " + line).c_str());
    spec.dims = parse_dims(dims);
    spec.codec = codec;
    std::string tok;
    while (ss >> tok) {
      if (tok == "chunked")
        spec.chunked = true;
      else if (tok == "double")
        spec.f64 = true;
      else if (tok == "qp")
        spec.options.qp = QPConfig::best_fit();
      else if (tok.rfind("tiles=", 0) == 0)
        spec.options.tile_size =
            static_cast<std::size_t>(std::stoull(tok.substr(6)));
      else
        spec.options.error_bound = std::stod(tok);
    }
  } else if (kind == "decompress") {
    spec.kind = serve::JobKind::kDecompress;
  } else if (kind == "preview") {
    spec.kind = serve::JobKind::kPreview;
    int level = 0;
    if (!(ss >> level)) usage(("serve: preview line needs LEVEL: " + line).c_str());
    spec.level = level;
  } else if (kind == "region") {
    spec.kind = serve::JobKind::kRegion;
    std::string region;
    if (!(ss >> region))
      usage(("serve: region line needs A:B,...: " + line).c_str());
    spec.region = parse_region(region, inspect_container(spec.input).dims);
  } else {
    usage(("serve: unknown job kind " + kind).c_str());
  }
  return true;
}

int do_serve(const Args& a) {
  serve::ServeOptions so;
  if (a.has("--workers"))
    so.workers = static_cast<unsigned>(std::stoul(a.get("--workers")));
  if (a.has("--queue"))
    so.queue_capacity = static_cast<std::size_t>(std::stoull(a.get("--queue")));
  if (a.get("--policy", "block") == "reject")
    so.policy = serve::AdmitPolicy::kReject;
  serve::Service svc(so);

  const std::string jobs_path = a.require("--jobs");
  std::FILE* jf = jobs_path == "-" ? stdin : std::fopen(jobs_path.c_str(), "r");
  if (!jf) usage(("serve: cannot open " + jobs_path).c_str());

  std::FILE* mf = nullptr;
  if (a.has("--metrics")) {
    mf = std::fopen(a.get("--metrics").c_str(), "w");
    if (!mf) usage("serve: cannot open --metrics file");
  }
  if (a.has("--out-dir"))
    std::filesystem::create_directories(a.get("--out-dir"));

  struct Pending {
    std::future<serve::JobResult> fut;
    serve::JobKind kind;
  };
  std::vector<Pending> pending;
  std::size_t rejected = 0;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), jf)) {
    const std::string line(buf);
    serve::JobSpec spec;
    if (!parse_job_line(line, spec)) continue;
    const serve::JobKind kind = spec.kind;
    auto fut = svc.submit(std::move(spec));
    if (!fut) {
      ++rejected;
      continue;
    }
    pending.push_back({std::move(*fut), kind});
  }
  if (jf != stdin) std::fclose(jf);

  std::size_t failed = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    serve::JobResult r = pending[i].fut.get();
    const auto& m = r.metrics;
    if (!m.ok) {
      ++failed;
      std::fprintf(stderr, "serve: job %zu (%s) failed: %s\n", i,
                   kind_str(pending[i].kind), m.error.c_str());
    }
    if (mf)
      std::fprintf(mf,
                   "{\"job\":%zu,\"kind\":\"%s\",\"ok\":%s,"
                   "\"queue_wait_s\":%.6f,\"service_s\":%.6f,"
                   "\"input_bytes\":%zu,\"output_bytes\":%zu,\"cr\":%.3f,"
                   "\"intra_workers\":%u}\n",
                   i, kind_str(pending[i].kind), m.ok ? "true" : "false",
                   m.queue_wait_s, m.service_s, m.input_bytes, m.output_bytes,
                   m.cr, m.intra_workers);
    if (m.ok && a.has("--out-dir")) {
      std::ostringstream name;
      name << a.get("--out-dir") << "/job-" << i
           << (pending[i].kind == serve::JobKind::kCompress ? ".qip" : ".raw");
      write_bytes(name.str(), r.bytes);
    }
  }
  if (mf) std::fclose(mf);

  const serve::ServiceMetrics sm = svc.metrics();
  std::printf(
      "served %zu jobs on %u workers: %llu ok, %zu failed, %zu rejected, "
      "%llu with intra-job fan-out\n",
      pending.size(), svc.workers(),
      static_cast<unsigned long long>(sm.completed), failed, rejected,
      static_cast<unsigned long long>(sm.large_jobs));
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    const Args a = parse_args(argc, argv, 2);
    if (cmd == "compress") return do_compress(a);
    if (cmd == "decompress")
      return a.has("--double") ? do_decompress_t<double>(a)
                               : do_decompress_t<float>(a);
    if (cmd == "preview")
      return a.has("--double") ? do_preview_t<double>(a)
                               : do_preview_t<float>(a);
    if (cmd == "extract")
      return a.has("--double") ? do_extract_t<double>(a)
                               : do_extract_t<float>(a);
    if (cmd == "gen") return do_gen(a);
    if (cmd == "eval") return do_eval(a);
    if (cmd == "info") return do_info(a);
    if (cmd == "serve") return do_serve(a);
    if (cmd == "cpu") return do_cpu();
    usage(("unknown command " + cmd).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qipc: %s\n", e.what());
    return 1;
  }
}
