// qipc — command-line front end for the qip compression library.
//
//   qipc compress   -i data.raw --dims 100x500x500 -o data.qip
//                   [-c SZ3|QoZ|HPEZ|MGARD|ZFP|TTHRESH|SPERR] [-e 1e-3]
//                   [--rel] [--qp] [--double] [--chunked [--slab N]]
//   qipc decompress -i data.qip -o recon.qfld [--raw recon.raw]
//   qipc gen        -d miranda [-f 0] [--dims 256x384x384] -o field.qfld
//   qipc eval       -a orig.qfld -b recon.qfld
//   qipc info       -i data.qip
//
// Raw inputs are bare little-endian scalars (SDRBench layout) and need
// --dims; .qfld files are self-describing.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include "compressors/core/container.hpp"
#include "compressors/registry.hpp"
#include "data/synthetic.hpp"
#include "parallel/chunked.hpp"
#include "simd/dispatch.hpp"
#include "util/field_io.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace qip;

[[noreturn]] void usage(const char* why = nullptr) {
  if (why) std::fprintf(stderr, "qipc: %s\n\n", why);
  std::fprintf(stderr,
               "usage:\n"
               "  qipc compress   -i IN [--dims ZxYxX] -o OUT [-c COMP] [-e EB]\n"
               "                  [--rel] [--qp] [--double] [--chunked] [--slab N]\n"
               "  qipc decompress -i IN.qip -o OUT.qfld [--double] [--raw]\n"
               "  qipc gen        -d DATASET [-f IDX] [--dims ZxYxX] [--seed S] -o OUT.qfld\n"
               "  qipc eval       -a A.qfld -b B.qfld\n"
               "  qipc info       -i IN.qip\n"
               "  qipc cpu\n"
               "compressors: MGARD SZ3 QoZ HPEZ ZFP TTHRESH SPERR\n"
               "datasets: miranda hurricane segsalt scale s3d cesm rtm\n");
  std::exit(2);
}

Dims parse_dims(const std::string& s) {
  std::size_t e[kMaxRank] = {0, 0, 0, 0};
  int rank = 0;
  std::size_t pos = 0;
  while (pos < s.size() && rank < kMaxRank) {
    std::size_t next = s.find('x', pos);
    if (next == std::string::npos) next = s.size();
    e[rank++] = static_cast<std::size_t>(std::stoull(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  switch (rank) {
    case 1: return Dims{e[0]};
    case 2: return Dims{e[0], e[1]};
    case 3: return Dims{e[0], e[1], e[2]};
    case 4: return Dims{e[0], e[1], e[2], e[3]};
    default: usage("bad --dims");
  }
}

struct Args {
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) != 0; }
  std::string get(const std::string& k, const std::string& dflt = "") const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  std::string require(const std::string& k) const {
    if (!has(k)) usage(("missing " + k).c_str());
    return kv.at(k);
  }
};

Args parse_args(int argc, char** argv, int from) {
  Args a;
  for (int i = from; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("-", 0) != 0) usage(("unexpected argument " + key).c_str());
    const bool flag = key == "--rel" || key == "--qp" || key == "--double" ||
                      key == "--chunked" || key == "--raw";
    if (flag) {
      a.kv[key] = std::string("1");
    } else {
      if (i + 1 >= argc) usage(("missing value for " + key).c_str());
      // std::string(p) rather than operator=(const char*): the latter
      // trips a GCC 12 -O3 -Wrestrict false positive under -Werror.
      a.kv[key] = std::string(argv[++i]);
    }
  }
  return a;
}

template <class T>
Field<T> load_input(const Args& a) {
  const std::string in = a.require("-i");
  if (in.size() > 5 && in.substr(in.size() - 5) == ".qfld")
    return read_qfld<T>(in);
  if (!a.has("--dims")) usage("raw input needs --dims");
  return read_raw<T>(in, parse_dims(a.get("--dims")));
}

template <class T>
int do_compress_t(const Args& a) {
  const Field<T> f = load_input<T>(a);
  const std::string comp = a.get("-c", "SZ3");
  double eb = std::stod(a.get("-e", "1e-3"));
  if (a.has("--rel"))
    eb *= static_cast<double>(value_range(f.span()).width());

  GenericOptions opt;
  opt.error_bound = eb;
  if (a.has("--qp")) opt.qp = QPConfig::best_fit();

  Timer t;
  std::vector<std::uint8_t> arc;
  if (a.has("--chunked")) {
    ChunkedOptions copt;
    copt.compressor = comp;
    copt.options = opt;
    if (a.has("--slab"))
      copt.slab = static_cast<std::size_t>(std::stoull(a.get("--slab")));
    arc = chunked_compress(f.data(), f.dims(), copt);
  } else {
    const auto& e = find_compressor(comp);
    if constexpr (std::is_same_v<T, float>)
      arc = e.compress_f32(f.data(), f.dims(), opt);
    else
      arc = e.compress_f64(f.data(), f.dims(), opt);
  }
  const double sec = t.seconds();
  write_bytes(a.require("-o"), arc);
  std::printf("%s %s  %zu -> %zu bytes  (CR %.2f)  %.2f MB/s  abs eb %.3e\n",
              comp.c_str(), f.dims().str().c_str(), f.size() * sizeof(T),
              arc.size(),
              static_cast<double>(f.size() * sizeof(T)) / arc.size(),
              f.size() * sizeof(T) / sec / 1e6, eb);
  return 0;
}

int do_compress(const Args& a) {
  return a.has("--double") ? do_compress_t<double>(a) : do_compress_t<float>(a);
}

template <class T>
int do_decompress_t(const Args& a) {
  const auto arc = read_bytes(a.require("-i"));
  Timer t;
  Field<T> out = [&] {
    // Chunked archives carry their own magic.
    ByteReader r(arc);
    if (r.get<std::uint32_t>() == kChunkedMagic)
      return chunked_decompress<T>(arc);
    const CompressorEntry& e = find_compressor_for(arc);
    if constexpr (std::is_same_v<T, float>)
      return e.decompress_f32(arc);
    else
      return e.decompress_f64(arc);
  }();
  const double sec = t.seconds();
  const std::string out_path = a.require("-o");
  if (a.has("--raw"))
    write_raw(out_path, out);
  else
    write_qfld(out_path, out);
  std::printf("decompressed %s  %.2f MB/s -> %s\n", out.dims().str().c_str(),
              out.size() * sizeof(T) / sec / 1e6, out_path.c_str());
  return 0;
}

int do_gen(const Args& a) {
  const std::string want = a.require("-d");
  const DatasetSpec* spec = nullptr;
  for (const auto& s : dataset_specs()) {
    std::string n = s.name;
    for (auto& ch : n) ch = static_cast<char>(std::tolower(ch));
    if (n == want) spec = &s;
  }
  if (!spec) usage("unknown dataset");
  const Dims dims =
      a.has("--dims") ? parse_dims(a.get("--dims")) : spec->bench_dims;
  const int field = std::stoi(a.get("-f", "0"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(std::stoull(a.get("--seed", "1")));
  const Field<float> f = make_field(spec->id, field, dims, seed);
  write_qfld(a.require("-o"), f);
  std::printf("generated %s field %d at %s -> %s\n", spec->name, field,
              dims.str().c_str(), a.require("-o").c_str());
  return 0;
}

int do_eval(const Args& a) {
  const Field<float> x = read_qfld<float>(a.require("-a"));
  const Field<float> y = read_qfld<float>(a.require("-b"));
  if (x.dims() != y.dims()) {
    std::fprintf(stderr, "shape mismatch: %s vs %s\n", x.dims().str().c_str(),
                 y.dims().str().c_str());
    return 1;
  }
  std::printf("PSNR %.3f dB  max|err| %.6e  MSE %.6e\n", psnr(x.span(), y.span()),
              max_abs_error(x.span(), y.span()), mse(x.span(), y.span()));
  return 0;
}

// Dispatch report: which SIMD tiers this binary carries, what the CPU
// supports, and what the runtime gates resolve to right now.
int do_cpu() {
  using simd::Tier;
  const char* fs = std::getenv("QIP_SIMD_FORCE_SCALAR");
  const char* cap = std::getenv("QIP_SIMD_TIER");
  std::printf("cpu tier:      %s\n", simd::to_string(simd::cpu_tier()));
  std::printf("avx512:        %s\n",
              simd::cpu_has_avx512() ? "yes (f+bw+dq+vl)" : "no");
  std::printf("compiled:     ");
  for (Tier t : {Tier::kScalar, Tier::kSSE42, Tier::kAVX2, Tier::kAVX512})
    if (simd::tier_compiled(t)) std::printf(" %s", simd::to_string(t));
  std::printf("\n");
  std::printf("tier cap:      %s\n", simd::to_string(simd::tier_cap()));
  std::printf("active tier:   %s%s\n", simd::to_string(simd::active_tier()),
              simd::force_scalar() ? "  (forced scalar)" : "");
  std::printf("huffman fast:  %s\n", simd::huffman_fast_enabled() ? "on" : "off");
  std::printf("QIP_SIMD_FORCE_SCALAR=%s  QIP_SIMD_TIER=%s\n",
              fs ? fs : "<unset>", cap ? cap : "<unset>");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  return 0;
}

const char* dtype_str(std::uint8_t tag) {
  return tag == 1 ? "f32" : tag == 2 ? "f64" : "unknown";
}

int do_info(const Args& a) {
  const auto arc = read_bytes(a.require("-i"));
  if (arc.size() >= 4) {
    ByteReader r(arc);
    if (r.get<std::uint32_t>() == kChunkedMagic) {
      const std::uint8_t dtype = r.get<std::uint8_t>();
      const Dims dims = read_dims(r);
      const std::size_t slab = static_cast<std::size_t>(r.get_varint());
      const std::size_t nchunks = static_cast<std::size_t>(r.get_varint());
      const std::size_t name_len = static_cast<std::size_t>(r.get_varint());
      if (name_len > r.remaining())
        throw DecodeError("chunked archive name overruns buffer");
      const auto name_bytes = r.get_bytes(name_len);
      const std::string name(name_bytes.begin(), name_bytes.end());
      std::printf(
          "chunked qip archive: codec=%s  dtype=%s  dims=%s  %zu bytes\n"
          "  slab=%zu  chunks=%zu\n",
          name.c_str(), dtype_str(dtype), dims.str().c_str(), arc.size(),
          slab, nchunks);
      return 0;
    }
  }
  // inspect_container throws UnknownCodecError (with the offending
  // version) on a format this build cannot read; an unknown codec id is
  // still reported below from the registry miss.
  const ContainerInfo info = inspect_container(arc);
  std::string codec =
      "unknown id " + std::to_string(static_cast<unsigned>(info.codec));
  for (const auto& e : compressor_registry())
    if (e.id == info.codec) codec = e.name;
  std::printf(
      "qip container v%u: codec=%s  dtype=%s  dims=%s\n"
      "  %zu bytes = %zu header + %zu compressed stage body\n",
      static_cast<unsigned>(info.version), codec.c_str(),
      dtype_str(info.dtype), info.dims.str().c_str(), arc.size(),
      info.header_bytes, info.body_bytes);
  const ContainerReader in(arc);
  for (const auto& s : in.sections())
    std::printf("  stage %-11s %zu bytes\n", stage_name(s.id).c_str(),
                s.size);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    const Args a = parse_args(argc, argv, 2);
    if (cmd == "compress") return do_compress(a);
    if (cmd == "decompress")
      return a.has("--double") ? do_decompress_t<double>(a)
                               : do_decompress_t<float>(a);
    if (cmd == "gen") return do_gen(a);
    if (cmd == "eval") return do_eval(a);
    if (cmd == "info") return do_info(a);
    if (cmd == "cpu") return do_cpu();
    usage(("unknown command " + cmd).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qipc: %s\n", e.what());
    return 1;
  }
}
