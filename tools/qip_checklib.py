"""qip_checklib: the finding/baseline/suppression layer shared by
tools/qip_lint.py (regex rules) and tools/analyze/qip_analyze.py (AST
rules).

Both tools speak the same three mechanisms so a developer learns them
once:

* **Finding** — one violation, keyed on ``rule::path::text`` so the
  baseline survives unrelated edits that shift line numbers.
* **Inline allows** — a ``// <tag>: allow(<rule>)`` comment on the
  offending line suppresses that rule there. Each tool has its own tag
  (``qip-lint`` / ``qip-analyze``) so a lint allow never silences an
  analyzer finding by accident.
* **Baseline** — a committed JSON file of reviewed, pre-existing finding
  keys. Fresh findings (not in the baseline, not allowed inline) fail
  the run; stale baseline entries are reported so the file shrinks over
  time. ``--update-baseline`` rewrites it from the current findings.
"""

from __future__ import annotations

import json
import re
from pathlib import Path


class Finding:
    """One rule violation at a specific source line."""

    def __init__(self, rule: str, path: str, line_no: int, text: str,
                 note: str = ""):
        self.rule = rule
        self.path = path
        self.line_no = line_no
        self.text = text.strip()
        self.note = note

    def key(self) -> str:
        # Line numbers drift; key on rule + path + offending text so the
        # baseline survives unrelated edits to the same file.
        return f"{self.rule}::{self.path}::{self.text}"

    def __str__(self) -> str:
        msg = f"{self.path}:{self.line_no}: [{self.rule}] {self.text}"
        if self.note:
            msg += f"\n    note: {self.note}"
        return msg


def make_allow_re(tag: str) -> re.Pattern:
    """Regex matching ``// <tag>: allow(rule-name)``."""
    return re.compile(r"//\s*" + re.escape(tag) + r":\s*allow\(([a-z0-9-]+)\)")


def collect_allows(lines: list[str], tag: str) -> dict[int, set[str]]:
    """Map 1-based line number -> set of rules allowed on that line."""
    allow_re = make_allow_re(tag)
    allows: dict[int, set[str]] = {}
    for idx, raw in enumerate(lines, 1):
        for m in allow_re.finditer(raw):
            allows.setdefault(idx, set()).add(m.group(1))
    return allows


def strip_comments_and_strings(line: str) -> str:
    """Crudely blank out string/char literals and // comments.

    Good enough for grep-style rules; block comments are handled by the
    caller tracking state across lines (see clean_lines()).
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def clean_lines(raw_lines: list[str]) -> list[str]:
    """Per-line source with comments and string/char bodies blanked."""
    cleaned: list[str] = []
    in_block_comment = False
    for raw in raw_lines:
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                cleaned.append("")
                continue
            line = line[end + 2:]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]
        cleaned.append(strip_comments_and_strings(line))
    return cleaned


class Baseline:
    """The committed set of reviewed finding keys for one tool."""

    def __init__(self, path: Path):
        self.path = path
        self.known: set[str] = set()
        if path.exists():
            self.known = set(json.loads(path.read_text()).get("findings", []))

    def update(self, findings: list[Finding]) -> None:
        self.path.write_text(
            json.dumps({"findings": sorted(f.key() for f in findings)},
                       indent=2) + "\n")

    def split(self, findings: list[Finding]):
        """(fresh findings, stale baseline keys)."""
        keys = {f.key() for f in findings}
        fresh = [f for f in findings if f.key() not in self.known]
        stale = self.known - keys
        return fresh, stale


def report(tool: str, findings: list[Finding], baseline: Baseline,
           update_baseline: bool, file_count: int, err) -> int:
    """Shared exit-code logic: 0 clean/baselined, 1 fresh findings."""
    if update_baseline:
        baseline.update(findings)
        print(f"{tool}: baseline updated with {len(findings)} finding(s)")
        return 0
    fresh, stale = baseline.split(findings)
    for f in fresh:
        print(f, file=err)
    if stale:
        print(f"{tool}: note: {len(stale)} baselined finding(s) no longer "
              "occur; consider --update-baseline", file=err)
    if fresh:
        print(f"{tool}: {len(fresh)} new violation(s) "
              f"({len(findings) - len(fresh)} baselined)", file=err)
        return 1
    print(f"{tool}: clean ({len(findings)} baselined finding(s), "
          f"{file_count} files)")
    return 0
