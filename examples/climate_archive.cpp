// Climate archive scenario: compress a batch of CESM-like climate
// fields (the paper intro's motivating use case — tens of terabytes per
// climate snapshot) with every interpolation compressor, with and
// without QP, and report the storage saved across the batch.
//
//   $ ./climate_archive [n_fields]

#include <cstdio>
#include <cstdlib>

#include "compressors/registry.hpp"
#include "data/synthetic.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace qip;

  const int n_fields = argc > 1 ? std::atoi(argv[1]) : 6;
  const Dims dims{26, 256, 512};  // CESM-like thin atmosphere stack
  const double rel_eb = 1e-3;

  std::printf("Archiving %d CESM-like fields (%s) at rel eb %.0e\n\n",
              n_fields, dims.str().c_str(), rel_eb);
  std::printf("%-7s | %14s | %14s | %7s\n", "comp", "bytes (base)",
              "bytes (+QP)", "saved");

  for (const auto* e : qp_base_compressors()) {
    std::size_t bytes_base = 0, bytes_qp = 0, original = 0;
    for (int i = 0; i < n_fields; ++i) {
      const Field<float> f = make_field(DatasetId::kCESM, i, dims, 77);
      original += f.size() * sizeof(float);
      GenericOptions base;
      base.error_bound =
          rel_eb * static_cast<double>(value_range(f.span()).width());
      GenericOptions withqp = base;
      withqp.qp = QPConfig::best_fit();
      bytes_base += e->compress_f32(f.data(), dims, base).size();
      bytes_qp += e->compress_f32(f.data(), dims, withqp).size();
    }
    std::printf("%-7s | %14zu | %14zu | %+5.1f%%\n", e->name.c_str(),
                bytes_base, bytes_qp,
                100.0 * (1.0 - static_cast<double>(bytes_qp) / bytes_base));
  }
  return 0;
}
