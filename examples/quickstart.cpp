// Quickstart: compress a 3-D field with SZ3+QP, decompress it, verify
// the error bound, and print the ratio — the 30-second tour of the
// public API.
//
//   $ ./quickstart
//
// See README.md for the full API walkthrough.

#include <cmath>
#include <cstdio>

#include "compressors/sz3.hpp"
#include "util/stats.hpp"

int main() {
  using namespace qip;

  // 1. Make (or load) a field. Fields are dense row-major arrays of rank
  //    1..4; here a smooth analytic 128^3 volume.
  const Dims dims{128, 128, 128};
  Field<float> field(dims);
  for (std::size_t z = 0; z < 128; ++z)
    for (std::size_t y = 0; y < 128; ++y)
      for (std::size_t x = 0; x < 128; ++x)
        field.at(z, y, x) =
            std::sin(0.05f * z) * std::cos(0.04f * y) + 0.3f * std::sin(0.06f * x);

  // 2. Configure the compressor: an absolute error bound plus the
  //    paper's best-fit quantization index prediction (2-D Lorenzo,
  //    Case III, levels 1-2). QP never changes the decompressed data;
  //    it only shrinks the archive.
  SZ3Config cfg;
  cfg.error_bound = 1e-3;
  cfg.qp = QPConfig::best_fit();

  // 3. Compress.
  const std::vector<std::uint8_t> archive =
      sz3_compress(field.data(), field.dims(), cfg);

  // 4. Decompress (archives are self-describing).
  const Field<float> decoded = sz3_decompress<float>(archive);

  // 5. Verify and report.
  const double err = max_abs_error(field.span(), decoded.span());
  const double ratio =
      static_cast<double>(field.size() * sizeof(float)) / archive.size();
  std::printf("compressed %zu MB -> %zu KB  (ratio %.1fx)\n",
              field.size() * sizeof(float) >> 20, archive.size() >> 10, ratio);
  std::printf("max |error| = %.3e  (bound %.3e)  PSNR = %.2f dB\n", err,
              cfg.error_bound, psnr(field.span(), decoded.span()));
  return err <= cfg.error_bound ? 0 : 1;
}
