// Seismic transfer scenario: move a 4-D reverse-time-migration wavefield
// between sites (paper Sec. VI-E). Compresses the time slices in
// parallel, models the WAN link, and prints the end-to-end schedule with
// and without QP for a chosen core count.
//
//   $ ./seismic_transfer [cores]

#include <cstdio>
#include <cstdlib>

#include "data/synthetic.hpp"
#include "transfer/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace qip;

  const unsigned cores = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 450;
  const Dims dims{32, 96, 96, 64};
  const Field<float> wavefield = make_field(DatasetId::kRTM, 0, dims, 42);

  std::printf("RTM wavefield %s (%zu MB), link %.0f MB/s, %u cores\n\n",
              dims.str().c_str(), wavefield.size() * sizeof(float) >> 20,
              461.75, cores);

  TransferConfig base;
  base.error_bound = 1e-4;
  TransferConfig withqp = base;
  withqp.qp = QPConfig::best_fit();

  const TransferReport r0 = run_transfer_pipeline(wavefield, base);
  const TransferReport r1 = run_transfer_pipeline(wavefield, withqp);

  auto show = [&](const char* name, const TransferReport& r) {
    const StageTimes t = r.modeled(cores);
    std::printf("%-8s CR %6.2f  PSNR %6.2f | compress %6.3fs  write %6.3fs  "
                "transfer %6.3fs  read %6.3fs  decompress %6.3fs | total %6.3fs\n",
                name, r.compression_ratio, r.psnr, t.compress, t.write,
                t.transfer, t.read, t.decompress, t.total());
  };
  std::printf("vanilla (no compression): transfer %.3fs\n\n",
              r0.vanilla_transfer_seconds());
  show("SZ3", r0);
  show("SZ3+QP", r1);
  std::printf("\nend-to-end gain from QP: %.2fx\n",
              r0.modeled(cores).total() / r1.modeled(cores).total());
  return 0;
}
