// Compressor shootout: run every compressor in the registry on a chosen
// dataset stand-in and print a ranking — the "which compressor should I
// use for my data?" starting point.
//
//   $ ./compressor_shootout [dataset] [rel_eb]
// datasets: miranda hurricane segsalt scale s3d cesm

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "compressors/registry.hpp"
#include "data/synthetic.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace qip;

  DatasetId id = DatasetId::kMiranda;
  if (argc > 1) {
    const std::string want = argv[1];
    for (const auto& s : dataset_specs()) {
      std::string n = s.name;
      for (auto& ch : n) ch = static_cast<char>(std::tolower(ch));
      if (n == want) id = s.id;
    }
  }
  const double rel_eb = argc > 2 ? std::atof(argv[2]) : 1e-3;
  const auto& spec = dataset_spec(id);
  if (spec.paper_dims.rank() == 4) {
    std::fprintf(stderr, "use seismic_transfer for the 4-D RTM dataset\n");
    return 1;
  }

  const Field<float> f = make_field(id, 0, bench_dims(spec), 9);
  const double eb = rel_eb * static_cast<double>(value_range(f.span()).width());
  std::printf("%s %s, abs eb %.3e (rel %.0e)\n\n", spec.name,
              f.dims().str().c_str(), eb, rel_eb);
  std::printf("%-11s | %9s %8s %9s %9s %9s\n", "compressor", "CR", "PSNR",
              "Sc MB/s", "Sd MB/s", "max err");

  for (const auto& e : compressor_registry()) {
    for (int qp = 0; qp <= (e.supports_qp ? 1 : 0); ++qp) {
      GenericOptions opt;
      opt.error_bound = eb;
      if (qp) opt.qp = QPConfig::best_fit();
      Timer tc;
      const auto arc = e.compress_f32(f.data(), f.dims(), opt);
      const double sc = f.size() * sizeof(float) / tc.seconds() / 1e6;
      Timer td;
      const auto dec = e.decompress_f32(arc);
      const double sd = f.size() * sizeof(float) / td.seconds() / 1e6;
      std::printf("%-11s | %9.2f %8.2f %9.1f %9.1f %9.2e\n",
                  (e.name + (qp ? "+QP" : "")).c_str(),
                  static_cast<double>(f.size() * sizeof(float)) / arc.size(),
                  psnr(f.span(), dec.span()), sc, sd,
                  max_abs_error(f.span(), dec.span()));
    }
  }
  return 0;
}
