// QoZ-like compressor tests: roundtrip, bound, tuning determinism, QP
// transparency, rate-distortion advantage of level-wise bounds.

#include "compressors/qoz.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "util/stats.hpp"

namespace qip {
namespace {

Field<float> wave_field(Dims dims, unsigned seed = 3) {
  Field<float> f(dims);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> ph(0.f, 6.28f);
  const float p1 = ph(rng), p2 = ph(rng);
  for (std::size_t z = 0; z < dims.extent(0); ++z)
    for (std::size_t y = 0; y < dims.extent(1); ++y)
      for (std::size_t x = 0; x < dims.extent(2); ++x) {
        const float r = std::sqrt(static_cast<float>((z - 20.f) * (z - 20.f) +
                                                     (y - 30.f) * (y - 30.f) +
                                                     (x - 30.f) * (x - 30.f)));
        f.at(z, y, x) =
            std::sin(0.4f * r + p1) / (1.f + 0.05f * r) +
            0.2f * std::cos(0.09f * static_cast<float>(x + y) + p2);
      }
  return f;
}

TEST(QoZ, RoundtripRespectsErrorBound) {
  const auto f = wave_field(Dims{40, 60, 60});
  for (double eb : {1e-2, 1e-3, 1e-4}) {
    QoZConfig cfg;
    cfg.error_bound = eb;
    const auto arc = qoz_compress(f.data(), f.dims(), cfg);
    const auto dec = qoz_decompress<float>(arc);
    EXPECT_LE(max_abs_error(f.span(), dec.span()), eb * (1 + 1e-9));
  }
}

TEST(QoZ, QPDoesNotChangeDecompressedData) {
  const auto f = wave_field(Dims{48, 48, 48});
  QoZConfig base;
  base.error_bound = 5e-4;
  QoZConfig withqp = base;
  withqp.qp = QPConfig::best_fit();
  const auto dec0 = qoz_decompress<float>(qoz_compress(f.data(), f.dims(), base));
  const auto dec1 =
      qoz_decompress<float>(qoz_compress(f.data(), f.dims(), withqp));
  for (std::size_t i = 0; i < dec0.size(); ++i)
    ASSERT_EQ(dec0[i], dec1[i]) << i;
}

TEST(QoZ, LevelwiseBoundsImproveAccuracyAtSimilarRate) {
  // alpha > 1 shrinks coarse-level bins; PSNR should rise vs alpha = 1.
  const auto f = wave_field(Dims{64, 64, 64});
  QoZConfig flat;
  flat.error_bound = 1e-3;
  flat.tune_level_eb = false;
  flat.alpha = 1.0;
  flat.beta = 1.0;
  QoZConfig scaled = flat;
  scaled.alpha = 1.5;
  scaled.beta = 4.0;
  const auto d0 = qoz_decompress<float>(qoz_compress(f.data(), f.dims(), flat));
  const auto d1 =
      qoz_decompress<float>(qoz_compress(f.data(), f.dims(), scaled));
  EXPECT_GT(psnr(f.span(), d1.span()), psnr(f.span(), d0.span()));
}

TEST(QoZ, TuningIsDeterministic) {
  const auto f = wave_field(Dims{32, 40, 40});
  QoZConfig cfg;
  cfg.error_bound = 1e-3;
  const auto a = qoz_compress(f.data(), f.dims(), cfg);
  const auto b = qoz_compress(f.data(), f.dims(), cfg);
  EXPECT_EQ(a, b);
}

// Generic dtype × rank roundtrips live in test_all_codecs.cpp.

TEST(QoZ, ExposesSpatialCodes) {
  const auto f = wave_field(Dims{32, 32, 32});
  QoZConfig cfg;
  cfg.error_bound = 1e-3;
  IndexArtifacts arts;
  (void)qoz_compress(f.data(), f.dims(), cfg, &arts);
  EXPECT_EQ(arts.codes.size(), f.size());
  EXPECT_EQ(arts.symbols_spatial.size(), f.size());
}

}  // namespace
}  // namespace qip
