// Dataset generator tests: determinism, shape, value sanity, and the
// structural properties each stand-in is supposed to exhibit.

#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace qip {
namespace {

TEST(Synthetic, SpecsMatchTableIII) {
  const auto& specs = dataset_specs();
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(std::string(dataset_spec(DatasetId::kMiranda).name), "Miranda");
  EXPECT_EQ(dataset_spec(DatasetId::kMiranda).field_count, 7);
  EXPECT_EQ(dataset_spec(DatasetId::kHurricane).field_count, 13);
  EXPECT_EQ(dataset_spec(DatasetId::kSegSalt).field_count, 3);
  EXPECT_EQ(dataset_spec(DatasetId::kScale).field_count, 12);
  EXPECT_EQ(dataset_spec(DatasetId::kS3D).field_count, 11);
  EXPECT_EQ(dataset_spec(DatasetId::kCESM).field_count, 33);
  EXPECT_TRUE(dataset_spec(DatasetId::kS3D).is_double);
  EXPECT_EQ(dataset_spec(DatasetId::kRTM).paper_dims.rank(), 4);
  EXPECT_EQ(dataset_spec(DatasetId::kSegSalt).paper_dims,
            (Dims{1008, 1008, 352}));
}

TEST(Synthetic, Deterministic) {
  const Dims d{24, 24, 24};
  const auto a = make_field(DatasetId::kMiranda, 0, d, 1);
  const auto b = make_field(DatasetId::kMiranda, 0, d, 1);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Synthetic, FieldsDifferByIndexAndSeed) {
  const Dims d{16, 16, 16};
  const auto a = make_field(DatasetId::kHurricane, 0, d, 1);
  const auto b = make_field(DatasetId::kHurricane, 1, d, 1);
  const auto c = make_field(DatasetId::kHurricane, 0, d, 2);
  double dab = 0, dac = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dab += std::abs(a[i] - b[i]);
    dac += std::abs(a[i] - c[i]);
  }
  EXPECT_GT(dab, 0.0);
  EXPECT_GT(dac, 0.0);
}

TEST(Synthetic, AllDatasetsFiniteAndNonConstant) {
  const Dims d3{20, 24, 28};
  for (const auto& spec : dataset_specs()) {
    const Dims d = spec.paper_dims.rank() == 4 ? Dims{6, 10, 12, 8} : d3;
    const auto f = make_field(spec.id, 0, d, 3);
    ValueRange<float> r = value_range(f.span());
    for (std::size_t i = 0; i < f.size(); ++i)
      ASSERT_TRUE(std::isfinite(f[i])) << spec.name;
    EXPECT_GT(r.width(), 0.f) << spec.name;
  }
}

TEST(Synthetic, ScaleFieldsHaveZeroRegions) {
  // Cloud-like fields are thresholded: a large fraction must be exactly 0.
  const auto f = make_field(DatasetId::kScale, 0, Dims{32, 48, 48}, 5);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < f.size(); ++i)
    if (f[i] == 0.f) ++zeros;
  EXPECT_GT(zeros, f.size() / 10);
}

TEST(Synthetic, SegSaltHasSaltBodyContrast) {
  // The velocity field (index 1) must contain the constant high-velocity
  // salt region.
  const auto f = make_field(DatasetId::kSegSalt, 1, Dims{48, 48, 48}, 1);
  std::size_t salt = 0;
  for (std::size_t i = 0; i < f.size(); ++i)
    if (std::abs(f[i] - 4.5f) < 0.25f) ++salt;
  EXPECT_GT(salt, f.size() / 100);
}

TEST(Synthetic, S3DDoubleVariant) {
  const auto f = make_field_f64(DatasetId::kS3D, 0, Dims{16, 20, 24}, 1);
  ValueRange<double> r = value_range(f.span());
  EXPECT_GT(r.hi, 300.0);  // temperature-like field peaks above ambient
}

TEST(Synthetic, RTMWavefrontMoves) {
  // The 4-D wavefield's energy centroid radius must grow with time.
  const Dims d{8, 24, 24, 24};
  const auto f = make_field(DatasetId::kRTM, 0, d, 1);
  auto radius_of = [&](std::size_t t) {
    double num = 0, den = 0;
    for (std::size_t z = 0; z < 24; ++z)
      for (std::size_t y = 0; y < 24; ++y)
        for (std::size_t x = 0; x < 24; ++x) {
          const double e = std::abs(f.at(t, z, y, x));
          const double dz = z / 23.0 - 0.05, dy = y / 23.0 - 0.5,
                       dx = x / 23.0 - 0.5;
          num += e * std::sqrt(dz * dz + dy * dy + dx * dx);
          den += e;
        }
    return den > 0 ? num / den : 0.0;
  };
  EXPECT_GT(radius_of(7), radius_of(0));
}

TEST(Synthetic, FieldIndexWrapsModuloCount) {
  const Dims d{12, 12, 12};
  const auto a = make_field(DatasetId::kSegSalt, 0, d, 1);
  const auto b = make_field(DatasetId::kSegSalt, 3, d, 1);  // 3 % 3 == 0
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Synthetic, BenchDimsEnvOverride) {
  const auto& spec = dataset_spec(DatasetId::kMiranda);
  unsetenv("QIP_BENCH_SCALE");
  EXPECT_EQ(bench_dims(spec), spec.bench_dims);
  setenv("QIP_BENCH_SCALE", "full", 1);
  EXPECT_EQ(bench_dims(spec), spec.paper_dims);
  unsetenv("QIP_BENCH_SCALE");
}

}  // namespace
}  // namespace qip
