// Parameterized roundtrip matrix over every registered codec: dtype
// (f32/f64) × rank 1–4 × QP off/on, exercised through compress,
// decompress, and decompress_into. This one fixture replaces the
// near-identical generic roundtrip helpers the per-codec test files
// used to duplicate; those files keep only their codec-specific tests.

#include "compressors/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "util/stats.hpp"

namespace qip {
namespace {

// Dtype dispatch over the type-erased entry points.
std::vector<std::uint8_t> entry_compress(const CompressorEntry& e,
                                         const float* d, const Dims& dims,
                                         const GenericOptions& o) {
  return e.compress_f32(d, dims, o);
}
std::vector<std::uint8_t> entry_compress(const CompressorEntry& e,
                                         const double* d, const Dims& dims,
                                         const GenericOptions& o) {
  return e.compress_f64(d, dims, o);
}
Field<float> entry_decompress(const CompressorEntry& e,
                              std::span<const std::uint8_t> a, float) {
  return e.decompress_f32(a);
}
Field<double> entry_decompress(const CompressorEntry& e,
                               std::span<const std::uint8_t> a, double) {
  return e.decompress_f64(a);
}
void entry_decompress_into(const CompressorEntry& e,
                           std::span<const std::uint8_t> a, float* dst,
                           const Dims& d) {
  e.decompress_into_f32(a, dst, d);
}
void entry_decompress_into(const CompressorEntry& e,
                           std::span<const std::uint8_t> a, double* dst,
                           const Dims& d) {
  e.decompress_into_f64(a, dst, d);
}

template <class T>
Field<T> smooth_field(const Dims& dims) {
  Field<T> f(dims);
  for (std::size_t i = 0; i < f.size(); ++i) {
    const auto x = static_cast<T>(i);
    f[i] = std::sin(static_cast<T>(0.05) * x) +
           static_cast<T>(0.25) * std::cos(static_cast<T>(0.023) * x);
  }
  return f;
}

// One rank-1..4 shape each, sized so every codec's block/level machinery
// sees more than one unit of work without slowing the suite down.
const Dims kShapes[] = {Dims{96}, Dims{24, 18}, Dims{12, 10, 9},
                        Dims{6, 5, 4, 7}};

using CodecCase = std::tuple<std::string, bool>;  // codec name, QP on

class AllCodecs : public ::testing::TestWithParam<CodecCase> {
 protected:
  template <class T>
  void roundtrip_all_ranks() {
    const auto& [name, qp] = GetParam();
    const CompressorEntry& e = find_compressor(name);
    GenericOptions opt;
    opt.error_bound = 1e-3;
    if (qp) opt.qp = QPConfig::best_fit();
    for (const Dims& dims : kShapes) {
      SCOPED_TRACE(name + " rank " + std::to_string(dims.rank()));
      const Field<T> f = smooth_field<T>(dims);
      const auto arc = entry_compress(e, f.data(), dims, opt);

      const Field<T> dec = entry_decompress(e, arc, T{});
      ASSERT_EQ(dec.dims(), dims);
      EXPECT_LE(max_abs_error(f.span(), dec.span()),
                opt.error_bound * (1 + 1e-9));

      // decompress_into must produce the same bytes into a caller buffer.
      std::vector<T> buf(f.size(), T{});
      entry_decompress_into(e, arc, buf.data(), dims);
      for (std::size_t i = 0; i < buf.size(); ++i)
        ASSERT_EQ(buf[i], dec[i]) << "element " << i;

      // ... and reject a destination of the wrong shape.
      Dims wrong = dims.rank() == 1 ? Dims{dims.extent(0) + 1}
                                    : Dims{dims.extent(0) + 1,
                                           dims.extent(1)};
      std::vector<T> sink(wrong.size());
      EXPECT_THROW(entry_decompress_into(e, arc, sink.data(), wrong),
                   DecodeError);
    }
  }
};

TEST_P(AllCodecs, RoundtripF32) { roundtrip_all_ranks<float>(); }

TEST_P(AllCodecs, RoundtripF64) { roundtrip_all_ranks<double>(); }

std::vector<CodecCase> all_cases() {
  std::vector<CodecCase> cases;
  for (const auto& e : compressor_registry()) {
    cases.emplace_back(e.name, false);
    // QP-blind codecs ignore the hook by contract; exercising them with
    // QP requested pins that down instead of assuming it.
    cases.emplace_back(e.name, true);
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<CodecCase>& info) {
  return std::get<0>(info.param) + (std::get<1>(info.param) ? "_qp" : "");
}

INSTANTIATE_TEST_SUITE_P(Registry, AllCodecs,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace qip
