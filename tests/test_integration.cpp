// Cross-module integration tests: full pipelines over the synthetic
// datasets, QP end-to-end invariants across all base compressors, and
// archive-format robustness.

#include <gtest/gtest.h>

#include <cmath>

#include "compressors/registry.hpp"
#include "core/characterize.hpp"
#include "compressors/sz3.hpp"
#include "data/synthetic.hpp"
#include "util/stats.hpp"

namespace qip {
namespace {

TEST(Integration, EveryDatasetEveryBaseCompressorRoundtrips) {
  const Dims d3{24, 28, 32};
  for (const auto& spec : dataset_specs()) {
    if (spec.paper_dims.rank() == 4) continue;  // RTM covered in transfer tests
    const Field<float> f = make_field(spec.id, 0, d3, 1);
    const double eb =
        1e-3 * static_cast<double>(value_range(f.span()).width());
    if (eb == 0) continue;
    for (const auto* e : qp_base_compressors()) {
      GenericOptions opt;
      opt.error_bound = eb;
      opt.qp = QPConfig::best_fit();
      const auto arc = e->compress_f32(f.data(), d3, opt);
      const auto dec = e->decompress_f32(arc);
      EXPECT_LE(max_abs_error(f.span(), dec.span()), eb * (1 + 1e-9))
          << spec.name << "/" << e->name;
    }
  }
}

TEST(Integration, QPNeverChangesReconstructionAcrossDatasets) {
  const Dims d3{24, 24, 24};
  for (const auto id : {DatasetId::kMiranda, DatasetId::kSegSalt,
                        DatasetId::kCESM}) {
    const Field<float> f = make_field(id, 0, d3, 5);
    const double eb =
        1e-3 * static_cast<double>(value_range(f.span()).width());
    for (const auto* e : qp_base_compressors()) {
      GenericOptions base;
      base.error_bound = eb;
      GenericOptions qp = base;
      qp.qp = QPConfig::best_fit();
      const auto d0 = e->decompress_f32(e->compress_f32(f.data(), d3, base));
      const auto d1 = e->decompress_f32(e->compress_f32(f.data(), d3, qp));
      for (std::size_t i = 0; i < d0.size(); ++i)
        ASSERT_EQ(d0[i], d1[i]) << e->name << " @" << i;
    }
  }
}

TEST(Integration, ClusteringExistsWhereQPGains) {
  // Tie the characterization to the mechanism on the SegSalt stand-in:
  // the Case III gate must fire on a meaningful fraction of stage-grid
  // neighbor pairs (clustering exists), the *adaptively* transformed
  // symbol stream Q' must have lower entropy than Q (unconditional
  // Lorenzo on indices raises entropy — the adaptivity is the paper's
  // point), and the archive must shrink.
  const Dims dims{96, 96, 64};
  const Field<float> f = make_field(DatasetId::kSegSalt, 0, dims, 2000);
  const double eb = 1e-3 * static_cast<double>(value_range(f.span()).width());
  SZ3Config c0;
  c0.error_bound = eb;
  c0.auto_fallback = false;
  SZ3Artifacts art0;
  const auto arc0 = sz3_compress(f.data(), dims, c0, &art0);

  // Stage stride 2x2 isolates the level-1 z-direction stage, where the
  // paper's clustering lives.
  const auto st = cluster_stats(art0.codes, dims, 0, dims.extent(0) / 2, 2, 2);
  EXPECT_GT(st.same_sign_fraction, 0.10);

  SZ3Config c1 = c0;
  c1.qp = QPConfig::best_fit();
  SZ3Artifacts art1;
  const auto arc1 = sz3_compress(f.data(), dims, c1, &art1);
  EXPECT_LT(shannon_entropy(std::span<const std::uint32_t>(art1.symbols_spatial)),
            shannon_entropy(std::span<const std::uint32_t>(art0.symbols_spatial)));
  EXPECT_LT(arc1.size(), arc0.size());
}

TEST(Integration, ArchivesAreSelfDescribingAcrossCompressors) {
  // Decoding an archive with the wrong compressor must throw, not crash.
  const Field<float> f = make_field(DatasetId::kMiranda, 0, Dims{16, 16, 16}, 1);
  GenericOptions opt;
  opt.error_bound = 1e-2;
  const auto& sz3 = find_compressor("SZ3");
  const auto& qoz = find_compressor("QoZ");
  const auto arc = sz3.compress_f32(f.data(), f.dims(), opt);
  EXPECT_THROW(qoz.decompress_f32(arc), std::runtime_error);
}

TEST(Integration, WrongDtypeRejected) {
  const Field<float> f = make_field(DatasetId::kMiranda, 0, Dims{12, 12, 12}, 1);
  GenericOptions opt;
  opt.error_bound = 1e-2;
  const auto& sz3 = find_compressor("SZ3");
  const auto arc = sz3.compress_f32(f.data(), f.dims(), opt);
  EXPECT_THROW(sz3.decompress_f64(arc), std::runtime_error);
}

TEST(Integration, TruncatedArchivesThrowEverywhere) {
  const Field<float> f = make_field(DatasetId::kScale, 0, Dims{16, 20, 20}, 3);
  GenericOptions opt;
  opt.error_bound = 1e-2 * value_range(f.span()).width();
  for (const auto& e : compressor_registry()) {
    auto arc = e.compress_f32(f.data(), f.dims(), opt);
    arc.resize(arc.size() / 3);
    EXPECT_THROW(e.decompress_f32(arc), std::runtime_error) << e.name;
  }
}

class EbSweepAllCompressors
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(EbSweepAllCompressors, BoundHolds) {
  const auto [name, rel] = GetParam();
  const Field<float> f = make_field(DatasetId::kMiranda, 2, Dims{20, 24, 28}, 9);
  const double eb = rel * static_cast<double>(value_range(f.span()).width());
  const auto& e = find_compressor(name);
  GenericOptions opt;
  opt.error_bound = eb;
  const auto dec = e.decompress_f32(e.compress_f32(f.data(), f.dims(), opt));
  EXPECT_LE(max_abs_error(f.span(), dec.span()), eb * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EbSweepAllCompressors,
    ::testing::Combine(::testing::Values("MGARD", "SZ3", "QoZ", "HPEZ", "ZFP",
                                         "TTHRESH", "SPERR"),
                       ::testing::Values(1e-2, 1e-4, 1e-6)));

}  // namespace
}  // namespace qip
