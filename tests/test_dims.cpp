// Unit tests for Dims shape/stride arithmetic.

#include "util/dims.hpp"

#include <gtest/gtest.h>

namespace qip {
namespace {

TEST(Dims, Rank1) {
  const Dims d{100};
  EXPECT_EQ(d.rank(), 1);
  EXPECT_EQ(d.size(), 100u);
  EXPECT_EQ(d.extent(0), 100u);
  EXPECT_EQ(d.stride(0), 1u);
  EXPECT_EQ(d.index(42), 42u);
}

TEST(Dims, Rank3RowMajor) {
  const Dims d{4, 5, 6};
  EXPECT_EQ(d.rank(), 3);
  EXPECT_EQ(d.size(), 120u);
  EXPECT_EQ(d.stride(0), 30u);
  EXPECT_EQ(d.stride(1), 6u);
  EXPECT_EQ(d.stride(2), 1u);
  EXPECT_EQ(d.index(1, 2, 3), 30u + 12u + 3u);
}

TEST(Dims, Rank4) {
  const Dims d{2, 3, 4, 5};
  EXPECT_EQ(d.rank(), 4);
  EXPECT_EQ(d.size(), 120u);
  EXPECT_EQ(d.stride(0), 60u);
  EXPECT_EQ(d.index(1, 2, 3, 4), 60u + 40u + 15u + 4u);
}

TEST(Dims, TrailingAxesAreOne) {
  const Dims d{7, 9};
  EXPECT_EQ(d.extent(2), 1u);
  EXPECT_EQ(d.extent(3), 1u);
  // Indexing with zero trailing coordinates is always valid.
  EXPECT_EQ(d.index(6, 8, 0, 0), d.size() - 1);
}

TEST(Dims, MaxExtentOverRankOnly) {
  const Dims d{3, 17, 5};
  EXPECT_EQ(d.max_extent(), 17u);
}

TEST(Dims, EqualityAndStr) {
  EXPECT_EQ((Dims{2, 3}), (Dims{2, 3}));
  EXPECT_NE((Dims{2, 3}), (Dims{3, 2}));
  EXPECT_NE((Dims{2, 3}), (Dims{2, 3, 1}));  // different rank
  EXPECT_EQ((Dims{100, 500, 500}).str(), "100x500x500");
}

TEST(Dims, LinearIndexCoversAllCellsExactlyOnce) {
  const Dims d{3, 4, 5};
  std::vector<int> hits(d.size(), 0);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      for (std::size_t k = 0; k < 5; ++k) ++hits[d.index(i, j, k)];
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace qip
