// Unit tests for the quality metrics (paper Sec. III-A).

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace qip {
namespace {

TEST(Stats, ValueRange) {
  std::vector<float> v{3.f, -1.f, 2.f, 7.f};
  const auto r = value_range(std::span<const float>(v));
  EXPECT_EQ(r.lo, -1.f);
  EXPECT_EQ(r.hi, 7.f);
  EXPECT_EQ(r.width(), 8.f);
}

TEST(Stats, MseAndMaxError) {
  std::vector<float> a{0.f, 1.f, 2.f};
  std::vector<float> b{0.f, 1.5f, 1.f};
  EXPECT_NEAR(mse(std::span<const float>(a), std::span<const float>(b)),
              (0.25 + 1.0) / 3.0, 1e-12);
  EXPECT_NEAR(max_abs_error(std::span<const float>(a), std::span<const float>(b)),
              1.0, 1e-12);
}

TEST(Stats, PsnrMatchesFormula) {
  // range 8, rmse known -> PSNR = 20 log10(range / rmse).
  std::vector<float> a{-1.f, 7.f, 3.f, 3.f};
  std::vector<float> b{-1.f, 7.f, 3.1f, 2.9f};
  const double m = mse(std::span<const float>(a), std::span<const float>(b));
  const double expect = 20.0 * std::log10(8.0 / std::sqrt(m));
  EXPECT_NEAR(psnr(std::span<const float>(a), std::span<const float>(b)),
              expect, 1e-9);
}

TEST(Stats, PsnrInfiniteForIdenticalData) {
  std::vector<float> a{1.f, 2.f, 3.f};
  EXPECT_TRUE(std::isinf(psnr(std::span<const float>(a),
                              std::span<const float>(a))));
}

TEST(Stats, EntropyUniformAndDegenerate) {
  std::vector<std::uint32_t> four{0, 1, 2, 3};
  EXPECT_NEAR(shannon_entropy(std::span<const std::uint32_t>(four)), 2.0,
              1e-12);
  std::vector<std::uint32_t> same(100, 9);
  EXPECT_DOUBLE_EQ(shannon_entropy(std::span<const std::uint32_t>(same)), 0.0);
  EXPECT_DOUBLE_EQ(shannon_entropy(std::span<const std::uint32_t>{}), 0.0);
}

TEST(Stats, EntropySkewed) {
  // p = {3/4, 1/4} -> H = 0.811278 bits.
  std::vector<std::uint32_t> v{0, 0, 0, 1};
  EXPECT_NEAR(shannon_entropy(std::span<const std::uint32_t>(v)), 0.8112781,
              1e-6);
}

TEST(Stats, MakeStatsBitRateAndRatio) {
  std::vector<float> a(1000, 1.f);
  a[0] = 0.f;  // nonzero range
  std::vector<float> b = a;
  const auto s = make_stats(std::span<const float>(a),
                            std::span<const float>(b), 500);
  EXPECT_DOUBLE_EQ(s.compression_ratio, 8.0);   // 4000 / 500
  EXPECT_DOUBLE_EQ(s.bit_rate, 4.0);            // 32 / 8
  EXPECT_DOUBLE_EQ(s.max_abs_err, 0.0);
}

TEST(Stats, ThroughputHelpers) {
  CompressionStats s;
  s.compress_seconds = 2.0;
  s.decompress_seconds = 0.5;
  EXPECT_DOUBLE_EQ(s.compress_mbps(200e6), 100.0);
  EXPECT_DOUBLE_EQ(s.decompress_mbps(200e6), 400.0);
}

}  // namespace
}  // namespace qip
