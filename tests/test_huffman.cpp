// Unit tests for the canonical Huffman coder.

#include "encode/huffman.hpp"

#include <gtest/gtest.h>

#include <random>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace qip {
namespace {

TEST(Huffman, EmptyInput) {
  const auto enc = huffman_encode({});
  EXPECT_FALSE(enc.empty());
  EXPECT_TRUE(huffman_decode(enc).empty());
}

TEST(Huffman, SingleSymbolStream) {
  std::vector<std::uint32_t> in(1000, 42);
  const auto enc = huffman_encode(in);
  EXPECT_EQ(huffman_decode(enc), in);
  // 1000 identical symbols should compress to a handful of bytes.
  EXPECT_LT(enc.size(), 160u);
}

TEST(Huffman, SingleElement) {
  std::vector<std::uint32_t> in{7};
  EXPECT_EQ(huffman_decode(huffman_encode(in)), in);
}

TEST(Huffman, TwoSymbols) {
  std::vector<std::uint32_t> in;
  for (int i = 0; i < 500; ++i) in.push_back(i % 2 ? 3u : 9u);
  EXPECT_EQ(huffman_decode(huffman_encode(in)), in);
}

TEST(Huffman, SkewedDistributionBeatsFixedWidth) {
  // Geometric-ish distribution: Huffman should be near entropy, far below
  // the 32-bit fixed width.
  std::mt19937 rng(7);
  std::geometric_distribution<int> geo(0.5);
  std::vector<std::uint32_t> in(20000);
  for (auto& v : in) v = static_cast<std::uint32_t>(geo(rng));
  const auto enc = huffman_encode(in);
  EXPECT_EQ(huffman_decode(enc), in);
  EXPECT_LT(enc.size() * 8.0, 3.0 * in.size());  // ~2 bits/symbol expected
}

TEST(Huffman, UniformRandomRoundtrip) {
  std::mt19937 rng(11);
  std::uniform_int_distribution<std::uint32_t> uni(0, 1u << 20);
  std::vector<std::uint32_t> in(50000);
  for (auto& v : in) v = uni(rng);
  EXPECT_EQ(huffman_decode(huffman_encode(in)), in);
}

TEST(Huffman, ExtremeSymbolValues) {
  std::vector<std::uint32_t> in{0u, 0xFFFFFFFFu, 0u, 1u, 0xFFFFFFFFu,
                                0x80000000u, 0xFFFFFFFFu};
  EXPECT_EQ(huffman_decode(huffman_encode(in)), in);
}

TEST(Huffman, DeepTreeFromExponentialFrequencies) {
  // Fibonacci-like frequencies force maximal code depth; the decoder must
  // survive long codes.
  std::vector<std::uint32_t> in;
  std::uint64_t f = 1;
  for (std::uint32_t s = 0; s < 30; ++s) {
    for (std::uint64_t i = 0; i < f && in.size() < 500000; ++i) in.push_back(s);
    f = f + f / 2 + 1;
  }
  EXPECT_EQ(huffman_decode(huffman_encode(in)), in);
}

TEST(Huffman, CostBitsMatchesEncodedPayload) {
  std::mt19937 rng(3);
  std::geometric_distribution<int> geo(0.3);
  std::vector<std::uint32_t> in(10000);
  for (auto& v : in) v = static_cast<std::uint32_t>(geo(rng));
  const std::size_t cost = huffman_cost_bits(in);
  const auto enc = huffman_encode(in);
  // Encoded payload = header + ceil(cost/8); total must be >= cost bits
  // and within a small header overhead of it.
  EXPECT_GE(enc.size() * 8, cost);
  EXPECT_LE(enc.size() * 8, cost + 8 * 1024);
}

TEST(Huffman, TruncatedBufferThrows) {
  std::vector<std::uint32_t> in(100, 5);
  for (int i = 0; i < 100; ++i) in.push_back(static_cast<std::uint32_t>(i));
  auto enc = huffman_encode(in);
  enc.resize(enc.size() / 4);
  EXPECT_THROW((void)huffman_decode(enc), std::runtime_error);
}

// Hostile-header regressions mirrored in tests/fuzz/corpus/fuzz_huffman.

TEST(Huffman, OverSubscribedLengthsRejected) {
  // Three symbols all claiming 1-bit codes: Kraft sum 1.5 > 1. Without
  // the decoder's check this would index out of the fast table.
  ByteWriter w;
  w.put_varint(10);
  w.put_varint(3);
  for (std::uint32_t s = 0; s < 3; ++s) {
    w.put_varint(s);
    w.put_varint(1);
  }
  w.put_varint(4);
  w.put_bytes(std::vector<std::uint8_t>{0xAA, 0xBB, 0xCC, 0xDD});
  EXPECT_THROW((void)huffman_decode(w.take()), DecodeError);
}

TEST(Huffman, SymbolCountBeyondPayloadRejected) {
  // Claims 2^30 symbols backed by a 2-byte payload: must be rejected
  // before the output allocation, not after.
  ByteWriter w;
  w.put_varint(1u << 30);
  w.put_varint(2);
  w.put_varint(0);
  w.put_varint(1);
  w.put_varint(1);
  w.put_varint(1);
  w.put_varint(2);
  w.put_bytes(std::vector<std::uint8_t>{0x00, 0x00});
  EXPECT_THROW((void)huffman_decode(w.take()), DecodeError);
}

TEST(Huffman, AbsurdCodeLengthsRejected) {
  ByteWriter w;
  w.put_varint(4);
  w.put_varint(2);
  w.put_varint(0);
  w.put_varint(0);  // zero-length code
  w.put_varint(1);
  w.put_varint(200);  // longer than any canonical code can be
  w.put_varint(1);
  w.put_bytes(std::vector<std::uint8_t>{0xFF});
  EXPECT_THROW((void)huffman_decode(w.take()), DecodeError);
}

TEST(Huffman, TruncatedCodeStreamRejected) {
  // Valid header, payload block one byte shorter than the symbols need:
  // zero-fill decoding must be flagged, not silently produce symbols.
  std::vector<std::uint32_t> in;
  for (int i = 0; i < 256; ++i) in.push_back(static_cast<std::uint32_t>(i % 8));
  auto enc = huffman_encode(in);
  // The payload block is the trailing length-prefixed chunk; shrink the
  // whole buffer and patch nothing — ByteReader/overrun checks must fire.
  enc.resize(enc.size() - 1);
  EXPECT_THROW((void)huffman_decode(enc), DecodeError);
}

class HuffmanSweep : public ::testing::TestWithParam<int> {};

TEST_P(HuffmanSweep, RoundtripAtManySizes) {
  const int n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n));
  std::poisson_distribution<int> poi(6.0);
  std::vector<std::uint32_t> in(static_cast<std::size_t>(n));
  for (auto& v : in) v = static_cast<std::uint32_t>(poi(rng));
  EXPECT_EQ(huffman_decode(huffman_encode(in)), in);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HuffmanSweep,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 63, 64, 65, 1000,
                                           4095, 4096, 4097, 100000));

}  // namespace
}  // namespace qip
