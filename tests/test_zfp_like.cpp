// ZFP-like baseline tests: transform invertibility is exercised through
// full roundtrips; bound enforcement; behavior on edge shapes.

#include "compressors/zfp_like.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "util/stats.hpp"

namespace qip {
namespace {

template <class T>
Field<T> smooth(Dims dims, unsigned seed = 7) {
  Field<T> f(dims);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> ph(0, 6.28);
  const double p1 = ph(rng), p2 = ph(rng);
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = static_cast<T>(std::sin(0.003 * i + p1) +
                          0.5 * std::cos(0.0011 * i + p2));
  return f;
}

TEST(ZfpLike, RoundtripRespectsErrorBound3D) {
  const auto f = smooth<float>(Dims{36, 44, 52});
  for (double eb : {1e-1, 1e-2, 1e-3, 1e-4}) {
    ZFPConfig cfg;
    cfg.error_bound = eb;
    const auto arc = zfp_compress(f.data(), f.dims(), cfg);
    const auto dec = zfp_decompress<float>(arc);
    EXPECT_LE(max_abs_error(f.span(), dec.span()), eb * (1 + 1e-9))
        << "eb=" << eb;
  }
}

TEST(ZfpLike, NonMultipleOfFourExtents) {
  for (Dims dims : {Dims{5, 6, 7}, Dims{4, 4, 5}, Dims{13, 1, 9},
                    Dims{3, 3, 3}}) {
    const auto f = smooth<float>(dims, 11);
    ZFPConfig cfg;
    cfg.error_bound = 1e-3;
    const auto dec = zfp_decompress<float>(zfp_compress(f.data(), dims, cfg));
    EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-3 * (1 + 1e-9))
        << dims.str();
  }
}

// Generic dtype × rank roundtrips live in test_all_codecs.cpp.

TEST(ZfpLike, AllZeroBlocksAreOneBit) {
  Field<float> f(Dims{64, 64, 64});  // all zeros
  ZFPConfig cfg;
  cfg.error_bound = 1e-4;
  const auto arc = zfp_compress(f.data(), f.dims(), cfg);
  // 4096 blocks, 1 bit each + framing: must be well under 4 KB.
  EXPECT_LT(arc.size(), 4096u);
  const auto dec = zfp_decompress<float>(arc);
  for (std::size_t i = 0; i < dec.size(); ++i) ASSERT_EQ(dec[i], 0.f);
}

TEST(ZfpLike, MixedMagnitudeBlocks) {
  // Exponent handling: adjacent blocks with wildly different scales.
  Field<float> f(Dims{16, 16, 16});
  for (std::size_t z = 0; z < 16; ++z)
    for (std::size_t y = 0; y < 16; ++y)
      for (std::size_t x = 0; x < 16; ++x)
        f.at(z, y, x) = (x < 8 ? 1e-6f : 1e6f) *
                        std::sin(0.3f * static_cast<float>(z + y + x));
  ZFPConfig cfg;
  cfg.error_bound = 1e-2;
  const auto dec = zfp_decompress<float>(zfp_compress(f.data(), f.dims(), cfg));
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-2 * (1 + 1e-9));
}

TEST(ZfpLike, DoubleRoundtripTightBound) {
  const auto f = smooth<double>(Dims{24, 24, 24});
  ZFPConfig cfg;
  cfg.error_bound = 1e-9;
  const auto dec = zfp_decompress<double>(zfp_compress(f.data(), f.dims(), cfg));
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-9 * (1 + 1e-9));
}

TEST(ZfpLike, RandomNoiseBounded) {
  Field<float> f(Dims{20, 24, 28});
  std::mt19937 rng(29);
  std::uniform_real_distribution<float> u(-1, 1);
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = u(rng);
  ZFPConfig cfg;
  cfg.error_bound = 1e-3;
  const auto dec = zfp_decompress<float>(zfp_compress(f.data(), f.dims(), cfg));
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-3 * (1 + 1e-9));
}

TEST(ZfpLike, SmoothDataCompresses) {
  const auto f = smooth<float>(Dims{64, 64, 64});
  ZFPConfig cfg;
  cfg.error_bound = 1e-3;
  const auto arc = zfp_compress(f.data(), f.dims(), cfg);
  EXPECT_GT(static_cast<double>(f.size() * 4) / arc.size(), 3.0);
}

}  // namespace
}  // namespace qip
