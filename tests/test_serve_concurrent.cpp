// Satellite guard for the serving layer: many threads decoding the SAME
// archive bytes concurrently (full decode, preview, region) must all
// produce outputs bit-identical to a single-threaded reference. Decoders
// take const archive spans and must share no hidden mutable state; this
// test is the tripwire, and it is meant to run under tsan as well.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "compressors/registry.hpp"
#include "compressors/sz3.hpp"
#include "data/synthetic.hpp"
#include "parallel/chunked.hpp"
#include "serve/service.hpp"
#include "util/thread_pool.hpp"

namespace qip {
namespace {

constexpr int kThreads = 8;
constexpr int kItersPerThread = 4;

bool same_bytes(const Field<float>& a, const Field<float>& b) {
  return a.dims() == b.dims() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// Run `body` from kThreads threads at once (start barrier via shared
// future) and count how many iterations reported a mismatch.
template <class Body>
int hammer(Body&& body) {
  std::promise<void> go;
  std::shared_future<void> start = go.get_future().share();
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.wait();
      for (int i = 0; i < kItersPerThread; ++i)
        if (!body(t, i)) mismatches.fetch_add(1);
    });
  }
  go.set_value();
  for (auto& th : threads) th.join();
  return mismatches.load();
}

TEST(ServeConcurrent, FullDecodeIsBitIdenticalAcrossThreads) {
  const Field<float> f = make_field(DatasetId::kMiranda, 0, Dims{24, 24, 24}, 5);
  const auto& e = find_compressor("SZ3");
  const auto arc = e.compress_f32(f.data(), f.dims(), {});
  const Field<float> ref = e.decompress_f32(arc);

  const int bad = hammer([&](int, int) {
    Field<float> out(ref.dims());
    e.decompress_into_f32(arc, out.data(), ref.dims());
    return same_bytes(out, ref);
  });
  EXPECT_EQ(bad, 0);
}

TEST(ServeConcurrent, PreviewAndRegionAreBitIdenticalAcrossThreads) {
  const Field<float> f = make_field(DatasetId::kMiranda, 1, Dims{32, 32, 32}, 5);
  SZ3Config cfg;
  cfg.qp = QPConfig::best_fit();
  cfg.tile_size = 16;
  cfg.auto_fallback = false;  // pin the interpolation path: tiled v3 archive
  const auto arc = sz3_compress(f.data(), f.dims(), cfg);
  const auto& e = find_compressor("SZ3");

  const Field<float> ref_preview = e.decompress_preview_f32(arc, 1, nullptr);
  Box box = Box::whole(f.dims());
  for (int a = 0; a < 3; ++a) {
    box.lo[a] = 8;
    box.hi[a] = 24;
  }
  const Field<float> ref_region = e.decompress_region_f32(arc, box, nullptr);

  const int bad = hammer([&](int t, int i) {
    if ((t + i) % 2 == 0) {
      const Field<float> p = e.decompress_preview_f32(arc, 1, nullptr);
      return same_bytes(p, ref_preview);
    }
    const Field<float> r = e.decompress_region_f32(arc, box, nullptr);
    return same_bytes(r, ref_region);
  });
  EXPECT_EQ(bad, 0);
}

TEST(ServeConcurrent, ChunkedDecodeIsBitIdenticalAcrossThreads) {
  const Field<float> f = make_field(DatasetId::kMiranda, 2, Dims{32, 32, 32}, 5);
  ChunkedOptions co;
  co.compressor = "SZ3";
  const auto arc = chunked_compress(f.data(), f.dims(), co);
  const Field<float> ref = chunked_decompress<float>(arc, 1);

  // Each thread decodes with its own single-worker pool, so chunk
  // scheduling overlaps across threads while staying deterministic.
  const int bad = hammer([&](int, int) {
    ThreadPool pool(1);
    const Field<float> out = chunked_decompress<float>(arc, 0, &pool);
    return same_bytes(out, ref);
  });
  EXPECT_EQ(bad, 0);
}

TEST(ServeConcurrent, ServiceHammeredWithMixedJobsStaysBitIdentical) {
  const Field<float> f = make_field(DatasetId::kMiranda, 0, Dims{32, 32, 32}, 9);
  SZ3Config cfg;
  cfg.qp = QPConfig::best_fit();
  cfg.tile_size = 16;
  cfg.auto_fallback = false;
  const auto arc = sz3_compress(f.data(), f.dims(), cfg);
  const auto& e = find_compressor("SZ3");

  const Field<float> ref_full = e.decompress_f32(arc);
  const Field<float> ref_preview = e.decompress_preview_f32(arc, 1, nullptr);
  Box box = Box::whole(f.dims());
  for (int a = 0; a < 3; ++a) {
    box.lo[a] = 8;
    box.hi[a] = 24;
  }
  const Field<float> ref_region = e.decompress_region_f32(arc, box, nullptr);

  serve::ServeOptions so;
  so.workers = 4;
  so.cap_to_hardware = false;
  so.queue_capacity = 16;
  so.large_job_bytes = 1;  // every job takes the fan-out decision path
  serve::Service svc(so);

  std::vector<std::future<serve::JobResult>> futs;
  std::vector<int> kinds;
  for (int i = 0; i < 24; ++i) {
    serve::JobSpec spec;
    spec.input = arc;
    const int kind = i % 3;
    if (kind == 0) {
      spec.kind = serve::JobKind::kDecompress;
    } else if (kind == 1) {
      spec.kind = serve::JobKind::kPreview;
      spec.level = 1;
    } else {
      spec.kind = serve::JobKind::kRegion;
      spec.region = box;
    }
    auto fut = svc.submit(std::move(spec));
    ASSERT_TRUE(fut.has_value());
    futs.push_back(std::move(*fut));
    kinds.push_back(kind);
  }

  for (std::size_t i = 0; i < futs.size(); ++i) {
    const serve::JobResult r = futs[i].get();
    ASSERT_TRUE(r.metrics.ok) << r.metrics.error;
    const Field<float>& ref = kinds[i] == 0   ? ref_full
                              : kinds[i] == 1 ? ref_preview
                                              : ref_region;
    EXPECT_EQ(r.dims, ref.dims());
    ASSERT_EQ(r.bytes.size(), ref.size() * sizeof(float));
    EXPECT_EQ(0, std::memcmp(r.bytes.data(), ref.data(), r.bytes.size()))
        << "job " << i << " kind " << kinds[i];
  }
  EXPECT_EQ(svc.metrics().failed, 0u);
}

}  // namespace
}  // namespace qip
