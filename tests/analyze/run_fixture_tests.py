#!/usr/bin/env python3
"""Fixture and seeded-regression suite for tools/analyze/qip_analyze.py.

Two layers:

* **Fixture expectations** — every file under ``fixtures/`` carries a
  ``// qa-path: <pseudo-path>`` first line (checks key off the path, so
  a fixture can pretend to live anywhere in src/) and zero or more
  ``// qa-expect: <rule>`` line annotations. The runner analyzes each
  fixture with every check and requires the finding set to match the
  annotations *exactly* — a missed expectation means a check regressed,
  an unannotated finding means it grew a false positive. Clean twins
  (``*_clean.*``) carry no annotations and must stay silent. Fixtures
  are analyzed, never compiled.

* **Seeded regressions** — the checks exist to catch real holes, so we
  prove they would: for each shipped guard that a past PR added (the
  lorenzo/mgard walk bounds, the quantizer outlier bounds, the mgard
  level-count cap), strip exactly that guard from the real source text
  and assert the analyzer flags the file, while the pristine text stays
  clean. If a guard regex stops matching, the test fails too — the
  harness must never silently rot into asserting nothing.

Run from anywhere: ``python3 tests/analyze/run_fixture_tests.py``.
Registered as the ``qip_analyze_fixtures`` ctest.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parents[1]
sys.path.insert(0, str(REPO / "tools" / "analyze"))
sys.path.insert(0, str(REPO / "tools"))

import cxx  # noqa: E402
from checks import CHECKS, Ctx  # noqa: E402

QA_PATH_RE = re.compile(r"^//\s*qa-path:\s*(\S+)\s*$")
QA_EXPECT_RE = re.compile(r"//\s*qa-expect:\s*([\w-]+)")

failures: list[str] = []


def check(label: str, ok: bool, detail: str = "") -> None:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}"
          + (f" — {detail}" if detail and not ok else ""))
    if not ok:
        failures.append(f"{label}: {detail}")


def analyze(source: str, rel: str):
    """All checks over one in-memory source; returns raw findings."""
    lines = source.splitlines()
    ctx = Ctx(cxx.Index(source, rel), rel, lines)
    for mod in CHECKS.values():
        mod.run(ctx)
    return ctx.findings


def fixture_tests() -> None:
    print("fixture expectations:")
    fixtures = sorted(p for p in (HERE / "fixtures").iterdir()
                      if p.suffix in (".cpp", ".hpp"))
    check("fixtures present", len(fixtures) >= 10,
          f"found only {len(fixtures)}")
    covered: set[str] = set()
    for path in fixtures:
        source = path.read_text()
        lines = source.splitlines()
        m = QA_PATH_RE.match(lines[0]) if lines else None
        if not m:
            check(path.name, False, "missing '// qa-path:' first line")
            continue
        expected = {(em.group(1), no)
                    for no, line in enumerate(lines, 1)
                    for em in [QA_EXPECT_RE.search(line)] if em}
        actual = {(f.rule, f.line_no) for f in analyze(source, m.group(1))}
        missing = sorted(expected - actual)
        unexpected = sorted(actual - expected)
        check(path.name, not missing and not unexpected,
              f"missing={missing} unexpected={unexpected}")
        covered.update(rule for rule, _ in expected)
    # The violating fixtures must exercise every check module.
    for name, mod in CHECKS.items():
        check(f"coverage: {name}", bool(covered & set(mod.RULES)),
              f"no fixture expects any of {mod.RULES}")


# (label, repo-relative file, guard regex, rule the strip must surface).
# The replacement keeps the line count so finding lines stay meaningful.
SEEDS = [
    ("lorenzo-walk-bound", "src/compressors/lorenzo_path.hpp",
     r'if \(cursor > symbols\.size\(\) \|\| symbols\.size\(\) - cursor < '
     r'dims\.size\(\)\)\s*\n\s*throw DecodeError\("lorenzo:[^"]*"\);',
     "untrusted-cursor"),
    ("mgard-walk-bound", "src/compressors/mgard.cpp",
     r'if \(cursor > symbols\.size\(\) \|\|\s*\n\s*'
     r'symbols\.size\(\) - cursor <\s*\n\s*'
     r'InterpEngine<T>::grid_point_count\(dims, min_level\)\)\s*\n\s*'
     r'throw DecodeError\("mgard:[^"]*"\);',
     "untrusted-cursor"),
    ("container-chunk-count-cap", "src/compressors/core/container.cpp",
     r'if \(count > d\.remaining\(\) / 5 \+ 1\)\s*\n\s*'
     r'throw DecodeError\("chunk count exceeds directory"\);',
     "bomb-alloc"),
    ("quantizer-outlier-bound", "src/quant/quantizer.hpp",
     r'if \(outlier_cursor_ >= t\.size\(\)\)\s*\n\s*'
     r'throw DecodeError\("quantizer: outlier stream exhausted"\);',
     "untrusted-cursor"),
    ("quantizer-outlier-cap", "src/quant/quantizer.hpp",
     r'if \(n > r\.remaining\(\) / sizeof\(T\)\)\s*\n\s*'
     r'throw DecodeError\("quantizer: outlier count exceeds stream"\);',
     "bomb-alloc"),
    ("mgard-level-cap", "src/compressors/mgard.cpp",
     r'if \(levels > h\.remaining\(\) / sizeof\(double\)\)\s*\n\s*'
     r'throw DecodeError\("mgard: level count exceeds stream"\);',
     "bomb-alloc"),
]


def seeded_regression_tests() -> None:
    print("seeded regressions (guard stripped from real sources):")
    for label, rel, pattern, rule in SEEDS:
        source = (REPO / rel).read_text()
        guard = re.compile(pattern)
        if not guard.search(source):
            check(label, False, f"guard regex no longer matches {rel}")
            continue
        stripped = guard.sub(lambda m: "\n" * m.group(0).count("\n"), source)
        pristine_hits = [f for f in analyze(source, rel) if f.rule == rule]
        stripped_hits = [f for f in analyze(stripped, rel) if f.rule == rule]
        ok = not pristine_hits and bool(stripped_hits)
        check(label, ok,
              f"pristine {rule}={[(f.line_no) for f in pristine_hits]}, "
              f"stripped {rule}={[(f.line_no) for f in stripped_hits]}")


def main() -> int:
    fixture_tests()
    seeded_regression_tests()
    if failures:
        print(f"run_fixture_tests: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("run_fixture_tests: all passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
