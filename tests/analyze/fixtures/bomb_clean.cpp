// qa-path: src/compressors/fx_bomb_clean.cpp
//
// Known-clean twins of bomb_violations.cpp: every allocation dominated
// by a cap in one of the accepted forms (stream-budget check, explicit
// max parameter, std::min clamp, iterator-range assign).

#include <algorithm>
#include <cstdint>
#include <vector>

namespace qip {

struct Table {
  std::vector<double> entries;

  void load(ByteReader& r) {
    const std::uint64_t n = r.get_varint();
    if (n > r.remaining() / sizeof(double))
      throw DecodeError("fx: entry count exceeds stream");
    entries.resize(static_cast<std::size_t>(n));
  }
};

void parse_header(ByteReader& r, std::vector<std::uint8_t>& out,
                  std::size_t max_output) {
  const std::size_t n = static_cast<std::size_t>(r.get_varint());
  if (n > max_output) throw DecodeError("fx: declared size exceeds cap");
  out.reserve(n);
}

std::vector<float> decode_block(ByteReader& h) {
  const std::size_t count = static_cast<std::size_t>(h.get_varint());
  std::vector<float> block(std::min(count, h.remaining() / sizeof(float)));
  return block;
}

void decode_bytes(ByteReader& r, std::vector<std::uint8_t>& out) {
  auto bytes = r.get_bytes(r.remaining());
  out.assign(bytes.begin(), bytes.end());
}

}  // namespace qip
