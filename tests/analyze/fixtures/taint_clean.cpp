// qa-path: src/compressors/fx_taint_clean.cpp
//
// Known-clean twins of taint_violations.cpp: the same access shapes,
// each dominated by a size check in one of the accepted guard forms
// (up-front if+throw, enclosing loop condition, early return).

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace qip {

void decode_walk(std::vector<std::uint32_t>& symbols, std::size_t& cursor,
                 std::uint32_t* out, std::size_t n) {
  if (cursor > symbols.size() || symbols.size() - cursor < n)
    throw DecodeError("fx: symbol stream shorter than field");
  for (std::size_t i = 0; i < n; ++i)
    out[i] = symbols[cursor++];
}

std::uint8_t decode_first(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 1) throw DecodeError("fx: empty stream");
  return bytes[0];
}

void decode_copy(std::span<const std::uint8_t> payload, std::uint8_t* dst,
                 std::size_t n) {
  if (payload.size() < n) throw DecodeError("fx: payload too short");
  std::memcpy(dst, payload.data(), n);
}

void decode_loop(std::span<const std::uint8_t> bytes, std::uint64_t& acc) {
  for (std::size_t i = 0; i < bytes.size(); ++i) acc += bytes[i];
}

class OutlierTable {
 public:
  double recover_next() {
    if (cursor_ >= outliers_.size())
      throw DecodeError("fx: outlier stream exhausted");
    return outliers_[cursor_++];
  }

  double recover_shared() {
    const std::vector<double>& t = table();
    if (cursor_ >= t.size())
      throw DecodeError("fx: outlier stream exhausted");
    return t[cursor_++];
  }

 private:
  const std::vector<double>& table() const { return outliers_; }

  std::vector<double> outliers_;
  std::size_t cursor_ = 0;
};

}  // namespace qip
