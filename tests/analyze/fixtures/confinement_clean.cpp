// qa-path: src/simd/fx_kernel.cpp
//
// Known-clean twin of confinement_violations.cpp: the same intrinsics
// are fine under src/simd/, where the dispatch tables live.

#include <immintrin.h>

namespace qip::simd {

float fx_sum4(const float* p) {
  __m128 v = _mm_loadu_ps(p);
  float out[4];
  _mm_storeu_ps(out, v);
  return out[0] + out[1] + out[2] + out[3];
}

}  // namespace qip::simd
