// qa-path: src/parallel/fx_pool.cpp
//
// Known-violating snippets for the ThreadPool capture-discipline check:
// un-partitioned by-ref mutation and pool re-entry from inside a task.

#include <cstddef>
#include <vector>

namespace qip {

double sum_blocks(ThreadPool& pool, const std::vector<double>& parts) {
  double sum = 0.0;
  pool.parallel_for(parts.size(), [&](std::size_t b) {
    sum += parts[b];  // qa-expect: pool-shared-write
  });
  return sum;
}

void gather(ThreadPool& pool, std::vector<double>& out, std::size_t n) {
  pool.parallel_for(n, [&](std::size_t b) {
    out.push_back(static_cast<double>(b));  // qa-expect: pool-shared-write
  });
}

void nested(ThreadPool& pool, std::size_t n) {
  pool.parallel_for(n, [&](std::size_t b) {
    pool.parallel_for(b, [&](std::size_t) {});  // qa-expect: pool-reentry
  });
}

void named_lambda(ThreadPool& pool, std::size_t n) {
  std::size_t hits = 0;
  auto work = [&](std::size_t b) {
    if (b % 2 == 0) ++hits;  // qa-expect: pool-shared-write
  };
  pool.parallel_for(n, work);
}

// A per-task helper lambda does NOT launder a genuinely shared capture:
// `total` lives in the function, so mutating it from the nested helper
// is the same race as mutating it in the task body directly.
void nested_helper_leak(ThreadPool& pool, std::size_t n) {
  std::size_t total = 0;
  pool.parallel_for(n, [&](std::size_t w) {
    auto bump = [&](std::size_t k) {
      total += k;  // qa-expect: pool-shared-write
    };
    bump(w);
  });
}

}  // namespace qip
