// qa-path: src/compressors/fx_api.hpp
//
// Known-violating snippets for the codec API hygiene check: a
// discardable codec entry point and raw runtime_error throws on
// decode-facing paths.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace qip {

std::vector<std::uint8_t> encode_block(  // qa-expect: codec-nodiscard
    const std::vector<float>& field) {
  return {};
}

inline void decode_header(ByteReader& r) {
  if (r.remaining() < 4)
    throw std::runtime_error("fx: truncated header");  // qa-expect: typed-errors
}

inline const Compressor* find_fx_compressor(  // qa-expect: codec-nodiscard
    const std::string& name) {
  throw std::runtime_error("fx: unknown codec " + name);  // qa-expect: typed-errors
}

}  // namespace qip
