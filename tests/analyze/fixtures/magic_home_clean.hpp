// qa-path: src/compressors/core/container_fx.hpp
//
// Known-clean: container magics may be spelled out inside the container
// layer — that is the one place they live.

#include <cstdint>

namespace qip {

inline constexpr std::uint32_t kFxContainerMagic = 0x43504951u;
inline constexpr std::uint32_t kFxChunkedMagic = 0x50504951u;

}  // namespace qip
