// qa-path: src/compressors/fx_bomb.cpp
//
// Known-violating snippets for the bomb-allocation check: allocations
// sized by archive header fields with no dominating cap.

#include <cstdint>
#include <vector>

namespace qip {

struct Table {
  std::vector<double> entries;

  void load(ByteReader& r) {
    const std::uint64_t n = r.get_varint();
    entries.resize(static_cast<std::size_t>(n));  // qa-expect: bomb-alloc
  }
};

void parse_header(ByteReader& r, std::vector<std::uint8_t>& out) {
  out.reserve(r.get_varint());  // qa-expect: bomb-alloc
}

std::vector<float> decode_block(ByteReader& h) {
  const std::size_t count = static_cast<std::size_t>(h.get_varint());
  std::vector<float> block(count);  // qa-expect: bomb-alloc
  return block;
}

}  // namespace qip
