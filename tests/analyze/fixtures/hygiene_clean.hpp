// qa-path: src/compressors/fx_api_clean.hpp
//
// Known-clean twins of hygiene_violations.hpp: [[nodiscard]] on the
// value-returning entry point, typed errors on decode-facing paths,
// and a void entry point that legitimately needs no annotation.

#include <cstdint>
#include <string>
#include <vector>

namespace qip {

[[nodiscard]] std::vector<std::uint8_t> encode_block(
    const std::vector<float>& field) {
  return {};
}

inline void decode_header(ByteReader& r) {
  if (r.remaining() < 4) throw DecodeError("fx: truncated header");
}

[[nodiscard]] inline const Compressor* find_fx_compressor(
    const std::string& name) {
  throw UnknownCodecError("fx: unknown codec " + name);
}

inline void decode_into(ByteReader& r, std::vector<float>& out) {
  (void)r;
  out.clear();
}

}  // namespace qip
