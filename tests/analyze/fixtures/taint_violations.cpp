// qa-path: src/compressors/fx_taint.cpp
//
// Known-violating snippets for the taint check: archive-derived buffers
// read without a dominating size check. Fixtures are analyzed, never
// compiled — shapes mirror real decode paths.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace qip {

void decode_walk(std::vector<std::uint32_t>& symbols, std::size_t& cursor,
                 std::uint32_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = symbols[cursor++];  // qa-expect: untrusted-cursor
}

std::uint8_t decode_first(std::span<const std::uint8_t> bytes) {
  return bytes[0];  // qa-expect: untrusted-index
}

void decode_copy(std::span<const std::uint8_t> payload, std::uint8_t* dst,
                 std::size_t n) {
  std::memcpy(dst, payload.data(), n);  // qa-expect: unguarded-memcpy
}

class OutlierTable {
 public:
  double recover_next() {
    return outliers_[cursor_++];  // qa-expect: untrusted-cursor
  }

  // A reference alias is a borrowed view of state the function does not
  // own (here a possibly shared table); cursor walks over it need the
  // same dominating bound as subscripts of the member itself.
  double recover_shared() {
    const std::vector<double>& t = table();
    return t[cursor_++];  // qa-expect: untrusted-cursor
  }

 private:
  const std::vector<double>& table() const { return outliers_; }

  std::vector<double> outliers_;
  std::size_t cursor_ = 0;
};

}  // namespace qip
