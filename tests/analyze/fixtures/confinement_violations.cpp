// qa-path: src/encode/fx_simd.cpp
//
// Known-violating snippets for the layer-confinement checks: intrinsics
// outside src/simd/ and a container magic spelled outside the container
// layer. Note the rule text mentioning "_mm256_add_ps" in this comment
// must NOT trip the token-level check — only real code does.

#include <immintrin.h>  // qa-expect: simd-confined
#include <cstdint>

namespace qip {

float fx_sum4(const float* p) {
  __m128 v = _mm_loadu_ps(p);  // qa-expect: simd-confined
  float out[4];
  _mm_storeu_ps(out, v);  // qa-expect: simd-confined
  return out[0] + out[1] + out[2] + out[3];
}

inline std::uint32_t fx_magic() {
  return 0x43504951u;  // qa-expect: archive-magic
}

}  // namespace qip
