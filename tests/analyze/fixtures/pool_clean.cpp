// qa-path: src/parallel/fx_pool_clean.cpp
//
// Known-clean twins of pool_violations.cpp: index-partitioned writes,
// atomics, lock-protected mutation, and task-local accumulation.

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

namespace qip {

double sum_blocks(ThreadPool& pool, const std::vector<double>& parts) {
  std::vector<double> partial(parts.size(), 0.0);
  pool.parallel_for(parts.size(), [&](std::size_t b) {
    partial[b] = parts[b];  // partitioned by the task index: no two tasks alias
  });
  double sum = 0.0;
  for (double v : partial) sum += v;
  return sum;
}

std::size_t count_hits(ThreadPool& pool, std::size_t n) {
  std::atomic<std::size_t> hits{0};
  pool.parallel_for(n, [&](std::size_t b) {
    if (b % 2 == 0) ++hits;
  });
  return hits.load();
}

void guarded_push(ThreadPool& pool, std::vector<double>& out, std::size_t n) {
  std::mutex mu;
  pool.parallel_for(n, [&](std::size_t b) {
    std::lock_guard<std::mutex> lock(mu);
    out.push_back(static_cast<double>(b));
  });
}

void task_local(ThreadPool& pool, std::size_t n) {
  pool.parallel_for(n, [&](std::size_t b) {
    std::size_t local = 0;
    for (std::size_t i = 0; i < b; ++i) ++local;
  });
}

// A per-task helper lambda (the segment-flush / seg_fn idiom the
// block-ranged interpolation slices use): it mutates state by
// reference, but every captured name lives on the task's own stack or
// in the task's partitioned slot, so nothing is shared.
void task_helper(ThreadPool& pool, std::vector<std::vector<double>>& lsegs,
                 std::size_t n) {
  pool.parallel_for(n, [&](std::size_t w) {
    std::vector<double>& segs = lsegs[w];
    std::size_t mark = 0;
    auto flush = [&](std::size_t pos) {
      if (pos > mark) segs.push_back(static_cast<double>(pos));
      mark = pos;
    };
    for (std::size_t j = 0; j < w; ++j) flush(j);
    flush(0);
  });
}

}  // namespace qip
