// Unit tests for the QP core: symbol mapping invertibility, compensation
// gating (Cases I-IV), dimension stencils, level gating, and config
// serialization — paper Algorithms 1-2 at the unit level.

#include "core/qp.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace qip {
namespace {

constexpr std::int32_t kR = 32768;

std::uint32_t code_of(std::int64_t q) {
  return static_cast<std::uint32_t>(q + kR);
}

TEST(QpSymbols, EncodeDecodeInverseExhaustiveSmall) {
  for (std::int64_t q = -300; q <= 300; ++q) {
    for (std::int64_t c : {-1000ll, -3ll, 0ll, 5ll, 777ll}) {
      const std::uint32_t sym = qp_encode_symbol(code_of(q), c, kR);
      EXPECT_EQ(qp_decode_symbol(sym, c, kR), code_of(q));
    }
  }
}

TEST(QpSymbols, UnpredictableLabelIsPreserved) {
  const std::uint32_t sym = qp_encode_symbol(kUnpredictableCode, 123, kR);
  EXPECT_EQ(sym, 0u);
  EXPECT_EQ(qp_decode_symbol(0, 456, kR), kUnpredictableCode);
}

TEST(QpSymbols, ZeroCompensationMatchesPlainZigzag) {
  // With c == 0 the mapping is zigzag(q)+1: residual 0 -> symbol 1.
  EXPECT_EQ(qp_encode_symbol(code_of(0), 0, kR), 1u);
  EXPECT_EQ(qp_encode_symbol(code_of(-1), 0, kR), 2u);
  EXPECT_EQ(qp_encode_symbol(code_of(1), 0, kR), 3u);
}

TEST(QpSymbols, RandomizedRoundtrip) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 100000; ++i) {
    const std::int64_t q =
        static_cast<std::int64_t>(rng() % (2 * kR)) - kR + 1;
    const std::int64_t c = static_cast<std::int64_t>(rng() % 20001) - 10000;
    const std::uint32_t code = code_of(q);
    ASSERT_EQ(qp_decode_symbol(qp_encode_symbol(code, c, kR), c, kR), code);
  }
}

/// A tiny 4x4 "stage plane" with unit offsets for compensation tests:
/// idx = r*4 + c, left = idx-1, top = idx-4.
struct Plane {
  std::vector<std::uint32_t> codes = std::vector<std::uint32_t>(16, code_of(0));
  QPNeighborhood nb(bool left = true, bool top = true, bool back = false) {
    QPNeighborhood n;
    n.left = 1;
    n.top = 4;
    n.back = 0;
    n.avail_left = left;
    n.avail_top = top;
    n.avail_back = back;
    return n;
  }
};

QPConfig cfg2d(QPCondition cond, int max_level = 2) {
  QPConfig c;
  c.enabled = true;
  c.dimension = QPDimension::k2D;
  c.condition = cond;
  c.max_level = max_level;
  return c;
}

TEST(QpCompensation, TwoDLorenzoValue) {
  Plane p;
  p.codes[5] = code_of(4);  // diag of idx 10... layout: idx 10: left=9, top=6, diag=5
  p.codes[9] = code_of(7);
  p.codes[6] = code_of(5);
  const auto c = qp_compensation(p.codes.data(), 10, p.nb(),
                                 cfg2d(QPCondition::kCaseI), 1, kR);
  EXPECT_EQ(c, 7 + 5 - 4);
}

TEST(QpCompensation, LevelGateRejectsCoarseLevels) {
  Plane p;
  p.codes[9] = code_of(3);
  p.codes[6] = code_of(3);
  p.codes[5] = code_of(3);
  EXPECT_NE(qp_compensation(p.codes.data(), 10, p.nb(),
                            cfg2d(QPCondition::kCaseI, 2), 2, kR),
            0);
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(),
                            cfg2d(QPCondition::kCaseI, 2), 3, kR),
            0);
}

TEST(QpCompensation, DisabledReturnsZero) {
  Plane p;
  p.codes[9] = code_of(9);
  QPConfig off;
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(), off, 1, kR), 0);
}

TEST(QpCompensation, MissingNeighborsReject) {
  Plane p;
  p.codes[9] = code_of(3);
  p.codes[6] = code_of(3);
  p.codes[5] = code_of(3);
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(false, true),
                            cfg2d(QPCondition::kCaseI), 1, kR),
            0);
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(true, false),
                            cfg2d(QPCondition::kCaseI), 1, kR),
            0);
}

TEST(QpCompensation, CaseIIRejectsUnpredictableNeighbors) {
  Plane p;
  p.codes[9] = code_of(3);
  p.codes[6] = code_of(3);
  p.codes[5] = kUnpredictableCode;  // diag unpredictable
  EXPECT_NE(qp_compensation(p.codes.data(), 10, p.nb(),
                            cfg2d(QPCondition::kCaseI), 1, kR),
            0);
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(),
                            cfg2d(QPCondition::kCaseII), 1, kR),
            0);
}

TEST(QpCompensation, CaseIIIRequiresSameNonzeroSign) {
  Plane p;
  p.codes[5] = code_of(1);
  // Same positive sign -> fires.
  p.codes[9] = code_of(2);
  p.codes[6] = code_of(4);
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(),
                            cfg2d(QPCondition::kCaseIII), 1, kR),
            2 + 4 - 1);
  // Opposite signs -> rejected.
  p.codes[6] = code_of(-4);
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(),
                            cfg2d(QPCondition::kCaseIII), 1, kR),
            0);
  // Zero neighbor -> rejected (sign is not strictly positive).
  p.codes[6] = code_of(0);
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(),
                            cfg2d(QPCondition::kCaseIII), 1, kR),
            0);
  // Same negative sign -> fires.
  p.codes[9] = code_of(-2);
  p.codes[6] = code_of(-4);
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(),
                            cfg2d(QPCondition::kCaseIII), 1, kR),
            -2 - 4 - 1);
}

TEST(QpCompensation, CaseIVRequiresAllThreeSameSign) {
  Plane p;
  p.codes[9] = code_of(2);
  p.codes[6] = code_of(4);
  p.codes[5] = code_of(-1);  // diag opposite
  EXPECT_NE(qp_compensation(p.codes.data(), 10, p.nb(),
                            cfg2d(QPCondition::kCaseIII), 1, kR),
            0);
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(),
                            cfg2d(QPCondition::kCaseIV), 1, kR),
            0);
  p.codes[5] = code_of(1);
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(),
                            cfg2d(QPCondition::kCaseIV), 1, kR),
            2 + 4 - 1);
}

TEST(QpCompensation, OneDVariantsPickTheirNeighbor) {
  Plane p;
  p.codes[9] = code_of(7);   // left
  p.codes[6] = code_of(-3);  // top
  QPConfig c;
  c.enabled = true;
  c.condition = QPCondition::kCaseII;
  c.max_level = 2;
  c.dimension = QPDimension::k1DLeft;
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(), c, 1, kR), 7);
  c.dimension = QPDimension::k1DTop;
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(), c, 1, kR), -3);
  c.dimension = QPDimension::k1DBack;  // back unavailable in this plane
  EXPECT_EQ(qp_compensation(p.codes.data(), 10, p.nb(), c, 1, kR), 0);
}

TEST(QpCompensation, ThreeDLorenzoValue) {
  // 2x4x4 block, offsets: left=1, top=4, back=16.
  std::vector<std::uint32_t> codes(32, code_of(0));
  const std::size_t idx = 16 + 10;  // second slab, row 2, col 2
  auto set = [&](std::size_t off, std::int64_t q) { codes[idx - off] = code_of(q); };
  set(1, 1);       // left
  set(4, 2);       // top
  set(16, 3);      // back
  set(1 + 4, 4);   // left+top
  set(1 + 16, 5);  // left+back
  set(4 + 16, 6);  // top+back
  set(1 + 4 + 16, 7);
  QPNeighborhood nb;
  nb.left = 1;
  nb.top = 4;
  nb.back = 16;
  nb.avail_left = nb.avail_top = nb.avail_back = true;
  QPConfig c;
  c.enabled = true;
  c.dimension = QPDimension::k3D;
  c.condition = QPCondition::kCaseI;
  c.max_level = 2;
  EXPECT_EQ(qp_compensation(codes.data(), idx, nb, c, 1, kR),
            1 + 2 + 3 - 4 - 5 - 6 + 7);
}

TEST(QpConfig, SaveLoadRoundtrip) {
  QPConfig c;
  c.enabled = true;
  c.dimension = QPDimension::k3D;
  c.condition = QPCondition::kCaseIV;
  c.max_level = 5;
  ByteWriter w;
  c.save(w);
  const auto buf = w.bytes();
  ByteReader r(buf);
  const QPConfig d = QPConfig::load(r);
  EXPECT_EQ(d.enabled, true);
  EXPECT_EQ(d.dimension, QPDimension::k3D);
  EXPECT_EQ(d.condition, QPCondition::kCaseIV);
  EXPECT_EQ(d.max_level, 5);
}

TEST(QpConfig, StrMentionsConfiguration) {
  EXPECT_EQ(QPConfig{}.str(), "QP(off)");
  const auto s = QPConfig::best_fit().str();
  EXPECT_NE(s.find("2D"), std::string::npos);
  EXPECT_NE(s.find("Case III"), std::string::npos);
  EXPECT_NE(s.find("levels<=2"), std::string::npos);
}

}  // namespace
}  // namespace qip
