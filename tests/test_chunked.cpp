// Unit tests for chunked parallel (de)compression.

#include "parallel/chunked.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/synthetic.hpp"
#include "util/stats.hpp"

namespace qip {
namespace {

Field<float> field3() {
  return make_field(DatasetId::kMiranda, 0, Dims{40, 48, 56}, 3);
}

TEST(Chunked, RoundtripWithinBound) {
  const auto f = field3();
  ChunkedOptions opt;
  opt.options.error_bound = 1e-3;
  opt.workers = 3;
  const auto arc = chunked_compress(f.data(), f.dims(), opt);
  const auto dec = chunked_decompress<float>(arc, 3);
  EXPECT_EQ(dec.dims(), f.dims());
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-3 * (1 + 1e-9));
}

TEST(Chunked, ExplicitSlabNotDividingExtent) {
  const auto f = field3();  // extent 40, slab 12 -> chunks of 12,12,12,4
  ChunkedOptions opt;
  opt.options.error_bound = 1e-3;
  opt.slab = 12;
  opt.workers = 2;
  const auto arc = chunked_compress(f.data(), f.dims(), opt);
  const auto dec = chunked_decompress<float>(arc, 2);
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-3 * (1 + 1e-9));
}

TEST(Chunked, SlabLargerThanExtentIsOneChunk) {
  const auto f = field3();
  ChunkedOptions opt;
  opt.options.error_bound = 1e-3;
  opt.slab = 1000;
  const auto arc = chunked_compress(f.data(), f.dims(), opt);
  EXPECT_LE(max_abs_error(f.span(),
                          chunked_decompress<float>(arc).span()),
            1e-3 * (1 + 1e-9));
}

TEST(Chunked, AllCompressorsWork) {
  const auto f = make_field(DatasetId::kMiranda, 0, Dims{16, 20, 24}, 5);
  for (const auto& e : compressor_registry()) {
    ChunkedOptions opt;
    opt.compressor = e.name;
    opt.options.error_bound = 1e-2;
    opt.slab = 8;
    opt.workers = 2;
    const auto arc = chunked_compress(f.data(), f.dims(), opt);
    const auto dec = chunked_decompress<float>(arc, 2);
    EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-2 * (1 + 1e-9))
        << e.name;
  }
}

TEST(Chunked, TailSlabAllCompressorsAllRanks) {
  // extent(0) = 22 with slab 8 leaves a short tail chunk (8, 8, 6) at
  // every rank; every registered compressor must round-trip it.
  for (const Dims& dims :
       {Dims{22}, Dims{22, 36}, Dims{22, 12, 10}, Dims{22, 6, 5, 4}}) {
    Field<float> f(dims);
    for (std::size_t i = 0; i < f.size(); ++i)
      f[i] = std::sin(0.013f * static_cast<float>(i));
    for (const auto& e : compressor_registry()) {
      ChunkedOptions opt;
      opt.compressor = e.name;
      opt.options.error_bound = 1e-2;
      opt.slab = 8;
      opt.workers = 2;
      const auto arc = chunked_compress(f.data(), f.dims(), opt);
      const auto dec = chunked_decompress<float>(arc, 2);
      ASSERT_EQ(dec.dims(), f.dims()) << e.name << " " << dims.str();
      EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-2 * (1 + 1e-9))
          << e.name << " " << dims.str();
    }
  }
}

TEST(Chunked, QPAppliesPerChunk) {
  const auto f = make_field(DatasetId::kSegSalt, 0, Dims{64, 96, 96}, 2000);
  ChunkedOptions base;
  base.options.error_bound =
      1e-3 * static_cast<double>(value_range(f.span()).width());
  base.slab = 32;
  ChunkedOptions withqp = base;
  withqp.options.qp = QPConfig::best_fit();
  const auto a0 = chunked_compress(f.data(), f.dims(), base);
  const auto a1 = chunked_compress(f.data(), f.dims(), withqp);
  EXPECT_LT(a1.size(), a0.size());
  // Reconstruction identical regardless of QP.
  const auto d0 = chunked_decompress<float>(a0);
  const auto d1 = chunked_decompress<float>(a1);
  for (std::size_t i = 0; i < d0.size(); ++i) ASSERT_EQ(d0[i], d1[i]);
}

TEST(Chunked, DoubleRoundtrip) {
  Field<double> f(Dims{24, 20, 16});
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = std::sin(0.01 * static_cast<double>(i));
  ChunkedOptions opt;
  opt.options.error_bound = 1e-5;
  opt.slab = 8;
  const auto arc = chunked_compress(f.data(), f.dims(), opt);
  const auto dec = chunked_decompress<double>(arc);
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-5 * (1 + 1e-9));
}

TEST(Chunked, Rank1AndRank4) {
  for (Dims dims : {Dims{1000}, Dims{12, 10, 8, 6}}) {
    Field<float> f(dims);
    for (std::size_t i = 0; i < f.size(); ++i)
      f[i] = std::cos(0.02f * static_cast<float>(i));
    ChunkedOptions opt;
    opt.options.error_bound = 1e-4;
    opt.slab = dims.extent(0) / 3 + 1;
    const auto arc = chunked_compress(f.data(), f.dims(), opt);
    const auto dec = chunked_decompress<float>(arc);
    EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-4 * (1 + 1e-9))
        << dims.str();
  }
}

TEST(Chunked, WrongDtypeAndCorruptionThrow) {
  const auto f = field3();
  ChunkedOptions opt;
  opt.options.error_bound = 1e-3;
  auto arc = chunked_compress(f.data(), f.dims(), opt);
  EXPECT_THROW((void)chunked_decompress<double>(arc), std::runtime_error);
  arc.resize(arc.size() / 2);
  EXPECT_THROW((void)chunked_decompress<float>(arc), std::runtime_error);
}

TEST(Chunked, InconsistentChunkGeometryRejected) {
  const auto f = field3();
  ChunkedOptions opt;
  opt.options.error_bound = 1e-3;
  opt.slab = 12;
  const auto arc = chunked_compress(f.data(), f.dims(), opt);

  // Locate the slab varint: magic(4) + dtype(1) + rank varint + extents.
  // Rather than reimplementing the layout, mutate every byte in the
  // header region and require either DecodeError or a clean decode —
  // hostile geometry (slab 0, slab > extent, wrong chunk count, name
  // overrun) must never crash or misindex.
  for (std::size_t i = 0; i < std::min<std::size_t>(arc.size(), 24); ++i) {
    for (std::uint8_t delta : {0x01, 0x80, 0xFF}) {
      auto mutated = arc;
      mutated[i] = static_cast<std::uint8_t>(mutated[i] ^ delta);
      try {
        (void)chunked_decompress<float>(mutated, 2);
      } catch (const std::runtime_error&) {
        // DecodeError or a registry lookup failure: both are clean.
      }
    }
  }
}

TEST(Chunked, TruncatedEverywhereRejectedCleanly) {
  const auto f = field3();
  ChunkedOptions opt;
  opt.options.error_bound = 1e-3;
  const auto arc = chunked_compress(f.data(), f.dims(), opt);
  for (std::size_t cut = 0; cut < arc.size(); cut += 41) {
    std::vector<std::uint8_t> prefix(arc.begin(),
                                     arc.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)chunked_decompress<float>(prefix, 2),
                 std::runtime_error)
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace qip
