// MGARD-like compressor tests: strict bound enforcement via the
// correction pass, QP transparency, and the expected ratio gap vs the
// SZ3 family.

#include "compressors/mgard.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "compressors/sz3.hpp"
#include "util/stats.hpp"

namespace qip {
namespace {

Field<float> bumpy_field(Dims dims, unsigned seed = 17) {
  Field<float> f(dims);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> u(0.f, 1.f);
  struct Bump {
    float cz, cy, cx, a, w;
  };
  std::vector<Bump> bumps(12);
  for (auto& b : bumps)
    b = {u(rng) * dims.extent(0), u(rng) * dims.extent(1),
         u(rng) * dims.extent(2), 2 * u(rng) - 1, 0.002f + 0.01f * u(rng)};
  for (std::size_t z = 0; z < dims.extent(0); ++z)
    for (std::size_t y = 0; y < dims.extent(1); ++y)
      for (std::size_t x = 0; x < dims.extent(2); ++x) {
        float v = 0;
        for (const auto& b : bumps) {
          const float dz = z - b.cz, dy = y - b.cy, dx = x - b.cx;
          v += b.a * std::exp(-b.w * (dz * dz + dy * dy + dx * dx));
        }
        f.at(z, y, x) = v;
      }
  return f;
}

TEST(MGARD, StrictBoundDespiteGlobalTransform) {
  const auto f = bumpy_field(Dims{40, 48, 56});
  for (double eb : {1e-2, 1e-3, 1e-4}) {
    MGARDConfig cfg;
    cfg.error_bound = eb;
    const auto arc = mgard_compress(f.data(), f.dims(), cfg);
    const auto dec = mgard_decompress<float>(arc);
    EXPECT_LE(max_abs_error(f.span(), dec.span()), eb * (1 + 1e-9))
        << "eb=" << eb;
  }
}

TEST(MGARD, BoundHoldsOnRoughData) {
  // Rough data stresses the correction pass: the hierarchy accumulates
  // error and many points need patching, but the bound must still hold.
  Field<float> f(Dims{32, 32, 32});
  std::mt19937 rng(23);
  std::uniform_real_distribution<float> u(-1.f, 1.f);
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = u(rng);
  MGARDConfig cfg;
  cfg.error_bound = 1e-3;
  const auto dec = mgard_decompress<float>(mgard_compress(f.data(), f.dims(), cfg));
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-3 * (1 + 1e-9));
}

TEST(MGARD, QPDoesNotChangeDecompressedData) {
  const auto f = bumpy_field(Dims{36, 40, 44});
  MGARDConfig base;
  base.error_bound = 1e-3;
  MGARDConfig withqp = base;
  withqp.qp = QPConfig::best_fit();
  const auto d0 =
      mgard_decompress<float>(mgard_compress(f.data(), f.dims(), base));
  const auto d1 =
      mgard_decompress<float>(mgard_compress(f.data(), f.dims(), withqp));
  for (std::size_t i = 0; i < d0.size(); ++i) ASSERT_EQ(d0[i], d1[i]) << i;
}

TEST(MGARD, LowerRatioThanSZ3AtSameBound) {
  // Table I/II ordering: MGARD's conservative global transform trails the
  // SZ3 feedback loop in ratio on smooth data.
  const auto f = bumpy_field(Dims{64, 64, 64});
  MGARDConfig mc;
  mc.error_bound = 1e-3;
  SZ3Config sc;
  sc.error_bound = 1e-3;
  const auto am = mgard_compress(f.data(), f.dims(), mc);
  const auto as = sz3_compress(f.data(), f.dims(), sc);
  EXPECT_GT(am.size(), as.size());
}

// Generic dtype × rank roundtrips live in test_all_codecs.cpp.

}  // namespace
}  // namespace qip

namespace qip {
namespace {

TEST(MGARD, ResolutionReductionShapesAndAccuracy) {
  // Build a smooth field, compress, and decode at several reductions:
  // shapes must halve per skipped level and values must track the
  // original coarse grid.
  Field<float> f(Dims{33, 40, 48});
  for (std::size_t z = 0; z < 33; ++z)
    for (std::size_t y = 0; y < 40; ++y)
      for (std::size_t x = 0; x < 48; ++x)
        f.at(z, y, x) = std::sin(0.15f * z) * std::cos(0.11f * y) +
                        0.4f * std::sin(0.09f * x);
  MGARDConfig cfg;
  cfg.error_bound = 1e-3;
  const auto arc = mgard_compress(f.data(), f.dims(), cfg);

  const auto r0 = mgard_decompress_reduced<float>(arc, 0);
  EXPECT_EQ(r0.dims(), f.dims());

  const auto r1 = mgard_decompress_reduced<float>(arc, 1);
  EXPECT_EQ(r1.dims(), (Dims{17, 20, 24}));
  double worst = 0;
  for (std::size_t z = 0; z < 17; ++z)
    for (std::size_t y = 0; y < 20; ++y)
      for (std::size_t x = 0; x < 24; ++x)
        worst = std::max(worst, std::abs(static_cast<double>(
                                    r1.at(z, y, x) -
                                    f.at(2 * z, 2 * y, 2 * x))));
  // No pointwise guarantee at reduced resolution, but the hierarchy error
  // stays within a few bin widths on smooth data.
  EXPECT_LT(worst, 50 * cfg.error_bound);

  const auto r2 = mgard_decompress_reduced<float>(arc, 2);
  EXPECT_EQ(r2.dims(), (Dims{9, 10, 12}));
}

TEST(MGARD, ReductionBeyondLevelsClamps) {
  Field<float> f(Dims{9, 9, 9});
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = static_cast<float>(i % 5);
  MGARDConfig cfg;
  cfg.error_bound = 1e-2;
  const auto arc = mgard_compress(f.data(), f.dims(), cfg);
  const auto r = mgard_decompress_reduced<float>(arc, 99);
  // levels(9) = 4 -> max skip 3 -> stride 8 -> extents ceil(9/8) = 2.
  EXPECT_EQ(r.dims(), (Dims{2, 2, 2}));
}

}  // namespace
}  // namespace qip
