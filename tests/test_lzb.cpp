// Unit tests for the LZB lossless backend.

#include "lossless/lzb.hpp"

#include <gtest/gtest.h>

#include <random>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace qip {
namespace {

std::vector<std::uint8_t> roundtrip(const std::vector<std::uint8_t>& in) {
  return lzb_decompress(lzb_compress(in));
}

TEST(Lzb, Empty) {
  EXPECT_TRUE(roundtrip({}).empty());
}

TEST(Lzb, TinyInputs) {
  for (std::size_t n = 1; n <= 16; ++n) {
    std::vector<std::uint8_t> in;
    in.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      in.push_back(static_cast<std::uint8_t>(i * 37));
    EXPECT_EQ(roundtrip(in), in) << "n=" << n;
  }
}

TEST(Lzb, AllZerosCompressWell) {
  std::vector<std::uint8_t> in(1 << 20, 0);
  const auto enc = lzb_compress(in);
  EXPECT_EQ(lzb_decompress(enc), in);
  EXPECT_LT(enc.size(), in.size() / 100);
}

TEST(Lzb, RepeatedPattern) {
  std::vector<std::uint8_t> in;
  for (int i = 0; i < 10000; ++i)
    for (std::uint8_t b : {0x12, 0x34, 0x56, 0x78, 0x9A})
      in.push_back(b);
  const auto enc = lzb_compress(in);
  EXPECT_EQ(lzb_decompress(enc), in);
  EXPECT_LT(enc.size(), in.size() / 20);
}

TEST(Lzb, OverlappingMatchRunLength) {
  // "abcabcabc..." triggers offset < match-length overlapping copies.
  std::vector<std::uint8_t> in;
  for (int i = 0; i < 5000; ++i) in.push_back(static_cast<std::uint8_t>('a' + i % 3));
  EXPECT_EQ(roundtrip(in), in);
}

TEST(Lzb, IncompressibleRandomDataSurvives) {
  std::mt19937 rng(19);
  std::vector<std::uint8_t> in(1 << 18);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng());
  const auto enc = lzb_compress(in);
  EXPECT_EQ(lzb_decompress(enc), in);
  // Framing overhead must stay tiny even when nothing matches.
  EXPECT_LT(enc.size(), in.size() + in.size() / 16 + 64);
}

TEST(Lzb, MixedTextAndBinary) {
  std::vector<std::uint8_t> in;
  const std::string text =
      "error-bounded lossy compression for scientific data; ";
  std::mt19937 rng(23);
  for (int rep = 0; rep < 200; ++rep) {
    in.insert(in.end(), text.begin(), text.end());
    for (int i = 0; i < 16; ++i) in.push_back(static_cast<std::uint8_t>(rng()));
  }
  EXPECT_EQ(roundtrip(in), in);
}

TEST(Lzb, LongRangeMatchWithinWindow) {
  std::mt19937 rng(29);
  std::vector<std::uint8_t> chunk(4096);
  for (auto& b : chunk) b = static_cast<std::uint8_t>(rng());
  std::vector<std::uint8_t> in = chunk;
  in.resize(600000, 0);  // push the repeat ~600 KB away (inside 1 MiB window)
  in.insert(in.end(), chunk.begin(), chunk.end());
  const auto enc = lzb_compress(in);
  EXPECT_EQ(lzb_decompress(enc), in);
  EXPECT_LT(enc.size(), 2 * chunk.size() + 4096);
}

TEST(Lzb, CorruptedStreamThrows) {
  std::vector<std::uint8_t> in(10000, 7);
  auto enc = lzb_compress(in);
  enc.resize(enc.size() / 2);
  EXPECT_THROW((void)lzb_decompress(enc), std::runtime_error);
}

TEST(Lzb, BadOffsetRejected) {
  // Hand-crafted stream: 0 literals then a match with offset 5 into an
  // empty output buffer.
  std::vector<std::uint8_t> bogus{10 /*raw size*/, 0 /*lit len*/,
                                  6 /*match len*/, 5 /*offset*/};
  EXPECT_THROW((void)lzb_decompress(bogus), std::runtime_error);
}

TEST(Lzb, DecompressionBombCappedByMaxOutput) {
  // Header claims a 1 TiB output; the max_output cap must reject it
  // before any allocation proportional to the claim happens.
  ByteWriter w;
  w.put_varint(std::uint64_t{1} << 40);
  w.put_varint(1);
  w.put_bytes(std::vector<std::uint8_t>{0x55});
  w.put_varint(std::uint64_t{1} << 40);
  w.put_varint(1);
  EXPECT_THROW((void)lzb_decompress(w.take(), /*max_output=*/1 << 20),
               DecodeError);
}

TEST(Lzb, HugeDeclaredSizeWithTinyBodyRejected) {
  // Without a cap the stream must still fail cleanly: the decoder reads
  // sequences, runs out of input, and throws — it must not pre-allocate
  // the declared size up front.
  ByteWriter w;
  w.put_varint(std::uint64_t{1} << 40);
  w.put_varint(0);  // no literals
  w.put_varint(0);  // terminator at 0 of 2^40 bytes
  EXPECT_THROW((void)lzb_decompress(w.take()), DecodeError);
}

TEST(Lzb, PrematureTerminatorRejected) {
  ByteWriter w;
  w.put_varint(100);
  w.put_varint(3);
  w.put_bytes(std::vector<std::uint8_t>{7, 7, 7});
  w.put_varint(0);
  EXPECT_THROW((void)lzb_decompress(w.take()), DecodeError);
}

class LzbSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(LzbSizeSweep, RoundtripSemiCompressible) {
  const int n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n) * 7 + 1);
  std::vector<std::uint8_t> in(static_cast<std::size_t>(n));
  // Runs of repeated bytes with random lengths: exercises matcher paths.
  std::size_t i = 0;
  while (i < in.size()) {
    const std::uint8_t b = static_cast<std::uint8_t>(rng());
    std::size_t run = 1 + rng() % 32;
    while (run-- && i < in.size()) in[i++] = b;
  }
  EXPECT_EQ(roundtrip(in), in);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzbSizeSweep,
                         ::testing::Values(1, 5, 100, 4096, 65535, 65536,
                                           65537, 1 << 20));

}  // namespace
}  // namespace qip
