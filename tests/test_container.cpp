// Unit tests for the unified archive container.

#include "compressors/core/container.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "lossless/lzb.hpp"

namespace qip {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

TEST(Container, SealOpenRoundtrip) {
  ContainerWriter w(CompressorId::kQoZ, dtype_tag<float>(), Dims{4, 5});
  w.stage(StageId::kConfig).put_bytes(bytes_of({1, 2, 3}));
  w.stage(StageId::kSymbols).put_bytes(bytes_of({4, 5, 6, 7}));
  const auto arc = w.seal();

  const ContainerReader in(arc, CompressorId::kQoZ, dtype_tag<float>());
  EXPECT_EQ(in.version(), kContainerVersion);
  EXPECT_EQ(in.codec(), CompressorId::kQoZ);
  EXPECT_EQ(in.dtype(), dtype_tag<float>());
  EXPECT_EQ(in.dims(), (Dims{4, 5}));
  ASSERT_EQ(in.sections().size(), 2u);
  const auto cfg = in.stage_bytes(StageId::kConfig);
  EXPECT_EQ(std::vector<std::uint8_t>(cfg.begin(), cfg.end()),
            bytes_of({1, 2, 3}));
  const auto sym = in.stage_bytes(StageId::kSymbols);
  EXPECT_EQ(std::vector<std::uint8_t>(sym.begin(), sym.end()),
            bytes_of({4, 5, 6, 7}));
}

TEST(Container, GoldenHeaderLayout) {
  // Pin the plaintext header byte-for-byte: "QIPC" little-endian, format
  // version, codec id, dtype, varint rank + extents. A failure here means
  // the on-disk format changed — bump kContainerVersion.
  ContainerWriter w(CompressorId::kHPEZ, dtype_tag<double>(), Dims{3, 300});
  w.stage(StageId::kConfig).put_bytes(bytes_of({9}));
  const auto arc = w.seal();
  ASSERT_GE(arc.size(), 11u);
  EXPECT_EQ(arc[0], 0x51);  // 'Q'
  EXPECT_EQ(arc[1], 0x49);  // 'I'
  EXPECT_EQ(arc[2], 0x50);  // 'P'
  EXPECT_EQ(arc[3], 0x43);  // 'C'
  EXPECT_EQ(arc[4], kContainerVersion);
  EXPECT_EQ(arc[5], static_cast<std::uint8_t>(CompressorId::kHPEZ));
  EXPECT_EQ(arc[6], dtype_tag<double>());
  EXPECT_EQ(arc[7], 2);     // rank
  EXPECT_EQ(arc[8], 3);     // extent 3
  EXPECT_EQ(arc[9], 0xAC);  // extent 300 = varint AC 02
  EXPECT_EQ(arc[10], 0x02);

  const ContainerInfo info = inspect_container(arc);
  EXPECT_EQ(info.header_bytes, 11u);
  EXPECT_EQ(info.body_bytes, arc.size() - 11u);
}

TEST(Container, InspectReadsHeaderOnly) {
  ContainerWriter w(CompressorId::kSPERR, dtype_tag<double>(), Dims{6, 7, 8});
  w.stage(StageId::kSymbols).put_bytes(bytes_of({1}));
  const auto arc = w.seal();
  const ContainerInfo info = inspect_container(arc);
  EXPECT_EQ(info.version, kContainerVersion);
  EXPECT_EQ(info.codec, CompressorId::kSPERR);
  EXPECT_EQ(info.dtype, dtype_tag<double>());
  EXPECT_EQ(info.dims, (Dims{6, 7, 8}));
}

TEST(Container, RepeatedStageCallAppends) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{2});
  w.stage(StageId::kConfig).put_bytes(bytes_of({1, 2}));
  w.stage(StageId::kSymbols).put_bytes(bytes_of({9}));
  w.stage(StageId::kConfig).put_bytes(bytes_of({3}));
  const auto arc = w.seal();
  const ContainerReader in(arc, CompressorId::kSZ3, dtype_tag<float>());
  const auto cfg = in.stage_bytes(StageId::kConfig);
  EXPECT_EQ(std::vector<std::uint8_t>(cfg.begin(), cfg.end()),
            bytes_of({1, 2, 3}));
}

TEST(Container, MissingStageThrows) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{2});
  w.stage(StageId::kConfig).put_bytes(bytes_of({1}));
  const auto arc = w.seal();
  const ContainerReader in(arc, CompressorId::kSZ3, dtype_tag<float>());
  EXPECT_TRUE(in.has_stage(StageId::kConfig));
  EXPECT_FALSE(in.has_stage(StageId::kCorrections));
  EXPECT_THROW((void)in.stage_bytes(StageId::kCorrections), DecodeError);
}

TEST(Container, WrongIdRejected) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{2});
  const auto arc = w.seal();
  EXPECT_THROW(
      ContainerReader(arc, CompressorId::kHPEZ, dtype_tag<float>()),
      DecodeError);
}

TEST(Container, WrongDtypeRejected) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{2});
  const auto arc = w.seal();
  EXPECT_THROW(
      ContainerReader(arc, CompressorId::kSZ3, dtype_tag<double>()),
      DecodeError);
}

TEST(Container, BadMagicRejected) {
  const auto junk = bytes_of({9, 9, 9, 9, 9, 9, 9, 9});
  EXPECT_THROW(ContainerReader(junk, CompressorId::kSZ3, dtype_tag<float>()),
               DecodeError);
  EXPECT_THROW((void)inspect_container(junk), DecodeError);
}

TEST(Container, UnknownVersionRejectedWithTypedError) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{2});
  auto arc = w.seal();
  arc[4] = kContainerVersion + 1;
  try {
    (void)inspect_container(arc);
    FAIL() << "future version must not parse";
  } catch (const UnknownCodecError& e) {
    EXPECT_EQ(e.version(), kContainerVersion + 1);
    EXPECT_EQ(e.codec_id(), static_cast<std::uint8_t>(CompressorId::kSZ3));
  }
}

TEST(Container, DimsRoundtripAllRanks) {
  for (Dims d : {Dims{7}, Dims{3, 4}, Dims{100, 500, 500},
                 Dims{3600, 449, 449, 235}}) {
    ByteWriter w;
    write_dims(w, d);
    const auto buf = w.bytes();
    ByteReader r(buf);
    EXPECT_EQ(read_dims(r), d);
  }
}

TEST(Container, BadRankRejected) {
  ByteWriter w;
  w.put_varint(9);  // rank 9
  const auto buf = w.bytes();
  ByteReader r(buf);
  EXPECT_THROW((void)read_dims(r), DecodeError);
}

// Regression tests distilled from the fuzz corpus (tests/fuzz/corpus/
// fuzz_archive): hostile framing must raise DecodeError, never UB.

TEST(Container, TruncatedHeaderRejected) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{3});
  w.stage(StageId::kConfig).put_bytes(bytes_of({1, 2, 3}));
  const auto arc = w.seal();
  for (std::size_t cut = 0; cut < kContainerPrefixBytes + 2; ++cut) {
    std::span<const std::uint8_t> prefix(arc.data(), cut);
    EXPECT_THROW(
        ContainerReader(prefix, CompressorId::kSZ3, dtype_tag<float>()),
        DecodeError)
        << "cut=" << cut;
    EXPECT_THROW((void)inspect_container(prefix), DecodeError);
  }
}

TEST(Container, TruncatedBodyRejected) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{300});
  std::vector<std::uint8_t> payload(300);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i);
  w.stage(StageId::kSymbols).put_bytes(payload);
  const auto arc = w.seal();
  for (std::size_t cut = kContainerPrefixBytes + 2; cut + 1 < arc.size();
       cut += 7) {
    std::span<const std::uint8_t> prefix(arc.data(), cut);
    EXPECT_THROW(
        ContainerReader(prefix, CompressorId::kSZ3, dtype_tag<float>()),
        DecodeError)
        << "cut=" << cut;
  }
}

TEST(Container, BodyBombCappedByMaxBody) {
  // Valid header, then an LZB header declaring a 1 PiB stage body.
  ByteWriter w;
  w.put(kContainerMagic);
  w.put(kContainerVersion);
  w.put(static_cast<std::uint8_t>(CompressorId::kSZ3));
  w.put(dtype_tag<float>());
  w.put_varint(1);
  w.put_varint(16);
  w.put_varint(std::uint64_t{1} << 50);
  w.put_varint(0);
  const auto arc = w.take();
  EXPECT_THROW(ContainerReader(arc, CompressorId::kSZ3, dtype_tag<float>(),
                               /*max_body=*/1 << 20),
               DecodeError);
}

TEST(Container, DuplicateStageRejected) {
  ByteWriter body;
  body.put_varint(2);
  body.put(static_cast<std::uint8_t>(StageId::kConfig));
  body.put_block(bytes_of({1, 2, 3, 4}));
  body.put(static_cast<std::uint8_t>(StageId::kConfig));
  body.put_block(bytes_of({5, 6, 7, 8}));
  ByteWriter w;
  w.put(kContainerMagic);
  w.put(kContainerVersion);
  w.put(static_cast<std::uint8_t>(CompressorId::kQoZ));
  w.put(dtype_tag<double>());
  w.put_varint(1);
  w.put_varint(16);
  w.put_bytes(lzb_compress(body.bytes()));
  const auto arc = w.take();
  EXPECT_THROW(ContainerReader(arc, CompressorId::kQoZ, dtype_tag<double>()),
               DecodeError);
}

TEST(Container, TrailingBodyBytesRejected) {
  ByteWriter body;
  body.put_varint(1);
  body.put(static_cast<std::uint8_t>(StageId::kConfig));
  body.put_block(bytes_of({1, 2}));
  body.put(0xEE);  // junk after the last section
  ByteWriter w;
  w.put(kContainerMagic);
  w.put(kContainerVersion);
  w.put(static_cast<std::uint8_t>(CompressorId::kQoZ));
  w.put(dtype_tag<double>());
  w.put_varint(1);
  w.put_varint(16);
  w.put_bytes(lzb_compress(body.bytes()));
  const auto arc = w.take();
  EXPECT_THROW(ContainerReader(arc, CompressorId::kQoZ, dtype_tag<double>()),
               DecodeError);
}

TEST(Container, ZeroExtentRejected) {
  ByteWriter w;
  w.put_varint(3);
  w.put_varint(16);
  w.put_varint(0);
  w.put_varint(16);
  const auto buf = w.bytes();
  ByteReader r(buf);
  EXPECT_THROW((void)read_dims(r), DecodeError);
}

TEST(Container, ExtentProductOverflowRejected) {
  ByteWriter w;
  w.put_varint(4);
  for (int a = 0; a < 4; ++a) w.put_varint(std::uint64_t{1} << 48);
  const auto buf = w.bytes();
  ByteReader r(buf);
  EXPECT_THROW((void)read_dims(r), DecodeError);
}

TEST(Container, BitFlippedArchiveNeverCrashes) {
  ContainerWriter w(CompressorId::kQoZ, dtype_tag<double>(), Dims{25});
  w.stage(StageId::kConfig).put_bytes(std::vector<std::uint8_t>(40, 0x5A));
  w.stage(StageId::kSymbols).put_bytes(std::vector<std::uint8_t>(160, 0xA5));
  const auto arc = w.seal();
  for (std::size_t bit = 0; bit < arc.size() * 8; bit += 5) {
    auto mutated = arc;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      const ContainerReader in(mutated, CompressorId::kQoZ,
                               dtype_tag<double>(), 1 << 20);
      // Flips in the compressed body may still parse; that is fine as
      // long as no error other than DecodeError can surface.
      (void)in.sections();
    } catch (const DecodeError&) {
    }
  }
}

TEST(Container, StagePayloadIsLosslesslyFramed) {
  // 1 MiB of structured data must come back exactly through the LZB
  // wrapping.
  std::vector<std::uint8_t> payload(1 << 20);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>((i * i) >> 3);
  ContainerWriter w(CompressorId::kMGARD, dtype_tag<float>(), Dims{1 << 18});
  w.stage(StageId::kSymbols).put_bytes(payload);
  const auto arc = w.seal();
  const ContainerReader in(arc, CompressorId::kMGARD, dtype_tag<float>());
  const auto back = in.stage_bytes(StageId::kSymbols);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), back.begin(),
                         back.end()));
  EXPECT_LT(arc.size(), payload.size());  // structured payload compresses
}

}  // namespace
}  // namespace qip
