// Unit tests for the unified archive container.

#include "compressors/core/container.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "lossless/lzb.hpp"

namespace qip {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

TEST(Container, SealOpenRoundtrip) {
  ContainerWriter w(CompressorId::kQoZ, dtype_tag<float>(), Dims{4, 5});
  w.stage(StageId::kConfig).put_bytes(bytes_of({1, 2, 3}));
  w.stage(StageId::kSymbols).put_bytes(bytes_of({4, 5, 6, 7}));
  const auto arc = w.seal();

  const ContainerReader in(arc, CompressorId::kQoZ, dtype_tag<float>());
  EXPECT_EQ(in.version(), kContainerVersion);
  EXPECT_EQ(in.codec(), CompressorId::kQoZ);
  EXPECT_EQ(in.dtype(), dtype_tag<float>());
  EXPECT_EQ(in.dims(), (Dims{4, 5}));
  ASSERT_EQ(in.sections().size(), 2u);
  const auto cfg = in.stage_bytes(StageId::kConfig);
  EXPECT_EQ(std::vector<std::uint8_t>(cfg.begin(), cfg.end()),
            bytes_of({1, 2, 3}));
  const auto sym = in.stage_bytes(StageId::kSymbols);
  EXPECT_EQ(std::vector<std::uint8_t>(sym.begin(), sym.end()),
            bytes_of({4, 5, 6, 7}));
}

TEST(Container, GoldenHeaderLayout) {
  // Pin the plaintext header byte-for-byte: "QIPC" little-endian, format
  // version, codec id, dtype, varint rank + extents. A failure here means
  // the on-disk format changed — bump kContainerVersion.
  ContainerWriter w(CompressorId::kHPEZ, dtype_tag<double>(), Dims{3, 300});
  w.stage(StageId::kConfig).put_bytes(bytes_of({9}));
  const auto arc = w.seal();
  ASSERT_GE(arc.size(), 11u);
  EXPECT_EQ(arc[0], 0x51);  // 'Q'
  EXPECT_EQ(arc[1], 0x49);  // 'I'
  EXPECT_EQ(arc[2], 0x50);  // 'P'
  EXPECT_EQ(arc[3], 0x43);  // 'C'
  EXPECT_EQ(arc[4], kContainerVersion);
  EXPECT_EQ(arc[5], static_cast<std::uint8_t>(CompressorId::kHPEZ));
  EXPECT_EQ(arc[6], dtype_tag<double>());
  EXPECT_EQ(arc[7], 2);     // rank
  EXPECT_EQ(arc[8], 3);     // extent 3
  EXPECT_EQ(arc[9], 0xAC);  // extent 300 = varint AC 02
  EXPECT_EQ(arc[10], 0x02);

  const ContainerInfo info = inspect_container(arc);
  EXPECT_EQ(info.header_bytes, 11u);
  EXPECT_EQ(info.body_bytes, arc.size() - 11u);
}

TEST(Container, InspectReadsHeaderOnly) {
  ContainerWriter w(CompressorId::kSPERR, dtype_tag<double>(), Dims{6, 7, 8});
  w.stage(StageId::kSymbols).put_bytes(bytes_of({1}));
  const auto arc = w.seal();
  const ContainerInfo info = inspect_container(arc);
  EXPECT_EQ(info.version, kContainerVersion);
  EXPECT_EQ(info.codec, CompressorId::kSPERR);
  EXPECT_EQ(info.dtype, dtype_tag<double>());
  EXPECT_EQ(info.dims, (Dims{6, 7, 8}));
}

TEST(Container, RepeatedStageCallAppends) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{2});
  w.stage(StageId::kConfig).put_bytes(bytes_of({1, 2}));
  w.stage(StageId::kSymbols).put_bytes(bytes_of({9}));
  w.stage(StageId::kConfig).put_bytes(bytes_of({3}));
  const auto arc = w.seal();
  const ContainerReader in(arc, CompressorId::kSZ3, dtype_tag<float>());
  const auto cfg = in.stage_bytes(StageId::kConfig);
  EXPECT_EQ(std::vector<std::uint8_t>(cfg.begin(), cfg.end()),
            bytes_of({1, 2, 3}));
}

TEST(Container, MissingStageThrows) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{2});
  w.stage(StageId::kConfig).put_bytes(bytes_of({1}));
  const auto arc = w.seal();
  const ContainerReader in(arc, CompressorId::kSZ3, dtype_tag<float>());
  EXPECT_TRUE(in.has_stage(StageId::kConfig));
  EXPECT_FALSE(in.has_stage(StageId::kCorrections));
  EXPECT_THROW((void)in.stage_bytes(StageId::kCorrections), DecodeError);
}

TEST(Container, WrongIdRejected) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{2});
  const auto arc = w.seal();
  EXPECT_THROW(
      ContainerReader(arc, CompressorId::kHPEZ, dtype_tag<float>()),
      DecodeError);
}

TEST(Container, WrongDtypeRejected) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{2});
  const auto arc = w.seal();
  EXPECT_THROW(
      ContainerReader(arc, CompressorId::kSZ3, dtype_tag<double>()),
      DecodeError);
}

TEST(Container, BadMagicRejected) {
  const auto junk = bytes_of({9, 9, 9, 9, 9, 9, 9, 9});
  EXPECT_THROW(ContainerReader(junk, CompressorId::kSZ3, dtype_tag<float>()),
               DecodeError);
  EXPECT_THROW((void)inspect_container(junk), DecodeError);
}

TEST(Container, UnknownVersionRejectedWithTypedError) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{2});
  auto arc = w.seal();
  arc[4] = kContainerVersion + 1;
  try {
    (void)inspect_container(arc);
    FAIL() << "future version must not parse";
  } catch (const UnknownCodecError& e) {
    EXPECT_EQ(e.version(), kContainerVersion + 1);
    EXPECT_EQ(e.codec_id(), static_cast<std::uint8_t>(CompressorId::kSZ3));
  }
}

TEST(Container, DimsRoundtripAllRanks) {
  for (Dims d : {Dims{7}, Dims{3, 4}, Dims{100, 500, 500},
                 Dims{3600, 449, 449, 235}}) {
    ByteWriter w;
    write_dims(w, d);
    const auto buf = w.bytes();
    ByteReader r(buf);
    EXPECT_EQ(read_dims(r), d);
  }
}

TEST(Container, BadRankRejected) {
  ByteWriter w;
  w.put_varint(9);  // rank 9
  const auto buf = w.bytes();
  ByteReader r(buf);
  EXPECT_THROW((void)read_dims(r), DecodeError);
}

// Regression tests distilled from the fuzz corpus (tests/fuzz/corpus/
// fuzz_archive): hostile framing must raise DecodeError, never UB.

TEST(Container, TruncatedHeaderRejected) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{3});
  w.stage(StageId::kConfig).put_bytes(bytes_of({1, 2, 3}));
  const auto arc = w.seal();
  for (std::size_t cut = 0; cut < kContainerPrefixBytes + 2; ++cut) {
    std::span<const std::uint8_t> prefix(arc.data(), cut);
    EXPECT_THROW(
        ContainerReader(prefix, CompressorId::kSZ3, dtype_tag<float>()),
        DecodeError)
        << "cut=" << cut;
    EXPECT_THROW((void)inspect_container(prefix), DecodeError);
  }
}

TEST(Container, TruncatedBodyRejected) {
  ContainerWriter w(CompressorId::kSZ3, dtype_tag<float>(), Dims{300});
  std::vector<std::uint8_t> payload(300);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i);
  w.stage(StageId::kSymbols).put_bytes(payload);
  const auto arc = w.seal();
  for (std::size_t cut = kContainerPrefixBytes + 2; cut + 1 < arc.size();
       cut += 7) {
    std::span<const std::uint8_t> prefix(arc.data(), cut);
    EXPECT_THROW(
        ContainerReader(prefix, CompressorId::kSZ3, dtype_tag<float>()),
        DecodeError)
        << "cut=" << cut;
  }
}

TEST(Container, BodyBombCappedByMaxBody) {
  // Valid v2 header, then an LZB header declaring a 1 PiB stage body
  // (version pinned to 2: in v3 the same varint would be read as a
  // meta-block length, a different guard).
  ByteWriter w;
  w.put(kContainerMagic);
  w.put(std::uint8_t{2});
  w.put(static_cast<std::uint8_t>(CompressorId::kSZ3));
  w.put(dtype_tag<float>());
  w.put_varint(1);
  w.put_varint(16);
  w.put_varint(std::uint64_t{1} << 50);
  w.put_varint(0);
  const auto arc = w.take();
  EXPECT_THROW(ContainerReader(arc, CompressorId::kSZ3, dtype_tag<float>(),
                               /*max_body=*/1 << 20),
               DecodeError);
}

TEST(Container, DuplicateStageRejected) {
  // Version pinned to literal 2: the single-LZB-block body below is the
  // v2 layout, and the duplicate-section check must keep firing on the
  // compat path.
  ByteWriter body;
  body.put_varint(2);
  body.put(static_cast<std::uint8_t>(StageId::kConfig));
  body.put_block(bytes_of({1, 2, 3, 4}));
  body.put(static_cast<std::uint8_t>(StageId::kConfig));
  body.put_block(bytes_of({5, 6, 7, 8}));
  ByteWriter w;
  w.put(kContainerMagic);
  w.put(std::uint8_t{2});
  w.put(static_cast<std::uint8_t>(CompressorId::kQoZ));
  w.put(dtype_tag<double>());
  w.put_varint(1);
  w.put_varint(16);
  w.put_bytes(lzb_compress(body.bytes()));
  const auto arc = w.take();
  EXPECT_THROW(ContainerReader(arc, CompressorId::kQoZ, dtype_tag<double>()),
               DecodeError);
}

TEST(Container, TrailingBodyBytesRejected) {
  // v2-pinned for the same reason as DuplicateStageRejected.
  ByteWriter body;
  body.put_varint(1);
  body.put(static_cast<std::uint8_t>(StageId::kConfig));
  body.put_block(bytes_of({1, 2}));
  body.put(0xEE);  // junk after the last section
  ByteWriter w;
  w.put(kContainerMagic);
  w.put(std::uint8_t{2});
  w.put(static_cast<std::uint8_t>(CompressorId::kQoZ));
  w.put(dtype_tag<double>());
  w.put_varint(1);
  w.put_varint(16);
  w.put_bytes(lzb_compress(body.bytes()));
  const auto arc = w.take();
  EXPECT_THROW(ContainerReader(arc, CompressorId::kQoZ, dtype_tag<double>()),
               DecodeError);
}

TEST(Container, ZeroExtentRejected) {
  ByteWriter w;
  w.put_varint(3);
  w.put_varint(16);
  w.put_varint(0);
  w.put_varint(16);
  const auto buf = w.bytes();
  ByteReader r(buf);
  EXPECT_THROW((void)read_dims(r), DecodeError);
}

TEST(Container, ExtentProductOverflowRejected) {
  ByteWriter w;
  w.put_varint(4);
  for (int a = 0; a < 4; ++a) w.put_varint(std::uint64_t{1} << 48);
  const auto buf = w.bytes();
  ByteReader r(buf);
  EXPECT_THROW((void)read_dims(r), DecodeError);
}

TEST(Container, BitFlippedArchiveNeverCrashes) {
  ContainerWriter w(CompressorId::kQoZ, dtype_tag<double>(), Dims{25});
  w.stage(StageId::kConfig).put_bytes(std::vector<std::uint8_t>(40, 0x5A));
  w.stage(StageId::kSymbols).put_bytes(std::vector<std::uint8_t>(160, 0xA5));
  const auto arc = w.seal();
  for (std::size_t bit = 0; bit < arc.size() * 8; bit += 5) {
    auto mutated = arc;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      const ContainerReader in(mutated, CompressorId::kQoZ,
                               dtype_tag<double>(), 1 << 20);
      // Flips in the compressed body may still parse; that is fine as
      // long as no error other than DecodeError can surface.
      (void)in.sections();
    } catch (const DecodeError&) {
    }
  }
}

// ---------------------------------------------------------------------
// Version 3: payload directory + per-chunk frames.

/// Minimal v3 archive: empty meta sections, caller-supplied raw
/// directory bytes (LZB-framed here) and raw payload region.
std::vector<std::uint8_t> v3_archive(const Dims& dims,
                                     const std::vector<std::uint8_t>& dir_raw,
                                     const std::vector<std::uint8_t>& payload) {
  ByteWriter meta;
  meta.put_varint(0);  // no stage sections
  ByteWriter w;
  w.put(kContainerMagic);
  w.put(kContainerVersion);
  w.put(static_cast<std::uint8_t>(CompressorId::kQoZ));
  w.put(dtype_tag<float>());
  write_dims(w, dims);
  w.put_block(lzb_compress(meta.bytes()));
  w.put_block(lzb_compress(dir_raw));
  w.put_bytes(payload);
  return w.take();
}

ContainerReader open_v3(const std::vector<std::uint8_t>& arc) {
  return ContainerReader(arc, CompressorId::kQoZ, dtype_tag<float>());
}

TEST(Container, V3GoldenBodyLayout) {
  // Pin the v3 body byte-for-byte: LZB(meta) block, LZB(directory)
  // block, then the chunk frames back to back with no per-chunk framing
  // beyond their own LZB streams. A failure here means the on-disk
  // layout changed — bump kContainerVersion.
  ContainerWriter w(CompressorId::kQoZ, dtype_tag<float>(), Dims{8, 8});
  w.stage(StageId::kConfig).put_bytes(bytes_of({7, 7}));
  const auto raw0 = bytes_of({1, 2, 3});
  const auto raw1 = bytes_of({4, 5});
  w.add_chunk(2, kWholeDomainTile, 4, 0, raw0);
  w.add_chunk(1, kWholeDomainTile, 12, 2, raw1);
  const auto arc = w.seal();

  const auto frame0 = lzb_compress(raw0);
  const auto frame1 = lzb_compress(raw1);

  // Expected directory plaintext: level count, tile size, tiled-level
  // count, chunk count, then per chunk level | tile+1 | length |
  // symbol count | outlier count.
  ByteWriter dir;
  dir.put_varint(2);  // level count = max chunk level
  dir.put_varint(0);  // tile size: untiled
  dir.put_varint(0);  // tiled levels
  dir.put_varint(2);  // chunk count
  dir.put_varint(2);  // chunk 0: level
  dir.put_varint(0);  //          whole-domain
  dir.put_varint(frame0.size());
  dir.put_varint(4);  //          symbol count
  dir.put_varint(0);  //          outlier count
  dir.put_varint(1);  // chunk 1: level
  dir.put_varint(0);
  dir.put_varint(frame1.size());
  dir.put_varint(12);
  dir.put_varint(2);

  // Walk the body exactly as a reader would and compare each region.
  ByteReader r(arc);
  (void)r.get_bytes(10);  // magic(4) version(1) id(1) dtype(1) dims(2,8,8)
  (void)lzb_decompress(r.get_block(), ContainerReader::kNoBodyCap);  // meta
  const auto dir_bytes =
      lzb_decompress(r.get_block(), ContainerReader::kNoBodyCap);
  const auto want_dir = dir.bytes();
  EXPECT_EQ(dir_bytes,
            std::vector<std::uint8_t>(want_dir.begin(), want_dir.end()));
  std::vector<std::uint8_t> want_payload = frame0;
  want_payload.insert(want_payload.end(), frame1.begin(), frame1.end());
  const auto payload = r.get_bytes(r.remaining());
  EXPECT_EQ(std::vector<std::uint8_t>(payload.begin(), payload.end()),
            want_payload);
}

TEST(Container, V3ChunkRoundtripAndByteAccounting) {
  ContainerWriter w(CompressorId::kQoZ, dtype_tag<float>(), Dims{32, 32});
  w.set_tiling(TileLayout{16, 1});
  const auto coarse = bytes_of({9, 9, 9, 9});
  w.add_chunk(2, kWholeDomainTile, 8, 1, coarse);
  std::vector<std::vector<std::uint8_t>> tiles;
  for (std::uint64_t t = 0; t < 4; ++t) {
    tiles.push_back(std::vector<std::uint8_t>(64, static_cast<std::uint8_t>(t)));
    w.add_chunk(1, t, 16, 0, tiles.back());
  }
  const auto arc = w.seal();

  const auto in = open_v3(arc);
  EXPECT_EQ(in.version(), 3);
  ASSERT_EQ(in.chunk_count(), 5u);
  const PayloadDirectory& d = in.directory();
  EXPECT_EQ(d.level_count, 2);
  EXPECT_EQ(d.tiling.tile_size, 16u);
  EXPECT_EQ(d.tiling.max_level, 1);
  EXPECT_EQ(d.chunks[0].level, 2);
  EXPECT_EQ(d.chunks[0].tile, kWholeDomainTile);
  EXPECT_EQ(d.chunks[0].outlier_count, 1u);
  EXPECT_EQ(d.chunks[0].outlier_start, 0u);
  EXPECT_EQ(d.chunks[1].outlier_start, 1u);
  EXPECT_EQ(in.payload_bytes_read(), 0u);

  EXPECT_EQ(in.chunk_bytes(0), coarse);
  EXPECT_EQ(in.payload_bytes_read(), d.chunks[0].length);
  std::size_t want_read = d.chunks[0].length;
  for (std::uint64_t t = 0; t < 4; ++t) {
    EXPECT_EQ(in.chunk_bytes(1 + t), tiles[t]);
    EXPECT_EQ(d.chunks[1 + t].tile, t);
    want_read += d.chunks[1 + t].length;
  }
  EXPECT_EQ(in.payload_bytes_read(), want_read);
  EXPECT_EQ(in.payload_bytes_declared(), want_read);
  EXPECT_EQ(in.payload_bytes_available(), want_read);
  EXPECT_THROW((void)in.chunk_bytes(5), DecodeError);
}

TEST(Container, V3TruncatedPayloadServesThePrefix) {
  // The progressive contract: a prefix-truncated archive still parses
  // and serves every chunk whose bytes are present; only the missing
  // ones throw.
  ContainerWriter w(CompressorId::kQoZ, dtype_tag<float>(), Dims{64});
  w.add_chunk(3, kWholeDomainTile, 4, 0, std::vector<std::uint8_t>(40, 1));
  w.add_chunk(2, kWholeDomainTile, 8, 0, std::vector<std::uint8_t>(80, 2));
  w.add_chunk(1, kWholeDomainTile, 16, 0, std::vector<std::uint8_t>(160, 3));
  const auto arc = w.seal();
  const auto full = open_v3(arc);
  ASSERT_EQ(full.chunk_count(), 3u);
  const std::size_t tail =
      full.directory().chunks[1].length + full.directory().chunks[2].length;

  const std::vector<std::uint8_t> cut(arc.begin(),
                                      arc.end() - static_cast<long>(tail));
  const auto in = open_v3(cut);
  ASSERT_EQ(in.chunk_count(), 3u);
  EXPECT_LT(in.payload_bytes_available(), in.payload_bytes_declared());
  EXPECT_EQ(in.chunk_bytes(0), std::vector<std::uint8_t>(40, 1));
  EXPECT_THROW((void)in.chunk_bytes(1), DecodeError);
  EXPECT_THROW((void)in.chunk_bytes(2), DecodeError);
}

TEST(Container, V3HostileDirectoriesRejected) {
  const Dims dims{32, 32};
  const auto reject = [&](const ByteWriter& dir, const char* what) {
    const auto wd = dir.bytes();
    const auto arc = v3_archive(
        dims, std::vector<std::uint8_t>(wd.begin(), wd.end()), {});
    EXPECT_THROW((void)open_v3(arc), DecodeError) << what;
  };

  {
    ByteWriter d;
    d.put_varint(65);  // > kMaxPayloadLevels
    reject(d, "level-count bomb");
  }
  {
    ByteWriter d;
    d.put_varint(1);
    d.put_varint(24);  // tile size not a power of two
    d.put_varint(1);
    d.put_varint(0);
    reject(d, "bad tile size");
  }
  {
    ByteWriter d;
    d.put_varint(1);
    d.put_varint(16);
    d.put_varint(2);  // tiled levels > level count
    d.put_varint(0);
    reject(d, "tiled levels exceed level count");
  }
  {
    ByteWriter d;
    d.put_varint(1);
    d.put_varint(0);
    d.put_varint(1);  // tiled levels without a tile size
    d.put_varint(0);
    reject(d, "tiled levels without tile size");
  }
  {
    ByteWriter d;
    d.put_varint(1);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint(std::uint64_t{1} << 40);  // chunk-count bomb
    reject(d, "chunk-count bomb");
  }
  const auto chunk = [](ByteWriter& d, std::uint64_t level,
                        std::uint64_t tile_p1, std::uint64_t len,
                        std::uint64_t syms, std::uint64_t outs) {
    d.put_varint(level);
    d.put_varint(tile_p1);
    d.put_varint(len);
    d.put_varint(syms);
    d.put_varint(outs);
  };
  {
    ByteWriter d;
    d.put_varint(2);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint(1);
    chunk(d, 3, 0, 0, 1, 0);  // level above the declared count
    reject(d, "chunk level out of range");
  }
  {
    ByteWriter d;
    d.put_varint(2);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint(2);
    chunk(d, 1, 0, 0, 1, 0);
    chunk(d, 2, 0, 0, 1, 0);  // levels must descend
    reject(d, "ascending levels");
  }
  {
    ByteWriter d;
    d.put_varint(2);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint(2);
    chunk(d, 2, 0, 0, 1, 0);
    chunk(d, 2, 0, 0, 1, 0);  // duplicate whole-domain chunk
    reject(d, "duplicate chunk");
  }
  {
    ByteWriter d;
    d.put_varint(1);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint(1);
    chunk(d, 1, 1, 0, 1, 0);  // tile chunk but nothing is tiled
    reject(d, "tile chunk on untiled level");
  }
  {
    ByteWriter d;
    d.put_varint(2);
    d.put_varint(16);
    d.put_varint(1);
    d.put_varint(1);
    chunk(d, 1, 0, 0, 1, 0);  // whole-domain chunk on the tiled level
    reject(d, "whole-domain chunk on tiled level");
  }
  {
    ByteWriter d;
    d.put_varint(2);
    d.put_varint(16);
    d.put_varint(1);
    d.put_varint(1);
    chunk(d, 1, 100, 0, 1, 0);  // tile id beyond the 2x2 grid
    reject(d, "tile id outside grid");
  }
  {
    ByteWriter d;
    d.put_varint(2);
    d.put_varint(16);
    d.put_varint(1);
    d.put_varint(2);
    chunk(d, 1, 2, 0, 1, 0);
    chunk(d, 1, 1, 0, 1, 0);  // tiles must ascend
    reject(d, "misordered tiles");
  }
  {
    ByteWriter d;
    d.put_varint(1);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint(1);
    chunk(d, 1, 0, 0, std::uint64_t{32 * 32} + 1, 0);  // symbol bomb
    reject(d, "symbol count exceeds field");
  }
  {
    ByteWriter d;
    d.put_varint(1);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint(1);
    chunk(d, 1, 0, 0, 0, std::uint64_t{32 * 32} + 1);  // outlier bomb
    reject(d, "outlier count exceeds field");
  }
  {
    ByteWriter d;
    d.put_varint(2);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint(2);
    chunk(d, 2, 0, ~std::uint64_t{0}, 1, 0);
    chunk(d, 1, 0, 1, 1, 0);  // offset + length wraps
    reject(d, "payload length overflow");
  }
  {
    ByteWriter d;
    d.put_varint(1);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint(0);
    d.put(0xEE);  // trailing junk
    reject(d, "trailing directory bytes");
  }
}

TEST(Container, V3ChunkExtentCheckedAgainstPresentPayload) {
  // A directory may declare more payload than the buffer holds (that is
  // what makes prefix downloads usable); the extent check fires only
  // when the missing chunk is actually requested.
  ByteWriter d;
  d.put_varint(1);
  d.put_varint(0);
  d.put_varint(0);
  d.put_varint(1);
  d.put_varint(1);    // level
  d.put_varint(0);    // whole-domain
  d.put_varint(100);  // declared length
  d.put_varint(4);    // symbols
  d.put_varint(0);
  const auto wd = d.bytes();
  const auto arc =
      v3_archive(Dims{32, 32}, std::vector<std::uint8_t>(wd.begin(), wd.end()),
                 std::vector<std::uint8_t>(10, 0xAB));  // only 10 bytes present
  const auto in = open_v3(arc);
  EXPECT_EQ(in.payload_bytes_declared(), 100u);
  EXPECT_EQ(in.payload_bytes_available(), 10u);
  EXPECT_THROW((void)in.chunk_bytes(0), DecodeError);
}

TEST(Container, V3SymbolChunkBombCapped) {
  // A chunk declaring 1 symbol whose LZB frame claims a 10 MiB raw size
  // must die on the symbol-derived cap, not materialize the bomb.
  ByteWriter bomb;
  bomb.put_varint(std::uint64_t{10} << 20);  // LZB raw size
  bomb.put_varint(1);                        // one literal
  bomb.put(0x55);
  bomb.put_varint(std::uint64_t{10} << 20);  // match covering the rest
  bomb.put_varint(1);
  const auto frame_w = bomb.bytes();
  const std::vector<std::uint8_t> frame(frame_w.begin(), frame_w.end());

  ByteWriter d;
  d.put_varint(1);
  d.put_varint(0);
  d.put_varint(0);
  d.put_varint(1);
  d.put_varint(1);  // level
  d.put_varint(0);  // whole-domain
  d.put_varint(frame.size());
  d.put_varint(1);  // one symbol: cap = 16 + 65536 bytes
  d.put_varint(0);
  const auto wd = d.bytes();
  const auto arc = v3_archive(
      Dims{32, 32}, std::vector<std::uint8_t>(wd.begin(), wd.end()), frame);
  const auto in = open_v3(arc);
  EXPECT_THROW((void)in.chunk_bytes(0), DecodeError);
}

TEST(Container, StagePayloadIsLosslesslyFramed) {
  // 1 MiB of structured data must come back exactly through the LZB
  // wrapping.
  std::vector<std::uint8_t> payload(1 << 20);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>((i * i) >> 3);
  ContainerWriter w(CompressorId::kMGARD, dtype_tag<float>(), Dims{1 << 18});
  w.stage(StageId::kSymbols).put_bytes(payload);
  const auto arc = w.seal();
  const ContainerReader in(arc, CompressorId::kMGARD, dtype_tag<float>());
  const auto back = in.stage_bytes(StageId::kSymbols);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), back.begin(),
                         back.end()));
  EXPECT_LT(arc.size(), payload.size());  // structured payload compresses
}

}  // namespace
}  // namespace qip
