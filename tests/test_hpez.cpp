// HPEZ-like compressor tests: roundtrip, block tuning, md interpolation,
// QP transparency, heterogeneous-data adaptivity.

#include "compressors/hpez.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "util/stats.hpp"

namespace qip {
namespace {

/// Heterogeneous field: one half smooth along x, other half smooth along
/// z — block-wise direction tuning should pick different configs.
Field<float> heterogeneous_field(Dims dims) {
  Field<float> f(dims);
  for (std::size_t z = 0; z < dims.extent(0); ++z)
    for (std::size_t y = 0; y < dims.extent(1); ++y)
      for (std::size_t x = 0; x < dims.extent(2); ++x) {
        if (x < dims.extent(2) / 2) {
          f.at(z, y, x) = std::sin(0.5f * z) + 0.01f * x;
        } else {
          f.at(z, y, x) = std::sin(0.5f * x) + 0.01f * z;
        }
      }
  return f;
}

TEST(HPEZ, RoundtripRespectsErrorBound) {
  const auto f = heterogeneous_field(Dims{48, 48, 48});
  for (double eb : {1e-2, 1e-3, 1e-4}) {
    HPEZConfig cfg;
    cfg.error_bound = eb;
    const auto arc = hpez_compress(f.data(), f.dims(), cfg);
    const auto dec = hpez_decompress<float>(arc);
    EXPECT_LE(max_abs_error(f.span(), dec.span()), eb * (1 + 1e-9));
  }
}

TEST(HPEZ, QPDoesNotChangeDecompressedData) {
  const auto f = heterogeneous_field(Dims{40, 44, 48});
  HPEZConfig base;
  base.error_bound = 1e-3;
  HPEZConfig withqp = base;
  withqp.qp = QPConfig::best_fit();
  const auto d0 =
      hpez_decompress<float>(hpez_compress(f.data(), f.dims(), base));
  const auto d1 =
      hpez_decompress<float>(hpez_compress(f.data(), f.dims(), withqp));
  for (std::size_t i = 0; i < d0.size(); ++i) ASSERT_EQ(d0[i], d1[i]) << i;
}

TEST(HPEZ, BlockTuningHelpsHeterogeneousData) {
  const auto f = heterogeneous_field(Dims{64, 64, 64});
  HPEZConfig tuned;
  tuned.error_bound = 1e-3;
  HPEZConfig untuned = tuned;
  untuned.tune_blocks = false;
  const auto a_tuned = hpez_compress(f.data(), f.dims(), tuned);
  const auto a_untuned = hpez_compress(f.data(), f.dims(), untuned);
  EXPECT_LE(a_tuned.size(), a_untuned.size() * 105 / 100);
}

TEST(HPEZ, RoundtripWithQPOnAllLevels) {
  const auto f = heterogeneous_field(Dims{33, 47, 29});  // awkward extents
  HPEZConfig cfg;
  cfg.error_bound = 5e-4;
  cfg.qp.enabled = true;
  cfg.qp.max_level = 99;
  cfg.qp.condition = QPCondition::kCaseI;
  const auto dec = hpez_decompress<float>(hpez_compress(f.data(), f.dims(), cfg));
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 5e-4 * (1 + 1e-9));
}

TEST(HPEZ, SmallFieldSmallerThanBlock) {
  Field<float> f(Dims{9, 9, 9});
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = static_cast<float>(i % 17) * 0.1f;
  HPEZConfig cfg;
  cfg.error_bound = 1e-3;
  const auto dec = hpez_decompress<float>(hpez_compress(f.data(), f.dims(), cfg));
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-3 * (1 + 1e-9));
}

// Generic dtype × rank roundtrips live in test_all_codecs.cpp.

TEST(HPEZ, DeterministicArchives) {
  const auto f = heterogeneous_field(Dims{32, 32, 32});
  HPEZConfig cfg;
  cfg.error_bound = 1e-3;
  EXPECT_EQ(hpez_compress(f.data(), f.dims(), cfg),
            hpez_compress(f.data(), f.dims(), cfg));
}

}  // namespace
}  // namespace qip
