// Transfer pipeline tests: slice roundtrip fidelity, report math, QP's
// end-to-end advantage.

#include "transfer/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"

namespace qip {
namespace {

Field<float> rtm_small() {
  return make_field(DatasetId::kRTM, 0, Dims{12, 24, 24, 16}, 7);
}

TEST(Transfer, PipelineRoundtripsWithinBound) {
  TransferConfig cfg;
  cfg.error_bound = 1e-3;
  cfg.workers = 4;
  const auto rep = run_transfer_pipeline(rtm_small(), cfg);
  EXPECT_EQ(rep.slice_count, 12u);
  EXPECT_LE(rep.max_abs_err, 1e-3 * (1 + 1e-9));
  EXPECT_GT(rep.compression_ratio, 1.0);
  EXPECT_GT(rep.total_compress_cpu, 0.0);
}

TEST(Transfer, QPReducesCompressedBytes) {
  TransferConfig base;
  base.error_bound = 1e-4;
  base.workers = 4;
  TransferConfig withqp = base;
  withqp.qp = QPConfig::best_fit();
  // Slices large enough that the wavefield is oversampled relative to
  // its features — the regime where index clustering exists (tiny toy
  // slices under-resolve the fronts and QP has nothing to exploit).
  const auto f = make_field(DatasetId::kRTM, 0, Dims{6, 48, 48, 32}, 7);
  const auto r0 = run_transfer_pipeline(f, base);
  const auto r1 = run_transfer_pipeline(f, withqp);
  EXPECT_LT(r1.compressed_bytes, r0.compressed_bytes);
  // Same reconstruction => same PSNR (QP is lossless on indices).
  EXPECT_NEAR(r0.psnr, r1.psnr, 1e-9);
}

TEST(Transfer, ModeledScalingIsMonotonic) {
  TransferConfig cfg;
  cfg.error_bound = 1e-3;
  cfg.workers = 2;
  const auto rep = run_transfer_pipeline(rtm_small(), cfg);
  const auto t225 = rep.modeled(225);
  const auto t1800 = rep.modeled(1800);
  EXPECT_LE(t1800.compress, t225.compress);
  EXPECT_LE(t1800.write, t225.write);
  // The serialized WAN link does not scale with cores.
  EXPECT_DOUBLE_EQ(t1800.transfer, t225.transfer);
  EXPECT_LE(t1800.total(), t225.total());
}

TEST(Transfer, CompressionBeatsVanillaOnLink) {
  TransferConfig cfg;
  cfg.error_bound = 1e-3;
  cfg.workers = 4;
  const auto rep = run_transfer_pipeline(rtm_small(), cfg);
  EXPECT_LT(rep.modeled(1800).transfer, rep.vanilla_transfer_seconds());
}

TEST(Transfer, StageTimesTotalAddsUp) {
  StageTimes t;
  t.compress = 1;
  t.write = 2;
  t.transfer = 3;
  t.read = 4;
  t.decompress = 5;
  EXPECT_DOUBLE_EQ(t.total(), 15.0);
}

TEST(Transfer, UnknownCompressorThrows) {
  TransferConfig cfg;
  cfg.compressor = "nope";
  EXPECT_THROW(run_transfer_pipeline(rtm_small(), cfg), std::runtime_error);
}

}  // namespace
}  // namespace qip
