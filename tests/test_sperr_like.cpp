// SPERR-like baseline tests: wavelet roundtrip under strict bounds and
// the expected strong ratios on smooth data.

#include "compressors/sperr_like.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "compressors/zfp_like.hpp"
#include "util/stats.hpp"

namespace qip {
namespace {

Field<float> smooth3(Dims dims, unsigned seed = 3) {
  Field<float> f(dims);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> ph(0, 6.28f);
  const float p1 = ph(rng), p2 = ph(rng), p3 = ph(rng);
  for (std::size_t z = 0; z < dims.extent(0); ++z)
    for (std::size_t y = 0; y < dims.extent(1); ++y)
      for (std::size_t x = 0; x < dims.extent(2); ++x)
        f.at(z, y, x) = std::sin(0.09f * z + p1) * std::cos(0.07f * y + p2) +
                        0.4f * std::sin(0.05f * x + p3);
  return f;
}

TEST(SperrLike, RoundtripRespectsErrorBound) {
  const auto f = smooth3(Dims{40, 48, 56});
  for (double eb : {1e-2, 1e-3, 1e-4}) {
    SPERRConfig cfg;
    cfg.error_bound = eb;
    const auto arc = sperr_compress(f.data(), f.dims(), cfg);
    const auto dec = sperr_decompress<float>(arc);
    EXPECT_LE(max_abs_error(f.span(), dec.span()), eb * (1 + 1e-9))
        << "eb=" << eb;
  }
}

TEST(SperrLike, OddAndPrimeExtents) {
  for (Dims dims : {Dims{17, 23, 31}, Dims{9, 64, 5}, Dims{2, 3, 2}}) {
    const auto f = smooth3(dims, 5);
    SPERRConfig cfg;
    cfg.error_bound = 1e-3;
    const auto dec =
        sperr_decompress<float>(sperr_compress(f.data(), dims, cfg));
    EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-3 * (1 + 1e-9))
        << dims.str();
  }
}

TEST(SperrLike, BeatsZfpOnSmoothDataAtSameBound) {
  // Table IV shape: SPERR ratios are far above ZFP's at the same bound.
  const auto f = smooth3(Dims{64, 64, 64});
  SPERRConfig sc;
  sc.error_bound = 1e-3;
  ZFPConfig zc;
  zc.error_bound = 1e-3;
  const auto as = sperr_compress(f.data(), f.dims(), sc);
  const auto az = zfp_compress(f.data(), f.dims(), zc);
  EXPECT_LT(as.size(), az.size());
}

// Generic dtype × rank roundtrips live in test_all_codecs.cpp.

TEST(SperrLike, RoughDataStillBounded) {
  Field<float> f(Dims{24, 24, 24});
  std::mt19937 rng(31);
  std::uniform_real_distribution<float> u(-1, 1);
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = u(rng);
  SPERRConfig cfg;
  cfg.error_bound = 5e-3;
  const auto dec =
      sperr_decompress<float>(sperr_compress(f.data(), f.dims(), cfg));
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 5e-3 * (1 + 1e-9));
}

}  // namespace
}  // namespace qip
