// Determinism and correctness tests for the parallel entropy/lossless
// paths added with the shared ThreadPool plumbing:
//
//  - huffman_encode / lzb_compress / full-compressor / chunked archives
//    must be byte-identical whether produced serially or on pools of any
//    worker count (the ranged/blocked split is a format constant);
//  - the ranged Huffman and blocked LZB layouts must round-trip at sizes
//    past their thresholds, and reject truncated streams cleanly;
//  - the decompress_into path must match the allocating path exactly and
//    reject shape mismatches with DecodeError.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "compressors/sz3.hpp"
#include "data/synthetic.hpp"
#include "encode/huffman.hpp"
#include "lossless/lzb.hpp"
#include "parallel/chunked.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace qip {
namespace {

// Worker counts exercised everywhere: serial, two, and whatever the host
// reports (possibly 1 again; the duplicate case is still a valid probe).
std::vector<unsigned> worker_counts() {
  return {1u, 2u, std::max(1u, std::thread::hardware_concurrency())};
}

// Deterministic quantization-index-shaped symbols: mostly small values
// around a center, occasional outliers, long enough to trigger the
// ranged layout (threshold is a couple of 64Ki-symbol ranges).
std::vector<std::uint32_t> make_symbols(std::size_t n) {
  std::vector<std::uint32_t> s(n);
  std::uint64_t x = 0x243F6A8885A308D3ull;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint32_t r = static_cast<std::uint32_t>(x >> 33);
    s[i] = (r % 97 == 0) ? (r % 4096) : 32768 + (r % 31) - 15;
  }
  return s;
}

// Semi-compressible byte stream long enough for the blocked LZB layout
// (threshold 2 MiB): repeating structure with a drifting phase.
std::vector<std::uint8_t> make_bytes(std::size_t n) {
  std::vector<std::uint8_t> b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = static_cast<std::uint8_t>((i * 131) >> (i % 7) & 0xFF);
  return b;
}

TEST(ParallelCodec, HuffmanBytesIdenticalAcrossWorkers) {
  const auto symbols = make_symbols(300000);
  const auto serial = huffman_encode(symbols);
  for (unsigned w : worker_counts()) {
    ThreadPool pool(w);
    const auto enc = huffman_encode(symbols, &pool);
    ASSERT_EQ(enc, serial) << "workers=" << w;
    // Decode with and without the pool; both must reproduce the input.
    ASSERT_EQ(huffman_decode(enc, &pool), symbols) << "workers=" << w;
  }
  EXPECT_EQ(huffman_decode(serial), symbols);
}

TEST(ParallelCodec, LzbBytesIdenticalAcrossWorkers) {
  const auto input = make_bytes(3u << 20);
  const auto serial = lzb_compress(input);
  EXPECT_LT(serial.size(), input.size());
  for (unsigned w : worker_counts()) {
    ThreadPool pool(w);
    const auto enc = lzb_compress(input, &pool);
    ASSERT_EQ(enc, serial) << "workers=" << w;
    ASSERT_EQ(lzb_decompress(enc, input.size(), &pool), input)
        << "workers=" << w;
  }
  EXPECT_EQ(lzb_decompress(serial, input.size()), input);
}

TEST(ParallelCodec, Sz3ArchiveIdenticalAcrossWorkers) {
  const auto f = make_field(DatasetId::kMiranda, 0, Dims{48, 40, 40}, 7);
  SZ3Config cfg;
  cfg.error_bound = 1e-3;
  cfg.qp = QPConfig::best_fit();
  const auto serial = sz3_compress(f.data(), f.dims(), cfg);
  for (unsigned w : worker_counts()) {
    ThreadPool pool(w);
    SZ3Config pcfg = cfg;
    pcfg.pool = &pool;
    ASSERT_EQ(sz3_compress(f.data(), f.dims(), pcfg), serial)
        << "workers=" << w;
    const auto dec = sz3_decompress<float>(serial, &pool);
    ASSERT_EQ(dec.dims(), f.dims());
    ASSERT_LE(max_abs_error(f.span(), dec.span()), 1e-3 * (1 + 1e-9));
  }
}

TEST(ParallelCodec, ChunkedArchiveIdenticalAcrossWorkers) {
  const auto f = make_field(DatasetId::kHurricane, 0, Dims{40, 32, 32}, 11);
  ChunkedOptions base;
  base.options.error_bound = 1e-3;
  base.slab = 12;  // tail slab: 12, 12, 12, 4
  base.workers = 1;
  const auto serial = chunked_compress(f.data(), f.dims(), base);
  for (unsigned w : worker_counts()) {
    ChunkedOptions opt = base;
    opt.workers = w;
    ASSERT_EQ(chunked_compress(f.data(), f.dims(), opt), serial)
        << "workers=" << w;
    // A caller-shared pool must also leave the bytes unchanged.
    ThreadPool pool(w);
    ChunkedOptions shared = base;
    shared.options.pool = &pool;
    ASSERT_EQ(chunked_compress(f.data(), f.dims(), shared), serial)
        << "shared pool workers=" << w;
    const auto dec = chunked_decompress<float>(serial, w, &pool);
    ASSERT_EQ(dec.dims(), f.dims());
    ASSERT_LE(max_abs_error(f.span(), dec.span()), 1e-3 * (1 + 1e-9));
  }
}

TEST(ParallelCodec, RangedHuffmanTruncationRejected) {
  const auto symbols = make_symbols(200000);
  const auto enc = huffman_encode(symbols);
  for (std::size_t cut = 0; cut < enc.size(); cut += enc.size() / 97 + 1) {
    const std::span<const std::uint8_t> prefix(enc.data(), cut);
    EXPECT_THROW((void)huffman_decode(prefix), DecodeError) << "cut=" << cut;
  }
}

TEST(ParallelCodec, BlockedLzbTruncationRejected) {
  const auto input = make_bytes(3u << 20);
  const auto enc = lzb_compress(input);
  // cut == 1 is skipped: a lone 0x00 is the valid legacy encoding of an
  // empty stream (that is what makes 0 usable as the blocked sentinel).
  for (std::size_t cut = 2; cut < enc.size(); cut += enc.size() / 97 + 1) {
    const std::span<const std::uint8_t> prefix(enc.data(), cut);
    EXPECT_THROW((void)lzb_decompress(prefix, input.size()), DecodeError)
        << "cut=" << cut;
  }
}

TEST(ParallelCodec, DecompressIntoMatchesAllocatingPath) {
  const auto f = make_field(DatasetId::kSegSalt, 0, Dims{24, 20, 16}, 13);
  for (const auto& e : compressor_registry()) {
    GenericOptions opt;
    opt.error_bound = 1e-2;
    const auto arc = e.compress_f32(f.data(), f.dims(), opt);
    const Field<float> alloc = e.decompress_f32(arc);
    Field<float> direct(f.dims());
    ASSERT_TRUE(static_cast<bool>(e.decompress_into_f32)) << e.name;
    e.decompress_into_f32(arc, direct.data(), f.dims());
    for (std::size_t i = 0; i < alloc.size(); ++i)
      ASSERT_EQ(direct[i], alloc[i]) << e.name << " index " << i;
  }
}

TEST(ParallelCodec, DecompressIntoRejectsShapeMismatch) {
  const auto f = make_field(DatasetId::kMiranda, 0, Dims{16, 16, 16}, 17);
  for (const auto& e : compressor_registry()) {
    GenericOptions opt;
    opt.error_bound = 1e-2;
    const auto arc = e.compress_f32(f.data(), f.dims(), opt);
    std::vector<float> buf(f.size());
    EXPECT_THROW(e.decompress_into_f32(arc, buf.data(), Dims{16, 16, 8}),
                 DecodeError)
        << e.name;
    EXPECT_THROW(e.decompress_into_f32(arc, buf.data(), Dims{16, 16}),
                 DecodeError)
        << e.name;
  }
}

}  // namespace
}  // namespace qip
