// A/B tests for the runtime-dispatched SIMD kernel layer (src/simd/) and
// the table-driven Huffman decoder.
//
// The contract under test is bit-identity: every vector kernel, at every
// compiled tier, must reproduce the scalar reference path exactly —
// codes, reconstruction bits, outlier streams, symbols, and whole
// archives — including on adversarial inputs (all-outlier blocks,
// radius-edge values, NaN/Inf, segments shorter than one vector width,
// hostile decode symbols). The force-scalar override stands in for the
// QIP_SIMD_FORCE_SCALAR environment gate.

#include "simd/dispatch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "compressors/interp_engine.hpp"
#include "compressors/registry.hpp"
#include "core/qp.hpp"
#include "data/synthetic.hpp"
#include "encode/huffman.hpp"
#include "predict/multilevel.hpp"
#include "quant/quantizer.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace qip {
namespace {

struct ScalarGuard {
  ScalarGuard() { simd::set_force_scalar_override(1); }
  ~ScalarGuard() { simd::set_force_scalar_override(-1); }
};

struct TierGuard {
  explicit TierGuard(simd::Tier t) {
    simd::set_tier_cap_override(static_cast<int>(t));
  }
  ~TierGuard() { simd::set_tier_cap_override(-1); }
};

// Pins force-scalar OFF so a test about tier selection sees the vector
// tiers even when the suite runs under QIP_SIMD_FORCE_SCALAR=1 (the CI
// forced-scalar leg).
struct DispatchOnGuard {
  DispatchOnGuard() { simd::set_force_scalar_override(0); }
  ~DispatchOnGuard() { simd::set_force_scalar_override(-1); }
};

// Vector tiers that are both compiled into this binary and runnable on
// this CPU. Empty on non-x86 or pre-SSE4.2 machines, in which case the
// per-tier tests trivially pass (the engine then always runs scalar).
std::vector<simd::Tier> runnable_vector_tiers() {
  std::vector<simd::Tier> v;
  for (simd::Tier t :
       {simd::Tier::kSSE42, simd::Tier::kAVX2, simd::Tier::kAVX512}) {
    if (simd::tier_kernels<float>(t) != nullptr &&
        static_cast<int>(simd::cpu_tier()) >= static_cast<int>(t))
      v.push_back(t);
  }
  return v;
}

TEST(SimdDispatch, ForceScalarOverrideDisablesEverything) {
  ScalarGuard g;
  EXPECT_TRUE(simd::force_scalar());
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  EXPECT_EQ(simd::kernels<float>(), nullptr);
  EXPECT_EQ(simd::kernels<double>(), nullptr);
  EXPECT_FALSE(simd::huffman_fast_enabled());
}

TEST(SimdDispatch, ScalarTierIsAlwaysCompiled) {
  EXPECT_TRUE(simd::tier_compiled(simd::Tier::kScalar));
  EXPECT_NE(simd::scalar_kernels<float>().quant_encode_block, nullptr);
  EXPECT_NE(simd::scalar_kernels<double>().decode_row, nullptr);
}

TEST(SimdDispatch, TierCapIsHonored) {
  DispatchOnGuard on;
  for (simd::Tier t : runnable_vector_tiers()) {
    TierGuard g(t);
    EXPECT_EQ(simd::active_tier(), t);
    ASSERT_NE(simd::kernels<float>(), nullptr);
    EXPECT_EQ(simd::kernels<float>()->tier, t);
  }
  TierGuard g(simd::Tier::kScalar);
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  EXPECT_EQ(simd::kernels<float>(), nullptr);
}

// ---- quantizer block kernels --------------------------------------------

// Input batteries stressing every branch of the quantize() contract.
template <class T>
std::vector<std::vector<T>> quant_value_sets(const LinearQuantizer<T>& q,
                                             std::size_t n) {
  const double two_eb = q.two_eb();
  const double edge = two_eb * (q.radius() - 1);
  std::vector<std::vector<T>> sets;
  // Smooth in-range values.
  std::vector<T> smooth(n);
  for (std::size_t i = 0; i < n; ++i)
    smooth[i] = static_cast<T>(std::sin(0.05 * static_cast<double>(i)));
  sets.push_back(smooth);
  // All-outlier: far beyond radius * 2eb from the (zero) predictions.
  std::vector<T> outl(n);
  for (std::size_t i = 0; i < n; ++i)
    outl[i] = static_cast<T>(1e30 * (i % 2 ? 1 : -1));
  sets.push_back(outl);
  // Radius edge: straddle |qd| == radius - 1 from both sides.
  std::vector<T> im(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double wiggle = (static_cast<double>(i % 7) - 3.0) * 0.4 * two_eb;
    im[i] = static_cast<T>((i % 2 ? edge : -edge) + wiggle);
  }
  sets.push_back(im);
  // NaN / Inf / denormal lanes mixed with ordinary ones.
  std::vector<T> weird(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 5) {
      case 0: weird[i] = std::numeric_limits<T>::quiet_NaN(); break;
      case 1: weird[i] = std::numeric_limits<T>::infinity(); break;
      case 2: weird[i] = -std::numeric_limits<T>::infinity(); break;
      case 3: weird[i] = std::numeric_limits<T>::denorm_min(); break;
      default: weird[i] = static_cast<T>(0.25 * static_cast<double>(i));
    }
  }
  sets.push_back(weird);
  return sets;
}

// memcmp is declared nonnull, and std::vector::data() may be null when
// empty — the n == 0 battery below needs a null-safe byte compare.
inline bool bytes_equal(const void* a, const void* b, std::size_t nbytes) {
  return nbytes == 0 || std::memcmp(a, b, nbytes) == 0;
}

template <class T>
void check_quant_blocks(const simd::Kernels<T>& kt) {
  const auto& ref = simd::scalar_kernels<T>();
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                        std::size_t{7}, std::size_t{8}, std::size_t{9},
                        std::size_t{97}}) {
    LinearQuantizer<T> proto(1e-3);
    for (const auto& vals : quant_value_sets<T>(proto, n)) {
      std::vector<T> preds(n);
      for (std::size_t i = 0; i < n; ++i)
        preds[i] = static_cast<T>(0.01 * static_cast<double>(i % 13));

      LinearQuantizer<T> qa(1e-3), qb(1e-3);
      std::vector<std::uint32_t> ca(n), cb(n);
      std::vector<T> ra(n), rb(n);
      ref.quant_encode_block(vals.data(), preds.data(), n, &qa, ca.data(),
                             ra.data());
      kt.quant_encode_block(vals.data(), preds.data(), n, &qb, cb.data(),
                            rb.data());
      ASSERT_EQ(ca, cb) << "tier " << simd::to_string(kt.tier) << " n=" << n;
      ASSERT_TRUE(bytes_equal(ra.data(), rb.data(), n * sizeof(T)))
          << "recon bits differ, tier " << simd::to_string(kt.tier);
      ASSERT_EQ(qa.outliers().size(), qb.outliers().size());
      ASSERT_TRUE(bytes_equal(qa.outliers().data(), qb.outliers().data(),
                              qa.outliers().size() * sizeof(T)));

      // Recover from the just-produced codes: code 0 must consume the
      // outlier list in the same order on both paths.
      qa.reset_cursor();
      qb.reset_cursor();
      std::vector<T> oa(n), ob(n);
      ref.quant_recover_block(ca.data(), preds.data(), n, &qa, oa.data());
      kt.quant_recover_block(cb.data(), preds.data(), n, &qb, ob.data());
      ASSERT_TRUE(bytes_equal(oa.data(), ob.data(), n * sizeof(T)));
    }
  }
}

TEST(SimdQuant, BlockKernelsMatchScalarAllTiers) {
  for (simd::Tier t : runnable_vector_tiers()) {
    check_quant_blocks<float>(*simd::tier_kernels<float>(t));
    check_quant_blocks<double>(*simd::tier_kernels<double>(t));
  }
}

TEST(SimdQuant, RecoverThrowsOnExhaustedOutliersLikeScalar) {
  for (simd::Tier t : runnable_vector_tiers()) {
    const auto* kt = simd::tier_kernels<float>(t);
    const std::size_t n = 24;
    std::vector<std::uint32_t> codes(n, kUnpredictableCode);
    std::vector<float> preds(n, 0.f), out(n);
    LinearQuantizer<float> q(1e-3);  // no outliers recorded
    EXPECT_THROW(
        kt->quant_recover_block(codes.data(), preds.data(), n, &q, out.data()),
        DecodeError);
  }
}

// ---- QP block kernels ----------------------------------------------------

// Code batteries: typical near-radius codes, unpredictable zeros, and
// big codes with bits 22..31 set (the i64/i32 divergence region that the
// vector compensation must hand back to the scalar path).
std::vector<std::vector<std::uint32_t>> qp_code_sets(std::size_t n) {
  std::vector<std::vector<std::uint32_t>> sets;
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  auto next = [&] {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(x >> 32);
  };
  std::vector<std::uint32_t> typical(n);
  for (auto& c : typical) c = 32768u + next() % 65u - 32u;
  sets.push_back(typical);
  std::vector<std::uint32_t> zeros(n);
  for (std::size_t i = 0; i < n; ++i)
    zeros[i] = (i % 3 == 0) ? 0u : 32768u + static_cast<std::uint32_t>(i % 9);
  sets.push_back(zeros);
  std::vector<std::uint32_t> big(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 4) {
      case 0: big[i] = next(); break;                    // anything
      case 1: big[i] = 0xFFFFFFFFu - next() % 1000u; break;
      case 2: big[i] = 0x00400000u + next() % 1000u; break;
      default: big[i] = next() % 70000u; break;
    }
  }
  sets.push_back(big);
  return sets;
}

TEST(SimdQp, CompBlockMatchesScalarAllConditionsAllTiers) {
  const std::int32_t radius = 32768;
  for (simd::Tier t : runnable_vector_tiers()) {
    const auto* kt = simd::tier_kernels<float>(t);
    const auto& ref = simd::scalar_kernels<float>();
    for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{8},
                          std::size_t{200}}) {
      const auto sets = qp_code_sets(3 * n);
      for (const auto& codes : sets) {
        const std::uint32_t* left = codes.data();
        const std::uint32_t* top = codes.data() + n;
        const std::uint32_t* diag = codes.data() + 2 * n;
        for (QPCondition cond :
             {QPCondition::kCaseI, QPCondition::kCaseII, QPCondition::kCaseIII,
              QPCondition::kCaseIV}) {
          std::vector<std::int32_t> ca(n), cb(n);
          ref.qp2d_comp_block(left, top, diag, n, cond, radius, ca.data());
          kt->qp2d_comp_block(left, top, diag, n, cond, radius, cb.data());
          ASSERT_EQ(ca, cb) << "tier " << simd::to_string(t) << " cond "
                            << static_cast<int>(cond) << " n=" << n;
        }
      }
    }
  }
}

TEST(SimdQp, SymbolBlocksRoundTripAndMatchScalarAllTiers) {
  const std::int32_t radius = 32768;
  for (simd::Tier t : runnable_vector_tiers()) {
    const auto* kt = simd::tier_kernels<float>(t);
    const auto& ref = simd::scalar_kernels<float>();
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                          std::size_t{333}}) {
      // Encode inputs stay inside the documented envelope (dispatch.hpp):
      // codes a quantizer can emit, compensations a 2-D Lorenzo over such
      // codes can produce (|comp| <= 3 * radius).
      std::vector<std::uint32_t> codes(n);
      std::vector<std::int32_t> comp(n);
      std::uint64_t x = 0xD1B54A32D192ED03ull;
      for (std::size_t i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint32_t r = static_cast<std::uint32_t>(x >> 32);
        codes[i] = (i % 5 == 0) ? 0u : r % (2u * 32768u);
        comp[i] = static_cast<std::int32_t>(r % (6u * 32768u)) - 3 * 32768;
      }
      std::vector<std::uint32_t> sa(n), sb(n), da(n), db(n);
      ref.qp_sym_encode_block(codes.data(), comp.data(), n, radius, sa.data());
      kt->qp_sym_encode_block(codes.data(), comp.data(), n, radius, sb.data());
      ASSERT_EQ(sa, sb) << "tier " << simd::to_string(t);
      ref.qp_sym_decode_block(sa.data(), comp.data(), n, radius, da.data());
      kt->qp_sym_decode_block(sa.data(), comp.data(), n, radius, db.data());
      ASSERT_EQ(da, db) << "tier " << simd::to_string(t);
      ASSERT_EQ(da, codes) << "round trip broke, tier " << simd::to_string(t);

      // Decode is unconditionally exact: hostile symbols no encoder would
      // emit, with arbitrary huge compensations, must still match scalar.
      std::vector<std::int32_t> wild(n);
      std::vector<std::uint32_t> hostile(n);
      for (std::size_t i = 0; i < n; ++i) {
        hostile[i] =
            (i % 2) ? 0xFFFFFFFFu - static_cast<std::uint32_t>(i) : codes[i];
        wild[i] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(i * 2654435761u));
      }
      ref.qp_sym_decode_block(hostile.data(), wild.data(), n, radius,
                              da.data());
      kt->qp_sym_decode_block(hostile.data(), wild.data(), n, radius,
                              db.data());
      ASSERT_EQ(da, db) << "hostile decode diverged, tier "
                        << simd::to_string(t);
    }
  }
}

// ---- engine-level A/B ----------------------------------------------------

template <class T>
Field<T> test_field(const Dims& dims) {
  Field<T> f(dims);
  const std::size_t n = f.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    f.data()[i] =
        static_cast<T>(std::sin(0.02 * x) + 0.3 * std::cos(0.007 * x));
  }
  // A few extreme points so the outlier path stays busy.
  for (std::size_t i = 0; i < n; i += 997)
    f.data()[i] = static_cast<T>((i % 2 ? 1 : -1) * 1e30);
  return f;
}

template <class T>
void check_engine_ab_field(const Field<T>& f, InterpKind kind, bool qp_on) {
  const Dims& dims = f.dims();
  LevelPlan lp;
  lp.kind = kind;
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(dims), lp);
  const double eb = 1e-3;
  const QPConfig qp = qp_on ? QPConfig::best_fit() : QPConfig{};

  auto run = [&](bool force) {
    if (force) simd::set_force_scalar_override(1);
    Field<T> work = f.clone();
    LinearQuantizer<T> q(eb);
    auto res = InterpEngine<T>::encode(work.data(), dims, plan, eb, q, qp);
    simd::set_force_scalar_override(-1);
    return std::tuple{std::move(res), std::move(work), std::move(q)};
  };
  auto [res_s, work_s, q_s] = run(true);
  auto [res_v, work_v, q_v] = run(false);

  ASSERT_EQ(res_s.symbols, res_v.symbols)
      << "rank " << dims.rank() << " kind " << static_cast<int>(kind)
      << " qp=" << qp_on;
  ASSERT_EQ(0, std::memcmp(work_s.data(), work_v.data(),
                           f.size() * sizeof(T)))
      << "recon bits differ";
  ASSERT_EQ(q_s.outliers().size(), q_v.outliers().size());
  ASSERT_TRUE(bytes_equal(q_s.outliers().data(), q_v.outliers().data(),
                          q_s.outliers().size() * sizeof(T)));

  // Decode A/B: scalar decode of the (identical) stream vs dispatched.
  auto dec = [&](bool force) {
    if (force) simd::set_force_scalar_override(1);
    LinearQuantizer<T> q = q_s;
    q.reset_cursor();
    Field<T> out(dims);
    InterpEngine<T>::decode(res_s.symbols, dims, plan, eb, q, qp, out.data());
    simd::set_force_scalar_override(-1);
    return out;
  };
  const Field<T> out_s = dec(true);
  const Field<T> out_v = dec(false);
  ASSERT_EQ(0, std::memcmp(out_s.data(), out_v.data(), f.size() * sizeof(T)));
  ASSERT_EQ(0, std::memcmp(out_s.data(), work_s.data(), f.size() * sizeof(T)))
      << "decode did not reproduce the encoder's reconstruction";
}

template <class T>
void check_engine_ab(const Dims& dims, InterpKind kind, bool qp_on) {
  check_engine_ab_field<T>(test_field<T>(dims), kind, qp_on);
}

TEST(SimdEngine, ByteIdentityRanksKindsQpF32F64) {
  const Dims shapes[] = {Dims{4096}, Dims{80, 72}, Dims{40, 36, 28},
                         Dims{10, 9, 8, 7}};
  for (const Dims& d : shapes) {
    for (InterpKind kind : {InterpKind::kLinear, InterpKind::kCubic}) {
      for (bool qp_on : {false, true}) {
        check_engine_ab<float>(d, kind, qp_on);
        check_engine_ab<double>(d, kind, qp_on);
      }
    }
  }
}

// Adversarial field batteries, per tier. Odd extents put tile-edge
// remainders (counts not divisible by any vector width or by the
// kRowBlock tile) at every level of the walk; the all-outlier field
// drives every lane of the gather path and the fused recovery through
// the scalar outlier fallback; NaN/Inf planes stress the lane masking.
TEST(SimdEngine, AdversarialFieldBatteriesPerTier) {
  const Dims dims{37, 33, 29};
  std::vector<std::pair<const char*, Field<float>>> fields;

  Field<float> outl(dims);
  for (std::size_t i = 0; i < outl.size(); ++i)
    outl.data()[i] = (i % 2 ? 1.f : -1.f) * 1e30f;
  fields.emplace_back("all-outlier", std::move(outl));

  Field<float> weird(dims);
  for (std::size_t z = 0; z < 37; ++z)
    for (std::size_t y = 0; y < 33; ++y)
      for (std::size_t x = 0; x < 29; ++x) {
        float v = std::sin(0.05f * static_cast<float>(x + y + z));
        if (z % 9 == 4) v = std::numeric_limits<float>::quiet_NaN();
        if (z % 9 == 7)
          v = (y % 2 ? 1.f : -1.f) * std::numeric_limits<float>::infinity();
        weird.at(z, y, x) = v;
      }
  fields.emplace_back("nan-inf-planes", std::move(weird));

  DispatchOnGuard on;
  for (simd::Tier t : runnable_vector_tiers()) {
    TierGuard g(t);
    for (const auto& [name, f] : fields) {
      SCOPED_TRACE(std::string(name) + " @ " + simd::to_string(t));
      for (bool qp_on : {false, true})
        check_engine_ab_field<float>(f, InterpKind::kCubic, qp_on);
    }
  }
}

// ---- byte kernels (Huffman max/hist, LZB match scan) ---------------------

TEST(SimdBytes, KernelsMatchScalarAllTiers) {
  const auto& ref = simd::scalar_byte_kernels();
  for (simd::Tier t : runnable_vector_tiers()) {
    const auto* bk = simd::tier_byte_kernels(t);
    ASSERT_NE(bk, nullptr) << simd::to_string(t);

    // Max scan: extremes in head, interior, and tail positions, around
    // every width remainder.
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{15},
                          std::size_t{16}, std::size_t{17}, std::size_t{999}}) {
      std::vector<std::uint32_t> v(n);
      for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint32_t>((i * 2654435761u) ^ 0x55555555u);
      for (std::size_t pos : {std::size_t{0}, n / 2, n ? n - 1 : 0}) {
        if (n) v[pos] = 0xFFFFFFFFu - static_cast<std::uint32_t>(pos);
        ASSERT_EQ(ref.max_u32(v.data(), n), bk->max_u32(v.data(), n))
            << simd::to_string(t) << " n=" << n;
      }
    }

    // Histogram: a maximally skewed stream (sub-histogram path) and a
    // spread one, accumulated on top of a non-zero running histogram to
    // pin the add-into semantics the parallel partials rely on.
    for (bool skewed : {true, false}) {
      const std::size_t n = 40000, alphabet = 64;
      std::vector<std::uint32_t> s(n);
      for (std::size_t i = 0; i < n; ++i)
        s[i] = skewed ? 7u
                      : static_cast<std::uint32_t>((i * 2654435761u) %
                                                   alphabet);
      std::vector<std::uint64_t> ha(alphabet, 3), hb(alphabet, 3);
      ref.hist_u32(s.data(), n, ha.data(), alphabet);
      bk->hist_u32(s.data(), n, hb.data(), alphabet);
      ASSERT_EQ(ha, hb) << simd::to_string(t) << " skewed=" << skewed;
    }

    // Match scan: a mismatch planted at every offset through the first
    // two vector widths, plus the runs-to-end case.
    const std::size_t len = 400;
    std::vector<std::uint8_t> a(len), b(len);
    for (std::size_t i = 0; i < len; ++i)
      a[i] = b[i] = static_cast<std::uint8_t>(i * 131u);
    for (std::size_t mis = 0; mis <= 130; ++mis) {
      std::vector<std::uint8_t> c = b;
      if (mis < len) c[mis] ^= 0x80;
      const std::size_t la = ref.match_len(a.data(), c.data(), c.data() + len);
      const std::size_t lb = bk->match_len(a.data(), c.data(), c.data() + len);
      ASSERT_EQ(la, lb) << simd::to_string(t) << " mis=" << mis;
      ASSERT_EQ(la, mis);
    }
    ASSERT_EQ(ref.match_len(a.data(), b.data(), b.data() + len),
              bk->match_len(a.data(), b.data(), b.data() + len));
  }
}

TEST(SimdEngine, TierCapByteIdentity) {
  // Each runnable vector tier individually reproduces the scalar stream.
  const Dims dims{48, 40, 36};
  const Field<float> f = test_field<float>(dims);
  LevelPlan lp;
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(dims), lp);
  auto encode_now = [&] {
    Field<float> work = f.clone();
    LinearQuantizer<float> q(1e-3);
    return InterpEngine<float>::encode(work.data(), dims, plan, 1e-3, q,
                                       QPConfig::best_fit())
        .symbols;
  };
  std::vector<std::uint32_t> scalar_syms;
  {
    ScalarGuard g;
    scalar_syms = encode_now();
  }
  for (simd::Tier t : runnable_vector_tiers()) {
    TierGuard g(t);
    EXPECT_EQ(encode_now(), scalar_syms) << "tier " << simd::to_string(t);
  }
}

// ---- archive-level A/B across every codec --------------------------------

TEST(SimdArchive, AllCodecsByteIdenticalForcedScalarVsDispatched) {
  const Dims dims{24, 20, 16};
  const Field<float> f32 = test_field<float>(dims);
  const Field<double> f64 = test_field<double>(dims);
  for (const auto& e : compressor_registry()) {
    for (bool qp_on : {false, true}) {
      GenericOptions opt;
      opt.error_bound = 1e-3;
      if (qp_on) opt.qp = QPConfig::best_fit();

      auto arc32_v = e.compress_f32(f32.data(), dims, opt);
      auto arc64_v = e.compress_f64(f64.data(), dims, opt);
      const Field<float> dec32_v = e.decompress_f32(arc32_v);
      const Field<double> dec64_v = e.decompress_f64(arc64_v);

      ScalarGuard g;
      const auto arc32_s = e.compress_f32(f32.data(), dims, opt);
      const auto arc64_s = e.compress_f64(f64.data(), dims, opt);
      ASSERT_EQ(arc32_v, arc32_s) << e.name << " f32 qp=" << qp_on;
      ASSERT_EQ(arc64_v, arc64_s) << e.name << " f64 qp=" << qp_on;
      const Field<float> dec32_s = e.decompress_f32(arc32_v);
      const Field<double> dec64_s = e.decompress_f64(arc64_v);
      ASSERT_EQ(0, std::memcmp(dec32_v.data(), dec32_s.data(),
                               dec32_v.size() * sizeof(float)))
          << e.name << " f32 qp=" << qp_on;
      ASSERT_EQ(0, std::memcmp(dec64_v.data(), dec64_s.data(),
                               dec64_v.size() * sizeof(double)))
          << e.name << " f64 qp=" << qp_on;
    }
  }
}

// Whole-archive byte identity for every registered codec, both scalar
// element types, QP off and on, at every runnable vector tier. This is
// the end-to-end closure of the per-kernel contracts above: the archive
// bytes (and thus the compression ratio) are a pure function of the
// input, never of the ISA the encoder happened to run on.
TEST(SimdArchive, AllCodecsByteIdenticalAcrossAllTiers) {
  const Dims dims{24, 20, 16};
  const Field<float> f32 = test_field<float>(dims);
  const Field<double> f64 = test_field<double>(dims);
  for (const auto& e : compressor_registry()) {
    for (bool qp_on : {false, true}) {
      GenericOptions opt;
      opt.error_bound = 1e-3;
      if (qp_on) opt.qp = QPConfig::best_fit();

      std::vector<std::uint8_t> arc32_s, arc64_s;
      Field<float> d32s;
      Field<double> d64s;
      {
        ScalarGuard g;
        arc32_s = e.compress_f32(f32.data(), dims, opt);
        arc64_s = e.compress_f64(f64.data(), dims, opt);
        d32s = e.decompress_f32(arc32_s);
        d64s = e.decompress_f64(arc64_s);
      }
      DispatchOnGuard on;
      for (simd::Tier t : runnable_vector_tiers()) {
        TierGuard g(t);
        ASSERT_EQ(e.compress_f32(f32.data(), dims, opt), arc32_s)
            << e.name << " f32 qp=" << qp_on << " @ " << simd::to_string(t);
        ASSERT_EQ(e.compress_f64(f64.data(), dims, opt), arc64_s)
            << e.name << " f64 qp=" << qp_on << " @ " << simd::to_string(t);
        const Field<float> d32 = e.decompress_f32(arc32_s);
        const Field<double> d64 = e.decompress_f64(arc64_s);
        ASSERT_EQ(0, std::memcmp(d32.data(), d32s.data(),
                                 d32.size() * sizeof(float)))
            << e.name << " f32 qp=" << qp_on << " @ " << simd::to_string(t);
        ASSERT_EQ(0, std::memcmp(d64.data(), d64s.data(),
                                 d64.size() * sizeof(double)))
            << e.name << " f64 qp=" << qp_on << " @ " << simd::to_string(t);
      }
    }
  }
}

// ---- Huffman fast decoder ------------------------------------------------

std::vector<std::uint32_t> geometric_symbols(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint32_t> s(n);
  std::uint64_t x = seed;
  for (auto& v : s) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    std::uint32_t r = static_cast<std::uint32_t>(x >> 33);
    std::uint32_t g = 0;
    while ((r & 1u) && g < 30) {
      ++g;
      r >>= 1;
    }
    v = 32768u + g;
  }
  return s;
}

TEST(SimdHuffman, FastMatchesLegacyOnTypicalStreams) {
  // Below and above the ranged-layout threshold (2 * 64Ki symbols).
  for (std::size_t n : {std::size_t{50000}, std::size_t{300000}}) {
    const auto syms = geometric_symbols(n, 42);
    const auto enc = huffman_encode(syms);
    const auto fast = huffman_decode(enc);
    ScalarGuard g;
    const auto legacy = huffman_decode(enc);
    ASSERT_EQ(fast, legacy);
    ASSERT_EQ(fast, syms);
  }
}

// Fibonacci-weighted alphabets produce maximally skewed Huffman trees
// (depth ~ alphabet size), forcing codes past the 12-bit primary table
// into the overflow slow path.
std::vector<std::uint32_t> fibonacci_stream(int nsyms) {
  std::vector<std::uint32_t> s;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < nsyms; ++i) {
    for (std::uint64_t k = 0; k < a; ++k)
      s.push_back(static_cast<std::uint32_t>(i));
    const std::uint64_t c = a + b;
    a = b;
    b = c;
  }
  // Deterministic interleave so codes of all lengths mix in the stream.
  std::vector<std::uint32_t> mixed(s.size());
  std::size_t lo = 0, hi = s.size();
  for (std::size_t i = 0; i < s.size(); ++i)
    mixed[i] = (i % 2 == 0) ? s[lo++] : s[--hi];
  return mixed;
}

// Max code length recorded in a legacy-layout archive's code table.
int parse_max_code_length(std::span<const std::uint8_t> enc) {
  ByteReader r(enc);
  const std::uint64_t n = r.get_varint();
  EXPECT_GT(n, 0u) << "expected the legacy (non-ranged) layout";
  const std::uint64_t distinct = r.get_varint();
  int max_len = 0;
  for (std::uint64_t i = 0; i < distinct; ++i) {
    (void)r.get_varint();  // symbol
    max_len = std::max(max_len, static_cast<int>(r.get_varint()));
  }
  return max_len;
}

TEST(SimdHuffman, DeepTableOverflowSlowPathMatchesLegacy) {
  const auto syms = fibonacci_stream(24);
  ASSERT_LT(syms.size(), std::size_t{2} << 16);  // stay in the legacy layout
  const auto enc = huffman_encode(syms);
  ASSERT_GT(parse_max_code_length(enc), 12)
      << "battery no longer exercises the overflow slow path";
  const auto fast = huffman_decode(enc);
  ScalarGuard g;
  const auto legacy = huffman_decode(enc);
  ASSERT_EQ(fast, legacy);
  ASSERT_EQ(fast, syms);
}

// The batched encoder (histogram kernels + 64-bit-word code emission)
// must produce the exact bytes of the BitWriter path: typical geometric
// streams in both layouts, and a deep-table stream whose canonical
// codes straddle the emitter's word-split branch.
TEST(SimdHuffman, EncodeBytesIdenticalFastVsLegacy) {
  std::vector<std::vector<std::uint32_t>> streams;
  streams.push_back(geometric_symbols(50000, 9));   // legacy layout
  streams.push_back(geometric_symbols(300000, 10)); // ranged layout
  streams.push_back(fibonacci_stream(24));          // deep codes (> 12 bits)
  for (const auto& syms : streams) {
    const auto fast = huffman_encode(syms);
    ScalarGuard g;
    const auto legacy = huffman_encode(syms);
    ASSERT_EQ(fast, legacy) << "n=" << syms.size();
    ASSERT_EQ(huffman_decode(fast), syms);
  }
}

TEST(SimdHuffman, TruncationRejectedIdenticallyInBothModes) {
  const auto syms = fibonacci_stream(22);
  const auto enc = huffman_encode(syms);
  for (std::size_t cut = 0; cut < enc.size(); cut += enc.size() / 61 + 1) {
    const std::span<const std::uint8_t> prefix(enc.data(), cut);
    std::string fast_err, legacy_err;
    try {
      (void)huffman_decode(prefix);
    } catch (const DecodeError& e) {
      fast_err = e.what();
    }
    {
      ScalarGuard g;
      try {
        (void)huffman_decode(prefix);
      } catch (const DecodeError& e) {
        legacy_err = e.what();
      }
    }
    ASSERT_EQ(fast_err, legacy_err) << "cut=" << cut;
    ASSERT_FALSE(fast_err.empty()) << "cut=" << cut << " was not rejected";
  }
}

TEST(SimdHuffman, SingleSymbolAndEmptyStreams) {
  for (const std::vector<std::uint32_t>& syms :
       {std::vector<std::uint32_t>{}, std::vector<std::uint32_t>(1000, 7u)}) {
    const auto enc = huffman_encode(syms);
    EXPECT_EQ(huffman_decode(enc), syms);
    ScalarGuard g;
    EXPECT_EQ(huffman_decode(enc), syms);
  }
}

}  // namespace
}  // namespace qip
