// TTHRESH-like baseline tests: HOSVD roundtrip under strict bounds,
// factor handling, large-mode guard.

#include "compressors/tthresh_like.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "util/stats.hpp"

namespace qip {
namespace {

/// Low-rank-ish separable field: ideal Tucker fodder.
Field<float> separable(Dims dims, unsigned seed = 3) {
  Field<float> f(dims);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> ph(0, 6.28f);
  const float p1 = ph(rng), p2 = ph(rng), p3 = ph(rng);
  for (std::size_t z = 0; z < dims.extent(0); ++z)
    for (std::size_t y = 0; y < dims.extent(1); ++y)
      for (std::size_t x = 0; x < dims.extent(2); ++x)
        f.at(z, y, x) =
            std::sin(0.2f * z + p1) * std::cos(0.15f * y + p2) +
            0.5f * std::cos(0.1f * x + p3) * std::sin(0.07f * z);
  return f;
}

TEST(TthreshLike, RoundtripRespectsErrorBound) {
  const auto f = separable(Dims{32, 36, 40});
  for (double eb : {1e-2, 1e-3, 1e-4}) {
    TTHRESHConfig cfg;
    cfg.error_bound = eb;
    const auto arc = tthresh_compress(f.data(), f.dims(), cfg);
    const auto dec = tthresh_decompress<float>(arc);
    EXPECT_LE(max_abs_error(f.span(), dec.span()), eb * (1 + 1e-9))
        << "eb=" << eb;
  }
}

TEST(TthreshLike, LowRankDataCompressesVeryWell) {
  const auto f = separable(Dims{48, 48, 48});
  TTHRESHConfig cfg;
  cfg.error_bound = 1e-3;
  const auto arc = tthresh_compress(f.data(), f.dims(), cfg);
  EXPECT_GT(static_cast<double>(f.size() * 4) / arc.size(), 8.0);
}

TEST(TthreshLike, LargeModeGuardSkipsDecorrelation) {
  // One mode above the guard: the compressor must still roundtrip.
  Field<float> f(Dims{600, 8, 8});
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = std::sin(0.01f * static_cast<float>(i));
  TTHRESHConfig cfg;
  cfg.error_bound = 1e-3;
  cfg.max_mode_size = 256;
  const auto dec =
      tthresh_decompress<float>(tthresh_compress(f.data(), f.dims(), cfg));
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-3 * (1 + 1e-9));
}

// Generic dtype × rank roundtrips live in test_all_codecs.cpp.

TEST(TthreshLike, RoughDataBounded) {
  Field<float> f(Dims{20, 20, 20});
  std::mt19937 rng(41);
  std::uniform_real_distribution<float> u(-1, 1);
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = u(rng);
  TTHRESHConfig cfg;
  cfg.error_bound = 1e-2;
  const auto dec =
      tthresh_decompress<float>(tthresh_compress(f.data(), f.dims(), cfg));
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-2 * (1 + 1e-9));
}

}  // namespace
}  // namespace qip
