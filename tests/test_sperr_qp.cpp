// Tests for the future-work extension: QP generalized to the SPERR-like
// wavelet archetype (subband index prediction).

#include <gtest/gtest.h>

#include "compressors/sperr_like.hpp"
#include "data/synthetic.hpp"
#include "util/stats.hpp"

namespace qip {
namespace {

TEST(SperrIndexPrediction, ReconstructionIsBitIdentical) {
  const auto f = make_field(DatasetId::kCESM, 0, Dims{26, 96, 96}, 1);
  SPERRConfig base;
  base.error_bound = 1e-3 * value_range(f.span()).width();
  SPERRConfig ip = base;
  ip.index_prediction = true;
  const auto d0 = sperr_decompress<float>(sperr_compress(f.data(), f.dims(), base));
  const auto d1 = sperr_decompress<float>(sperr_compress(f.data(), f.dims(), ip));
  for (std::size_t i = 0; i < d0.size(); ++i) ASSERT_EQ(d0[i], d1[i]) << i;
}

TEST(SperrIndexPrediction, HelpsBandedClimateData) {
  const auto f = make_field(DatasetId::kCESM, 0, Dims{26, 128, 128}, 1);
  SPERRConfig base;
  base.error_bound = 1e-3 * value_range(f.span()).width();
  SPERRConfig ip = base;
  ip.index_prediction = true;
  const auto a0 = sperr_compress(f.data(), f.dims(), base);
  const auto a1 = sperr_compress(f.data(), f.dims(), ip);
  EXPECT_LT(a1.size(), a0.size());
}

TEST(SperrIndexPrediction, BoundStillHolds) {
  for (auto id : {DatasetId::kMiranda, DatasetId::kSegSalt}) {
    const auto f = make_field(id, 0, Dims{32, 40, 48}, 7);
    SPERRConfig cfg;
    cfg.error_bound = 1e-4 * value_range(f.span()).width();
    cfg.index_prediction = true;
    const auto dec =
        sperr_decompress<float>(sperr_compress(f.data(), f.dims(), cfg));
    EXPECT_LE(max_abs_error(f.span(), dec.span()),
              cfg.error_bound * (1 + 1e-9));
  }
}

TEST(SperrIndexPrediction, Rank2AndOddShapes) {
  for (Dims dims : {Dims{65, 130}, Dims{17, 33, 9}}) {
    Field<float> f(dims);
    for (std::size_t i = 0; i < f.size(); ++i)
      f[i] = std::sin(0.02f * static_cast<float>(i));
    SPERRConfig cfg;
    cfg.error_bound = 1e-4;
    cfg.index_prediction = true;
    const auto dec =
        sperr_decompress<float>(sperr_compress(f.data(), dims, cfg));
    EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-4 * (1 + 1e-9))
        << dims.str();
  }
}

}  // namespace
}  // namespace qip
