// Registry tests: all seven compressors are reachable through the
// type-erased interface and honor the common contract.

#include "compressors/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace qip {
namespace {

Field<float> smooth(Dims dims) {
  Field<float> f(dims);
  for (std::size_t z = 0; z < dims.extent(0); ++z)
    for (std::size_t y = 0; y < dims.extent(1); ++y)
      for (std::size_t x = 0; x < dims.extent(2); ++x)
        f.at(z, y, x) =
            std::sin(0.1f * z) * std::cos(0.12f * y) + 0.3f * std::sin(0.08f * x);
  return f;
}

TEST(Registry, HasSevenCompressorsInTableOrder) {
  const auto& reg = compressor_registry();
  ASSERT_EQ(reg.size(), 7u);
  const char* expect[] = {"MGARD", "SZ3", "QoZ", "HPEZ", "ZFP", "TTHRESH",
                          "SPERR"};
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(reg[i].name, expect[i]);
}

TEST(Registry, QpBaseCompressorsAreTheInterpolationFour) {
  const auto bases = qp_base_compressors();
  ASSERT_EQ(bases.size(), 4u);
  for (const auto* e : bases) {
    EXPECT_TRUE(e->interpolation);
    EXPECT_TRUE(e->supports_qp);
  }
}

TEST(Registry, UnknownNameThrows) {
  // Typed so callers can distinguish "no such codec" from other failures;
  // the 0xFF codec id marks a lookup that never saw an archive header.
  try {
    (void)find_compressor("SZ4");
    FAIL() << "find_compressor accepted an unknown name";
  } catch (const UnknownCodecError& e) {
    EXPECT_EQ(e.codec_id(), 0xFF);
  }
}

TEST(Registry, FindCompressorForResolvesArchiveCodec) {
  Field<float> f(Dims{40});
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = std::sin(0.2f * static_cast<float>(i));
  GenericOptions opt;
  const auto& sz3 = find_compressor("SZ3");
  const auto arc = sz3.compress_f32(f.data(), f.dims(), opt);
  const auto& found = find_compressor_for(arc);
  EXPECT_EQ(found.name, "SZ3");
  EXPECT_EQ(found.id, CompressorId::kSZ3);
}

TEST(Registry, FindCompressorForReportsUnknownCodecId) {
  // Structurally valid container naming a codec this build doesn't have.
  ContainerWriter w(static_cast<CompressorId>(200), dtype_tag<float>(),
                    Dims{4});
  w.stage(StageId::kConfig).put_bytes(std::vector<std::uint8_t>{1, 2, 3});
  const auto arc = w.seal();
  try {
    (void)find_compressor_for(arc);
    FAIL() << "unknown codec id must not resolve";
  } catch (const UnknownCodecError& e) {
    EXPECT_EQ(e.codec_id(), 200);
    EXPECT_EQ(e.version(), kContainerVersion);
  }
}

TEST(Registry, FindCompressorForReportsUnsupportedVersion) {
  ContainerWriter w(CompressorId::kQoZ, dtype_tag<double>(), Dims{4});
  w.stage(StageId::kConfig).put_bytes(std::vector<std::uint8_t>{1});
  auto arc = w.seal();
  arc[4] = kContainerVersion + 3;  // version byte follows the magic
  try {
    (void)find_compressor_for(arc);
    FAIL() << "future format version must not resolve";
  } catch (const UnknownCodecError& e) {
    EXPECT_EQ(e.version(), kContainerVersion + 3);
    EXPECT_EQ(e.codec_id(), static_cast<std::uint8_t>(CompressorId::kQoZ));
  }
}

TEST(Registry, FindCompressorForRejectsGarbage) {
  const std::vector<std::uint8_t> junk(16, 0xAB);
  EXPECT_THROW((void)find_compressor_for(junk), DecodeError);
}

TEST(Registry, AllCompressorsRoundtripF32WithinBound) {
  const auto f = smooth(Dims{24, 28, 32});
  GenericOptions opt;
  opt.error_bound = 1e-3;
  for (const auto& e : compressor_registry()) {
    const auto arc = e.compress_f32(f.data(), f.dims(), opt);
    const auto dec = e.decompress_f32(arc);
    ASSERT_EQ(dec.dims(), f.dims()) << e.name;
    EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-3 * (1 + 1e-9))
        << e.name;
  }
}

TEST(Registry, AllCompressorsRoundtripF64WithinBound) {
  Field<double> f(Dims{16, 20, 24});
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = std::sin(0.01 * static_cast<double>(i));
  GenericOptions opt;
  opt.error_bound = 1e-4;
  for (const auto& e : compressor_registry()) {
    const auto arc = e.compress_f64(f.data(), f.dims(), opt);
    const auto dec = e.decompress_f64(arc);
    EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-4 * (1 + 1e-9))
        << e.name;
  }
}

TEST(Registry, QPImprovesOrMatchesRatioOnClusteredData) {
  // On wavefield-like data every QP-capable base compressor should gain
  // (or at worst roughly match) with the paper's best-fit QP config.
  Field<float> f(Dims{48, 48, 48});
  for (std::size_t z = 0; z < 48; ++z)
    for (std::size_t y = 0; y < 48; ++y)
      for (std::size_t x = 0; x < 48; ++x) {
        const float r = std::sqrt(static_cast<float>(
            (z - 16.f) * (z - 16.f) + (y - 24.f) * (y - 24.f) +
            (x - 24.f) * (x - 24.f)));
        f.at(z, y, x) = std::sin(0.5f * r) / (1.f + 0.1f * r);
      }
  GenericOptions base;
  base.error_bound = 1e-3;
  GenericOptions withqp = base;
  withqp.qp = QPConfig::best_fit();
  for (const auto* e : qp_base_compressors()) {
    const auto a0 = e->compress_f32(f.data(), f.dims(), base);
    const auto a1 = e->compress_f32(f.data(), f.dims(), withqp);
    EXPECT_LE(a1.size(), a0.size() * 102 / 100) << e->name;
  }
}

}  // namespace
}  // namespace qip
