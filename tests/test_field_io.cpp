// Unit tests for raw/.qfld field I/O.

#include "util/field_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace qip {
namespace {

class FieldIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("qip_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

Field<float> sample_field() {
  Field<float> f(Dims{4, 6, 8});
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = static_cast<float>(i) * 0.5f - 3.f;
  return f;
}

TEST_F(FieldIoTest, RawRoundtrip) {
  const auto f = sample_field();
  write_raw(path("a.raw"), f);
  const auto g = read_raw<float>(path("a.raw"), f.dims());
  for (std::size_t i = 0; i < f.size(); ++i) ASSERT_EQ(f[i], g[i]);
}

TEST_F(FieldIoTest, RawShortFileThrows) {
  const auto f = sample_field();
  write_raw(path("a.raw"), f);
  EXPECT_THROW(read_raw<float>(path("a.raw"), Dims{4, 6, 9}),
               std::runtime_error);
}

TEST_F(FieldIoTest, QfldRoundtripPreservesShape) {
  const auto f = sample_field();
  write_qfld(path("a.qfld"), f);
  const auto g = read_qfld<float>(path("a.qfld"));
  EXPECT_EQ(g.dims(), f.dims());
  for (std::size_t i = 0; i < f.size(); ++i) ASSERT_EQ(f[i], g[i]);
}

TEST_F(FieldIoTest, QfldDoubleAndRank1) {
  Field<double> f(Dims{777});
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = i * 1.25;
  write_qfld(path("d.qfld"), f);
  const auto g = read_qfld<double>(path("d.qfld"));
  EXPECT_EQ(g.dims(), f.dims());
  for (std::size_t i = 0; i < f.size(); ++i) ASSERT_EQ(f[i], g[i]);
}

TEST_F(FieldIoTest, QfldDtypeMismatchThrows) {
  write_qfld(path("a.qfld"), sample_field());
  EXPECT_THROW(read_qfld<double>(path("a.qfld")), std::runtime_error);
}

TEST_F(FieldIoTest, QfldBadMagicThrows) {
  write_bytes(path("junk.qfld"), std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6});
  EXPECT_THROW(read_qfld<float>(path("junk.qfld")), std::runtime_error);
}

TEST_F(FieldIoTest, MissingFileThrows) {
  EXPECT_THROW(read_bytes(path("nope.bin")), std::runtime_error);
}

TEST_F(FieldIoTest, BytesRoundtrip) {
  std::vector<std::uint8_t> b{0, 255, 42, 7};
  write_bytes(path("b.bin"), b);
  EXPECT_EQ(read_bytes(path("b.bin")), b);
  write_bytes(path("e.bin"), {});
  EXPECT_TRUE(read_bytes(path("e.bin")).empty());
}

}  // namespace
}  // namespace qip
