// Unit tests for raw/.qfld field I/O.

#include "util/field_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

namespace qip {
namespace {

class FieldIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("qip_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

Field<float> sample_field() {
  Field<float> f(Dims{4, 6, 8});
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = static_cast<float>(i) * 0.5f - 3.f;
  return f;
}

TEST_F(FieldIoTest, RawRoundtrip) {
  const auto f = sample_field();
  write_raw(path("a.raw"), f);
  const auto g = read_raw<float>(path("a.raw"), f.dims());
  for (std::size_t i = 0; i < f.size(); ++i) ASSERT_EQ(f[i], g[i]);
}

TEST_F(FieldIoTest, RawShortFileThrows) {
  const auto f = sample_field();
  write_raw(path("a.raw"), f);
  EXPECT_THROW(read_raw<float>(path("a.raw"), Dims{4, 6, 9}),
               std::runtime_error);
}

TEST_F(FieldIoTest, QfldRoundtripPreservesShape) {
  const auto f = sample_field();
  write_qfld(path("a.qfld"), f);
  const auto g = read_qfld<float>(path("a.qfld"));
  EXPECT_EQ(g.dims(), f.dims());
  for (std::size_t i = 0; i < f.size(); ++i) ASSERT_EQ(f[i], g[i]);
}

TEST_F(FieldIoTest, QfldDoubleAndRank1) {
  Field<double> f(Dims{777});
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = i * 1.25;
  write_qfld(path("d.qfld"), f);
  const auto g = read_qfld<double>(path("d.qfld"));
  EXPECT_EQ(g.dims(), f.dims());
  for (std::size_t i = 0; i < f.size(); ++i) ASSERT_EQ(f[i], g[i]);
}

TEST_F(FieldIoTest, QfldDtypeMismatchThrows) {
  write_qfld(path("a.qfld"), sample_field());
  EXPECT_THROW(read_qfld<double>(path("a.qfld")), std::runtime_error);
}

TEST_F(FieldIoTest, QfldBadMagicThrows) {
  write_bytes(path("junk.qfld"), std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6});
  EXPECT_THROW(read_qfld<float>(path("junk.qfld")), std::runtime_error);
}

TEST_F(FieldIoTest, MissingFileThrows) {
  EXPECT_THROW(read_bytes(path("nope.bin")), std::runtime_error);
}

TEST_F(FieldIoTest, BytesRoundtrip) {
  std::vector<std::uint8_t> b{0, 255, 42, 7};
  write_bytes(path("b.bin"), b);
  EXPECT_EQ(read_bytes(path("b.bin")), b);
  write_bytes(path("e.bin"), {});
  EXPECT_TRUE(read_bytes(path("e.bin")).empty());
}

#if QIP_HAS_MMAP

// RAII toggle for the QIP_IO_BUFFERED escape hatch, so a test failure
// cannot leak the buffered override into later tests.
class BufferedIoGuard {
 public:
  BufferedIoGuard() { ::setenv("QIP_IO_BUFFERED", "1", 1); }
  ~BufferedIoGuard() { ::unsetenv("QIP_IO_BUFFERED"); }
};

TEST_F(FieldIoTest, MappedAndBufferedReadsAreIdentical) {
  const auto f = sample_field();
  write_raw(path("a.raw"), f);
  write_qfld(path("a.qfld"), f);
  const std::vector<std::uint8_t> blob{9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  write_bytes(path("a.bin"), blob);

  // Default path (mmap where available).
  const auto raw_m = read_raw<float>(path("a.raw"), f.dims());
  const auto qfld_m = read_qfld<float>(path("a.qfld"));
  const auto bytes_m = read_bytes(path("a.bin"));

  // Forced-buffered path must produce the same bytes.
  BufferedIoGuard buffered;
  const auto raw_b = read_raw<float>(path("a.raw"), f.dims());
  const auto qfld_b = read_qfld<float>(path("a.qfld"));
  const auto bytes_b = read_bytes(path("a.bin"));

  ASSERT_EQ(raw_m.size(), raw_b.size());
  for (std::size_t i = 0; i < raw_m.size(); ++i) ASSERT_EQ(raw_m[i], raw_b[i]);
  EXPECT_EQ(qfld_m.dims(), qfld_b.dims());
  for (std::size_t i = 0; i < qfld_m.size(); ++i)
    ASSERT_EQ(qfld_m[i], qfld_b[i]);
  EXPECT_EQ(bytes_m, bytes_b);
  EXPECT_EQ(bytes_m, blob);
}

TEST_F(FieldIoTest, MappedFileExposesExactBytes) {
  const std::vector<std::uint8_t> blob{1, 2, 3, 4, 5};
  write_bytes(path("m.bin"), blob);
  MappedFile m = MappedFile::map(path("m.bin"));
  ASSERT_TRUE(m.valid());
  ASSERT_EQ(m.bytes().size(), blob.size());
  EXPECT_EQ(0, std::memcmp(m.bytes().data(), blob.data(), blob.size()));

  // Move transfers ownership; the source becomes invalid.
  MappedFile moved = std::move(m);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(m.valid());  // NOLINT(bugprone-use-after-move): tested on purpose
  EXPECT_EQ(moved.bytes().size(), blob.size());
}

TEST_F(FieldIoTest, MappedFileFallsBackGracefully) {
  // Empty regular file: not mappable, reported as invalid (callers fall
  // back to the buffered path), not an exception.
  write_bytes(path("empty.bin"), {});
  EXPECT_FALSE(MappedFile::map(path("empty.bin")).valid());
  // Missing file: a real open error, reported by throwing.
  EXPECT_THROW(MappedFile::map(path("gone.bin")), std::runtime_error);
  // Mapped reads of short files must still throw like buffered ones do.
  const auto f = sample_field();
  write_raw(path("short.raw"), f);
  EXPECT_THROW(read_raw<float>(path("short.raw"), Dims{4, 6, 9}),
               std::runtime_error);
}

#endif  // QIP_HAS_MMAP

}  // namespace
}  // namespace qip
