// Unit tests for the Lorenzo predictor stencils and the Lorenzo
// compression path.

#include "predict/lorenzo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "compressors/lorenzo_path.hpp"
#include "util/field.hpp"

namespace qip {
namespace {

TEST(Lorenzo, Stencil1D) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(lorenzo1(&v[2], 1), 2.0);
}

TEST(Lorenzo, Stencil2DExactOnPlanes) {
  // The 2-D Lorenzo stencil annihilates the mixed difference, so it is
  // exact on f(y, x) = 3 + 2y + 5x (no yx cross term).
  const Dims d{8, 8};
  Field<double> f(d);
  auto fn = [](double y, double x) { return 3 + 2 * y + 5 * x; };
  for (std::size_t y = 0; y < 8; ++y)
    for (std::size_t x = 0; x < 8; ++x) f.at(y, x) = fn(y, x);
  for (std::size_t y = 1; y < 8; ++y)
    for (std::size_t x = 1; x < 8; ++x)
      EXPECT_NEAR(lorenzo2(&f.at(y, x), d.stride(0), d.stride(1)), fn(y, x),
                  1e-9);
}

TEST(Lorenzo, Stencil3DExactUpToPairwiseCrossTerms) {
  // 3-D Lorenzo annihilates the *triple* mixed difference, so all
  // pairwise cross terms are reproduced exactly; only zyx would break it.
  const Dims d{6, 6, 6};
  Field<double> f(d);
  auto fn = [](double z, double y, double x) {
    return 1 + z + 2 * y + 3 * x + z * y + z * x + y * x;
  };
  for (std::size_t z = 0; z < 6; ++z)
    for (std::size_t y = 0; y < 6; ++y)
      for (std::size_t x = 0; x < 6; ++x) f.at(z, y, x) = fn(z, y, x);
  for (std::size_t z = 1; z < 6; ++z)
    for (std::size_t y = 1; y < 6; ++y)
      for (std::size_t x = 1; x < 6; ++x)
        EXPECT_NEAR(lorenzo3(&f.at(z, y, x), d.stride(0), d.stride(1),
                             d.stride(2)),
                    fn(z, y, x), 1e-9);
}

TEST(LorenzoPath, RoundtripAllRanks) {
  for (Dims dims : {Dims{777}, Dims{31, 45}, Dims{13, 17, 19},
                    Dims{5, 7, 9, 11}}) {
    Field<float> f(dims);
    for (std::size_t i = 0; i < f.size(); ++i)
      f[i] = std::sin(0.02f * static_cast<float>(i));
    Field<float> work = f.clone();
    LinearQuantizer<float> enc(1e-4);
    std::vector<std::uint32_t> syms;
    std::size_t cur = 0;
    lorenzo_walk<float, true>(work.data(), dims, enc, syms, cur);
    ASSERT_EQ(syms.size(), f.size()) << dims.str();

    Field<float> out(dims);
    ByteWriter w;
    enc.save(w);
    const auto buf = w.bytes();
    ByteReader r(buf);
    LinearQuantizer<float> dec(0.0);
    dec.load(r);
    cur = 0;
    lorenzo_walk<float, false>(out.data(), dims, dec, syms, cur);
    for (std::size_t i = 0; i < f.size(); ++i) {
      ASSERT_NEAR(out[i], f[i], 1e-4 * (1 + 1e-9)) << dims.str() << " @" << i;
      ASSERT_EQ(out[i], work[i]) << "decoder diverged from encoder state";
    }
  }
}

TEST(LorenzoPath, ShortSymbolStreamRejected) {
  // The decode walk consumes one symbol per point; a hostile archive
  // whose dims header claims more points than the stream holds must
  // throw instead of reading past the end.
  const Dims dims{6, 7, 8};
  Field<float> f(dims);
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = std::sin(0.05f * static_cast<float>(i));
  LinearQuantizer<float> enc(1e-4);
  std::vector<std::uint32_t> syms;
  std::size_t cur = 0;
  lorenzo_walk<float, true>(f.data(), dims, enc, syms, cur);

  syms.resize(syms.size() - 1);  // one symbol short of the field
  Field<float> out(dims);
  enc.reset_cursor();
  cur = 0;
  EXPECT_THROW((lorenzo_walk<float, false>(out.data(), dims, enc, syms, cur)),
               DecodeError);
}

TEST(LorenzoPath, LinearRampQuantizesToNearZeroSymbols) {
  // A trilinear ramp is predicted exactly: all interior symbols should be
  // the zero-residual code.
  const Dims dims{16, 16, 16};
  Field<float> f(dims);
  for (std::size_t z = 0; z < 16; ++z)
    for (std::size_t y = 0; y < 16; ++y)
      for (std::size_t x = 0; x < 16; ++x)
        f.at(z, y, x) = 0.5f * z + 0.25f * y + 0.125f * x;
  LinearQuantizer<float> q(1e-5);
  std::vector<std::uint32_t> syms;
  std::size_t cur = 0;
  lorenzo_walk<float, true>(f.data(), dims, q, syms, cur);
  // Symbol for q == 0 with zero compensation is zigzag(0)+1 == 1.
  std::size_t zero_like = 0;
  for (std::uint32_t s : syms)
    if (s == 1) ++zero_like;
  EXPECT_GT(zero_like, syms.size() * 8 / 10);
}

}  // namespace
}  // namespace qip
