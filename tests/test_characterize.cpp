// Characterization tool tests: slice/region entropy and cluster stats on
// hand-built index arrays with known entropy.

#include "core/characterize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qip {
namespace {

constexpr std::int32_t kR = 32768;

std::vector<std::uint32_t> constant_codes(const Dims& d, std::uint32_t v) {
  return std::vector<std::uint32_t>(d.size(), v);
}

TEST(Characterize, ConstantSliceHasZeroEntropy) {
  const Dims d{8, 16, 16};
  const auto codes = constant_codes(d, kR);
  const auto ent = slice_entropies(codes, d, 0, 1);
  ASSERT_EQ(ent.size(), 8u);
  for (double e : ent) EXPECT_DOUBLE_EQ(e, 0.0);
}

TEST(Characterize, TwoSymbolSliceHasOneBit) {
  const Dims d{4, 16, 16};
  std::vector<std::uint32_t> codes(d.size(), kR);
  // Alternate two symbols in slice 0 of axis 0.
  for (std::size_t y = 0; y < 16; ++y)
    for (std::size_t x = 0; x < 16; ++x)
      codes[d.index(0, y, x)] = (x % 2) ? kR + 1 : kR - 1;
  const auto ent = slice_entropies(codes, d, 0, 1);
  EXPECT_NEAR(ent[0], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(ent[1], 0.0);
}

TEST(Characterize, StrideSubsamplingSelectsGrid) {
  const Dims d{2, 8, 8};
  std::vector<std::uint32_t> codes(d.size(), kR);
  // Put a distinct symbol only on odd coordinates: stride-2 sampling
  // starting at 0 must never see it.
  for (std::size_t y = 0; y < 8; ++y)
    for (std::size_t x = 0; x < 8; ++x)
      if (y % 2 == 1 || x % 2 == 1) codes[d.index(0, y, x)] = kR + 5;
  const auto ent = slice_entropies(codes, d, 0, 2);
  EXPECT_DOUBLE_EQ(ent[0], 0.0);
}

TEST(Characterize, RegionEntropyMatchesManualCount) {
  const Dims d{1, 8, 8};
  std::vector<std::uint32_t> codes(d.size(), kR);
  // 4 symbols equally likely in the region -> 2 bits.
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x)
      codes[d.index(0, y, x)] = kR + static_cast<std::uint32_t>((y % 2) * 2 +
                                                                (x % 2));
  EXPECT_NEAR(region_entropy(codes, d, 0, 0, 0, 4, 0, 4, 1, 1), 2.0, 1e-12);
}

TEST(Characterize, PlaneAxesForAllFixedAxes) {
  const Dims d{4, 6, 8};
  const auto codes = constant_codes(d, kR);
  EXPECT_EQ(slice_entropies(codes, d, 0, 1).size(), 4u);
  EXPECT_EQ(slice_entropies(codes, d, 1, 1).size(), 6u);
  EXPECT_EQ(slice_entropies(codes, d, 2, 1).size(), 8u);
}

TEST(Characterize, ClusterStatsDetectClustering) {
  const Dims d{1, 32, 32};
  std::vector<std::uint32_t> codes(d.size(), kR);
  // A clustered positive region: indices predictable from neighbors.
  for (std::size_t y = 4; y < 28; ++y)
    for (std::size_t x = 4; x < 28; ++x)
      codes[d.index(0, y, x)] = kR + 3;
  const auto st = cluster_stats(codes, d, 0, 0, 1, 1, kR);
  EXPECT_GT(st.entropy, 0.0);
  // The 2-D Lorenzo residual collapses the cluster: lower entropy.
  EXPECT_LT(st.residual_entropy, st.entropy + 1e-12);
  EXPECT_GT(st.same_sign_fraction, 0.4);
}

TEST(Characterize, RandomIndicesDoNotCluster) {
  const Dims d{1, 32, 32};
  std::vector<std::uint32_t> codes(d.size());
  std::uint64_t s = 12345;
  for (auto& c : codes) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    c = kR - 8 + static_cast<std::uint32_t>((s >> 33) % 17);
  }
  const auto st = cluster_stats(codes, d, 0, 0, 1, 1, kR);
  // Lorenzo residual of white noise has *higher* entropy than the input.
  EXPECT_GT(st.residual_entropy, st.entropy - 0.2);
  EXPECT_GT(st.mean_abs_residual, 1.0);
}

}  // namespace
}  // namespace qip
