// Unit tests for the multilevel stage-grid traversal: coverage,
// uniqueness, stage strides (the paper's 2x2 / 1x2 / 1x1 clustering
// geometry) and QP axis assignment.

#include "predict/multilevel.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace qip {
namespace {

TEST(Multilevel, LevelCount) {
  EXPECT_EQ(interpolation_level_count(Dims{2}), 1);
  EXPECT_EQ(interpolation_level_count(Dims{3}), 2);
  EXPECT_EQ(interpolation_level_count(Dims{256, 256, 256}), 8);
  EXPECT_EQ(interpolation_level_count(Dims{257}), 9);
  EXPECT_EQ(interpolation_level_count(Dims{100, 500, 500}), 9);
}

/// Every point except the origin must be visited exactly once across all
/// levels and stages.
void check_coverage(const Dims& dims, bool md) {
  std::vector<int> hits(dims.size(), 0);
  const int levels = interpolation_level_count(dims);
  const auto order = default_order(dims.rank());
  for (int level = levels; level >= 1; --level) {
    const std::size_t s = std::size_t{1} << (level - 1);
    if (!md) {
      for (int k = 0; k < dims.rank(); ++k) {
        const StageGrid g = make_stage_grid(
            dims, s, std::span<const int>(order.data(), dims.rank()), k,
            level);
        for_each_stage_point(dims, g,
                             [&](const auto&, std::size_t idx) { ++hits[idx]; });
      }
    } else {
      for (int pc = 1; pc <= dims.rank(); ++pc) {
        for (std::uint32_t mask = 1; mask < (1u << dims.rank()); ++mask) {
          if (std::popcount(mask) != pc) continue;
          StageGrid g;
          g.stride = s;
          for (int a = 0; a < kMaxRank; ++a) {
            g.start[a] = 0;
            g.step[a] = 1;
          }
          for (int a = 0; a < dims.rank(); ++a) {
            g.start[a] = (mask >> a) & 1 ? s : 0;
            g.step[a] = 2 * s;
          }
          for_each_stage_point(dims, g, [&](const auto&, std::size_t idx) {
            ++hits[idx];
          });
        }
      }
    }
  }
  EXPECT_EQ(hits[0], 0) << "origin is the anchor";
  for (std::size_t i = 1; i < hits.size(); ++i)
    ASSERT_EQ(hits[i], 1) << dims.str() << (md ? " md" : " seq") << " @" << i;
}

TEST(Multilevel, SeqCoverageExactlyOnce) {
  check_coverage(Dims{17}, false);
  check_coverage(Dims{9, 13}, false);
  check_coverage(Dims{8, 9, 10}, false);
  check_coverage(Dims{5, 6, 7, 8}, false);
}

TEST(Multilevel, MdCoverageExactlyOnce) {
  check_coverage(Dims{9, 13}, true);
  check_coverage(Dims{8, 9, 10}, true);
  check_coverage(Dims{5, 6, 7, 8}, true);
}

TEST(Multilevel, StageStridesMatchPaperGeometry) {
  // Rank-3, order (z, y, x): stage 0 predicts z-odd points on a 2s x 2s
  // orthogonal grid; stage 1 on s x 2s; stage 2 on s x s.
  const Dims dims{32, 32, 32};
  const int order[] = {0, 1, 2};
  const std::size_t s = 2;
  const StageGrid g0 = make_stage_grid(dims, s, order, 0, 2);
  EXPECT_EQ(g0.start[0], s);
  EXPECT_EQ(g0.step[0], 2 * s);
  EXPECT_EQ(g0.step[1], 2 * s);  // orthogonal spacing 2s ("2x2")
  EXPECT_EQ(g0.step[2], 2 * s);
  const StageGrid g1 = make_stage_grid(dims, s, order, 1, 2);
  EXPECT_EQ(g1.step[0], s);      // done dim at s ("1x2" with x at 2s)
  EXPECT_EQ(g1.start[1], s);
  EXPECT_EQ(g1.step[2], 2 * s);
  const StageGrid g2 = make_stage_grid(dims, s, order, 2, 2);
  EXPECT_EQ(g2.step[0], s);      // "1x1"
  EXPECT_EQ(g2.step[1], s);
  EXPECT_EQ(g2.start[2], s);
}

TEST(Multilevel, BoxRestrictionMatchesFilteredFullEnumeration) {
  const Dims dims{24, 24, 24};
  const int order[] = {0, 1, 2};
  const StageGrid g = make_stage_grid(dims, 2, order, 1, 2);
  const std::array<std::size_t, kMaxRank> lo{8, 4, 10, 0};
  const std::array<std::size_t, kMaxRank> hi{16, 20, 18, 1};
  std::set<std::size_t> in_box;
  for_each_stage_point_in_box(dims, g, lo, hi,
                              [&](const auto&, std::size_t idx) {
                                in_box.insert(idx);
                              });
  std::set<std::size_t> filtered;
  for_each_stage_point(dims, g, [&](const auto& c, std::size_t idx) {
    bool inside = true;
    for (int a = 0; a < 3; ++a)
      if (c[a] < lo[a] || c[a] >= hi[a]) inside = false;
    if (inside) filtered.insert(idx);
  });
  EXPECT_EQ(in_box, filtered);
}

TEST(Multilevel, QpAxisAssignmentRank3) {
  const Dims dims{16, 16, 16};
  const int order[] = {0, 1, 2};
  const StageGrid g = make_stage_grid(dims, 1, order, 0, 1);
  const QPAxes ax = assign_qp_axes(g, dims, 0);
  EXPECT_EQ(ax.back, 0);
  EXPECT_EQ(ax.left, 2);  // fastest orthogonal axis
  EXPECT_EQ(ax.top, 1);
  EXPECT_EQ(ax.left_off, g.step[2] * dims.stride(2));
  EXPECT_EQ(ax.top_off, g.step[1] * dims.stride(1));
}

TEST(Multilevel, QpAxisAssignmentRank2UsesBackAsSecondPlaneAxis) {
  const Dims dims{64, 64};
  const int order[] = {0, 1};
  const StageGrid g = make_stage_grid(dims, 1, order, 0, 1);
  const QPAxes ax = assign_qp_axes(g, dims, 0);
  EXPECT_EQ(ax.left, 1);
  EXPECT_EQ(ax.top, 0);   // reused back axis
  EXPECT_EQ(ax.back, -1); // and back is dropped for 3-D stencils
}

TEST(Multilevel, QpAxisAssignmentRank1HasNoPlane) {
  const Dims dims{128};
  const int order[] = {0};
  const StageGrid g = make_stage_grid(dims, 1, order, 0, 1);
  const QPAxes ax = assign_qp_axes(g, dims, 0);
  EXPECT_EQ(ax.left, -1);
  EXPECT_EQ(ax.top, -1);
}

}  // namespace
}  // namespace qip
