// Partial-decode tests for container v3: progressive preview must be
// bit-identical to decimating a full decode while reading strictly
// fewer payload bytes, region decode must be bit-identical to cropping
// a full decode, v2 fixtures must keep opening byte-identically, and
// the registry must expose (or refuse) the capabilities per codec.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "compressors/core/driver.hpp"
#include "compressors/hpez.hpp"
#include "compressors/mgard.hpp"
#include "compressors/qoz.hpp"
#include "compressors/registry.hpp"
#include "compressors/sz3.hpp"
#include "data/synthetic.hpp"
#include "simd/dispatch.hpp"
#include "util/field_io.hpp"

namespace qip {
namespace {

// Smooth multi-frequency field over any rank; deterministic.
template <class T>
Field<T> wave_field(const Dims& dims, unsigned seed = 11) {
  Field<T> f(dims);
  const double p = 0.37 * seed;
  std::array<std::size_t, kMaxRank> c{};
  for (c[0] = 0; c[0] < dims.extent(0); ++c[0])
    for (c[1] = 0; c[1] < dims.extent(1); ++c[1])
      for (c[2] = 0; c[2] < dims.extent(2); ++c[2])
        for (c[3] = 0; c[3] < dims.extent(3); ++c[3]) {
          const double r = 0.21 * static_cast<double>(c[0]) +
                           0.13 * static_cast<double>(c[1]) +
                           0.08 * static_cast<double>(c[2]) +
                           0.05 * static_cast<double>(c[3]);
          f.data()[dims.index(c[0], c[1], c[2], c[3])] =
              static_cast<T>(std::sin(r + p) + 0.4 * std::cos(2.7 * r) +
                             0.1 * std::sin(9.1 * r + p));
        }
  return f;
}

Box make_box(const Dims& dims,
             std::initializer_list<std::pair<std::size_t, std::size_t>> ax) {
  Box b = Box::whole(dims);
  int a = 0;
  for (const auto& [lo, hi] : ax) {
    b.lo[a] = lo;
    b.hi[a] = hi;
    ++a;
  }
  return b;
}

template <class T>
Field<T> crop(const Field<T>& f, const Box& box) {
  const Dims& d = f.dims();
  std::size_t e[kMaxRank];
  for (int a = 0; a < kMaxRank; ++a) e[a] = box.hi[a] - box.lo[a];
  Dims rd;
  switch (d.rank()) {
    case 1: rd = Dims{e[0]}; break;
    case 2: rd = Dims{e[0], e[1]}; break;
    case 3: rd = Dims{e[0], e[1], e[2]}; break;
    default: rd = Dims{e[0], e[1], e[2], e[3]}; break;
  }
  Field<T> out(rd);
  std::array<std::size_t, kMaxRank> c{};
  for (c[0] = 0; c[0] < e[0]; ++c[0])
    for (c[1] = 0; c[1] < e[1]; ++c[1])
      for (c[2] = 0; c[2] < e[2]; ++c[2])
        for (c[3] = 0; c[3] < e[3]; ++c[3])
          out.data()[rd.index(c[0], c[1], c[2], c[3])] =
              f.data()[d.index(box.lo[0] + c[0], box.lo[1] + c[1],
                               box.lo[2] + c[2], box.lo[3] + c[3])];
  return out;
}

template <class T>
void expect_identical(const Field<T>& a, const Field<T>& b) {
  ASSERT_EQ(a.dims(), b.dims());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;
}

// ---------------------------------------------------------------------
// Progressive preview: prefix identity + strict byte savings.

TEST(Progressive, QoZPreviewMatchesDecimatedFullDecode) {
  const auto f = wave_field<float>(Dims{64, 64, 64});
  QoZConfig cfg;
  cfg.error_bound = 1e-3;
  const auto arc = qoz_compress(f.data(), f.dims(), cfg);
  const auto full = qoz_decompress<float>(arc);
  for (int level = 1; level <= 4; ++level) {
    PartialDecodeStats st;
    const auto prev = qoz_decompress_preview<float>(arc, level, nullptr, &st);
    expect_identical(prev, decimate_to_level(full.data(), f.dims(), level));
    EXPECT_GT(st.payload_bytes_total, 0u);
    if (level == 1) {
      EXPECT_EQ(st.payload_bytes_read, st.payload_bytes_total);
    } else {
      // The acceptance criterion: a coarse preview must consume strictly
      // fewer compressed payload bytes than a full decode.
      EXPECT_LT(st.payload_bytes_read, st.payload_bytes_total)
          << "level " << level;
    }
  }
}

TEST(Progressive, QoZPreviewDecodesFromTruncatedPrefix) {
  const auto f = wave_field<float>(Dims{64, 64, 64}, 5);
  QoZConfig cfg;
  cfg.error_bound = 1e-3;
  const auto arc = qoz_compress(f.data(), f.dims(), cfg);
  PartialDecodeStats st;
  const auto want = qoz_decompress_preview<float>(arc, 3, nullptr, &st);
  ASSERT_LT(st.payload_bytes_read, st.payload_bytes_total);

  // The payload is the archive's tail and a level-3 preview reads a
  // prefix of it, so everything after those bytes can be cut away.
  const std::size_t cut = st.payload_bytes_total - st.payload_bytes_read;
  const std::vector<std::uint8_t> prefix(arc.begin(),
                                         arc.end() - static_cast<long>(cut));
  const auto got = qoz_decompress_preview<float>(prefix, 3);
  expect_identical(got, want);
  // The bytes for the finer levels are gone: full and fine decodes
  // must fail with a typed error, not garbage.
  EXPECT_THROW((void)qoz_decompress<float>(prefix), DecodeError);
  EXPECT_THROW((void)qoz_decompress_preview<float>(prefix, 1), DecodeError);
}

TEST(Progressive, SZ3InterpolationPreviewMatches) {
  const auto f = wave_field<float>(Dims{48, 48, 48}, 2);
  SZ3Config cfg;
  cfg.error_bound = 1e-4;
  cfg.auto_fallback = false;  // commit to the interpolation path
  cfg.qp = QPConfig::best_fit();
  const auto arc = sz3_compress(f.data(), f.dims(), cfg);
  const auto full = sz3_decompress<float>(arc);
  for (int level = 2; level <= 3; ++level) {
    PartialDecodeStats st;
    const auto prev = sz3_decompress_preview<float>(arc, level, nullptr, &st);
    expect_identical(prev, decimate_to_level(full.data(), f.dims(), level));
    EXPECT_LT(st.payload_bytes_read, st.payload_bytes_total);
  }
}

TEST(Progressive, HPEZPreviewMatchesWithoutTiles) {
  // Without a tile size, HPEZ plans may go block-wise at fine levels;
  // per-level chunks are still committed, so preview works while region
  // decode refuses for lack of a tile directory.
  const auto f = wave_field<float>(Dims{48, 48, 48}, 3);
  HPEZConfig cfg;
  cfg.error_bound = 1e-3;
  const auto arc = hpez_compress(f.data(), f.dims(), cfg);
  const auto full = hpez_decompress<float>(arc);
  PartialDecodeStats st;
  const auto prev = hpez_decompress_preview<float>(arc, 2, nullptr, &st);
  expect_identical(prev, decimate_to_level(full.data(), f.dims(), 2));
  EXPECT_LT(st.payload_bytes_read, st.payload_bytes_total);
  EXPECT_THROW(
      (void)hpez_decompress_region<float>(arc, make_box(f.dims(), {{0, 16}})),
      DecodeError);
}

TEST(Progressive, HPEZRegionDecodeWithTiles) {
  // A requested tile size stands the block tuner down, so the archive
  // commits a tile directory and region decode crops identically to a
  // full decode — the same contract SZ3/QoZ honor.
  const auto f = wave_field<float>(Dims{48, 48, 48}, 3);
  HPEZConfig cfg;
  cfg.error_bound = 1e-3;
  cfg.tile_size = 16;
  const auto arc = hpez_compress(f.data(), f.dims(), cfg);
  const auto full = hpez_decompress<float>(arc);
  const Box box = make_box(f.dims(), {{8, 40}, {0, 16}, {17, 48}});
  PartialDecodeStats st;
  const auto got = hpez_decompress_region<float>(arc, box, nullptr, &st);
  EXPECT_LT(st.payload_bytes_read, st.payload_bytes_total);
  expect_identical(got, crop(full, box));
}

TEST(Progressive, MGARDPreviewBoundedByLevelBudget) {
  const auto f = wave_field<float>(Dims{48, 48, 48}, 4);
  MGARDConfig cfg;
  cfg.error_bound = 1e-3;
  const auto arc = mgard_compress(f.data(), f.dims(), cfg);
  const auto full = mgard_decompress<float>(arc);
  PartialDecodeStats st;
  const auto prev = mgard_decompress_preview<float>(arc, 2, nullptr, &st);
  const auto want = decimate_to_level(full.data(), f.dims(), 2);
  ASSERT_EQ(prev.dims(), want.dims());
  EXPECT_LT(st.payload_bytes_read, st.payload_bytes_total);
  // The preview skips the exact-bound correction pass, so it is held to
  // the hierarchy's per-level budget, not the patched worst case.
  double err = 0;
  for (std::size_t i = 0; i < prev.size(); ++i)
    err = std::max(err, std::abs(static_cast<double>(prev[i]) - want[i]));
  EXPECT_LE(err, 16 * cfg.error_bound);
  EXPECT_THROW((void)mgard_decompress_preview<float>(arc, 99), DecodeError);
}

TEST(Progressive, SZ3LorenzoFallbackRefusesFineAndRegion) {
  // The same field/bound pair the fuzz corpus uses: the sampling
  // selector commits to Lorenzo, which has no level structure.
  const Dims dims{32, 40, 48};
  const Field<float> f = make_field(DatasetId::kMiranda, 0, dims, 7);
  SZ3Config cfg;
  cfg.error_bound = 1e-3;
  SZ3Artifacts art;
  const auto arc = sz3_compress(f.data(), dims, cfg, &art);
  ASSERT_EQ(art.predictor, SZ3Predictor::kLorenzo)
      << "selector no longer picks Lorenzo here; retune the fixture";
  // Level 1 is the full decode and must still work, bit-identically.
  const auto full = sz3_decompress<float>(arc);
  expect_identical(sz3_decompress_preview<float>(arc, 1), full);
  EXPECT_THROW((void)sz3_decompress_preview<float>(arc, 2), DecodeError);
  EXPECT_THROW(
      (void)sz3_decompress_region<float>(arc, make_box(dims, {{0, 16}})),
      DecodeError);
}

// ---------------------------------------------------------------------
// Region decode: crop identity across ranks, dtypes, and QP.

template <class T>
void check_region_identity(const Dims& dims, const Box& box, bool with_qp,
                           unsigned seed) {
  const auto f = wave_field<T>(dims, seed);
  QoZConfig cfg;
  cfg.error_bound = 1e-3;
  cfg.tile_size = 16;
  if (with_qp) cfg.qp = QPConfig::best_fit();
  const auto arc = qoz_compress(f.data(), dims, cfg);
  const auto full = qoz_decompress<T>(arc);
  PartialDecodeStats st;
  const auto reg = qoz_decompress_region<T>(arc, box, nullptr, &st);
  expect_identical(reg, crop(full, box));
  EXPECT_LT(st.payload_bytes_read, st.payload_bytes_total)
      << dims.str() << " qp=" << with_qp;
}

TEST(Progressive, RegionMatchesCropRank2) {
  const Dims dims{96, 96};
  const Box box = make_box(dims, {{10, 49}, {33, 80}});
  check_region_identity<float>(dims, box, false, 21);
  check_region_identity<float>(dims, box, true, 21);
  check_region_identity<double>(dims, box, false, 22);
  check_region_identity<double>(dims, box, true, 22);
}

TEST(Progressive, RegionMatchesCropRank3) {
  const Dims dims{48, 48, 48};
  const Box box = make_box(dims, {{5, 37}, {16, 48}, {0, 23}});
  check_region_identity<float>(dims, box, false, 31);
  check_region_identity<float>(dims, box, true, 31);
  check_region_identity<double>(dims, box, false, 32);
  check_region_identity<double>(dims, box, true, 32);
}

TEST(Progressive, RegionMatchesCropRank4) {
  const Dims dims{32, 32, 16, 16};
  const Box box = make_box(dims, {{3, 29}, {17, 32}, {0, 16}, {4, 12}});
  check_region_identity<float>(dims, box, false, 41);
  check_region_identity<float>(dims, box, true, 41);
  check_region_identity<double>(dims, box, false, 42);
  check_region_identity<double>(dims, box, true, 42);
}

TEST(Progressive, SZ3RegionMatchesCrop) {
  const Dims dims{64, 64, 64};
  const auto f = wave_field<float>(dims, 6);
  SZ3Config cfg;
  cfg.error_bound = 1e-3;
  cfg.auto_fallback = false;
  cfg.tile_size = 16;
  cfg.qp = QPConfig::best_fit();
  const auto arc = sz3_compress(f.data(), dims, cfg);
  const auto full = sz3_decompress<float>(arc);
  const Box box = make_box(dims, {{8, 40}, {20, 52}, {0, 17}});
  PartialDecodeStats st;
  const auto reg = sz3_decompress_region<float>(arc, box, nullptr, &st);
  expect_identical(reg, crop(full, box));
  EXPECT_LT(st.payload_bytes_read, st.payload_bytes_total);
}

TEST(Progressive, RegionValidation) {
  const Dims dims{64, 64};
  const auto f = wave_field<float>(dims, 8);
  QoZConfig tiled;
  tiled.error_bound = 1e-3;
  tiled.tile_size = 16;
  const auto arc = qoz_compress(f.data(), dims, tiled);
  // Degenerate and out-of-range boxes are typed errors.
  EXPECT_THROW(
      (void)qoz_decompress_region<float>(arc, make_box(dims, {{10, 10}})),
      DecodeError);
  EXPECT_THROW(
      (void)qoz_decompress_region<float>(arc, make_box(dims, {{0, 65}})),
      DecodeError);
  // An untiled archive has no tile directory to serve a region from.
  QoZConfig untiled;
  untiled.error_bound = 1e-3;
  const auto arc2 = qoz_compress(f.data(), dims, untiled);
  EXPECT_THROW(
      (void)qoz_decompress_region<float>(arc2, make_box(dims, {{0, 16}})),
      DecodeError);
}

// ---------------------------------------------------------------------
// v2 backward compatibility, pinned by committed fixtures.

std::string fixture(const char* name) {
  return std::string(QIP_TEST_DATA_DIR) + "/" + name;
}

TEST(Progressive, V2FixturesStillOpenByteIdentically) {
  const auto orig = read_qfld<float>(fixture("v2_fixture_orig.qfld"));
  const struct {
    const char* arc;
    const char* recon;
  } cases[] = {
      {"v2_fixture_sz3_qp.qip", "v2_fixture_sz3_qp_recon.qfld"},
      {"v2_fixture_mgard.qip", "v2_fixture_mgard_recon.qfld"},
  };
  for (const auto& c : cases) {
    std::FILE* fp = std::fopen(fixture(c.arc).c_str(), "rb");
    ASSERT_NE(fp, nullptr) << c.arc;
    std::fseek(fp, 0, SEEK_END);
    std::vector<std::uint8_t> arc(static_cast<std::size_t>(std::ftell(fp)));
    std::fseek(fp, 0, SEEK_SET);
    ASSERT_EQ(std::fread(arc.data(), 1, arc.size(), fp), arc.size());
    std::fclose(fp);

    ASSERT_EQ(inspect_container(arc).version, 2) << c.arc;
    const auto& entry = find_compressor_for(arc);
    const auto dec = entry.decompress_f32(arc);
    const auto want = read_qfld<float>(fixture(c.recon));
    expect_identical(dec, want);
    ASSERT_EQ(dec.dims(), orig.dims());

    // v2 archives also serve the preview entry points (level 1 = full
    // decode through the monolithic symbol stage; no byte savings).
    PartialDecodeStats st;
    const auto prev = entry.decompress_preview_f32(arc, 1, &st);
    expect_identical(prev, want);
    EXPECT_EQ(st.payload_bytes_read, st.payload_bytes_total);
  }
}

// ---------------------------------------------------------------------
// SIMD tiers: partial decodes must be tier-invariant.

struct ScalarGuard {
  ScalarGuard() { simd::set_force_scalar_override(1); }
  ~ScalarGuard() { simd::set_force_scalar_override(-1); }
};

struct TierGuard {
  explicit TierGuard(simd::Tier t) {
    simd::set_tier_cap_override(static_cast<int>(t));
  }
  ~TierGuard() { simd::set_tier_cap_override(-1); }
};

TEST(Progressive, PartialDecodesAreSimdTierInvariant) {
  const Dims dims{64, 64, 64};
  const auto f = wave_field<float>(dims, 9);
  QoZConfig cfg;
  cfg.error_bound = 1e-3;
  cfg.tile_size = 16;
  const auto arc = qoz_compress(f.data(), dims, cfg);
  const Box box = make_box(dims, {{8, 40}, {16, 48}, {24, 56}});

  const auto prev_default = qoz_decompress_preview<float>(arc, 2);
  const auto reg_default = qoz_decompress_region<float>(arc, box);
  {
    ScalarGuard g;
    expect_identical(qoz_decompress_preview<float>(arc, 2), prev_default);
    expect_identical(qoz_decompress_region<float>(arc, box), reg_default);
  }
  if (simd::tier_compiled(simd::Tier::kAVX2)) {
    TierGuard g(simd::Tier::kAVX2);
    expect_identical(qoz_decompress_preview<float>(arc, 2), prev_default);
    expect_identical(qoz_decompress_region<float>(arc, box), reg_default);
  }
}

// ---------------------------------------------------------------------
// Registry capability surface.

TEST(Progressive, RegistryExposesCapabilitiesPerCodec) {
  for (const auto& e : compressor_registry()) {
    const bool progressive = e.name == "SZ3" || e.name == "QoZ" ||
                             e.name == "HPEZ" || e.name == "MGARD";
    EXPECT_EQ(e.supports_preview, progressive) << e.name;
    EXPECT_EQ(e.supports_region,
              e.name == "SZ3" || e.name == "QoZ" || e.name == "HPEZ")
        << e.name;
    // Always callable: unsupported codecs install a typed refusal.
    ASSERT_TRUE(e.decompress_preview_f32 != nullptr) << e.name;
    ASSERT_TRUE(e.decompress_region_f64 != nullptr) << e.name;
    ASSERT_TRUE(e.decompress_preview_pool_f32 != nullptr) << e.name;
    ASSERT_TRUE(e.decompress_region_pool_f64 != nullptr) << e.name;
  }
  const auto& zfp = find_compressor("ZFP");
  EXPECT_THROW((void)zfp.decompress_preview_f32({}, 1, nullptr),
               UnknownCodecError);
  const auto& mgard = find_compressor("MGARD");
  EXPECT_THROW((void)mgard.decompress_region_f32({}, Box{}, nullptr),
               UnknownCodecError);
  EXPECT_THROW(
      (void)mgard.decompress_region_pool_f32({}, Box{}, nullptr, nullptr),
      UnknownCodecError);
}

TEST(Progressive, RegistryPreviewMatchesDirectCall) {
  const auto f = wave_field<double>(Dims{48, 48}, 13);
  QoZConfig cfg;
  cfg.error_bound = 1e-3;
  cfg.tile_size = 16;
  const auto arc = qoz_compress(f.data(), f.dims(), cfg);
  const auto& e = find_compressor("QoZ");
  PartialDecodeStats st;
  expect_identical(e.decompress_preview_f64(arc, 2, &st),
                   qoz_decompress_preview<double>(arc, 2));
  const Box box = make_box(f.dims(), {{4, 37}, {16, 48}});
  expect_identical(e.decompress_region_f64(arc, box, nullptr),
                   qoz_decompress_region<double>(arc, box));
}

}  // namespace
}  // namespace qip
