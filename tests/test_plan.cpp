// Unit tests for LevelPlan/InterpPlan serialization and the blockwise
// switches.

#include "compressors/plan.hpp"

#include <gtest/gtest.h>

namespace qip {
namespace {

TEST(Plan, LevelPlanRoundtrip) {
  LevelPlan p;
  p.kind = InterpKind::kLinear;
  p.order = {2, 0, 1, 3};
  p.md = true;
  p.eb_scale = 0.375;
  ByteWriter w;
  p.save(w);
  const auto buf = w.bytes();
  ByteReader r(buf);
  const LevelPlan q = LevelPlan::load(r);
  EXPECT_EQ(q.kind, InterpKind::kLinear);
  EXPECT_EQ(q.order, p.order);
  EXPECT_TRUE(q.md);
  EXPECT_DOUBLE_EQ(q.eb_scale, 0.375);
}

TEST(Plan, UniformBuilder) {
  LevelPlan lp;
  lp.kind = InterpKind::kLinear;
  const InterpPlan p = InterpPlan::uniform(5, lp);
  ASSERT_EQ(p.levels.size(), 5u);
  for (const auto& l : p.levels) EXPECT_EQ(l.kind, InterpKind::kLinear);
  EXPECT_EQ(p.block_size, 0u);
}

TEST(Plan, FullPlanRoundtrip) {
  InterpPlan p;
  p.levels.resize(3);
  p.levels[1].md = true;
  p.levels[2].eb_scale = 0.5;
  p.block_size = 32;
  p.candidates.resize(2);
  p.candidates[1].kind = InterpKind::kLinear;
  p.block_choice = {{0, 1, 1, 0}, {1, 1, 1, 1}, {}};
  p.level_blockwise = {1, 0, 0};
  ByteWriter w;
  p.save(w);
  const auto buf = w.bytes();
  ByteReader r(buf);
  const InterpPlan q = InterpPlan::load(r);
  EXPECT_EQ(q.levels.size(), 3u);
  EXPECT_TRUE(q.levels[1].md);
  EXPECT_DOUBLE_EQ(q.levels[2].eb_scale, 0.5);
  EXPECT_EQ(q.block_size, 32u);
  ASSERT_EQ(q.candidates.size(), 2u);
  EXPECT_EQ(q.candidates[1].kind, InterpKind::kLinear);
  EXPECT_EQ(q.block_choice, p.block_choice);
  EXPECT_EQ(q.level_blockwise, p.level_blockwise);
}

// A hostile config stage can put anything in the serialized plan; the
// axis order is used as a direct index into extent/stride tables, so
// load must reject non-permutations (and unknown kinds) with a typed
// error instead of letting the traversal index out of bounds.
TEST(Plan, HostileLevelPlanRejected) {
  LevelPlan p;
  ByteWriter ok;
  p.save(ok);
  const auto base = ok.bytes();
  const auto expect_reject = [&](std::size_t offset, std::uint8_t value) {
    std::vector<std::uint8_t> buf(base.begin(), base.end());
    buf[offset] = value;
    ByteReader r(buf);
    EXPECT_THROW((void)LevelPlan::load(r), DecodeError);
  };
  expect_reject(0, 2);     // unknown InterpKind
  expect_reject(1, 0xFF);  // axis -1
  expect_reject(2, 4);     // axis >= kMaxRank
  expect_reject(3, 0);     // duplicate axis
}

TEST(Plan, BlockwisePredicate) {
  InterpPlan p;
  p.levels.resize(3);
  EXPECT_FALSE(p.blockwise(1));  // no block size
  p.block_size = 16;
  EXPECT_FALSE(p.blockwise(1));  // no per-level flags
  p.level_blockwise = {1, 0};
  EXPECT_TRUE(p.blockwise(1));
  EXPECT_FALSE(p.blockwise(2));
  EXPECT_FALSE(p.blockwise(3));  // beyond flag vector
}

}  // namespace
}  // namespace qip
