// Unit tests for the linear-scaling quantizer (SZ3 scheme).

#include "quant/quantizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qip {
namespace {

TEST(Quantizer, BasicRoundtripWithinBound) {
  LinearQuantizer<float> q(1e-3);
  float recon;
  const std::uint32_t code = q.quantize(0.5f, 0.2f, &recon);
  EXPECT_NE(code, kUnpredictableCode);
  EXPECT_LE(std::abs(recon - 0.5f), 1e-3f);
  EXPECT_EQ(q.recover(code, 0.2f), recon);
}

TEST(Quantizer, ZeroResidualIsCenterCode) {
  LinearQuantizer<float> q(1e-3);
  float recon;
  const std::uint32_t code = q.quantize(1.0f, 1.0f, &recon);
  EXPECT_EQ(q.signed_index(code), 0);
  EXPECT_EQ(recon, 1.0f);
}

TEST(Quantizer, OutOfRangeBecomesUnpredictable) {
  LinearQuantizer<float> q(1e-6, /*radius=*/128);
  float recon;
  const std::uint32_t code = q.quantize(10.0f, 0.0f, &recon);
  EXPECT_EQ(code, kUnpredictableCode);
  EXPECT_EQ(recon, 10.0f);  // stored exactly
  EXPECT_EQ(q.outlier_count(), 1u);
  EXPECT_EQ(q.recover(code, 0.0f), 10.0f);
}

TEST(Quantizer, SignedIndexMapping) {
  LinearQuantizer<float> q(1e-2, 32768);
  float recon;
  const std::uint32_t cpos = q.quantize(0.10f, 0.0f, &recon);
  const std::uint32_t cneg = q.quantize(-0.10f, 0.0f, &recon);
  EXPECT_GT(q.signed_index(cpos), 0);
  EXPECT_LT(q.signed_index(cneg), 0);
  EXPECT_EQ(q.signed_index(cpos), -q.signed_index(cneg));
}

TEST(Quantizer, SaveLoadPreservesOutliers) {
  LinearQuantizer<double> q(1e-9, 16);
  double recon;
  q.quantize(5.0, 0.0, &recon);
  q.quantize(-3.0, 0.0, &recon);
  ByteWriter w;
  q.save(w);
  const auto buf = w.bytes();
  ByteReader r(buf);
  LinearQuantizer<double> q2(0.0);
  q2.load(r);
  EXPECT_EQ(q2.radius(), 16);
  EXPECT_DOUBLE_EQ(q2.error_bound(), 1e-9);
  EXPECT_EQ(q2.recover(kUnpredictableCode, 0.0), 5.0);
  EXPECT_EQ(q2.recover(kUnpredictableCode, 0.0), -3.0);
}

TEST(Quantizer, ExhaustedOutlierStreamThrows) {
  // A corrupted symbol stream can request more unpredictable values than
  // the archive stored; the cursor must stop at the table edge.
  LinearQuantizer<float> q(1e-9, 16);
  float recon;
  q.quantize(7.0f, 0.0f, &recon);
  EXPECT_EQ(q.recover(kUnpredictableCode, 0.0f), 7.0f);
  EXPECT_THROW((void)q.recover(kUnpredictableCode, 0.0f), DecodeError);
  LinearQuantizer<float> empty(1e-3);
  EXPECT_THROW((void)empty.recover(kUnpredictableCode, 0.0f), DecodeError);
}

TEST(Quantizer, ResetCursorReplaysOutliers) {
  LinearQuantizer<float> q(1e-9, 16);
  float recon;
  q.quantize(7.0f, 0.0f, &recon);
  EXPECT_EQ(q.recover(kUnpredictableCode, 0.0f), 7.0f);
  q.reset_cursor();
  EXPECT_EQ(q.recover(kUnpredictableCode, 0.0f), 7.0f);
}

TEST(Quantizer, ErrorBoundScalingMidstream) {
  LinearQuantizer<float> q(1e-2);
  float recon;
  q.set_error_bound(1e-4);
  q.quantize(0.123456f, 0.0f, &recon);
  EXPECT_LE(std::abs(recon - 0.123456f), 1e-4f);
}

class QuantizerPropertySweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(QuantizerPropertySweep, AlwaysWithinBoundAndDecoderConsistent) {
  const auto [eb, radius] = GetParam();
  LinearQuantizer<double> enc(eb, radius);
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> u(-10.0, 10.0);
  std::vector<std::uint32_t> codes;
  std::vector<double> preds, recons;
  for (int i = 0; i < 5000; ++i) {
    const double d = u(rng), p = u(rng) * 0.1;
    double recon;
    codes.push_back(enc.quantize(d, p, &recon));
    preds.push_back(p);
    recons.push_back(recon);
    ASSERT_LE(std::abs(recon - d), eb * (1 + 1e-12));
  }
  // Decoder: same codes + predictions must reproduce identical values.
  ByteWriter w;
  enc.save(w);
  const auto buf = w.bytes();
  ByteReader r(buf);
  LinearQuantizer<double> dec(0.0);
  dec.load(r);
  for (std::size_t i = 0; i < codes.size(); ++i)
    ASSERT_EQ(dec.recover(codes[i], preds[i]), recons[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantizerPropertySweep,
    ::testing::Combine(::testing::Values(1e-1, 1e-3, 1e-6),
                       ::testing::Values(64, 1024, 32768)));

}  // namespace
}  // namespace qip
