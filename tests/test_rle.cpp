// Unit tests for the zero-run/value split coder used by the
// transform-based baselines.

#include "encode/rle.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qip {
namespace {

std::vector<std::uint32_t> roundtrip(const std::vector<std::uint32_t>& in) {
  return rle_decode_symbols(rle_encode_symbols(in), in.size());
}

TEST(Rle, Empty) { EXPECT_TRUE(roundtrip({}).empty()); }

TEST(Rle, AllZeros) {
  std::vector<std::uint32_t> in(100000, 0);
  const auto enc = rle_encode_symbols(in);
  EXPECT_EQ(rle_decode_symbols(enc, in.size()), in);
  EXPECT_LT(enc.size(), 64u);  // one trailing-run varint + empty tables
}

TEST(Rle, NoZerosAtAll) {
  std::vector<std::uint32_t> in;
  for (std::uint32_t i = 1; i <= 1000; ++i) in.push_back(i % 7 + 1);
  EXPECT_EQ(roundtrip(in), in);
}

TEST(Rle, LeadingAndTrailingRuns) {
  std::vector<std::uint32_t> in{0, 0, 0, 5, 0, 7, 7, 0, 0};
  EXPECT_EQ(roundtrip(in), in);
}

TEST(Rle, SingleElementEachKind) {
  EXPECT_EQ(roundtrip({0}), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(roundtrip({9}), (std::vector<std::uint32_t>{9}));
}

TEST(Rle, BeatsPlainHuffmanOnSparseStreams) {
  // 99% zeros: plain Huffman floors at ~1 bit/symbol; the split coder
  // must land far below.
  std::mt19937 rng(5);
  std::vector<std::uint32_t> in(200000, 0);
  for (auto& v : in)
    if (rng() % 100 == 0) v = 1 + rng() % 8;
  const auto rle = rle_encode_symbols(in);
  const auto plain = huffman_encode(in);
  EXPECT_EQ(rle_decode_symbols(rle, in.size()), in);
  EXPECT_LT(rle.size() * 3, plain.size());
}

TEST(Rle, RandomizedDenseAndSparseMix) {
  std::mt19937 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng() % 5000;
    const int sparsity = 1 + static_cast<int>(rng() % 20);
    std::vector<std::uint32_t> in(n, 0);
    for (auto& v : in)
      if (static_cast<int>(rng() % 20) < sparsity) v = rng() % 1000;
    ASSERT_EQ(roundtrip(in), in) << "trial " << trial;
  }
}

TEST(Rle, TruncatedInputThrows) {
  std::vector<std::uint32_t> in(1000, 3);
  auto enc = rle_encode_symbols(in);
  enc.resize(enc.size() / 2);
  EXPECT_THROW(rle_decode_symbols(enc, in.size()), std::runtime_error);
}

TEST(Rle, DeclaredTotalAboveCapThrows) {
  // A stream declaring more symbols than the caller is prepared to hold
  // must be rejected before any allocation happens.
  std::vector<std::uint32_t> in(1000, 3);
  const auto enc = rle_encode_symbols(in);
  EXPECT_THROW(rle_decode_symbols(enc, in.size() - 1), DecodeError);
}

TEST(Rle, RunsBeyondDeclaredTotalThrow) {
  // Hand-build a stream whose run table expands past the declared total:
  // total=4 but one run of 100 zeros plus a value.
  ByteWriter w;
  w.put_varint(4);  // declared total
  w.put_varint(0);  // trailing zero run
  w.put_block(huffman_encode(std::vector<std::uint32_t>{100}));
  w.put_block(huffman_encode(std::vector<std::uint32_t>{7}));
  const auto enc = w.take();
  EXPECT_THROW(rle_decode_symbols(enc, 1000), DecodeError);
}

}  // namespace
}  // namespace qip
