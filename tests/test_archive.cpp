// Unit tests for the common archive framing.

#include "compressors/archive.hpp"

#include <gtest/gtest.h>

namespace qip {
namespace {

TEST(Archive, SealOpenRoundtrip) {
  std::vector<std::uint8_t> inner{1, 2, 3, 4, 5, 6, 7};
  const auto arc = seal_archive(CompressorId::kQoZ, dtype_tag<float>(), inner);
  const auto back = open_archive(arc, CompressorId::kQoZ, dtype_tag<float>());
  EXPECT_EQ(back, inner);
}

TEST(Archive, CompressorPeek) {
  const auto arc = seal_archive(CompressorId::kSPERR, dtype_tag<double>(), {});
  EXPECT_EQ(archive_compressor(arc), CompressorId::kSPERR);
}

TEST(Archive, WrongIdRejected) {
  const auto arc = seal_archive(CompressorId::kSZ3, dtype_tag<float>(), {});
  EXPECT_THROW((void)open_archive(arc, CompressorId::kHPEZ, dtype_tag<float>()),
               std::runtime_error);
}

TEST(Archive, WrongDtypeRejected) {
  const auto arc = seal_archive(CompressorId::kSZ3, dtype_tag<float>(), {});
  EXPECT_THROW((void)open_archive(arc, CompressorId::kSZ3, dtype_tag<double>()),
               std::runtime_error);
}

TEST(Archive, BadMagicRejected) {
  std::vector<std::uint8_t> junk{9, 9, 9, 9, 9, 9, 9, 9};
  EXPECT_THROW((void)open_archive(junk, CompressorId::kSZ3, dtype_tag<float>()),
               std::runtime_error);
  EXPECT_THROW((void)archive_compressor(junk), std::runtime_error);
}

TEST(Archive, DimsRoundtripAllRanks) {
  for (Dims d : {Dims{7}, Dims{3, 4}, Dims{100, 500, 500},
                 Dims{3600, 449, 449, 235}}) {
    ByteWriter w;
    write_dims(w, d);
    const auto buf = w.bytes();
    ByteReader r(buf);
    EXPECT_EQ(read_dims(r), d);
  }
}

TEST(Archive, BadRankRejected) {
  ByteWriter w;
  w.put_varint(9);  // rank 9
  const auto buf = w.bytes();
  ByteReader r(buf);
  EXPECT_THROW(read_dims(r), std::runtime_error);
}

// Regression tests distilled from the fuzz corpus (tests/fuzz/corpus/
// fuzz_archive): hostile framing must raise DecodeError, never UB.

TEST(Archive, TruncatedHeaderRejected) {
  const auto arc = seal_archive(CompressorId::kSZ3, dtype_tag<float>(),
                                std::vector<std::uint8_t>{1, 2, 3});
  for (std::size_t cut = 0; cut < kArchiveHeaderBytes; ++cut) {
    std::span<const std::uint8_t> prefix(arc.data(), cut);
    EXPECT_THROW((void)open_archive(prefix, CompressorId::kSZ3,
                                    dtype_tag<float>()),
                 DecodeError)
        << "cut=" << cut;
    EXPECT_THROW((void)archive_compressor(prefix), DecodeError);
  }
}

TEST(Archive, TruncatedPayloadRejected) {
  std::vector<std::uint8_t> inner(300);
  for (std::size_t i = 0; i < inner.size(); ++i)
    inner[i] = static_cast<std::uint8_t>(i);
  const auto arc = seal_archive(CompressorId::kSZ3, dtype_tag<float>(), inner);
  for (std::size_t cut = kArchiveHeaderBytes; cut + 1 < arc.size(); cut += 7) {
    std::span<const std::uint8_t> prefix(arc.data(), cut);
    EXPECT_THROW((void)open_archive(prefix, CompressorId::kSZ3,
                                    dtype_tag<float>()),
                 DecodeError)
        << "cut=" << cut;
  }
}

TEST(Archive, InnerBombCappedByMaxInner) {
  // Right magic/id/dtype, then an LZB header declaring a 1 PiB payload.
  ByteWriter w;
  w.put(kArchiveMagic);
  w.put(static_cast<std::uint8_t>(CompressorId::kSZ3));
  w.put(dtype_tag<float>());
  w.put_varint(std::uint64_t{1} << 50);
  w.put_varint(0);
  const auto arc = w.take();
  EXPECT_THROW((void)open_archive(arc, CompressorId::kSZ3, dtype_tag<float>(),
                                  /*max_inner=*/1 << 20),
               DecodeError);
}

TEST(Archive, ZeroExtentRejected) {
  ByteWriter w;
  w.put_varint(3);
  w.put_varint(16);
  w.put_varint(0);
  w.put_varint(16);
  const auto buf = w.bytes();
  ByteReader r(buf);
  EXPECT_THROW((void)read_dims(r), DecodeError);
}

TEST(Archive, ExtentProductOverflowRejected) {
  ByteWriter w;
  w.put_varint(4);
  for (int a = 0; a < 4; ++a) w.put_varint(std::uint64_t{1} << 48);
  const auto buf = w.bytes();
  ByteReader r(buf);
  EXPECT_THROW((void)read_dims(r), DecodeError);
}

TEST(Archive, BitFlippedArchiveNeverCrashes) {
  std::vector<std::uint8_t> inner(200, 0x5A);
  const auto arc = seal_archive(CompressorId::kQoZ, dtype_tag<double>(), inner);
  for (std::size_t bit = 0; bit < arc.size() * 8; bit += 5) {
    auto mutated = arc;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      const auto back = open_archive(mutated, CompressorId::kQoZ,
                                     dtype_tag<double>(), 1 << 20);
      // Flips in the compressed body may still decode; that is fine as
      // long as no error other than DecodeError can surface.
      (void)back;
    } catch (const DecodeError&) {
    }
  }
}

TEST(Archive, InnerPayloadIsLosslesslyFramed) {
  // 1 MiB of structured data must come back exactly through the LZB
  // wrapping.
  std::vector<std::uint8_t> inner(1 << 20);
  for (std::size_t i = 0; i < inner.size(); ++i)
    inner[i] = static_cast<std::uint8_t>((i * i) >> 3);
  const auto arc = seal_archive(CompressorId::kMGARD, dtype_tag<float>(), inner);
  EXPECT_EQ(open_archive(arc, CompressorId::kMGARD, dtype_tag<float>()), inner);
  EXPECT_LT(arc.size(), inner.size());  // structured payload compresses
}

}  // namespace
}  // namespace qip
