// Unit tests for the common archive framing.

#include "compressors/archive.hpp"

#include <gtest/gtest.h>

namespace qip {
namespace {

TEST(Archive, SealOpenRoundtrip) {
  std::vector<std::uint8_t> inner{1, 2, 3, 4, 5, 6, 7};
  const auto arc = seal_archive(CompressorId::kQoZ, dtype_tag<float>(), inner);
  const auto back = open_archive(arc, CompressorId::kQoZ, dtype_tag<float>());
  EXPECT_EQ(back, inner);
}

TEST(Archive, CompressorPeek) {
  const auto arc = seal_archive(CompressorId::kSPERR, dtype_tag<double>(), {});
  EXPECT_EQ(archive_compressor(arc), CompressorId::kSPERR);
}

TEST(Archive, WrongIdRejected) {
  const auto arc = seal_archive(CompressorId::kSZ3, dtype_tag<float>(), {});
  EXPECT_THROW(open_archive(arc, CompressorId::kHPEZ, dtype_tag<float>()),
               std::runtime_error);
}

TEST(Archive, WrongDtypeRejected) {
  const auto arc = seal_archive(CompressorId::kSZ3, dtype_tag<float>(), {});
  EXPECT_THROW(open_archive(arc, CompressorId::kSZ3, dtype_tag<double>()),
               std::runtime_error);
}

TEST(Archive, BadMagicRejected) {
  std::vector<std::uint8_t> junk{9, 9, 9, 9, 9, 9, 9, 9};
  EXPECT_THROW(open_archive(junk, CompressorId::kSZ3, dtype_tag<float>()),
               std::runtime_error);
  EXPECT_THROW(archive_compressor(junk), std::runtime_error);
}

TEST(Archive, DimsRoundtripAllRanks) {
  for (Dims d : {Dims{7}, Dims{3, 4}, Dims{100, 500, 500},
                 Dims{3600, 449, 449, 235}}) {
    ByteWriter w;
    write_dims(w, d);
    const auto buf = w.bytes();
    ByteReader r(buf);
    EXPECT_EQ(read_dims(r), d);
  }
}

TEST(Archive, BadRankRejected) {
  ByteWriter w;
  w.put_varint(9);  // rank 9
  const auto buf = w.bytes();
  ByteReader r(buf);
  EXPECT_THROW(read_dims(r), std::runtime_error);
}

TEST(Archive, InnerPayloadIsLosslesslyFramed) {
  // 1 MiB of structured data must come back exactly through the LZB
  // wrapping.
  std::vector<std::uint8_t> inner(1 << 20);
  for (std::size_t i = 0; i < inner.size(); ++i)
    inner[i] = static_cast<std::uint8_t>((i * i) >> 3);
  const auto arc = seal_archive(CompressorId::kMGARD, dtype_tag<float>(), inner);
  EXPECT_EQ(open_archive(arc, CompressorId::kMGARD, dtype_tag<float>()), inner);
  EXPECT_LT(arc.size(), inner.size());  // structured payload compresses
}

}  // namespace
}  // namespace qip
