// Unit tests for the thread pool used by the transfer pipeline.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace qip {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&] { ++count; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(500, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), hw);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, OversubscriptionCappedToHardwareByDefault) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  {
    ThreadPool pool(hw + 13);
    EXPECT_EQ(pool.size(), hw);
  }
  {
    // Within the hardware budget the request is honored exactly.
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
  }
  {
    // The opt-out spawns exactly what was asked for.
    ThreadPool pool(hw + 3, /*cap_to_hardware=*/false);
    EXPECT_EQ(pool.size(), hw + 3);
  }
}

TEST(ThreadPool, ManyWaitingTasksDrainOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 64; ++i)
      futs.push_back(pool.submit([&] { ++count; }));
    for (auto& f : futs) f.get();
  }  // destructor joins
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NestedSubmissionFromWorker) {
  // The outer task parks in inner.get(), so a second live worker must
  // exist: opt out of the hardware cap (single-core CI would otherwise
  // shrink the pool to one worker and deadlock this pattern).
  ThreadPool pool(3, /*cap_to_hardware=*/false);
  auto outer = pool.submit([&] {
    auto inner = pool.submit([] { return 5; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 6);
}

TEST(ThreadPool, ParallelForBatchesIndicesIntoBlocks) {
  // With block-ranged dispatch the pool must still cover every index
  // exactly once when n is much larger than the worker count, not a
  // multiple of it, or smaller than it.
  for (std::size_t n : {1u, 3u, 7u, 64u, 1000u, 10001u}) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ParallelForZeroIterationsIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  // Uncapped: the abandoned-block bound below assumes 4 blocks of 250,
  // which needs the pool to really have 4 workers.
  ThreadPool pool(4, /*cap_to_hardware=*/false);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(1000, [&](std::size_t i) {
      if (i == 137) throw std::runtime_error("boom at 137");
      ++completed;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 137");
  }
  // The throwing block abandons its remaining indices, but every other
  // block runs to completion before parallel_for rethrows — no task may
  // outlive the call (the callable is a reference to a dead frame then).
  EXPECT_GE(completed.load(), 750);
  EXPECT_LT(completed.load(), 1000);
}

TEST(ThreadPool, ExceptionsFromManyConcurrentSubmitsAllPropagate) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.submit([i]() -> int {
      if (i % 3 == 0) throw std::invalid_argument("bad " + std::to_string(i));
      return i;
    }));
  }
  for (int i = 0; i < 64; ++i) {
    if (i % 3 == 0) {
      EXPECT_THROW((void)futs[static_cast<std::size_t>(i)].get(),
                   std::invalid_argument);
    } else {
      EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i);
    }
  }
}

TEST(ThreadPool, ShutdownDrainsQueueWithoutGettingFutures) {
  // Futures are deliberately not waited on before the destructor runs:
  // shutdown must still execute every queued task (never drop work), and
  // the futures must all be ready afterwards.
  std::vector<std::future<void>> futs;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      futs.push_back(pool.submit([&ran] { ++ran; }));
  }
  EXPECT_EQ(ran.load(), 100);
  for (auto& f : futs)
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
}

TEST(ThreadPool, ConcurrentShutdownWithExternalSubmitters) {
  // Threads race task submission against pool destruction. Submissions
  // stop before the destructor starts (submitting to a destructed pool is
  // out of contract), but the teardown overlaps with workers still
  // executing: TSan verifies the stop-flag/condvar handshake.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futs(64);
    {
      // Uncapped: the teardown handshake needs several real workers to
      // overlap with the destructor even on single-core CI.
      ThreadPool pool(3, /*cap_to_hardware=*/false);
      std::vector<std::thread> submitters;
      for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&pool, &futs, &ran, t] {
          for (int i = 0; i < 16; ++i)
            futs[static_cast<std::size_t>(t * 16 + i)] =
                pool.submit([&ran] { ++ran; });
        });
      }
      for (auto& s : submitters) s.join();
    }  // destructor drains while workers are mid-task
    for (auto& f : futs) f.get();
    EXPECT_EQ(ran.load(), 64);
  }
}

TEST(ThreadPool, ScopedWidthCapsParallelForConcurrency) {
  ThreadPool pool(4, /*cap_to_hardware=*/false);
  std::atomic<int> active{0};
  std::atomic<int> high_water{0};
  {
    ThreadPool::ScopedWidth cap(2);
    EXPECT_EQ(ThreadPool::width_cap(), 2u);
    pool.parallel_for(64, [&](std::size_t) {
      const int now = active.fetch_add(1) + 1;
      int hw = high_water.load();
      while (now > hw && !high_water.compare_exchange_weak(hw, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      active.fetch_sub(1);
    });
  }
  EXPECT_EQ(ThreadPool::width_cap(), 0u);  // restored on scope exit
  // At most `width` strands (caller + 1 helper) may run the body at once,
  // even though the pool has 4 workers.
  EXPECT_LE(high_water.load(), 2);
  EXPECT_GE(high_water.load(), 1);
}

TEST(ThreadPool, ScopedWidthOneRunsEntirelyInline) {
  ThreadPool pool(4, /*cap_to_hardware=*/false);
  ThreadPool::ScopedWidth cap(1);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> off_caller{0};
  pool.parallel_for(100, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) off_caller.fetch_add(1);
  });
  EXPECT_EQ(off_caller.load(), 0);
}

TEST(ThreadPool, ScopedWidthNestsAndRestores) {
  ThreadPool::ScopedWidth outer(3);
  EXPECT_EQ(ThreadPool::width_cap(), 3u);
  {
    ThreadPool::ScopedWidth inner(1);
    EXPECT_EQ(ThreadPool::width_cap(), 1u);
  }
  EXPECT_EQ(ThreadPool::width_cap(), 3u);
}

TEST(ThreadPool, PlainSubmitsRunInFifoOrder) {
  // One worker, parked on a promise while the batch is enqueued: plain
  // jobs must then start in exactly the order they were submitted.
  ThreadPool pool(1, /*cap_to_hardware=*/false);
  std::promise<void> release;
  auto blocker = pool.submit([&] { release.get_future().wait(); });

  std::vector<int> order;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 16; ++i)
    futs.push_back(pool.submit([&order, i] { order.push_back(i); }));

  release.set_value();
  blocker.get();
  for (auto& f : futs) f.get();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ContinuationPriorityLetsHelpersJumpABacklog) {
  // The multi-core serving defect this repo fixed: parallel_for helper
  // tasks used to be enqueued FIFO-back, behind every queued job, so
  // under a backlog the caller drained all blocks alone. With the
  // continuation-priority default the idle-soon worker picks the helper
  // up next and shares the blocks.
  //
  // Layout: 2 workers. Worker A is parked; worker B chews through a
  // backlog of slow jobs whose total run time far exceeds the caller's
  // own parallel_for drain. Legacy FIFO: the helper sits behind the
  // backlog forever -> caller executes 100% of blocks. Jump-queue: B
  // reaches the helper after at most one job -> caller share < 100%.
  for (const bool jump : {false, true}) {
    ThreadPool pool(2, /*cap_to_hardware=*/false,
                    /*continuations_jump_queue=*/jump);
    std::promise<void> park;
    auto parked = pool.submit([&] { park.get_future().wait(); });
    std::vector<std::future<void>> backlog;
    for (int i = 0; i < 20; ++i)
      backlog.push_back(pool.submit(
          [] { std::this_thread::sleep_for(std::chrono::milliseconds(10)); }));

    pool.reset_scheduler_stats();
    pool.parallel_for(8, [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    });
    const ThreadPool::SchedulerStats st = pool.scheduler_stats();

    park.set_value();
    parked.get();
    for (auto& f : backlog) f.get();

    ASSERT_GT(st.pf_blocks, 0u);
    if (jump) {
      // The helper must have claimed at least one block.
      EXPECT_LT(st.pf_blocks_caller, st.pf_blocks) << "jump=" << jump;
    } else {
      // Legacy FIFO: caller drained everything alone.
      EXPECT_EQ(st.pf_blocks_caller, st.pf_blocks) << "jump=" << jump;
    }
  }
}

TEST(ThreadPool, NestedParallelForUnderSaturatedAdmissionWindow) {
  // Serving-shaped stress (run under tsan): a bounded admission window
  // is kept saturated by outside submitters while every job itself nests
  // pool work (submit-from-worker + parallel_for under a width cap).
  // Must terminate with every job run exactly once and no deadlock.
  ThreadPool pool(3, /*cap_to_hardware=*/false);
  constexpr int kJobs = 48;
  constexpr int kWindow = 4;

  std::mutex mu;
  std::condition_variable cv;
  int in_flight = 0;

  std::atomic<int> done{0};
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  futs.reserve(kJobs);

  for (int j = 0; j < kJobs; ++j) {
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return in_flight < kWindow; });
      ++in_flight;
    }
    futs.push_back(pool.submit([&, j] {
      ThreadPool::ScopedWidth cap(j % 2 ? 1u : 2u);
      pool.parallel_for(32, [&](std::size_t i) {
        sum.fetch_add(static_cast<long>(i) + 1, std::memory_order_relaxed);
      });
      if (j % 3 == 0) {
        // Nested plain submission from inside a worker, waited on.
        auto inner = pool.submit([] { return 7; });
        sum.fetch_add(inner.get(), std::memory_order_relaxed);
      }
      done.fetch_add(1);
      {
        std::lock_guard<std::mutex> lk(mu);
        --in_flight;
      }
      cv.notify_one();
    }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(done.load(), kJobs);
  const long per_job = 32L * 33L / 2L;
  const long nested = 7L * ((kJobs + 2) / 3);
  EXPECT_EQ(sum.load(), per_job * kJobs + nested);
}

}  // namespace
}  // namespace qip
