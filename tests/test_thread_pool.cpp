// Unit tests for the thread pool used by the transfer pipeline.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>

namespace qip {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&] { ++count; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(500, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), hw);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, OversubscriptionCappedToHardwareByDefault) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  {
    ThreadPool pool(hw + 13);
    EXPECT_EQ(pool.size(), hw);
  }
  {
    // Within the hardware budget the request is honored exactly.
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
  }
  {
    // The opt-out spawns exactly what was asked for.
    ThreadPool pool(hw + 3, /*cap_to_hardware=*/false);
    EXPECT_EQ(pool.size(), hw + 3);
  }
}

TEST(ThreadPool, ManyWaitingTasksDrainOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 64; ++i)
      futs.push_back(pool.submit([&] { ++count; }));
    for (auto& f : futs) f.get();
  }  // destructor joins
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NestedSubmissionFromWorker) {
  // The outer task parks in inner.get(), so a second live worker must
  // exist: opt out of the hardware cap (single-core CI would otherwise
  // shrink the pool to one worker and deadlock this pattern).
  ThreadPool pool(3, /*cap_to_hardware=*/false);
  auto outer = pool.submit([&] {
    auto inner = pool.submit([] { return 5; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 6);
}

TEST(ThreadPool, ParallelForBatchesIndicesIntoBlocks) {
  // With block-ranged dispatch the pool must still cover every index
  // exactly once when n is much larger than the worker count, not a
  // multiple of it, or smaller than it.
  for (std::size_t n : {1u, 3u, 7u, 64u, 1000u, 10001u}) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ParallelForZeroIterationsIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  // Uncapped: the abandoned-block bound below assumes 4 blocks of 250,
  // which needs the pool to really have 4 workers.
  ThreadPool pool(4, /*cap_to_hardware=*/false);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(1000, [&](std::size_t i) {
      if (i == 137) throw std::runtime_error("boom at 137");
      ++completed;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 137");
  }
  // The throwing block abandons its remaining indices, but every other
  // block runs to completion before parallel_for rethrows — no task may
  // outlive the call (the callable is a reference to a dead frame then).
  EXPECT_GE(completed.load(), 750);
  EXPECT_LT(completed.load(), 1000);
}

TEST(ThreadPool, ExceptionsFromManyConcurrentSubmitsAllPropagate) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.submit([i]() -> int {
      if (i % 3 == 0) throw std::invalid_argument("bad " + std::to_string(i));
      return i;
    }));
  }
  for (int i = 0; i < 64; ++i) {
    if (i % 3 == 0) {
      EXPECT_THROW((void)futs[static_cast<std::size_t>(i)].get(),
                   std::invalid_argument);
    } else {
      EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i);
    }
  }
}

TEST(ThreadPool, ShutdownDrainsQueueWithoutGettingFutures) {
  // Futures are deliberately not waited on before the destructor runs:
  // shutdown must still execute every queued task (never drop work), and
  // the futures must all be ready afterwards.
  std::vector<std::future<void>> futs;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      futs.push_back(pool.submit([&ran] { ++ran; }));
  }
  EXPECT_EQ(ran.load(), 100);
  for (auto& f : futs)
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
}

TEST(ThreadPool, ConcurrentShutdownWithExternalSubmitters) {
  // Threads race task submission against pool destruction. Submissions
  // stop before the destructor starts (submitting to a destructed pool is
  // out of contract), but the teardown overlaps with workers still
  // executing: TSan verifies the stop-flag/condvar handshake.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futs(64);
    {
      // Uncapped: the teardown handshake needs several real workers to
      // overlap with the destructor even on single-core CI.
      ThreadPool pool(3, /*cap_to_hardware=*/false);
      std::vector<std::thread> submitters;
      for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&pool, &futs, &ran, t] {
          for (int i = 0; i < 16; ++i)
            futs[static_cast<std::size_t>(t * 16 + i)] =
                pool.submit([&ran] { ++ran; });
        });
      }
      for (auto& s : submitters) s.join();
    }  // destructor drains while workers are mid-task
    for (auto& f : futs) f.get();
    EXPECT_EQ(ran.load(), 64);
  }
}

}  // namespace
}  // namespace qip
