// Unit tests for the thread pool used by the transfer pipeline.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace qip {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&] { ++count; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(500, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ManyWaitingTasksDrainOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 64; ++i)
      futs.push_back(pool.submit([&] { ++count; }));
    for (auto& f : futs) f.get();
  }  // destructor joins
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NestedSubmissionFromWorker) {
  ThreadPool pool(3);
  auto outer = pool.submit([&] {
    auto inner = pool.submit([] { return 5; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 6);
}

}  // namespace
}  // namespace qip
