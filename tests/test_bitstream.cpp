// Unit tests for the MSB-first bit stream.

#include "encode/bitstream.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qip {
namespace {

TEST(Bitstream, SingleBits) {
  BitWriter w;
  const int pattern[] = {1, 0, 1, 1, 0, 0, 1, 0, 1};
  for (int b : pattern) w.write_bit(b);
  const auto bytes = w.finish();
  ASSERT_EQ(bytes.size(), 2u);  // 9 bits -> 2 bytes
  EXPECT_EQ(bytes[0], 0b10110010);
  EXPECT_EQ(bytes[1], 0b10000000);
  BitReader r(bytes);
  for (int b : pattern) EXPECT_EQ(r.read_bit(), b);
}

TEST(Bitstream, MultiBitValuesMsbFirst) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0xFF, 8);
  w.write(0, 5);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.read(3), 0b101u);
  EXPECT_EQ(r.read(8), 0xFFu);
  EXPECT_EQ(r.read(5), 0u);
}

TEST(Bitstream, SixtyFourBitValues) {
  BitWriter w;
  const std::uint64_t v1 = 0xDEADBEEFCAFEBABEull;
  const std::uint64_t v2 = 1;
  w.write(v1, 64);
  w.write(v2, 64);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.read(64), v1);
  EXPECT_EQ(r.read(64), v2);
}

TEST(Bitstream, UnalignedBoundarySpans) {
  // Values straddling the 64-bit accumulator boundary.
  BitWriter w;
  w.write(0x3, 2);
  w.write(0x1FFFFFFFFFFFFFFFull, 61);  // fills to bit 63
  w.write(0x5A5A, 16);                 // straddles words
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.read(2), 0x3u);
  EXPECT_EQ(r.read(61), 0x1FFFFFFFFFFFFFFFull);
  EXPECT_EQ(r.read(16), 0x5A5Au);
}

TEST(Bitstream, ReadPastEndYieldsZeros) {
  BitWriter w;
  w.write_bit(1);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.read_bit(), 1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(r.read_bit(), 0);
}

TEST(Bitstream, BitCountTracksWrites) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  w.write(0, 5);
  EXPECT_EQ(w.bit_count(), 5u);
  w.write(0, 64);
  EXPECT_EQ(w.bit_count(), 69u);
}

TEST(Bitstream, RandomizedRoundtrip) {
  std::mt19937_64 rng(23);
  std::vector<std::pair<std::uint64_t, int>> entries;
  BitWriter w;
  for (int i = 0; i < 5000; ++i) {
    const int n = 1 + static_cast<int>(rng() % 64);
    const std::uint64_t v = rng() & (n == 64 ? ~0ull : ((1ull << n) - 1));
    entries.emplace_back(v, n);
    w.write(v, n);
  }
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (const auto& [v, n] : entries) EXPECT_EQ(r.read(n), v);
}

}  // namespace
}  // namespace qip
