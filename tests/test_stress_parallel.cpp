// Concurrency stress tests aimed at the ThreadPool and the chunked
// compression pipeline. These are the TSan workhorses: run them under the
// `tsan` preset (see docs/DEVELOPING.md) to shake out data races in the
// queue handoff, shutdown path, and the parallel slab (de)compressor.
// Sizes are kept small so the suite stays fast in uninstrumented runs.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "parallel/chunked.hpp"
#include "util/thread_pool.hpp"

namespace qip {
namespace {

// Several external threads hammering submit() on one shared pool while its
// own workers are also dequeuing: exercises the mutex/condvar handoff from
// both sides at once.
TEST(StressParallel, ManyThreadsSubmitToOnePool) {
  // cap_to_hardware = false throughout this file: these tests exist to
  // exercise real worker concurrency (TSan workhorses), so the pool must
  // not silently shrink to one worker on single-core CI machines.
  ThreadPool pool(4, /*cap_to_hardware=*/false);
  std::atomic<std::uint64_t> sum{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 200;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&pool, &sum, t] {
      std::vector<std::future<void>> futs;
      futs.reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futs.push_back(pool.submit(
            [&sum, t, i] { sum.fetch_add(static_cast<std::uint64_t>(t) + 1 +
                                         static_cast<std::uint64_t>(i) * 0); }));
      }
      for (auto& f : futs) f.get();
    });
  }
  for (auto& s : submitters) s.join();
  std::uint64_t expect = 0;
  for (int t = 0; t < kSubmitters; ++t)
    expect += static_cast<std::uint64_t>(t + 1) * kTasksEach;
  EXPECT_EQ(sum.load(), expect);
}

// Concurrent parallel_for calls on the same pool, each writing disjoint
// slices of its own buffer: races would show as torn counts or TSan
// reports on the block dispatch.
TEST(StressParallel, ConcurrentParallelFor) {
  ThreadPool pool(4, /*cap_to_hardware=*/false);
  constexpr int kCallers = 6;
  constexpr std::size_t kN = 10000;
  std::vector<std::thread> callers;
  std::vector<std::vector<std::uint8_t>> hits(kCallers,
                                              std::vector<std::uint8_t>(kN, 0));
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      pool.parallel_for(kN, [&hits, c](std::size_t i) { ++hits[c][i]; });
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c)
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[c][i], 1) << "caller " << c << " index " << i;
}

// Pools created and torn down in a tight loop while tasks are still
// queued: the shutdown path (stop flag, drain, join) runs every iteration.
TEST(StressParallel, RapidPoolChurnWithPendingWork) {
  std::atomic<int> done{0};
  constexpr int kRounds = 50;
  constexpr int kTasks = 16;
  for (int r = 0; r < kRounds; ++r) {
    std::vector<std::future<void>> futs;
    {
      ThreadPool pool(3, /*cap_to_hardware=*/false);
      futs.reserve(kTasks);
      for (int i = 0; i < kTasks; ++i)
        futs.push_back(pool.submit([&done] { ++done; }));
      // Destructor runs with most tasks still queued.
    }
    for (auto& f : futs) f.get();  // all must have completed, none dropped
  }
  EXPECT_EQ(done.load(), kRounds * kTasks);
}

// The chunked pipeline end-to-end from several threads at once. Each
// thread owns its field and archive, but all share the compressor
// registry and allocator; the inner ThreadPools overlap in time.
TEST(StressParallel, ConcurrentChunkedRoundtrips) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      const Field<float> field = make_field(DatasetId::kMiranda, t,
                                            Dims{24, 16, 16}, 1234u);
      ChunkedOptions opt;
      opt.compressor = "SZ3";
      opt.options.error_bound = 1e-3;
      opt.slab = 8;
      opt.workers = 2;
      const auto arc = chunked_compress(field.data(), field.dims(), opt);
      const Field<float> back = chunked_decompress<float>(arc, 2);
      if (back.dims() != field.dims()) {
        ++failures;
        return;
      }
      for (std::size_t i = 0; i < field.size(); ++i) {
        if (std::abs(back.data()[i] - field.data()[i]) > 1e-3f + 1e-6f) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// One ThreadPool shared by several caller threads, each running the full
// chunked pipeline through it. The pool sees nested parallelism (the slab
// fan-out re-enters parallel_for for Huffman/LZB ranges on the same pool)
// from multiple outer callers at once — the shared-pool reuse pattern the
// `options.pool` plumbing exists for. Results must stay byte-identical to
// a serial run, and TSan must stay quiet.
TEST(StressParallel, SharedPoolAcrossConcurrentPipelines) {
  const Field<float> field =
      make_field(DatasetId::kMiranda, 0, Dims{32, 24, 24}, 99u);
  ChunkedOptions serial_opt;
  serial_opt.compressor = "SZ3";
  serial_opt.options.error_bound = 1e-3;
  serial_opt.slab = 10;
  serial_opt.workers = 1;
  const auto expect = chunked_compress(field.data(), field.dims(), serial_opt);

  ThreadPool pool(3, /*cap_to_hardware=*/false);
  constexpr int kCallers = 4;
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        ChunkedOptions opt = serial_opt;
        opt.options.pool = &pool;
        const auto arc = chunked_compress(field.data(), field.dims(), opt);
        if (arc != expect) {
          ++failures;
          return;
        }
        const Field<float> back = chunked_decompress<float>(arc, 0, &pool);
        if (back.dims() != field.dims()) {
          ++failures;
          return;
        }
        for (std::size_t i = 0; i < field.size(); ++i) {
          if (std::abs(back.data()[i] - field.data()[i]) > 1e-3f + 1e-6f) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace qip
