// SZ3-like compressor: roundtrip, error-bound enforcement, QP
// transparency (identical reconstruction with and without QP), and ratio
// improvements on clustered data.

#include "compressors/sz3.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "util/stats.hpp"

namespace qip {
namespace {

Field<float> smooth_field(Dims dims, unsigned seed = 5) {
  Field<float> f(dims);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> ph(0.f, 6.28f);
  const float p1 = ph(rng), p2 = ph(rng), p3 = ph(rng);
  for (std::size_t z = 0; z < dims.extent(0); ++z)
    for (std::size_t y = 0; y < dims.extent(1); ++y)
      for (std::size_t x = 0; x < dims.extent(2); ++x)
        f.at(z, y, x) = std::sin(0.07f * z + p1) * std::cos(0.05f * y + p2) +
                        0.5f * std::sin(0.11f * x + p3) +
                        0.1f * std::sin(0.31f * (x + y + z));
  return f;
}

TEST(SZ3, RoundtripRespectsErrorBound) {
  const auto f = smooth_field(Dims{32, 40, 48});
  for (double eb : {1e-2, 1e-3, 1e-4}) {
    SZ3Config cfg;
    cfg.error_bound = eb;
    const auto arc = sz3_compress(f.data(), f.dims(), cfg);
    const auto dec = sz3_decompress<float>(arc);
    ASSERT_EQ(dec.dims(), f.dims());
    EXPECT_LE(max_abs_error(f.span(), dec.span()), eb * (1 + 1e-9))
        << "eb=" << eb;
  }
}

TEST(SZ3, CompressesSmoothDataWell) {
  const auto f = smooth_field(Dims{64, 64, 64});
  SZ3Config cfg;
  cfg.error_bound = 1e-3;
  const auto arc = sz3_compress(f.data(), f.dims(), cfg);
  const double cr =
      static_cast<double>(f.size() * sizeof(float)) / arc.size();
  EXPECT_GT(cr, 10.0);
}

TEST(SZ3, QPDoesNotChangeDecompressedData) {
  const auto f = smooth_field(Dims{48, 56, 40});
  SZ3Config base;
  base.error_bound = 1e-3;
  SZ3Config with_qp = base;
  with_qp.qp = QPConfig::best_fit();

  const auto arc0 = sz3_compress(f.data(), f.dims(), base);
  const auto arc1 = sz3_compress(f.data(), f.dims(), with_qp);
  const auto dec0 = sz3_decompress<float>(arc0);
  const auto dec1 = sz3_decompress<float>(arc1);
  ASSERT_EQ(dec0.size(), dec1.size());
  for (std::size_t i = 0; i < dec0.size(); ++i)
    ASSERT_EQ(dec0[i], dec1[i]) << "at " << i;
}

TEST(SZ3, QPRoundtripAllDimensionAndConditionChoices) {
  const auto f = smooth_field(Dims{24, 30, 36});
  for (auto dim : {QPDimension::k1DBack, QPDimension::k1DTop,
                   QPDimension::k1DLeft, QPDimension::k2D, QPDimension::k3D}) {
    for (auto cond : {QPCondition::kCaseI, QPCondition::kCaseII,
                      QPCondition::kCaseIII, QPCondition::kCaseIV}) {
      SZ3Config cfg;
      cfg.error_bound = 1e-3;
      cfg.qp.enabled = true;
      cfg.qp.dimension = dim;
      cfg.qp.condition = cond;
      cfg.qp.max_level = 3;
      const auto arc = sz3_compress(f.data(), f.dims(), cfg);
      const auto dec = sz3_decompress<float>(arc);
      EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-3 * (1 + 1e-9))
          << to_string(dim) << "/" << to_string(cond);
    }
  }
}

// Generic dtype × rank roundtrips live in test_all_codecs.cpp.

TEST(SZ3, RandomNoiseFallsBackToLorenzoAndStaysBounded) {
  Field<float> f(Dims{40, 40, 40});
  std::mt19937 rng(13);
  std::uniform_real_distribution<float> u(-1.f, 1.f);
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = u(rng);
  SZ3Config cfg;
  cfg.error_bound = 1e-5;
  SZ3Artifacts art;
  const auto arc = sz3_compress(f.data(), f.dims(), cfg, &art);
  const auto dec = sz3_decompress<float>(arc);
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-5 * (1 + 1e-9));
}

TEST(SZ3, ConstantFieldCompressesExtremelyWell) {
  Field<float> f(Dims{50, 50, 50});
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = 3.25f;
  SZ3Config cfg;
  cfg.error_bound = 1e-4;
  const auto arc = sz3_compress(f.data(), f.dims(), cfg);
  EXPECT_LT(arc.size(), 6000u);
  const auto dec = sz3_decompress<float>(arc);
  EXPECT_LE(max_abs_error(f.span(), dec.span()), 1e-4);
}

TEST(SZ3, ArtifactsExposeSpatialCodes) {
  const auto f = smooth_field(Dims{32, 32, 32});
  SZ3Config cfg;
  cfg.error_bound = 1e-3;
  cfg.auto_fallback = false;
  SZ3Artifacts art;
  (void)sz3_compress(f.data(), f.dims(), cfg, &art);
  ASSERT_EQ(art.predictor, SZ3Predictor::kInterpolation);
  ASSERT_EQ(art.codes.size(), f.size());
}

TEST(SZ3, CorruptedArchiveRejected) {
  const auto f = smooth_field(Dims{16, 16, 16});
  SZ3Config cfg;
  auto arc = sz3_compress(f.data(), f.dims(), cfg);
  arc[0] ^= 0xFF;
  EXPECT_THROW(sz3_decompress<float>(arc), std::runtime_error);
}

}  // namespace
}  // namespace qip
