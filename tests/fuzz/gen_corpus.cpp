// Seed-corpus generator for the fuzz targets (run manually; the output
// under tests/fuzz/corpus/ is checked in).
//
//   ./gen_corpus <path-to-tests/fuzz/corpus>
//
// Emits, per target: well-formed inputs produced by the real encoders,
// systematically truncated and bit-flipped variants of them, and
// hand-crafted hostile headers (over-subscribed Huffman code lengths,
// decompression-bomb length fields, out-of-window LZ offsets, bad magic).
// Everything is deterministic so regeneration is reproducible.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "compressors/core/container.hpp"
#include "compressors/qoz.hpp"
#include "compressors/sz3.hpp"
#include "data/synthetic.hpp"
#include "encode/huffman.hpp"
#include "lossless/lzb.hpp"
#include "util/bytes.hpp"

namespace fs = std::filesystem;
using Bytes = std::vector<std::uint8_t>;

namespace {

void dump(const fs::path& dir, const std::string& name, const Bytes& bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Write `base`, plus three truncations and two deterministic bit flips.
void dump_with_mutants(const fs::path& dir, const std::string& stem,
                       const Bytes& base) {
  dump(dir, stem + ".bin", base);
  const std::size_t cuts[] = {base.size() / 4, base.size() / 2,
                              base.size() - std::min<std::size_t>(
                                                1, base.size())};
  int i = 0;
  for (std::size_t cut : cuts) {
    Bytes t(base.begin(), base.begin() + static_cast<long>(cut));
    dump(dir, stem + "_trunc" + std::to_string(i++) + ".bin", t);
  }
  if (!base.empty()) {
    Bytes f1 = base;
    f1[0] ^= 0x40;  // header flip
    dump(dir, stem + "_flip_header.bin", f1);
    Bytes f2 = base;
    f2[base.size() / 2] ^= 0x08;  // payload flip
    dump(dir, stem + "_flip_payload.bin", f2);
  }
}

Bytes pattern_bytes(std::size_t n, std::uint32_t seed) {
  Bytes b(n);
  std::uint32_t s = seed;
  for (std::size_t i = 0; i < n; ++i) {
    s = s * 1664525u + 1013904223u;
    // Mix of structure (runs) and noise so LZ and Huffman paths both fire.
    b[i] = (i / 7 % 3 == 0) ? static_cast<std::uint8_t>(i & 0xF)
                            : static_cast<std::uint8_t>(s >> 24);
  }
  return b;
}

void gen_bitstream(const fs::path& root) {
  const fs::path dir = root / "fuzz_bitstream";
  dump(dir, "empty.bin", {});
  dump(dir, "ones.bin", Bytes(64, 0xFF));
  dump(dir, "zeros.bin", Bytes(64, 0x00));
  dump_with_mutants(dir, "mixed", pattern_bytes(256, 7));
  dump_with_mutants(dir, "long", pattern_bytes(1024, 99));
}

// Max canonical code length of a legacy-layout Huffman block (varint
// n_symbols | varint n_distinct | n_distinct x (symbol, length) pairs).
// Returns -1 for the ranged layout (leading 0 sentinel).
int huffman_max_code_length(const Bytes& enc) {
  qip::ByteReader r(enc);
  if (r.get_varint() == 0) return -1;
  const std::uint64_t distinct = r.get_varint();
  int max_len = 0;
  for (std::uint64_t i = 0; i < distinct; ++i) {
    (void)r.get_varint();
    max_len = std::max(max_len, static_cast<int>(r.get_varint()));
  }
  return max_len;
}

// The table-driven Huffman decoder resolves codes up to kFastBits (12)
// via its primary table; anything longer takes the overflow slow path.
// Seeds tagged "deep" must keep exercising that path, so regeneration
// fails loudly if the encoded table ever flattens below 13 bits.
void require_deep_table(const Bytes& enc, const char* what) {
  const int max_len = huffman_max_code_length(enc);
  if (max_len <= 12) {
    std::cerr << "gen_corpus: " << what << " max code length " << max_len
              << " no longer exceeds the 12-bit fast-table width; retune "
                 "the generator so the overflow slow path stays covered\n";
    std::exit(1);
  }
}

void gen_huffman(const fs::path& root) {
  const fs::path dir = root / "fuzz_huffman";
  // Well-formed streams of different shapes.
  {
    std::vector<std::uint32_t> syms;
    for (int i = 0; i < 600; ++i)
      syms.push_back(static_cast<std::uint32_t>(i * i % 17));
    dump_with_mutants(dir, "skewed17", qip::huffman_encode(syms));
  }
  {
    std::vector<std::uint32_t> syms(400, 42);  // single-symbol stream
    dump_with_mutants(dir, "single", qip::huffman_encode(syms));
  }
  {
    std::vector<std::uint32_t> syms;
    for (std::uint32_t i = 0; i < 300; ++i) syms.push_back(i * 7919u);
    dump_with_mutants(dir, "wide_alphabet", qip::huffman_encode(syms));
  }
  // Fibonacci-weighted alphabet: symbol s occurs fib(s+1) times, which
  // forces a maximally skewed canonical tree (max code length ~ alphabet
  // size, here ~23 bits), so the decoder's >12-bit overflow slow path
  // runs on this seed and all of its mutants.
  {
    std::vector<std::uint32_t> syms;
    std::uint64_t a = 1, b = 1;
    for (std::uint32_t s = 0; s < 24; ++s) {
      syms.insert(syms.end(), static_cast<std::size_t>(a), s);
      const std::uint64_t next = a + b;
      a = b;
      b = next;
    }
    // Interleave so long codes are scattered through the bitstream
    // rather than clustered at the front.
    std::vector<std::uint32_t> mixed;
    mixed.reserve(syms.size());
    const std::size_t stride = 7919;  // prime, coprime to syms.size()
    std::size_t pos = 0;
    for (std::size_t i = 0; i < syms.size(); ++i) {
      mixed.push_back(syms[pos]);
      pos = (pos + stride) % syms.size();
    }
    const Bytes enc = qip::huffman_encode(mixed);
    require_deep_table(enc, "fuzz_huffman/deep_fibonacci");
    dump_with_mutants(dir, "deep_fibonacci", enc);
  }
  // Hostile: over-subscribed code lengths (three symbols, all length 1).
  {
    qip::ByteWriter w;
    w.put_varint(10);  // n
    w.put_varint(3);   // distinct
    for (std::uint32_t s = 0; s < 3; ++s) {
      w.put_varint(s);
      w.put_varint(1);  // length 1 for all three: Kraft sum = 1.5
    }
    w.put_varint(4);  // payload block length
    w.put_bytes(Bytes{0xAA, 0xBB, 0xCC, 0xDD});
    dump(dir, "hostile_oversubscribed.bin", w.take());
  }
  // Hostile: symbol count far beyond what the payload can hold.
  {
    qip::ByteWriter w;
    w.put_varint(1u << 30);  // n = 1Gi symbols
    w.put_varint(2);
    w.put_varint(0);
    w.put_varint(1);
    w.put_varint(1);
    w.put_varint(1);
    w.put_varint(2);  // 2-byte payload
    w.put_bytes(Bytes{0x00, 0x00});
    dump(dir, "hostile_huge_count.bin", w.take());
  }
  // Hostile: length 0 and length 200 entries.
  {
    qip::ByteWriter w;
    w.put_varint(4);
    w.put_varint(2);
    w.put_varint(0);
    w.put_varint(0);  // zero-length code
    w.put_varint(1);
    w.put_varint(200);  // absurd length
    w.put_varint(1);
    w.put_bytes(Bytes{0xFF});
    dump(dir, "hostile_bad_lengths.bin", w.take());
  }
}

void gen_lzb(const fs::path& root) {
  const fs::path dir = root / "fuzz_lzb";
  dump_with_mutants(dir, "text",
                    qip::lzb_compress(pattern_bytes(2048, 3)));
  dump_with_mutants(dir, "runs", qip::lzb_compress(Bytes(4096, 9)));
  // Hostile: declared size is a 1 TiB bomb with a tiny body.
  {
    qip::ByteWriter w;
    w.put_varint(std::uint64_t{1} << 40);
    w.put_varint(1);  // one literal
    w.put_bytes(Bytes{0x55});
    w.put_varint(std::uint64_t{1} << 40);  // match covering the rest
    w.put_varint(1);
    dump(dir, "hostile_bomb.bin", w.take());
  }
  // Hostile: match offset pointing before the start of the output.
  {
    qip::ByteWriter w;
    w.put_varint(16);  // raw size
    w.put_varint(2);   // two literals
    w.put_bytes(Bytes{1, 2});
    w.put_varint(8);   // match length
    w.put_varint(50);  // offset > produced bytes
    dump(dir, "hostile_bad_offset.bin", w.take());
  }
  // Hostile: terminator before the declared size is reached.
  {
    qip::ByteWriter w;
    w.put_varint(100);
    w.put_varint(3);
    w.put_bytes(Bytes{7, 7, 7});
    w.put_varint(0);  // terminator at 3/100 bytes
    dump(dir, "hostile_premature_end.bin", w.take());
  }
}

void gen_archive(const fs::path& root) {
  const fs::path dir = root / "fuzz_archive";
  // Well-formed containers with realistic stage layouts.
  {
    qip::ContainerWriter w(qip::CompressorId::kSZ3, qip::dtype_tag<float>(),
                           qip::Dims{8, 8, 8});
    w.stage(qip::StageId::kConfig).put_bytes(pattern_bytes(64, 21));
    w.stage(qip::StageId::kSymbols).put_bytes(pattern_bytes(512, 22));
    dump_with_mutants(dir, "sz3_f32", w.seal());
  }
  {
    qip::ContainerWriter w(qip::CompressorId::kQoZ, qip::dtype_tag<double>(),
                           qip::Dims{32});
    w.stage(qip::StageId::kConfig).put_bytes(pattern_bytes(48, 5));
    w.stage(qip::StageId::kSymbols).put_bytes(pattern_bytes(96, 6));
    w.stage(qip::StageId::kCorrections).put_bytes(pattern_bytes(16, 7));
    dump_with_mutants(dir, "qoz_f64", w.seal());
  }
  // A genuine SZ3 archive on a field/bound pair whose sampling selector
  // commits to the Lorenzo path, so the replay battery's truncations and
  // bit flips exercise the full decode stack: Huffman, the quantizer
  // outlier table and the traversal walk.
  {
    const qip::Dims dims{32, 40, 48};
    const qip::Field<float> field =
        qip::make_field(qip::DatasetId::kMiranda, 0, dims, 7);
    qip::SZ3Config cfg;
    cfg.error_bound = 1e-3;
    const auto arc = qip::sz3_compress(field.data(), dims, cfg);
    dump_with_mutants(dir, "sz3_real", arc);
    // The dims-header flip that uncovered the unguarded symbol cursor:
    // the claimed point count grows past the stored symbol stream.
    Bytes dflip = arc;
    dflip[8] ^= 0x01;
    dump(dir, "hostile_dims_flip.bin", dflip);
  }
  // A genuine tiled QoZ archive: v3 per-level chunks plus a tile
  // directory, so the replay battery's truncations and bit flips hit
  // the chunk directory parser and the preview/region decode legs of
  // the fuzz target. Verified tiled so the seed cannot silently stop
  // covering the directory.
  {
    const qip::Dims dims{64, 64};
    const qip::Field<float> field =
        qip::make_field(qip::DatasetId::kCESM, 0, dims, 11);
    qip::QoZConfig cfg;
    cfg.error_bound = 1e-3;
    cfg.tile_size = 16;
    const auto arc = qip::qoz_compress(field.data(), dims, cfg);
    const qip::ContainerReader reader(arc);
    if (!reader.directory().tiling.active()) {
      std::cerr << "gen_corpus: qoz_tiled seed lost its tile directory; "
                   "retune dims/tile_size\n";
      std::exit(1);
    }
    dump_with_mutants(dir, "qoz_tiled_real", arc);
  }
  // A genuine SZ3 archive over a heavy-tailed field: a flat background
  // plus spikes whose per-magnitude counts decay Fibonacci-fashion, so
  // the quantization-code histogram is skewed enough that the Huffman
  // table goes deeper than the decoder's 12-bit fast table and archive
  // decode hits the overflow slow path. Verified below by parsing the
  // largest payload chunk, so the seed cannot silently stop covering it.
  {
    const qip::Dims dims{24, 30, 36};
    const std::size_t n = 24 * 30 * 36;
    std::vector<float> field(n);
    for (std::size_t i = 0; i < n; ++i)
      field[i] = 0.05f * std::sin(0.01 * static_cast<double>(i));
    const double eb = 1e-3;
    std::uint64_t fa = 1, fb = 1;
    std::uint32_t lcg = 12345;
    for (int k = 18; k >= 1; --k) {  // fib(1)=1 spike of the largest k
      for (std::uint64_t c = 0; c < fa; ++c) {
        lcg = lcg * 1664525u + 1013904223u;
        field[lcg % n] = static_cast<float>(2.0 * eb * (900.0 + 40.0 * k));
      }
      const std::uint64_t next = fa + fb;
      fa = fb;
      fb = next;
    }
    qip::SZ3Config cfg;
    cfg.error_bound = eb;
    const auto arc = qip::sz3_compress(field.data(), dims, cfg);
    const qip::ContainerReader reader(arc);
    std::size_t deepest = 0;
    for (std::size_t i = 1; i < reader.chunk_count(); ++i)
      if (reader.directory().chunks[i].symbol_count >
          reader.directory().chunks[deepest].symbol_count)
        deepest = i;
    require_deep_table(reader.chunk_bytes(deepest),
                       "fuzz_archive/sz3_deep_huffman");
    dump_with_mutants(dir, "sz3_deep_huffman", arc);
  }
  // Hostile: valid v2 header, bomb-sized stage-body LZB declaration
  // (version pinned to 2 — the compat path must keep capping it).
  {
    qip::ByteWriter w;
    w.put(qip::kContainerMagic);
    w.put(std::uint8_t{2});
    w.put(static_cast<std::uint8_t>(1));  // kSZ3
    w.put(static_cast<std::uint8_t>(1));  // float
    w.put_varint(3);                      // dims 8x8x8
    for (int a = 0; a < 3; ++a) w.put_varint(8);
    w.put_varint(std::uint64_t{1} << 50);  // LZB raw size: 1 PiB
    w.put_varint(0);
    dump(dir, "hostile_inner_bomb.bin", w.take());
  }
  // Hostile: same bomb as a v3 meta-block length declaration.
  {
    qip::ByteWriter w;
    w.put(qip::kContainerMagic);
    w.put(qip::kContainerVersion);
    w.put(static_cast<std::uint8_t>(1));
    w.put(static_cast<std::uint8_t>(1));
    w.put_varint(3);
    for (int a = 0; a < 3; ++a) w.put_varint(8);
    w.put_varint(std::uint64_t{1} << 50);  // meta block length: 1 PiB
    dump(dir, "hostile_v3_meta_bomb.bin", w.take());
  }
  // Hostile: wrong magic entirely.
  dump(dir, "hostile_bad_magic.bin",
       Bytes{0xDE, 0xAD, 0xBE, 0xEF, 2, 1, 1, 1, 4});
  // Hostile: a future format version this build must refuse to parse.
  {
    qip::ByteWriter w;
    w.put(qip::kContainerMagic);
    w.put(static_cast<std::uint8_t>(qip::kContainerVersion + 1));
    w.put(static_cast<std::uint8_t>(1));
    w.put(static_cast<std::uint8_t>(1));
    w.put_varint(1);
    w.put_varint(4);
    dump(dir, "hostile_bad_version.bin", w.take());
  }
  // Hostile: header cut off before dims.
  {
    qip::ByteWriter w;
    w.put(qip::kContainerMagic);
    w.put(qip::kContainerVersion);
    w.put(static_cast<std::uint8_t>(3));
    dump(dir, "hostile_header_only.bin", w.take());
  }
  // Hostile: duplicate stage sections inside a v2 body (pinned to
  // version 2, the layout whose body is a single LZB block).
  {
    qip::ByteWriter body;
    body.put_varint(2);
    body.put(static_cast<std::uint8_t>(qip::StageId::kConfig));
    body.put_block(Bytes{1, 2, 3, 4});
    body.put(static_cast<std::uint8_t>(qip::StageId::kConfig));
    body.put_block(Bytes{5, 6, 7, 8});
    qip::ByteWriter w;
    w.put(qip::kContainerMagic);
    w.put(std::uint8_t{2});
    w.put(static_cast<std::uint8_t>(2));  // kQoZ
    w.put(static_cast<std::uint8_t>(2));  // double
    w.put_varint(1);
    w.put_varint(16);
    w.put_bytes(qip::lzb_compress(body.bytes()));
    dump(dir, "hostile_dup_stage.bin", w.take());
  }
  // A well-formed v2 archive (empty-config + symbols), so the compat
  // parser and its mutants stay covered now that the writer seals v3.
  {
    qip::ByteWriter body;
    body.put_varint(2);
    body.put(static_cast<std::uint8_t>(qip::StageId::kConfig));
    body.put_block(pattern_bytes(64, 31));
    body.put(static_cast<std::uint8_t>(qip::StageId::kSymbols));
    body.put_block(pattern_bytes(512, 32));
    qip::ByteWriter w;
    w.put(qip::kContainerMagic);
    w.put(std::uint8_t{2});
    w.put(static_cast<std::uint8_t>(1));  // kSZ3
    w.put(static_cast<std::uint8_t>(1));  // float
    w.put_varint(3);
    for (int a = 0; a < 3; ++a) w.put_varint(8);
    w.put_bytes(qip::lzb_compress(body.bytes()));
    dump_with_mutants(dir, "v2_sz3_f32", w.take());
  }
  // Hostile v3 payload directories. Shared scaffold: valid header +
  // empty meta sections, then a hand-written directory block.
  const auto v3_with_dir = [](const qip::ByteWriter& dir_w,
                              const Bytes& payload) {
    qip::ByteWriter meta;
    meta.put_varint(0);
    qip::ByteWriter w;
    w.put(qip::kContainerMagic);
    w.put(qip::kContainerVersion);
    w.put(static_cast<std::uint8_t>(2));  // kQoZ
    w.put(static_cast<std::uint8_t>(1));  // float
    w.put_varint(2);                      // dims 32x32
    w.put_varint(32);
    w.put_varint(32);
    w.put_block(qip::lzb_compress(meta.bytes()));
    w.put_block(qip::lzb_compress(dir_w.bytes()));
    w.put_bytes(payload);
    return w.take();
  };
  {
    qip::ByteWriter d;
    d.put_varint(65);  // level-count bomb (> kMaxPayloadLevels)
    dump(dir, "hostile_v3_level_bomb.bin", v3_with_dir(d, {}));
  }
  {
    qip::ByteWriter d;
    d.put_varint(1);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint(std::uint64_t{1} << 40);  // chunk-count bomb
    dump(dir, "hostile_v3_chunk_count_bomb.bin", v3_with_dir(d, {}));
  }
  {
    qip::ByteWriter d;
    d.put_varint(2);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint(2);
    for (std::uint64_t level : {std::uint64_t{1}, std::uint64_t{2}}) {
      d.put_varint(level);  // ascending levels: misordered
      d.put_varint(0);
      d.put_varint(0);
      d.put_varint(1);
      d.put_varint(0);
    }
    dump(dir, "hostile_v3_misordered_chunks.bin", v3_with_dir(d, {}));
  }
  {
    qip::ByteWriter d;
    d.put_varint(2);
    d.put_varint(16);  // 2x2 tile grid over 32x32
    d.put_varint(1);
    d.put_varint(1);
    d.put_varint(1);    // level
    d.put_varint(100);  // tile id far outside the grid
    d.put_varint(0);
    d.put_varint(1);
    d.put_varint(0);
    dump(dir, "hostile_v3_tile_outside_grid.bin", v3_with_dir(d, {}));
  }
  {
    qip::ByteWriter d;
    d.put_varint(1);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint(1);
    d.put_varint(1);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint((std::uint64_t{32} * 32) + 1);  // symbol bomb
    d.put_varint(0);
    dump(dir, "hostile_v3_symbol_bomb.bin", v3_with_dir(d, {}));
  }
  {
    // Directory declares a 100-byte chunk; only 10 payload bytes exist.
    // Parses fine (lazy extents); the chunk_bytes leg must throw.
    qip::ByteWriter d;
    d.put_varint(1);
    d.put_varint(0);
    d.put_varint(0);
    d.put_varint(1);
    d.put_varint(1);
    d.put_varint(0);
    d.put_varint(100);
    d.put_varint(4);
    d.put_varint(0);
    dump(dir, "hostile_v3_chunk_past_end.bin",
         v3_with_dir(d, Bytes(10, 0xAB)));
  }
  // Hostile dims headers (consumed by the read_dims leg of the target):
  // rank 200, a zero extent, and an extent product overflowing size_t.
  {
    qip::ByteWriter w;
    w.put_varint(200);
    dump(dir, "hostile_dims_rank.bin", w.take());
  }
  {
    qip::ByteWriter w;
    w.put_varint(3);
    w.put_varint(16);
    w.put_varint(0);
    w.put_varint(16);
    dump(dir, "hostile_dims_zero_extent.bin", w.take());
  }
  {
    qip::ByteWriter w;
    w.put_varint(4);
    for (int a = 0; a < 4; ++a) w.put_varint(std::uint64_t{1} << 48);
    dump(dir, "hostile_dims_overflow.bin", w.take());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: gen_corpus <corpus-root-dir>\n";
    return 2;
  }
  const fs::path root = argv[1];
  gen_bitstream(root);
  gen_huffman(root);
  gen_lzb(root);
  gen_archive(root);
  std::cout << "corpus written under " << root << "\n";
  return 0;
}
