// Fuzz target: canonical Huffman decoder on arbitrary bytes.
//
// Contract under test: huffman_decode() either returns symbols, or throws
// DecodeError — hostile headers (over-subscribed code lengths, impossible
// symbol counts, truncated tables/payloads) must never index out of the
// canonical tables or allocate unboundedly. Decoded output must survive an
// encode/decode roundtrip.

#include <cstddef>
#include <cstdint>

#include "encode/huffman.hpp"
#include "util/status.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // The decoder caps symbol counts by payload bits, so output is bounded
  // by 8x the input size; no extra cap is needed here.
  try {
    const auto symbols = qip::huffman_decode({data, size});
    const auto re = qip::huffman_encode(symbols);
    if (qip::huffman_decode(re) != symbols) __builtin_trap();
  } catch (const qip::DecodeError&) {
  }
  return 0;
}
