// GTest driver that replays a checked-in fuzz corpus through a
// libFuzzer-style entrypoint, so ctest exercises every corpus input even
// when no fuzzing toolchain is available (QIP_FUZZ=OFF, the default).
//
// Each replay binary is compiled from one fuzz_<target>.cpp plus this
// file; QIP_CORPUS_DIR points at tests/fuzz/corpus/<target>. Beyond the
// files themselves, every input is also replayed under a deterministic
// battery of truncations and single-bit flips, multiplying corpus
// coverage without bloating the repository.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(QIP_CORPUS_DIR)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

// The entrypoint's own contract checks use __builtin_trap / sanitizers;
// at the GTest layer we only assert that no exception escapes (a clean
// DecodeError is caught inside the entrypoint).
void replay(const std::vector<std::uint8_t>& bytes, const std::string& what) {
  try {
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": unexpected exception escaped: " << e.what();
  } catch (...) {
    ADD_FAILURE() << what << ": unexpected non-std exception escaped";
  }
}

TEST(CorpusReplay, CheckedInInputsDecodeCleanly) {
  const auto files = corpus_files();
  ASSERT_FALSE(files.empty()) << "empty corpus dir: " << QIP_CORPUS_DIR;
  for (const auto& f : files) replay(read_file(f), f.filename().string());
}

TEST(CorpusReplay, TruncationsOfEveryInputDecodeCleanly) {
  for (const auto& f : corpus_files()) {
    const auto bytes = read_file(f);
    // Every prefix for short inputs; 32 evenly spaced cuts for long ones.
    const std::size_t step =
        bytes.size() <= 64 ? 1 : (bytes.size() + 31) / 32;
    for (std::size_t cut = 0; cut < bytes.size(); cut += step) {
      std::vector<std::uint8_t> trunc(bytes.begin(),
                                      bytes.begin() + static_cast<long>(cut));
      replay(trunc, f.filename().string() + " truncated to " +
                        std::to_string(cut));
    }
  }
}

TEST(CorpusReplay, BitFlipsOfEveryInputDecodeCleanly) {
  for (const auto& f : corpus_files()) {
    const auto bytes = read_file(f);
    if (bytes.empty()) continue;
    // 64 deterministic single-bit flips spread over the buffer (fewer for
    // tiny inputs), biased toward the header end where framing lives.
    const std::size_t nflips = std::min<std::size_t>(64, bytes.size() * 8);
    for (std::size_t k = 0; k < nflips; ++k) {
      const std::size_t bit =
          (k * 2654435761u + k * k * 40503u) % (bytes.size() * 8);
      auto mutated = bytes;
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      replay(mutated, f.filename().string() + " bitflip " +
                          std::to_string(bit));
    }
  }
}

}  // namespace
