// Fuzz target: LZB decompressor on arbitrary bytes.
//
// Contract under test: lzb_decompress() either returns, or throws
// DecodeError — never reads/writes out of bounds, never materializes more
// than the caller's output cap, never throws anything else. When a buffer
// does decode, re-compressing the result and decoding again must be the
// identity (the decoder accepts only self-consistent streams).

#include <cstddef>
#include <cstdint>

#include "lossless/lzb.hpp"
#include "util/status.hpp"

namespace {
// Bound hostile "declared output size" headers; large enough that every
// checked-in corpus input fits, small enough to defuse bombs.
constexpr std::uint64_t kMaxOutput = 1u << 22;  // 4 MiB
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  try {
    const auto out = qip::lzb_decompress({data, size}, kMaxOutput);
    const auto re = qip::lzb_compress(out);
    if (qip::lzb_decompress(re, kMaxOutput) != out) __builtin_trap();
  } catch (const qip::DecodeError&) {
    // Malformed input rejected cleanly: the expected outcome.
  }
  return 0;
}
