// Fuzz target: BitReader/BitWriter on an input-driven operation tape.
//
// The input bytes are split in two: the first half is a stream the
// BitReader reads from, the second half is a "tape" of (op, arg) pairs
// driving a random walk over the reader API. Invariants checked:
//   * no operation reads out of the underlying span (ASan would flag it),
//   * peek() never advances the cursor,
//   * bit_position() is monotone under read/skip,
//   * require() throws exactly when fewer real bits remain,
//   * a BitWriter->BitReader roundtrip of the tape-selected values is
//     the identity.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "encode/bitstream.hpp"
#include "util/status.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::size_t half = size / 2;
  const std::span<const std::uint8_t> stream(data, half);
  const std::span<const std::uint8_t> tape(data + half, size - half);

  qip::BitReader br(stream);
  const std::size_t total_bits = br.bit_size();
  for (std::size_t i = 0; i + 1 < tape.size(); i += 2) {
    const int op = tape[i] & 3;
    const int arg = tape[i + 1];
    const std::size_t before = br.bit_position();
    switch (op) {
      case 0: {
        const int nb = arg % 65;
        const std::uint64_t v = br.read(nb);
        if (nb < 64 && (v >> nb) != 0) __builtin_trap();  // no stray high bits
        if (br.bit_position() != before + static_cast<std::size_t>(nb))
          __builtin_trap();
        break;
      }
      case 1: {
        const int b = br.read_bit();
        if (b != 0 && b != 1) __builtin_trap();
        if (br.bit_position() != before + 1) __builtin_trap();
        break;
      }
      case 2: {
        const std::uint32_t v = br.peek(arg % 17);
        if (br.bit_position() != before) __builtin_trap();  // peek is const
        if ((arg % 17) < 32 && (v >> (arg % 17)) != 0) __builtin_trap();
        break;
      }
      default: {
        br.skip(arg % 64);
        if (br.bit_position() != before + static_cast<std::size_t>(arg % 64))
          __builtin_trap();
        break;
      }
    }
    // require() must agree with the cursor/stream-size arithmetic.
    const std::size_t pos = br.bit_position();
    const std::size_t avail = pos >= total_bits ? 0 : total_bits - pos;
    try {
      br.require(avail);
    } catch (const qip::DecodeError&) {
      __builtin_trap();  // must not throw: exactly `avail` bits remain
    }
    try {
      br.require(avail + 1);
      __builtin_trap();  // must throw: one past the end
    } catch (const qip::DecodeError&) {
    }
  }

  // Writer/reader symmetry on tape-derived (value, width) pairs.
  qip::BitWriter bw;
  std::vector<std::pair<std::uint64_t, int>> written;
  for (std::size_t i = 0; i + 2 < tape.size(); i += 3) {
    const int width = tape[i] % 65;
    std::uint64_t value =
        (static_cast<std::uint64_t>(tape[i + 1]) << 32) * 0x01010101u |
        tape[i + 2];
    if (width < 64) value &= (std::uint64_t{1} << width) - 1;
    bw.write(value, width);
    written.emplace_back(value, width);
  }
  const std::vector<std::uint8_t> bytes = bw.finish();
  qip::BitReader rb(bytes);
  for (const auto& [value, width] : written) {
    if (rb.read(width) != value) __builtin_trap();
  }
  return 0;
}
