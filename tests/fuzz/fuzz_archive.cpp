// Fuzz target: unified container framing + dims headers on arbitrary
// bytes, plus the full registry decode path on anything that parses.
//
// Contract under test: inspect_container()/ContainerReader/read_dims()
// and every compressor's decompress either succeed or throw DecodeError.
// The stage-body cap bounds what a hostile LZB length header can make us
// materialize; read_dims() must reject zero extents and element counts
// that would overflow size_t.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "compressors/core/container.hpp"
#include "compressors/registry.hpp"
#include "util/status.hpp"

namespace {
constexpr std::uint64_t kMaxBody = 1u << 22;  // 4 MiB stage-body cap
// Full decodes only for fields small enough that a flipped dims header
// cannot turn the replay into a multi-gigabyte allocation.
constexpr std::size_t kMaxDecodeElems = 1u << 20;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  try {
    (void)qip::inspect_container(bytes);
  } catch (const qip::DecodeError&) {
  }

  // Full parse: header, meta/directory LZB passes, stage + chunk
  // directories — no expectations.
  try {
    const qip::ContainerReader in(bytes, kMaxBody);
    // Every declared payload chunk either decompresses or throws
    // DecodeError (truncated payloads, extent lies, frame bombs).
    std::vector<std::vector<std::uint8_t>> raw(in.chunk_count());
    bool all_chunks_ok = true;
    for (std::size_t i = 0; i < in.chunk_count(); ++i) {
      try {
        raw[i] = in.chunk_bytes(i);
      } catch (const qip::DecodeError&) {
        all_chunks_ok = false;
      }
    }
    // A successfully parsed container must reseal and reopen to the same
    // stage directory, payloads, and (when every chunk is present)
    // payload directory.
    qip::ContainerWriter w(in.codec(), in.dtype(), in.dims());
    for (const auto& s : in.sections())
      w.stage(s.id).put_bytes(in.stage_bytes(s.id));
    if (all_chunks_ok) {
      w.set_tiling(in.directory().tiling);
      for (std::size_t i = 0; i < in.chunk_count(); ++i) {
        const auto& c = in.directory().chunks[i];
        w.add_chunk(c.level, c.tile, c.symbol_count, c.outlier_count,
                    std::move(raw[i]));
      }
    }
    const auto resealed = w.seal();
    const qip::ContainerReader in2(resealed, kMaxBody);
    if (in2.dims() != in.dims()) __builtin_trap();
    if (in2.sections().size() != in.sections().size()) __builtin_trap();
    for (std::size_t i = 0; i < in.sections().size(); ++i) {
      const auto& a = in.sections()[i];
      const auto& b = in2.sections()[i];
      if (a.id != b.id || a.size != b.size) __builtin_trap();
      const auto pa = in.stage_bytes(a.id);
      const auto pb = in2.stage_bytes(b.id);
      if (!std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()))
        __builtin_trap();
    }
    if (all_chunks_ok) {
      if (in2.chunk_count() != in.chunk_count()) __builtin_trap();
      for (std::size_t i = 0; i < in.chunk_count(); ++i) {
        const auto& a = in.directory().chunks[i];
        const auto& b = in2.directory().chunks[i];
        if (a.level != b.level || a.tile != b.tile ||
            a.symbol_count != b.symbol_count ||
            a.outlier_count != b.outlier_count)
          __builtin_trap();
      }
    }
  } catch (const qip::DecodeError&) {
  }

  // Codec/dtype expectation branches, selected by the first input byte.
  const auto id = static_cast<qip::CompressorId>(size ? data[0] % 8 : 1);
  const std::uint8_t dtype = size ? 1 + (data[0] >> 7) : 1;
  try {
    const qip::ContainerReader in(bytes, id, dtype, kMaxBody);
    (void)in.has_stage(qip::StageId::kConfig);
  } catch (const qip::DecodeError&) {
  }

  // Dims header parser over the raw bytes.
  try {
    qip::ByteReader r(bytes);
    (void)qip::read_dims(r);
  } catch (const qip::DecodeError&) {
  }

  // Full decode through the registry: exercises Huffman/RLE symbol
  // streams, quantizer outlier tables and the traversal engines against
  // the same hostile input. Anything that fails must throw DecodeError.
  // The preview/region entry points take the same battering — they walk
  // the v3 chunk directory with partial symbol streams and tile halos,
  // exactly the paths a hostile progressive download reaches first.
  try {
    const auto& entry = qip::find_compressor_for(bytes);
    const qip::Dims dims = qip::inspect_container(bytes).dims;
    if (dims.size() <= kMaxDecodeElems) {
      try {
        (void)entry.decompress_f32(bytes);
      } catch (const qip::DecodeError&) {
      }
      try {
        (void)entry.decompress_f64(bytes);
      } catch (const qip::DecodeError&) {
      }
      const int level = 1 + (size > 1 ? data[1] % 6 : 0);
      try {
        (void)entry.decompress_preview_f32(bytes, level, nullptr);
      } catch (const qip::DecodeError&) {
      }
      try {
        (void)entry.decompress_preview_f64(bytes, level, nullptr);
      } catch (const qip::DecodeError&) {
      }
      qip::Box box = qip::Box::whole(dims);
      for (int a = 0; a < dims.rank(); ++a) {
        box.lo[a] = dims.extent(a) / 4;
        box.hi[a] = box.lo[a] + (dims.extent(a) + 1) / 2;
      }
      try {
        (void)entry.decompress_region_f32(bytes, box, nullptr);
      } catch (const qip::DecodeError&) {
      }
      try {
        (void)entry.decompress_region_f64(bytes, box, nullptr);
      } catch (const qip::DecodeError&) {
      }
    }
  } catch (const qip::DecodeError&) {
  }
  return 0;
}
