// Fuzz target: outer archive framing + dims headers on arbitrary bytes.
//
// Contract under test: open_archive()/archive_compressor()/read_dims()
// either succeed or throw DecodeError. The inner-payload cap bounds what a
// hostile LZB length header can make us allocate; read_dims() must reject
// zero extents and element counts that would overflow size_t.

#include <cstddef>
#include <cstdint>
#include <span>

#include "compressors/archive.hpp"
#include "util/status.hpp"

namespace {
constexpr std::uint64_t kMaxInner = 1u << 22;  // 4 MiB payload cap
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  try {
    (void)qip::archive_compressor(bytes);
  } catch (const qip::DecodeError&) {
  }

  // Drive the full open path against every registered id/dtype combo the
  // first input byte selects, so mismatch branches are exercised too.
  const auto id = static_cast<qip::CompressorId>(size ? data[0] % 8 : 1);
  const std::uint8_t dtype = size ? 1 + (data[0] >> 7) : 1;
  try {
    const auto inner =
        qip::open_archive(bytes, id, dtype, kMaxInner);
    // A successfully opened archive must re-seal/re-open to the same
    // payload.
    const auto resealed = qip::seal_archive(id, dtype, inner);
    if (qip::open_archive(resealed, id, dtype, kMaxInner) != inner)
      __builtin_trap();
  } catch (const qip::DecodeError&) {
  }

  // Dims header parser over the raw tail.
  try {
    qip::ByteReader r(bytes);
    (void)qip::read_dims(r);
  } catch (const qip::DecodeError&) {
  }
  return 0;
}
