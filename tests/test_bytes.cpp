// Unit tests for ByteWriter/ByteReader serialization primitives.

#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <random>

namespace qip {
namespace {

TEST(Bytes, PodRoundtrip) {
  ByteWriter w;
  w.put<std::uint32_t>(0xDEADBEEF);
  w.put<double>(3.14159);
  w.put<std::int8_t>(-7);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.14159);
  EXPECT_EQ(r.get<std::int8_t>(), -7);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, VarintBoundaries) {
  ByteWriter w;
  const std::uint64_t values[] = {0,    1,        127,        128,
                                  129,  16383,    16384,      (1ull << 32),
                                  ~0ull};
  for (auto v : values) w.put_varint(v);
  const auto buf = w.take();
  ByteReader r(buf);
  for (auto v : values) EXPECT_EQ(r.get_varint(), v);
}

TEST(Bytes, SignedVarintZigzag) {
  ByteWriter w;
  const std::int64_t values[] = {0, -1, 1, -2, 2, -64, 64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (auto v : values) w.put_svarint(v);
  const auto buf = w.take();
  ByteReader r(buf);
  for (auto v : values) EXPECT_EQ(r.get_svarint(), v);
}

TEST(Bytes, SmallSignedValuesAreOneByte) {
  for (std::int64_t v : {-64ll, -1ll, 0ll, 1ll, 63ll}) {
    ByteWriter w;
    w.put_svarint(v);
    EXPECT_EQ(w.size(), 1u) << v;
  }
}

TEST(Bytes, BlockRoundtrip) {
  std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  ByteWriter w;
  w.put_block(payload);
  w.put_block({});
  const auto buf = w.take();
  ByteReader r(buf);
  const auto b1 = r.get_block();
  EXPECT_EQ(std::vector<std::uint8_t>(b1.begin(), b1.end()), payload);
  EXPECT_TRUE(r.get_block().empty());
}

TEST(Bytes, TruncationThrows) {
  ByteWriter w;
  w.put<std::uint64_t>(42);
  auto buf = w.take();
  buf.resize(4);
  ByteReader r(buf);
  EXPECT_THROW((void)r.get<std::uint64_t>(), std::runtime_error);
}

TEST(Bytes, OverlongVarintThrows) {
  std::vector<std::uint8_t> bad(11, 0x80);  // never-terminated varint
  ByteReader r(bad);
  EXPECT_THROW((void)r.get_varint(), std::runtime_error);
}

TEST(Bytes, RandomizedMixedStream) {
  std::mt19937_64 rng(17);
  ByteWriter w;
  std::vector<std::uint64_t> u;
  std::vector<std::int64_t> s;
  for (int i = 0; i < 1000; ++i) {
    u.push_back(rng() >> (rng() % 64));
    s.push_back(static_cast<std::int64_t>(rng()) >> (rng() % 64));
    w.put_varint(u.back());
    w.put_svarint(s.back());
  }
  const auto buf = w.take();
  ByteReader r(buf);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(r.get_varint(), u[static_cast<std::size_t>(i)]);
    EXPECT_EQ(r.get_svarint(), s[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace qip
