// Unit tests for the qipd serving layer: job parity against the direct
// API, the bounded admission window (block and reject policies), the
// per-job/intra-job scheduling decision, and failure reporting.

#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "compressors/sz3.hpp"
#include "data/synthetic.hpp"
#include "parallel/chunked.hpp"
#include "util/thread_pool.hpp"

namespace qip {
namespace {

Field<float> sample_field(std::size_t edge = 24) {
  return make_field(DatasetId::kMiranda, 0, Dims{edge, edge, edge}, 7);
}

std::vector<std::uint8_t> to_bytes(const float* p, std::size_t n) {
  std::vector<std::uint8_t> b(n * sizeof(float));
  std::memcpy(b.data(), p, b.size());
  return b;
}

serve::JobResult run_one(serve::Service& svc, serve::JobSpec spec) {
  auto fut = svc.submit(std::move(spec));
  EXPECT_TRUE(fut.has_value());
  return fut->get();
}

TEST(Serve, CompressMatchesDirectApi) {
  const Field<float> f = sample_field();
  const auto raw = to_bytes(f.data(), f.size());

  serve::ServeOptions so;
  so.workers = 2;
  serve::Service svc(so);

  serve::JobSpec spec;
  spec.kind = serve::JobKind::kCompress;
  spec.codec = "SZ3";
  spec.input = raw;
  spec.dims = f.dims();
  const serve::JobResult r = run_one(svc, spec);
  ASSERT_TRUE(r.metrics.ok) << r.metrics.error;

  const auto direct =
      find_compressor("SZ3").compress_f32(f.data(), f.dims(), {});
  EXPECT_EQ(r.bytes, direct);
  EXPECT_EQ(r.metrics.input_bytes, raw.size());
  EXPECT_EQ(r.metrics.output_bytes, direct.size());
  EXPECT_GT(r.metrics.cr, 1.0);
  EXPECT_GE(r.metrics.queue_wait_s, 0.0);
  EXPECT_GE(r.metrics.intra_workers, 1u);
}

TEST(Serve, DecompressMatchesDirectApiAndDetectsDtype) {
  const Field<float> f = sample_field();
  const auto& e = find_compressor("QoZ");
  const auto arc = e.compress_f32(f.data(), f.dims(), {});

  serve::Service svc({});
  serve::JobSpec spec;
  spec.kind = serve::JobKind::kDecompress;
  spec.input = arc;
  const serve::JobResult r = run_one(svc, spec);
  ASSERT_TRUE(r.metrics.ok) << r.metrics.error;
  EXPECT_FALSE(r.f64);
  EXPECT_EQ(r.dims, f.dims());

  const Field<float> direct = e.decompress_f32(arc);
  ASSERT_EQ(r.bytes.size(), direct.size() * sizeof(float));
  EXPECT_EQ(0, std::memcmp(r.bytes.data(), direct.data(), r.bytes.size()));
}

TEST(Serve, ChunkedArchivesAreDetectedAndServed) {
  const Field<float> f = sample_field(32);
  ChunkedOptions co;
  co.compressor = "SZ3";
  const auto arc = chunked_compress(f.data(), f.dims(), co);

  serve::ServeOptions so;
  so.workers = 2;
  so.cap_to_hardware = false;  // 1-core CI must still get 2 real workers
  so.large_job_bytes = 1;      // force the intra-job fan-out path
  serve::Service svc(so);
  serve::JobSpec spec;
  spec.kind = serve::JobKind::kDecompress;
  spec.input = arc;
  const serve::JobResult r = run_one(svc, spec);
  ASSERT_TRUE(r.metrics.ok) << r.metrics.error;

  const Field<float> direct = chunked_decompress<float>(arc);
  ASSERT_EQ(r.bytes.size(), direct.size() * sizeof(float));
  EXPECT_EQ(0, std::memcmp(r.bytes.data(), direct.data(), r.bytes.size()));
  EXPECT_EQ(svc.metrics().large_jobs, 1u);
}

TEST(Serve, PreviewAndRegionMatchDirectApi) {
  const Field<float> f = sample_field(32);
  SZ3Config cfg;
  cfg.qp = QPConfig::best_fit();
  cfg.tile_size = 16;
  cfg.auto_fallback = false;
  const auto arc = sz3_compress(f.data(), f.dims(), cfg);
  const auto& e = find_compressor("SZ3");

  serve::Service svc({});
  {
    serve::JobSpec spec;
    spec.kind = serve::JobKind::kPreview;
    spec.input = arc;
    spec.level = 1;
    const serve::JobResult r = run_one(svc, spec);
    ASSERT_TRUE(r.metrics.ok) << r.metrics.error;
    const Field<float> direct = e.decompress_preview_f32(arc, 1, nullptr);
    EXPECT_EQ(r.dims, direct.dims());
    ASSERT_EQ(r.bytes.size(), direct.size() * sizeof(float));
    EXPECT_EQ(0, std::memcmp(r.bytes.data(), direct.data(), r.bytes.size()));
    // A preview's input cost is the prefix it actually read.
    EXPECT_LT(r.metrics.input_bytes, arc.size());
  }
  {
    serve::JobSpec spec;
    spec.kind = serve::JobKind::kRegion;
    spec.input = arc;
    spec.region = Box::whole(f.dims());
    for (int a = 0; a < 3; ++a) {
      spec.region.lo[a] = 4;
      spec.region.hi[a] = 20;
    }
    const serve::JobResult r = run_one(svc, spec);
    ASSERT_TRUE(r.metrics.ok) << r.metrics.error;
    const Field<float> direct =
        e.decompress_region_f32(arc, spec.region, nullptr);
    EXPECT_EQ(r.dims, direct.dims());
    ASSERT_EQ(r.bytes.size(), direct.size() * sizeof(float));
    EXPECT_EQ(0, std::memcmp(r.bytes.data(), direct.data(), r.bytes.size()));
  }
}

TEST(Serve, F64RoundtripThroughService) {
  Field<double> f(Dims{16, 16, 16});
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = 0.25 * static_cast<double>(i % 97);
  std::vector<std::uint8_t> raw(f.size() * sizeof(double));
  std::memcpy(raw.data(), f.data(), raw.size());

  serve::Service svc({});
  serve::JobSpec c;
  c.kind = serve::JobKind::kCompress;
  c.codec = "SZ3";
  c.input = raw;
  c.dims = f.dims();
  c.f64 = true;
  const serve::JobResult arc = run_one(svc, c);
  ASSERT_TRUE(arc.metrics.ok) << arc.metrics.error;

  serve::JobSpec d;
  d.kind = serve::JobKind::kDecompress;
  d.input = arc.bytes;
  const serve::JobResult rec = run_one(svc, d);
  ASSERT_TRUE(rec.metrics.ok) << rec.metrics.error;
  EXPECT_TRUE(rec.f64);
  EXPECT_EQ(rec.dims, f.dims());
}

TEST(Serve, RejectPolicyShedsLoadWhenWindowIsFull) {
  // Deterministic saturation: the service borrows a single-worker pool
  // whose worker is parked on a promise, so the one admitted job can
  // never start until we release it.
  ThreadPool pool(1);
  std::promise<void> release;
  auto blocker = pool.submit([&] { release.get_future().wait(); });

  serve::ServeOptions so;
  so.pool = &pool;
  so.queue_capacity = 1;
  so.policy = serve::AdmitPolicy::kReject;
  serve::Service svc(so);

  const Field<float> f = sample_field(8);
  const auto raw = to_bytes(f.data(), f.size());
  serve::JobSpec spec;
  spec.kind = serve::JobKind::kCompress;
  spec.input = raw;
  spec.dims = f.dims();

  auto admitted = svc.submit(spec);
  ASSERT_TRUE(admitted.has_value());
  auto rejected = svc.submit(spec);
  EXPECT_FALSE(rejected.has_value());

  release.set_value();
  blocker.get();
  ASSERT_TRUE(admitted->get().metrics.ok);

  const serve::ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.submitted, 2u);
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.failed, 0u);
}

TEST(Serve, BlockPolicyWaitsForSpaceInsteadOfRejecting) {
  ThreadPool pool(1);
  std::promise<void> release;
  auto blocker = pool.submit([&] { release.get_future().wait(); });

  serve::ServeOptions so;
  so.pool = &pool;
  so.queue_capacity = 1;
  so.policy = serve::AdmitPolicy::kBlock;
  serve::Service svc(so);

  const Field<float> f = sample_field(8);
  const auto raw = to_bytes(f.data(), f.size());
  serve::JobSpec spec;
  spec.kind = serve::JobKind::kCompress;
  spec.input = raw;
  spec.dims = f.dims();

  auto first = svc.submit(spec);
  ASSERT_TRUE(first.has_value());

  std::atomic<bool> second_admitted{false};
  std::thread submitter([&] {
    auto second = svc.submit(spec);
    second_admitted.store(true);
    ASSERT_TRUE(second.has_value());
    ASSERT_TRUE(second->get().metrics.ok);
  });
  // The window is full, so the submitter must still be blocked.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_admitted.load());

  release.set_value();
  blocker.get();
  submitter.join();
  EXPECT_TRUE(second_admitted.load());
  EXPECT_EQ(svc.metrics().completed, 2u);
  EXPECT_EQ(svc.metrics().rejected, 0u);
}

TEST(Serve, FailuresResolveTheFutureWithErrorNotThrow) {
  serve::Service svc({});
  const std::vector<std::uint8_t> garbage = {9, 9, 9, 9, 9, 9, 9, 9};
  serve::JobSpec spec;
  spec.kind = serve::JobKind::kDecompress;
  spec.input = garbage;
  const serve::JobResult r = run_one(svc, spec);
  EXPECT_FALSE(r.metrics.ok);
  EXPECT_FALSE(r.metrics.error.empty());
  EXPECT_EQ(svc.metrics().failed, 1u);
}

TEST(Serve, OutputCapRefusesBombArchives) {
  const Field<float> f = sample_field(16);
  const auto arc = find_compressor("SZ3").compress_f32(f.data(), f.dims(), {});
  serve::ServeOptions so;
  so.max_output_bytes = 64;  // way below the 16^3 output
  serve::Service svc(so);
  serve::JobSpec spec;
  spec.kind = serve::JobKind::kDecompress;
  spec.input = arc;
  const serve::JobResult r = run_one(svc, spec);
  EXPECT_FALSE(r.metrics.ok);
  EXPECT_NE(r.metrics.error.find("output cap"), std::string::npos);
}

TEST(Serve, SmallJobsStayWidthOneLargeJobsFanOut) {
  const Field<float> f = sample_field(32);
  const auto raw = to_bytes(f.data(), f.size());

  serve::ServeOptions so;
  so.workers = 2;
  so.cap_to_hardware = false;
  so.large_job_bytes = raw.size() + 1;  // everything is "small"
  serve::Service svc(so);
  serve::JobSpec spec;
  spec.kind = serve::JobKind::kCompress;
  spec.input = raw;
  spec.dims = f.dims();
  EXPECT_EQ(run_one(svc, spec).metrics.intra_workers, 1u);
  EXPECT_EQ(svc.metrics().large_jobs, 0u);

  serve::ServeOptions so2 = so;
  so2.large_job_bytes = 1;  // everything is "large"
  serve::Service svc2(so2);
  EXPECT_GT(run_one(svc2, spec).metrics.intra_workers, 1u);
  EXPECT_EQ(svc2.metrics().large_jobs, 1u);
}

TEST(Serve, DrainWaitsForAllAdmittedJobs) {
  const Field<float> f = sample_field(16);
  const auto raw = to_bytes(f.data(), f.size());
  serve::ServeOptions so;
  so.workers = 2;
  serve::Service svc(so);

  std::vector<std::future<serve::JobResult>> futs;
  for (int i = 0; i < 12; ++i) {
    serve::JobSpec spec;
    spec.kind = serve::JobKind::kCompress;
    spec.input = raw;
    spec.dims = f.dims();
    auto fut = svc.submit(std::move(spec));
    ASSERT_TRUE(fut.has_value());
    futs.push_back(std::move(*fut));
  }
  svc.drain();
  for (auto& fut : futs)
    EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  EXPECT_EQ(svc.metrics().completed, 12u);
}

}  // namespace
}  // namespace qip
