// Unit tests for the Field container.

#include "util/field.hpp"

#include <gtest/gtest.h>

namespace qip {
namespace {

TEST(Field, ConstructZeroInitialized) {
  Field<float> f(Dims{3, 4});
  EXPECT_EQ(f.size(), 12u);
  for (std::size_t i = 0; i < f.size(); ++i) EXPECT_EQ(f[i], 0.f);
}

TEST(Field, AtMatchesLinearIndexing) {
  Field<int> f(Dims{2, 3, 4});
  int v = 0;
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = v++;
  EXPECT_EQ(f.at(0, 0, 0), 0);
  EXPECT_EQ(f.at(0, 0, 3), 3);
  EXPECT_EQ(f.at(0, 1, 0), 4);
  EXPECT_EQ(f.at(1, 2, 3), 23);
}

TEST(Field, AdoptVector) {
  std::vector<double> data{1, 2, 3, 4, 5, 6};
  Field<double> f(Dims{2, 3}, std::move(data));
  EXPECT_EQ(f.at(1, 2), 6.0);
}

TEST(Field, CloneIsDeep) {
  Field<float> f(Dims{4});
  f[0] = 1.f;
  Field<float> g = f.clone();
  g[0] = 2.f;
  EXPECT_EQ(f[0], 1.f);
  EXPECT_EQ(g[0], 2.f);
}

TEST(Field, SpanIsReadOnlyViewOfAll) {
  Field<float> f(Dims{5});
  for (std::size_t i = 0; i < 5; ++i) f[i] = static_cast<float>(i);
  const auto s = f.span();
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s[4], 4.f);
  static_assert(std::is_same_v<decltype(s), const std::span<const float>>);
}

TEST(Field, ConstAccess) {
  const Field<int> f(Dims{2, 2}, std::vector<int>{1, 2, 3, 4});
  EXPECT_EQ(f.at(1, 1), 4);
  EXPECT_EQ(f[0], 1);
  EXPECT_NE(f.data(), nullptr);
}

}  // namespace
}  // namespace qip
