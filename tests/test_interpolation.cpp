// Unit tests for the 1-D interpolation kernels.

#include "predict/interpolation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qip {
namespace {

TEST(Interpolation, LinearMidpoint) {
  EXPECT_DOUBLE_EQ(interp_linear(2.0, 4.0), 3.0);
  EXPECT_FLOAT_EQ(interp_linear(-1.f, 1.f), 0.f);
}

TEST(Interpolation, CubicExactOnCubicPolynomial) {
  // Samples of p(t) = t^3 - 2t^2 + 3t - 1 at t = -3, -1, +1, +3 must
  // reproduce p(0) = -1 exactly (4-point cubic is exact for degree 3).
  auto p = [](double t) { return t * t * t - 2 * t * t + 3 * t - 1; };
  const double pred = interp_cubic(p(-3), p(-1), p(1), p(3));
  EXPECT_NEAR(pred, p(0), 1e-12);
}

TEST(Interpolation, CubicWeightsSumToOne) {
  // Constant signals are preserved by any valid interpolant.
  EXPECT_DOUBLE_EQ(interp_cubic(5.0, 5.0, 5.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(interp_quad(5.0, 5.0, 5.0), 5.0);
}

TEST(Interpolation, QuadExactOnQuadratic) {
  // interp_quad(a, b, c) fits samples at +1 (a), -1 (b), -3 (c) and
  // evaluates at 0.
  auto p = [](double t) { return 2 * t * t - t + 4; };
  const double pred = interp_quad(p(1), p(-1), p(-3));
  EXPECT_NEAR(pred, p(0), 1e-12);
}

TEST(Interpolation, CubicBeatsLinearOnSmoothSignal) {
  auto f = [](double t) { return std::sin(0.4 * t); };
  double err_cubic = 0, err_linear = 0;
  for (double t0 = 0; t0 < 50; t0 += 1.0) {
    err_cubic += std::abs(interp_cubic(f(t0 - 3), f(t0 - 1), f(t0 + 1),
                                       f(t0 + 3)) -
                          f(t0));
    err_linear += std::abs(interp_linear(f(t0 - 1), f(t0 + 1)) - f(t0));
  }
  EXPECT_LT(err_cubic, err_linear);
}

TEST(Interpolation, KindEnumStable) {
  // Serialized into archives; the numeric values must not drift.
  EXPECT_EQ(static_cast<int>(InterpKind::kLinear), 0);
  EXPECT_EQ(static_cast<int>(InterpKind::kCubic), 1);
}

}  // namespace
}  // namespace qip
