// Engine-level tests: encode/decode symmetry across plans (seq, md,
// blockwise), bound enforcement, QP transparency at the engine level,
// and the tuning samplers.

#include "compressors/interp_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "predict/multilevel.hpp"
#include "util/field.hpp"

namespace qip {
namespace {

Field<float> waves(Dims dims, unsigned seed = 7) {
  Field<float> f(dims);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> ph(0.f, 6.f);
  const float p1 = ph(rng), p2 = ph(rng);
  for (std::size_t z = 0; z < dims.extent(0); ++z)
    for (std::size_t y = 0; y < dims.extent(1); ++y)
      for (std::size_t x = 0; x < dims.extent(2); ++x)
        for (std::size_t w = 0; w < dims.extent(3); ++w)
          f[dims.index(z, y, x, w)] =
              std::sin(0.11f * z + p1) * std::cos(0.07f * y + p2) +
              0.5f * std::sin(0.13f * (x + w));
  return f;
}

/// Roundtrip helper: encode a copy, serialize the quantizer, decode, and
/// check bitwise match with the encoder's reconstruction plus the bound.
void roundtrip(const Field<float>& f, const InterpPlan& plan, double eb,
               const QPConfig& qp) {
  Field<float> work = f.clone();
  LinearQuantizer<float> enc(eb);
  const auto res =
      InterpEngine<float>::encode(work.data(), f.dims(), plan, eb, enc, qp);
  ASSERT_EQ(res.symbols.size(), f.size());

  ByteWriter w;
  enc.save(w);
  const auto buf = w.bytes();
  ByteReader r(buf);
  LinearQuantizer<float> dec(0.0);
  dec.load(r);
  Field<float> out(f.dims());
  InterpEngine<float>::decode(res.symbols, f.dims(), plan, eb, dec,
                              qp, out.data());
  for (std::size_t i = 0; i < f.size(); ++i) {
    ASSERT_EQ(out[i], work[i]) << "decoder diverged @" << i;
    ASSERT_LE(std::abs(out[i] - f[i]), eb * (1 + 1e-9)) << "@" << i;
  }
}

TEST(InterpEngine, SeqRoundtripVariousShapes) {
  for (Dims dims : {Dims{33}, Dims{20, 31}, Dims{17, 18, 19},
                    Dims{6, 7, 8, 9}}) {
    const auto f = waves(dims);
    const InterpPlan plan =
        InterpPlan::uniform(interpolation_level_count(dims), LevelPlan{});
    roundtrip(f, plan, 1e-3, QPConfig{});
  }
}

TEST(InterpEngine, MdRoundtripVariousShapes) {
  LevelPlan lp;
  lp.md = true;
  for (Dims dims : {Dims{20, 31}, Dims{17, 18, 19}, Dims{6, 7, 8, 9}}) {
    const auto f = waves(dims);
    const InterpPlan plan =
        InterpPlan::uniform(interpolation_level_count(dims), lp);
    roundtrip(f, plan, 1e-3, QPConfig{});
  }
}

TEST(InterpEngine, LinearKindAndReversedOrder) {
  LevelPlan lp;
  lp.kind = InterpKind::kLinear;
  lp.order = {2, 1, 0, 3};
  const auto f = waves(Dims{21, 22, 23});
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), lp);
  roundtrip(f, plan, 5e-4, QPConfig{});
}

TEST(InterpEngine, PerLevelEbScalesRespectTightestBound) {
  // Scales <= 1 everywhere means the global bound holds a fortiori.
  const auto f = waves(Dims{40, 40, 40});
  InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  for (std::size_t l = 0; l < plan.levels.size(); ++l)
    plan.levels[l].eb_scale = 1.0 / (1 << std::min<std::size_t>(l, 4));
  roundtrip(f, plan, 1e-3, QPConfig{});
}

TEST(InterpEngine, BlockwiseRoundtripWithMixedChoices) {
  const auto f = waves(Dims{40, 40, 40});
  const int levels = interpolation_level_count(f.dims());
  InterpPlan plan = InterpPlan::uniform(levels, LevelPlan{});
  plan.block_size = 16;
  LevelPlan md;
  md.md = true;
  LevelPlan rev;
  rev.order = {2, 1, 0, 3};
  LevelPlan lin;
  lin.kind = InterpKind::kLinear;
  plan.candidates = {LevelPlan{}, md, rev, lin};
  plan.level_blockwise.assign(static_cast<std::size_t>(levels), 0);
  plan.block_choice.resize(static_cast<std::size_t>(levels));
  const std::size_t nblocks = 3 * 3 * 3;  // ceil(40/16)^3
  for (int l = 1; l <= levels; ++l) {
    auto& bc = plan.block_choice[static_cast<std::size_t>(l - 1)];
    bc.resize(nblocks);
    for (std::size_t b = 0; b < nblocks; ++b)
      bc[b] = static_cast<std::uint8_t>((b + l) % plan.candidates.size());
    if (l <= 2) plan.level_blockwise[static_cast<std::size_t>(l - 1)] = 1;
  }
  roundtrip(f, plan, 1e-3, QPConfig{});
  roundtrip(f, plan, 1e-3, QPConfig::best_fit());
}

TEST(InterpEngine, QPIsTransparentToReconstruction) {
  const auto f = waves(Dims{32, 36, 28});
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  Field<float> w0 = f.clone(), w1 = f.clone();
  LinearQuantizer<float> q0(1e-3), q1(1e-3);
  (void)InterpEngine<float>::encode(w0.data(), f.dims(), plan, 1e-3, q0,
                                    QPConfig{});
  (void)InterpEngine<float>::encode(w1.data(), f.dims(), plan, 1e-3, q1,
                                    QPConfig::best_fit());
  for (std::size_t i = 0; i < f.size(); ++i)
    ASSERT_EQ(w0[i], w1[i]) << "QP changed the reconstruction @" << i;
}

TEST(InterpEngine, QPRoundtripAllConfigs) {
  const auto f = waves(Dims{24, 26, 28});
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  for (auto d : {QPDimension::k1DBack, QPDimension::k1DTop,
                 QPDimension::k1DLeft, QPDimension::k2D, QPDimension::k3D}) {
    for (auto c : {QPCondition::kCaseI, QPCondition::kCaseIII}) {
      QPConfig qp;
      qp.enabled = true;
      qp.dimension = d;
      qp.condition = c;
      qp.max_level = 99;
      roundtrip(f, plan, 1e-3, qp);
    }
  }
}

TEST(InterpEngine, SpatialArtifactsShapeAndContent) {
  const auto f = waves(Dims{16, 16, 16});
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  Field<float> w = f.clone();
  LinearQuantizer<float> q(1e-3);
  const auto res = InterpEngine<float>::encode(w.data(), f.dims(), plan, 1e-3,
                                               q, QPConfig{}, true);
  ASSERT_EQ(res.codes.size(), f.size());
  ASSERT_EQ(res.symbols_spatial.size(), f.size());
  // Without QP, the spatial symbols are a pure re-arrangement of the
  // stream: same multiset.
  auto a = res.symbols;
  auto b = res.symbols_spatial;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(InterpEngine, SampleCostRanksPredictorsSanely) {
  // On a smooth field, cubic should cost less than linear at level 1.
  const auto f = waves(Dims{48, 48, 48});
  LevelPlan cubic;
  LevelPlan linear;
  linear.kind = InterpKind::kLinear;
  const double cc = InterpEngine<float>::level_cost_sample(f.data(), f.dims(),
                                                           1, cubic, 1e-4, 3);
  const double cl = InterpEngine<float>::level_cost_sample(f.data(), f.dims(),
                                                           1, linear, 1e-4, 3);
  EXPECT_LT(cc, cl);
}

TEST(InterpEngine, ExtremeErrorBounds) {
  const auto f = waves(Dims{20, 20, 20});
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(f.dims()), LevelPlan{});
  roundtrip(f, plan, 10.0, QPConfig::best_fit());   // everything quantizes to 0
  roundtrip(f, plan, 1e-7, QPConfig::best_fit());   // outlier-heavy regime
}

}  // namespace
}  // namespace qip
