// Worker-count byte-identity for the parallel interpolation level walk.
//
// The contract under test: with a pool attached, InterpEngine's stage
// walk partitions each pass into contiguous blocks with precomputed
// symbol-cursor offsets, so the symbol stream, the outlier stream, the
// reconstruction, and therefore the archive bytes are identical at
// every worker count — and identical to the forced-sequential walk
// (`QIP_INTERP_FORCE_SEQ=1`). The matrix covers ranks 1-4, QP on/off,
// f32/f64, SIMD tiers, and worker counts {1, 2, 4, 7}; the pools are
// built with cap_to_hardware=false so the sweep is meaningful on
// single-CPU CI containers.

#include "compressors/interp_engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <future>
#include <vector>

#include "compressors/hpez.hpp"
#include "compressors/qoz.hpp"
#include "compressors/registry.hpp"
#include "compressors/sz3.hpp"
#include "predict/multilevel.hpp"
#include "serve/service.hpp"
#include "simd/dispatch.hpp"
#include "util/field.hpp"
#include "util/thread_pool.hpp"

namespace qip {
namespace {

constexpr unsigned kWorkerSweep[] = {1, 2, 4, 7};

// Smooth multi-frequency field over any rank; deterministic.
template <class T>
Field<T> wave(const Dims& dims, unsigned seed = 11) {
  Field<T> f(dims);
  const double p = 0.37 * seed;
  std::array<std::size_t, kMaxRank> c{};
  for (c[0] = 0; c[0] < dims.extent(0); ++c[0])
    for (c[1] = 0; c[1] < dims.extent(1); ++c[1])
      for (c[2] = 0; c[2] < dims.extent(2); ++c[2])
        for (c[3] = 0; c[3] < dims.extent(3); ++c[3]) {
          const double r = 0.21 * static_cast<double>(c[0]) +
                           0.13 * static_cast<double>(c[1]) +
                           0.08 * static_cast<double>(c[2]) +
                           0.05 * static_cast<double>(c[3]);
          f[dims.index(c[0], c[1], c[2], c[3])] =
              static_cast<T>(std::sin(r + p) + 0.4 * std::cos(2.3 * r));
        }
  return f;
}

/// RAII for the QIP_INTERP_FORCE_SEQ override: 1 = force the
/// sequential walk, 0 = allow the parallel walk regardless of env.
struct ForceSeqGuard {
  explicit ForceSeqGuard(int v) { set_interp_force_seq_override(v); }
  ~ForceSeqGuard() { set_interp_force_seq_override(-1); }
};

struct ScalarGuard {
  ScalarGuard() { simd::set_force_scalar_override(1); }
  ~ScalarGuard() { simd::set_force_scalar_override(-1); }
};

struct TierGuard {
  explicit TierGuard(simd::Tier t) {
    simd::set_tier_cap_override(static_cast<int>(t));
  }
  ~TierGuard() { simd::set_tier_cap_override(-1); }
};

template <class T>
std::vector<std::uint8_t> quant_bytes(LinearQuantizer<T>& q) {
  ByteWriter w;
  q.save(w);
  return w.bytes();
}

template <class T>
void expect_same_scalars(const T* a, const T* b, std::size_t n,
                         const char* what) {
  ASSERT_EQ(std::memcmp(a, b, n * sizeof(T)), 0) << what;
}

/// One cell of the matrix: encode + decode the field with every worker
/// count and require bit-identity with the forced-sequential oracle.
template <class T>
void engine_worker_invariance(const Dims& dims, const QPConfig& qp,
                              const LevelPlan& lp = LevelPlan{}) {
  const auto f = wave<T>(dims, 11 + static_cast<unsigned>(dims.rank()));
  const double eb = 1e-3;
  const InterpPlan plan =
      InterpPlan::uniform(interpolation_level_count(dims), lp);

  // Oracle: forced-sequential walk. A pool is attached so the test
  // proves the gate (not pool absence) selects the sequential path.
  Field<T> work_seq = f.clone();
  LinearQuantizer<T> quant_seq(eb);
  std::vector<std::uint32_t> sym_seq;
  {
    ForceSeqGuard g(1);
    ThreadPool pool(2, /*cap_to_hardware=*/false);
    sym_seq = InterpEngine<T>::encode(work_seq.data(), dims, plan, eb,
                                      quant_seq, qp, false, nullptr, nullptr,
                                      &pool)
                  .symbols;
  }
  const auto oq = quant_bytes(quant_seq);

  // The no-pool walk must match the forced-seq walk exactly.
  {
    Field<T> w0 = f.clone();
    LinearQuantizer<T> q0(eb);
    const auto r0 =
        InterpEngine<T>::encode(w0.data(), dims, plan, eb, q0, qp);
    ASSERT_EQ(r0.symbols, sym_seq) << "no-pool encode diverged";
    ASSERT_EQ(quant_bytes(q0), oq) << "no-pool outliers diverged";
    expect_same_scalars(w0.data(), work_seq.data(), f.size(),
                        "no-pool reconstruction");
  }

  for (unsigned nw : kWorkerSweep) {
    SCOPED_TRACE(::testing::Message() << "rank=" << dims.rank()
                                      << " workers=" << nw
                                      << " qp=" << qp.enabled);
    ForceSeqGuard g(0);
    ThreadPool pool(nw, /*cap_to_hardware=*/false);

    Field<T> wp = f.clone();
    LinearQuantizer<T> qpar(eb);
    const auto res = InterpEngine<T>::encode(wp.data(), dims, plan, eb, qpar,
                                             qp, false, nullptr, nullptr,
                                             &pool);
    ASSERT_EQ(res.symbols, sym_seq) << "parallel symbols diverged";
    ASSERT_EQ(quant_bytes(qpar), oq) << "parallel outliers diverged";
    expect_same_scalars(wp.data(), work_seq.data(), f.size(),
                        "parallel reconstruction");
    // Anti-vacuity: with >1 worker the stage walk must actually have
    // fanned out (md plans are the documented exception: their stages
    // take the generic walk, so the pool stays idle).
    if (nw > 1 && !lp.md) {
      EXPECT_GT(pool.scheduler_stats().pf_blocks, 0u)
          << "parallel path never engaged; byte-identity was vacuous";
    }

    // Decode fan-out: recover through the pool and compare bitwise
    // against the encoder's reconstruction.
    ByteReader r(oq);
    LinearQuantizer<T> dq(0.0);
    dq.load(r);
    Field<T> out(dims);
    InterpEngine<T>::decode(sym_seq, dims, plan, eb, dq, qp, out.data(),
                            nullptr, /*stop_level=*/1, &pool);
    expect_same_scalars(out.data(), work_seq.data(), f.size(),
                        "parallel decode");
  }
}

// Stage totals must clear kParMinPoints (32768) for the parallel path
// to engage, so every shape here carries >= 128k points.
TEST(InterpParallel, Rank1BytesWorkerInvariant) {
  engine_worker_invariance<float>(Dims{1u << 17}, QPConfig{});
  engine_worker_invariance<double>(Dims{1u << 17}, QPConfig::best_fit());
}

TEST(InterpParallel, Rank2BytesWorkerInvariant) {
  engine_worker_invariance<double>(Dims{384, 384}, QPConfig{});
  engine_worker_invariance<float>(Dims{384, 384}, QPConfig::best_fit());
}

TEST(InterpParallel, Rank3BytesWorkerInvariant) {
  engine_worker_invariance<float>(Dims{64, 64, 48}, QPConfig{});
  engine_worker_invariance<double>(Dims{64, 64, 48}, QPConfig::best_fit());
}

TEST(InterpParallel, Rank4BytesWorkerInvariant) {
  engine_worker_invariance<double>(Dims{16, 16, 24, 24}, QPConfig{});
  engine_worker_invariance<float>(Dims{16, 16, 24, 24}, QPConfig::best_fit());
}

TEST(InterpParallel, LinearKindAndMdPlansWorkerInvariant) {
  LevelPlan linear;
  linear.kind = InterpKind::kLinear;
  engine_worker_invariance<float>(Dims{64, 64, 48}, QPConfig::best_fit(),
                                  linear);
  // md stages take the generic walk (the gate requires md_mask == 0);
  // pool attachment must still be a no-op for the bytes.
  LevelPlan md;
  md.md = true;
  engine_worker_invariance<float>(Dims{64, 64, 48}, QPConfig::best_fit(), md);
}

TEST(InterpParallel, SimdTiersWorkerInvariant) {
  {
    ScalarGuard g;
    engine_worker_invariance<float>(Dims{64, 64, 48}, QPConfig::best_fit());
  }
  if (simd::tier_compiled(simd::Tier::kAVX2)) {
    TierGuard g(simd::Tier::kAVX2);
    engine_worker_invariance<float>(Dims{64, 64, 48}, QPConfig::best_fit());
  }
}

// ---------------------------------------------------------------------
// Codec-level: whole archives (symbols + outliers + entropy stage) are
// worker-invariant, tiled and untiled, and pooled decompression matches.

template <class Compress, class Decompress>
void archive_worker_invariance(Compress compress, Decompress decompress) {
  std::vector<std::uint8_t> oracle;
  {
    ForceSeqGuard g(1);
    ThreadPool pool(2, /*cap_to_hardware=*/false);
    oracle = compress(&pool);
  }
  Field<float> ref;
  {
    ForceSeqGuard g(1);
    ref = decompress(oracle, nullptr);
  }
  for (unsigned nw : kWorkerSweep) {
    SCOPED_TRACE(::testing::Message() << "workers=" << nw);
    ForceSeqGuard g(0);
    ThreadPool pool(nw, /*cap_to_hardware=*/false);
    EXPECT_EQ(compress(&pool), oracle) << "archive bytes diverged";
    const Field<float> dec = decompress(oracle, &pool);
    ASSERT_EQ(dec.dims(), ref.dims());
    expect_same_scalars(dec.data(), ref.data(), ref.size(),
                        "pooled decompression");
  }
}

TEST(InterpParallel, SZ3ArchiveWorkerInvariant) {
  const auto f = wave<float>(Dims{64, 64, 64}, 5);
  for (std::size_t tile : {std::size_t{0}, std::size_t{16}}) {
    SCOPED_TRACE(::testing::Message() << "tile=" << tile);
    SZ3Config cfg;
    cfg.error_bound = 1e-3;
    cfg.qp = QPConfig::best_fit();
    cfg.auto_fallback = false;  // pin the interpolation path
    cfg.tile_size = tile;
    archive_worker_invariance(
        [&](ThreadPool* pool) {
          SZ3Config c = cfg;
          c.pool = pool;
          return sz3_compress(f.data(), f.dims(), c);
        },
        [](std::span<const std::uint8_t> arc, ThreadPool* pool) {
          return sz3_decompress<float>(arc, pool);
        });
  }
}

TEST(InterpParallel, QoZArchiveWorkerInvariant) {
  const auto f = wave<float>(Dims{64, 64, 64}, 6);
  QoZConfig cfg;
  cfg.error_bound = 1e-3;
  cfg.qp = QPConfig::best_fit();
  archive_worker_invariance(
      [&](ThreadPool* pool) {
        QoZConfig c = cfg;
        c.pool = pool;
        return qoz_compress(f.data(), f.dims(), c);
      },
      [](std::span<const std::uint8_t> arc, ThreadPool* pool) {
        return qoz_decompress<float>(arc, pool);
      });
}

TEST(InterpParallel, HPEZArchiveWorkerInvariant) {
  const auto f = wave<float>(Dims{64, 64, 64}, 7);
  HPEZConfig cfg;
  cfg.error_bound = 1e-3;
  cfg.tile_size = 16;  // tiled: block tuning yields to the tile grid
  archive_worker_invariance(
      [&](ThreadPool* pool) {
        HPEZConfig c = cfg;
        c.pool = pool;
        return hpez_compress(f.data(), f.dims(), c);
      },
      [](std::span<const std::uint8_t> arc, ThreadPool* pool) {
        return hpez_decompress<float>(arc, pool);
      });
}

// Pooled preview/region closures must be bit-identical to the plain
// ones (the fan-out over per-chunk Huffman decodes and per-tile
// regions must not change a single scalar).
TEST(InterpParallel, PooledPartialDecodesMatchPlain) {
  const auto f = wave<float>(Dims{64, 64, 64}, 8);
  QoZConfig cfg;
  cfg.error_bound = 1e-3;
  cfg.qp = QPConfig::best_fit();
  cfg.tile_size = 16;
  const auto arc = qoz_compress(f.data(), f.dims(), cfg);
  const auto& e = find_compressor("QoZ");

  Box box = Box::whole(f.dims());
  for (int a = 0; a < 3; ++a) {
    box.lo[a] = static_cast<std::size_t>(8 + 3 * a);
    box.hi[a] = static_cast<std::size_t>(40 + 5 * a);
  }
  const Field<float> prev_plain = e.decompress_preview_f32(arc, 2, nullptr);
  const Field<float> reg_plain = e.decompress_region_f32(arc, box, nullptr);

  for (unsigned nw : kWorkerSweep) {
    SCOPED_TRACE(::testing::Message() << "workers=" << nw);
    ThreadPool pool(nw, /*cap_to_hardware=*/false);
    const Field<float> prev =
        e.decompress_preview_pool_f32(arc, 2, nullptr, &pool);
    expect_same_scalars(prev.data(), prev_plain.data(), prev_plain.size(),
                        "pooled preview");
    const Field<float> reg =
        e.decompress_region_pool_f32(arc, box, nullptr, &pool);
    expect_same_scalars(reg.data(), reg_plain.data(), reg_plain.size(),
                        "pooled region");
  }
}

// ---------------------------------------------------------------------
// Serving: concurrent large jobs all ride the parallel walk (this is
// the TSan stress for worker-shared engine state), and a lone large
// job must report intra-job fan-out.

TEST(InterpParallel, ServiceConcurrentParallelWalkJobs) {
  const auto f = wave<float>(Dims{64, 64, 64}, 21);
  SZ3Config cfg;
  cfg.error_bound = 1e-3;
  cfg.qp = QPConfig::best_fit();
  cfg.auto_fallback = false;
  const auto arc = sz3_compress(f.data(), f.dims(), cfg);
  const Field<float> ref = sz3_decompress<float>(arc);

  serve::ServeOptions so;
  so.workers = 4;
  so.cap_to_hardware = false;
  so.large_job_bytes = 1;  // every job fans out through the level walk
  serve::Service svc(so);

  std::vector<std::future<serve::JobResult>> futs;
  for (int i = 0; i < 8; ++i) {
    serve::JobSpec spec;
    spec.kind = serve::JobKind::kDecompress;
    spec.input = arc;
    auto fut = svc.submit(spec);
    ASSERT_TRUE(fut.has_value());
    futs.push_back(std::move(*fut));
  }
  for (auto& fu : futs) {
    serve::JobResult r = fu.get();
    ASSERT_TRUE(r.metrics.ok) << r.metrics.error;
    ASSERT_EQ(r.dims, f.dims());
    ASSERT_EQ(r.bytes.size(), ref.size() * sizeof(float));
    EXPECT_EQ(std::memcmp(r.bytes.data(), ref.data(), r.bytes.size()), 0);
  }
  svc.drain();

  // Uncontended large job: the slab share is the whole pool, so the
  // walk must actually report multi-worker fan-out.
  serve::JobSpec spec;
  spec.kind = serve::JobKind::kDecompress;
  spec.input = arc;
  auto fut = svc.submit(spec);
  ASSERT_TRUE(fut.has_value());
  const serve::JobResult r = fut->get();
  ASSERT_TRUE(r.metrics.ok) << r.metrics.error;
  EXPECT_GT(r.metrics.intra_workers, 1u);
  EXPECT_EQ(std::memcmp(r.bytes.data(), ref.data(), r.bytes.size()), 0);
}

}  // namespace
}  // namespace qip
