#pragma once

// Data-domain Lorenzo predictors (Ibarria et al. 2003), used by:
//  * the SZ3-like compressor's low-error-bound fallback path (the paper's
//    "SZ3 switches to the multidimensional Lorenzo predictor"), and
//  * the quantization-index predictor in src/core/qp.hpp, which applies
//    the same stencils to integer quantization indices on stage grids.
//
// The prediction is the value the unique multivariate polynomial fitted to
// the processed corner neighbors takes at the current point; analytically
// it is an alternating-sign sum of the neighbors (paper Fig. 6).

#include <cstddef>

#include "util/dims.hpp"

namespace qip {

/// 1-D Lorenzo: previous value along one axis.
template <class T>
T lorenzo1(const T* p, std::size_t s0) {
  return p[-static_cast<std::ptrdiff_t>(s0)];
}

/// 2-D Lorenzo: f(x-1,y) + f(x,y-1) - f(x-1,y-1).
template <class T>
T lorenzo2(const T* p, std::size_t s0, std::size_t s1) {
  const auto d0 = static_cast<std::ptrdiff_t>(s0);
  const auto d1 = static_cast<std::ptrdiff_t>(s1);
  return p[-d0] + p[-d1] - p[-d0 - d1];
}

/// 3-D Lorenzo: alternating-sign sum over the 7 processed cube corners.
template <class T>
T lorenzo3(const T* p, std::size_t s0, std::size_t s1, std::size_t s2) {
  const auto d0 = static_cast<std::ptrdiff_t>(s0);
  const auto d1 = static_cast<std::ptrdiff_t>(s1);
  const auto d2 = static_cast<std::ptrdiff_t>(s2);
  return p[-d0] + p[-d1] + p[-d2] - p[-d0 - d1] - p[-d0 - d2] -
         p[-d1 - d2] + p[-d0 - d1 - d2];
}

}  // namespace qip
