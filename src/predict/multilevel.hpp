#pragma once

// Multilevel interpolation traversal (paper Sec. IV-A).
//
// SZ3-style compressors process a field level by level, coarse to fine:
// at level `l` (1-based, 1 = finest) the grid spacing is s = 2^(l-1), and
// the points on the s-grid are predicted from the already-processed
// 2s-grid, one axis ("direction") at a time. Within a level, the stage for
// the k-th axis in the direction order predicts points whose coordinate
// along that axis is an odd multiple of s, whose coordinates along
// already-done axes are any multiple of s, and whose coordinates along
// pending axes are multiples of 2s. This module enumerates those stage
// grids and exposes the per-stage linear strides that both the value
// interpolators and the quantization-index predictor (core/qp.hpp) need:
// the stage-grid spacing in the orthogonal plane is exactly the paper's
// observed 2x2 / 1x2 / 1x1 clustering strides.

#include <array>
#include <cmath>
#include <span>

#include "util/dims.hpp"

namespace qip {

/// Number of interpolation levels for a field: smallest L with 2^L >= the
/// largest extent, so that the coarsest known grid contains only the
/// origin.
inline int interpolation_level_count(const Dims& dims) {
  int levels = 1;
  while ((std::size_t{1} << levels) < dims.max_extent()) ++levels;
  return levels;
}

/// Per-axis iteration pattern of one (level, direction) stage.
struct StageGrid {
  std::array<std::size_t, kMaxRank> start{};  ///< first coordinate per axis
  std::array<std::size_t, kMaxRank> step{};   ///< coordinate step per axis
  std::size_t stride = 1;                     ///< level grid spacing s
  int dim = 0;                                ///< axis interpolated along
  int level = 1;                              ///< 1 = finest
};

/// Build the stage grid for the `k`-th axis of `order` at level stride
/// `stride` (s = 2^(level-1)).
inline StageGrid make_stage_grid([[maybe_unused]] const Dims& dims,
                                 std::size_t stride, std::span<const int> order,
                                 int k, int level) {
  StageGrid g;
  g.stride = stride;
  g.dim = order[k];
  g.level = level;
  for (int a = 0; a < kMaxRank; ++a) {
    g.start[a] = 0;
    g.step[a] = 1;  // axes beyond rank iterate once (extent 1)
  }
  for (int j = 0; j < static_cast<int>(order.size()); ++j) {
    const int axis = order[j];
    if (j < k) {
      g.start[axis] = 0;
      g.step[axis] = stride;
    } else if (j == k) {
      g.start[axis] = stride;
      g.step[axis] = 2 * stride;
    } else {
      g.start[axis] = 0;
      g.step[axis] = 2 * stride;
    }
  }
  return g;
}

/// Invoke f(coord, linear_index) for every point of the stage grid, in
/// lexicographic coordinate order (axis 0 outermost). This order
/// guarantees that the stage-grid "previous" neighbors used by QP have
/// already been visited.
template <class F>
void for_each_stage_point(const Dims& dims, const StageGrid& g, F&& f) {
  std::array<std::size_t, kMaxRank> c{};
  const std::size_t e0 = dims.extent(0), e1 = dims.extent(1);
  const std::size_t e2 = dims.extent(2), e3 = dims.extent(3);
  for (c[0] = g.start[0]; c[0] < e0; c[0] += g.step[0])
    for (c[1] = g.start[1]; c[1] < e1; c[1] += g.step[1])
      for (c[2] = g.start[2]; c[2] < e2; c[2] += g.step[2])
        for (c[3] = g.start[3]; c[3] < e3; c[3] += g.step[3])
          f(c, dims.index(c[0], c[1], c[2], c[3]));
}

/// Same as for_each_stage_point but restricted to the half-open box
/// [lo, hi) — used by HPEZ-like block-wise direction tuning.
template <class F>
void for_each_stage_point_in_box(const Dims& dims, const StageGrid& g,
                                 const std::array<std::size_t, kMaxRank>& lo,
                                 const std::array<std::size_t, kMaxRank>& hi,
                                 F&& f) {
  auto first_at_or_after = [](std::size_t start, std::size_t step,
                              std::size_t lo_a) {
    if (lo_a <= start) return start;
    const std::size_t k = (lo_a - start + step - 1) / step;
    return start + k * step;
  };
  std::array<std::size_t, kMaxRank> c{};
  std::array<std::size_t, kMaxRank> from{};
  for (int a = 0; a < kMaxRank; ++a)
    from[a] = first_at_or_after(g.start[a], g.step[a], lo[a]);
  for (c[0] = from[0]; c[0] < hi[0]; c[0] += g.step[0])
    for (c[1] = from[1]; c[1] < hi[1]; c[1] += g.step[1])
      for (c[2] = from[2]; c[2] < hi[2]; c[2] += g.step[2])
        for (c[3] = from[3]; c[3] < hi[3]; c[3] += g.step[3])
          f(c, dims.index(c[0], c[1], c[2], c[3]));
}

/// QP neighbor axes for one stage: back = the interpolation direction,
/// left/top = the two fastest remaining axes (the orthogonal plane whose
/// clustering the paper exploits). Degenerate ranks reuse the back axis
/// as the second plane axis (the stage grid is regular along it too) and
/// drop the 3-D "back" neighbor in that case.
struct QPAxes {
  int back = -1, left = -1, top = -1;
  std::size_t back_off = 0, left_off = 0, top_off = 0;
};

inline QPAxes assign_qp_axes(const StageGrid& g, const Dims& dims,
                             int back_axis) {
  QPAxes ax;
  ax.back = back_axis;
  int cands[kMaxRank];
  int ncand = 0;
  for (int a = dims.rank() - 1; a >= 0; --a) {
    if (a != back_axis && dims.extent(a) > 1) cands[ncand++] = a;
  }
  ax.left = ncand > 0 ? cands[0] : -1;
  ax.top = ncand > 1 ? cands[1] : (ncand == 1 ? back_axis : -1);
  if (ax.top == ax.back) ax.back = -1;
  auto off = [&](int axis) -> std::size_t {
    return axis < 0 ? 0 : g.step[axis] * dims.stride(axis);
  };
  ax.back_off = off(ax.back);
  ax.left_off = off(ax.left);
  ax.top_off = off(ax.top);
  return ax;
}

/// Default SZ3 direction order: axis 0 (slowest varying, "z") first.
inline std::array<int, kMaxRank> default_order(int rank) {
  std::array<int, kMaxRank> o{};
  for (int a = 0; a < rank; ++a) o[a] = a;
  return o;
}

}  // namespace qip
