#pragma once

// 1-D interpolation kernels used by the multilevel interpolation
// compressors (SZ3/QoZ/HPEZ-like): 2-point linear, 3-point quadratic for
// line boundaries, and the 4-point cubic spline SZ3 uses in its interior.

#include <cstdint>

namespace qip {

/// Which interpolant a compressor/level uses.
enum class InterpKind : std::uint8_t {
  kLinear = 0,
  kCubic = 1,
};

/// Concrete per-point stencil applied across one stage row, after the
/// boundary rules (cubic -> quadratic -> linear -> copy) have been
/// resolved. This is the contract between the row segmentation in
/// interp_engine.hpp and the SIMD row kernels in src/simd/: a segment
/// with one PredKind uses one fixed formula for every point, with `st`
/// the stencil arm in elements.
enum class PredKind : std::uint8_t {
  kCopy = 0,    ///< f(x-s)
  kLinear = 1,  ///< linear(f(x-s), f(x+s))
  kCubic = 2,   ///< cubic(f(x-3s), f(x-s), f(x+s), f(x+3s))
  kQuadA = 3,   ///< quad(f(x+s), f(x-s), f(x-3s)) — backward far stencil
  kQuadD = 4,   ///< quad(f(x-s), f(x+s), f(x+3s)) — forward far stencil
};

/// Midpoint of two neighbors at +-1 step.
template <class T>
inline T interp_linear(T a, T b) {
  return static_cast<T>((a + b) / 2);
}

/// Extrapolating quadratic through samples at -3, -1 steps predicting +1
/// (used at the right end of a line where only past samples exist):
/// f(+1) ~ (-f(-3) + 3 f(-1)) / 2 would overshoot; SZ3 uses the milder
/// (3*b + 6*c - a)/8 form with a=f(-3), b=f(-1), c=f(+1 known side)... we
/// keep the two-sided quadratic used when exactly three stencil points
/// are in range: f(0) ~ (3 a + 6 b - c) / 8 with a,b the flanking points
/// and c the far point on b's side.
template <class T>
inline T interp_quad(T a, T b, T c) {
  return static_cast<T>((3 * a + 6 * b - c) / 8);
}

/// 4-point cubic through samples at -3, -1, +1, +3 steps evaluated at 0:
/// (-a + 9b + 9c - d) / 16.
template <class T>
inline T interp_cubic(T a, T b, T c, T d) {
  return static_cast<T>((-a + 9 * b + 9 * c - d) / 16);
}

}  // namespace qip
