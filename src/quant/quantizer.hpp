#pragma once

// Linear-scaling quantizer with out-of-range ("unpredictable") escape,
// matching the SZ3 scheme recapped in paper Sec. IV-A:
//
//   q  = round((d - p) / (2*eb)),   d' = p + 2*eb*q,   |d - d'| <= eb
//
// Stored code = q + radius in [1, 2*radius); code 0 is the unpredictable
// label `u` used by QP's Case II–IV gating, and the corresponding original
// value is stored verbatim in an outlier list.

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace qip {

/// Quantization code reserved for unpredictable data (paper Algorithm 2's
/// label `u`).
inline constexpr std::uint32_t kUnpredictableCode = 0;

template <class T>
class LinearQuantizer {
 public:
  /// `radius` bounds |q|; codes occupy [0, 2*radius).
  explicit LinearQuantizer(double error_bound, std::int32_t radius = 32768)
      : radius_(radius) {
    set_error_bound(error_bound);
  }

  double error_bound() const { return eb_; }
  std::int32_t radius() const { return radius_; }

  /// Derived constants of the current bin width, exposed so the SIMD
  /// kernels replay quantize()/recover() arithmetic bit-identically.
  double two_eb() const { return two_eb_; }
  double inv_two_eb() const { return inv_two_eb_; }

  /// Adjust the bin width; used by compressors with level-wise error
  /// bounds (QoZ-style eb scaling, MGARD-style level budgets).
  void set_error_bound(double eb) {
    eb_ = eb;
    two_eb_ = 2.0 * eb;
    inv_two_eb_ = 1.0 / two_eb_;
  }

  /// Quantize `d` against prediction `p`. Returns the stored code and
  /// writes the reconstructed value to `*recon`. Unpredictable points
  /// (|q| >= radius, or rounding that would break the bound) return code 0,
  /// record the exact value in the outlier list, and reconstruct exactly.
  std::uint32_t quantize(T d, T p, T* recon) {
    const double diff = static_cast<double>(d) - static_cast<double>(p);
    // Reciprocal multiply + lrint (current rounding mode) instead of a
    // divide + llround: any nearest-integer rounding is admissible here,
    // because the explicit bound check below escapes to the outlier list
    // whenever the chosen bin misses, so the error contract is unchanged.
    const double qd = diff * inv_two_eb_;
    if (std::abs(qd) < static_cast<double>(radius_) - 1) {
      const std::int32_t q = static_cast<std::int32_t>(std::lrint(qd));
      const T dec = static_cast<T>(static_cast<double>(p) + two_eb_ * q);
      if (std::abs(static_cast<double>(dec) - static_cast<double>(d)) <= eb_) {
        *recon = dec;
        return static_cast<std::uint32_t>(q + radius_);
      }
    }
    outliers_.push_back(d);
    *recon = d;
    return kUnpredictableCode;
  }

  /// Reconstruct a value from its code and prediction during decompression.
  /// Code 0 consumes the next outlier.
  T recover(std::uint32_t code, T p) {
    if (code == kUnpredictableCode) {
      // A corrupted symbol stream can mint extra unpredictable codes;
      // fail loudly instead of reading past the stored outlier table.
      const std::vector<T>& t = table();
      if (outlier_cursor_ >= t.size())
        throw DecodeError("quantizer: outlier stream exhausted");
      const T v = t[outlier_cursor_++];
      return v;
    }
    const std::int32_t q = static_cast<std::int32_t>(code) - radius_;
    return static_cast<T>(static_cast<double>(p) + two_eb_ * q);
  }

  /// Signed quantization index for a stored code (QP works on these).
  std::int64_t signed_index(std::uint32_t code) const {
    return static_cast<std::int64_t>(code) - radius_;
  }

  const std::vector<T>& outliers() const { return table(); }
  std::size_t outlier_count() const { return table().size(); }

  /// Worker-local decode view: shares `parent`'s outlier table by
  /// pointer (no copy) with an independent cursor, so each partition of
  /// a parallel stage decode seeks and consumes outliers without
  /// touching the parent or the other partitions. Decode-only — the
  /// parent must outlive the view, and quantize() on a view records
  /// into the view's own (discarded) list.
  static LinearQuantizer view_of(const LinearQuantizer& parent) {
    LinearQuantizer v(parent.error_bound(), parent.radius());
    v.shared_ = &parent.table();
    return v;
  }

  /// Encode-side splice: append outliers recorded by a worker-local
  /// quantizer, in the order the sequential walk would have produced
  /// them (the caller sorts its per-partition segments by symbol
  /// position first).
  void append_outliers(std::span<const T> v) {
    outliers_.insert(outliers_.end(), v.begin(), v.end());
  }

  /// Move the recorded outliers out of a worker-local quantizer so the
  /// splice can slice them without copying; leaves the list empty.
  std::vector<T> take_outliers() {
    outlier_cursor_ = 0;
    return std::move(outliers_);
  }

  /// Current outlier cursor position (index into outliers()).
  std::size_t outlier_cursor() const { return outlier_cursor_; }

  /// Rewind the outlier cursor so recover() replays from the first
  /// outlier. Used by encoders that re-run the decode path (e.g. the
  /// MGARD-like correction pass).
  void reset_cursor() { outlier_cursor_ = 0; }

  /// Position the outlier cursor for a partial decode that skips earlier
  /// chunks: the v3 directory records how many outliers each payload
  /// chunk consumes, so a region decode seeks to the chunk's prefix sum.
  /// An out-of-range start is refused up front rather than deferred to
  /// the per-outlier exhaustion check in recover().
  void set_outlier_cursor(std::size_t start) {
    if (start > table().size())
      throw DecodeError("quantizer: outlier cursor outside table");
    outlier_cursor_ = start;
  }

  /// Serialize quantizer state (eb, radius, outliers) into `w`.
  void save(ByteWriter& w) const {
    w.put(eb_);
    w.put(radius_);
    w.put_varint(outliers_.size());
    for (T v : outliers_) w.put(v);
  }

  /// Restore quantizer state written by save(); resets the outlier cursor.
  void load(ByteReader& r) {
    set_error_bound(r.get<double>());
    radius_ = r.get<std::int32_t>();
    const std::uint64_t n = r.get_varint();
    // Each outlier costs sizeof(T) stream bytes below; a count the
    // stream cannot back is an allocation bomb, not a real table.
    if (n > r.remaining() / sizeof(T))
      throw DecodeError("quantizer: outlier count exceeds stream");
    outliers_.resize(static_cast<std::size_t>(n));
    for (auto& v : outliers_) v = r.get<T>();
    outlier_cursor_ = 0;
  }

 private:
  const std::vector<T>& table() const {
    return shared_ ? *shared_ : outliers_;
  }

  double eb_ = 0.0;
  double two_eb_ = 0.0;
  double inv_two_eb_ = 0.0;
  std::int32_t radius_;
  std::vector<T> outliers_;
  std::size_t outlier_cursor_ = 0;
  const std::vector<T>* shared_ = nullptr;  ///< view_of(): borrowed table
};

}  // namespace qip
