#pragma once

// Canonical Huffman coding over a sparse unsigned-integer alphabet.
//
// This is the entropy-coding stage of the SZ/QoZ/HPEZ/MGARD pipelines
// (paper Sec. I & II): quantization-index codes are Huffman-coded and the
// result is handed to a byte-level lossless pass. The implementation is
// clean-room: classic two-queue Huffman tree construction, canonical code
// assignment, and a table-accelerated decoder.

#include <cstdint>
#include <span>
#include <vector>

namespace qip {

/// Encode `symbols` into a self-describing byte buffer.
///
/// Layout: varint symbol-count table (distinct symbols + code lengths),
/// varint payload symbol count, then the MSB-first code stream. Empty
/// input encodes to a short valid buffer.
[[nodiscard]] std::vector<std::uint8_t> huffman_encode(
    std::span<const std::uint32_t> symbols);

/// Decode a buffer produced by huffman_encode(). Throws DecodeError on
/// malformed input (bad lengths, over-subscribed code sets, truncated or
/// impossible payloads); never reads out of bounds.
[[nodiscard]] std::vector<std::uint32_t> huffman_decode(
    std::span<const std::uint8_t> bytes);

/// Exact size in bits of the code stream huffman_encode() would emit,
/// without encoding. Used by auto-tuners to cost candidate configurations.
std::size_t huffman_cost_bits(std::span<const std::uint32_t> symbols);

}  // namespace qip
