#pragma once

// Canonical Huffman coding over a sparse unsigned-integer alphabet.
//
// This is the entropy-coding stage of the SZ/QoZ/HPEZ/MGARD pipelines
// (paper Sec. I & II): quantization-index codes are Huffman-coded and the
// result is handed to a byte-level lossless pass. The implementation is
// clean-room: classic two-queue Huffman tree construction, canonical code
// assignment, and a table-accelerated decoder.
//
// Streams above a fixed size threshold are emitted in a *ranged* layout:
// one shared code table, then the symbol stream split into fixed-size
// ranges, each encoded to its own byte-aligned payload. Ranges are
// independent, so both encode and decode parallelize across them; the
// range size is a format constant (never worker-count-dependent), so the
// encoded bytes are identical no matter how many threads produced them.
// Streams below the threshold keep the legacy single-payload layout, and
// the decoder accepts both.

#include <cstdint>
#include <span>
#include <vector>

namespace qip {

class ThreadPool;

/// Encode `symbols` into a self-describing byte buffer.
///
/// Layout: varint symbol-count table (distinct symbols + code lengths),
/// varint payload symbol count, then the MSB-first code stream. Large
/// streams switch to the ranged layout described above. Empty input
/// encodes to a short valid buffer. `pool` parallelizes range encoding;
/// the output bytes do not depend on it.
[[nodiscard]] std::vector<std::uint8_t> huffman_encode(
    std::span<const std::uint32_t> symbols, ThreadPool* pool = nullptr);

/// Decode a buffer produced by huffman_encode(). Throws DecodeError on
/// malformed input (bad lengths, over-subscribed code sets, truncated or
/// impossible payloads); never reads out of bounds. `pool` parallelizes
/// ranged-layout payload decoding.
[[nodiscard]] std::vector<std::uint32_t> huffman_decode(
    std::span<const std::uint8_t> bytes, ThreadPool* pool = nullptr);

/// Exact size in bits of the code stream huffman_encode() would emit,
/// without encoding. Used by auto-tuners to cost candidate configurations.
std::size_t huffman_cost_bits(std::span<const std::uint32_t> symbols);

}  // namespace qip
