#pragma once

// MSB-first bit stream writer/reader shared by the Huffman coder and the
// bitplane coders of the transform-based baselines (ZFP/SPERR/TTHRESH-like).

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "util/status.hpp"

namespace qip {

/// Packs bits most-significant-first into a byte vector.
class BitWriter {
 public:
  /// Append the low `nbits` bits of `value` (MSB of that slice first).
  void write(std::uint64_t value, int nbits) {
    assert(nbits >= 0 && nbits <= 64);
    while (nbits > 0) {
      const int take = std::min(nbits, 64 - fill_);
      acc_ = (fill_ == 64) ? 0 : acc_;
      // Shift the next `take` most-significant requested bits into the
      // accumulator.
      acc_ |= ((value >> (nbits - take)) & mask(take)) << (64 - fill_ - take);
      fill_ += take;
      nbits -= take;
      if (fill_ == 64) flush_word();
    }
  }

  void write_bit(bool b) { write(b ? 1 : 0, 1); }

  /// Number of bits written so far.
  std::size_t bit_count() const { return bytes_.size() * 8 + fill_; }

  /// Pad to a byte boundary and return the buffer.
  std::vector<std::uint8_t> finish() {
    // Emit remaining whole-or-partial bytes of the accumulator.
    int pending = fill_;
    int shift = 56;
    while (pending > 0) {
      bytes_.push_back(static_cast<std::uint8_t>(acc_ >> shift));
      shift -= 8;
      pending -= 8;
    }
    acc_ = 0;
    fill_ = 0;
    return std::move(bytes_);
  }

 private:
  static std::uint64_t mask(int n) {
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
  }

  void flush_word() {
    for (int shift = 56; shift >= 0; shift -= 8)
      bytes_.push_back(static_cast<std::uint8_t>(acc_ >> shift));
    acc_ = 0;
    fill_ = 0;
  }

  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;
  int fill_ = 0;  // bits currently in acc_
};

/// Reads bits MSB-first from a byte span. Reading past the end yields
/// zero bits (the embedded coders rely on this for truncated streams);
/// callers decoding untrusted input use require()/overrun() to turn
/// past-the-end reads into a DecodeError instead of silent zeros.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Read `nbits` (0..64) bits; the first bit read is the MSB of the result.
  [[nodiscard]] std::uint64_t read(int nbits) {
    if (nbits < 0 || nbits > 64) throw DecodeError("bitreader: bad read width");
    std::uint64_t v = 0;
    int left = nbits;
    // Byte-batched fast path once aligned; bit-by-bit at the edges.
    while (left > 0 && (pos_ & 7) != 0) {
      v = (v << 1) | static_cast<std::uint64_t>(read_bit());
      --left;
    }
    while (left >= 8) {
      const std::size_t byte = pos_ >> 3;
      const std::uint64_t b = byte < data_.size() ? data_[byte] : 0;
      v = (v << 8) | b;
      pos_ += 8;
      left -= 8;
    }
    while (left > 0) {
      v = (v << 1) | static_cast<std::uint64_t>(read_bit());
      --left;
    }
    return v;
  }

  int read_bit() {
    const std::size_t byte = pos_ >> 3;
    if (byte >= data_.size()) {
      ++pos_;
      return 0;
    }
    const int bit = 7 - static_cast<int>(pos_ & 7);
    ++pos_;
    return (data_[byte] >> bit) & 1;
  }

  /// Look at the next `nbits` (<= 16) without consuming them; bits past
  /// the end of the stream read as zero. Pairs with skip() for
  /// table-driven decoders.
  [[nodiscard]] std::uint32_t peek(int nbits) const {
    if (nbits < 0 || nbits > 16) throw DecodeError("bitreader: bad peek width");
    const std::size_t byte = pos_ >> 3;
    const int bitoff = static_cast<int>(pos_ & 7);
    std::uint32_t window = 0;
    for (int k = 0; k < 3; ++k) {
      window <<= 8;
      if (byte + static_cast<std::size_t>(k) < data_.size())
        window |= data_[byte + static_cast<std::size_t>(k)];
    }
    return (window >> (24 - bitoff - nbits)) & ((1u << nbits) - 1);
  }

  void skip(int nbits) {
    assert(nbits >= 0);
    pos_ += static_cast<std::size_t>(nbits);
  }

  std::size_t bit_position() const { return pos_; }
  std::size_t bit_size() const { return data_.size() * 8; }
  bool exhausted() const { return pos_ >= data_.size() * 8; }

  /// True once any read/skip has consumed bits past the end of the stream
  /// (such bits were produced as zero fill, not stream data).
  bool overrun() const { return pos_ > data_.size() * 8; }

  /// Strict-bounds variant for untrusted input: fail unless `nbits` more
  /// bits of real stream data are available at the cursor.
  void require(std::size_t nbits) const {
    if (nbits > data_.size() * 8 - std::min(pos_, data_.size() * 8))
      throw DecodeError("bitreader: truncated stream");
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace qip
