#include "encode/huffman.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "encode/bitstream.hpp"
#include "simd/dispatch.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace qip {
namespace {

// Symbols per range of the ranged layout. A format constant: the split is
// the same regardless of how many threads encode, so parallel output is
// byte-identical to serial output.
constexpr std::size_t kRangeSymbols = std::size_t{1} << 16;
// Streams shorter than this keep the legacy single-payload layout.
constexpr std::size_t kRangedThreshold = 2 * kRangeSymbols;
// Alphabets whose max symbol is below this use flat dense arrays for the
// histogram and the encoder codebook; QP symbol streams live well under it
// (zigzag residuals over a 2*radius alphabet), the unordered_map path is
// only a fallback for adversarially wide alphabets.
constexpr std::uint32_t kDenseAlphabetCap = 1u << 21;

struct SymbolInfo {
  std::uint32_t symbol = 0;
  std::uint64_t freq = 0;
  int length = 0;         // canonical code length in bits
  std::uint64_t code = 0; // canonical code, MSB-aligned at `length` bits
};

// Compute Huffman code lengths with the classic two-queue method over
// frequency-sorted leaves; O(n log n) from the sort only.
void assign_code_lengths(std::vector<SymbolInfo>& syms) {
  const std::size_t n = syms.size();
  if (n == 1) {
    syms[0].length = 1;
    return;
  }
  // Tie-break equal frequencies by symbol so the tree shape (and thus the
  // emitted bytes) is a pure function of the histogram.
  std::sort(syms.begin(), syms.end(), [](const SymbolInfo& a, const SymbolInfo& b) {
    return a.freq != b.freq ? a.freq < b.freq : a.symbol < b.symbol;
  });

  struct Node {
    std::uint64_t weight;
    int left = -1, right = -1;   // children as node indices; -1/-1 + leaf >= 0
    int leaf = -1;               // index into syms for leaves
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i)
    nodes.push_back({syms[i].freq, -1, -1, static_cast<int>(i)});

  // Two queues: leaves (already sorted) and internal nodes (produced in
  // nondecreasing weight order).
  std::size_t leaf_pos = 0;
  std::deque<int> internal;
  auto pop_min = [&]() -> int {
    if (leaf_pos < n && (internal.empty() ||
                         nodes[leaf_pos].weight <= nodes[internal.front()].weight))
      return static_cast<int>(leaf_pos++);
    const int idx = internal.front();
    internal.pop_front();
    return idx;
  };

  for (std::size_t merges = 0; merges + 1 < n; ++merges) {
    const int a = pop_min();
    const int b = pop_min();
    nodes.push_back({nodes[a].weight + nodes[b].weight, a, b, -1});
    internal.push_back(static_cast<int>(nodes.size()) - 1);
  }

  // Depth-first traversal to compute leaf depths (iterative to handle the
  // degenerate deep trees produced by exponential frequency distributions).
  std::vector<std::pair<int, int>> stack;  // (node, depth)
  stack.emplace_back(static_cast<int>(nodes.size()) - 1, 0);
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[idx];
    if (nd.leaf >= 0) {
      syms[nd.leaf].length = std::max(depth, 1);
    } else {
      stack.emplace_back(nd.left, depth + 1);
      stack.emplace_back(nd.right, depth + 1);
    }
  }
}

// Assign canonical codes: sort by (length, symbol) and count codes up.
void assign_canonical_codes(std::vector<SymbolInfo>& syms) {
  std::sort(syms.begin(), syms.end(), [](const SymbolInfo& a, const SymbolInfo& b) {
    return a.length != b.length ? a.length < b.length : a.symbol < b.symbol;
  });
  std::uint64_t code = 0;
  int prev_len = syms.empty() ? 0 : syms[0].length;
  for (auto& s : syms) {
    code <<= (s.length - prev_len);
    s.code = code++;
    prev_len = s.length;
  }
}

struct CanonicalTable {
  // first_code[l] = canonical code value of the first code of length l,
  // offset[l] = index into `symbols` of that first code.
  static constexpr int kMaxLen = 64;
  // Fast path: a direct-mapped table over the next kFastBits of the
  // stream resolving any code of length <= kFastBits in one lookup.
  // 12 bits (16 KiB of fast_sym + 4 KiB of fast_len) covers the whole
  // working set of typical quantization-code books while still fitting
  // in L1/L2.
  static constexpr int kFastBits = 12;
  std::vector<std::uint32_t> symbols;                 // sorted by (len, symbol)
  std::array<std::uint64_t, kMaxLen + 1> first_code{};
  std::array<std::uint32_t, kMaxLen + 1> offset{};
  std::array<std::uint32_t, kMaxLen + 1> count{};
  std::vector<std::uint32_t> fast_sym;  // 1<<kFastBits entries
  std::vector<std::uint8_t> fast_len;   // 0 = not resolvable in fast path
  int max_len = 0;
};

CanonicalTable build_table(const std::vector<SymbolInfo>& syms) {
  CanonicalTable t;
  t.symbols.reserve(syms.size());
  for (const auto& s : syms) t.symbols.push_back(s.symbol);
  int prev = -1;
  for (std::size_t i = 0; i < syms.size(); ++i) {
    const int l = syms[i].length;
    if (l != prev) {
      t.first_code[l] = syms[i].code;
      t.offset[l] = static_cast<std::uint32_t>(i);
      prev = l;
    }
    ++t.count[l];
    t.max_len = std::max(t.max_len, l);
  }
  // Populate the fast table: every short code claims all entries whose
  // top bits equal it.
  t.fast_sym.assign(std::size_t{1} << CanonicalTable::kFastBits, 0);
  t.fast_len.assign(std::size_t{1} << CanonicalTable::kFastBits, 0);
  for (const auto& s : syms) {
    if (s.length > CanonicalTable::kFastBits) continue;
    const int fill = CanonicalTable::kFastBits - s.length;
    const std::uint64_t base = s.code << fill;
    for (std::uint64_t k = 0; k < (std::uint64_t{1} << fill); ++k) {
      t.fast_sym[static_cast<std::size_t>(base + k)] = s.symbol;
      t.fast_len[static_cast<std::size_t>(base + k)] =
          static_cast<std::uint8_t>(s.length);
    }
  }
  return t;
}

// Histogram `symbols` into per-symbol frequencies. Dense alphabets use a
// flat array (with per-worker partial histograms merged by addition, so
// the result is partition-independent); the map path is a fallback for
// pathologically wide alphabets. Output is sorted by symbol, so the tree
// build downstream is deterministic either way.
std::vector<SymbolInfo> collect_symbols(std::span<const std::uint32_t> symbols,
                                        ThreadPool* pool) {
  // Max scan and histogram accumulation go through the dispatched byte
  // kernels (vector max reduction; per-lane sub-histograms that sidestep
  // the store-to-load stalls of a single counter array on skewed
  // streams). Counts are exact integers, so every tier — and the scalar
  // reference under QIP_SIMD_FORCE_SCALAR — produces the same histogram.
  const simd::ByteKernels* vk = simd::byte_kernels();
  const simd::ByteKernels& bkn = vk ? *vk : simd::scalar_byte_kernels();
  const std::uint32_t max_sym =
      symbols.empty() ? 0 : bkn.max_u32(symbols.data(), symbols.size());

  std::vector<SymbolInfo> syms;
  if (max_sym < kDenseAlphabetCap) {
    const std::size_t alphabet = static_cast<std::size_t>(max_sym) + 1;
    std::vector<std::uint64_t> hist(alphabet, 0);
    const std::size_t nparts =
        pool && symbols.size() >= kRangedThreshold ? pool->size() : 1;
    if (nparts > 1) {
      std::vector<std::vector<std::uint64_t>> partial(
          nparts, std::vector<std::uint64_t>(alphabet, 0));
      const std::size_t chunk = (symbols.size() + nparts - 1) / nparts;
      pool->parallel_for(nparts, [&](std::size_t p) {
        const std::size_t lo = std::min(symbols.size(), p * chunk);
        const std::size_t hi = std::min(symbols.size(), lo + chunk);
        bkn.hist_u32(symbols.data() + lo, hi - lo, partial[p].data(), alphabet);
      });
      for (const auto& h : partial)
        for (std::size_t s = 0; s < alphabet; ++s) hist[s] += h[s];
    } else {
      bkn.hist_u32(symbols.data(), symbols.size(), hist.data(), alphabet);
    }
    for (std::size_t s = 0; s < alphabet; ++s)
      if (hist[s]) syms.push_back({static_cast<std::uint32_t>(s), hist[s], 0, 0});
  } else {
    std::unordered_map<std::uint32_t, std::uint64_t> freq;
    freq.reserve(1024);
    for (std::uint32_t s : symbols) ++freq[s];
    syms.reserve(freq.size());
    for (const auto& [sym, f] : freq) syms.push_back({sym, f, 0, 0});
    std::sort(syms.begin(), syms.end(),
              [](const SymbolInfo& a, const SymbolInfo& b) {
                return a.symbol < b.symbol;
              });
  }
  return syms;
}

// Encoder-side codebook: flat arrays indexed by symbol when the alphabet
// is dense, map fallback otherwise.
struct EncBook {
  std::vector<std::uint64_t> code;
  std::vector<std::uint8_t> len;
  std::unordered_map<std::uint32_t, std::pair<std::uint64_t, int>> sparse;
  bool dense = false;
};

EncBook build_encbook(const std::vector<SymbolInfo>& syms) {
  EncBook bk;
  const std::uint32_t max_sym = syms.empty() ? 0 : [&] {
    std::uint32_t m = 0;
    for (const auto& s : syms) m = std::max(m, s.symbol);
    return m;
  }();
  if (max_sym < kDenseAlphabetCap) {
    bk.dense = true;
    bk.code.assign(static_cast<std::size_t>(max_sym) + 1, 0);
    bk.len.assign(static_cast<std::size_t>(max_sym) + 1, 0);
    for (const auto& s : syms) {
      bk.code[s.symbol] = s.code;
      bk.len[s.symbol] = static_cast<std::uint8_t>(s.length);
    }
  } else {
    bk.sparse.reserve(syms.size() * 2);
    for (const auto& s : syms) bk.sparse[s.symbol] = {s.code, s.length};
  }
  return bk;
}

// Batched emitter for dense books. BitWriter's output is a pure
// MSB-first bitstring padded to a byte boundary, so any emitter that
// produces the same bitstring is byte-identical by construction. This
// one keeps the invariant "the top `fill` bits of `acc` are valid" and
// spills whole 64-bit words with a byte swap + memcpy instead of
// BitWriter's per-call shift/mask bookkeeping; canonical codes satisfy
// code < 2^len, so ORing them in unmasked is exact.
std::vector<std::uint8_t> encode_stream_fast(
    std::span<const std::uint32_t> symbols, const EncBook& bk) {
  std::vector<std::uint8_t> out;
  out.reserve(symbols.size());  // ~8 bits/symbol starting guess
  std::uint64_t acc = 0;
  unsigned fill = 0;
  auto push_be64 = [&out](std::uint64_t w) {
    if constexpr (std::endian::native == std::endian::little)
      w = __builtin_bswap64(w);
    const std::size_t n = out.size();
    out.resize(n + 8);
    std::memcpy(out.data() + n, &w, 8);
  };
  for (std::uint32_t s : symbols) {
    const std::uint64_t code = bk.code[s];
    const unsigned len = bk.len[s];
    const unsigned rem = 64 - fill;
    if (len < rem) {
      acc |= code << (rem - len);
      fill += len;
    } else {
      // Split: top `rem` bits complete the word, the rest restart it.
      acc |= code >> (len - rem);
      push_be64(acc);
      const unsigned r = len - rem;
      acc = r ? code << (64 - r) : 0;
      fill = r;
    }
  }
  while (fill > 0) {
    out.push_back(static_cast<std::uint8_t>(acc >> 56));
    acc <<= 8;
    fill = fill > 8 ? fill - 8 : 0;
  }
  return out;
}

std::vector<std::uint8_t> encode_stream(std::span<const std::uint32_t> symbols,
                                        const EncBook& bk) {
  if (bk.dense && simd::huffman_fast_enabled())
    return encode_stream_fast(symbols, bk);
  BitWriter bw;
  if (bk.dense) {
    for (std::uint32_t s : symbols) bw.write(bk.code[s], bk.len[s]);
  } else {
    for (std::uint32_t s : symbols) {
      const auto& [code, len] = bk.sparse.at(s);
      bw.write(code, len);
    }
  }
  return bw.finish();
}

// --- Table-driven fast decoder -------------------------------------------
//
// The BitReader loop below re-reads and re-aligns the stream per symbol.
// The fast decoder instead tracks an absolute bit position and keeps a
// 64-bit MSB-first window that one 8-byte load refills: every fast-table
// hit then costs two lookups and a shift, and one load is amortized over
// every symbol resolved from the same window (>= 57 genuine bits per
// refill). It is bit-exact with the legacy loop (same symbols, same
// error strings, same treatment of past-the-end bits as zero fill) and
// is disabled alongside the SIMD kernels by QIP_SIMD_FORCE_SCALAR so A/B
// tests cover both.

// 64 stream bits starting at bit `pos`, MSB-first. Bits past the end of
// the payload read as zero, matching BitReader::read_bit. At least
// 64 - 7 = 57 bits of the result are genuine stream content (the low
// (pos & 7) bits shift in as zeros).
inline std::uint64_t window_at(const std::uint8_t* p, std::size_t nbytes,
                               std::size_t pos) {
  const std::size_t byte = pos >> 3;
  std::uint64_t w = 0;
  if (byte + 8 <= nbytes) {
    std::memcpy(&w, p + byte, 8);
    if constexpr (std::endian::native == std::endian::little)
      w = __builtin_bswap64(w);
  } else if (byte < nbytes) {
    for (std::size_t k = 0; k < nbytes - byte; ++k)
      w |= static_cast<std::uint64_t>(p[byte + k]) << (56 - 8 * k);
  }
  return w << (pos & 7);
}

void decode_stream_fast(std::span<const std::uint8_t> payload,
                        const CanonicalTable& table, std::size_t count,
                        std::uint32_t* out) {
  const std::uint8_t* p = payload.data();
  const std::size_t nbytes = payload.size();
  std::size_t pos = 0;
  std::size_t i = 0;
  while (i < count) {
    // `w` holds the stream bits at `pos`; the top `avail` of them came
    // from the load (the rest shifted in as zeros). Fast-table hits only
    // inspect and consume genuine bits, so the window stays valid until
    // fewer than kFastBits remain.
    std::uint64_t w = window_at(p, nbytes, pos);
    unsigned avail = 64 - static_cast<unsigned>(pos & 7);
    while (i < count && avail >= CanonicalTable::kFastBits) {
      const std::uint32_t idx =
          static_cast<std::uint32_t>(w >> (64 - CanonicalTable::kFastBits));
      const std::uint8_t flen = table.fast_len[idx];
      if (flen == 0) break;
      out[i++] = table.fast_sym[idx];
      w <<= flen;
      avail -= flen;
      pos += flen;
    }
    if (i == count) break;
    if (avail < CanonicalTable::kFastBits) continue;  // refill the window
    // Overflow path: no code of length <= kFastBits matched, so probe the
    // remaining lengths directly against the canonical intervals. The
    // prefix-free property guarantees at most one length matches, so this
    // finds exactly the code the bit-at-a-time loop would.
    const std::uint64_t wf = window_at(p, nbytes, pos);
    for (int len = CanonicalTable::kFastBits + 1;; ++len) {
      if (len > table.max_len) throw DecodeError("huffman bad code stream");
      std::uint64_t code;
      if (len <= 57) {
        code = wf >> (64 - len);
      } else {
        // The window only guarantees 57 genuine bits; splice a second
        // window for the (rare) codes longer than that.
        const std::uint64_t hi = wf >> 8;  // first 56 bits at pos
        const std::uint64_t w2 = window_at(p, nbytes, pos + 56);
        code = (hi << (len - 56)) | (w2 >> (64 - (len - 56)));
      }
      if (table.count[len] != 0 && code >= table.first_code[len] &&
          code - table.first_code[len] < table.count[len]) {
        out[i++] =
            table.symbols[table.offset[len] + (code - table.first_code[len])];
        pos += static_cast<std::size_t>(len);
        break;
      }
    }
  }
  // Codes resolved from past-the-end zero fill mean the stream was cut
  // short of the promised symbol count.
  if (pos > nbytes * 8) throw DecodeError("huffman: truncated code stream");
}

// Decode `count` symbols from one byte-aligned payload into `out`.
// Throws DecodeError when the payload runs out before `count` symbols.
void decode_stream(std::span<const std::uint8_t> payload,
                   const CanonicalTable& table, std::size_t count,
                   std::uint32_t* out) {
  if (simd::huffman_fast_enabled()) {
    decode_stream_fast(payload, table, count, out);
    return;
  }
  BitReader br(payload);
  for (std::size_t i = 0; i < count; ++i) {
    // Fast path: resolve short codes with one table lookup.
    const std::uint32_t window = br.peek(CanonicalTable::kFastBits);
    const std::uint8_t flen = table.fast_len[window];
    if (flen != 0) {
      br.skip(flen);
      out[i] = table.fast_sym[window];
      continue;
    }
    std::uint64_t code = 0;
    int len = 0;
    for (;;) {
      code = (code << 1) | static_cast<std::uint64_t>(br.read_bit());
      ++len;
      if (len > table.max_len) throw DecodeError("huffman bad code stream");
      if (table.count[len] != 0 && code >= table.first_code[len] &&
          code - table.first_code[len] < table.count[len]) {
        out[i] =
            table.symbols[table.offset[len] + (code - table.first_code[len])];
        break;
      }
    }
  }
  // Codes resolved from past-the-end zero fill mean the stream was cut
  // short of the promised symbol count.
  if (br.overrun()) throw DecodeError("huffman: truncated code stream");
}

void write_code_table(ByteWriter& out, const std::vector<SymbolInfo>& syms) {
  // Header: distinct-symbol count, then (symbol, length) pairs in
  // canonical order.
  out.put_varint(syms.size());
  for (const auto& s : syms) {
    out.put_varint(s.symbol);
    out.put_varint(static_cast<std::uint64_t>(s.length));
  }
}

// Parse + validate the code table and rebuild the canonical decoder
// table. `n` is the declared symbol count (for the distinct <= n bound).
CanonicalTable read_code_table(ByteReader& in, std::uint64_t n) {
  const std::uint64_t distinct = in.get_varint();
  if (distinct == 0) throw DecodeError("huffman header empty");
  // Each distinct symbol appears at least once in the stream and costs at
  // least two header bytes, so both bounds below hold for any archive we
  // produced; violating either means the header is hostile, and checking
  // first keeps the table allocation proportional to the input size.
  if (distinct > n) throw DecodeError("huffman: more symbols than stream");
  if (distinct > in.remaining() / 2)
    throw DecodeError("huffman: symbol table exceeds buffer");
  std::vector<SymbolInfo> syms(distinct);
  for (auto& s : syms) {
    const std::uint64_t sym = in.get_varint();
    if (sym > 0xFFFFFFFFull) throw DecodeError("huffman: symbol overflow");
    s.symbol = static_cast<std::uint32_t>(sym);
    s.length = static_cast<int>(in.get_varint());
    if (s.length <= 0 || s.length > CanonicalTable::kMaxLen)
      throw DecodeError("huffman bad code length");
  }
  // Kraft–McMillan check: sum(2^-len) must not exceed 1. Over-subscribed
  // length sets make canonical codes wider than their nominal length,
  // which would otherwise index out of bounds when filling the fast table.
  {
    unsigned __int128 kraft = 0;
    for (const auto& s : syms)
      kraft += static_cast<unsigned __int128>(1)
               << (CanonicalTable::kMaxLen - s.length);
    if (kraft > static_cast<unsigned __int128>(1) << CanonicalTable::kMaxLen)
      throw DecodeError("huffman: over-subscribed code lengths");
  }
  // Re-derive canonical codes from lengths (header is in canonical order,
  // but re-sort defensively).
  assign_canonical_codes(syms);
  return build_table(syms);
}

}  // namespace

std::vector<std::uint8_t> huffman_encode(std::span<const std::uint32_t> symbols,
                                         ThreadPool* pool) {
  ByteWriter out;
  if (symbols.size() < kRangedThreshold) {
    // Legacy single-payload layout.
    out.put_varint(symbols.size());
    if (symbols.empty()) return out.take();

    std::vector<SymbolInfo> syms = collect_symbols(symbols, nullptr);
    assign_code_lengths(syms);
    assign_canonical_codes(syms);
    write_code_table(out, syms);
    out.put_block(encode_stream(symbols, build_encbook(syms)));
    return out.take();
  }

  // Ranged layout. The leading varint 0 cannot open a legacy stream of
  // this size (a legacy 0 means "empty stream, nothing follows"), so it
  // doubles as the format sentinel.
  out.put_varint(0);
  out.put_varint(1);  // layout version
  out.put_varint(symbols.size());

  std::vector<SymbolInfo> syms = collect_symbols(symbols, pool);
  assign_code_lengths(syms);
  assign_canonical_codes(syms);
  write_code_table(out, syms);

  const EncBook bk = build_encbook(syms);
  const std::size_t nranges =
      (symbols.size() + kRangeSymbols - 1) / kRangeSymbols;
  out.put_varint(kRangeSymbols);
  std::vector<std::vector<std::uint8_t>> payloads(nranges);
  auto encode_range = [&](std::size_t r) {
    const std::size_t lo = r * kRangeSymbols;
    const std::size_t cnt = std::min(kRangeSymbols, symbols.size() - lo);
    payloads[r] = encode_stream(symbols.subspan(lo, cnt), bk);
  };
  if (pool) {
    pool->parallel_for(nranges, encode_range);
  } else {
    for (std::size_t r = 0; r < nranges; ++r) encode_range(r);
  }
  for (const auto& p : payloads) out.put_block(p);
  return out.take();
}

std::vector<std::uint32_t> huffman_decode(std::span<const std::uint8_t> bytes,
                                          ThreadPool* pool) {
  ByteReader in(bytes);
  const std::uint64_t head = in.get_varint();

  if (head == 0) {
    if (in.remaining() == 0) return {};  // legacy empty stream

    // Ranged layout.
    const std::uint64_t version = in.get_varint();
    if (version != 1) throw DecodeError("huffman: unknown ranged version");
    const std::uint64_t n = in.get_varint();
    if (n == 0) throw DecodeError("huffman: ranged stream without symbols");
    // Every symbol costs at least one payload bit somewhere in the buffer;
    // rejecting impossible counts up front bounds the output allocation.
    if (n > static_cast<std::uint64_t>(bytes.size()) * 8)
      throw DecodeError("huffman: symbol count exceeds payload");
    const CanonicalTable table = read_code_table(in, n);
    const bool single = table.symbols.size() == 1;

    const std::uint64_t range_size = in.get_varint();
    if (range_size == 0) throw DecodeError("huffman: zero range size");
    const std::uint64_t nranges = (n + range_size - 1) / range_size;
    // Each range carries at least a one-byte length prefix.
    if (nranges > in.remaining())
      throw DecodeError("huffman: range count exceeds buffer");

    std::vector<std::span<const std::uint8_t>> payloads(
        static_cast<std::size_t>(nranges));
    for (auto& p : payloads) p = in.get_block();

    std::vector<std::uint32_t> out(static_cast<std::size_t>(n));
    auto decode_range = [&](std::size_t r) {
      const std::size_t lo = r * static_cast<std::size_t>(range_size);
      const std::size_t cnt =
          std::min(static_cast<std::size_t>(range_size), out.size() - lo);
      if (cnt > payloads[r].size() * 8)
        throw DecodeError("huffman: range count exceeds payload");
      if (single) {
        std::fill_n(out.data() + lo, cnt, table.symbols[0]);
        return;
      }
      decode_stream(payloads[r], table, cnt, out.data() + lo);
    };
    if (pool) {
      pool->parallel_for(payloads.size(), decode_range);
    } else {
      for (std::size_t r = 0; r < payloads.size(); ++r) decode_range(r);
    }
    return out;
  }

  // Legacy single-payload layout.
  const std::uint64_t n = head;
  const CanonicalTable table = read_code_table(in, n);
  auto payload = in.get_block();
  // Every symbol costs at least one payload bit; rejecting impossible
  // counts up front bounds the output allocation by the input size.
  if (n > payload.size() * 8)
    throw DecodeError("huffman: symbol count exceeds payload");
  std::vector<std::uint32_t> out(static_cast<std::size_t>(n));
  if (table.symbols.size() == 1) {
    // Single-symbol stream: codes are 1 bit each; just replicate.
    std::fill(out.begin(), out.end(), table.symbols[0]);
    return out;
  }
  decode_stream(payload, table, out.size(), out.data());
  return out;
}

std::size_t huffman_cost_bits(std::span<const std::uint32_t> symbols) {
  if (symbols.empty()) return 0;
  std::vector<SymbolInfo> syms = collect_symbols(symbols, nullptr);
  assign_code_lengths(syms);
  std::size_t bits = 0;
  for (const auto& s : syms)
    bits += static_cast<std::size_t>(s.length) * s.freq;
  return bits;
}

}  // namespace qip
