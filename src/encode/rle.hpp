#pragma once

// Zero-run/value split coding for sparse symbol streams.
//
// Transform-based compressors (SPERR-like wavelets, TTHRESH-like Tucker
// cores) produce quantization streams that are overwhelmingly zero. A
// plain Huffman code floors at 1 bit per symbol, capping the ratio at
// 32x for floats; splitting the stream into (zero-run length, nonzero
// value) pairs and entropy-coding the two alphabets separately removes
// that floor — the classic significance/refinement trick in its simplest
// form.

#include <cstdint>
#include <span>
#include <vector>

#include "encode/huffman.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace qip {

/// Encode a symbol stream as Huffman(run-lengths) + Huffman(values):
/// the stream is parsed as alternating [run of zeros][one nonzero], with
/// run length 0 allowed (adjacent nonzeros) and a final zero run.
[[nodiscard]] inline std::vector<std::uint8_t> rle_encode_symbols(
    std::span<const std::uint32_t> symbols) {
  std::vector<std::uint32_t> runs;
  std::vector<std::uint32_t> values;
  std::uint32_t run = 0;
  for (std::uint32_t s : symbols) {
    if (s == 0) {
      ++run;
    } else {
      runs.push_back(run);
      values.push_back(s);
      run = 0;
    }
  }
  ByteWriter w;
  w.put_varint(symbols.size());
  w.put_varint(run);  // trailing zero run
  w.put_block(huffman_encode(runs));
  w.put_block(huffman_encode(values));
  return w.take();
}

/// Inverse of rle_encode_symbols(). `max_total` caps the declared output
/// length — callers pass the field size they are about to fill, so a
/// hostile stream can never demand more memory than the legitimate
/// payload would (run lengths amplify: a few bytes of input can declare
/// gigabytes of zeros).
[[nodiscard]] inline std::vector<std::uint32_t> rle_decode_symbols(
    std::span<const std::uint8_t> bytes, std::size_t max_total) {
  ByteReader r(bytes);
  const std::size_t total = static_cast<std::size_t>(r.get_varint());
  if (total > max_total)
    throw DecodeError("rle: declared symbol count exceeds cap");
  const std::size_t trailing = static_cast<std::size_t>(r.get_varint());
  const auto runs = huffman_decode(r.get_block());
  const auto values = huffman_decode(r.get_block());
  if (runs.size() != values.size())
    throw DecodeError("rle: run/value length mismatch");
  std::vector<std::uint32_t> out;
  out.reserve(total);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    // Bound every expansion by the declared (already capped) total
    // before allocating, so runs cannot overshoot it even transiently.
    if (total - out.size() < static_cast<std::size_t>(runs[i]) + 1)
      throw DecodeError("rle: runs exceed declared total");
    out.insert(out.end(), runs[i], 0u);
    out.push_back(values[i]);
  }
  if (trailing != total - out.size())
    throw DecodeError("rle: total length mismatch");
  out.insert(out.end(), trailing, 0u);
  return out;
}

}  // namespace qip
