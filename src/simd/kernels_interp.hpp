#pragma once

// Vectorized stage-row kernels for InterpEngine::run_stage_seq,
// templated over a vector trait V. Include only from the vector TUs in
// this directory.
//
// A row segment (RowArgs) is processed in blocks of kRowBlock points
// through fixed passes over contiguous scratch, so all strided traffic
// is isolated in cheap commit loops:
//
//   encode: predict -> quantize -> commit recon+codes -> compensation
//           -> symbols
//   decode: predict -> compensation -> symbols-to-codes -> commit codes
//           -> recover -> commit recon
//   decode (qp_serial): predict -> scalar per-point comp/symbol chain
//           -> recover -> commit recon
//
// Pass order is what makes the encode side order-independent: every
// code of a block is committed before any compensation of that block is
// read, and compensation offsets only ever point backwards. The decode
// side flips to the serial chain when a QP axis runs along the row,
// because compensation at point j then reads codes this very segment
// decodes at j-1 and earlier.
//
// Prediction stencils never touch same-stage row points (stencil arms
// are odd multiples of the stride, row points even), so a whole block
// can be predicted before any of it is reconstructed — on both sides.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "core/qp.hpp"
#include "predict/interpolation.hpp"
#include "quant/quantizer.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels_lorenzo.hpp"
#include "simd/kernels_quant.hpp"

namespace qip::simd {

/// Block length of the row pipelines; a multiple of every lane count.
inline constexpr std::size_t kRowBlock = 256;

/// Forward-most element offset a PredKind stencil reads (0 for pure
/// backward stencils). Backward reads need no bound: the engine
/// guarantees every backward stencil point exists.
inline std::size_t pred_fwd(PredKind k, std::ptrdiff_t st) {
  const std::size_t s = static_cast<std::size_t>(st);
  switch (k) {
    case PredKind::kCopy: return 0;
    case PredKind::kLinear: return s;
    case PredKind::kCubic: return 3 * s;
    case PredKind::kQuadA: return s;
    case PredKind::kQuadD: return 3 * s;
  }
  return 3 * s;
}

/// Scalar stencil application, exactly the engine's per-kind lambdas.
template <class T>
inline T predict_scalar(const T* data, std::size_t i, std::ptrdiff_t st,
                        PredKind k) {
  switch (k) {
    case PredKind::kCopy: return data[i - st];
    case PredKind::kLinear:
      return interp_linear(data[i - st], data[i + st]);
    case PredKind::kCubic:
      return interp_cubic(data[i - 3 * st], data[i - st], data[i + st],
                          data[i + 3 * st]);
    case PredKind::kQuadA:
      return interp_quad(data[i + st], data[i - st], data[i - 3 * st]);
    case PredKind::kQuadD:
      return interp_quad(data[i - st], data[i + st], data[i + 3 * st]);
  }
  return data[i - st];
}

template <class V>
inline typename V::VT vload_e(const typename V::T* p, std::size_t estep) {
  return estep == 1 ? V::vload(p) : V::vload2(p);
}

/// One vector of predictions for the chunk whose lane-0 point sits at
/// `pb`. Association orders replay interp_linear/quad/cubic exactly
/// (power-of-two divisions become multiplications, which round
/// identically; 9*b - a is IEEE-commutative with -a + 9*b).
template <class V>
inline typename V::VT predict_chunk(const typename V::T* pb, std::size_t estep,
                                    std::ptrdiff_t st, PredKind kind) {
  using T = typename V::T;
  switch (kind) {
    case PredKind::kCopy:
      return vload_e<V>(pb - st, estep);
    case PredKind::kLinear: {
      const auto b = vload_e<V>(pb - st, estep);
      const auto c = vload_e<V>(pb + st, estep);
      return V::vmul(V::vadd(b, c), V::vsplat(T(0.5)));
    }
    case PredKind::kCubic: {
      const auto a = vload_e<V>(pb - 3 * st, estep);
      const auto b = vload_e<V>(pb - st, estep);
      const auto c = vload_e<V>(pb + st, estep);
      const auto d = vload_e<V>(pb + 3 * st, estep);
      const auto nine = V::vsplat(T(9));
      const auto t1 = V::vsub(V::vmul(nine, b), a);
      const auto t2 = V::vadd(t1, V::vmul(nine, c));
      return V::vmul(V::vsub(t2, d), V::vsplat(T(1) / T(16)));
    }
    case PredKind::kQuadA:
    case PredKind::kQuadD: {
      const std::ptrdiff_t oa = kind == PredKind::kQuadA ? st : -st;
      const auto a = vload_e<V>(pb + oa, estep);
      const auto b = vload_e<V>(pb - oa, estep);
      const auto c = vload_e<V>(pb + 3 * (kind == PredKind::kQuadA ? -st : st),
                                estep);
      const auto t = V::vsub(
          V::vadd(V::vmul(V::vsplat(T(3)), a), V::vmul(V::vsplat(T(6)), b)),
          c);
      return V::vmul(t, V::vsplat(T(1) / T(8)));
    }
  }
  return vload_e<V>(pb - st, estep);
}

namespace rowdetail {

/// Number of leading segment points that full-width chunk loads may
/// cover: a chunk based at element e touches [e - back, e + fwd +
/// estep*K - 1], and only the forward end needs checking.
template <class V, class T>
inline std::size_t vector_prefix(const RowArgs<T>& a) {
  const std::size_t fwd = pred_fwd(a.kind, a.st);
  const std::size_t span = a.estep * V::K - 1 + fwd;
  if (a.total <= span || a.total - 1 - span < a.i0) return 0;
  const std::size_t max_p = (a.total - 1 - span - a.i0) / a.estep;
  const std::size_t nc = std::min(a.count / V::K, max_p / V::K + 1);
  return nc * V::K;
}

/// Predict block points [0, nb) into predb; the first nv points may use
/// vector chunks. With `gather`, also copy the current values to dcur.
template <class V, class T>
inline void predict_block(const RowArgs<T>& a, std::size_t e0, std::size_t nb,
                          std::size_t nv, T* predb, T* dcur) {
  constexpr int K = V::K;
  std::size_t j = 0;
  for (; j + K <= nv; j += K) {
    const T* pb = a.data + e0 + j * a.estep;
    if (dcur) V::vstore(dcur + j, vload_e<V>(pb, a.estep));
    V::vstore(predb + j, predict_chunk<V>(pb, a.estep, a.st, a.kind));
  }
  for (; j < nb; ++j) {
    const std::size_t i = e0 + j * a.estep;
    if (dcur) dcur[j] = a.data[i];
    predb[j] = predict_scalar(a.data, i, a.st, a.kind);
  }
}

/// Compensation for block points [0, nb) into compb. Vectorizes the
/// dominant 2-D Lorenzo configuration; other dimensions and partial
/// neighborhoods go through the authoritative per-point path.
template <class V, class T>
inline void comp_block(const RowArgs<T>& a, std::size_t e0, std::size_t nb,
                       std::size_t nv, std::int32_t* compb) {
  if (!a.qp_active) {
    std::memset(compb, 0, nb * sizeof(std::int32_t));
    return;
  }
  if (a.qp->dimension == QPDimension::k2D && a.nb.avail_left &&
      a.nb.avail_top) {
    qp2d_comp_row_v<V>(a.codes + e0 - a.nb.left, a.codes + e0 - a.nb.top,
                       a.codes + e0 - a.nb.left - a.nb.top, nb, nv, a.estep,
                       a.qp->condition, a.radius, compb);
    return;
  }
  for (std::size_t j = 0; j < nb; ++j) {
    compb[j] = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(qp_compensation(
            a.codes, e0 + j * a.estep, a.nb, *a.qp, a.level, a.radius)));
  }
}

}  // namespace rowdetail

/// Encode one row segment (see file comment for the pass structure).
template <class V>
void encode_row_v(const RowArgs<typename V::T>& a) {
  using T = typename V::T;
  constexpr std::size_t B = kRowBlock;
  const std::size_t vec_pts = rowdetail::vector_prefix<V>(a);

  T dcur[B], predb[B], recon[B];
  std::uint32_t codeb[B];
  std::int32_t compb[B];

  std::size_t done = 0;
  while (done < a.count) {
    const std::size_t nb = std::min(B, a.count - done);
    const std::size_t nv = vec_pts > done ? std::min(nb, vec_pts - done) : 0;
    const std::size_t e0 = a.i0 + done * a.estep;

    rowdetail::predict_block<V>(a, e0, nb, nv, predb, dcur);
    quant_encode_block_v<V>(dcur, predb, nb, a.quant, codeb, recon);
    if (a.estep == 1) {
      std::memcpy(a.data + e0, recon, nb * sizeof(T));
      std::memcpy(a.codes + e0, codeb, nb * sizeof(std::uint32_t));
    } else {
      for (std::size_t j = 0; j < nb; ++j) {
        a.data[e0 + j * a.estep] = recon[j];
        a.codes[e0 + j * a.estep] = codeb[j];
      }
    }
    rowdetail::comp_block<V>(a, e0, nb, nv, compb);
    qp_sym_encode_block_v<V>(codeb, compb, nb, a.radius, a.syms_out + done);
    done += nb;
  }
}

/// Decode one row segment (see file comment for the pass structure).
template <class V>
void decode_row_v(const RowArgs<typename V::T>& a) {
  using T = typename V::T;
  constexpr std::size_t B = kRowBlock;
  const std::size_t vec_pts = rowdetail::vector_prefix<V>(a);

  T predb[B], recon[B];
  std::uint32_t codeb[B];
  std::int32_t compb[B];

  std::size_t done = 0;
  while (done < a.count) {
    const std::size_t nb = std::min(B, a.count - done);
    const std::size_t nv = vec_pts > done ? std::min(nb, vec_pts - done) : 0;
    const std::size_t e0 = a.i0 + done * a.estep;

    rowdetail::predict_block<V>(a, e0, nb, nv, predb, static_cast<T*>(nullptr));

    if (a.qp_serial) {
      for (std::size_t j = 0; j < nb; ++j) {
        const std::size_t i = e0 + j * a.estep;
        const std::int64_t comp =
            qp_compensation(a.codes, i, a.nb, *a.qp, a.level, a.radius);
        const std::uint32_t code =
            qp_decode_symbol(a.syms_in[done + j], comp, a.radius);
        a.codes[i] = code;
        codeb[j] = code;
      }
    } else {
      rowdetail::comp_block<V>(a, e0, nb, nv, compb);
      qp_sym_decode_block_v<V>(a.syms_in + done, compb, nb, a.radius, codeb);
      if (a.estep == 1) {
        std::memcpy(a.codes + e0, codeb, nb * sizeof(std::uint32_t));
      } else {
        for (std::size_t j = 0; j < nb; ++j)
          a.codes[e0 + j * a.estep] = codeb[j];
      }
    }

    quant_recover_block_v<V>(codeb, predb, nb, a.quant, recon);
    if (a.estep == 1) {
      std::memcpy(a.data + e0, recon, nb * sizeof(T));
    } else {
      for (std::size_t j = 0; j < nb; ++j) a.data[e0 + j * a.estep] = recon[j];
    }
    done += nb;
  }
}

/// Assemble one tier's dispatch table from the templates above.
template <class V>
Kernels<typename V::T> make_kernels(Tier t) {
  Kernels<typename V::T> k;
  k.tier = t;
  k.encode_row = &encode_row_v<V>;
  k.decode_row = &decode_row_v<V>;
  k.quant_encode_block = &quant_encode_block_v<V>;
  k.quant_recover_block = &quant_recover_block_v<V>;
  k.qp2d_comp_block = &qp2d_comp_block_v<V>;
  k.qp_sym_encode_block = &qp_sym_encode_block_v<V>;
  k.qp_sym_decode_block = &qp_sym_decode_block_v<V>;
  return k;
}

}  // namespace qip::simd
