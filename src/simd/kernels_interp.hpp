#pragma once

// Vectorized stage-row kernels for InterpEngine::run_stage_seq,
// templated over a vector trait V. Include only from the vector TUs in
// this directory.
//
// A row segment (RowArgs) is processed in blocks of kRowBlock points
// through fixed passes over contiguous scratch, so all strided traffic
// is isolated in cheap commit loops:
//
//   encode: predict -> quantize -> commit recon+codes -> compensation
//           -> symbols
//   decode: predict -> compensation -> fused symbols-to-recon (codes as
//           a side product when live) -> commit
//   decode (qp_serial): predict -> scalar per-point comp/symbol chain
//           -> recover -> commit recon
//
// Pass order is what makes the encode side order-independent: every
// code of a block is committed before any compensation of that block is
// read, and compensation offsets only ever point backwards. The decode
// side flips to the serial chain when a QP axis runs along the row,
// because compensation at point j then reads codes this very segment
// decodes at j-1 and earlier.
//
// Prediction stencils never touch same-stage row points (stencil arms
// are odd multiples of the stride, row points even), so a whole block
// can be predicted before any of it is reconstructed — on both sides.
//
// estep 1 and 2 feed the stencil straight into stride-aware vector
// loads (vload/vload2). estep > 2 — the cross-axis stages of levels
// >= 2, whose strides make direct vector loads useless — instead runs
// the cache-blocked gather path: each stencil operand row of a
// kRowBlock tile is transposed into contiguous scratch with one strided
// walk, the identical stride-1 chunk arithmetic runs over the scratch,
// and results scatter back in the commit loops. Every gathered element
// is a read the per-point scalar code performs at the same index, so
// the engine's row segmentation is the bounds proof.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "core/qp.hpp"
#include "predict/interpolation.hpp"
#include "quant/quantizer.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels_lorenzo.hpp"
#include "simd/kernels_quant.hpp"

namespace qip::simd {

/// Block length of the row pipelines; a multiple of every lane count.
inline constexpr std::size_t kRowBlock = 256;

/// Forward-most element offset a PredKind stencil reads (0 for pure
/// backward stencils). Backward reads need no bound: the engine
/// guarantees every backward stencil point exists.
inline std::size_t pred_fwd(PredKind k, std::ptrdiff_t st) {
  const std::size_t s = static_cast<std::size_t>(st);
  switch (k) {
    case PredKind::kCopy: return 0;
    case PredKind::kLinear: return s;
    case PredKind::kCubic: return 3 * s;
    case PredKind::kQuadA: return s;
    case PredKind::kQuadD: return 3 * s;
  }
  return 3 * s;
}

/// Scalar stencil application, exactly the engine's per-kind lambdas.
template <class T>
inline T predict_scalar(const T* data, std::size_t i, std::ptrdiff_t st,
                        PredKind k) {
  switch (k) {
    case PredKind::kCopy: return data[i - st];
    case PredKind::kLinear:
      return interp_linear(data[i - st], data[i + st]);
    case PredKind::kCubic:
      return interp_cubic(data[i - 3 * st], data[i - st], data[i + st],
                          data[i + 3 * st]);
    case PredKind::kQuadA:
      return interp_quad(data[i + st], data[i - st], data[i - 3 * st]);
    case PredKind::kQuadD:
      return interp_quad(data[i - st], data[i + st], data[i + 3 * st]);
  }
  return data[i - st];
}

template <class V>
inline typename V::VT vload_e(const typename V::T* p, std::size_t estep) {
  return estep == 1 ? V::vload(p) : V::vload2(p);
}

/// One vector of predictions for the chunk whose lane-0 point sits at
/// `pb`. Association orders replay interp_linear/quad/cubic exactly
/// (power-of-two divisions become multiplications, which round
/// identically; 9*b - a is IEEE-commutative with -a + 9*b).
template <class V>
inline typename V::VT predict_chunk(const typename V::T* pb, std::size_t estep,
                                    std::ptrdiff_t st, PredKind kind) {
  using T = typename V::T;
  switch (kind) {
    case PredKind::kCopy:
      return vload_e<V>(pb - st, estep);
    case PredKind::kLinear: {
      const auto b = vload_e<V>(pb - st, estep);
      const auto c = vload_e<V>(pb + st, estep);
      return V::vmul(V::vadd(b, c), V::vsplat(T(0.5)));
    }
    case PredKind::kCubic: {
      const auto a = vload_e<V>(pb - 3 * st, estep);
      const auto b = vload_e<V>(pb - st, estep);
      const auto c = vload_e<V>(pb + st, estep);
      const auto d = vload_e<V>(pb + 3 * st, estep);
      const auto nine = V::vsplat(T(9));
      const auto t1 = V::vsub(V::vmul(nine, b), a);
      const auto t2 = V::vadd(t1, V::vmul(nine, c));
      return V::vmul(V::vsub(t2, d), V::vsplat(T(1) / T(16)));
    }
    case PredKind::kQuadA:
    case PredKind::kQuadD: {
      const std::ptrdiff_t oa = kind == PredKind::kQuadA ? st : -st;
      const auto a = vload_e<V>(pb + oa, estep);
      const auto b = vload_e<V>(pb - oa, estep);
      const auto c = vload_e<V>(pb + 3 * (kind == PredKind::kQuadA ? -st : st),
                                estep);
      const auto t = V::vsub(
          V::vadd(V::vmul(V::vsplat(T(3)), a), V::vmul(V::vsplat(T(6)), b)),
          c);
      return V::vmul(t, V::vsplat(T(1) / T(8)));
    }
  }
  return vload_e<V>(pb - st, estep);
}

/// One vector of predictions from gathered (contiguous) stencil operand
/// rows. Same association orders as predict_chunk — the scratch rows
/// hold exactly the values the strided loads would have produced, so
/// the results are bit-identical.
template <class V>
inline typename V::VT predict_rows_chunk(const typename V::T* m3,
                                         const typename V::T* m1,
                                         const typename V::T* p1,
                                         const typename V::T* p3,
                                         PredKind kind) {
  using T = typename V::T;
  switch (kind) {
    case PredKind::kCopy:
      return V::vload(m1);
    case PredKind::kLinear:
      return V::vmul(V::vadd(V::vload(m1), V::vload(p1)), V::vsplat(T(0.5)));
    case PredKind::kCubic: {
      const auto a = V::vload(m3);
      const auto b = V::vload(m1);
      const auto c = V::vload(p1);
      const auto d = V::vload(p3);
      const auto nine = V::vsplat(T(9));
      const auto t1 = V::vsub(V::vmul(nine, b), a);
      const auto t2 = V::vadd(t1, V::vmul(nine, c));
      return V::vmul(V::vsub(t2, d), V::vsplat(T(1) / T(16)));
    }
    case PredKind::kQuadA:
    case PredKind::kQuadD: {
      const auto a = V::vload(kind == PredKind::kQuadA ? p1 : m1);
      const auto b = V::vload(kind == PredKind::kQuadA ? m1 : p1);
      const auto c = V::vload(kind == PredKind::kQuadA ? m3 : p3);
      const auto t = V::vsub(
          V::vadd(V::vmul(V::vsplat(T(3)), a), V::vmul(V::vsplat(T(6)), b)),
          c);
      return V::vmul(t, V::vsplat(T(1) / T(8)));
    }
  }
  return V::vload(m1);
}

/// Fused qp_sym_decode_block_v + quant_recover_block_v (dispatch-table
/// `sym_recover_block`): symbols go to reconstructed values in one pass
/// instead of materializing the code block and re-reading it. The
/// symbol->code lanes are the exact qp_sym_decode_block_v chunk; code-0
/// lanes — symbol 0, or a hostile symbol whose code wraps to 0 — then
/// take the public recover() in ascending lane order, so outlier
/// consumption (and the exhaustion throw) matches the scalar chain.
template <class V>
void sym_recover_block_v(const std::uint32_t* syms, const std::int32_t* comp,
                         const typename V::T* preds, std::size_t n,
                         std::int32_t radius,
                         LinearQuantizer<typename V::T>* q,
                         std::uint32_t* codes, typename V::T* out) {
  constexpr int K = V::K;
  const auto vrad = V::isplat(radius);
  const auto zero = V::isplat(0);
  const auto one = V::isplat(1);
  const auto teb = V::dsplat(q->two_eb());
  std::size_t i = 0;
  for (; i + K <= n; i += K) {
    const auto vs = V::iload(syms + i);
    const auto ms = V::icmpeq(vs, zero);
    const auto zz = V::isub(vs, one);
    const auto r = V::ixor(V::ishr1(zz), V::isub(zero, V::iand(zz, one)));
    const auto code =
        V::iandnot(ms, V::iadd(V::iadd(r, iload_s32<V>(comp + i)), vrad));
    if (codes) V::istore(codes + i, code);
    const auto qi = V::isub(code, vrad);
    const auto vp = V::widen(V::vload(preds + i));
    V::vstore(out + i, V::narrow(V::dadd(vp, V::dmul(teb, V::dfromi(qi)))));
    const unsigned m0 = V::imask(V::icmpeq(code, zero));
    if (m0) {
      for (int k = 0; k < K; ++k) {
        if (m0 >> k & 1u) out[i + k] = q->recover(0, preds[i + k]);
      }
    }
  }
  for (; i < n; ++i) {
    const std::uint32_t code = qp_decode_symbol(syms[i], comp[i], radius);
    if (codes) codes[i] = code;
    out[i] = q->recover(code, preds[i]);
  }
}

namespace rowdetail {

/// Tile-transpose one strided operand row into contiguous scratch.
template <class T>
inline void gather_row(const T* src, std::size_t estep, std::size_t n,
                       T* dst) {
  for (std::size_t j = 0; j < n; ++j) dst[j] = src[j * estep];
}

/// Leading points that must stay scalar: when the preceding j-slice of
/// this row belongs to a concurrent worker (shared_lo) and the stencil
/// runs along the row (st < estep), the first chunk's backward
/// deinterleaving load — based at e - 3*st — would cover the
/// neighbor's last predicted lane two elements below i0. From point 1
/// on, every byte below the chunk base that a load touches is either
/// an operand lane or this segment's own.
template <class T>
inline std::size_t vector_head(const RowArgs<T>& a) {
  return a.shared_lo && a.estep == 2 &&
                 a.st < static_cast<std::ptrdiff_t>(a.estep)
             ? 1
             : 0;
}

/// Number of leading segment points that full-width chunk loads may
/// cover: a chunk based at element e touches [e - back, e + fwd +
/// estep*K - 1], and only the forward end needs checking. With
/// shared_hi the forward check also stops at the segment itself: the
/// first foreign predicted lane past the segment sits at own-last +
/// estep, so the chunk footprint must stay <= own-last + 1. Only the
/// loads whose stencil leg runs along the row extend the hazard by
/// fwd; cross-axis legs land in operand planes, which no worker writes
/// during the pass. estep == 1 needs no clamp (its only same-row load
/// is the base load, confined to the segment by the chunk loop);
/// estep > 2 takes the gather path.
template <class V, class T>
inline std::size_t vector_prefix(const RowArgs<T>& a) {
  const std::size_t fwd = pred_fwd(a.kind, a.st);
  const std::size_t span = a.estep * V::K - 1 + fwd;
  if (a.total <= span || a.total - 1 - span < a.i0) return 0;
  std::size_t max_b = (a.total - 1 - span - a.i0) / a.estep;
  if (a.shared_hi && a.estep == 2) {
    const std::size_t hz_fwd =
        a.st < static_cast<std::ptrdiff_t>(a.estep) ? fwd : 0;
    const std::size_t need = hz_fwd + 2 * V::K;
    if (2 * a.count < need) return 0;
    max_b = std::min(max_b, (2 * a.count - need) / 2);
  }
  const std::size_t h = vector_head(a);
  if (max_b < h || a.count < h + V::K) return 0;
  const std::size_t nc =
      std::min((a.count - h) / V::K, (max_b - h) / V::K + 1);
  return nc == 0 ? 0 : h + nc * V::K;
}

/// Predict block points [0, nb) into predb; points [h, nv) may use
/// vector chunks (h is the shared_lo scalar head, nonzero only in a
/// segment's first block). Also copies the current values to dcur.
template <class V, class T>
inline void predict_block(const RowArgs<T>& a, std::size_t e0, std::size_t nb,
                          std::size_t nv, std::size_t h, T* predb, T* dcur) {
  constexpr int K = V::K;
  std::size_t j = 0;
  for (; j < h && j < nb; ++j) {
    const std::size_t i = e0 + j * a.estep;
    if (dcur) dcur[j] = a.data[i];
    predb[j] = predict_scalar(a.data, i, a.st, a.kind);
  }
  for (; j + K <= nv; j += K) {
    const T* pb = a.data + e0 + j * a.estep;
    if (dcur) V::vstore(dcur + j, vload_e<V>(pb, a.estep));
    V::vstore(predb + j, predict_chunk<V>(pb, a.estep, a.st, a.kind));
  }
  for (; j < nb; ++j) {
    const std::size_t i = e0 + j * a.estep;
    if (dcur) dcur[j] = a.data[i];
    predb[j] = predict_scalar(a.data, i, a.st, a.kind);
  }
}

/// Gathered (estep > 2) predict: transpose the stencil operand rows the
/// PredKind actually reads into contiguous scratch, then run the
/// stride-1 chunk arithmetic over the whole block (the scratch has no
/// footprint hazard, so there is no nv split — only a lane-count tail,
/// which replays the authoritative interp_* stencils on the scratch).
template <class V, class T>
inline void predict_block_gather(const RowArgs<T>& a, std::size_t e0,
                                 std::size_t nb, T* predb, T* dcur, T* m3,
                                 T* m1, T* p1, T* p3) {
  constexpr int K = V::K;
  const T* base = a.data + e0;
  gather_row(base - a.st, a.estep, nb, m1);
  if (a.kind != PredKind::kCopy) gather_row(base + a.st, a.estep, nb, p1);
  if (a.kind == PredKind::kCubic || a.kind == PredKind::kQuadA)
    gather_row(base - 3 * a.st, a.estep, nb, m3);
  if (a.kind == PredKind::kCubic || a.kind == PredKind::kQuadD)
    gather_row(base + 3 * a.st, a.estep, nb, p3);
  if (dcur) gather_row(base, a.estep, nb, dcur);

  std::size_t j = 0;
  for (; j + K <= nb; j += K)
    V::vstore(predb + j,
              predict_rows_chunk<V>(m3 + j, m1 + j, p1 + j, p3 + j, a.kind));
  for (; j < nb; ++j) {
    switch (a.kind) {
      case PredKind::kCopy: predb[j] = m1[j]; break;
      case PredKind::kLinear: predb[j] = interp_linear(m1[j], p1[j]); break;
      case PredKind::kCubic:
        predb[j] = interp_cubic(m3[j], m1[j], p1[j], p3[j]);
        break;
      case PredKind::kQuadA: predb[j] = interp_quad(p1[j], m1[j], m3[j]); break;
      case PredKind::kQuadD: predb[j] = interp_quad(m1[j], p1[j], p3[j]); break;
    }
  }
}

/// Compensation for block points [0, nb) into compb, reading codes at
/// codes-space base ce0 (stride a.cestep). Vectorizes the dominant 2-D
/// Lorenzo configuration; other dimensions and partial neighborhoods go
/// through the authoritative per-point path.
template <class V, class T>
inline void comp_block(const RowArgs<T>& a, std::size_t ce0, std::size_t nb,
                       std::size_t nv, std::int32_t* compb) {
  if (!a.qp_active) {
    std::memset(compb, 0, nb * sizeof(std::int32_t));
    return;
  }
  if (a.qp->dimension == QPDimension::k2D && a.nb.avail_left &&
      a.nb.avail_top) {
    if (a.cestep == 1) {
      // Compact codes: every neighbor row is contiguous and in bounds,
      // so the comp kernel vectorizes the whole block.
      qp2d_comp_row_v<V>(a.codes + ce0 - a.nb.left, a.codes + ce0 - a.nb.top,
                         a.codes + ce0 - a.nb.left - a.nb.top, nb, nb, 1,
                         a.qp->condition, a.radius, compb);
      return;
    }
    if (a.cestep == 2) {
      qp2d_comp_row_v<V>(a.codes + ce0 - a.nb.left, a.codes + ce0 - a.nb.top,
                         a.codes + ce0 - a.nb.left - a.nb.top, nb, nv,
                         a.cestep, a.qp->condition, a.radius, compb);
      return;
    }
    // Gathered path: transpose the three neighbor-code rows, then the
    // stride-1 comp kernel covers the full block (integer-exact, and
    // the scratch rows carry no load-footprint hazard).
    std::uint32_t gl[kRowBlock], gt[kRowBlock], gd[kRowBlock];
    gather_row(a.codes + ce0 - a.nb.left, a.cestep, nb, gl);
    gather_row(a.codes + ce0 - a.nb.top, a.cestep, nb, gt);
    gather_row(a.codes + ce0 - a.nb.left - a.nb.top, a.cestep, nb, gd);
    qp2d_comp_row_v<V>(gl, gt, gd, nb, nb, 1, a.qp->condition, a.radius,
                       compb);
    return;
  }
  for (std::size_t j = 0; j < nb; ++j) {
    compb[j] = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(qp_compensation(
            a.codes, ce0 + j * a.cestep, a.nb, *a.qp, a.level, a.radius)));
  }
}

/// Zigzag-plus-radius term of qp_decode_symbol, modulo 2^32. Truncation
/// to u32 is a ring homomorphism, so qp_decode_symbol(sym, c, radius)
/// == (spec_code(sym, radius) + (uint32)c) & -(sym != 0) exactly, for
/// every input (hostile streams included).
inline std::uint32_t spec_code(std::uint32_t sym, std::int32_t radius) {
  const std::uint64_t zz = static_cast<std::uint64_t>(sym) - 1;
  const std::uint32_t rpre = static_cast<std::uint32_t>(
      ((zz >> 1) ^ (~(zz & 1) + 1)) +
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(radius)));
  return rpre & (std::uint32_t{0} - static_cast<std::uint32_t>(sym != 0));
}

/// One full decode step of the 2-D serial chain, branchless (mask
/// selects instead of data-dependent branches). Exact replay of
/// qp_compensation + qp_decode_symbol per the spec_code identity.
template <QPCondition C>
inline std::uint32_t qp2d_chain_step(std::uint32_t sym, std::uint32_t cl,
                                     std::uint32_t ct, std::uint32_t cd,
                                     std::int32_t radius) {
  const std::int64_t ql = static_cast<std::int64_t>(cl) - radius;
  const std::int64_t qt = static_cast<std::int64_t>(ct) - radius;
  const std::int64_t qd = static_cast<std::int64_t>(cd) - radius;
  bool ok = true;
  if constexpr (C != QPCondition::kCaseI)
    ok = (cl != kUnpredictableCode) & (ct != kUnpredictableCode) &
         (cd != kUnpredictableCode);
  if constexpr (C == QPCondition::kCaseIII)
    ok = ok & (((ql > 0) & (qt > 0)) | ((ql < 0) & (qt < 0)));
  if constexpr (C == QPCondition::kCaseIV)
    ok = ok & (((ql > 0) & (qt > 0)) | ((ql < 0) & (qt < 0))) &
         (((ql > 0) & (qd > 0)) | ((ql < 0) & (qd < 0)));
  const std::uint32_t m_ok = std::uint32_t{0} - static_cast<std::uint32_t>(ok);
  const std::uint32_t comp32 = static_cast<std::uint32_t>(ql + qt - qd) & m_ok;
  const std::uint32_t m_sym =
      std::uint32_t{0} - static_cast<std::uint32_t>(sym != 0);
  return (spec_code(sym, radius) + (comp32 & m_sym)) & m_sym;
}

/// One block of the 2-D serial decode chain. The diagonal neighbor row
/// is the top row shifted by one point (left offset == the row step),
/// so only the top row is gathered; cd0 seeds lane 0.
///
/// The chain itself is speculate-then-fix: compensation is provably 0
/// wherever the gate fails on inputs that do not involve the carried
/// left code — top/diagonal unpredictable (II, III, IV), top index 0
/// (III), diagonal index 0 (IV) — so those points decode in a
/// dependency-free pass, and only the surviving points (few, on smooth
/// fields) run the carried chain, in ascending order against
/// already-final predecessors. Case I gates on nothing, so every point
/// chains.
template <QPCondition C>
inline std::uint32_t qp2d_chain(const std::uint32_t* syms,
                                const std::uint32_t* ctb, std::uint32_t cd0,
                                std::size_t n, std::int32_t radius,
                                std::uint32_t cl0, std::uint32_t* codeb) {
  if constexpr (C == QPCondition::kCaseI) {
    std::uint32_t cl = cl0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t cd = j ? ctb[j - 1] : cd0;
      cl = qp2d_chain_step<C>(syms[j], cl, ctb[j], cd, radius);
      codeb[j] = cl;
    }
    return cl;
  } else {
    const std::uint32_t r32 = static_cast<std::uint32_t>(radius);
    std::uint16_t idxs[kRowBlock];
    std::size_t k = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t ct = ctb[j];
      const std::uint32_t cd = j ? ctb[j - 1] : cd0;
      codeb[j] = spec_code(syms[j], radius);
      bool need = (ct != kUnpredictableCode) & (cd != kUnpredictableCode);
      if constexpr (C == QPCondition::kCaseIII) need = need & (ct != r32);
      if constexpr (C == QPCondition::kCaseIV)
        need = need & (ct != r32) & (cd != r32);
      idxs[k] = static_cast<std::uint16_t>(j);
      k += need;
    }
    for (std::size_t t = 0; t < k; ++t) {
      const std::size_t j = idxs[t];
      const std::uint32_t cl = j ? codeb[j - 1] : cl0;
      const std::uint32_t cd = j ? ctb[j - 1] : cd0;
      codeb[j] = qp2d_chain_step<C>(syms[j], cl, ctb[j], cd, radius);
    }
    return codeb[n - 1];
  }
}

}  // namespace rowdetail

/// Encode one row segment (see file comment for the pass structure).
template <class V>
void encode_row_v(const RowArgs<typename V::T>& a) {
  using T = typename V::T;
  constexpr std::size_t B = kRowBlock;
  const bool gath = a.estep > 2;
  // The gather path has no load-footprint hazard, so every point is
  // vector-eligible; the direct path limits full-width loads to the
  // checked prefix.
  const std::size_t vec_pts = gath ? a.count : rowdetail::vector_prefix<V>(a);
  const std::size_t head = gath ? 0 : rowdetail::vector_head(a);

  T dcur[B], predb[B], recon[B];
  T m3[B], m1[B], p1[B], p3[B];  // gather scratch (estep > 2 only)
  std::uint32_t codeb[B];
  std::int32_t compb[B];

  std::size_t done = 0;
  while (done < a.count) {
    const std::size_t nb = std::min(B, a.count - done);
    const std::size_t nv = vec_pts > done ? std::min(nb, vec_pts - done) : 0;
    const std::size_t e0 = a.i0 + done * a.estep;
    const std::size_t ce0 = a.ci0 + done * a.cestep;

    if (gath)
      rowdetail::predict_block_gather<V>(a, e0, nb, predb, dcur, m3, m1, p1,
                                         p3);
    else
      rowdetail::predict_block<V>(a, e0, nb, nv, done == 0 ? head : 0, predb,
                                  dcur);
    quant_encode_block_v<V>(dcur, predb, nb, a.quant, codeb, recon);
    if (a.estep == 1) {
      std::memcpy(a.data + e0, recon, nb * sizeof(T));
    } else {
      for (std::size_t j = 0; j < nb; ++j) a.data[e0 + j * a.estep] = recon[j];
    }
    if (a.codes) {
      if (a.cestep == 1) {
        std::memcpy(a.codes + ce0, codeb, nb * sizeof(std::uint32_t));
      } else {
        for (std::size_t j = 0; j < nb; ++j)
          a.codes[ce0 + j * a.cestep] = codeb[j];
      }
    }
    rowdetail::comp_block<V>(a, ce0, nb, nv, compb);
    qp_sym_encode_block_v<V>(codeb, compb, nb, a.radius, a.syms_out + done);
    done += nb;
  }
}

/// Decode one row segment (see file comment for the pass structure).
template <class V>
void decode_row_v(const RowArgs<typename V::T>& a) {
  using T = typename V::T;
  constexpr std::size_t B = kRowBlock;
  const bool gath = a.estep > 2;
  const std::size_t vec_pts = gath ? a.count : rowdetail::vector_prefix<V>(a);
  const std::size_t head = gath ? 0 : rowdetail::vector_head(a);

  T predb[B], recon[B];
  T m3[B], m1[B], p1[B], p3[B];  // gather scratch (estep > 2 only)
  std::uint32_t codeb[B];
  std::int32_t compb[B];

  std::size_t done = 0;
  while (done < a.count) {
    const std::size_t nb = std::min(B, a.count - done);
    const std::size_t nv = vec_pts > done ? std::min(nb, vec_pts - done) : 0;
    const std::size_t e0 = a.i0 + done * a.estep;
    const std::size_t ce0 = a.ci0 + done * a.cestep;

    if (gath)
      rowdetail::predict_block_gather<V>(a, e0, nb, predb,
                                         static_cast<T*>(nullptr), m3, m1, p1,
                                         p3);
    else
      rowdetail::predict_block<V>(a, e0, nb, nv, done == 0 ? head : 0, predb,
                                  static_cast<T*>(nullptr));

    if (a.qp_serial) {
      // qp_serial implies qp_active, so a.codes is live here.
      if (a.qp->dimension == QPDimension::k2D && a.nb.left == a.cestep) {
        // 2-D chain with the left axis along the row: the chained
        // neighbor is simply the previous block point, while the top
        // and diagonal stencil codes live in rows decoded before this
        // one. Preload those two rows and carry the left code in a
        // register, so the per-point dependency costs a handful of ALU
        // ops instead of a store-to-load round trip through the codes
        // array plus the full qp_compensation dispatch.
        if (!a.nb.avail_left || !a.nb.avail_top) {
          for (std::size_t j = 0; j < nb; ++j)
            codeb[j] = qp_decode_symbol(a.syms_in[done + j], 0, a.radius);
        } else {
          // The diagonal row is the top row shifted one point left
          // (diag offset == left + top and left == the row step), so a
          // single row load serves both stencil legs; cd0 seeds lane 0.
          std::uint32_t ctb[B];
          rowdetail::gather_row(a.codes + ce0 - a.nb.top, a.cestep, nb, ctb);
          const std::uint32_t cd0 = a.codes[ce0 - a.nb.left - a.nb.top];
          const std::uint32_t cl = a.codes[ce0 - a.nb.left];
          const std::uint32_t* sy = a.syms_in + done;
          switch (a.qp->condition) {
            case QPCondition::kCaseI:
              rowdetail::qp2d_chain<QPCondition::kCaseI>(sy, ctb, cd0, nb,
                                                         a.radius, cl, codeb);
              break;
            case QPCondition::kCaseII:
              rowdetail::qp2d_chain<QPCondition::kCaseII>(sy, ctb, cd0, nb,
                                                          a.radius, cl, codeb);
              break;
            case QPCondition::kCaseIII:
              rowdetail::qp2d_chain<QPCondition::kCaseIII>(sy, ctb, cd0, nb,
                                                           a.radius, cl, codeb);
              break;
            case QPCondition::kCaseIV:
              rowdetail::qp2d_chain<QPCondition::kCaseIV>(sy, ctb, cd0, nb,
                                                          a.radius, cl, codeb);
              break;
          }
        }
        if (a.cestep == 1) {
          std::memcpy(a.codes + ce0, codeb, nb * sizeof(std::uint32_t));
        } else {
          for (std::size_t j = 0; j < nb; ++j)
            a.codes[ce0 + j * a.cestep] = codeb[j];
        }
      } else {
        for (std::size_t j = 0; j < nb; ++j) {
          const std::size_t ci = ce0 + j * a.cestep;
          const std::int64_t comp =
              qp_compensation(a.codes, ci, a.nb, *a.qp, a.level, a.radius);
          const std::uint32_t code =
              qp_decode_symbol(a.syms_in[done + j], comp, a.radius);
          a.codes[ci] = code;
          codeb[j] = code;
        }
      }
      quant_recover_block_v<V>(codeb, predb, nb, a.quant, recon);
    } else {
      rowdetail::comp_block<V>(a, ce0, nb, nv, compb);
      // Fused symbols->recon pass; unit-stride code rows write live
      // codes straight to their destination, strided rows stage in
      // codeb and scatter below, dead code arrays skip the stores
      // entirely.
      std::uint32_t* const cdst =
          a.codes ? (a.cestep == 1 ? a.codes + ce0 : codeb) : nullptr;
      sym_recover_block_v<V>(a.syms_in + done, compb, predb, nb, a.radius,
                             a.quant, cdst, recon);
      if (a.codes && a.cestep != 1) {
        for (std::size_t j = 0; j < nb; ++j)
          a.codes[ce0 + j * a.cestep] = codeb[j];
      }
    }

    if (a.estep == 1) {
      std::memcpy(a.data + e0, recon, nb * sizeof(T));
    } else {
      for (std::size_t j = 0; j < nb; ++j) a.data[e0 + j * a.estep] = recon[j];
    }
    done += nb;
  }
}

/// Recompute one row segment's symbols from already-committed codes
/// (dispatch-table `sym_fix_row`): the block-ranged pass-2 entry of the
/// parallel level walk's encode speculation. Every code this reads —
/// the row's own and its QP neighbors' — is final, so the pass is pure
/// comp_block + qp_sym_encode_block per kRowBlock chunk, with no
/// prediction, quantization or data traffic at all.
template <class V>
void sym_fix_row_v(const RowArgs<typename V::T>& a) {
  constexpr std::size_t B = kRowBlock;
  std::uint32_t codeb[B];
  std::int32_t compb[B];
  std::size_t done = 0;
  while (done < a.count) {
    const std::size_t nb = std::min(B, a.count - done);
    const std::size_t ce0 = a.ci0 + done * a.cestep;
    rowdetail::comp_block<V>(a, ce0, nb, nb, compb);
    const std::uint32_t* cb = a.codes + ce0;
    if (a.cestep != 1) {
      rowdetail::gather_row(a.codes + ce0, a.cestep, nb, codeb);
      cb = codeb;
    }
    qp_sym_encode_block_v<V>(cb, compb, nb, a.radius, a.syms_out + done);
    done += nb;
  }
}

/// Assemble one tier's dispatch table from the templates above.
template <class V>
Kernels<typename V::T> make_kernels(Tier t) {
  Kernels<typename V::T> k;
  k.tier = t;
  k.encode_row = &encode_row_v<V>;
  k.decode_row = &decode_row_v<V>;
  k.sym_fix_row = &sym_fix_row_v<V>;
  k.quant_encode_block = &quant_encode_block_v<V>;
  k.quant_recover_block = &quant_recover_block_v<V>;
  k.qp2d_comp_block = &qp2d_comp_block_v<V>;
  k.qp_sym_encode_block = &qp_sym_encode_block_v<V>;
  k.qp_sym_decode_block = &qp_sym_decode_block_v<V>;
  k.sym_recover_block = &sym_recover_block_v<V>;
  return k;
}

}  // namespace qip::simd
