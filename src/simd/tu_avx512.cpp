// AVX-512-tier kernel tables. This TU (alone) is compiled with the
// -mavx512{f,bw,dq,vl} flag set; its code is only reached after
// dispatch.cpp's cpuid check confirms the full feature set.

#include "simd/dispatch.hpp"
#include "simd/kernels_bytes.hpp"
#include "simd/kernels_interp.hpp"
#include "simd/vec_avx512.hpp"

namespace qip::simd::detail {

const Kernels<float>* avx512_kernels_f32() {
  static const Kernels<float> k = make_kernels<Avx512F32>(Tier::kAVX512);
  return &k;
}

const Kernels<double>* avx512_kernels_f64() {
  static const Kernels<double> k = make_kernels<Avx512F64>(Tier::kAVX512);
  return &k;
}

const ByteKernels* avx512_byte_kernels() {
  static const ByteKernels k = make_byte_kernels<Avx512Bytes>(Tier::kAVX512);
  return &k;
}

}  // namespace qip::simd::detail
