// Runtime tier resolution for the SIMD kernel layer (see dispatch.hpp).
//
// This TU is compiled with the baseline flags; the QIP_SIMD_HAVE_*
// macros (set by src/CMakeLists.txt when the matching vector TU was
// built) tell it which tier tables exist in this binary.

#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

namespace qip::simd {

namespace detail {
const Kernels<float>& scalar_ref_f32();
const Kernels<double>& scalar_ref_f64();
const ByteKernels& scalar_byte_ref();
#ifdef QIP_SIMD_HAVE_SSE42
const Kernels<float>* sse42_kernels_f32();
const Kernels<double>* sse42_kernels_f64();
const ByteKernels* sse42_byte_kernels();
#endif
#ifdef QIP_SIMD_HAVE_AVX2
const Kernels<float>* avx2_kernels_f32();
const Kernels<double>* avx2_kernels_f64();
const ByteKernels* avx2_byte_kernels();
#endif
#ifdef QIP_SIMD_HAVE_AVX512
const Kernels<float>* avx512_kernels_f32();
const Kernels<double>* avx512_kernels_f64();
const ByteKernels* avx512_byte_kernels();
#endif
}  // namespace detail

namespace {

std::atomic<int> g_force_override{-1};
std::atomic<int> g_cap_override{-1};

bool env_force_scalar() {
  static const bool v = [] {
    const char* e = std::getenv("QIP_SIMD_FORCE_SCALAR");
    return e != nullptr && std::string(e) != "0";
  }();
  return v;
}

Tier env_tier_cap() {
  static const Tier v = [] {
    const char* e = std::getenv("QIP_SIMD_TIER");
    if (e == nullptr) return Tier::kAVX512;  // no cap
    const std::string s(e);
    if (s == "scalar") return Tier::kScalar;
    if (s == "sse42") return Tier::kSSE42;
    if (s == "avx2") return Tier::kAVX2;
    return Tier::kAVX512;  // "avx512" or unrecognized: no cap
  }();
  return v;
}

}  // namespace

const char* to_string(Tier t) {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kSSE42: return "sse42";
    case Tier::kAVX2: return "avx2";
    case Tier::kAVX512: return "avx512";
  }
  return "?";
}

bool cpu_has_avx512() {
  static const bool v = [] {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    // The kernels use 512-bit f32/f64/i32 ops (f), byte compares (bw),
    // 256-bit lane insert/extract (dq) and 256-bit masked integer ops
    // (vl); require the whole set so one probe gates the whole tier.
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512vl");
#else
    return false;
#endif
  }();
  return v;
}

Tier cpu_tier() {
  static const Tier t = [] {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    if (cpu_has_avx512()) return Tier::kAVX512;
    if (__builtin_cpu_supports("avx2")) return Tier::kAVX2;
    if (__builtin_cpu_supports("sse4.2")) return Tier::kSSE42;
#endif
    return Tier::kScalar;
  }();
  return t;
}

bool tier_compiled(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kSSE42:
#ifdef QIP_SIMD_HAVE_SSE42
      return true;
#else
      return false;
#endif
    case Tier::kAVX2:
#ifdef QIP_SIMD_HAVE_AVX2
      return true;
#else
      return false;
#endif
    case Tier::kAVX512:
#ifdef QIP_SIMD_HAVE_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool force_scalar() {
  const int o = g_force_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return env_force_scalar();
}

Tier tier_cap() {
  const int cap = g_cap_override.load(std::memory_order_relaxed);
  return cap >= 0 ? static_cast<Tier>(cap) : env_tier_cap();
}

Tier active_tier() {
  if (force_scalar()) return Tier::kScalar;
  Tier t = cpu_tier();
  const Tier capt = tier_cap();
  if (static_cast<int>(capt) < static_cast<int>(t)) t = capt;
  while (t != Tier::kScalar && !tier_compiled(t))
    t = static_cast<Tier>(static_cast<int>(t) - 1);
  return t;
}

bool huffman_fast_enabled() { return !force_scalar(); }

void set_force_scalar_override(int v) {
  g_force_override.store(v, std::memory_order_relaxed);
}

void set_tier_cap_override(int tier) {
  g_cap_override.store(tier, std::memory_order_relaxed);
}

template <>
const Kernels<float>* tier_kernels<float>(Tier t) {
  switch (t) {
#ifdef QIP_SIMD_HAVE_SSE42
    case Tier::kSSE42: return detail::sse42_kernels_f32();
#endif
#ifdef QIP_SIMD_HAVE_AVX2
    case Tier::kAVX2: return detail::avx2_kernels_f32();
#endif
#ifdef QIP_SIMD_HAVE_AVX512
    case Tier::kAVX512: return detail::avx512_kernels_f32();
#endif
    default: break;
  }
  return nullptr;
}

template <>
const Kernels<double>* tier_kernels<double>(Tier t) {
  switch (t) {
#ifdef QIP_SIMD_HAVE_SSE42
    case Tier::kSSE42: return detail::sse42_kernels_f64();
#endif
#ifdef QIP_SIMD_HAVE_AVX2
    case Tier::kAVX2: return detail::avx2_kernels_f64();
#endif
#ifdef QIP_SIMD_HAVE_AVX512
    case Tier::kAVX512: return detail::avx512_kernels_f64();
#endif
    default: break;
  }
  return nullptr;
}

const ByteKernels* tier_byte_kernels(Tier t) {
  switch (t) {
#ifdef QIP_SIMD_HAVE_SSE42
    case Tier::kSSE42: return detail::sse42_byte_kernels();
#endif
#ifdef QIP_SIMD_HAVE_AVX2
    case Tier::kAVX2: return detail::avx2_byte_kernels();
#endif
#ifdef QIP_SIMD_HAVE_AVX512
    case Tier::kAVX512: return detail::avx512_byte_kernels();
#endif
    default: break;
  }
  return nullptr;
}

const ByteKernels* byte_kernels() {
  const Tier t = active_tier();
  return t == Tier::kScalar ? nullptr : tier_byte_kernels(t);
}

const ByteKernels& scalar_byte_kernels() { return detail::scalar_byte_ref(); }

template <>
const Kernels<float>* kernels<float>() {
  const Tier t = active_tier();
  return t == Tier::kScalar ? nullptr : tier_kernels<float>(t);
}

template <>
const Kernels<double>* kernels<double>() {
  const Tier t = active_tier();
  return t == Tier::kScalar ? nullptr : tier_kernels<double>(t);
}

template <>
const Kernels<float>& scalar_kernels<float>() {
  return detail::scalar_ref_f32();
}

template <>
const Kernels<double>& scalar_kernels<double>() {
  return detail::scalar_ref_f64();
}

}  // namespace qip::simd
