#pragma once

// Scalar reference implementations of the dispatch-table kernels: plain
// loops over the public quantizer/QP API plus the engine's per-point
// emit sequence. They are authoritative by construction — no vector
// code, no copies of the arithmetic — and serve as the A/B ground truth
// for the vector tiers in tests and benches.

#include <cstddef>
#include <cstdint>

#include "core/qp.hpp"
#include "quant/quantizer.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels_interp.hpp"

namespace qip::simd {

template <class T>
void encode_row_ref(const RowArgs<T>& a) {
  for (std::size_t j = 0; j < a.count; ++j) {
    const std::size_t i = a.i0 + j * a.estep;
    const T pred = predict_scalar(a.data, i, a.st, a.kind);
    const std::int64_t comp =
        a.qp_active ? qp_compensation(a.codes, i, a.nb, *a.qp, a.level,
                                      a.radius)
                    : 0;
    T recon;
    const std::uint32_t code = a.quant->quantize(a.data[i], pred, &recon);
    a.data[i] = recon;
    a.codes[i] = code;
    a.syms_out[j] = qp_encode_symbol(code, comp, a.radius);
  }
}

template <class T>
void decode_row_ref(const RowArgs<T>& a) {
  for (std::size_t j = 0; j < a.count; ++j) {
    const std::size_t i = a.i0 + j * a.estep;
    const T pred = predict_scalar(a.data, i, a.st, a.kind);
    const std::int64_t comp =
        a.qp_active ? qp_compensation(a.codes, i, a.nb, *a.qp, a.level,
                                      a.radius)
                    : 0;
    const std::uint32_t code = qp_decode_symbol(a.syms_in[j], comp, a.radius);
    a.codes[i] = code;
    a.data[i] = a.quant->recover(code, pred);
  }
}

template <class T>
void quant_encode_block_ref(const T* vals, const T* preds, std::size_t n,
                            LinearQuantizer<T>* q, std::uint32_t* codes,
                            T* recon) {
  for (std::size_t i = 0; i < n; ++i)
    codes[i] = q->quantize(vals[i], preds[i], &recon[i]);
}

template <class T>
void quant_recover_block_ref(const std::uint32_t* codes, const T* preds,
                             std::size_t n, LinearQuantizer<T>* q, T* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = q->recover(codes[i], preds[i]);
}

/// The QP block entries reuse the batch references from core/qp.cpp,
/// whose signatures match the dispatch table exactly.
template <class T>
Kernels<T> make_scalar_kernels() {
  Kernels<T> k;
  k.tier = Tier::kScalar;
  k.encode_row = &encode_row_ref<T>;
  k.decode_row = &decode_row_ref<T>;
  k.quant_encode_block = &quant_encode_block_ref<T>;
  k.quant_recover_block = &quant_recover_block_ref<T>;
  k.qp2d_comp_block = &qp2d_comp_batch;
  k.qp_sym_encode_block = &qp2d_forward_batch;
  k.qp_sym_decode_block = &qp2d_inverse_batch;
  return k;
}

}  // namespace qip::simd
