#pragma once

// Scalar reference implementations of the dispatch-table kernels: plain
// loops over the public quantizer/QP API plus the engine's per-point
// emit sequence. They are authoritative by construction — no vector
// code, no copies of the arithmetic — and serve as the A/B ground truth
// for the vector tiers in tests and benches.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "core/qp.hpp"
#include "quant/quantizer.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels_interp.hpp"

namespace qip::simd {

template <class T>
void encode_row_ref(const RowArgs<T>& a) {
  for (std::size_t j = 0; j < a.count; ++j) {
    const std::size_t i = a.i0 + j * a.estep;
    const std::size_t ci = a.ci0 + j * a.cestep;
    const T pred = predict_scalar(a.data, i, a.st, a.kind);
    const std::int64_t comp =
        a.qp_active ? qp_compensation(a.codes, ci, a.nb, *a.qp, a.level,
                                      a.radius)
                    : 0;
    T recon;
    const std::uint32_t code = a.quant->quantize(a.data[i], pred, &recon);
    a.data[i] = recon;
    if (a.codes) a.codes[ci] = code;
    a.syms_out[j] = qp_encode_symbol(code, comp, a.radius);
  }
}

template <class T>
void decode_row_ref(const RowArgs<T>& a) {
  for (std::size_t j = 0; j < a.count; ++j) {
    const std::size_t i = a.i0 + j * a.estep;
    const std::size_t ci = a.ci0 + j * a.cestep;
    const T pred = predict_scalar(a.data, i, a.st, a.kind);
    const std::int64_t comp =
        a.qp_active ? qp_compensation(a.codes, ci, a.nb, *a.qp, a.level,
                                      a.radius)
                    : 0;
    const std::uint32_t code = qp_decode_symbol(a.syms_in[j], comp, a.radius);
    if (a.codes) a.codes[ci] = code;
    a.data[i] = a.quant->recover(code, pred);
  }
}

/// Scalar sym_fix_row: the exact per-point loop
/// InterpEngine::fix_boundary_layers runs when no kernel table is
/// active — symbols from committed codes, nothing else touched.
template <class T>
void sym_fix_row_ref(const RowArgs<T>& a) {
  for (std::size_t j = 0; j < a.count; ++j) {
    const std::size_t ci = a.ci0 + j * a.cestep;
    const std::int64_t comp =
        qp_compensation(a.codes, ci, a.nb, *a.qp, a.level, a.radius);
    a.syms_out[j] = qp_encode_symbol(a.codes[ci], comp, a.radius);
  }
}

template <class T>
void quant_encode_block_ref(const T* vals, const T* preds, std::size_t n,
                            LinearQuantizer<T>* q, std::uint32_t* codes,
                            T* recon) {
  for (std::size_t i = 0; i < n; ++i)
    codes[i] = q->quantize(vals[i], preds[i], &recon[i]);
}

template <class T>
void quant_recover_block_ref(const std::uint32_t* codes, const T* preds,
                             std::size_t n, LinearQuantizer<T>* q, T* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = q->recover(codes[i], preds[i]);
}

template <class T>
void sym_recover_block_ref(const std::uint32_t* syms, const std::int32_t* comp,
                           const T* preds, std::size_t n, std::int32_t radius,
                           LinearQuantizer<T>* q, std::uint32_t* codes,
                           T* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t code = qp_decode_symbol(syms[i], comp[i], radius);
    if (codes) codes[i] = code;
    out[i] = q->recover(code, preds[i]);
  }
}

/// The QP block entries reuse the batch references from core/qp.cpp,
/// whose signatures match the dispatch table exactly.
template <class T>
Kernels<T> make_scalar_kernels() {
  Kernels<T> k;
  k.tier = Tier::kScalar;
  k.encode_row = &encode_row_ref<T>;
  k.decode_row = &decode_row_ref<T>;
  k.sym_fix_row = &sym_fix_row_ref<T>;
  k.quant_encode_block = &quant_encode_block_ref<T>;
  k.quant_recover_block = &quant_recover_block_ref<T>;
  k.qp2d_comp_block = &qp2d_comp_batch;
  k.qp_sym_encode_block = &qp2d_forward_batch;
  k.qp_sym_decode_block = &qp2d_inverse_batch;
  k.sym_recover_block = &sym_recover_block_ref<T>;
  return k;
}

inline std::uint32_t max_u32_ref(const std::uint32_t* v, std::size_t n) {
  std::uint32_t m = 0;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

inline void hist_u32_ref(const std::uint32_t* v, std::size_t n,
                         std::uint64_t* hist, std::size_t /*alphabet*/) {
  for (std::size_t i = 0; i < n; ++i) ++hist[v[i]];
}

/// The 8-byte XOR + countr_zero scan that was lossless/lzb.cpp's scalar
/// match loop before the dispatch table took over; still the scalar
/// baseline benches and the forced-scalar path measure.
inline std::size_t match_len_ref(const std::uint8_t* a, const std::uint8_t* b,
                                 const std::uint8_t* end) {
  const std::uint8_t* const start = b;
  while (b + 8 <= end) {
    std::uint64_t x, y;
    std::memcpy(&x, a, 8);
    std::memcpy(&y, b, 8);
    const std::uint64_t diff = x ^ y;
    if (diff)
      return static_cast<std::size_t>(b - start) +
             static_cast<std::size_t>(std::countr_zero(diff) >> 3);
    a += 8;
    b += 8;
  }
  while (b < end && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<std::size_t>(b - start);
}

inline ByteKernels make_scalar_byte_kernels() {
  ByteKernels k;
  k.tier = Tier::kScalar;
  k.max_u32 = &max_u32_ref;
  k.hist_u32 = &hist_u32_ref;
  k.match_len = &match_len_ref;
  return k;
}

}  // namespace qip::simd
