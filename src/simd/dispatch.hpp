#pragma once

// Runtime-dispatched SIMD kernel layer.
//
// The hot inner loops of the pipeline — the LinearQuantizer encode and
// recover paths, the row kernels of InterpEngine::run_stage_seq (stride-1
// directly; strided cross-axis rows through a cache-blocked gather into
// contiguous scratch), the 2-D stage-grid Lorenzo QP transform, and the
// byte/symbol loops of the entropy stages (Huffman histogram + max scan,
// LZB match scan) — are data-parallel. This module provides explicitly
// vectorized variants of those loops, selected at runtime by CPU
// capability (cpuid) so one binary stays portable:
//
//   scalar  — reference loops over the public quantizer/QP API; always
//             available, always bit-identical to the engine's own loops.
//   sse42   — 128-bit kernels (4 x f32 / 2 x f64 per step).
//   avx2    — 256-bit kernels (8 x f32 / 4 x f64 per step).
//   avx512  — 512-bit kernels (16 x f32 / 8 x f64 per step); requires
//             avx512f+bw+dq+vl (Skylake-SP and later, Zen 4 and later).
//
// Vector translation units are compiled with per-TU ISA flags
// (src/CMakeLists.txt) and are only *called* after a cpuid check here,
// so the baseline build never executes an unsupported instruction.
//
// Bit-identity contract: every kernel produces exactly the codes,
// symbols, reconstructions and outlier streams of the scalar path, for
// every input including NaN/Inf fields and hostile decode symbol
// streams. AVX-512 adds no rounding hazards over avx2: the kernels use
// the same no-FMA double arithmetic, MXCSR-governed cvtpd rounding, and
// i32-lane zigzag envelope (docs/PERFORMANCE.md, "exactness envelope").
// The environment gate QIP_SIMD_FORCE_SCALAR=1 (mirroring the
// QIP_INTERP_FORCE_GENERIC A/B pattern) disables dispatch at runtime;
// QIP_SIMD_TIER=scalar|sse42|avx2|avx512 caps the tier for triage.
// Archives must be byte-identical either way — tests/test_simd.cpp
// enforces it.
//
// Intrinsics live only in the vec_*.hpp headers under this directory
// (the tools/analyze `simd-confined` rule keeps it that way; the
// tu_avx512.cpp TU is covered like its sse42/avx2 siblings).

#include <cstddef>
#include <cstdint>

#include "core/qp.hpp"
#include "predict/interpolation.hpp"
#include "quant/quantizer.hpp"

namespace qip::simd {

/// Kernel instruction-set tier, in increasing capability order.
enum class Tier : int {
  kScalar = 0,
  kSSE42 = 1,
  kAVX2 = 2,
  kAVX512 = 3,
};

const char* to_string(Tier t);

/// Best tier this CPU supports (independent of what was compiled in or
/// any runtime gate).
Tier cpu_tier();

/// Fine-grained CPU probe for the `qipc cpu` report: true when the CPU
/// has the full AVX-512 feature set the kAVX512 tier requires
/// (avx512f + avx512bw + avx512dq + avx512vl).
bool cpu_has_avx512();

/// The QIP_SIMD_TIER / test-override cap by itself (kAVX512 when no cap
/// is set). active_tier() clamps cpu_tier() against this and the
/// compiled tiers, then applies force_scalar().
Tier tier_cap();

/// True when this binary contains kernels for `t` (vector TUs are only
/// built when the compiler supports the ISA flags on this target).
bool tier_compiled(Tier t);

/// True when QIP_SIMD_FORCE_SCALAR is set (to anything but "0"), or a
/// test override is active. Forces every dispatch site to the scalar
/// reference path.
bool force_scalar();

/// The tier dispatch actually uses: min(cpu_tier, compiled tiers,
/// QIP_SIMD_TIER cap), or kScalar under force_scalar().
Tier active_tier();

/// True when the table-driven Huffman decoder (encode/huffman.cpp) may
/// run; false under force_scalar() so the A/B gate covers it too.
bool huffman_fast_enabled();

/// Test hooks: override the force-scalar gate / cap the tier without
/// touching the environment. -1 clears the override.
void set_force_scalar_override(int v);
void set_tier_cap_override(int tier);

/// Below this many points a row segment is not worth a kernel call.
inline constexpr std::size_t kMinKernelPoints = 16;

/// One stage-row work item handed from InterpEngine::run_stage_seq to a
/// row kernel. Describes `count` stage points starting at linear element
/// index `i0`, spaced `estep` elements apart, all sharing one PredKind
/// stencil with arm `st` and one QP neighborhood `nb`. The engine
/// guarantees: every per-point stencil read (backward and forward) is in
/// bounds, and radius is in (0, 2^20]. estep 1 and 2 run the direct
/// stride-1/stride-2 pipeline; estep > 2 (cross-axis stages of levels
/// >= 2) runs the cache-blocked gather path, which tile-transposes the
/// stencil operand rows into contiguous scratch first. (encode) symbols
/// commit to syms_out in row order; (decode) syms_in holds at least
/// `count` symbols. `codes` may be null when the spatial code array is
/// dead for the stage (QP inactive and no characterization pass): the
/// kernels then skip the code stores entirely.
template <class T>
struct RowArgs {
  T* data = nullptr;              ///< full field; reconstruction in place
  std::uint32_t* codes = nullptr; ///< QP code array (nullable; see ci0)
  std::size_t total = 0;          ///< element count of the field
  std::size_t i0 = 0;             ///< linear index of the first point
  std::size_t count = 0;          ///< points in this segment
  std::size_t estep = 1;          ///< element step between points
  /// Codes-space counterparts of i0/estep. QP compensation only ever
  /// reads same-stage neighbors (multilevel.hpp assigns every offset as
  /// one stage-grid step), so the engine stores codes in a compact
  /// stage-local array indexed by grid coordinate — unit-stride rows,
  /// cache-sized working set — rather than scattering them across the
  /// spatial array. In that mode nb holds codes-space offsets too. The
  /// spatial layout (characterization tools) sets ci0 == i0 and
  /// cestep == estep.
  std::size_t ci0 = 0;
  std::size_t cestep = 1;
  std::ptrdiff_t st = 0;          ///< stencil arm, in elements
  PredKind kind = PredKind::kCopy;
  LinearQuantizer<T>* quant = nullptr;
  const QPConfig* qp = nullptr;   ///< valid when qp_active
  QPNeighborhood nb{};            ///< availability constant over the row
  int level = 0;
  std::int32_t radius = 0;
  bool qp_active = false;
  /// Decode only: a QP-used axis runs along the row, so compensation at
  /// point j reads codes this segment itself decodes (j-1 and earlier).
  /// The symbol->code chain must then run serially; prediction and value
  /// recovery still vectorize.
  bool qp_serial = false;
  /// Parallel level walk: lanes outside this segment's own points may be
  /// written concurrently by the worker owning a neighboring segment, so
  /// full-width chunk loads (whose contiguous footprint exceeds the
  /// lanes the stencil actually reads) must not touch them. shared_lo
  /// guards the backward overread of the first chunk into the preceding
  /// j-slice's last predicted lane; shared_hi clamps the vector prefix
  /// so no chunk's footprint reaches past the segment's last own point.
  /// Scalar fallback points are bit-identical, so bytes are unchanged.
  bool shared_lo = false;
  bool shared_hi = false;
  std::uint32_t* syms_out = nullptr;       ///< encode destination
  const std::uint32_t* syms_in = nullptr;  ///< decode source
};

/// Dispatch table of one tier's kernels for element type T. Function
/// pointers so call sites stay ABI-stable across TUs compiled with
/// different ISA flags.
template <class T>
struct Kernels {
  Tier tier = Tier::kScalar;

  /// One row segment, encode direction (pipeline in kernels_interp.hpp).
  void (*encode_row)(const RowArgs<T>&) = nullptr;
  /// One row segment, decode direction.
  void (*decode_row)(const RowArgs<T>&) = nullptr;
  /// Recompute one row segment's symbols from already-committed codes:
  /// syms_out[j] = qp_encode_symbol(codes[ci0 + j], comp_j) with the
  /// row's QP neighborhood. The block-ranged fix-up entry of the
  /// parallel level walk (InterpEngine::fix_boundary_layers): pass 2
  /// re-derives the speculation-boundary rows' symbols after every
  /// partition's codes are final. Uses codes/ci0/cestep/count/nb/qp/
  /// level/radius only — data and quant may be null.
  void (*sym_fix_row)(const RowArgs<T>&) = nullptr;

  /// Contiguous LinearQuantizer::quantize over n points: codes[i]/
  /// recon[i] from vals[i] vs preds[i]; outliers append to q's list in
  /// ascending i order exactly like the scalar loop.
  void (*quant_encode_block)(const T* vals, const T* preds, std::size_t n,
                             LinearQuantizer<T>* q, std::uint32_t* codes,
                             T* recon) = nullptr;
  /// Contiguous LinearQuantizer::recover over n points; code 0 consumes
  /// outliers in ascending i order (and throws when exhausted) exactly
  /// like the scalar loop.
  void (*quant_recover_block)(const std::uint32_t* codes, const T* preds,
                              std::size_t n, LinearQuantizer<T>* q,
                              T* out) = nullptr;

  /// Contiguous form of qp2d_comp_batch (see core/qp.hpp for the low-32
  /// compensation contract).
  void (*qp2d_comp_block)(const std::uint32_t* left, const std::uint32_t* top,
                          const std::uint32_t* diag, std::size_t n,
                          QPCondition cond, std::int32_t radius,
                          std::int32_t* comp) = nullptr;
  /// Contiguous qp_encode_symbol with per-point compensation. Exact when
  /// |(code - radius) - comp| < 2^31 (the zigzag runs in 32-bit lanes);
  /// the engine's radius <= 2^20 eligibility gate implies this for every
  /// code/compensation pair the pipeline can produce.
  void (*qp_sym_encode_block)(const std::uint32_t* codes,
                              const std::int32_t* comp, std::size_t n,
                              std::int32_t radius,
                              std::uint32_t* syms) = nullptr;
  /// Contiguous qp_decode_symbol with per-point compensation.
  /// Unconditionally exact for arbitrary (hostile) u32 symbols: decode
  /// consumes the compensation mod 2^32 only.
  void (*qp_sym_decode_block)(const std::uint32_t* syms,
                              const std::int32_t* comp, std::size_t n,
                              std::int32_t radius,
                              std::uint32_t* codes) = nullptr;
  /// Fused qp_sym_decode_block + quant_recover_block: symbols go to
  /// reconstructed values in ONE pass instead of materializing the full
  /// code block and re-reading it. `codes` (nullable) receives the
  /// decoded codes when the caller still needs them; code-0 lanes
  /// consume outliers in ascending i order (and throw when exhausted)
  /// exactly like the scalar chain.
  void (*sym_recover_block)(const std::uint32_t* syms,
                            const std::int32_t* comp, const T* preds,
                            std::size_t n, std::int32_t radius,
                            LinearQuantizer<T>* q, std::uint32_t* codes,
                            T* out) = nullptr;
};

/// Kernels for the active tier, or nullptr when the scalar path should
/// run (scalar tier, or force_scalar()). Engine call sites treat null as
/// "use your own loops", which keeps the scalar baseline the engine's
/// original code rather than a copy of it.
template <class T>
const Kernels<T>* kernels();
template <>
const Kernels<float>* kernels<float>();
template <>
const Kernels<double>* kernels<double>();

/// The scalar reference table — always available regardless of tier or
/// gates. Benches and A/B tests use it as ground truth.
template <class T>
const Kernels<T>& scalar_kernels();
template <>
const Kernels<float>& scalar_kernels<float>();
template <>
const Kernels<double>& scalar_kernels<double>();

/// Kernels for a specific tier, or nullptr when that tier is not
/// compiled in. Used by the tier-forcing dispatch tests.
template <class T>
const Kernels<T>* tier_kernels(Tier t);
template <>
const Kernels<float>* tier_kernels<float>(Tier t);
template <>
const Kernels<double>* tier_kernels<double>(Tier t);

/// Tier table for the element-type-independent byte/symbol kernels of
/// the entropy stages. All three compute exact integer results, so any
/// tier is trivially byte-identical; they still dispatch through the
/// same tier/force-scalar gates so the A/B story stays one flag.
struct ByteKernels {
  Tier tier = Tier::kScalar;

  /// Max of v[0..n) (0 when n == 0). Huffman alphabet sizing.
  std::uint32_t (*max_u32)(const std::uint32_t* v, std::size_t n) = nullptr;
  /// Add the symbol counts of v[0..n) into hist[0..alphabet). Caller
  /// guarantees every value < alphabet. Wide tiers split the counting
  /// across per-lane sub-histograms to break the store-to-load
  /// forwarding chain that serializes skewed streams.
  void (*hist_u32)(const std::uint32_t* v, std::size_t n,
                   std::uint64_t* hist, std::size_t alphabet) = nullptr;
  /// Length of the common prefix of a and b, reading b up to `end`
  /// (exclusive). Caller guarantees a < b, so a never reads past the
  /// bytes b itself may touch. LZB match scan.
  std::size_t (*match_len)(const std::uint8_t* a, const std::uint8_t* b,
                           const std::uint8_t* end) = nullptr;
};

/// Byte kernels for the active tier, or nullptr when the scalar path
/// should run. Same null convention as kernels<T>().
const ByteKernels* byte_kernels();

/// The scalar byte-kernel reference table — always available.
const ByteKernels& scalar_byte_kernels();

/// Byte kernels for a specific tier, or nullptr when not compiled in.
const ByteKernels* tier_byte_kernels(Tier t);

}  // namespace qip::simd
