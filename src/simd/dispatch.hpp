#pragma once

// Runtime-dispatched SIMD kernel layer.
//
// The hot inner loops of the pipeline — the LinearQuantizer encode path,
// the stride-1 row kernels of InterpEngine::run_stage_seq, and the 2-D
// stage-grid Lorenzo QP transform — are data-parallel. This module
// provides explicitly vectorized variants of those loops, selected at
// runtime by CPU capability (cpuid) so one binary stays portable:
//
//   scalar  — reference loops over the public quantizer/QP API; always
//             available, always bit-identical to the engine's own loops.
//   sse42   — 128-bit kernels (4 x f32 / 2 x f64 per step).
//   avx2    — 256-bit kernels (8 x f32 / 4 x f64 per step).
//
// Vector translation units are compiled with per-TU ISA flags
// (src/CMakeLists.txt) and are only *called* after a cpuid check here,
// so the baseline build never executes an unsupported instruction.
//
// Bit-identity contract: every kernel produces exactly the codes,
// symbols, reconstructions and outlier streams of the scalar path, for
// every input including NaN/Inf fields and hostile decode symbol
// streams. The environment gate QIP_SIMD_FORCE_SCALAR=1 (mirroring the
// QIP_INTERP_FORCE_GENERIC A/B pattern) disables dispatch at runtime;
// QIP_SIMD_TIER=scalar|sse42|avx2 caps the tier for triage. Archives
// must be byte-identical either way — tests/test_simd.cpp enforces it.
//
// Intrinsics live only in the vec_*.hpp headers under this directory
// (the qip_lint.py `simd-confined` rule keeps it that way).

#include <cstddef>
#include <cstdint>

#include "core/qp.hpp"
#include "predict/interpolation.hpp"
#include "quant/quantizer.hpp"

namespace qip::simd {

/// Kernel instruction-set tier, in increasing capability order.
enum class Tier : int {
  kScalar = 0,
  kSSE42 = 1,
  kAVX2 = 2,
};

const char* to_string(Tier t);

/// Best tier this CPU supports (independent of what was compiled in or
/// any runtime gate).
Tier cpu_tier();

/// True when this binary contains kernels for `t` (vector TUs are only
/// built when the compiler supports the ISA flags on this target).
bool tier_compiled(Tier t);

/// True when QIP_SIMD_FORCE_SCALAR is set (to anything but "0"), or a
/// test override is active. Forces every dispatch site to the scalar
/// reference path.
bool force_scalar();

/// The tier dispatch actually uses: min(cpu_tier, compiled tiers,
/// QIP_SIMD_TIER cap), or kScalar under force_scalar().
Tier active_tier();

/// True when the table-driven Huffman decoder (encode/huffman.cpp) may
/// run; false under force_scalar() so the A/B gate covers it too.
bool huffman_fast_enabled();

/// Test hooks: override the force-scalar gate / cap the tier without
/// touching the environment. -1 clears the override.
void set_force_scalar_override(int v);
void set_tier_cap_override(int tier);

/// Below this many points a row segment is not worth a kernel call.
inline constexpr std::size_t kMinKernelPoints = 16;

/// One stage-row work item handed from InterpEngine::run_stage_seq to a
/// row kernel. Describes `count` stage points starting at linear element
/// index `i0`, spaced `estep` elements apart, all sharing one PredKind
/// stencil with arm `st` and one QP neighborhood `nb`. The engine
/// guarantees: every backward stencil read is in bounds, estep is 1 or
/// 2, radius is in (0, 2^20], and (encode) symbols commit to syms_out
/// in row order while (decode) syms_in holds at least `count` symbols.
template <class T>
struct RowArgs {
  T* data = nullptr;              ///< full field; reconstruction in place
  std::uint32_t* codes = nullptr; ///< full spatial code array
  std::size_t total = 0;          ///< element count of the field
  std::size_t i0 = 0;             ///< linear index of the first point
  std::size_t count = 0;          ///< points in this segment
  std::size_t estep = 1;          ///< element step between points
  std::ptrdiff_t st = 0;          ///< stencil arm, in elements
  PredKind kind = PredKind::kCopy;
  LinearQuantizer<T>* quant = nullptr;
  const QPConfig* qp = nullptr;   ///< valid when qp_active
  QPNeighborhood nb{};            ///< availability constant over the row
  int level = 0;
  std::int32_t radius = 0;
  bool qp_active = false;
  /// Decode only: a QP-used axis runs along the row, so compensation at
  /// point j reads codes this segment itself decodes (j-1 and earlier).
  /// The symbol->code chain must then run serially; prediction and value
  /// recovery still vectorize.
  bool qp_serial = false;
  std::uint32_t* syms_out = nullptr;       ///< encode destination
  const std::uint32_t* syms_in = nullptr;  ///< decode source
};

/// Dispatch table of one tier's kernels for element type T. Function
/// pointers so call sites stay ABI-stable across TUs compiled with
/// different ISA flags.
template <class T>
struct Kernels {
  Tier tier = Tier::kScalar;

  /// One row segment, encode direction (pipeline in kernels_interp.hpp).
  void (*encode_row)(const RowArgs<T>&) = nullptr;
  /// One row segment, decode direction.
  void (*decode_row)(const RowArgs<T>&) = nullptr;

  /// Contiguous LinearQuantizer::quantize over n points: codes[i]/
  /// recon[i] from vals[i] vs preds[i]; outliers append to q's list in
  /// ascending i order exactly like the scalar loop.
  void (*quant_encode_block)(const T* vals, const T* preds, std::size_t n,
                             LinearQuantizer<T>* q, std::uint32_t* codes,
                             T* recon) = nullptr;
  /// Contiguous LinearQuantizer::recover over n points; code 0 consumes
  /// outliers in ascending i order (and throws when exhausted) exactly
  /// like the scalar loop.
  void (*quant_recover_block)(const std::uint32_t* codes, const T* preds,
                              std::size_t n, LinearQuantizer<T>* q,
                              T* out) = nullptr;

  /// Contiguous form of qp2d_comp_batch (see core/qp.hpp for the low-32
  /// compensation contract).
  void (*qp2d_comp_block)(const std::uint32_t* left, const std::uint32_t* top,
                          const std::uint32_t* diag, std::size_t n,
                          QPCondition cond, std::int32_t radius,
                          std::int32_t* comp) = nullptr;
  /// Contiguous qp_encode_symbol with per-point compensation. Exact when
  /// |(code - radius) - comp| < 2^31 (the zigzag runs in 32-bit lanes);
  /// the engine's radius <= 2^20 eligibility gate implies this for every
  /// code/compensation pair the pipeline can produce.
  void (*qp_sym_encode_block)(const std::uint32_t* codes,
                              const std::int32_t* comp, std::size_t n,
                              std::int32_t radius,
                              std::uint32_t* syms) = nullptr;
  /// Contiguous qp_decode_symbol with per-point compensation.
  /// Unconditionally exact for arbitrary (hostile) u32 symbols: decode
  /// consumes the compensation mod 2^32 only.
  void (*qp_sym_decode_block)(const std::uint32_t* syms,
                              const std::int32_t* comp, std::size_t n,
                              std::int32_t radius,
                              std::uint32_t* codes) = nullptr;
};

/// Kernels for the active tier, or nullptr when the scalar path should
/// run (scalar tier, or force_scalar()). Engine call sites treat null as
/// "use your own loops", which keeps the scalar baseline the engine's
/// original code rather than a copy of it.
template <class T>
const Kernels<T>* kernels();
template <>
const Kernels<float>* kernels<float>();
template <>
const Kernels<double>* kernels<double>();

/// The scalar reference table — always available regardless of tier or
/// gates. Benches and A/B tests use it as ground truth.
template <class T>
const Kernels<T>& scalar_kernels();
template <>
const Kernels<float>& scalar_kernels<float>();
template <>
const Kernels<double>& scalar_kernels<double>();

/// Kernels for a specific tier, or nullptr when that tier is not
/// compiled in. Used by the tier-forcing dispatch tests.
template <class T>
const Kernels<T>* tier_kernels(Tier t);
template <>
const Kernels<float>* tier_kernels<float>(Tier t);
template <>
const Kernels<double>* tier_kernels<double>(Tier t);

}  // namespace qip::simd
