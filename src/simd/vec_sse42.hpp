#pragma once

// 128-bit (SSE4.2 tier) vector traits consumed by the kernel templates.
// This header may only be included from TUs compiled with -msse4.2
// (src/simd/tu_sse42.cpp); intrinsics are confined to src/simd/ by the
// qip_lint.py `simd-confined` rule.
//
// Bit-identity notes (shared with vec_avx2.hpp):
//  * no FMA is ever used, and the TUs are compiled with
//    -ffp-contract=off, so every add/mul rounds exactly like the scalar
//    expression it mirrors;
//  * cvtpd_epi32 rounds per MXCSR (round-to-nearest-even by default),
//    matching std::lrint under the default FP environment; kernels only
//    consume lanes the range gate proved in-range;
//  * compares use ordered non-signaling predicates, so NaN lanes fail
//    the gate and take the scalar escape exactly like the scalar code.

#include <cstdint>
#include <cstring>
#include <nmmintrin.h>

namespace qip::simd {

namespace detail {

inline __m128i iload128(const void* p, std::size_t bytes) {
  __m128i v = _mm_setzero_si128();
  std::memcpy(&v, p, bytes);
  return v;
}

inline void istore128(void* p, __m128i v, std::size_t bytes) {
  std::memcpy(p, &v, bytes);
}

}  // namespace detail

/// 4 x f32 per step.
struct SseF32 {
  using T = float;
  static constexpr int K = 4;
  using VT = __m128;
  struct VD {
    __m128d lo, hi;  // lanes 0-1, 2-3
  };
  using VI = __m128i;

  static VT vload(const T* p) { return _mm_loadu_ps(p); }
  static VT vload2(const T* p) {
    const __m128 v0 = _mm_loadu_ps(p);
    const __m128 v1 = _mm_loadu_ps(p + 4);
    return _mm_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0));
  }
  static void vstore(T* p, VT v) { _mm_storeu_ps(p, v); }
  static VT vsplat(T x) { return _mm_set1_ps(x); }
  static VT vadd(VT a, VT b) { return _mm_add_ps(a, b); }
  static VT vsub(VT a, VT b) { return _mm_sub_ps(a, b); }
  static VT vmul(VT a, VT b) { return _mm_mul_ps(a, b); }

  static VD widen(VT v) {
    return {_mm_cvtps_pd(v),
            _mm_cvtps_pd(_mm_movehl_ps(v, v))};
  }
  static VT narrow(VD d) {
    return _mm_movelh_ps(_mm_cvtpd_ps(d.lo), _mm_cvtpd_ps(d.hi));
  }
  static VD dsplat(double x) { return {_mm_set1_pd(x), _mm_set1_pd(x)}; }
  static VD dadd(VD a, VD b) {
    return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
  }
  static VD dsub(VD a, VD b) {
    return {_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)};
  }
  static VD dmul(VD a, VD b) {
    return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
  }
  static VD dabs(VD a) {
    const __m128d m = _mm_castsi128_pd(_mm_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
    return {_mm_and_pd(a.lo, m), _mm_and_pd(a.hi, m)};
  }
  static unsigned dlt(VD a, VD b) {
    return static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(a.lo, b.lo))) |
           (static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(a.hi, b.hi)))
            << 2);
  }
  static unsigned dle(VD a, VD b) {
    return static_cast<unsigned>(_mm_movemask_pd(_mm_cmple_pd(a.lo, b.lo))) |
           (static_cast<unsigned>(_mm_movemask_pd(_mm_cmple_pd(a.hi, b.hi)))
            << 2);
  }
  static VI drint(VD d) {
    return _mm_unpacklo_epi64(_mm_cvtpd_epi32(d.lo), _mm_cvtpd_epi32(d.hi));
  }
  static VD dfromi(VI v) {
    return {_mm_cvtepi32_pd(v),
            _mm_cvtepi32_pd(_mm_unpackhi_epi64(v, v))};
  }

  static VI iload(const std::uint32_t* p) { return detail::iload128(p, 16); }
  static VI iload2(const std::uint32_t* p) {
    const __m128 v0 = _mm_castsi128_ps(detail::iload128(p, 16));
    const __m128 v1 = _mm_castsi128_ps(detail::iload128(p + 4, 16));
    return _mm_castps_si128(_mm_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0)));
  }
  static void istore(std::uint32_t* p, VI v) { detail::istore128(p, v, 16); }
  static VI isplat(std::int32_t x) { return _mm_set1_epi32(x); }
  static VI iadd(VI a, VI b) { return _mm_add_epi32(a, b); }
  static VI isub(VI a, VI b) { return _mm_sub_epi32(a, b); }
  static VI icmpeq(VI a, VI b) { return _mm_cmpeq_epi32(a, b); }
  static VI icmpgt(VI a, VI b) { return _mm_cmpgt_epi32(a, b); }
  static VI iand(VI a, VI b) { return _mm_and_si128(a, b); }
  static VI ior(VI a, VI b) { return _mm_or_si128(a, b); }
  static VI ixor(VI a, VI b) { return _mm_xor_si128(a, b); }
  static VI iandnot(VI a, VI b) { return _mm_andnot_si128(a, b); }
  static VI ishl1(VI a) { return _mm_slli_epi32(a, 1); }
  static VI ishr1(VI a) { return _mm_srli_epi32(a, 1); }
  static VI isar31(VI a) { return _mm_srai_epi32(a, 31); }
  static unsigned imask(VI a) {
    return static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(a)));
  }
};

/// 2 x f64 per step. Only the low two 32-bit lanes of VI are meaningful.
struct SseF64 {
  using T = double;
  static constexpr int K = 2;
  using VT = __m128d;
  using VD = __m128d;
  using VI = __m128i;

  static VT vload(const T* p) { return _mm_loadu_pd(p); }
  static VT vload2(const T* p) {
    return _mm_shuffle_pd(_mm_loadu_pd(p), _mm_loadu_pd(p + 2), 0);
  }
  static void vstore(T* p, VT v) { _mm_storeu_pd(p, v); }
  static VT vsplat(T x) { return _mm_set1_pd(x); }
  static VT vadd(VT a, VT b) { return _mm_add_pd(a, b); }
  static VT vsub(VT a, VT b) { return _mm_sub_pd(a, b); }
  static VT vmul(VT a, VT b) { return _mm_mul_pd(a, b); }

  static VD widen(VT v) { return v; }
  static VT narrow(VD d) { return d; }
  static VD dsplat(double x) { return _mm_set1_pd(x); }
  static VD dadd(VD a, VD b) { return _mm_add_pd(a, b); }
  static VD dsub(VD a, VD b) { return _mm_sub_pd(a, b); }
  static VD dmul(VD a, VD b) { return _mm_mul_pd(a, b); }
  static VD dabs(VD a) {
    return _mm_and_pd(
        a, _mm_castsi128_pd(_mm_set1_epi64x(0x7FFFFFFFFFFFFFFFll)));
  }
  static unsigned dlt(VD a, VD b) {
    return static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(a, b)));
  }
  static unsigned dle(VD a, VD b) {
    return static_cast<unsigned>(_mm_movemask_pd(_mm_cmple_pd(a, b)));
  }
  static VI drint(VD d) { return _mm_cvtpd_epi32(d); }
  static VD dfromi(VI v) { return _mm_cvtepi32_pd(v); }

  static VI iload(const std::uint32_t* p) { return detail::iload128(p, 8); }
  static VI iload2(const std::uint32_t* p) {
    return _mm_set_epi32(0, 0, static_cast<std::int32_t>(p[2]),
                         static_cast<std::int32_t>(p[0]));
  }
  static void istore(std::uint32_t* p, VI v) { detail::istore128(p, v, 8); }
  static VI isplat(std::int32_t x) { return _mm_set1_epi32(x); }
  static VI iadd(VI a, VI b) { return _mm_add_epi32(a, b); }
  static VI isub(VI a, VI b) { return _mm_sub_epi32(a, b); }
  static VI icmpeq(VI a, VI b) { return _mm_cmpeq_epi32(a, b); }
  static VI icmpgt(VI a, VI b) { return _mm_cmpgt_epi32(a, b); }
  static VI iand(VI a, VI b) { return _mm_and_si128(a, b); }
  static VI ior(VI a, VI b) { return _mm_or_si128(a, b); }
  static VI ixor(VI a, VI b) { return _mm_xor_si128(a, b); }
  static VI iandnot(VI a, VI b) { return _mm_andnot_si128(a, b); }
  static VI ishl1(VI a) { return _mm_slli_epi32(a, 1); }
  static VI ishr1(VI a) { return _mm_srli_epi32(a, 1); }
  static VI isar31(VI a) { return _mm_srai_epi32(a, 31); }
  static unsigned imask(VI a) {
    return static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(a))) & 0x3u;
  }
};

/// Byte/u32 trait for the entropy-stage kernels (kernels_bytes.hpp).
struct SseBytes {
  static constexpr std::size_t W = 16;  ///< bytes per match-scan step
  static constexpr int KU = 4;          ///< u32 lanes per step
  using VU = __m128i;

  /// Bitmask (bit i = byte i, LSB = lowest address) of differing bytes.
  static std::uint64_t bdiff(const std::uint8_t* a, const std::uint8_t* b) {
    const unsigned eq = static_cast<unsigned>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(detail::iload128(a, 16), detail::iload128(b, 16))));
    return static_cast<std::uint64_t>(~eq & 0xFFFFu);
  }

  static VU uload(const std::uint32_t* p) { return detail::iload128(p, 16); }
  static void ustore(std::uint32_t* p, VU v) { detail::istore128(p, v, 16); }
  static VU umax(VU a, VU b) { return _mm_max_epu32(a, b); }
};

}  // namespace qip::simd
