#pragma once

// Element-type-independent byte/u32 kernel templates behind the
// ByteKernels dispatch table (dispatch.hpp): the Huffman alphabet max
// scan, the Huffman histogram with per-lane sub-histograms, and the LZB
// match scan. All three are exact integer computations, so every tier
// produces identical results by construction; they dispatch anyway so
// QIP_SIMD_FORCE_SCALAR/QIP_SIMD_TIER stay the single A/B switch for
// the whole pipeline.
//
// Instantiate with a byte trait (SseBytes/AvxBytes/Avx512Bytes) from a
// vec_*.hpp header, inside the matching per-ISA TU only.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "simd/dispatch.hpp"

namespace qip::simd {

template <class B>
std::uint32_t max_u32_v(const std::uint32_t* v, std::size_t n) {
  constexpr std::size_t KU = B::KU;
  std::uint32_t m = 0;
  std::size_t i = 0;
  if (n >= KU) {
    auto acc = B::uload(v);
    for (i = KU; i + KU <= n; i += KU) acc = B::umax(acc, B::uload(v + i));
    std::uint32_t lanes[KU];
    B::ustore(lanes, acc);
    for (std::size_t k = 0; k < KU; ++k) m = std::max(m, lanes[k]);
  }
  for (; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

/// Histogram accumulation with one sub-histogram per vector lane.
/// A single counter array serializes skewed streams (every increment of
/// a hot symbol waits on the store-to-load forward of the previous one);
/// KU interleaved sub-histograms restore the ILP and merge exactly.
template <class B>
void hist_u32_v(const std::uint32_t* v, std::size_t n, std::uint64_t* hist,
                std::size_t alphabet) {
  constexpr std::size_t KU = B::KU;
  // Sub-histograms cost KU*alphabet zeroing plus a merge pass; skip them
  // for short streams, and for alphabets past 2^16 (kDenseAlphabetCap is
  // 2^21, which would be a 256 MiB scratch at KU=16) where the stream is
  // spread too thin for forwarding stalls to dominate anyway.
  if (alphabet > (std::size_t{1} << 16) ||
      n < KU * std::max<std::size_t>(alphabet, 1024)) {
    for (std::size_t i = 0; i < n; ++i) ++hist[v[i]];
    return;
  }
  std::vector<std::uint64_t> scratch(KU * alphabet, 0);
  std::uint64_t* sub[KU];
  for (std::size_t k = 0; k < KU; ++k) sub[k] = scratch.data() + k * alphabet;
  std::uint32_t lane[KU];
  std::size_t i = 0;
  for (; i + KU <= n; i += KU) {
    B::ustore(lane, B::uload(v + i));
    for (std::size_t k = 0; k < KU; ++k) ++sub[k][lane[k]];
  }
  for (; i < n; ++i) ++sub[0][v[i]];
  for (std::size_t s = 0; s < alphabet; ++s) {
    std::uint64_t t = hist[s];
    for (std::size_t k = 0; k < KU; ++k) t += sub[k][s];
    hist[s] = t;
  }
}

/// Common-prefix length of a and b (b bounded by `end`), W bytes per
/// compare. The caller guarantees a < b, so a never reads past bytes b
/// itself may touch; the tails replay the scalar 8-byte/1-byte loops.
template <class B>
std::size_t match_len_v(const std::uint8_t* a, const std::uint8_t* b,
                        const std::uint8_t* end) {
  const std::uint8_t* const start = b;
  constexpr std::size_t W = B::W;
  while (b + W <= end) {
    const std::uint64_t ne = B::bdiff(a, b);
    if (ne)
      return static_cast<std::size_t>(b - start) +
             static_cast<std::size_t>(std::countr_zero(ne));
    a += W;
    b += W;
  }
  while (b + 8 <= end) {
    std::uint64_t x, y;
    std::memcpy(&x, a, 8);
    std::memcpy(&y, b, 8);
    const std::uint64_t diff = x ^ y;
    if (diff)
      return static_cast<std::size_t>(b - start) +
             static_cast<std::size_t>(std::countr_zero(diff) >> 3);
    a += 8;
    b += 8;
  }
  while (b < end && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<std::size_t>(b - start);
}

template <class B>
ByteKernels make_byte_kernels(Tier tier) {
  ByteKernels k;
  k.tier = tier;
  k.max_u32 = &max_u32_v<B>;
  k.hist_u32 = &hist_u32_v<B>;
  k.match_len = &match_len_v<B>;
  return k;
}

}  // namespace qip::simd
