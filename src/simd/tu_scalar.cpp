// Scalar-tier kernel tables (reference loops; see kernels_ref.hpp).
// Compiled with the project's baseline flags on every platform.

#include "simd/dispatch.hpp"
#include "simd/kernels_ref.hpp"

namespace qip::simd::detail {

const Kernels<float>& scalar_ref_f32() {
  static const Kernels<float> k = make_scalar_kernels<float>();
  return k;
}

const Kernels<double>& scalar_ref_f64() {
  static const Kernels<double> k = make_scalar_kernels<double>();
  return k;
}

const ByteKernels& scalar_byte_ref() {
  static const ByteKernels k = make_scalar_byte_kernels();
  return k;
}

}  // namespace qip::simd::detail
