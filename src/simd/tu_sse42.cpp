// SSE4.2-tier kernel tables. This TU (alone) is compiled with -msse4.2;
// its code is only reached after dispatch.cpp's cpuid check.

#include "simd/dispatch.hpp"
#include "simd/kernels_bytes.hpp"
#include "simd/kernels_interp.hpp"
#include "simd/vec_sse42.hpp"

namespace qip::simd::detail {

const Kernels<float>* sse42_kernels_f32() {
  static const Kernels<float> k = make_kernels<SseF32>(Tier::kSSE42);
  return &k;
}

const Kernels<double>* sse42_kernels_f64() {
  static const Kernels<double> k = make_kernels<SseF64>(Tier::kSSE42);
  return &k;
}

const ByteKernels* sse42_byte_kernels() {
  static const ByteKernels k = make_byte_kernels<SseBytes>(Tier::kSSE42);
  return &k;
}

}  // namespace qip::simd::detail
