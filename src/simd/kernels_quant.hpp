#pragma once

// Vectorized LinearQuantizer block kernels, templated over a vector
// trait V (vec_sse42.hpp / vec_avx2.hpp). Include only from the vector
// TUs in this directory.
//
// The vector path replays quantize()/recover() arithmetic exactly: the
// range gate |qd| < radius-1 and the reconstruction-bound check are
// evaluated on the same doubles the scalar code sees, so the ok-mask IS
// the scalar branch decision. Lanes that fail either check (including
// NaN, which fails the ordered compare) fall back to the public
// LinearQuantizer API in ascending lane order, which keeps the outlier
// stream byte-identical to the scalar loop.

#include <cstddef>
#include <cstdint>

#include "quant/quantizer.hpp"

namespace qip::simd {

/// Contiguous LinearQuantizer::quantize over n points.
template <class V>
void quant_encode_block_v(const typename V::T* vals,
                          const typename V::T* preds, std::size_t n,
                          LinearQuantizer<typename V::T>* q,
                          std::uint32_t* codes, typename V::T* recon) {
  constexpr int K = V::K;
  constexpr unsigned kAll = (1u << K) - 1;
  const auto inv = V::dsplat(q->inv_two_eb());
  const auto teb = V::dsplat(q->two_eb());
  const auto ebv = V::dsplat(q->error_bound());
  const auto gate = V::dsplat(static_cast<double>(q->radius()) - 1);
  const auto vrad = V::isplat(q->radius());

  std::size_t i = 0;
  for (; i + K <= n; i += K) {
    const auto vd = V::widen(V::vload(vals + i));
    const auto vp = V::widen(V::vload(preds + i));
    const auto qd = V::dmul(V::dsub(vd, vp), inv);
    const unsigned m1 = V::dlt(V::dabs(qd), gate);
    // Out-of-range / NaN lanes produce sentinel integers here; they are
    // all masked out by m1, exactly as the scalar branch never converts.
    const auto qi = V::drint(qd);
    const auto dec = V::narrow(V::dadd(vp, V::dmul(teb, V::dfromi(qi))));
    const unsigned m2 = V::dle(V::dabs(V::dsub(V::widen(dec), vd)), ebv);
    const unsigned ok = m1 & m2;
    V::vstore(recon + i, dec);
    V::istore(codes + i, V::iadd(qi, vrad));
    if (ok != kAll) {
      for (int k = 0; k < K; ++k) {
        if (!(ok >> k & 1u))
          codes[i + k] = q->quantize(vals[i + k], preds[i + k], &recon[i + k]);
      }
    }
  }
  for (; i < n; ++i) codes[i] = q->quantize(vals[i], preds[i], &recon[i]);
}

/// Contiguous LinearQuantizer::recover over n points. Code 0 lanes go
/// through the public recover() so outlier consumption (and the
/// exhaustion throw) matches the scalar loop exactly.
template <class V>
void quant_recover_block_v(const std::uint32_t* codes,
                           const typename V::T* preds, std::size_t n,
                           LinearQuantizer<typename V::T>* q,
                           typename V::T* out) {
  constexpr int K = V::K;
  const auto teb = V::dsplat(q->two_eb());
  const auto vrad = V::isplat(q->radius());
  const auto zero = V::isplat(0);

  std::size_t i = 0;
  for (; i + K <= n; i += K) {
    const auto vc = V::iload(codes + i);
    const unsigned m0 = V::imask(V::icmpeq(vc, zero));
    const auto qi = V::isub(vc, vrad);
    const auto vp = V::widen(V::vload(preds + i));
    V::vstore(out + i, V::narrow(V::dadd(vp, V::dmul(teb, V::dfromi(qi)))));
    if (m0) {
      for (int k = 0; k < K; ++k) {
        if (m0 >> k & 1u) out[i + k] = q->recover(0, preds[i + k]);
      }
    }
  }
  for (; i < n; ++i) out[i] = q->recover(codes[i], preds[i]);
}

}  // namespace qip::simd
