#pragma once

// 256-bit (AVX2 tier) vector traits consumed by the kernel templates.
// Include only from TUs compiled with -mavx2 (src/simd/tu_avx2.cpp);
// see vec_sse42.hpp for the shared bit-identity notes.

#include <cstdint>
#include <cstring>
#include <immintrin.h>

namespace qip::simd {

namespace detail {

inline __m256i iload256(const void* p, std::size_t bytes) {
  __m256i v = _mm256_setzero_si256();
  std::memcpy(&v, p, bytes);
  return v;
}

inline void istore256(void* p, __m256i v, std::size_t bytes) {
  std::memcpy(p, &v, bytes);
}

}  // namespace detail

/// 8 x f32 per step.
struct AvxF32 {
  using T = float;
  static constexpr int K = 8;
  using VT = __m256;
  struct VD {
    __m256d lo, hi;  // lanes 0-3, 4-7
  };
  using VI = __m256i;

  static VT vload(const T* p) { return _mm256_loadu_ps(p); }
  static VT vload2(const T* p) {
    const __m256 v0 = _mm256_loadu_ps(p);
    const __m256 v1 = _mm256_loadu_ps(p + 8);
    // Per 128-bit half: take even lanes of v0 then v1, giving 64-bit
    // chunks [0,2][8,10] | [4,6][12,14]; permute chunks to row order.
    const __m256 s = _mm256_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0));
    return _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(s),
                                                  _MM_SHUFFLE(3, 1, 2, 0)));
  }
  static void vstore(T* p, VT v) { _mm256_storeu_ps(p, v); }
  static VT vsplat(T x) { return _mm256_set1_ps(x); }
  static VT vadd(VT a, VT b) { return _mm256_add_ps(a, b); }
  static VT vsub(VT a, VT b) { return _mm256_sub_ps(a, b); }
  static VT vmul(VT a, VT b) { return _mm256_mul_ps(a, b); }

  static VD widen(VT v) {
    return {_mm256_cvtps_pd(_mm256_castps256_ps128(v)),
            _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1))};
  }
  static VT narrow(VD d) {
    return _mm256_set_m128(_mm256_cvtpd_ps(d.hi), _mm256_cvtpd_ps(d.lo));
  }
  static VD dsplat(double x) {
    return {_mm256_set1_pd(x), _mm256_set1_pd(x)};
  }
  static VD dadd(VD a, VD b) {
    return {_mm256_add_pd(a.lo, b.lo), _mm256_add_pd(a.hi, b.hi)};
  }
  static VD dsub(VD a, VD b) {
    return {_mm256_sub_pd(a.lo, b.lo), _mm256_sub_pd(a.hi, b.hi)};
  }
  static VD dmul(VD a, VD b) {
    return {_mm256_mul_pd(a.lo, b.lo), _mm256_mul_pd(a.hi, b.hi)};
  }
  static VD dabs(VD a) {
    const __m256d m =
        _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
    return {_mm256_and_pd(a.lo, m), _mm256_and_pd(a.hi, m)};
  }
  static unsigned dlt(VD a, VD b) {
    return static_cast<unsigned>(
               _mm256_movemask_pd(_mm256_cmp_pd(a.lo, b.lo, _CMP_LT_OQ))) |
           (static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_cmp_pd(a.hi, b.hi, _CMP_LT_OQ)))
            << 4);
  }
  static unsigned dle(VD a, VD b) {
    return static_cast<unsigned>(
               _mm256_movemask_pd(_mm256_cmp_pd(a.lo, b.lo, _CMP_LE_OQ))) |
           (static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_cmp_pd(a.hi, b.hi, _CMP_LE_OQ)))
            << 4);
  }
  static VI drint(VD d) {
    return _mm256_set_m128i(_mm256_cvtpd_epi32(d.hi),
                            _mm256_cvtpd_epi32(d.lo));
  }
  static VD dfromi(VI v) {
    return {_mm256_cvtepi32_pd(_mm256_castsi256_si128(v)),
            _mm256_cvtepi32_pd(_mm256_extracti128_si256(v, 1))};
  }

  static VI iload(const std::uint32_t* p) { return detail::iload256(p, 32); }
  static VI iload2(const std::uint32_t* p) {
    const __m256 v0 = _mm256_castsi256_ps(detail::iload256(p, 32));
    const __m256 v1 = _mm256_castsi256_ps(detail::iload256(p + 8, 32));
    const __m256 s = _mm256_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0));
    return _mm256_castpd_si256(_mm256_permute4x64_pd(_mm256_castps_pd(s),
                                                     _MM_SHUFFLE(3, 1, 2, 0)));
  }
  static void istore(std::uint32_t* p, VI v) { detail::istore256(p, v, 32); }
  static VI isplat(std::int32_t x) { return _mm256_set1_epi32(x); }
  static VI iadd(VI a, VI b) { return _mm256_add_epi32(a, b); }
  static VI isub(VI a, VI b) { return _mm256_sub_epi32(a, b); }
  static VI icmpeq(VI a, VI b) { return _mm256_cmpeq_epi32(a, b); }
  static VI icmpgt(VI a, VI b) { return _mm256_cmpgt_epi32(a, b); }
  static VI iand(VI a, VI b) { return _mm256_and_si256(a, b); }
  static VI ior(VI a, VI b) { return _mm256_or_si256(a, b); }
  static VI ixor(VI a, VI b) { return _mm256_xor_si256(a, b); }
  static VI iandnot(VI a, VI b) { return _mm256_andnot_si256(a, b); }
  static VI ishl1(VI a) { return _mm256_slli_epi32(a, 1); }
  static VI ishr1(VI a) { return _mm256_srli_epi32(a, 1); }
  static VI isar31(VI a) { return _mm256_srai_epi32(a, 31); }
  static unsigned imask(VI a) {
    return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(a)));
  }
};

/// 4 x f64 per step; VI is the matching 4 x i32 128-bit vector.
struct AvxF64 {
  using T = double;
  static constexpr int K = 4;
  using VT = __m256d;
  using VD = __m256d;
  using VI = __m128i;

  static VT vload(const T* p) { return _mm256_loadu_pd(p); }
  static VT vload2(const T* p) {
    const __m256d v0 = _mm256_loadu_pd(p);
    const __m256d v1 = _mm256_loadu_pd(p + 4);
    // unpacklo gives chunks [0][4] | [2][6]; permute to row order.
    return _mm256_permute4x64_pd(_mm256_unpacklo_pd(v0, v1),
                                 _MM_SHUFFLE(3, 1, 2, 0));
  }
  static void vstore(T* p, VT v) { _mm256_storeu_pd(p, v); }
  static VT vsplat(T x) { return _mm256_set1_pd(x); }
  static VT vadd(VT a, VT b) { return _mm256_add_pd(a, b); }
  static VT vsub(VT a, VT b) { return _mm256_sub_pd(a, b); }
  static VT vmul(VT a, VT b) { return _mm256_mul_pd(a, b); }

  static VD widen(VT v) { return v; }
  static VT narrow(VD d) { return d; }
  static VD dsplat(double x) { return _mm256_set1_pd(x); }
  static VD dadd(VD a, VD b) { return _mm256_add_pd(a, b); }
  static VD dsub(VD a, VD b) { return _mm256_sub_pd(a, b); }
  static VD dmul(VD a, VD b) { return _mm256_mul_pd(a, b); }
  static VD dabs(VD a) {
    return _mm256_and_pd(a, _mm256_castsi256_pd(_mm256_set1_epi64x(
                                0x7FFFFFFFFFFFFFFFll)));
  }
  static unsigned dlt(VD a, VD b) {
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_LT_OQ)));
  }
  static unsigned dle(VD a, VD b) {
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_LE_OQ)));
  }
  static VI drint(VD d) { return _mm256_cvtpd_epi32(d); }
  static VD dfromi(VI v) { return _mm256_cvtepi32_pd(v); }

  static VI iload(const std::uint32_t* p) {
    __m128i v = _mm_setzero_si128();
    std::memcpy(&v, p, 16);
    return v;
  }
  static VI iload2(const std::uint32_t* p) {
    return _mm_set_epi32(static_cast<std::int32_t>(p[6]),
                         static_cast<std::int32_t>(p[4]),
                         static_cast<std::int32_t>(p[2]),
                         static_cast<std::int32_t>(p[0]));
  }
  static void istore(std::uint32_t* p, VI v) { std::memcpy(p, &v, 16); }
  static VI isplat(std::int32_t x) { return _mm_set1_epi32(x); }
  static VI iadd(VI a, VI b) { return _mm_add_epi32(a, b); }
  static VI isub(VI a, VI b) { return _mm_sub_epi32(a, b); }
  static VI icmpeq(VI a, VI b) { return _mm_cmpeq_epi32(a, b); }
  static VI icmpgt(VI a, VI b) { return _mm_cmpgt_epi32(a, b); }
  static VI iand(VI a, VI b) { return _mm_and_si128(a, b); }
  static VI ior(VI a, VI b) { return _mm_or_si128(a, b); }
  static VI ixor(VI a, VI b) { return _mm_xor_si128(a, b); }
  static VI iandnot(VI a, VI b) { return _mm_andnot_si128(a, b); }
  static VI ishl1(VI a) { return _mm_slli_epi32(a, 1); }
  static VI ishr1(VI a) { return _mm_srli_epi32(a, 1); }
  static VI isar31(VI a) { return _mm_srai_epi32(a, 31); }
  static unsigned imask(VI a) {
    return static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(a)));
  }
};

/// Byte/u32 trait for the entropy-stage kernels (kernels_bytes.hpp).
struct AvxBytes {
  static constexpr std::size_t W = 32;  ///< bytes per match-scan step
  static constexpr int KU = 8;          ///< u32 lanes per step
  using VU = __m256i;

  /// Bitmask (bit i = byte i, LSB = lowest address) of differing bytes.
  static std::uint64_t bdiff(const std::uint8_t* a, const std::uint8_t* b) {
    const std::uint32_t eq = static_cast<std::uint32_t>(_mm256_movemask_epi8(
        _mm256_cmpeq_epi8(detail::iload256(a, 32), detail::iload256(b, 32))));
    return static_cast<std::uint64_t>(~eq);
  }

  static VU uload(const std::uint32_t* p) { return detail::iload256(p, 32); }
  static void ustore(std::uint32_t* p, VU v) { detail::istore256(p, v, 32); }
  static VU umax(VU a, VU b) { return _mm256_max_epu32(a, b); }
};

}  // namespace qip::simd
