#pragma once

// 512-bit (AVX-512 tier) vector traits consumed by the kernel templates.
// Include only from TUs compiled with -mavx512f -mavx512bw -mavx512dq
// -mavx512vl (src/simd/tu_avx512.cpp); see vec_sse42.hpp for the shared
// bit-identity notes. AVX-512 adds nothing to the exactness envelope:
//  * the double arithmetic is the same no-FMA add/mul sequence;
//  * _mm512_cvtpd_epi32 rounds per MXCSR exactly like its 128/256-bit
//    siblings, matching std::lrint in the default FP environment;
//  * compares that feed gates use ordered non-signaling predicates
//    (mask registers here instead of movemask, same lane semantics).

#include <cstdint>
#include <cstring>
#include <immintrin.h>

namespace qip::simd {

namespace detail {

inline __m512i iload512(const void* p, std::size_t bytes) {
  __m512i v = _mm512_setzero_si512();
  std::memcpy(&v, p, bytes);
  return v;
}

inline void istore512(void* p, __m512i v, std::size_t bytes) {
  std::memcpy(p, &v, bytes);
}

/// Cross-register even-lane selector for the stride-2 loads: lane j of
/// the result is element 2j of the 32-element (a, b) concatenation.
inline __m512i even_idx32() {
  return _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26,
                           28, 30);
}

inline __m512i even_idx64() {
  return _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
}

}  // namespace detail

/// 16 x f32 per step.
struct Avx512F32 {
  using T = float;
  static constexpr int K = 16;
  using VT = __m512;
  struct VD {
    __m512d lo, hi;  // lanes 0-7, 8-15
  };
  using VI = __m512i;

  static VT vload(const T* p) { return _mm512_loadu_ps(p); }
  static VT vload2(const T* p) {
    const __m512 v0 = _mm512_loadu_ps(p);
    const __m512 v1 = _mm512_loadu_ps(p + 16);
    return _mm512_permutex2var_ps(v0, detail::even_idx32(), v1);
  }
  static void vstore(T* p, VT v) { _mm512_storeu_ps(p, v); }
  static VT vsplat(T x) { return _mm512_set1_ps(x); }
  static VT vadd(VT a, VT b) { return _mm512_add_ps(a, b); }
  static VT vsub(VT a, VT b) { return _mm512_sub_ps(a, b); }
  static VT vmul(VT a, VT b) { return _mm512_mul_ps(a, b); }

  static VD widen(VT v) {
    return {_mm512_cvtps_pd(_mm512_castps512_ps256(v)),
            _mm512_cvtps_pd(_mm512_extractf32x8_ps(v, 1))};
  }
  static VT narrow(VD d) {
    return _mm512_insertf32x8(
        _mm512_castps256_ps512(_mm512_cvtpd_ps(d.lo)), _mm512_cvtpd_ps(d.hi),
        1);
  }
  static VD dsplat(double x) {
    return {_mm512_set1_pd(x), _mm512_set1_pd(x)};
  }
  static VD dadd(VD a, VD b) {
    return {_mm512_add_pd(a.lo, b.lo), _mm512_add_pd(a.hi, b.hi)};
  }
  static VD dsub(VD a, VD b) {
    return {_mm512_sub_pd(a.lo, b.lo), _mm512_sub_pd(a.hi, b.hi)};
  }
  static VD dmul(VD a, VD b) {
    return {_mm512_mul_pd(a.lo, b.lo), _mm512_mul_pd(a.hi, b.hi)};
  }
  static VD dabs(VD a) {
    return {_mm512_abs_pd(a.lo), _mm512_abs_pd(a.hi)};
  }
  static unsigned dlt(VD a, VD b) {
    return static_cast<unsigned>(
               _mm512_cmp_pd_mask(a.lo, b.lo, _CMP_LT_OQ)) |
           (static_cast<unsigned>(_mm512_cmp_pd_mask(a.hi, b.hi, _CMP_LT_OQ))
            << 8);
  }
  static unsigned dle(VD a, VD b) {
    return static_cast<unsigned>(
               _mm512_cmp_pd_mask(a.lo, b.lo, _CMP_LE_OQ)) |
           (static_cast<unsigned>(_mm512_cmp_pd_mask(a.hi, b.hi, _CMP_LE_OQ))
            << 8);
  }
  static VI drint(VD d) {
    return _mm512_inserti64x4(
        _mm512_castsi256_si512(_mm512_cvtpd_epi32(d.lo)),
        _mm512_cvtpd_epi32(d.hi), 1);
  }
  static VD dfromi(VI v) {
    return {_mm512_cvtepi32_pd(_mm512_castsi512_si256(v)),
            _mm512_cvtepi32_pd(_mm512_extracti64x4_epi64(v, 1))};
  }

  static VI iload(const std::uint32_t* p) { return detail::iload512(p, 64); }
  static VI iload2(const std::uint32_t* p) {
    const __m512i v0 = detail::iload512(p, 64);
    const __m512i v1 = detail::iload512(p + 16, 64);
    return _mm512_permutex2var_epi32(v0, detail::even_idx32(), v1);
  }
  static void istore(std::uint32_t* p, VI v) { detail::istore512(p, v, 64); }
  static VI isplat(std::int32_t x) { return _mm512_set1_epi32(x); }
  static VI iadd(VI a, VI b) { return _mm512_add_epi32(a, b); }
  static VI isub(VI a, VI b) { return _mm512_sub_epi32(a, b); }
  // Compare results materialize the mask register back into the
  // all-ones/all-zero lane form the shared kernel templates expect.
  static VI icmpeq(VI a, VI b) {
    return _mm512_maskz_set1_epi32(_mm512_cmpeq_epi32_mask(a, b), -1);
  }
  static VI icmpgt(VI a, VI b) {
    return _mm512_maskz_set1_epi32(_mm512_cmpgt_epi32_mask(a, b), -1);
  }
  static VI iand(VI a, VI b) { return _mm512_and_si512(a, b); }
  static VI ior(VI a, VI b) { return _mm512_or_si512(a, b); }
  static VI ixor(VI a, VI b) { return _mm512_xor_si512(a, b); }
  static VI iandnot(VI a, VI b) { return _mm512_andnot_si512(a, b); }
  static VI ishl1(VI a) { return _mm512_slli_epi32(a, 1); }
  static VI ishr1(VI a) { return _mm512_srli_epi32(a, 1); }
  static VI isar31(VI a) { return _mm512_srai_epi32(a, 31); }
  static unsigned imask(VI a) {
    return static_cast<unsigned>(_mm512_movepi32_mask(a));
  }
};

/// 8 x f64 per step; VI is the matching 8 x i32 256-bit vector.
struct Avx512F64 {
  using T = double;
  static constexpr int K = 8;
  using VT = __m512d;
  using VD = __m512d;
  using VI = __m256i;

  static VT vload(const T* p) { return _mm512_loadu_pd(p); }
  static VT vload2(const T* p) {
    const __m512d v0 = _mm512_loadu_pd(p);
    const __m512d v1 = _mm512_loadu_pd(p + 8);
    return _mm512_permutex2var_pd(v0, detail::even_idx64(), v1);
  }
  static void vstore(T* p, VT v) { _mm512_storeu_pd(p, v); }
  static VT vsplat(T x) { return _mm512_set1_pd(x); }
  static VT vadd(VT a, VT b) { return _mm512_add_pd(a, b); }
  static VT vsub(VT a, VT b) { return _mm512_sub_pd(a, b); }
  static VT vmul(VT a, VT b) { return _mm512_mul_pd(a, b); }

  static VD widen(VT v) { return v; }
  static VT narrow(VD d) { return d; }
  static VD dsplat(double x) { return _mm512_set1_pd(x); }
  static VD dadd(VD a, VD b) { return _mm512_add_pd(a, b); }
  static VD dsub(VD a, VD b) { return _mm512_sub_pd(a, b); }
  static VD dmul(VD a, VD b) { return _mm512_mul_pd(a, b); }
  static VD dabs(VD a) { return _mm512_abs_pd(a); }
  static unsigned dlt(VD a, VD b) {
    return static_cast<unsigned>(_mm512_cmp_pd_mask(a, b, _CMP_LT_OQ));
  }
  static unsigned dle(VD a, VD b) {
    return static_cast<unsigned>(_mm512_cmp_pd_mask(a, b, _CMP_LE_OQ));
  }
  static VI drint(VD d) { return _mm512_cvtpd_epi32(d); }
  static VD dfromi(VI v) { return _mm512_cvtepi32_pd(v); }

  static VI iload(const std::uint32_t* p) {
    __m256i v = _mm256_setzero_si256();
    std::memcpy(&v, p, 32);
    return v;
  }
  static VI iload2(const std::uint32_t* p) {
    // Truncating each 64-bit lane keeps elements 0,2,..,14; the 64-byte
    // footprint matches vload2's, so the caller's full-width span check
    // already covers it.
    return _mm512_cvtepi64_epi32(detail::iload512(p, 64));
  }
  static void istore(std::uint32_t* p, VI v) { std::memcpy(p, &v, 32); }
  static VI isplat(std::int32_t x) { return _mm256_set1_epi32(x); }
  static VI iadd(VI a, VI b) { return _mm256_add_epi32(a, b); }
  static VI isub(VI a, VI b) { return _mm256_sub_epi32(a, b); }
  static VI icmpeq(VI a, VI b) { return _mm256_cmpeq_epi32(a, b); }
  static VI icmpgt(VI a, VI b) { return _mm256_cmpgt_epi32(a, b); }
  static VI iand(VI a, VI b) { return _mm256_and_si256(a, b); }
  static VI ior(VI a, VI b) { return _mm256_or_si256(a, b); }
  static VI ixor(VI a, VI b) { return _mm256_xor_si256(a, b); }
  static VI iandnot(VI a, VI b) { return _mm256_andnot_si256(a, b); }
  static VI ishl1(VI a) { return _mm256_slli_epi32(a, 1); }
  static VI ishr1(VI a) { return _mm256_srli_epi32(a, 1); }
  static VI isar31(VI a) { return _mm256_srai_epi32(a, 31); }
  static unsigned imask(VI a) {
    return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(a)));
  }
};

/// Byte/u32 trait for the entropy-stage kernels (kernels_bytes.hpp).
struct Avx512Bytes {
  static constexpr std::size_t W = 64;  ///< bytes per match-scan step
  static constexpr int KU = 16;         ///< u32 lanes per step
  using VU = __m512i;

  /// Bitmask (bit i = byte i, LSB = lowest address) of differing bytes.
  static std::uint64_t bdiff(const std::uint8_t* a, const std::uint8_t* b) {
    return static_cast<std::uint64_t>(_mm512_cmpneq_epi8_mask(
        detail::iload512(a, 64), detail::iload512(b, 64)));
  }

  static VU uload(const std::uint32_t* p) { return detail::iload512(p, 64); }
  static void ustore(std::uint32_t* p, VU v) { detail::istore512(p, v, 64); }
  static VU umax(VU a, VU b) { return _mm512_max_epu32(a, b); }
};

}  // namespace qip::simd
