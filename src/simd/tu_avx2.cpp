// AVX2-tier kernel tables. This TU (alone) is compiled with -mavx2; its
// code is only reached after dispatch.cpp's cpuid check.

#include "simd/dispatch.hpp"
#include "simd/kernels_bytes.hpp"
#include "simd/kernels_interp.hpp"
#include "simd/vec_avx2.hpp"

namespace qip::simd::detail {

const Kernels<float>* avx2_kernels_f32() {
  static const Kernels<float> k = make_kernels<AvxF32>(Tier::kAVX2);
  return &k;
}

const Kernels<double>* avx2_kernels_f64() {
  static const Kernels<double> k = make_kernels<AvxF64>(Tier::kAVX2);
  return &k;
}

const ByteKernels* avx2_byte_kernels() {
  static const ByteKernels k = make_byte_kernels<AvxBytes>(Tier::kAVX2);
  return &k;
}

}  // namespace qip::simd::detail
