#pragma once

// Vectorized 2-D stage-grid Lorenzo QP transform (compensation, forward
// symbol mapping, inverse), templated over a vector trait V. Include
// only from the vector TUs in this directory.
//
// Arithmetic contract (see also qp2d_comp_batch in core/qp.hpp):
//  * compensation is carried as its low 32 bits. The encoder only ever
//    feeds codes < 2*radius <= 2^21, so the exact value fits i32; the
//    decoder consumes compensation modulo 2^32 only, because
//    qp_decode_symbol truncates q + radius to u32.
//  * the Case III/IV sign gates need the *exact* sign of q = code -
//    radius, which i32 lanes get wrong for hostile codes >= 2^22 + eps;
//    such lanes (never produced by the encoder) are redone in scalar
//    i64. Case I/II have no sign gate and need no guard.
//  * the zigzag in qp_encode_symbol is computed in i32, which equals the
//    truncated i64 zigzag whenever |q - c| < 2^31 — guaranteed by the
//    engine's radius <= 2^20 kernel gate on the encode side. The decode
//    direction is exact for every u32 symbol (the zigzag inverse of a
//    u32 never leaves [-2^31, 2^31)).

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "core/qp.hpp"

namespace qip::simd {

/// Load V::K i32 lanes (memcpy keeps strict aliasing happy; lanes are
/// packed low-first, matching V::istore).
template <class V>
inline typename V::VI iload_s32(const std::int32_t* p) {
  typename V::VI v = V::isplat(0);
  std::memcpy(&v, p, sizeof(std::int32_t) * V::K);
  return v;
}

template <class V>
struct QpCompChunk {
  typename V::VI comp;
  unsigned big;  ///< lanes whose sign gate needs the scalar i64 redo
};

/// One vector of 2-D Lorenzo compensations from neighbor-code vectors.
template <class V>
inline QpCompChunk<V> qp2d_comp_chunk(typename V::VI cl, typename V::VI ct,
                                      typename V::VI cd, QPCondition cond,
                                      typename V::VI vrad) {
  using VI = typename V::VI;
  const VI zero = V::isplat(0);
  const VI ql = V::isub(cl, vrad);
  const VI qt = V::isub(ct, vrad);
  const VI qd = V::isub(cd, vrad);
  VI comp = V::isub(V::iadd(ql, qt), qd);
  unsigned big = 0;
  if (cond != QPCondition::kCaseI) {
    // kUnpredictableCode == 0: gate off lanes with any unpredictable
    // neighbor.
    const VI u = V::ior(V::ior(V::icmpeq(cl, zero), V::icmpeq(ct, zero)),
                        V::icmpeq(cd, zero));
    comp = V::iandnot(u, comp);
    if (cond == QPCondition::kCaseIII || cond == QPCondition::kCaseIV) {
      VI keep = V::ior(V::iand(V::icmpgt(ql, zero), V::icmpgt(qt, zero)),
                       V::iand(V::icmpgt(zero, ql), V::icmpgt(zero, qt)));
      if (cond == QPCondition::kCaseIV) {
        keep = V::iand(
            keep,
            V::ior(V::iand(V::icmpgt(ql, zero), V::icmpgt(qd, zero)),
                   V::iand(V::icmpgt(zero, ql), V::icmpgt(zero, qd))));
      }
      comp = V::iand(keep, comp);
      // i32 signs are only trustworthy for codes < 2^22 (|q| then stays
      // far from i32 wraparound for any radius <= 2^20).
      const VI hi = V::iand(V::ior(V::ior(cl, ct), cd),
                            V::isplat(static_cast<std::int32_t>(0xFFC00000u)));
      big = V::imask(V::icmpeq(hi, zero)) ^ ((1u << V::K) - 1);
    }
  }
  return {comp, big};
}

/// Compensations for a row of stage points whose left/top/diag neighbor
/// codes live at fixed offsets: lp/tp/dp point at the neighbor of point
/// 0 and advance `estep` elements per point. The first `nv` points may
/// use full-width loads (caller-checked footprint); the rest run scalar.
template <class V>
void qp2d_comp_row_v(const std::uint32_t* lp, const std::uint32_t* tp,
                     const std::uint32_t* dp, std::size_t n, std::size_t nv,
                     std::size_t estep, QPCondition cond, std::int32_t radius,
                     std::int32_t* comp) {
  constexpr int K = V::K;
  const auto vrad = V::isplat(radius);
  std::size_t j = 0;
  for (; j + K <= nv; j += K) {
    const std::size_t e = j * estep;
    const auto lv = estep == 1 ? V::iload(lp + e) : V::iload2(lp + e);
    const auto tv = estep == 1 ? V::iload(tp + e) : V::iload2(tp + e);
    const auto dv = estep == 1 ? V::iload(dp + e) : V::iload2(dp + e);
    const QpCompChunk<V> r = qp2d_comp_chunk<V>(lv, tv, dv, cond, vrad);
    std::memcpy(comp + j, &r.comp, sizeof(std::int32_t) * K);
    if (r.big) {
      for (int k = 0; k < K; ++k) {
        if (r.big >> k & 1u) {
          const std::size_t e2 = (j + k) * estep;
          comp[j + k] = static_cast<std::int32_t>(
              static_cast<std::uint32_t>(qp2d_compensation(
                  lp[e2], tp[e2], dp[e2], cond, radius)));
        }
      }
    }
  }
  for (; j < n; ++j) {
    const std::size_t e = j * estep;
    comp[j] = static_cast<std::int32_t>(static_cast<std::uint32_t>(
        qp2d_compensation(lp[e], tp[e], dp[e], cond, radius)));
  }
}

/// Contiguous 2-D comp (dispatch-table form of qp2d_comp_batch).
template <class V>
void qp2d_comp_block_v(const std::uint32_t* left, const std::uint32_t* top,
                       const std::uint32_t* diag, std::size_t n,
                       QPCondition cond, std::int32_t radius,
                       std::int32_t* comp) {
  qp2d_comp_row_v<V>(left, top, diag, n, n, 1, cond, radius, comp);
}

/// Contiguous qp_encode_symbol with per-point i32 compensation.
template <class V>
void qp_sym_encode_block_v(const std::uint32_t* codes,
                           const std::int32_t* comp, std::size_t n,
                           std::int32_t radius, std::uint32_t* syms) {
  constexpr int K = V::K;
  const auto vrad = V::isplat(radius);
  const auto zero = V::isplat(0);
  const auto one = V::isplat(1);
  std::size_t i = 0;
  for (; i + K <= n; i += K) {
    const auto vc = V::iload(codes + i);
    const auto m0 = V::icmpeq(vc, zero);
    const auto q = V::isub(vc, vrad);
    const auto r = V::isub(q, iload_s32<V>(comp + i));
    const auto zz = V::ixor(V::ishl1(r), V::isar31(r));
    V::istore(syms + i, V::iandnot(m0, V::iadd(zz, one)));
  }
  for (; i < n; ++i) syms[i] = qp_encode_symbol(codes[i], comp[i], radius);
}

/// Contiguous qp_decode_symbol with per-point i32 compensation.
template <class V>
void qp_sym_decode_block_v(const std::uint32_t* syms,
                           const std::int32_t* comp, std::size_t n,
                           std::int32_t radius, std::uint32_t* codes) {
  constexpr int K = V::K;
  const auto vrad = V::isplat(radius);
  const auto zero = V::isplat(0);
  const auto one = V::isplat(1);
  std::size_t i = 0;
  for (; i + K <= n; i += K) {
    const auto vs = V::iload(syms + i);
    const auto m0 = V::icmpeq(vs, zero);
    const auto zz = V::isub(vs, one);
    const auto r =
        V::ixor(V::ishr1(zz), V::isub(zero, V::iand(zz, one)));
    const auto code = V::iadd(V::iadd(r, iload_s32<V>(comp + i)), vrad);
    V::istore(codes + i, V::iandnot(m0, code));
  }
  for (; i < n; ++i) codes[i] = qp_decode_symbol(syms[i], comp[i], radius);
}

}  // namespace qip::simd
