#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <utility>

#include "compressors/core/container.hpp"
#include "parallel/chunked.hpp"
#include "util/field.hpp"

namespace qip::serve {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Copy a decoded field's scalars into the result's byte buffer.
template <class T>
void field_to_bytes(const Field<T>& f, JobResult& res) {
  res.dims = f.dims();
  res.f64 = sizeof(T) == 8;
  res.bytes.resize(f.size() * sizeof(T));
  std::memcpy(res.bytes.data(), f.data(), res.bytes.size());
}

/// Is this archive the chunked top-level format (vs the per-codec
/// container)? Both formats lead with a little-endian u32 magic.
bool is_chunked(std::span<const std::uint8_t> a) {
  if (a.size() < 5) return false;
  std::uint32_t magic = 0;
  std::memcpy(&magic, a.data(), sizeof(magic));
  return magic == kChunkedMagic;
}

/// Scalar-type tag of an archive, either format. Throws DecodeError on
/// malformed bytes.
std::uint8_t archive_dtype(std::span<const std::uint8_t> a) {
  if (is_chunked(a)) return a[4];  // magic(4) | dtype(1) | dims...
  return inspect_container(a).dtype;
}

}  // namespace

struct Service::Job {
  JobSpec spec;
  std::promise<JobResult> promise;
  double admit_time = 0;
};

Service::Service(const ServeOptions& opt) : opt_(opt) {
  if (opt.pool) {
    pool_ = opt.pool;
  } else {
    owned_pool_.emplace(opt.workers, opt.cap_to_hardware,
                        opt.continuations_jump_queue);
    pool_ = &*owned_pool_;
  }
}

Service::~Service() { drain(); }

std::optional<std::future<JobResult>> Service::submit(JobSpec spec) {
  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  {
    std::unique_lock<std::mutex> lk(mu_);
    ++counters_.submitted;
    if (in_flight_ >= opt_.queue_capacity) {
      if (opt_.policy == AdmitPolicy::kReject) {
        ++counters_.rejected;
        return std::nullopt;
      }
      cv_space_.wait(lk, [&] { return in_flight_ < opt_.queue_capacity; });
    }
    ++in_flight_;
  }
  job->admit_time = now_s();
  std::future<JobResult> fut = job->promise.get_future();
  pool_->submit([this, job] { run(job); });
  return fut;
}

void Service::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_drain_.wait(lk, [&] { return in_flight_ == 0; });
}

ServiceMetrics Service::metrics() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

void Service::run(const std::shared_ptr<Job>& job) {
  const double start = now_s();
  JobResult res;
  res.metrics.queue_wait_s = start - job->admit_time;
  res.metrics.input_bytes = job->spec.input.size();

  // The scheduling decision: small jobs stay width-1 (the worker
  // carries the whole job; internal parallel_for calls run inline and
  // the other workers serve other jobs); large jobs get an equal share
  // of the pool per concurrently-running large job.
  const bool large =
      job->spec.input.size() >= opt_.large_job_bytes && pool_->size() > 1;
  unsigned width = 1;
  if (large) {
    const unsigned active =
        active_large_.fetch_add(1, std::memory_order_acq_rel) + 1;
    width = std::max(1u, pool_->size() / active);
    if (opt_.max_intra_workers)
      width = std::min(width, opt_.max_intra_workers);
  }
  res.metrics.intra_workers = width;

  try {
    ThreadPool::ScopedWidth cap(width);
    const bool f64 = job->spec.kind == JobKind::kCompress
                         ? job->spec.f64
                         : archive_dtype(job->spec.input) == dtype_tag<double>();
    if (f64)
      execute<double>(job->spec, width, res);
    else
      execute<float>(job->spec, width, res);
    res.metrics.ok = true;
  } catch (const std::exception& e) {
    res.metrics.error = e.what();
  } catch (...) {
    res.metrics.error = "unknown error";
  }
  if (large) active_large_.fetch_sub(1, std::memory_order_acq_rel);
  res.metrics.service_s = now_s() - start;
  res.metrics.output_bytes = res.bytes.size();
  if (res.metrics.input_bytes && res.metrics.output_bytes) {
    const double in = static_cast<double>(res.metrics.input_bytes);
    const double out = static_cast<double>(res.metrics.output_bytes);
    res.metrics.cr = job->spec.kind == JobKind::kCompress ? in / out : out / in;
  }

  const bool ok = res.metrics.ok;
  {
    // Counters first, then the future: a caller that has seen its
    // future resolve must observe this job in metrics() already.
    std::lock_guard<std::mutex> lk(mu_);
    ++(ok ? counters_.completed : counters_.failed);
    if (large) ++counters_.large_jobs;
  }
  job->promise.set_value(std::move(res));
  {
    // Notify under the lock: once drain() observes in_flight_ == 0 the
    // Service may be destroyed, so this block must be the last member
    // access this job makes.
    std::lock_guard<std::mutex> lk(mu_);
    --in_flight_;
    cv_space_.notify_one();
    cv_drain_.notify_all();
  }
}

template <class T>
void Service::execute(const JobSpec& spec, unsigned width, JobResult& res) {
  // Width 1 keeps the job strictly on this worker: no pool handed to
  // the codec stages, so nothing is enqueued behind other jobs. (The
  // ScopedWidth cap would force their parallel_for calls inline anyway;
  // skipping the pool also skips the queue-lock traffic.)
  ThreadPool* intra = width > 1 ? pool_ : nullptr;

  switch (spec.kind) {
    case JobKind::kCompress: {
      const std::size_t want = spec.dims.size() * sizeof(T);
      if (spec.input.size() < want)
        throw std::invalid_argument("serve: compress input is " +
                                    std::to_string(spec.input.size()) +
                                    " bytes, dims need " +
                                    std::to_string(want));
      const T* data = nullptr;
      std::vector<T> copy;
      if (reinterpret_cast<std::uintptr_t>(spec.input.data()) %  // qip-lint: allow(raw-cast) alignment probe on a borrowed buffer
              alignof(T) ==
          0) {
        // Raw scalar dumps served from MappedFile are page-aligned, so
        // the aliasing view is free; a misaligned span (e.g. a payload
        // inside a larger framed buffer) pays one copy.
        data = reinterpret_cast<const T*>(spec.input.data());  // qip-lint: allow(raw-cast) aligned little-endian scalar dump viewed in place
      } else {
        copy.resize(spec.dims.size());
        std::memcpy(copy.data(), spec.input.data(), want);
        data = copy.data();
      }
      if (spec.chunked) {
        ChunkedOptions co;
        co.compressor = spec.codec;
        co.options = spec.options;
        // Always hand the chunked pipeline the shared pool — it would
        // otherwise spin up a private one. The ScopedWidth cap still
        // governs how many workers its slab fan-out may claim (width 1
        // runs the slabs inline on this worker).
        co.options.pool = pool_;
        res.bytes = chunked_compress<T>(data, spec.dims, co);
      } else {
        const CompressorEntry& e = find_compressor(spec.codec);
        GenericOptions o = spec.options;
        o.pool = intra;
        if constexpr (sizeof(T) == 8)
          res.bytes = e.compress_f64(data, spec.dims, o);
        else
          res.bytes = e.compress_f32(data, spec.dims, o);
      }
      res.dims = spec.dims;
      res.f64 = spec.f64;
      return;
    }
    case JobKind::kDecompress: {
      if (is_chunked(spec.input)) {
        field_to_bytes(chunked_decompress<T>(spec.input, 0, pool_), res);
        return;
      }
      const ContainerInfo info = inspect_container(spec.input);
      if (info.dims.size() * sizeof(T) > opt_.max_output_bytes)
        throw DecodeError("serve: archive output " + info.dims.str() +
                          " exceeds the configured output cap");
      const CompressorEntry& e = find_compressor_for(spec.input);
      Field<T> out(info.dims);
      if constexpr (sizeof(T) == 8)
        e.decompress_into_pool_f64(spec.input, out.data(), info.dims, intra);
      else
        e.decompress_into_pool_f32(spec.input, out.data(), info.dims, intra);
      field_to_bytes(out, res);
      return;
    }
    case JobKind::kPreview: {
      const CompressorEntry& e = find_compressor_for(spec.input);
      PartialDecodeStats stats;
      if constexpr (sizeof(T) == 8)
        field_to_bytes(e.decompress_preview_pool_f64(spec.input, spec.level,
                                                     &stats, intra),
                       res);
      else
        field_to_bytes(e.decompress_preview_pool_f32(spec.input, spec.level,
                                                     &stats, intra),
                       res);
      // A preview's honest input cost is the prefix it actually read.
      if (stats.payload_bytes_read)
        res.metrics.input_bytes = stats.payload_bytes_read;
      return;
    }
    case JobKind::kRegion: {
      const CompressorEntry& e = find_compressor_for(spec.input);
      PartialDecodeStats stats;
      if constexpr (sizeof(T) == 8)
        field_to_bytes(e.decompress_region_pool_f64(spec.input, spec.region,
                                                    &stats, intra),
                       res);
      else
        field_to_bytes(e.decompress_region_pool_f32(spec.input, spec.region,
                                                    &stats, intra),
                       res);
      if (stats.payload_bytes_read)
        res.metrics.input_bytes = stats.payload_bytes_read;
      return;
    }
  }
  throw std::invalid_argument("serve: unknown job kind");
}

template void Service::execute<float>(const JobSpec&, unsigned, JobResult&);
template void Service::execute<double>(const JobSpec&, unsigned, JobResult&);

}  // namespace qip::serve
