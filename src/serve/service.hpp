#pragma once

// qipd: a concurrent compression service over the one shared ThreadPool.
//
// Service accepts many concurrent compress / decompress / preview /
// region jobs and schedules them with:
//
//  * a bounded admission window with backpressure — at most
//    queue_capacity jobs admitted-but-unfinished; submit() either
//    blocks for space or rejects, per AdmitPolicy;
//  * a per-job vs intra-job parallelism decision — jobs below
//    large_job_bytes run whole-job-per-worker (fan-out width 1, so a
//    worker carries the job end to end and the pool's other workers
//    stay free for other jobs); larger jobs fan out through the
//    codecs' existing stage parallelism, with the pool sharded across
//    concurrent large jobs (width = pool_size / active large jobs) so
//    two big jobs don't serialize on each other;
//  * per-job metrics (queue wait, service time, bytes, CR, width).
//
// Inputs are borrowed spans: pair them with a `keepalive` owner (e.g. a
// MappedFile, for zero-copy service straight from the page cache).
// Decode-direction jobs detect the archive's scalar type and top-level
// format (plain container vs chunked) from its header.
//
// The scheduling discipline and its measured effect live in
// docs/SERVING.md; bench/bench_serving.cpp is the load generator.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "compressors/registry.hpp"
#include "serve/metrics.hpp"
#include "util/dims.hpp"
#include "util/thread_pool.hpp"

namespace qip::serve {

enum class JobKind : std::uint8_t { kCompress, kDecompress, kPreview, kRegion };

/// What submit() does when the admission window is full.
enum class AdmitPolicy : std::uint8_t {
  kBlock,   ///< wait for space (closed-loop clients)
  kReject,  ///< return nullopt immediately (open-loop / load-shedding)
};

struct ServeOptions {
  /// Pool size when the service owns its pool; 0 = hardware concurrency.
  unsigned workers = 0;
  bool cap_to_hardware = true;
  /// Legacy strict-FIFO queue discipline when false (A/B hook for the
  /// continuation-priority fix; see ThreadPool).
  bool continuations_jump_queue = true;
  /// Max jobs admitted but not yet finished; further submits block or
  /// reject per `policy`.
  std::size_t queue_capacity = 64;
  AdmitPolicy policy = AdmitPolicy::kBlock;
  /// Jobs with at least this many input bytes get intra-job fan-out.
  std::size_t large_job_bytes = std::size_t{4} << 20;
  /// Cap on one job's fan-out width (0 = pool size).
  unsigned max_intra_workers = 0;
  /// Refuse decode jobs whose header-declared output exceeds this many
  /// bytes (allocation bomb guard for untrusted archives).
  std::size_t max_output_bytes = std::size_t{1} << 31;
  /// Borrowed pool; overrides `workers`. Must outlive the Service.
  ThreadPool* pool = nullptr;
};

struct JobSpec {
  JobKind kind = JobKind::kCompress;
  /// Compress only: codec name ("SZ3", "QoZ", ...). Decode-direction
  /// jobs identify the codec from the archive header.
  std::string codec = "SZ3";
  /// Raw scalars (compress) or archive bytes (decode direction).
  std::span<const std::uint8_t> input;
  /// Optional owner of `input`'s storage (e.g. a MappedFile); released
  /// when the job finishes.
  std::shared_ptr<const void> keepalive;
  Dims dims;        ///< compress only: field shape
  bool f64 = false; ///< compress only: scalar type of `input`
  GenericOptions options;  ///< compress only: codec knobs
  bool chunked = false;    ///< compress via the chunked slab pipeline
  int level = 0;           ///< preview only
  Box region;              ///< region only
};

struct JobResult {
  /// Archive bytes (compress) or the reconstruction's raw scalars
  /// (decode direction).
  std::vector<std::uint8_t> bytes;
  Dims dims;        ///< shape of the decoded output (decode direction)
  bool f64 = false; ///< scalar type of `bytes` (decode direction)
  JobMetrics metrics;
};

/// The qipd service front-end. Thread-safe: any thread may submit.
class Service {
 public:
  explicit Service(const ServeOptions& opt);
  ~Service();  ///< drains admitted jobs
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submit one job. Returns nullopt iff the admission window is full
  /// and the policy is kReject. The future always resolves with a
  /// JobResult; execution failures are reported in metrics.ok/error
  /// rather than as a thrown exception.
  [[nodiscard]] std::optional<std::future<JobResult>> submit(JobSpec spec);

  /// Block until every admitted job has finished.
  void drain();

  [[nodiscard]] ServiceMetrics metrics() const;
  [[nodiscard]] unsigned workers() const { return pool_->size(); }
  [[nodiscard]] ThreadPool& pool() { return *pool_; }

 private:
  struct Job;
  void run(const std::shared_ptr<Job>& job);
  template <class T>
  void execute(const JobSpec& spec, unsigned width, JobResult& res);

  const ServeOptions opt_;
  mutable std::mutex mu_;
  std::condition_variable cv_space_;  ///< admission waiters (kBlock)
  std::condition_variable cv_drain_;
  std::size_t in_flight_ = 0;  ///< admitted, not yet finished
  ServiceMetrics counters_;
  std::atomic<unsigned> active_large_{0};
  // The pool is declared last so it is destroyed first: joining the
  // workers before the mutex/counters die means no job can touch freed
  // service state (for borrowed pools, ~Service drains instead).
  std::optional<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace qip::serve
