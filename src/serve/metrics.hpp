#pragma once

// Metrics surfaces for the qipd serving layer: one record per job and
// one monotonic aggregate per service. Field meanings are documented in
// docs/SERVING.md; bench/bench_serving.cpp serializes both into
// BENCH_serving.json.

#include <cstddef>
#include <cstdint>
#include <string>

namespace qip::serve {

/// Per-job timings and sizes, filled in by the service and returned
/// with the job's result.
struct JobMetrics {
  double queue_wait_s = 0;  ///< admission -> first worker touch
  double service_s = 0;     ///< execution wall time on the pool
  std::size_t input_bytes = 0;
  std::size_t output_bytes = 0;
  /// Compression ratio: uncompressed / compressed bytes for both
  /// directions (so bigger is always better).
  double cr = 0;
  /// Fan-out width the scheduler granted this job (1 = whole job ran on
  /// a single worker; >1 = intra-job stage parallelism).
  unsigned intra_workers = 1;
  bool ok = false;
  std::string error;  ///< populated when !ok
};

/// Aggregate service counters. Monotonic; snapshot at any time via
/// Service::metrics().
struct ServiceMetrics {
  std::uint64_t submitted = 0;  ///< submit() calls, admitted or not
  std::uint64_t rejected = 0;   ///< refused by the kReject policy
  std::uint64_t completed = 0;  ///< finished with ok = true
  std::uint64_t failed = 0;     ///< finished with ok = false
  std::uint64_t large_jobs = 0; ///< jobs granted intra-job fan-out
};

}  // namespace qip::serve
