#pragma once

// Quality-assessment metrics from paper Sec. III-A: PSNR, MSE, maximum
// absolute/relative error, value range, Shannon entropy of integer symbol
// streams, and the compression-ratio/bit-rate bookkeeping used by every
// experiment harness.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <unordered_map>

namespace qip {

/// min/max of a field.
template <class T>
struct ValueRange {
  T lo = std::numeric_limits<T>::max();
  T hi = std::numeric_limits<T>::lowest();
  T width() const { return hi - lo; }
};

template <class T>
ValueRange<T> value_range(std::span<const T> data) {
  ValueRange<T> r;
  for (T v : data) {
    r.lo = std::min(r.lo, v);
    r.hi = std::max(r.hi, v);
  }
  return r;
}

/// Mean squared error between original and decompressed data.
template <class T>
double mse(std::span<const T> a, std::span<const T> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

/// Largest pointwise absolute error; must stay <= the requested bound.
template <class T>
double max_abs_error(std::span<const T> a, std::span<const T> b) {
  assert(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) -
                             static_cast<double>(b[i])));
  }
  return m;
}

/// PSNR(d, d') = 20 log10((max(d)-min(d)) / sqrt(MSE)); higher is better.
template <class T>
double psnr(std::span<const T> orig, std::span<const T> dec) {
  const double m = mse(orig, dec);
  if (m == 0.0) return std::numeric_limits<double>::infinity();
  const auto r = value_range(orig);
  return 20.0 * std::log10(static_cast<double>(r.width()) / std::sqrt(m));
}

/// Shannon entropy (bits/symbol) of an integer stream; the paper's proxy
/// for the compressibility of the quantization index array.
template <class I>
double shannon_entropy(std::span<const I> symbols) {
  if (symbols.empty()) return 0.0;
  std::unordered_map<I, std::size_t> freq;
  freq.reserve(1024);
  for (I s : symbols) ++freq[s];
  const double n = static_cast<double>(symbols.size());
  double h = 0.0;
  for (const auto& [sym, cnt] : freq) {
    const double p = static_cast<double>(cnt) / n;
    h -= p * std::log2(p);
  }
  return h;
}

/// Summary of one compression run, printed by the experiment harnesses.
struct CompressionStats {
  double compression_ratio = 0.0;  ///< original bytes / compressed bytes
  double bit_rate = 0.0;           ///< bits per scalar in the compressed file
  double psnr = 0.0;
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;  ///< max abs err / value range
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;

  /// Throughput helpers in MB/s over the *original* data size.
  [[nodiscard]] double compress_mbps(std::size_t original_bytes) const {
    return original_bytes / compress_seconds / 1e6;
  }
  [[nodiscard]] double decompress_mbps(std::size_t original_bytes) const {
    return original_bytes / decompress_seconds / 1e6;
  }
};

/// Fill ratio/PSNR/error fields of CompressionStats from buffers.
template <class T>
CompressionStats make_stats(std::span<const T> orig, std::span<const T> dec,
                            std::size_t compressed_bytes) {
  CompressionStats s;
  const std::size_t original_bytes = orig.size() * sizeof(T);
  s.compression_ratio =
      static_cast<double>(original_bytes) / static_cast<double>(compressed_bytes);
  s.bit_rate = 8.0 * static_cast<double>(compressed_bytes) /
               static_cast<double>(orig.size());
  s.psnr = psnr(orig, dec);
  s.max_abs_err = max_abs_error(orig, dec);
  const auto r = value_range(orig);
  s.max_rel_err = r.width() > 0 ? s.max_abs_err / static_cast<double>(r.width())
                                : 0.0;
  return s;
}

}  // namespace qip
