#pragma once

// Error taxonomy for the decode paths.
//
// Every decoder in the library (bitstream, Huffman, LZB, archive framing,
// chunked container) must turn malformed input into a DecodeError instead
// of undefined behavior: untrusted archives are a first-class input, and
// the fuzz harness under tests/fuzz/ asserts that any byte sequence either
// decodes cleanly or raises exactly this type. Encoder-side logic errors
// (bad arguments from our own code) stay plain std::runtime_error /
// assertions; DecodeError means "the *bytes* are bad", which callers may
// want to handle differently (reject the upload, skip the chunk) from
// programming errors.

#include <stdexcept>
#include <string>

namespace qip {

/// Raised by every decode path on malformed, truncated, or hostile input.
///
/// Derives from std::runtime_error so pre-existing call sites that catch
/// the base type keep working; new code should catch DecodeError to
/// distinguish bad input from internal bugs.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what)
      : std::runtime_error("qip: " + what) {}
};

}  // namespace qip
