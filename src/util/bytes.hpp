#pragma once

// Byte-buffer serialization used by every compressor to assemble its
// on-"disk" format: POD fields, varints and raw blocks, with a matching
// cursor-based reader. All multi-byte values are stored little-endian,
// which is the native order on every platform this library targets.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.hpp"

namespace qip {

/// Growable output byte buffer.
class ByteWriter {
 public:
  /// Append a trivially-copyable value verbatim.
  template <class T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = buf_.size();
    buf_.resize(at + sizeof(T));
    std::memcpy(buf_.data() + at, &v, sizeof(T));
  }

  /// Append an unsigned LEB128 varint (7 bits per byte).
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Append a signed value with zigzag encoding.
  void put_svarint(std::int64_t v) {
    put_varint((static_cast<std::uint64_t>(v) << 1) ^
               static_cast<std::uint64_t>(v >> 63));
  }

  /// Append raw bytes.
  void put_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Append a length-prefixed block.
  void put_block(std::span<const std::uint8_t> bytes) {
    put_varint(bytes.size());
    put_bytes(bytes);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Cursor-based reader over a byte span. Throws DecodeError on
/// truncation so that corrupted archives fail loudly instead of reading
/// out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  template <class T>
  [[nodiscard]] T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  [[nodiscard]] std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      need(1);
      const std::uint8_t b = data_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
      if (shift > 63) throw DecodeError("varint overflow");
    }
  }

  [[nodiscard]] std::int64_t get_svarint() {
    const std::uint64_t u = get_varint();
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  /// View over the next `n` raw bytes (no copy).
  [[nodiscard]] std::span<const std::uint8_t> get_bytes(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// View over a length-prefixed block written by put_block().
  [[nodiscard]] std::span<const std::uint8_t> get_block() {
    const std::uint64_t n = get_varint();
    // A block can never be longer than the bytes that remain; checking the
    // 64-bit count here keeps the size_t narrowing below lossless.
    if (n > remaining()) throw DecodeError("block length exceeds buffer");
    return get_bytes(static_cast<std::size_t>(n));
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const {
    // Overflow-safe form of `pos_ + n > size`: pos_ <= size always holds.
    if (n > data_.size() - pos_)
      throw DecodeError("truncated archive (need " + std::to_string(n) +
                        " bytes at offset " + std::to_string(pos_) + ")");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace qip
