#pragma once

// Minimal wall-clock timer for throughput measurements.

#include <chrono>

namespace qip {

/// Steady-clock stopwatch. Constructed running.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace qip
