#pragma once

// THP-friendly uninitialized scratch for large per-call work arrays.
//
// A fresh anonymous mapping is paid for at first touch: one minor fault
// plus one kernel zeroing pass per page. For a per-call array the size
// of the whole field (the interp decoder's QP codes array, for one)
// that fault storm shows up directly in the stage time. Aligning the
// allocation to the transparent-huge-page size and advising the kernel
// (MADV_HUGEPAGE; the default "madvise" THP mode honors exactly this)
// collapses tens of thousands of 4 KiB faults into dozens of 2 MiB
// ones.
//
// The buffer is NOT zeroed. Callers must write every entry they later
// read; users of this header document why that holds for them.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace qip {

struct ScratchFree {
  /// THP size on every x86-64/aarch64 configuration we target; harmless
  /// over-alignment elsewhere.
  static constexpr std::size_t kAlign = std::size_t{2} << 20;

  void operator()(void* p) const noexcept {
    ::operator delete(p, std::align_val_t{kAlign});
  }
};

template <class T>
using Scratch = std::unique_ptr<T[], ScratchFree>;

/// Allocate n uninitialized elements, 2 MiB-aligned, huge-page advised.
template <class T>
Scratch<T> make_scratch(std::size_t n) {
  static_assert(std::is_trivially_destructible_v<T> &&
                    std::is_trivially_constructible_v<T>,
                "scratch buffers skip construction entirely");
  const std::size_t bytes = n * sizeof(T);
  T* p = static_cast<T*>(
      ::operator new(bytes, std::align_val_t{ScratchFree::kAlign}));
#if defined(__linux__)
  if (bytes >= ScratchFree::kAlign) ::madvise(p, bytes, MADV_HUGEPAGE);
#endif
  return Scratch<T>(p);
}

/// Thread-cached variant: the buffer persists (and grows monotonically)
/// for the life of the thread, so repeated same-size calls — a stream of
/// timesteps through the decoder, bench repetitions — pay the fault
/// storm once instead of per call. The contents carry over from the
/// previous use; callers must already tolerate arbitrary garbage, which
/// is the same contract as make_scratch. Retention is bounded by the
/// largest request, i.e. proportional to the largest field decoded on
/// the thread.
template <class T>
T* scratch_cache(std::size_t n) {
  thread_local Scratch<T> buf;
  thread_local std::size_t cap = 0;
  if (cap < n) {
    buf = make_scratch<T>(n);
    cap = n;
  }
  return buf.get();
}

}  // namespace qip
