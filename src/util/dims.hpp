#pragma once

// Shape/stride bookkeeping for up-to-4-dimensional scientific fields.
//
// All arrays in this library are dense row-major: the *last* dimension is
// fastest-varying. A 3-D field of shape (nz, ny, nx) therefore stores the
// point (z, y, x) at linear offset z*ny*nx + y*nx + x, matching the layout
// of SDRBench binary dumps and of SZ3/QoZ/HPEZ internals.

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <ostream>
#include <string>

namespace qip {

/// Maximum tensor rank supported by the library (RTM data is 4-D).
inline constexpr int kMaxRank = 4;

/// Shape of a dense row-major field, rank 1..4.
///
/// Unused trailing dimensions are held at extent 1 so that linear-offset
/// arithmetic can always run over all kMaxRank axes.
class Dims {
 public:
  Dims() = default;

  /// Construct from explicit extents, e.g. Dims{100, 500, 500}.
  Dims(std::initializer_list<std::size_t> extents) {
    assert(extents.size() >= 1 && extents.size() <= kMaxRank);
    rank_ = static_cast<int>(extents.size());
    int i = 0;
    for (std::size_t e : extents) d_[i++] = e;
    compute_strides();
  }

  /// Number of meaningful dimensions (1..4).
  int rank() const { return rank_; }

  /// Extent along axis `a` (0 = slowest varying).
  std::size_t extent(int a) const {
    assert(a >= 0 && a < kMaxRank);
    return d_[a];
  }

  /// Row-major element stride along axis `a`.
  std::size_t stride(int a) const {
    assert(a >= 0 && a < kMaxRank);
    return s_[a];
  }

  /// Total number of elements.
  std::size_t size() const {
    return d_[0] * d_[1] * d_[2] * d_[3];
  }

  /// Linear offset of a (up to) 4-D coordinate.
  std::size_t index(std::size_t i0, std::size_t i1 = 0, std::size_t i2 = 0,
                    std::size_t i3 = 0) const {
    return i0 * s_[0] + i1 * s_[1] + i2 * s_[2] + i3 * s_[3];
  }

  /// Largest extent over the meaningful axes; defines the number of
  /// interpolation levels in the multilevel compressors.
  std::size_t max_extent() const {
    std::size_t m = 0;
    for (int a = 0; a < rank_; ++a) m = std::max(m, d_[a]);
    return m;
  }

  bool operator==(const Dims& o) const {
    return rank_ == o.rank_ && d_ == o.d_;
  }
  bool operator!=(const Dims& o) const { return !(*this == o); }

  /// Human-readable "100x500x500".
  std::string str() const {
    std::string out;
    for (int a = 0; a < rank_; ++a) {
      if (a) out += 'x';
      out += std::to_string(d_[a]);
    }
    return out;
  }

 private:
  void compute_strides() {
    s_[kMaxRank - 1] = 1;
    for (int a = kMaxRank - 2; a >= 0; --a) s_[a] = s_[a + 1] * d_[a + 1];
  }

  std::array<std::size_t, kMaxRank> d_{1, 1, 1, 1};
  std::array<std::size_t, kMaxRank> s_{1, 1, 1, 1};
  int rank_ = 1;
};

inline std::ostream& operator<<(std::ostream& os, const Dims& d) {
  return os << d.str();
}

}  // namespace qip
