#pragma once

// Owning dense field container used throughout the library.

#include <cstring>
#include <span>
#include <vector>

#include "util/dims.hpp"

namespace qip {

/// A dense row-major scalar field of rank 1..4.
///
/// This is the unit of data handed to compressors, dataset generators and
/// metrics. It is a thin owning wrapper; compressors accept raw pointers +
/// Dims so that callers with external buffers do not need to copy.
template <class T>
class Field {
 public:
  Field() = default;

  explicit Field(Dims dims) : dims_(dims), data_(dims.size()) {}

  Field(Dims dims, std::vector<T> data) : dims_(dims), data_(std::move(data)) {
    assert(data_.size() == dims_.size());
  }

  const Dims& dims() const { return dims_; }
  std::size_t size() const { return data_.size(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Read-only view; metrics take std::span<const T>, so this is the
  /// common currency. Use data() for mutable access.
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T& at(std::size_t i0, std::size_t i1 = 0, std::size_t i2 = 0,
        std::size_t i3 = 0) {
    return data_[dims_.index(i0, i1, i2, i3)];
  }
  const T& at(std::size_t i0, std::size_t i1 = 0, std::size_t i2 = 0,
              std::size_t i3 = 0) const {
    return data_[dims_.index(i0, i1, i2, i3)];
  }

  /// Deep copy; used by benches since compression mutates its working copy.
  Field clone() const { return Field(dims_, data_); }

 private:
  Dims dims_{};
  std::vector<T> data_;
};

}  // namespace qip
