#pragma once

// Fixed-size thread pool used by the parallel transfer pipeline (paper
// Sec. VI-E) and by the benchmark harnesses. Deliberately simple: a
// mutex-protected FIFO is more than enough for slice-granular tasks whose
// bodies run for milliseconds.

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace qip {

/// Join-on-destruction thread pool with a submit()->future interface.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a callable; the returned future carries its result/exception.
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  ///
  /// Indices are dispatched as ceil(n/threads)-sized contiguous blocks —
  /// one task (and one heap-allocated packaged_task + future) per block
  /// rather than per index, so slice-granular callers with large n stop
  /// paying O(n) allocation and queue-lock traffic. If any invocation
  /// throws, the first exception is rethrown here, but only after every
  /// block has finished: `fn` and the caller's captures must stay alive
  /// until no worker can still touch them.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t block = (n + workers_.size() - 1) / workers_.size();
    if (n <= block) {  // single block: run inline, skip the queue entirely
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    const std::size_t nblocks = (n + block - 1) / block;
    std::vector<std::future<void>> futs;
    futs.reserve(nblocks);
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t lo = b * block;
      const std::size_t hi = std::min(n, lo + block);
      futs.push_back(submit([&fn, lo, hi] {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }));
    }
    std::exception_ptr first;
    for (auto& f : futs) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace qip
