#pragma once

// Fixed-size thread pool used by the parallel transfer pipeline (paper
// Sec. VI-E) and by the benchmark harnesses. Deliberately simple: a
// mutex-protected FIFO is more than enough for slice-granular tasks whose
// bodies run for milliseconds.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qip {

/// Join-on-destruction thread pool with a submit()->future interface.
///
/// Worker-count policy: 0 asks for one worker per hardware thread, and
/// by default any request is capped at the hardware thread count —
/// oversubscribing a compute-bound pool only adds context-switch
/// overhead (measurably so on small machines; see BENCH_pipeline.json).
/// Pass cap_to_hardware = false for the rare caller that genuinely
/// wants more workers than cores (e.g. tests that need a guaranteed
/// minimum pool size to stress the queue handoff, or blocking tasks
/// that park in submit()->get() chains).
///
/// Queue discipline: submit() appends to the back of one FIFO, so
/// independent jobs start in submission order. parallel_for() helper
/// tasks are *continuations* of a job that is already running, and by
/// default jump to the front of the queue — otherwise, under a backlog
/// of queued jobs, a running job's fan-out would be scheduled behind
/// every waiting job and its caller would end up draining all blocks
/// alone (intra-job parallelism silently degrades to serial under
/// load; the serving bench measures this as caller_drain_share, see
/// docs/SERVING.md). Pass continuations_jump_queue = false to get the
/// legacy strict-FIFO behavior for A/B measurement.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads, bool cap_to_hardware = true,
                      bool continuations_jump_queue = true)
      : continuations_jump_queue_(continuations_jump_queue) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    if (num_threads == 0) num_threads = hw;
    if (cap_to_hardware) num_threads = std::min(num_threads, hw);
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Scoped fan-out cap for parallel_for calls made by the current
  /// thread (and, transitively, by the helper tasks those calls spawn):
  /// at most `width` strands — including the calling thread — work on
  /// one parallel_for, leaving the remaining workers free for other
  /// jobs. This is how the serving scheduler shards one pool across
  /// concurrent large jobs instead of letting the first job's fan-out
  /// occupy every worker. 0 means uncapped. The cap is thread-local
  /// state shared by all pools the thread touches while it is alive.
  class ScopedWidth {
   public:
    explicit ScopedWidth(unsigned width) : prev_(cap_ref()) {
      cap_ref() = width;
    }
    ~ScopedWidth() { cap_ref() = prev_; }
    ScopedWidth(const ScopedWidth&) = delete;
    ScopedWidth& operator=(const ScopedWidth&) = delete;

   private:
    friend class ThreadPool;
    static unsigned& cap_ref() {
      static thread_local unsigned cap = 0;
      return cap;
    }
    unsigned prev_;
  };

  /// The calling thread's current parallel_for width cap (0 = uncapped).
  static unsigned width_cap() { return ScopedWidth::cap_ref(); }

  /// Cheap scheduling counters, for harnesses that want to see whether
  /// intra-job fan-out actually got helpers or degraded to the caller
  /// draining every block itself (the defect continuations_jump_queue
  /// fixes). Relaxed atomics; totals are exact once the pool is idle.
  struct SchedulerStats {
    std::uint64_t pf_blocks = 0;         ///< parallel_for blocks executed
    std::uint64_t pf_blocks_caller = 0;  ///< ...drained by the submitting thread
  };
  SchedulerStats scheduler_stats() const {
    return {pf_blocks_.load(std::memory_order_relaxed),
            pf_blocks_caller_.load(std::memory_order_relaxed)};
  }
  void reset_scheduler_stats() {
    pf_blocks_.store(0, std::memory_order_relaxed);
    pf_blocks_caller_.store(0, std::memory_order_relaxed);
  }

  /// Enqueue a callable; the returned future carries its result/exception.
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  ///
  /// Indices are dispatched as ceil(n/threads)-sized contiguous blocks —
  /// one shared work-stealing counter rather than one queue entry per
  /// index, so slice-granular callers with large n stop paying O(n)
  /// allocation and queue-lock traffic. The *calling* thread participates
  /// in draining blocks, which makes nested parallel_for calls (a pooled
  /// task that itself calls parallel_for on the same pool) deadlock-free:
  /// even with every worker busy, the caller makes progress by itself.
  /// If any invocation throws, that block is abandoned, the remaining
  /// blocks still run, and the first exception is rethrown here after all
  /// blocks have finished: `fn` and the caller's captures must stay alive
  /// until no worker can still touch them.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    // Honor the caller's ScopedWidth share: with a cap of w, blocks are
    // sized for w strands and at most w - 1 helpers are enqueued, so
    // the remaining workers stay free for other jobs. Uncapped callers
    // get the historic one-block-per-worker split.
    const unsigned cap = width_cap();
    const std::size_t width =
        cap ? std::min<std::size_t>(cap, workers_.size()) : workers_.size();
    const std::size_t block = (n + width - 1) / width;
    if (n <= block) {  // single block: run inline, skip the queue entirely
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    const std::size_t nblocks = (n + block - 1) / block;

    struct PFState {
      const std::function<void(std::size_t)>* fn;
      std::size_t n, block, nblocks;
      unsigned width_cap;
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> done{0};
      std::mutex mu;
      std::condition_variable cv;
      std::exception_ptr err;
    };
    auto st = std::make_shared<PFState>();
    st->fn = &fn;
    st->n = n;
    st->block = block;
    st->nblocks = nblocks;
    st->width_cap = cap;

    // Drain blocks until the counter runs out. Helper jobs that get
    // scheduled after all blocks are claimed see next >= nblocks and
    // return without touching `fn`, so the pointer may dangle by then
    // but is never dereferenced.
    auto drain = [st, this](bool is_caller) {
      // Helpers inherit the submitting thread's width cap so fan-out
      // nested inside `fn` stays within the same pool share.
      ScopedWidth inherit(st->width_cap);
      for (;;) {
        const std::size_t b = st->next.fetch_add(1, std::memory_order_relaxed);
        if (b >= st->nblocks) return;
        pf_blocks_.fetch_add(1, std::memory_order_relaxed);
        if (is_caller) pf_blocks_caller_.fetch_add(1, std::memory_order_relaxed);
        try {
          const std::size_t lo = b * st->block;
          const std::size_t hi = std::min(st->n, lo + st->block);
          for (std::size_t i = lo; i < hi; ++i) (*st->fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lk(st->mu);
          if (!st->err) st->err = std::current_exception();
        }
        if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            st->nblocks) {
          // Lock pairs with the waiter's predicate check so the notify
          // cannot fire between its load of done and its wait.
          std::lock_guard<std::mutex> lk(st->mu);
          st->cv.notify_all();
        }
      }
    };

    // At most width - 1 helpers: the caller always takes a share, and a
    // capped call leaves the rest of the pool to other jobs.
    const std::size_t helpers = std::min<std::size_t>(width - 1, nblocks - 1);
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (std::size_t i = 0; i < helpers; ++i) {
        if (continuations_jump_queue_)
          queue_.emplace_front([drain] { drain(false); });
        else
          queue_.emplace_back([drain] { drain(false); });
      }
    }
    if (helpers == 1)
      cv_.notify_one();
    else
      cv_.notify_all();

    drain(true);  // caller participates
    {
      std::unique_lock<std::mutex> lk(st->mu);
      st->cv.wait(lk, [&] {
        return st->done.load(std::memory_order_acquire) == st->nblocks;
      });
    }
    if (st->err) std::rethrow_exception(st->err);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  const bool continuations_jump_queue_;
  std::atomic<std::uint64_t> pf_blocks_{0};
  std::atomic<std::uint64_t> pf_blocks_caller_{0};
};

}  // namespace qip
