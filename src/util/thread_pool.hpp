#pragma once

// Fixed-size thread pool used by the parallel transfer pipeline (paper
// Sec. VI-E) and by the benchmark harnesses. Deliberately simple: a
// mutex-protected FIFO is more than enough for slice-granular tasks whose
// bodies run for milliseconds.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace qip {

/// Join-on-destruction thread pool with a submit()->future interface.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a callable; the returned future carries its result/exception.
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    std::vector<std::future<void>> futs;
    futs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futs.push_back(submit([&fn, i] { fn(i); }));
    }
    for (auto& f : futs) f.get();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace qip
