#pragma once

// Field <-> file I/O.
//
// Two on-disk forms are supported:
//  * raw SDRBench-style dumps: bare little-endian scalars, shape supplied
//    out of band (the convention of the paper's datasets);
//  * the self-describing ".qfld" container: a small header (magic, dtype,
//    dims) followed by the raw payload, so tools can round-trip fields
//    without remembering shapes.

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/bytes.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

inline constexpr std::uint32_t kFieldMagic = 0x444C4651;  // "QFLD"

namespace detail {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

inline FilePtr open_file(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("qip: cannot open " + path);
  return f;
}

}  // namespace detail

/// Write bare scalars (SDRBench layout).
template <class T>
void write_raw(const std::string& path, const Field<T>& field) {
  auto f = detail::open_file(path, "wb");
  if (std::fwrite(field.data(), sizeof(T), field.size(), f.get()) !=
      field.size())
    throw std::runtime_error("qip: short write to " + path);
}

/// Read bare scalars with a caller-supplied shape.
template <class T>
Field<T> read_raw(const std::string& path, const Dims& dims) {
  auto f = detail::open_file(path, "rb");
  Field<T> out(dims);
  if (std::fread(out.data(), sizeof(T), out.size(), f.get()) != out.size())
    throw std::runtime_error("qip: short read from " + path +
                             " (expected " + dims.str() + ")");
  return out;
}

/// Write the self-describing container.
template <class T>
void write_qfld(const std::string& path, const Field<T>& field) {
  ByteWriter header;
  header.put(kFieldMagic);
  header.put<std::uint8_t>(sizeof(T) == 4 ? 1 : 2);
  header.put_varint(static_cast<std::uint64_t>(field.dims().rank()));
  for (int a = 0; a < field.dims().rank(); ++a)
    header.put_varint(field.dims().extent(a));
  auto f = detail::open_file(path, "wb");
  const auto& hb = header.bytes();
  if (std::fwrite(hb.data(), 1, hb.size(), f.get()) != hb.size() ||
      std::fwrite(field.data(), sizeof(T), field.size(), f.get()) !=
          field.size())
    throw std::runtime_error("qip: short write to " + path);
}

/// Read a self-describing container written by write_qfld<T>. Throws on
/// magic/dtype mismatch.
template <class T>
Field<T> read_qfld(const std::string& path) {
  auto f = detail::open_file(path, "rb");
  std::uint8_t hdr[64];
  const std::size_t got = std::fread(hdr, 1, sizeof(hdr), f.get());
  ByteReader r({hdr, got});
  if (r.get<std::uint32_t>() != kFieldMagic)
    throw std::runtime_error("qip: " + path + " is not a .qfld file");
  const std::uint8_t dt = r.get<std::uint8_t>();
  if (dt != (sizeof(T) == 4 ? 1 : 2))
    throw std::runtime_error("qip: dtype mismatch reading " + path);
  const int rank = static_cast<int>(r.get_varint());
  if (rank < 1 || rank > kMaxRank)
    throw std::runtime_error("qip: bad rank in " + path);
  std::size_t e[kMaxRank] = {1, 1, 1, 1};
  for (int a = 0; a < rank; ++a) e[a] = static_cast<std::size_t>(r.get_varint());
  Dims dims = [&] {
    switch (rank) {
      case 1: return Dims{e[0]};
      case 2: return Dims{e[0], e[1]};
      case 3: return Dims{e[0], e[1], e[2]};
      default: return Dims{e[0], e[1], e[2], e[3]};
    }
  }();
  // Seek to the end of the header we actually consumed.
  if (std::fseek(f.get(), static_cast<long>(r.position()), SEEK_SET) != 0)
    throw std::runtime_error("qip: seek failed on " + path);
  Field<T> out(dims);
  if (std::fread(out.data(), sizeof(T), out.size(), f.get()) != out.size())
    throw std::runtime_error("qip: short read from " + path);
  return out;
}

/// Write an arbitrary byte buffer (e.g. a compressed archive).
inline void write_bytes(const std::string& path,
                        std::span<const std::uint8_t> bytes) {
  auto f = detail::open_file(path, "wb");
  // fwrite with a null data() (empty span) is UB even for size 0.
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size())
    throw std::runtime_error("qip: short write to " + path);
}

/// Read a whole file into a byte buffer.
inline std::vector<std::uint8_t> read_bytes(const std::string& path) {
  auto f = detail::open_file(path, "rb");
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  if (size < 0) throw std::runtime_error("qip: cannot stat " + path);
  std::fseek(f.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(size));
  if (!out.empty() &&
      std::fread(out.data(), 1, out.size(), f.get()) != out.size())
    throw std::runtime_error("qip: short read from " + path);
  return out;
}

}  // namespace qip
