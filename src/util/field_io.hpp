#pragma once

// Field <-> file I/O.
//
// Two on-disk forms are supported:
//  * raw SDRBench-style dumps: bare little-endian scalars, shape supplied
//    out of band (the convention of the paper's datasets);
//  * the self-describing ".qfld" container: a small header (magic, dtype,
//    dims) followed by the raw payload, so tools can round-trip fields
//    without remembering shapes.
//
// Reads go through a memory-mapped fast path (with a sequential-access
// madvise) whenever the input is a regular mappable file, falling back
// to buffered stdio otherwise — pipes, special files, platforms without
// mmap, or QIP_IO_BUFFERED=1 (the test hook that pins the two paths to
// identical results). The MappedFile/MappedField types below expose the
// mapping itself for zero-copy consumers (the qipd serving layer feeds
// compressors straight from the page cache).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define QIP_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace qip {

inline constexpr std::uint32_t kFieldMagic = 0x444C4651;  // "QFLD"

namespace detail {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

inline FilePtr open_file(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("qip: cannot open " + path);
  return f;
}

/// Test hook: QIP_IO_BUFFERED=1 forces every read through the buffered
/// stdio path so the mapped and buffered implementations can be pinned
/// to identical results.
inline bool io_buffered_forced() {
  const char* v = std::getenv("QIP_IO_BUFFERED");
  return v && *v && *v != '0';
}

}  // namespace detail

/// Read-only memory mapping of a whole regular file. Move-only RAII;
/// an invalid (default) instance means "use the buffered fallback".
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& o) noexcept : data_(o.data_), size_(o.size_) {
    o.data_ = nullptr;
    o.size_ = 0;
  }
  MappedFile& operator=(MappedFile&& o) noexcept {
    if (this != &o) {
      reset();
      data_ = o.data_;
      size_ = o.size_;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() { reset(); }

  /// Maps `path` read-only and advises the kernel of sequential access.
  /// Returns an invalid MappedFile when the input cannot be mapped (not
  /// a regular file, empty, or no mmap on this platform) — callers fall
  /// back to buffered reads. Throws only when the file cannot be opened
  /// at all, matching the buffered path's error.
  static MappedFile map(const std::string& path) {
#if defined(QIP_HAS_MMAP)
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw std::runtime_error("qip: cannot open " + path);
    struct stat st {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size <= 0) {
      ::close(fd);
      return {};
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (p == MAP_FAILED) return {};
    // Advisory only; a failure just means default readahead.
    (void)::posix_madvise(p, size, POSIX_MADV_SEQUENTIAL);
    MappedFile m;
    m.data_ = p;
    m.size_ = size;
    return m;
#else
    detail::open_file(path, "rb");  // same not-openable error as buffered
    return {};
#endif
  }

  bool valid() const { return data_ != nullptr; }
  std::span<const std::uint8_t> bytes() const {
    return {static_cast<const std::uint8_t*>(data_), size_};
  }

 private:
  void reset() {
#if defined(QIP_HAS_MMAP)
    if (data_) ::munmap(data_, size_);
#endif
    data_ = nullptr;
    size_ = 0;
  }

  void* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Write bare scalars (SDRBench layout).
template <class T>
void write_raw(const std::string& path, const Field<T>& field) {
  auto f = detail::open_file(path, "wb");
  if (std::fwrite(field.data(), sizeof(T), field.size(), f.get()) !=
      field.size())
    throw std::runtime_error("qip: short write to " + path);
}

/// Read bare scalars with a caller-supplied shape.
template <class T>
Field<T> read_raw(const std::string& path, const Dims& dims) {
  if (!detail::io_buffered_forced()) {
    const MappedFile m = MappedFile::map(path);
    if (m.valid()) {
      const auto b = m.bytes();
      Field<T> out(dims);
      if (b.size() < out.size() * sizeof(T))
        throw std::runtime_error("qip: short read from " + path +
                                 " (expected " + dims.str() + ")");
      std::memcpy(out.data(), b.data(), out.size() * sizeof(T));
      return out;
    }
  }
  auto f = detail::open_file(path, "rb");
  Field<T> out(dims);
  if (std::fread(out.data(), sizeof(T), out.size(), f.get()) != out.size())
    throw std::runtime_error("qip: short read from " + path +
                             " (expected " + dims.str() + ")");
  return out;
}

/// Write the self-describing container.
template <class T>
void write_qfld(const std::string& path, const Field<T>& field) {
  ByteWriter header;
  header.put(kFieldMagic);
  header.put<std::uint8_t>(sizeof(T) == 4 ? 1 : 2);
  header.put_varint(static_cast<std::uint64_t>(field.dims().rank()));
  for (int a = 0; a < field.dims().rank(); ++a)
    header.put_varint(field.dims().extent(a));
  auto f = detail::open_file(path, "wb");
  const auto& hb = header.bytes();
  if (std::fwrite(hb.data(), 1, hb.size(), f.get()) != hb.size() ||
      std::fwrite(field.data(), sizeof(T), field.size(), f.get()) !=
          field.size())
    throw std::runtime_error("qip: short write to " + path);
}

namespace detail {

struct QfldHeader {
  Dims dims;
  std::size_t payload_offset = 0;  ///< header bytes actually consumed
};

/// Parse the .qfld header from the file's first bytes. Throws on magic,
/// dtype, or rank problems (same operator-facing errors as before).
template <class T>
QfldHeader parse_qfld_header(std::span<const std::uint8_t> head,
                             const std::string& path) {
  ByteReader r(head);
  if (r.get<std::uint32_t>() != kFieldMagic)
    throw std::runtime_error("qip: " + path + " is not a .qfld file");
  const std::uint8_t dt = r.get<std::uint8_t>();
  if (dt != (sizeof(T) == 4 ? 1 : 2))
    throw std::runtime_error("qip: dtype mismatch reading " + path);
  const int rank = static_cast<int>(r.get_varint());
  if (rank < 1 || rank > kMaxRank)
    throw std::runtime_error("qip: bad rank in " + path);
  std::size_t e[kMaxRank] = {1, 1, 1, 1};
  for (int a = 0; a < rank; ++a) e[a] = static_cast<std::size_t>(r.get_varint());
  QfldHeader h;
  h.dims = [&] {
    switch (rank) {
      case 1: return Dims{e[0]};
      case 2: return Dims{e[0], e[1]};
      case 3: return Dims{e[0], e[1], e[2]};
      default: return Dims{e[0], e[1], e[2], e[3]};
    }
  }();
  h.payload_offset = r.position();
  return h;
}

}  // namespace detail

/// Read a self-describing container written by write_qfld<T>. Throws on
/// magic/dtype mismatch.
template <class T>
Field<T> read_qfld(const std::string& path) {
  if (!detail::io_buffered_forced()) {
    const MappedFile m = MappedFile::map(path);
    if (m.valid()) {
      const auto b = m.bytes();
      const detail::QfldHeader h = detail::parse_qfld_header<T>(
          b.first(std::min<std::size_t>(b.size(), 64)), path);
      Field<T> out(h.dims);
      if (b.size() < h.payload_offset + out.size() * sizeof(T))
        throw std::runtime_error("qip: short read from " + path);
      std::memcpy(out.data(), b.data() + h.payload_offset,
                  out.size() * sizeof(T));
      return out;
    }
  }
  auto f = detail::open_file(path, "rb");
  std::uint8_t hdr[64];
  const std::size_t got = std::fread(hdr, 1, sizeof(hdr), f.get());
  const detail::QfldHeader h = detail::parse_qfld_header<T>({hdr, got}, path);
  // Seek to the end of the header we actually consumed.
  if (std::fseek(f.get(), static_cast<long>(h.payload_offset), SEEK_SET) != 0)
    throw std::runtime_error("qip: seek failed on " + path);
  Field<T> out(h.dims);
  if (std::fread(out.data(), sizeof(T), out.size(), f.get()) != out.size())
    throw std::runtime_error("qip: short read from " + path);
  return out;
}

/// Write an arbitrary byte buffer (e.g. a compressed archive).
inline void write_bytes(const std::string& path,
                        std::span<const std::uint8_t> bytes) {
  auto f = detail::open_file(path, "wb");
  // fwrite with a null data() (empty span) is UB even for size 0.
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size())
    throw std::runtime_error("qip: short write to " + path);
}

/// Read a whole file into a byte buffer.
inline std::vector<std::uint8_t> read_bytes(const std::string& path) {
  if (!detail::io_buffered_forced()) {
    const MappedFile m = MappedFile::map(path);
    if (m.valid()) {
      const auto b = m.bytes();
      return std::vector<std::uint8_t>(b.begin(), b.end());
    }
  }
  auto f = detail::open_file(path, "rb");
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  if (size < 0) throw std::runtime_error("qip: cannot stat " + path);
  std::fseek(f.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(size));
  if (!out.empty() &&
      std::fread(out.data(), 1, out.size(), f.get()) != out.size())
    throw std::runtime_error("qip: short read from " + path);
  return out;
}

}  // namespace qip
