#pragma once

// End-to-end parallel data transfer pipeline (paper Sec. VI-E, Fig. 18):
// the dataset is split into slices along its first dimension, every
// slice is compressed independently (embarrassingly parallel), the
// compressed archives are written to storage, moved across a wide-area
// link, read back and decompressed.
//
// Substitution note (DESIGN.md): the paper measures MCC <-> Anvil over
// Globus. Offline, compression/decompression work is executed for real
// on a thread pool and per-slice costs are measured; the storage and
// WAN-link stages are bandwidth models calibrated to the paper's
// observed 461.75 MB/s Globus link. Strong-scaling numbers for core
// counts beyond the local machine are derived from the measured
// per-slice costs (ideal slice-parallel scaling bounded by the largest
// slice — the same model the paper's "embarrassingly parallel" setup
// realizes).

#include <cstdint>
#include <string>
#include <vector>

#include "compressors/registry.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

struct TransferConfig {
  std::string compressor = "SZ3";
  double error_bound = 1e-3;
  QPConfig qp;
  /// WAN link bandwidth in MB/s (paper's vanilla Globus measurement).
  double link_mbps = 461.75;
  /// Parallel-filesystem bandwidth model: per-core stream bandwidth and
  /// aggregate cap, both MB/s.
  double storage_per_core_mbps = 150.0;
  double storage_aggregate_mbps = 20000.0;
  /// Worker threads used for the *measured* pass (0 = hardware).
  unsigned workers = 0;
};

/// Wall-clock seconds per pipeline stage.
struct StageTimes {
  double compress = 0, write = 0, transfer = 0, read = 0, decompress = 0;
  double total() const { return compress + write + transfer + read + decompress; }
};

struct TransferReport {
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;
  double compression_ratio = 0;
  double psnr = 0;
  double max_abs_err = 0;
  std::size_t slice_count = 0;

  /// Measured per-slice compute costs (seconds).
  double total_compress_cpu = 0, max_slice_compress = 0;
  double total_decompress_cpu = 0, max_slice_decompress = 0;

  TransferConfig config;

  /// Modeled end-to-end stage times on `cores` workers.
  StageTimes modeled(unsigned cores) const;

  /// Vanilla (uncompressed) transfer time over the same link.
  double vanilla_transfer_seconds() const;

  /// Extrapolate the measured per-slice costs to a workload `k` times
  /// larger (k times the slices with the same per-slice distribution).
  /// Used by the Fig. 18 bench to model the paper's 3600-slice RTM run
  /// from the reduced bench workload; per-slice costs stay measured.
  TransferReport scaled(double k) const;
};

/// Run the pipeline on a field, slicing along axis 0. Compression and
/// decompression are executed for real; every slice is verified against
/// the error bound.
TransferReport run_transfer_pipeline(const Field<float>& data,
                                     const TransferConfig& cfg);

}  // namespace qip
