#include "transfer/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qip {
namespace {

/// Dims of one slice (axis 0 removed if rank > 1).
Dims slice_dims(const Dims& d) {
  switch (d.rank()) {
    case 1: return Dims{1};
    case 2: return Dims{d.extent(1)};
    case 3: return Dims{d.extent(1), d.extent(2)};
    default: return Dims{d.extent(1), d.extent(2), d.extent(3)};
  }
}

}  // namespace

StageTimes TransferReport::modeled(unsigned cores) const {
  StageTimes t;
  const double P = std::max(1u, cores);
  t.compress = std::max(total_compress_cpu / P, max_slice_compress);
  t.decompress = std::max(total_decompress_cpu / P, max_slice_decompress);
  const double storage_bw =
      std::min(P * config.storage_per_core_mbps, config.storage_aggregate_mbps);
  t.write = compressed_bytes / 1e6 / storage_bw;
  t.read = t.write;
  t.transfer = compressed_bytes / 1e6 / config.link_mbps;
  return t;
}

double TransferReport::vanilla_transfer_seconds() const {
  return original_bytes / 1e6 / config.link_mbps;
}

TransferReport TransferReport::scaled(double k) const {
  TransferReport r = *this;
  r.original_bytes = static_cast<std::size_t>(original_bytes * k);
  r.compressed_bytes = static_cast<std::size_t>(compressed_bytes * k);
  r.slice_count = static_cast<std::size_t>(slice_count * k);
  r.total_compress_cpu = total_compress_cpu * k;
  r.total_decompress_cpu = total_decompress_cpu * k;
  // max per-slice costs are intensive quantities: unchanged.
  return r;
}

TransferReport run_transfer_pipeline(const Field<float>& data,
                                     const TransferConfig& cfg) {
  const Dims& d = data.dims();
  const std::size_t nslices = d.extent(0);
  const Dims sd = slice_dims(d);
  const std::size_t slice_elems = sd.size();

  const CompressorEntry& comp = find_compressor(cfg.compressor);
  GenericOptions opt;
  opt.error_bound = cfg.error_bound;
  opt.qp = cfg.qp;

  TransferReport rep;
  rep.config = cfg;
  rep.original_bytes = data.size() * sizeof(float);
  rep.slice_count = nslices;

  std::vector<std::vector<std::uint8_t>> archives(nslices);
  std::vector<double> ct(nslices, 0.0), dt(nslices, 0.0);
  Field<float> recon(d);

  // workers == 0 means one per hardware thread; explicit counts are
  // capped there too (ThreadPool's default policy) so a config tuned on
  // a big node does not oversubscribe a small one.
  ThreadPool pool(cfg.workers);

  // Compress every slice (measured individually).
  pool.parallel_for(nslices, [&](std::size_t s) {
    Timer t;
    archives[s] = comp.compress_f32(data.data() + s * slice_elems, sd, opt);
    ct[s] = t.seconds();
  });

  // Decompress every slice into the reconstruction (measured).
  pool.parallel_for(nslices, [&](std::size_t s) {
    Timer t;
    const Field<float> dec = comp.decompress_f32(archives[s]);
    dt[s] = t.seconds();
    if (dec.size() != slice_elems)
      throw DecodeError("transfer slice size mismatch");
    std::copy(dec.data(), dec.data() + slice_elems,
              recon.data() + s * slice_elems);
  });

  for (std::size_t s = 0; s < nslices; ++s) {
    rep.compressed_bytes += archives[s].size();
    rep.total_compress_cpu += ct[s];
    rep.max_slice_compress = std::max(rep.max_slice_compress, ct[s]);
    rep.total_decompress_cpu += dt[s];
    rep.max_slice_decompress = std::max(rep.max_slice_decompress, dt[s]);
  }
  rep.compression_ratio =
      static_cast<double>(rep.original_bytes) / rep.compressed_bytes;
  rep.psnr = psnr(data.span(), recon.span());
  rep.max_abs_err = max_abs_error(data.span(), recon.span());
  if (rep.max_abs_err > cfg.error_bound * (1 + 1e-9))
    throw std::runtime_error("qip: transfer pipeline violated error bound");
  return rep;
}

}  // namespace qip
