#include "data/synthetic.hpp"

#include <cmath>
#include <cstdlib>
#include <random>

namespace qip {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Random-phase spectral field: sum of cosine modes with power-law
/// amplitudes A ~ |k|^-alpha. The workhorse for every smooth component.
struct SpectralModes {
  struct Mode {
    double kz, ky, kx, amp, phase;
  };
  std::vector<Mode> modes;

  SpectralModes(std::mt19937_64& rng, int count, double alpha,
                double kmin = 1.0, double kmax = 24.0) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    modes.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      const double mag = kmin * std::pow(kmax / kmin, u(rng));
      // Random direction on the sphere.
      const double cz = 2 * u(rng) - 1;
      const double az = 2 * kPi * u(rng);
      const double s = std::sqrt(std::max(0.0, 1 - cz * cz));
      modes.push_back({mag * cz, mag * s * std::cos(az),
                       mag * s * std::sin(az), std::pow(mag, -alpha),
                       2 * kPi * u(rng)});
    }
  }

  /// Evaluate at normalized coordinates in [0, 1].
  double operator()(double z, double y, double x) const {
    double v = 0.0;
    for (const auto& m : modes)
      v += m.amp * std::cos(2 * kPi * (m.kz * z + m.ky * y + m.kx * x) +
                            m.phase);
    return v;
  }
};

std::uint64_t mix_seed(DatasetId id, int field, std::uint64_t seed) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(id) + 1);
  h ^= 0xBF58476D1CE4E5B9ull * static_cast<std::uint64_t>(field + 1);
  h ^= seed + 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

/// Fill a rank-3 field from a pointwise generator of normalized coords.
template <class T, class F>
void fill3(Field<T>& f, F&& fn) {
  const Dims& d = f.dims();
  const double nz = static_cast<double>(std::max<std::size_t>(d.extent(0) - 1, 1));
  const double ny = static_cast<double>(std::max<std::size_t>(d.extent(1) - 1, 1));
  const double nx = static_cast<double>(std::max<std::size_t>(d.extent(2) - 1, 1));
#ifdef QIP_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (long long zi = 0; zi < static_cast<long long>(d.extent(0)); ++zi) {
    const double z = zi / nz;
    for (std::size_t yi = 0; yi < d.extent(1); ++yi) {
      const double y = yi / ny;
      for (std::size_t xi = 0; xi < d.extent(2); ++xi) {
        const double x = xi / nx;
        f.at(static_cast<std::size_t>(zi), yi, xi) =
            static_cast<T>(fn(z, y, x));
      }
    }
  }
}

/// Ricker wavelet (seismic source signature).
double ricker(double t, double f0) {
  const double a = kPi * f0 * t;
  const double a2 = a * a;
  return (1 - 2 * a2) * std::exp(-a2);
}

// ---------------------------------------------------------------------
// Per-dataset generators. Each returns values as double; the public
// wrappers cast to float/double.
// ---------------------------------------------------------------------

template <class T>
void gen_miranda(Field<T>& f, int field, std::uint64_t seed) {
  // Rayleigh–Taylor-style turbulence: Kolmogorov-ish spectrum plus one or
  // two density interfaces perturbed by large-scale modes.
  std::mt19937_64 rng(mix_seed(DatasetId::kMiranda, field, seed));
  SpectralModes turb(rng, 40, 1.7, 1.5, 32.0);
  SpectralModes pert(rng, 8, 1.2, 1.0, 4.0);
  const double interface_z = 0.45 + 0.1 * (field % 3) * 0.1;
  const bool density_like = field % 3 == 0;
  fill3(f, [&](double z, double y, double x) {
    const double t = turb(z, y, x);
    if (!density_like) return 0.8 * t;
    const double front =
        std::tanh((z - interface_z - 0.05 * pert(0.0, y, x)) * 18.0);
    return front + 0.35 * t;
  });
}

template <class T>
void gen_hurricane(Field<T>& f, int field, std::uint64_t seed) {
  // Rankine-style vortex with an eye, vertical decay, background shear
  // and mesoscale noise. Different fields rotate the role of the
  // tangential/radial/thermal components.
  std::mt19937_64 rng(mix_seed(DatasetId::kHurricane, field, seed));
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const double cy = 0.4 + 0.2 * u(rng), cx = 0.4 + 0.2 * u(rng);
  const double rm = 0.06 + 0.04 * u(rng);  // radius of max wind
  SpectralModes noise(rng, 24, 1.5, 2.0, 20.0);
  const int kind = field % 3;
  fill3(f, [&](double z, double y, double x) {
    const double dy = y - cy, dx = x - cx;
    const double r = std::sqrt(dy * dy + dx * dx) + 1e-9;
    const double v = (r / rm) * std::exp(1.0 - r / rm);  // tangential speed
    const double vert = std::exp(-1.8 * z);
    double base;
    if (kind == 0)
      base = v * vert * (-dy / r);  // u-wind
    else if (kind == 1)
      base = v * vert * (dx / r);  // v-wind
    else
      base = -v * v * vert + 0.3 * (1 - z);  // pressure/temperature-ish
    return base + 0.06 * noise(z, y, x) + 0.15 * (0.5 - z) * y;
  });
}

template <class T>
void gen_segsalt(Field<T>& f, int field, std::uint64_t seed) {
  // SEG/EAGE-style model: depth-layered medium with lateral undulation,
  // an ellipsoidal salt body, and (for the Pressure field) a propagating
  // wavefront — the structure behind the paper's Fig. 3 clustering.
  std::mt19937_64 rng(mix_seed(DatasetId::kSegSalt, field, seed));
  std::uniform_real_distribution<double> u(0.0, 1.0);
  SpectralModes lateral(rng, 10, 1.3, 1.0, 6.0);
  SpectralModes fine(rng, 24, 1.8, 4.0, 28.0);
  const double scz = 0.45 + 0.1 * u(rng), scy = 0.4 + 0.2 * u(rng),
               scx = 0.4 + 0.2 * u(rng);
  const bool pressure_like = field % 3 != 1;
  const double tphase = 0.55 + 0.15 * (field % 3);
  fill3(f, [&](double z, double y, double x) {
    // Layer structure: velocity steps with depth.
    const double warp = 0.04 * lateral(0.0, y, x);
    const double depth = z + warp;
    double vel = 1.5 + 2.5 * depth + 0.4 * std::floor(depth * 8.0) / 8.0;
    const double ez = (z - scz) / 0.22, ey = (y - scy) / 0.30,
                 ex = (x - scx) / 0.28;
    const double salt = ez * ez + ey * ey + ex * ex;
    if (salt < 1.0) vel = 4.5;  // salt body
    if (!pressure_like) return vel + 0.02 * fine(z, y, x);
    // Wavefield snapshot: ricker front expanding from a near-surface
    // source, refracting brighter outside the salt.
    const double dz = z - 0.02, dy2 = y - 0.5, dx2 = x - 0.5;
    const double r = std::sqrt(dz * dz + dy2 * dy2 + dx2 * dx2);
    const double front = ricker((r - tphase) * 14.0, 1.0) / (1.0 + 6.0 * r);
    const double reflect =
        0.4 * ricker((r - tphase * 0.6) * 18.0, 1.0) / (1.0 + 8.0 * r);
    return (front + reflect) * (salt < 1.0 ? 0.35 : 1.0) +
           0.003 * fine(z, y, x);
  });
}

template <class T>
void gen_scale(Field<T>& f, int field, std::uint64_t seed) {
  // SCALE-RM-like cloud microphysics: exponentiated spectral noise,
  // thresholded to produce the large zero regions + patchy positive
  // values typical of QC/QR/QS fields; every third field is a smooth
  // thermodynamic field instead.
  std::mt19937_64 rng(mix_seed(DatasetId::kScale, field, seed));
  SpectralModes coarse(rng, 16, 1.4, 1.0, 8.0);
  SpectralModes detail(rng, 24, 1.6, 6.0, 40.0);
  const int kind = field % 3;
  fill3(f, [&](double z, double y, double x) {
    if (kind == 2) {  // temperature/pressure-like: smooth + lapse rate
      return 300.0 - 60.0 * z + 3.0 * coarse(z, y, x) +
             0.3 * detail(z, y, x);
    }
    const double c = coarse(z, y, x) + 0.35 * detail(z, y, x);
    const double cloud = std::exp(1.6 * c) - 2.2 + (kind == 1 ? -0.4 : 0.0);
    return cloud > 0 ? cloud * std::exp(-2.0 * z) : 0.0;
  });
}

template <class T>
void gen_s3d(Field<T>& f, int field, std::uint64_t seed) {
  // Turbulent jet flame: wrinkled mixing layers (tanh fronts), species
  // mass fractions peaking inside the flame, strong small-scale
  // turbulence in the shear layers.
  std::mt19937_64 rng(mix_seed(DatasetId::kS3D, field, seed));
  SpectralModes wrinkle(rng, 12, 1.2, 1.0, 6.0);
  SpectralModes turb(rng, 36, 1.7, 3.0, 30.0);
  const int kind = field % 3;
  fill3(f, [&](double z, double y, double x) {
    const double jet = y - 0.5 + 0.06 * wrinkle(z, 0.0, x);
    const double layer = std::exp(-jet * jet / 0.02);
    if (kind == 0)  // temperature-like
      return 300.0 + 1500.0 * layer + 40.0 * layer * turb(z, y, x);
    if (kind == 1)  // species-like (bounded, peaks in flame)
      return std::max(0.0, layer * (0.2 + 0.05 * turb(z, y, x)));
    return layer * turb(z, y, x) * 8.0 + 0.5 * wrinkle(z, y, x);  // velocity
  });
}

template <class T>
void gen_cesm(Field<T>& f, int field, std::uint64_t seed) {
  // CESM-ATM-like: thin vertical extent, strong zonal (latitude) bands,
  // continent-scale low-frequency structure, storm-track noise.
  std::mt19937_64 rng(mix_seed(DatasetId::kCESM, field, seed));
  SpectralModes continents(rng, 8, 1.1, 0.8, 3.0);
  SpectralModes synoptic(rng, 24, 1.5, 4.0, 24.0);
  const int kind = field % 4;
  fill3(f, [&](double z, double y, double x) {
    const double lat = y - 0.5;  // axis 1 = latitude
    const double band = std::cos(lat * kPi) + 0.4 * std::cos(3 * lat * kPi);
    const double land = continents(0.2, y, x);
    const double storm = synoptic(z, y, x);
    switch (kind) {
      case 0:  // temperature-like
        return 250.0 + 40.0 * band + 6.0 * land + 1.5 * storm - 8.0 * z;
      case 1:  // humidity-like (positive, equator-heavy)
        return std::max(0.0, band * 0.02 + 0.004 * storm) *
               std::exp(-3.0 * z);
      case 2:  // zonal wind: jet streams at mid-latitudes
        return 30.0 * std::sin(2 * kPi * lat) * std::exp(-0.5 * z) +
               2.0 * storm;
      default:  // surface-pressure-like with orography
        return 1000.0 - 25.0 * land + 4.0 * storm + 10.0 * band;
    }
  });
}

template <class T>
void gen_rtm_4d(Field<T>& f, int field, std::uint64_t seed) {
  // 4-D reverse-time-migration wavefield: dim0 = time steps of a
  // spherical Ricker front expanding through a layered medium.
  std::mt19937_64 rng(mix_seed(DatasetId::kRTM, field, seed));
  SpectralModes lateral(rng, 8, 1.3, 1.0, 5.0);
  const Dims& d = f.dims();
  const double nt = static_cast<double>(std::max<std::size_t>(d.extent(0) - 1, 1));
  const double n1 = static_cast<double>(std::max<std::size_t>(d.extent(1) - 1, 1));
  const double n2 = static_cast<double>(std::max<std::size_t>(d.extent(2) - 1, 1));
  const double n3 = static_cast<double>(std::max<std::size_t>(d.extent(3) - 1, 1));
#ifdef QIP_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (long long ti = 0; ti < static_cast<long long>(d.extent(0)); ++ti) {
    const double t = 0.1 + 0.9 * (ti / nt);
    for (std::size_t zi = 0; zi < d.extent(1); ++zi) {
      const double z = zi / n1;
      for (std::size_t yi = 0; yi < d.extent(2); ++yi) {
        const double y = yi / n2;
        for (std::size_t xi = 0; xi < d.extent(3); ++xi) {
          const double x = xi / n3;
          const double dz = z - 0.05, dy = y - 0.5, dx = x - 0.5;
          const double r = std::sqrt(dz * dz + dy * dy + dx * dx);
          const double warp = 1.0 + 0.08 * lateral(0.0, y, x);
          // Front widths are kept at >= ~10 grid cells of the reduced
          // bench dims so the wavefield is oversampled relative to its
          // features, as the production-resolution RTM snapshots are.
          const double front = ricker((r * warp - t * 0.9) * 6.0, 1.0) /
                               (1.0 + 5.0 * r);
          const double ghost =
              0.3 * ricker((r * warp - t * 0.55) * 9.0, 1.0) /
              (1.0 + 7.0 * r);
          f.at(static_cast<std::size_t>(ti), zi, yi, xi) =
              static_cast<T>(front + ghost);
        }
      }
    }
  }
}

template <class T>
Field<T> generate(DatasetId id, int field_index, const Dims& dims,
                  std::uint64_t seed) {
  Field<T> f(dims);
  const int fc = dataset_spec(id).field_count;
  const int field = ((field_index % fc) + fc) % fc;
  switch (id) {
    case DatasetId::kMiranda: gen_miranda(f, field, seed); break;
    case DatasetId::kHurricane: gen_hurricane(f, field, seed); break;
    case DatasetId::kSegSalt: gen_segsalt(f, field, seed); break;
    case DatasetId::kScale: gen_scale(f, field, seed); break;
    case DatasetId::kS3D: gen_s3d(f, field, seed); break;
    case DatasetId::kCESM: gen_cesm(f, field, seed); break;
    case DatasetId::kRTM: gen_rtm_4d(f, field, seed); break;
  }
  return f;
}

}  // namespace

const std::vector<DatasetSpec>& dataset_specs() {
  static const std::vector<DatasetSpec> specs = {
      {DatasetId::kMiranda, "Miranda", 7, Dims{256, 384, 384},
       Dims{128, 192, 192}, false},
      {DatasetId::kHurricane, "Hurricane", 13, Dims{100, 500, 500},
       Dims{64, 256, 256}, false},
      {DatasetId::kSegSalt, "SegSalt", 3, Dims{1008, 1008, 352},
       Dims{256, 256, 128}, false},
      {DatasetId::kScale, "SCALE", 12, Dims{98, 1200, 1200},
       Dims{64, 320, 320}, false},
      {DatasetId::kS3D, "S3D", 11, Dims{500, 500, 500}, Dims{128, 128, 128},
       true},
      {DatasetId::kCESM, "CESM", 33, Dims{26, 1800, 3600}, Dims{26, 480, 960},
       false},
      {DatasetId::kRTM, "RTM", 1, Dims{3600, 449, 449, 235},
       Dims{48, 96, 96, 64}, false},
  };
  return specs;
}

const DatasetSpec& dataset_spec(DatasetId id) {
  for (const auto& s : dataset_specs())
    if (s.id == id) return s;
  return dataset_specs().front();
}

Field<float> make_field(DatasetId id, int field_index, const Dims& dims,
                        std::uint64_t seed) {
  return generate<float>(id, field_index, dims, seed);
}

Field<double> make_field_f64(DatasetId id, int field_index, const Dims& dims,
                             std::uint64_t seed) {
  return generate<double>(id, field_index, dims, seed);
}

Dims bench_dims(const DatasetSpec& spec) {
  const char* scale = std::getenv("QIP_BENCH_SCALE");
  if (scale && std::string(scale) == "full") return spec.paper_dims;
  return spec.bench_dims;
}

}  // namespace qip
