#pragma once

// Synthetic stand-ins for the paper's SDRBench evaluation datasets
// (Table III). The real archives are multi-GB downloads that are not
// available offline, so each generator reproduces the *character* of its
// dataset — smoothness spectrum, discontinuities, anisotropy, value
// distribution — which is what interpolation predictors and the
// quantization-index clustering phenomenon respond to. All generators are
// deterministic in (dataset, field index, dims, seed).
//
// | Id        | Paper source                | Character reproduced          |
// |-----------|-----------------------------|-------------------------------|
// | Miranda   | hydrodynamics turbulence    | multiscale smooth + interfaces|
// | Hurricane | weather simulation          | vortex + fronts + shear       |
// | SegSalt   | SEG/EAGE salt model seismic | layered medium + salt body +  |
// |           |                             | propagating wavefronts        |
// | SCALE     | SCALE-RM weather            | patchy positive cloud fields  |
// | S3D       | combustion (double)         | wrinkled flame fronts         |
// | CESM      | CESM-ATM climate            | zonal bands + continents      |
// | RTM       | reverse-time migration (4D) | time-stepped wavefield        |

#include <cstdint>
#include <string>
#include <vector>

#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

enum class DatasetId {
  kMiranda,
  kHurricane,
  kSegSalt,
  kScale,
  kS3D,
  kCESM,
  kRTM,
};

/// Static description of a benchmark dataset.
struct DatasetSpec {
  DatasetId id;
  const char* name;
  int field_count;   ///< number of fields in the paper's dataset
  Dims paper_dims;   ///< full dimensions from Table III
  Dims bench_dims;   ///< reduced laptop-scale default used by the benches
  bool is_double;    ///< S3D is double precision
};

/// All seven benchmark datasets, in Table III order.
const std::vector<DatasetSpec>& dataset_specs();

/// Spec lookup by id.
const DatasetSpec& dataset_spec(DatasetId id);

/// Generate field `field_index` (0-based, wraps modulo the dataset's
/// field count) at the given dims. Deterministic in all arguments.
Field<float> make_field(DatasetId id, int field_index, const Dims& dims,
                        std::uint64_t seed = 0);

/// Double-precision variant (used for S3D).
Field<double> make_field_f64(DatasetId id, int field_index, const Dims& dims,
                             std::uint64_t seed = 0);

/// Resolve the bench dims: QIP_BENCH_SCALE=full selects paper dims,
/// anything else (or unset) the reduced bench dims.
Dims bench_dims(const DatasetSpec& spec);

}  // namespace qip
