#pragma once

// ZFP-like fixed-accuracy block transform compressor (Lindstrom, TVCG'14
// family). Pipeline per 4^d block: common-exponent fixed-point
// conversion, separable reversible two-level S-transform (the exactly
// invertible integer stand-in for ZFP's lifted near-orthogonal
// transform), negabinary mapping, and embedded group-tested bitplane
// coding down to a tolerance-derived minimum plane. A final correction
// pass enforces the absolute error bound exactly (library contract),
// where real ZFP relies on transform analysis.
//
// Characteristic behavior reproduced from the paper's Table IV: highest
// throughput of the baselines, high PSNR for its ratio, but clearly
// lower ratios than the interpolation family at the same bound.

#include <cstdint>
#include <span>
#include <vector>

#include "compressors/core/options.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

class ThreadPool;

struct ZFPConfig : CodecOptions {
  /// Extra bitplanes kept below the tolerance plane; larger = safer but
  /// bigger. The correction pass covers whatever the margin misses.
  int guard_bits = 2;
};

template <class T>
[[nodiscard]] std::vector<std::uint8_t> zfp_compress(const T* data, const Dims& dims,
                                       const ZFPConfig& cfg);

template <class T>
[[nodiscard]] Field<T> zfp_decompress(std::span<const std::uint8_t> archive,
                                      ThreadPool* pool = nullptr);

/// Decompress straight into caller-owned storage of shape `expect`
/// (a dims mismatch throws DecodeError). Avoids the temporary Field +
/// copy of the allocating overload; used by the chunked decoder.
template <class T>
void zfp_decompress_into(std::span<const std::uint8_t> archive, T* out,
                         const Dims& expect, ThreadPool* pool = nullptr);

extern template std::vector<std::uint8_t> zfp_compress<float>(
    const float*, const Dims&, const ZFPConfig&);
extern template std::vector<std::uint8_t> zfp_compress<double>(
    const double*, const Dims&, const ZFPConfig&);
extern template Field<float> zfp_decompress<float>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template Field<double> zfp_decompress<double>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template void zfp_decompress_into<float>(std::span<const std::uint8_t>,
                                                float*, const Dims&,
                                                ThreadPool*);
extern template void zfp_decompress_into<double>(std::span<const std::uint8_t>,
                                                 double*, const Dims&,
                                                 ThreadPool*);

}  // namespace qip
