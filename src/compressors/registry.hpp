#pragma once

// Type-erased access to every compressor in the library, for benchmark
// harnesses, examples, and anything that iterates "all compressors".

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/qp.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

class ThreadPool;

/// Options understood by every compressor. Compressor-specific knobs use
/// their native config structs; the registry exposes the common surface
/// the paper's experiments sweep.
struct GenericOptions {
  double error_bound = 1e-3;
  QPConfig qp;  ///< honored only when the entry's supports_qp is true
  /// Shared worker pool for the parallel entropy-coding stages; nullptr
  /// runs them inline. Parallel output is byte-identical to serial output
  /// by construction (fixed-size ranges, not worker-count-dependent).
  ThreadPool* pool = nullptr;
};

/// One registered compressor.
struct CompressorEntry {
  std::string name;     ///< "MGARD", "SZ3", "QoZ", "HPEZ", "ZFP", ...
  bool interpolation;   ///< member of the interpolation family
  bool supports_qp;     ///< QP hook available (the four base compressors)

  std::function<std::vector<std::uint8_t>(const float*, const Dims&,
                                          const GenericOptions&)>
      compress_f32;
  std::function<Field<float>(std::span<const std::uint8_t>)> decompress_f32;
  std::function<std::vector<std::uint8_t>(const double*, const Dims&,
                                          const GenericOptions&)>
      compress_f64;
  std::function<Field<double>(std::span<const std::uint8_t>)> decompress_f64;

  /// Copy-free decode: writes the reconstruction straight into a
  /// caller-owned buffer of shape `expect` (throws DecodeError when the
  /// archive's dims disagree). Used by chunked_decompress to fill slabs
  /// of the output field without a temporary Field + copy.
  std::function<void(std::span<const std::uint8_t>, float*, const Dims&)>
      decompress_into_f32;
  std::function<void(std::span<const std::uint8_t>, double*, const Dims&)>
      decompress_into_f64;
};

/// All compressors, in the paper's Table IV order:
/// MGARD, SZ3, QoZ, HPEZ, ZFP, TTHRESH, SPERR.
[[nodiscard]] const std::vector<CompressorEntry>& compressor_registry();

/// Lookup by name; throws std::runtime_error if unknown.
[[nodiscard]] const CompressorEntry& find_compressor(std::string_view name);

/// Lookup by the id an archive carries (archive_compressor()); throws
/// std::runtime_error if unknown.
[[nodiscard]] const CompressorEntry& find_compressor_for(std::span<const std::uint8_t> archive);

/// The four interpolation-based compressors the paper integrates QP into.
[[nodiscard]] std::vector<const CompressorEntry*> qp_base_compressors();

}  // namespace qip
