#pragma once

// Type-erased access to every compressor in the library, for benchmark
// harnesses, examples, and anything that iterates "all compressors".

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "compressors/core/container.hpp"
#include "compressors/core/options.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

class ThreadPool;

/// Options understood by every compressor — the common CodecOptions
/// surface the paper's experiments sweep (error bound, QP config, worker
/// pool). Compressor-specific knobs use their native config structs,
/// which embed the same fields by inheriting CodecOptions.
using GenericOptions = CodecOptions;

/// One registered compressor.
struct CompressorEntry {
  std::string name;     ///< "MGARD", "SZ3", "QoZ", "HPEZ", "ZFP", ...
  CompressorId id{};    ///< the id its archives carry
  bool interpolation;   ///< member of the interpolation family
  bool supports_qp;     ///< QP hook available (the four base compressors)

  std::function<std::vector<std::uint8_t>(const float*, const Dims&,
                                          const GenericOptions&)>
      compress_f32;
  std::function<Field<float>(std::span<const std::uint8_t>)> decompress_f32;
  std::function<std::vector<std::uint8_t>(const double*, const Dims&,
                                          const GenericOptions&)>
      compress_f64;
  std::function<Field<double>(std::span<const std::uint8_t>)> decompress_f64;

  /// Copy-free decode: writes the reconstruction straight into a
  /// caller-owned buffer of shape `expect` (throws DecodeError when the
  /// archive's dims disagree). Used by chunked_decompress to fill slabs
  /// of the output field without a temporary Field + copy.
  std::function<void(std::span<const std::uint8_t>, float*, const Dims&)>
      decompress_into_f32;
  std::function<void(std::span<const std::uint8_t>, double*, const Dims&)>
      decompress_into_f64;

  /// Pool-threaded variant of the copy-free decode: the codec's internal
  /// stages (cross-axis interpolation, Huffman decode) fan out over
  /// `pool` when non-null; identical semantics otherwise. Every native
  /// decoder already accepts the pool — these closures stop the registry
  /// from dropping it, so the serving scheduler can give one large job
  /// several workers.
  std::function<void(std::span<const std::uint8_t>, float*, const Dims&,
                     ThreadPool*)>
      decompress_into_pool_f32;
  std::function<void(std::span<const std::uint8_t>, double*, const Dims&,
                     ThreadPool*)>
      decompress_into_pool_f64;

  /// Whether the partial-decode entry points below do real work. Both
  /// are always callable: codecs without the capability install a
  /// closure that throws UnknownCodecError, so callers that don't check
  /// first still get a typed refusal instead of a null std::function.
  bool supports_preview = false;
  bool supports_region = false;

  /// Progressive preview: decode only the interpolation levels coarser
  /// than or equal to `level`, reading just the coarse prefix of a v3
  /// payload, and return the decimated level-`level` grid.
  std::function<Field<float>(std::span<const std::uint8_t>, int,
                             PartialDecodeStats*)>
      decompress_preview_f32;
  std::function<Field<double>(std::span<const std::uint8_t>, int,
                              PartialDecodeStats*)>
      decompress_preview_f64;

  /// Random-access region decode from the tile directory. Requires an
  /// archive sealed with tile_size > 0 (DecodeError otherwise).
  std::function<Field<float>(std::span<const std::uint8_t>, const Box&,
                             PartialDecodeStats*)>
      decompress_region_f32;
  std::function<Field<double>(std::span<const std::uint8_t>, const Box&,
                              PartialDecodeStats*)>
      decompress_region_f64;

  /// Pool-threaded variants of the partial decodes, mirroring
  /// decompress_into_pool_*: chunk Huffman decodes, the tile fan-out,
  /// and the parallel level walk all run over `pool` when non-null.
  std::function<Field<float>(std::span<const std::uint8_t>, int,
                             PartialDecodeStats*, ThreadPool*)>
      decompress_preview_pool_f32;
  std::function<Field<double>(std::span<const std::uint8_t>, int,
                              PartialDecodeStats*, ThreadPool*)>
      decompress_preview_pool_f64;
  std::function<Field<float>(std::span<const std::uint8_t>, const Box&,
                             PartialDecodeStats*, ThreadPool*)>
      decompress_region_pool_f32;
  std::function<Field<double>(std::span<const std::uint8_t>, const Box&,
                              PartialDecodeStats*, ThreadPool*)>
      decompress_region_pool_f64;
};

/// All compressors, in the paper's Table IV order:
/// MGARD, SZ3, QoZ, HPEZ, ZFP, TTHRESH, SPERR.
[[nodiscard]] const std::vector<CompressorEntry>& compressor_registry();

/// Lookup by name; throws UnknownCodecError if unknown.
[[nodiscard]] const CompressorEntry& find_compressor(std::string_view name);

/// Lookup by the codec id in an archive's container header. Throws
/// DecodeError on malformed bytes and UnknownCodecError — carrying the
/// offending codec id and format version — when the archive is
/// structurally valid but names a codec this build does not know.
[[nodiscard]] const CompressorEntry& find_compressor_for(std::span<const std::uint8_t> archive);

/// The four interpolation-based compressors the paper integrates QP into.
[[nodiscard]] std::vector<const CompressorEntry*> qp_base_compressors();

}  // namespace qip
