#pragma once

// SPERR-like wavelet compressor (Li, Lindstrom & Clyne, IPDPS'23
// family): multi-level separable CDF 9/7 lifting transform, uniform
// scalar quantization of the wavelet coefficients with an entropy-coded
// index stream, and — exactly as real SPERR does — an outlier correction
// pass that enforces the pointwise error bound. (Real SPERR uses SPECK
// set-partitioning instead of scalar quantization; the ratio/speed
// placement of Table IV — top-tier ratios, modest throughput — is what
// this reproduction preserves.)

#include <cstdint>
#include <span>
#include <vector>

#include "compressors/core/options.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

class ThreadPool;

struct SPERRConfig : CodecOptions {
  int levels = 3;            ///< dyadic decomposition depth per axis
  double quant_factor = 8.0; ///< coefficient bin = eb / quant_factor
                             ///< (small bins beat corrections in size)
  /// Experimental: the paper's future-work item (1), QP generalized to a
  /// non-interpolation archetype. Applies the same adaptively-gated 2-D
  /// Lorenzo prediction to the wavelet quantization indices, per
  /// subband, before entropy coding. Reversible: the reconstruction is
  /// untouched. See bench/ablation_design_choices.
  bool index_prediction = false;
};

template <class T>
[[nodiscard]] std::vector<std::uint8_t> sperr_compress(const T* data, const Dims& dims,
                                         const SPERRConfig& cfg);

template <class T>
[[nodiscard]] Field<T> sperr_decompress(std::span<const std::uint8_t> archive,
                                        ThreadPool* pool = nullptr);

/// Decompress straight into caller-owned storage of shape `expect`
/// (a dims mismatch throws DecodeError). Avoids the temporary Field +
/// copy of the allocating overload; used by the chunked decoder.
template <class T>
void sperr_decompress_into(std::span<const std::uint8_t> archive, T* out,
                           const Dims& expect, ThreadPool* pool = nullptr);

extern template std::vector<std::uint8_t> sperr_compress<float>(
    const float*, const Dims&, const SPERRConfig&);
extern template std::vector<std::uint8_t> sperr_compress<double>(
    const double*, const Dims&, const SPERRConfig&);
extern template Field<float> sperr_decompress<float>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template Field<double> sperr_decompress<double>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template void sperr_decompress_into<float>(std::span<const std::uint8_t>,
                                                  float*, const Dims&,
                                                  ThreadPool*);
extern template void sperr_decompress_into<double>(
    std::span<const std::uint8_t>, double*, const Dims&, ThreadPool*);

}  // namespace qip
