#pragma once

// QoZ-like quality-oriented compressor (Liu et al., SC'22): SZ3's
// multilevel interpolation enhanced with (a) per-level auto-tuning of the
// interpolant and direction order on sampled stage points, and (b)
// level-wise error-bound scaling (smaller bounds on coarse levels, whose
// errors propagate through interpolation to many points), with the
// (alpha, beta) pair selected by a rate-distortion trial on a sampled
// sub-box. No Lorenzo fallback — matching the paper's observation that
// QoZ's QP overhead is steady because it never switches predictors.

#include <cstdint>
#include <span>
#include <vector>

#include "compressors/core/options.hpp"
#include "compressors/core/tiles.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

class ThreadPool;

struct QoZConfig : CodecOptions {
  /// Level-wise bound: eb_l = eb * max(alpha^-(l-1), 1/beta). Tuned over a
  /// small candidate set when `tune_level_eb` is set.
  double alpha = 1.5;
  double beta = 4.0;
  bool tune_level_eb = true;
  /// Per-level interpolant/direction tuning on sampled stage points.
  bool tune_interp = true;
};

template <class T>
[[nodiscard]] std::vector<std::uint8_t> qoz_compress(const T* data, const Dims& dims,
                                       const QoZConfig& cfg,
                                       IndexArtifacts* artifacts = nullptr);

template <class T>
[[nodiscard]] Field<T> qoz_decompress(std::span<const std::uint8_t> archive,
                                      ThreadPool* pool = nullptr);

/// Decompress straight into caller-owned storage of shape `expect`
/// (a dims mismatch throws DecodeError). Avoids the temporary Field +
/// copy of the allocating overload; used by the chunked decoder.
template <class T>
void qoz_decompress_into(std::span<const std::uint8_t> archive, T* out,
                         const Dims& expect, ThreadPool* pool = nullptr);

/// Progressive preview: decode only the interpolation levels coarser
/// than or equal to `level` and return the decimated level-`level` grid,
/// reading only the coarse prefix of a v3 payload.
template <class T>
[[nodiscard]] Field<T> qoz_decompress_preview(
    std::span<const std::uint8_t> archive, int level,
    ThreadPool* pool = nullptr, PartialDecodeStats* stats = nullptr);

/// Random-access region decode (requires an archive sealed with a tile
/// directory, i.e. tile_size > 0 at compress time).
template <class T>
[[nodiscard]] Field<T> qoz_decompress_region(
    std::span<const std::uint8_t> archive, const Box& box,
    ThreadPool* pool = nullptr, PartialDecodeStats* stats = nullptr);

extern template std::vector<std::uint8_t> qoz_compress<float>(
    const float*, const Dims&, const QoZConfig&, IndexArtifacts*);
extern template std::vector<std::uint8_t> qoz_compress<double>(
    const double*, const Dims&, const QoZConfig&, IndexArtifacts*);
extern template Field<float> qoz_decompress<float>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template Field<double> qoz_decompress<double>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template void qoz_decompress_into<float>(std::span<const std::uint8_t>,
                                                float*, const Dims&,
                                                ThreadPool*);
extern template void qoz_decompress_into<double>(std::span<const std::uint8_t>,
                                                 double*, const Dims&,
                                                 ThreadPool*);
extern template Field<float> qoz_decompress_preview<float>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
extern template Field<double> qoz_decompress_preview<double>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
extern template Field<float> qoz_decompress_region<float>(
    std::span<const std::uint8_t>, const Box&, ThreadPool*,
    PartialDecodeStats*);
extern template Field<double> qoz_decompress_region<double>(
    std::span<const std::uint8_t>, const Box&, ThreadPool*,
    PartialDecodeStats*);

}  // namespace qip
