#pragma once

// HPEZ-like compressor (Liu et al., SIGMOD'24): auto-tuned
// multi-component interpolation. Key moving parts reproduced here:
//  * multi-dimensional (parity-class) interpolation, which consumes the
//    orthogonal-plane correlation that plain directional interpolation
//    leaves behind — exactly why the paper finds HPEZ's quantization
//    indices the least clustered and QP's gains on it the smallest;
//  * block-wise (32^3) interpolation tuning: each block independently
//    picks its interpolant/direction from a candidate set (the paper's
//    Fig. 5 highlights the lone block that chose z-first);
//  * QoZ-style level-wise error-bound scaling;
//  * the QP hook, like every interpolation compressor in this library.

#include <cstdint>
#include <span>
#include <vector>

#include "compressors/core/options.hpp"
#include "compressors/core/tiles.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

class ThreadPool;

struct HPEZConfig : CodecOptions {
  std::size_t block_size = 32;
  double alpha = 1.5;  ///< level-wise eb decay
  double beta = 4.0;   ///< level-wise eb floor divisor
  bool tune_blocks = true;
};

template <class T>
[[nodiscard]] std::vector<std::uint8_t> hpez_compress(const T* data, const Dims& dims,
                                        const HPEZConfig& cfg,
                                        IndexArtifacts* artifacts = nullptr);

template <class T>
[[nodiscard]] Field<T> hpez_decompress(std::span<const std::uint8_t> archive,
                                       ThreadPool* pool = nullptr);

/// Decompress straight into caller-owned storage of shape `expect`
/// (a dims mismatch throws DecodeError). Avoids the temporary Field +
/// copy of the allocating overload; used by the chunked decoder.
template <class T>
void hpez_decompress_into(std::span<const std::uint8_t> archive, T* out,
                          const Dims& expect, ThreadPool* pool = nullptr);

/// Progressive preview: decode only the interpolation levels coarser
/// than or equal to `level` and return the decimated level-`level` grid.
/// HPEZ payloads are chunked per level, so this reads only the coarse
/// prefix of a v3 archive.
template <class T>
[[nodiscard]] Field<T> hpez_decompress_preview(
    std::span<const std::uint8_t> archive, int level,
    ThreadPool* pool = nullptr, PartialDecodeStats* stats = nullptr);

/// Random-access region decode. HPEZ's block-wise traversal is
/// incompatible with the tile grid, so its archives never carry a tile
/// directory and this always throws DecodeError — it exists so the
/// registry surface is uniform and the refusal is typed.
template <class T>
[[nodiscard]] Field<T> hpez_decompress_region(
    std::span<const std::uint8_t> archive, const Box& box,
    ThreadPool* pool = nullptr, PartialDecodeStats* stats = nullptr);

extern template std::vector<std::uint8_t> hpez_compress<float>(
    const float*, const Dims&, const HPEZConfig&, IndexArtifacts*);
extern template std::vector<std::uint8_t> hpez_compress<double>(
    const double*, const Dims&, const HPEZConfig&, IndexArtifacts*);
extern template Field<float> hpez_decompress<float>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template Field<double> hpez_decompress<double>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template void hpez_decompress_into<float>(std::span<const std::uint8_t>,
                                                 float*, const Dims&,
                                                 ThreadPool*);
extern template void hpez_decompress_into<double>(std::span<const std::uint8_t>,
                                                  double*, const Dims&,
                                                  ThreadPool*);
extern template Field<float> hpez_decompress_preview<float>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
extern template Field<double> hpez_decompress_preview<double>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
extern template Field<float> hpez_decompress_region<float>(
    std::span<const std::uint8_t>, const Box&, ThreadPool*,
    PartialDecodeStats*);
extern template Field<double> hpez_decompress_region<double>(
    std::span<const std::uint8_t>, const Box&, ThreadPool*,
    PartialDecodeStats*);

}  // namespace qip
