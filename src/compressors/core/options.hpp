#pragma once

// Options every codec front-end understands. Per-codec config structs
// inherit from CodecOptions instead of redeclaring these knobs, so the
// registry, the stage-graph driver, and the experiment sweeps can treat
// all configs uniformly (and tools/qip_lint.py enforces that no config
// grows a duplicate copy of a common field).

#include <cstddef>
#include <cstdint>

#include "core/qp.hpp"
#include "predict/interpolation.hpp"

namespace qip {

class ThreadPool;

/// The common surface of every codec config. Codecs that have no use for
/// a field simply ignore it (e.g. the erasure-style codecs ignore `qp`
/// and `kind`); the interpolation family honors all of them.
struct CodecOptions {
  double error_bound = 1e-3;    ///< absolute (L-inf) error bound
  QPConfig qp;                  ///< quantization index prediction hook
  std::int32_t radius = 32768;  ///< linear-quantizer code radius
  InterpKind kind = InterpKind::kCubic;  ///< interpolator for fixed plans
  /// Tile edge for the container-v3 tile directory (0 = untiled). When
  /// set, codecs that support random-access region decode (SZ3/QoZ
  /// interpolation paths) traverse the fine levels tile by tile so each
  /// tile's payload chunk decodes independently; the slightly weaker
  /// cross-tile prediction costs a little ratio, which is why tiling is
  /// opt-in.
  std::size_t tile_size = 0;
  /// Shared worker pool for the parallel entropy-coding stages; nullptr
  /// runs them inline. Parallel output is byte-identical to serial output
  /// by construction (fixed-size ranges, not worker-count-dependent).
  ThreadPool* pool = nullptr;
};

}  // namespace qip
