#pragma once

// The unified, self-describing archive container shared by every codec.
//
// Outer layout (plaintext, inspectable without any decompression):
//
//   u32   magic            "QIPC" (little-endian 0x43504951)
//   u8    format version   (kContainerVersion)
//   u8    codec id         (CompressorId)
//   u8    dtype            (dtype_tag<T>())
//   dims  varint rank, then one varint extent per axis
//
// Version 3 body — three regions, in order:
//
//   meta      varint length | LZB block of the stage sections
//             (varint section count; per section u8 stage id |
//              varint length | payload bytes)
//   directory varint length | LZB block of the payload directory
//             (varint level count | varint tile size |
//              varint tiled-level count | varint chunk count;
//              per chunk, in payload order: varint level |
//              varint tile+1 (0 = whole domain) | varint length |
//              varint symbol count (0 = raw bytes) |
//              varint outlier count)
//   payload   concatenated chunk frames, each an independent LZB block
//
// Chunk offsets are implicit — each chunk starts where the previous one
// ends — so a hostile directory cannot alias or overlap chunks. Chunks
// are ordered coarse level first (levels strictly descending; within a
// tiled level, tile ids strictly ascending), which is what makes the
// format progressive: a reader holding only a prefix of the payload can
// still decode every chunk that fits, and the directory says exactly
// which ones those are. Chunk byte extents are validated lazily against
// the payload bytes actually present, so a truncated download fails only
// when a missing chunk is really asked for.
//
// Version 2 archives (single LZB body holding the stage sections, with
// the whole entropy payload inside a kSymbols section) still open; the
// reader exposes them as stage sections with an empty chunk directory.
// find_compressor_for, `qipc info`, and the fuzz harness all parse
// exactly these layouts and nothing else.

#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "compressors/core/tiles.hpp"
#include "util/bytes.hpp"
#include "util/dims.hpp"
#include "util/status.hpp"

namespace qip {

class ThreadPool;

inline constexpr std::uint32_t kContainerMagic = 0x43504951;  // "QIPC"

/// Current container format version. Bumped whenever the layout above or
/// any stage payload changes incompatibly; readers reject unknown
/// versions with UnknownCodecError instead of misparsing.
inline constexpr std::uint8_t kContainerVersion = 3;

/// Oldest container version this build still opens.
inline constexpr std::uint8_t kContainerMinVersion = 2;

/// Magic of multi-chunk parallel archives (parallel/chunked.cpp). Listed
/// here so every tool can tell the two top-level formats apart from one
/// set of named constants.
inline constexpr std::uint32_t kChunkedMagic = 0x50504951;  // "QIPP"

/// Plaintext bytes before dims: magic(4) + version(1) + id(1) + dtype(1).
inline constexpr std::size_t kContainerPrefixBytes = 7;

/// Upper bound on the payload level count a directory may declare. The
/// interpolation level count of a field is at most log2(max extent), so
/// 64 covers every representable field; anything larger is a bomb.
inline constexpr std::uint64_t kMaxPayloadLevels = 64;

/// Compressor identifiers stored in archives. Serialized; append-only.
enum class CompressorId : std::uint8_t {
  kSZ3 = 1,
  kQoZ = 2,
  kHPEZ = 3,
  kMGARD = 4,
  kZFP = 5,
  kSPERR = 6,
  kTTHRESH = 7,
};

/// Scalar type tag stored in archives.
template <class T>
constexpr std::uint8_t dtype_tag();
template <>
constexpr std::uint8_t dtype_tag<float>() { return 1; }
template <>
constexpr std::uint8_t dtype_tag<double>() { return 2; }

/// Stage sections a codec may store. Serialized; append-only.
enum class StageId : std::uint8_t {
  kConfig = 1,       ///< codec knobs + model state (plan, quantizer, factors)
  kSymbols = 2,      ///< entropy-coded symbol / coefficient stream (v2 only)
  kCorrections = 3,  ///< sparse bound-enforcing patch list
};

/// Human-readable stage name for tools ("config", "symbols", ...).
[[nodiscard]] std::string stage_name(StageId id);

/// Typed decode failure for structurally recognizable containers this
/// build cannot open: an unknown codec id or an unsupported format
/// version. Carries both offending fields so callers (and `qipc`) can
/// report exactly what they met instead of a bare "unknown archive".
class UnknownCodecError : public DecodeError {
 public:
  UnknownCodecError(const std::string& what, std::uint8_t codec_id,
                    std::uint8_t version)
      : DecodeError(what), codec_id_(codec_id), version_(version) {}

  /// For lookups that never saw an archive header (find_compressor by
  /// name): there are no offending header fields to carry, so codec_id
  /// reports the 0xFF sentinel.
  explicit UnknownCodecError(const std::string& what)
      : UnknownCodecError(what, 0xFF, 0) {}

  std::uint8_t codec_id() const noexcept { return codec_id_; }
  std::uint8_t version() const noexcept { return version_; }

 private:
  std::uint8_t codec_id_;
  std::uint8_t version_;
};

void write_dims(ByteWriter& w, const Dims& dims);

/// Parse dims written by write_dims(). Rejects rank outside [1, kMaxRank],
/// zero extents, and extent products that would wrap size_t (which would
/// defeat every downstream buffer-size check).
[[nodiscard]] Dims read_dims(ByteReader& r);

/// Everything the plaintext header says about an archive, without
/// touching the compressed stage body.
struct ContainerInfo {
  std::uint8_t version = 0;
  CompressorId codec{};
  std::uint8_t dtype = 0;
  Dims dims;
  std::size_t header_bytes = 0;  ///< plaintext header size
  std::size_t body_bytes = 0;    ///< bytes after the header
};

/// Parse the plaintext header only. Throws DecodeError on malformed
/// bytes and UnknownCodecError on an unsupported format version; does
/// not validate the codec id (that is the registry's call).
[[nodiscard]] ContainerInfo inspect_container(
    std::span<const std::uint8_t> bytes);

/// One stage section of an opened container.
struct StageSection {
  StageId id{};
  std::size_t offset = 0;  ///< into the decompressed meta body
  std::size_t size = 0;
};

/// One payload chunk declared by a v3 directory: the symbols (or raw
/// stream) of one interpolation level, or of one tile within a tiled
/// level. `offset` is implicit — the running sum of the preceding
/// lengths — so hostile directories cannot overlap chunks.
struct ChunkEntry {
  int level = 1;                         ///< interpolation level (1 = finest)
  std::uint64_t tile = kWholeDomainTile; ///< tile id, or whole-domain
  std::uint64_t offset = 0;              ///< into the payload region
  std::uint64_t length = 0;              ///< compressed frame bytes
  std::size_t symbol_count = 0;          ///< decoded u32 symbols; 0 = raw
  std::size_t outlier_count = 0;   ///< quantizer outliers consumed here
  std::size_t outlier_start = 0;   ///< running outlier total before this chunk
};

/// Parsed v3 payload directory. Empty (zero chunks, inactive tiling) for
/// v2 archives and v3 archives that carry no payload chunks.
struct PayloadDirectory {
  int level_count = 0;
  TileLayout tiling;
  std::vector<ChunkEntry> chunks;
};

/// Assembles a container: per-stage byte writers for the metadata
/// sections plus an ordered list of payload chunks, sealed into the v3
/// layout above.
class ContainerWriter {
 public:
  ContainerWriter(CompressorId id, std::uint8_t dtype, const Dims& dims)
      : id_(id), dtype_(dtype), dims_(dims) {}

  /// Writer for the meta section `id`; sections are emitted in first-use
  /// order, and a repeated call appends to the same section.
  [[nodiscard]] ByteWriter& stage(StageId id);

  /// Record the tile layout the payload chunks were produced under.
  void set_tiling(const TileLayout& t) { tiling_ = t; }

  /// Append a payload chunk. Chunks must be added in traversal order:
  /// levels strictly descending, tiles strictly ascending within a tiled
  /// level. `raw` is the chunk's uncompressed frame content (Huffman
  /// bytes for symbol chunks, arbitrary bytes for raw chunks); seal()
  /// LZB-frames each chunk independently. `symbol_count` must be the
  /// number of u32 symbols the frame decodes to, or 0 for raw chunks;
  /// `outlier_count` the number of quantizer outliers the chunk's
  /// symbols consume.
  void add_chunk(int level, std::uint64_t tile, std::size_t symbol_count,
                 std::size_t outlier_count, std::vector<std::uint8_t> raw);

  /// Emit the full archive. `pool` parallelizes the per-chunk lossless
  /// framing and the meta/directory passes; the bytes do not depend on
  /// it.
  [[nodiscard]] std::vector<std::uint8_t> seal(ThreadPool* pool = nullptr);

 private:
  struct PendingChunk {
    int level;
    std::uint64_t tile;
    std::size_t symbol_count;
    std::size_t outlier_count;
    std::vector<std::uint8_t> raw;
  };

  CompressorId id_;
  std::uint8_t dtype_;
  Dims dims_;
  TileLayout tiling_;
  std::vector<std::pair<StageId, ByteWriter>> stages_;
  std::vector<PendingChunk> chunks_;
};

/// Validates and indexes a container: plaintext header checks first,
/// then the meta/directory LZB blocks (each capped at `max_body` to
/// bound what a hostile length header can make us materialize), then the
/// payload directory invariants. Chunk frames are decompressed lazily by
/// chunk_bytes(). Throws DecodeError on malformed input; never reads out
/// of bounds.
///
/// The reader borrows `bytes` for the payload region: the archive buffer
/// must outlive any chunk_bytes() call.
class ContainerReader {
 public:
  static constexpr std::uint64_t kNoBodyCap =
      std::numeric_limits<std::uint64_t>::max();

  /// Open for a specific codec: additionally rejects archives whose
  /// codec id or dtype disagree with the caller's expectation.
  ContainerReader(std::span<const std::uint8_t> bytes, CompressorId expect_id,
                  std::uint8_t expect_dtype,
                  std::uint64_t max_body = kNoBodyCap,
                  ThreadPool* pool = nullptr);

  /// Open without codec/dtype expectations (inspection tools, fuzzing).
  explicit ContainerReader(std::span<const std::uint8_t> bytes,
                           std::uint64_t max_body = kNoBodyCap,
                           ThreadPool* pool = nullptr);

  std::uint8_t version() const { return version_; }
  CompressorId codec() const { return codec_; }
  std::uint8_t dtype() const { return dtype_; }
  const Dims& dims() const { return dims_; }

  /// Stage directory, in on-disk order.
  const std::vector<StageSection>& sections() const { return sections_; }

  bool has_stage(StageId id) const;

  /// Raw payload of stage `id`; throws DecodeError when absent.
  [[nodiscard]] std::span<const std::uint8_t> stage_bytes(StageId id) const;

  /// Cursor over the payload of stage `id`; throws DecodeError when
  /// absent.
  [[nodiscard]] ByteReader stage(StageId id) const {
    return ByteReader(stage_bytes(id));
  }

  /// Payload directory; empty for v2 archives.
  const PayloadDirectory& directory() const { return dir_; }

  std::size_t chunk_count() const { return dir_.chunks.size(); }

  /// Decompress chunk `index`'s frame. Validates the chunk's byte extent
  /// against the payload actually present (so prefix-truncated archives
  /// fail here, not at parse), caps the decompressed size from the
  /// declared symbol count, and accounts the compressed bytes touched in
  /// payload_bytes_read(). Throws DecodeError on any violation.
  [[nodiscard]] std::vector<std::uint8_t> chunk_bytes(std::size_t index) const;

  /// Compressed payload bytes materialized by chunk_bytes() so far —
  /// the partial-decode efficiency figure surfaced by qipc and asserted
  /// by the progressive tests. Atomic because read_symbols_stage decodes
  /// chunks in parallel.
  std::size_t payload_bytes_read() const {
    return payload_bytes_read_.load(std::memory_order_relaxed);
  }

  /// Payload bytes present in the archive buffer (may be less than the
  /// directory declares for a truncated/streamed prefix).
  std::size_t payload_bytes_available() const { return payload_.size(); }

  /// Payload bytes the directory declares.
  std::size_t payload_bytes_declared() const { return payload_declared_; }

 private:
  void parse(std::span<const std::uint8_t> bytes, std::uint64_t max_body,
             ThreadPool* pool);
  void parse_directory(std::span<const std::uint8_t> dir_bytes);

  std::uint8_t version_ = 0;
  CompressorId codec_{};
  std::uint8_t dtype_ = 0;
  Dims dims_;
  std::vector<std::uint8_t> body_;  ///< decompressed meta sections
  std::vector<StageSection> sections_;
  PayloadDirectory dir_;
  std::span<const std::uint8_t> payload_;  ///< borrowed from the archive
  std::size_t payload_declared_ = 0;
  std::uint64_t max_body_ = kNoBodyCap;
  ThreadPool* pool_ = nullptr;
  mutable std::atomic<std::size_t> payload_bytes_read_{0};
};

}  // namespace qip
