#pragma once

// The unified, self-describing archive container shared by every codec.
//
// Outer layout (plaintext, inspectable without any decompression):
//
//   u32   magic            "QIPC" (little-endian 0x43504951)
//   u8    format version   (kContainerVersion)
//   u8    codec id         (CompressorId)
//   u8    dtype            (dtype_tag<T>())
//   dims  varint rank, then one varint extent per axis
//
// followed by a single LZB block holding the stage sections:
//
//   varint section count
//   per section: u8 stage id | varint length | payload bytes
//
// Every stage payload rides inside the one LZB pass, so the container
// framing costs only the plaintext header versus the previous per-codec
// ad-hoc formats. find_compressor_for, `qipc info`, and the fuzz harness
// all parse exactly this layout and nothing else.

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/dims.hpp"
#include "util/status.hpp"

namespace qip {

class ThreadPool;

inline constexpr std::uint32_t kContainerMagic = 0x43504951;  // "QIPC"

/// Current container format version. Bumped whenever the layout above or
/// any stage payload changes incompatibly; readers reject unknown
/// versions with UnknownCodecError instead of misparsing.
inline constexpr std::uint8_t kContainerVersion = 2;

/// Magic of multi-chunk parallel archives (parallel/chunked.cpp). Listed
/// here so every tool can tell the two top-level formats apart from one
/// set of named constants.
inline constexpr std::uint32_t kChunkedMagic = 0x50504951;  // "QIPP"

/// Plaintext bytes before dims: magic(4) + version(1) + id(1) + dtype(1).
inline constexpr std::size_t kContainerPrefixBytes = 7;

/// Compressor identifiers stored in archives. Serialized; append-only.
enum class CompressorId : std::uint8_t {
  kSZ3 = 1,
  kQoZ = 2,
  kHPEZ = 3,
  kMGARD = 4,
  kZFP = 5,
  kSPERR = 6,
  kTTHRESH = 7,
};

/// Scalar type tag stored in archives.
template <class T>
constexpr std::uint8_t dtype_tag();
template <>
constexpr std::uint8_t dtype_tag<float>() { return 1; }
template <>
constexpr std::uint8_t dtype_tag<double>() { return 2; }

/// Stage sections a codec may store. Serialized; append-only.
enum class StageId : std::uint8_t {
  kConfig = 1,       ///< codec knobs + model state (plan, quantizer, factors)
  kSymbols = 2,      ///< entropy-coded symbol / coefficient stream
  kCorrections = 3,  ///< sparse bound-enforcing patch list
};

/// Human-readable stage name for tools ("config", "symbols", ...).
[[nodiscard]] std::string stage_name(StageId id);

/// Typed decode failure for structurally recognizable containers this
/// build cannot open: an unknown codec id or an unsupported format
/// version. Carries both offending fields so callers (and `qipc`) can
/// report exactly what they met instead of a bare "unknown archive".
class UnknownCodecError : public DecodeError {
 public:
  UnknownCodecError(const std::string& what, std::uint8_t codec_id,
                    std::uint8_t version)
      : DecodeError(what), codec_id_(codec_id), version_(version) {}

  /// For lookups that never saw an archive header (find_compressor by
  /// name): there are no offending header fields to carry, so codec_id
  /// reports the 0xFF sentinel.
  explicit UnknownCodecError(const std::string& what)
      : UnknownCodecError(what, 0xFF, 0) {}

  std::uint8_t codec_id() const noexcept { return codec_id_; }
  std::uint8_t version() const noexcept { return version_; }

 private:
  std::uint8_t codec_id_;
  std::uint8_t version_;
};

void write_dims(ByteWriter& w, const Dims& dims);

/// Parse dims written by write_dims(). Rejects rank outside [1, kMaxRank],
/// zero extents, and extent products that would wrap size_t (which would
/// defeat every downstream buffer-size check).
[[nodiscard]] Dims read_dims(ByteReader& r);

/// Everything the plaintext header says about an archive, without
/// touching the compressed stage body.
struct ContainerInfo {
  std::uint8_t version = 0;
  CompressorId codec{};
  std::uint8_t dtype = 0;
  Dims dims;
  std::size_t header_bytes = 0;  ///< plaintext header size
  std::size_t body_bytes = 0;    ///< compressed stage-body size
};

/// Parse the plaintext header only. Throws DecodeError on malformed
/// bytes and UnknownCodecError on an unsupported format version; does
/// not validate the codec id (that is the registry's call).
[[nodiscard]] ContainerInfo inspect_container(
    std::span<const std::uint8_t> bytes);

/// One stage section of an opened container.
struct StageSection {
  StageId id{};
  std::size_t offset = 0;  ///< into the decompressed body
  std::size_t size = 0;
};

/// Assembles a container: per-stage byte writers, concatenated and
/// length-prefixed into one LZB block at seal() time.
class ContainerWriter {
 public:
  ContainerWriter(CompressorId id, std::uint8_t dtype, const Dims& dims)
      : id_(id), dtype_(dtype), dims_(dims) {}

  /// Writer for the section `id`; sections are emitted in first-use
  /// order, and a repeated call appends to the same section.
  [[nodiscard]] ByteWriter& stage(StageId id);

  /// Emit the full archive. `pool` parallelizes the lossless pass; the
  /// bytes do not depend on it.
  [[nodiscard]] std::vector<std::uint8_t> seal(ThreadPool* pool = nullptr);

 private:
  CompressorId id_;
  std::uint8_t dtype_;
  Dims dims_;
  std::vector<std::pair<StageId, ByteWriter>> stages_;
};

/// Validates and indexes a container: plaintext header checks first,
/// then one LZB decompression (capped at `max_body` to bound what a
/// hostile length header can make us materialize), then the stage
/// directory. Throws DecodeError on malformed input; never reads out of
/// bounds.
class ContainerReader {
 public:
  static constexpr std::uint64_t kNoBodyCap =
      std::numeric_limits<std::uint64_t>::max();

  /// Open for a specific codec: additionally rejects archives whose
  /// codec id or dtype disagree with the caller's expectation.
  ContainerReader(std::span<const std::uint8_t> bytes, CompressorId expect_id,
                  std::uint8_t expect_dtype,
                  std::uint64_t max_body = kNoBodyCap,
                  ThreadPool* pool = nullptr);

  /// Open without codec/dtype expectations (inspection tools, fuzzing).
  explicit ContainerReader(std::span<const std::uint8_t> bytes,
                           std::uint64_t max_body = kNoBodyCap,
                           ThreadPool* pool = nullptr);

  std::uint8_t version() const { return version_; }
  CompressorId codec() const { return codec_; }
  std::uint8_t dtype() const { return dtype_; }
  const Dims& dims() const { return dims_; }

  /// Stage directory, in on-disk order.
  const std::vector<StageSection>& sections() const { return sections_; }

  bool has_stage(StageId id) const;

  /// Raw payload of stage `id`; throws DecodeError when absent.
  [[nodiscard]] std::span<const std::uint8_t> stage_bytes(StageId id) const;

  /// Cursor over the payload of stage `id`; throws DecodeError when
  /// absent.
  [[nodiscard]] ByteReader stage(StageId id) const {
    return ByteReader(stage_bytes(id));
  }

 private:
  void parse(std::span<const std::uint8_t> bytes, std::uint64_t max_body,
             ThreadPool* pool);

  std::uint8_t version_ = 0;
  CompressorId codec_{};
  std::uint8_t dtype_ = 0;
  Dims dims_;
  std::vector<std::uint8_t> body_;
  std::vector<StageSection> sections_;
};

}  // namespace qip
