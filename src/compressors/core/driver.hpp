#pragma once

// The templated compress/decompress driver every codec front-end runs on,
// plus the shared stage read/write helpers of the two codec families
// (interpolation pipelines and correction-list erasure pipelines).
//
// A codec supplies a policy struct:
//
//   struct FooCodec {
//     using Config = FooConfig;           // inherits CodecOptions
//     using Artifacts = IndexArtifacts;   // or NoArtifacts
//     static constexpr CompressorId kId = CompressorId::kFoo;
//     static constexpr const char* kName = "foo";
//     template <class T>
//     static void encode(const T* data, const Dims& dims, const Config&,
//                        ContainerWriter& out, Artifacts*);
//     template <class T>
//     static void decode(const ContainerReader& in, T* out, ThreadPool*);
//   };
//
// and the driver owns the container framing, output allocation, and
// dims/dtype validation for compress / decompress / decompress_into, so
// a new codec is one policy struct plus three one-line public wrappers.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "compressors/core/container.hpp"
#include "compressors/core/options.hpp"
#include "compressors/interp_engine.hpp"
#include "compressors/plan.hpp"
#include "core/qp.hpp"
#include "encode/huffman.hpp"
#include "quant/quantizer.hpp"
#include "util/field.hpp"
#include "util/thread_pool.hpp"

namespace qip {

/// Artifacts type for codecs that expose none.
struct NoArtifacts {};

/// Compress `data` through `Codec`'s encode policy into a sealed
/// container.
template <class Codec, class T>
[[nodiscard]] std::vector<std::uint8_t> codec_seal(
    const T* data, const Dims& dims, const typename Codec::Config& cfg,
    typename Codec::Artifacts* artifacts = nullptr) {
  ContainerWriter out(Codec::kId, dtype_tag<T>(), dims);
  Codec::template encode<T>(data, dims, cfg, out, artifacts);
  return out.seal(cfg.pool);
}

/// Decompress a `Codec` container into a freshly allocated field.
template <class Codec, class T>
[[nodiscard]] Field<T> codec_open(std::span<const std::uint8_t> archive,
                                  ThreadPool* pool = nullptr) {
  const ContainerReader in(archive, Codec::kId, dtype_tag<T>(),
                           ContainerReader::kNoBodyCap, pool);
  Field<T> out(in.dims());
  Codec::template decode<T>(in, out.data(), pool);
  return out;
}

/// Copy-free decompress into a caller-owned buffer of shape `expect`;
/// throws DecodeError when the archive's dims disagree.
template <class Codec, class T>
void codec_open_into(std::span<const std::uint8_t> archive, T* out,
                     const Dims& expect, ThreadPool* pool = nullptr) {
  const ContainerReader in(archive, Codec::kId, dtype_tag<T>(),
                           ContainerReader::kNoBodyCap, pool);
  if (in.dims() != expect)
    throw DecodeError(std::string(Codec::kName) +
                      ": archive dims mismatch for decompress_into");
  Codec::template decode<T>(in, out, pool);
}

/// Decompress only the interpolation levels coarser than or equal to
/// `level` and return the decimated level-`level` grid (extent
/// ceil(e / 2^(level-1)) per axis). Requires a codec policy with a
/// decode_preview member (the interpolation family).
template <class Codec, class T>
[[nodiscard]] Field<T> codec_open_preview(std::span<const std::uint8_t> archive,
                                          int level,
                                          ThreadPool* pool = nullptr,
                                          PartialDecodeStats* stats = nullptr) {
  const ContainerReader in(archive, Codec::kId, dtype_tag<T>(),
                           ContainerReader::kNoBodyCap, pool);
  return Codec::template decode_preview<T>(in, level, pool, stats);
}

/// Decompress only the sub-box [box.lo, box.hi) and return it as a field
/// of the box's extents, reading only the tile chunks that cover it.
/// Requires a codec policy with a decode_region member and an archive
/// sealed with an active tile directory.
template <class Codec, class T>
[[nodiscard]] Field<T> codec_open_region(std::span<const std::uint8_t> archive,
                                         const Box& box,
                                         ThreadPool* pool = nullptr,
                                         PartialDecodeStats* stats = nullptr) {
  const ContainerReader in(archive, Codec::kId, dtype_tag<T>(),
                           ContainerReader::kNoBodyCap, pool);
  return Codec::template decode_region<T>(in, box, pool, stats);
}

// ---------------------------------------------------------------------------
// Interpolation-family stage helpers (SZ3 / QoZ / HPEZ / MGARD).

/// The common prefix of every interpolation-family config section.
struct InterpCommon {
  double error_bound = 0.0;
  std::int32_t radius = 0;
  QPConfig qp;
};

inline void save_interp_common(ByteWriter& w, double error_bound,
                               std::int32_t radius, const QPConfig& qp) {
  w.put(error_bound);
  w.put(radius);
  qp.save(w);
}

[[nodiscard]] inline InterpCommon load_interp_common(ByteReader& r) {
  InterpCommon c;
  c.error_bound = r.get<double>();
  c.radius = r.get<std::int32_t>();
  c.qp = QPConfig::load(r);
  return c;
}

/// Huffman-code each recorded symbol span into its own payload chunk.
/// Spans are natural parallel units — each gets its own histogram and
/// frame — so the encode stage finally scales with workers (see
/// docs/PERFORMANCE.md); the bytes are worker-count-independent because
/// every span is encoded in isolation either way.
inline void write_symbol_chunks(ContainerWriter& out,
                                std::span<const std::uint32_t> symbols,
                                std::span<const SymbolSpan> spans,
                                ThreadPool* pool) {
  std::vector<std::vector<std::uint8_t>> frames(spans.size());
  if (pool && spans.size() > 1) {
    pool->parallel_for(spans.size(), [&](std::size_t i) {
      const SymbolSpan& s = spans[i];
      frames[i] = huffman_encode(symbols.subspan(s.begin, s.count), nullptr);
    });
  } else {
    for (std::size_t i = 0; i < spans.size(); ++i)
      frames[i] =
          huffman_encode(symbols.subspan(spans[i].begin, spans[i].count), pool);
  }
  for (std::size_t i = 0; i < spans.size(); ++i)
    out.add_chunk(spans[i].level, spans[i].tile, spans[i].count,
                  spans[i].outlier_count, std::move(frames[i]));
}

/// Reassemble the full symbol stream: v2 archives decode the monolithic
/// kSymbols stage, v3 archives decode every payload chunk (in directory
/// = traversal order) and concatenate. Each v3 chunk must decode to
/// exactly its declared symbol count — the guard that keeps hostile
/// directories from shifting later chunks' symbols.
[[nodiscard]] inline std::vector<std::uint32_t> read_symbols_stage(
    const ContainerReader& in, ThreadPool* pool) {
  if (in.version() == 2)
    return huffman_decode(in.stage_bytes(StageId::kSymbols), pool);
  const std::vector<ChunkEntry>& chunks = in.directory().chunks;
  std::vector<std::size_t> offsets(chunks.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (chunks[i].symbol_count == 0)
      throw DecodeError("raw payload chunk in a symbol-stream archive");
    offsets[i] = total;
    total += chunks[i].symbol_count;
  }
  std::vector<std::uint32_t> symbols(total);
  auto decode_one = [&](std::size_t i, ThreadPool* p) {
    const std::vector<std::uint8_t> frame = in.chunk_bytes(i);
    const std::vector<std::uint32_t> syms = huffman_decode(frame, p);
    if (syms.size() != chunks[i].symbol_count)
      throw DecodeError("payload chunk symbol count mismatch");
    std::copy(syms.begin(), syms.end(), symbols.begin() + offsets[i]);
  };
  if (pool && chunks.size() > 1) {
    pool->parallel_for(chunks.size(),
                       [&](std::size_t i) { decode_one(i, nullptr); });
  } else {
    for (std::size_t i = 0; i < chunks.size(); ++i) decode_one(i, pool);
  }
  return symbols;
}

/// Store a non-progressive codec's single opaque byte stream as the one
/// payload chunk of its v3 archive (level 1, whole domain, raw).
inline void write_raw_chunk(ContainerWriter& out,
                            std::vector<std::uint8_t> bytes) {
  out.add_chunk(1, kWholeDomainTile, 0, 0, std::move(bytes));
}

/// Counterpart of write_raw_chunk(); v2 archives read the legacy
/// kSymbols stage instead.
[[nodiscard]] inline std::vector<std::uint8_t> read_raw_chunk(
    const ContainerReader& in) {
  if (in.version() == 2) {
    const auto s = in.stage_bytes(StageId::kSymbols);
    return std::vector<std::uint8_t>(s.begin(), s.end());
  }
  if (in.chunk_count() != 1 || in.directory().chunks[0].symbol_count != 0)
    throw DecodeError("expected a single raw payload chunk");
  return in.chunk_bytes(0);
}

/// One interpolation encode pass over a working copy of `data`.
template <class T>
struct InterpEncoding {
  std::vector<std::uint32_t> symbols;
  LinearQuantizer<T> quant;
};

template <class T>
[[nodiscard]] InterpEncoding<T> interp_encode(
    const T* data, const Dims& dims, const InterpPlan& plan,
    double error_bound, std::int32_t radius, const QPConfig& qp,
    IndexArtifacts* artifacts, const TileLayout* tiles = nullptr,
    std::vector<SymbolSpan>* spans = nullptr, ThreadPool* pool = nullptr) {
  Field<T> work(dims, std::vector<T>(data, data + dims.size()));
  InterpEncoding<T> enc{{}, LinearQuantizer<T>(error_bound, radius)};
  auto res = InterpEngine<T>::encode(work.data(), dims, plan, error_bound,
                                     enc.quant, qp, artifacts != nullptr,
                                     tiles, spans, pool);
  enc.symbols = std::move(res.symbols);
  if (artifacts) {
    artifacts->codes = std::move(res.codes);
    artifacts->symbols_spatial = std::move(res.symbols_spatial);
  }
  return enc;
}

/// The tile layout an interpolation encode will commit for a requested
/// tile edge. Block-wise levels already reorder the traversal; stacking
/// tile order on top would change their bytes for no random-access
/// gain. Only plans that actually commit a block-wise level stay
/// untiled — carrying a block candidate table with every level decided
/// globally (HPEZ when its block tuner declines, or when a tile grid
/// was requested) tiles like any other plan.
[[nodiscard]] inline TileLayout interp_tile_layout(std::size_t tile_size,
                                                   const Dims& dims,
                                                   const InterpPlan& plan) {
  for (std::size_t l = 1; l <= plan.levels.size(); ++l)
    if (plan.blockwise(static_cast<int>(l))) return TileLayout{};
  return TileLayout::plan(tile_size, dims,
                          static_cast<int>(plan.levels.size()));
}

/// Run the full interpolation pipeline and emit the standard layout:
/// kConfig = common prefix | plan | quantizer, plus one payload chunk
/// per level span (and per tile within tiled levels when `tile_size`
/// asks for a tile grid).
template <class T>
void interp_encode_stages(ContainerWriter& out, const T* data,
                          const Dims& dims, const InterpPlan& plan,
                          double error_bound, std::int32_t radius,
                          const QPConfig& qp, ThreadPool* pool,
                          IndexArtifacts* artifacts,
                          std::size_t tile_size = 0) {
  const TileLayout tiles = interp_tile_layout(tile_size, dims, plan);
  std::vector<SymbolSpan> spans;
  const InterpEncoding<T> enc =
      interp_encode(data, dims, plan, error_bound, radius, qp, artifacts,
                    tiles.active() ? &tiles : nullptr, &spans, pool);
  ByteWriter& h = out.stage(StageId::kConfig);
  save_interp_common(h, error_bound, radius, qp);
  plan.save(h);
  enc.quant.save(h);
  out.set_tiling(tiles);
  write_symbol_chunks(out, enc.symbols, spans, pool);
}

/// The tile layout a decode must replay: the one the archive's directory
/// committed (inactive for v2 archives).
[[nodiscard]] inline const TileLayout* archive_tiles(
    const ContainerReader& in) {
  return in.version() >= 3 && in.directory().tiling.active()
             ? &in.directory().tiling
             : nullptr;
}

/// Decode counterpart of interp_encode_stages().
template <class T>
void interp_decode_stages(const ContainerReader& in, T* out,
                          ThreadPool* pool) {
  ByteReader h = in.stage(StageId::kConfig);
  const InterpCommon c = load_interp_common(h);
  const InterpPlan plan = InterpPlan::load(h);
  LinearQuantizer<T> quant(c.error_bound);
  quant.load(h);
  const std::vector<std::uint32_t> symbols = read_symbols_stage(in, pool);
  InterpEngine<T>::decode(symbols, in.dims(), plan, c.error_bound, quant,
                          c.qp, out, archive_tiles(in), /*stop_level=*/1,
                          pool);
}

/// Seal a complete standard interpolation archive for a fixed plan. Used
/// directly by tuners that size-compare fully sealed candidates (HPEZ).
template <class T>
[[nodiscard]] std::vector<std::uint8_t> interp_seal(
    CompressorId id, const T* data, const Dims& dims, const InterpPlan& plan,
    double error_bound, std::int32_t radius, const QPConfig& qp,
    ThreadPool* pool, IndexArtifacts* artifacts,
    std::size_t tile_size = 0) {
  ContainerWriter out(id, dtype_tag<T>(), dims);
  interp_encode_stages(out, data, dims, plan, error_bound, radius, qp, pool,
                       artifacts, tile_size);
  return out.seal(pool);
}

/// Extent of the level-`level` preview grid along an axis of extent `e`.
inline std::size_t preview_extent(std::size_t e, int level) {
  return (e - 1) / (std::size_t{1} << (level - 1)) + 1;
}

/// Decimate the level-`level` grid of a full-size reconstruction into
/// its own dense field: out[c] = data[c * 2^(level-1)].
template <class T>
[[nodiscard]] Field<T> decimate_to_level(const T* data, const Dims& dims,
                                         int level) {
  const std::size_t s = std::size_t{1} << (level - 1);
  std::size_t e[kMaxRank] = {1, 1, 1, 1};
  for (int a = 0; a < dims.rank(); ++a) e[a] = preview_extent(dims.extent(a), level);
  Dims pd;
  switch (dims.rank()) {
    case 1: pd = Dims{e[0]}; break;
    case 2: pd = Dims{e[0], e[1]}; break;
    case 3: pd = Dims{e[0], e[1], e[2]}; break;
    default: pd = Dims{e[0], e[1], e[2], e[3]}; break;
  }
  Field<T> out(pd);
  std::array<std::size_t, kMaxRank> c{};
  for (c[0] = 0; c[0] < e[0]; ++c[0])
    for (c[1] = 0; c[1] < e[1]; ++c[1])
      for (c[2] = 0; c[2] < e[2]; ++c[2])
        for (c[3] = 0; c[3] < e[3]; ++c[3])
          out.data()[pd.index(c[0], c[1], c[2], c[3])] =
              data[dims.index(c[0] * s, c[1] * s, c[2] * s, c[3] * s)];
  return out;
}

/// Progressive preview for the standard interpolation pipeline: decode
/// only the payload chunks of levels >= `level` (a prefix of the chunk
/// list) and return the decimated level-`level` grid. Bit-identical to
/// decimating a full decode, because every grid point's value is final
/// the moment its own level is processed. v2 archives take the same
/// path through their monolithic symbol stage (no byte savings, same
/// bits).
template <class T>
[[nodiscard]] Field<T> interp_preview_core(const ContainerReader& in,
                                           int level, ThreadPool* pool,
                                           PartialDecodeStats* stats,
                                           const InterpPlan& plan,
                                           const InterpCommon& c,
                                           LinearQuantizer<T>& quant) {
  const int level_count = static_cast<int>(plan.levels.size());
  if (level < 1 || level > level_count)
    throw DecodeError("preview level outside the archive's level range");

  std::vector<std::uint32_t> symbols;
  if (in.version() == 2) {
    symbols = read_symbols_stage(in, pool);
  } else {
    // Chunks are ordered coarse-to-fine, so "levels >= level" is a
    // prefix; its per-chunk symbol counts are declared in the
    // directory, so each chunk decodes into a precomputed slot and the
    // prefix fans out over the pool like read_symbols_stage().
    const std::vector<ChunkEntry>& chunks = in.directory().chunks;
    std::size_t n = 0, total = 0;
    std::vector<std::size_t> offsets;
    while (n < chunks.size() && chunks[n].level >= level) {
      if (chunks[n].symbol_count == 0)
        throw DecodeError("raw payload chunk in a symbol-stream archive");
      offsets.push_back(total);
      total += chunks[n].symbol_count;
      ++n;
    }
    symbols.resize(total);
    auto decode_one = [&](std::size_t i, ThreadPool* p) {
      const std::vector<std::uint32_t> syms =
          huffman_decode(in.chunk_bytes(i), p);
      if (syms.size() != chunks[i].symbol_count)
        throw DecodeError("payload chunk symbol count mismatch");
      std::copy(syms.begin(), syms.end(), symbols.begin() + offsets[i]);
    };
    if (pool && n > 1) {
      pool->parallel_for(n, [&](std::size_t i) { decode_one(i, nullptr); });
    } else {
      for (std::size_t i = 0; i < n; ++i) decode_one(i, pool);
    }
  }

  Field<T> full(in.dims());
  InterpEngine<T>::decode(symbols, in.dims(), plan, c.error_bound, quant,
                          c.qp, full.data(), archive_tiles(in), level, pool);
  if (stats) {
    stats->payload_bytes_read = in.version() == 2
                                    ? in.stage_bytes(StageId::kSymbols).size()
                                    : in.payload_bytes_read();
    stats->payload_bytes_total =
        in.version() == 2 ? in.stage_bytes(StageId::kSymbols).size()
                          : in.payload_bytes_declared();
  }
  return decimate_to_level(full.data(), in.dims(), level);
}

/// interp_preview_core for the standard kConfig layout
/// (common | plan | quantizer).
template <class T>
[[nodiscard]] Field<T> interp_preview_stages(const ContainerReader& in,
                                             int level, ThreadPool* pool,
                                             PartialDecodeStats* stats) {
  ByteReader h = in.stage(StageId::kConfig);
  const InterpCommon c = load_interp_common(h);
  const InterpPlan plan = InterpPlan::load(h);
  LinearQuantizer<T> quant(c.error_bound);
  quant.load(h);
  return interp_preview_core(in, level, pool, stats, plan, c, quant);
}

/// Clamp and validate a region request against the archive's dims: the
/// box must be non-empty and inside the domain on every rank axis; axes
/// beyond the rank are normalized to [0, 1).
[[nodiscard]] inline Box validate_region(const Box& box, const Dims& dims) {
  Box b = box;
  for (int a = 0; a < kMaxRank; ++a) {
    if (a >= dims.rank()) {
      b.lo[a] = 0;
      b.hi[a] = 1;
      continue;
    }
    if (b.lo[a] >= b.hi[a] || b.hi[a] > dims.extent(a))
      throw DecodeError("region outside the archive's domain");
  }
  return b;
}

/// Random-access region decode for the standard interpolation pipeline:
/// decode the untiled (coarse) levels globally, then only the tile
/// chunks that intersect `box`, and crop. Byte-identical to cropping a
/// full decode because encode ran the same tile traversal under the
/// same cross-tile stencil guard. Requires an active tile directory.
template <class T>
[[nodiscard]] Field<T> interp_region_core(const ContainerReader& in,
                                          const Box& box, ThreadPool* pool,
                                          PartialDecodeStats* stats,
                                          const InterpPlan& plan,
                                          const InterpCommon& c,
                                          LinearQuantizer<T>& quant) {
  const TileLayout* tiles = archive_tiles(in);
  if (!tiles)
    throw DecodeError(
        "archive has no tile directory; re-compress with a tile size to "
        "enable region decode");
  const Dims& dims = in.dims();
  const Box b = validate_region(box, dims);

  // Coarse pass: the untiled levels are the prefix of the chunk list
  // above the tiled band; decode their frames concurrently into
  // precomputed slots (symbol counts are declared in the directory),
  // then run the level walk globally.
  const std::vector<ChunkEntry>& chunks = in.directory().chunks;
  std::size_t first_tiled = 0, coarse_total = 0;
  std::vector<std::size_t> coarse_offsets;
  while (first_tiled < chunks.size() &&
         chunks[first_tiled].level > tiles->max_level) {
    if (chunks[first_tiled].symbol_count == 0)
      throw DecodeError("raw payload chunk in a symbol-stream archive");
    coarse_offsets.push_back(coarse_total);
    coarse_total += chunks[first_tiled].symbol_count;
    ++first_tiled;
  }
  std::vector<std::uint32_t> symbols(coarse_total);
  auto decode_coarse = [&](std::size_t i, ThreadPool* p) {
    const std::vector<std::uint32_t> syms =
        huffman_decode(in.chunk_bytes(i), p);
    if (syms.size() != chunks[i].symbol_count)
      throw DecodeError("payload chunk symbol count mismatch");
    std::copy(syms.begin(), syms.end(),
              symbols.begin() + coarse_offsets[i]);
  };
  if (pool && first_tiled > 1) {
    pool->parallel_for(first_tiled,
                       [&](std::size_t i) { decode_coarse(i, nullptr); });
  } else {
    for (std::size_t i = 0; i < first_tiled; ++i) decode_coarse(i, pool);
  }
  Field<T> full(dims);
  InterpEngine<T>::decode(symbols, dims, plan, c.error_bound, quant, c.qp,
                          full.data(), tiles, tiles->max_level + 1, pool);

  // Tile pass: chunks stay in (level desc, tile asc) order — the same
  // traversal a full decode runs. Within one level band the
  // intersecting tiles write disjoint point sets and read only their
  // own region plus coarser levels (already final: encode ran under the
  // cross-tile stencil guard), so the band fans out over the pool, each
  // chunk decoding through its own quantizer view seeked from the
  // directory's outlier prefix sums. The barrier between bands keeps
  // the coarse-to-fine ordering; symbol counts are validated against
  // the tile geometry inside decode_tile.
  const TileGrid grid(dims, tiles->tile_size);
  std::size_t band = first_tiled;
  while (band < chunks.size()) {
    std::size_t band_end = band;
    while (band_end < chunks.size() &&
           chunks[band_end].level == chunks[band].level)
      ++band_end;
    std::vector<std::size_t> picked;
    for (std::size_t i = band; i < band_end; ++i) {
      const ChunkEntry& ce = chunks[i];
      if (ce.tile == kWholeDomainTile || ce.symbol_count == 0)
        throw DecodeError("untiled chunk inside the tiled band");
      const Box tb = grid.box(ce.tile, dims);
      bool overlaps = true;
      for (int a = 0; a < dims.rank(); ++a)
        overlaps = overlaps && tb.lo[a] < b.hi[a] && b.lo[a] < tb.hi[a];
      if (overlaps) picked.push_back(i);
    }
    auto decode_chunk = [&](std::size_t i, ThreadPool* p) {
      const ChunkEntry& ce = chunks[i];
      const std::vector<std::uint32_t> syms =
          huffman_decode(in.chunk_bytes(i), p);
      LinearQuantizer<T> vq = LinearQuantizer<T>::view_of(quant);
      vq.set_outlier_cursor(ce.outlier_start);
      InterpEngine<T>::decode_tile(syms, dims, plan, c.error_bound, vq,
                                   c.qp, full.data(), *tiles, ce.level,
                                   grid.box(ce.tile, dims));
    };
    if (pool && picked.size() > 1) {
      pool->parallel_for(picked.size(), [&](std::size_t k) {
        decode_chunk(picked[k], nullptr);
      });
    } else {
      for (std::size_t i : picked) decode_chunk(i, pool);
    }
    band = band_end;
  }

  if (stats) {
    stats->payload_bytes_read = in.payload_bytes_read();
    stats->payload_bytes_total = in.payload_bytes_declared();
  }

  // Crop.
  std::size_t e[kMaxRank] = {1, 1, 1, 1};
  for (int a = 0; a < dims.rank(); ++a) e[a] = b.hi[a] - b.lo[a];
  Dims rd;
  switch (dims.rank()) {
    case 1: rd = Dims{e[0]}; break;
    case 2: rd = Dims{e[0], e[1]}; break;
    case 3: rd = Dims{e[0], e[1], e[2]}; break;
    default: rd = Dims{e[0], e[1], e[2], e[3]}; break;
  }
  Field<T> out(rd);
  std::array<std::size_t, kMaxRank> c2{};
  for (c2[0] = 0; c2[0] < e[0]; ++c2[0])
    for (c2[1] = 0; c2[1] < e[1]; ++c2[1])
      for (c2[2] = 0; c2[2] < e[2]; ++c2[2])
        for (c2[3] = 0; c2[3] < e[3]; ++c2[3])
          out.data()[rd.index(c2[0], c2[1], c2[2], c2[3])] =
              full.data()[dims.index(b.lo[0] + c2[0], b.lo[1] + c2[1],
                                     b.lo[2] + c2[2], b.lo[3] + c2[3])];
  return out;
}

/// interp_region_core for the standard kConfig layout.
template <class T>
[[nodiscard]] Field<T> interp_region_stages(const ContainerReader& in,
                                            const Box& box, ThreadPool* pool,
                                            PartialDecodeStats* stats) {
  ByteReader h = in.stage(StageId::kConfig);
  const InterpCommon c = load_interp_common(h);
  const InterpPlan plan = InterpPlan::load(h);
  LinearQuantizer<T> quant(c.error_bound);
  quant.load(h);
  return interp_region_core(in, box, pool, stats, plan, c, quant);
}

// ---------------------------------------------------------------------------
// Correction-list helpers (MGARD / ZFP / SPERR / TTHRESH).
//
// A correction is a sparse patch applied after the main reconstruction:
// wherever the self-decoded value misses the bound, the residual is
// quantized at half-bin width ebc and stored as (delta-coded position,
// signed bin count).

struct Correction {
  std::uint64_t delta = 0;  ///< position delta to the previous correction
  std::int64_t bins = 0;    ///< residual in units of 2*ebc
};

/// Scan `n` values against the decoder's view `dec_at(i)` and collect
/// every point whose residual exceeds `eb`.
template <class T, class DecodedAt>
[[nodiscard]] std::vector<Correction> collect_corrections(const T* data,
                                                          std::size_t n,
                                                          double eb,
                                                          double ebc,
                                                          DecodedAt&& dec_at) {
  std::vector<Correction> corrections;
  std::size_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = static_cast<double>(data[i]) - dec_at(i);
    if (std::abs(r) > eb) {
      corrections.push_back(
          {static_cast<std::uint64_t>(i - prev), std::llround(r / (2.0 * ebc))});
      prev = i;
    }
  }
  return corrections;
}

inline void write_corrections_stage(ContainerWriter& out,
                                    std::span<const Correction> corrections) {
  ByteWriter& w = out.stage(StageId::kCorrections);
  w.put_varint(corrections.size());
  for (const Correction& c : corrections) {
    w.put_varint(c.delta);
    w.put_svarint(c.bins);
  }
}

/// Apply the kCorrections stage to `out[0..n)`. `what` names the codec in
/// the out-of-range DecodeError.
template <class T>
void apply_corrections_stage(const ContainerReader& in, T* out, std::size_t n,
                             double ebc, const char* what) {
  ByteReader r = in.stage(StageId::kCorrections);
  const std::uint64_t count = r.get_varint();
  std::size_t pos = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    pos += static_cast<std::size_t>(r.get_varint());
    if (pos >= n)
      throw DecodeError(std::string(what) + ": correction index out of range");
    const std::int64_t bins = r.get_svarint();
    out[pos] = static_cast<T>(static_cast<double>(out[pos]) +
                              2.0 * ebc * static_cast<double>(bins));
  }
}

}  // namespace qip
