#pragma once

// The templated compress/decompress driver every codec front-end runs on,
// plus the shared stage read/write helpers of the two codec families
// (interpolation pipelines and correction-list erasure pipelines).
//
// A codec supplies a policy struct:
//
//   struct FooCodec {
//     using Config = FooConfig;           // inherits CodecOptions
//     using Artifacts = IndexArtifacts;   // or NoArtifacts
//     static constexpr CompressorId kId = CompressorId::kFoo;
//     static constexpr const char* kName = "foo";
//     template <class T>
//     static void encode(const T* data, const Dims& dims, const Config&,
//                        ContainerWriter& out, Artifacts*);
//     template <class T>
//     static void decode(const ContainerReader& in, T* out, ThreadPool*);
//   };
//
// and the driver owns the container framing, output allocation, and
// dims/dtype validation for compress / decompress / decompress_into, so
// a new codec is one policy struct plus three one-line public wrappers.

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "compressors/core/container.hpp"
#include "compressors/core/options.hpp"
#include "compressors/interp_engine.hpp"
#include "compressors/plan.hpp"
#include "core/qp.hpp"
#include "encode/huffman.hpp"
#include "quant/quantizer.hpp"
#include "util/field.hpp"

namespace qip {

/// Artifacts type for codecs that expose none.
struct NoArtifacts {};

/// Compress `data` through `Codec`'s encode policy into a sealed
/// container.
template <class Codec, class T>
[[nodiscard]] std::vector<std::uint8_t> codec_seal(
    const T* data, const Dims& dims, const typename Codec::Config& cfg,
    typename Codec::Artifacts* artifacts = nullptr) {
  ContainerWriter out(Codec::kId, dtype_tag<T>(), dims);
  Codec::template encode<T>(data, dims, cfg, out, artifacts);
  return out.seal(cfg.pool);
}

/// Decompress a `Codec` container into a freshly allocated field.
template <class Codec, class T>
[[nodiscard]] Field<T> codec_open(std::span<const std::uint8_t> archive,
                                  ThreadPool* pool = nullptr) {
  const ContainerReader in(archive, Codec::kId, dtype_tag<T>(),
                           ContainerReader::kNoBodyCap, pool);
  Field<T> out(in.dims());
  Codec::template decode<T>(in, out.data(), pool);
  return out;
}

/// Copy-free decompress into a caller-owned buffer of shape `expect`;
/// throws DecodeError when the archive's dims disagree.
template <class Codec, class T>
void codec_open_into(std::span<const std::uint8_t> archive, T* out,
                     const Dims& expect, ThreadPool* pool = nullptr) {
  const ContainerReader in(archive, Codec::kId, dtype_tag<T>(),
                           ContainerReader::kNoBodyCap, pool);
  if (in.dims() != expect)
    throw DecodeError(std::string(Codec::kName) +
                      ": archive dims mismatch for decompress_into");
  Codec::template decode<T>(in, out, pool);
}

// ---------------------------------------------------------------------------
// Interpolation-family stage helpers (SZ3 / QoZ / HPEZ / MGARD).

/// The common prefix of every interpolation-family config section.
struct InterpCommon {
  double error_bound = 0.0;
  std::int32_t radius = 0;
  QPConfig qp;
};

inline void save_interp_common(ByteWriter& w, double error_bound,
                               std::int32_t radius, const QPConfig& qp) {
  w.put(error_bound);
  w.put(radius);
  qp.save(w);
}

[[nodiscard]] inline InterpCommon load_interp_common(ByteReader& r) {
  InterpCommon c;
  c.error_bound = r.get<double>();
  c.radius = r.get<std::int32_t>();
  c.qp = QPConfig::load(r);
  return c;
}

/// Huffman-code `symbols` into the kSymbols stage section.
inline void write_symbols_stage(ContainerWriter& out,
                                std::span<const std::uint32_t> symbols,
                                ThreadPool* pool) {
  out.stage(StageId::kSymbols).put_bytes(huffman_encode(symbols, pool));
}

[[nodiscard]] inline std::vector<std::uint32_t> read_symbols_stage(
    const ContainerReader& in, ThreadPool* pool) {
  return huffman_decode(in.stage_bytes(StageId::kSymbols), pool);
}

/// One interpolation encode pass over a working copy of `data`.
template <class T>
struct InterpEncoding {
  std::vector<std::uint32_t> symbols;
  LinearQuantizer<T> quant;
};

template <class T>
[[nodiscard]] InterpEncoding<T> interp_encode(const T* data, const Dims& dims,
                                              const InterpPlan& plan,
                                              double error_bound,
                                              std::int32_t radius,
                                              const QPConfig& qp,
                                              IndexArtifacts* artifacts) {
  Field<T> work(dims, std::vector<T>(data, data + dims.size()));
  InterpEncoding<T> enc{{}, LinearQuantizer<T>(error_bound, radius)};
  auto res = InterpEngine<T>::encode(work.data(), dims, plan, error_bound,
                                     enc.quant, qp, artifacts != nullptr);
  enc.symbols = std::move(res.symbols);
  if (artifacts) {
    artifacts->codes = std::move(res.codes);
    artifacts->symbols_spatial = std::move(res.symbols_spatial);
  }
  return enc;
}

/// Run the full interpolation pipeline and emit the standard two stages:
/// kConfig = common prefix | plan | quantizer, kSymbols = Huffman stream.
template <class T>
void interp_encode_stages(ContainerWriter& out, const T* data,
                          const Dims& dims, const InterpPlan& plan,
                          double error_bound, std::int32_t radius,
                          const QPConfig& qp, ThreadPool* pool,
                          IndexArtifacts* artifacts) {
  const InterpEncoding<T> enc =
      interp_encode(data, dims, plan, error_bound, radius, qp, artifacts);
  ByteWriter& h = out.stage(StageId::kConfig);
  save_interp_common(h, error_bound, radius, qp);
  plan.save(h);
  enc.quant.save(h);
  write_symbols_stage(out, enc.symbols, pool);
}

/// Decode counterpart of interp_encode_stages().
template <class T>
void interp_decode_stages(const ContainerReader& in, T* out,
                          ThreadPool* pool) {
  ByteReader h = in.stage(StageId::kConfig);
  const InterpCommon c = load_interp_common(h);
  const InterpPlan plan = InterpPlan::load(h);
  LinearQuantizer<T> quant(c.error_bound);
  quant.load(h);
  const std::vector<std::uint32_t> symbols = read_symbols_stage(in, pool);
  InterpEngine<T>::decode(symbols, in.dims(), plan, c.error_bound, quant,
                          c.qp, out);
}

/// Seal a complete standard interpolation archive for a fixed plan. Used
/// directly by tuners that size-compare fully sealed candidates (HPEZ).
template <class T>
[[nodiscard]] std::vector<std::uint8_t> interp_seal(
    CompressorId id, const T* data, const Dims& dims, const InterpPlan& plan,
    double error_bound, std::int32_t radius, const QPConfig& qp,
    ThreadPool* pool, IndexArtifacts* artifacts) {
  ContainerWriter out(id, dtype_tag<T>(), dims);
  interp_encode_stages(out, data, dims, plan, error_bound, radius, qp, pool,
                       artifacts);
  return out.seal(pool);
}

// ---------------------------------------------------------------------------
// Correction-list helpers (MGARD / ZFP / SPERR / TTHRESH).
//
// A correction is a sparse patch applied after the main reconstruction:
// wherever the self-decoded value misses the bound, the residual is
// quantized at half-bin width ebc and stored as (delta-coded position,
// signed bin count).

struct Correction {
  std::uint64_t delta = 0;  ///< position delta to the previous correction
  std::int64_t bins = 0;    ///< residual in units of 2*ebc
};

/// Scan `n` values against the decoder's view `dec_at(i)` and collect
/// every point whose residual exceeds `eb`.
template <class T, class DecodedAt>
[[nodiscard]] std::vector<Correction> collect_corrections(const T* data,
                                                          std::size_t n,
                                                          double eb,
                                                          double ebc,
                                                          DecodedAt&& dec_at) {
  std::vector<Correction> corrections;
  std::size_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = static_cast<double>(data[i]) - dec_at(i);
    if (std::abs(r) > eb) {
      corrections.push_back(
          {static_cast<std::uint64_t>(i - prev), std::llround(r / (2.0 * ebc))});
      prev = i;
    }
  }
  return corrections;
}

inline void write_corrections_stage(ContainerWriter& out,
                                    std::span<const Correction> corrections) {
  ByteWriter& w = out.stage(StageId::kCorrections);
  w.put_varint(corrections.size());
  for (const Correction& c : corrections) {
    w.put_varint(c.delta);
    w.put_svarint(c.bins);
  }
}

/// Apply the kCorrections stage to `out[0..n)`. `what` names the codec in
/// the out-of-range DecodeError.
template <class T>
void apply_corrections_stage(const ContainerReader& in, T* out, std::size_t n,
                             double ebc, const char* what) {
  ByteReader r = in.stage(StageId::kCorrections);
  const std::uint64_t count = r.get_varint();
  std::size_t pos = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    pos += static_cast<std::size_t>(r.get_varint());
    if (pos >= n)
      throw DecodeError(std::string(what) + ": correction index out of range");
    const std::int64_t bins = r.get_svarint();
    out[pos] = static_cast<T>(static_cast<double>(out[pos]) +
                              2.0 * ebc * static_cast<double>(bins));
  }
}

}  // namespace qip
