#include "compressors/core/container.hpp"

#include <limits>

#include "lossless/lzb.hpp"

namespace qip {

std::string stage_name(StageId id) {
  switch (id) {
    case StageId::kConfig: return "config";
    case StageId::kSymbols: return "symbols";
    case StageId::kCorrections: return "corrections";
  }
  return "stage-" + std::to_string(static_cast<unsigned>(id));
}

void write_dims(ByteWriter& w, const Dims& dims) {
  w.put_varint(static_cast<std::uint64_t>(dims.rank()));
  for (int a = 0; a < dims.rank(); ++a) w.put_varint(dims.extent(a));
}

Dims read_dims(ByteReader& r) {
  const std::uint64_t raw_rank = r.get_varint();
  if (raw_rank < 1 || raw_rank > static_cast<std::uint64_t>(kMaxRank))
    throw DecodeError("bad rank in archive");
  const int rank = static_cast<int>(raw_rank);
  std::size_t e[kMaxRank] = {1, 1, 1, 1};
  std::size_t total = 1;
  for (int a = 0; a < rank; ++a) {
    e[a] = static_cast<std::size_t>(r.get_varint());
    if (e[a] == 0) throw DecodeError("zero extent in archive");
    // Element count must stay representable; a product that wraps size_t
    // would defeat every downstream buffer-size check.
    if (e[a] > std::numeric_limits<std::size_t>::max() / total)
      throw DecodeError("extent product overflow in archive");
    total *= e[a];
  }
  switch (rank) {
    case 1: return Dims{e[0]};
    case 2: return Dims{e[0], e[1]};
    case 3: return Dims{e[0], e[1], e[2]};
    default: return Dims{e[0], e[1], e[2], e[3]};
  }
}

namespace {

struct ParsedHeader {
  ContainerInfo info;
  std::span<const std::uint8_t> body;
};

/// Shared plaintext-header parse for inspect_container / ContainerReader.
ParsedHeader parse_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kContainerPrefixBytes)
    throw DecodeError("archive shorter than header");
  ByteReader r(bytes);
  if (r.get<std::uint32_t>() != kContainerMagic)
    throw DecodeError("bad archive magic");
  ParsedHeader h;
  h.info.version = r.get<std::uint8_t>();
  const std::uint8_t raw_id = r.get<std::uint8_t>();
  h.info.codec = static_cast<CompressorId>(raw_id);
  // Gate the version before dims: a future layout may move or re-encode
  // every field after it, so nothing further is trustworthy.
  if (h.info.version < 2 || h.info.version > kContainerVersion)
    throw UnknownCodecError("unsupported container format version " +
                                std::to_string(h.info.version),
                            raw_id, h.info.version);
  h.info.dtype = r.get<std::uint8_t>();
  h.info.dims = read_dims(r);
  h.info.header_bytes = r.position();
  h.info.body_bytes = r.remaining();
  h.body = r.get_bytes(r.remaining());
  return h;
}

}  // namespace

ContainerInfo inspect_container(std::span<const std::uint8_t> bytes) {
  return parse_header(bytes).info;
}

ByteWriter& ContainerWriter::stage(StageId id) {
  for (auto& [sid, w] : stages_)
    if (sid == id) return w;
  return stages_.emplace_back(id, ByteWriter{}).second;
}

std::vector<std::uint8_t> ContainerWriter::seal(ThreadPool* pool) {
  ByteWriter body;
  body.put_varint(stages_.size());
  for (const auto& [sid, w] : stages_) {
    body.put(static_cast<std::uint8_t>(sid));
    body.put_block(w.bytes());
  }
  ByteWriter out;
  out.put(kContainerMagic);
  out.put(kContainerVersion);
  out.put(static_cast<std::uint8_t>(id_));
  out.put(dtype_);
  write_dims(out, dims_);
  out.put_bytes(lzb_compress(body.bytes(), pool));
  return out.take();
}

ContainerReader::ContainerReader(std::span<const std::uint8_t> bytes,
                                 CompressorId expect_id,
                                 std::uint8_t expect_dtype,
                                 std::uint64_t max_body, ThreadPool* pool) {
  parse(bytes, max_body, pool);
  if (codec_ != expect_id) throw DecodeError("archive compressor mismatch");
  if (dtype_ != expect_dtype) throw DecodeError("archive dtype mismatch");
}

ContainerReader::ContainerReader(std::span<const std::uint8_t> bytes,
                                 std::uint64_t max_body, ThreadPool* pool) {
  parse(bytes, max_body, pool);
}

void ContainerReader::parse(std::span<const std::uint8_t> bytes,
                            std::uint64_t max_body, ThreadPool* pool) {
  ParsedHeader h = parse_header(bytes);
  version_ = h.info.version;
  codec_ = h.info.codec;
  dtype_ = h.info.dtype;
  dims_ = h.info.dims;
  body_ = lzb_decompress(h.body, max_body, pool);

  ByteReader b(body_);
  const std::uint64_t count = b.get_varint();
  // Each section costs at least two body bytes (id + length), so a count
  // beyond that is unsatisfiable no matter what follows.
  if (count > body_.size() / 2 + 1)
    throw DecodeError("stage count exceeds body");
  sections_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto sid = static_cast<StageId>(b.get<std::uint8_t>());
    for (const auto& s : sections_)
      if (s.id == sid) throw DecodeError("duplicate stage section");
    const auto blk = b.get_block();
    sections_.push_back(
        {sid, static_cast<std::size_t>(blk.data() - body_.data()),
         blk.size()});
  }
  if (b.remaining() != 0)
    throw DecodeError("trailing bytes after stage sections");
}

bool ContainerReader::has_stage(StageId id) const {
  for (const auto& s : sections_)
    if (s.id == id) return true;
  return false;
}

std::span<const std::uint8_t> ContainerReader::stage_bytes(StageId id) const {
  for (const auto& s : sections_)
    if (s.id == id)
      return std::span<const std::uint8_t>(body_).subspan(s.offset, s.size);
  throw DecodeError("missing " + stage_name(id) + " stage section");
}

}  // namespace qip
