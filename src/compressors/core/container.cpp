#include "compressors/core/container.hpp"

#include <algorithm>
#include <limits>

#include "lossless/lzb.hpp"
#include "util/thread_pool.hpp"

namespace qip {

std::string stage_name(StageId id) {
  switch (id) {
    case StageId::kConfig: return "config";
    case StageId::kSymbols: return "symbols";
    case StageId::kCorrections: return "corrections";
  }
  return "stage-" + std::to_string(static_cast<unsigned>(id));
}

void write_dims(ByteWriter& w, const Dims& dims) {
  w.put_varint(static_cast<std::uint64_t>(dims.rank()));
  for (int a = 0; a < dims.rank(); ++a) w.put_varint(dims.extent(a));
}

Dims read_dims(ByteReader& r) {
  const std::uint64_t raw_rank = r.get_varint();
  if (raw_rank < 1 || raw_rank > static_cast<std::uint64_t>(kMaxRank))
    throw DecodeError("bad rank in archive");
  const int rank = static_cast<int>(raw_rank);
  std::size_t e[kMaxRank] = {1, 1, 1, 1};
  std::size_t total = 1;
  for (int a = 0; a < rank; ++a) {
    e[a] = static_cast<std::size_t>(r.get_varint());
    if (e[a] == 0) throw DecodeError("zero extent in archive");
    // Element count must stay representable; a product that wraps size_t
    // would defeat every downstream buffer-size check.
    if (e[a] > std::numeric_limits<std::size_t>::max() / total)
      throw DecodeError("extent product overflow in archive");
    total *= e[a];
  }
  switch (rank) {
    case 1: return Dims{e[0]};
    case 2: return Dims{e[0], e[1]};
    case 3: return Dims{e[0], e[1], e[2]};
    default: return Dims{e[0], e[1], e[2], e[3]};
  }
}

namespace {

struct ParsedHeader {
  ContainerInfo info;
  std::span<const std::uint8_t> body;
};

/// Shared plaintext-header parse for inspect_container / ContainerReader.
ParsedHeader parse_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kContainerPrefixBytes)
    throw DecodeError("archive shorter than header");
  ByteReader r(bytes);
  if (r.get<std::uint32_t>() != kContainerMagic)
    throw DecodeError("bad archive magic");
  ParsedHeader h;
  h.info.version = r.get<std::uint8_t>();
  const std::uint8_t raw_id = r.get<std::uint8_t>();
  h.info.codec = static_cast<CompressorId>(raw_id);
  // Gate the version before dims: a future layout may move or re-encode
  // every field after it, so nothing further is trustworthy.
  if (h.info.version < kContainerMinVersion ||
      h.info.version > kContainerVersion)
    throw UnknownCodecError("unsupported container format version " +
                                std::to_string(h.info.version),
                            raw_id, h.info.version);
  h.info.dtype = r.get<std::uint8_t>();
  h.info.dims = read_dims(r);
  h.info.header_bytes = r.position();
  h.info.body_bytes = r.remaining();
  h.body = r.get_bytes(r.remaining());
  return h;
}

/// Parse a v2/v3 stage-section body (already LZB-decompressed) into a
/// section index.
std::vector<StageSection> parse_sections(
    const std::vector<std::uint8_t>& body) {
  ByteReader b(body);
  const std::uint64_t count = b.get_varint();
  // Each section costs at least two body bytes (id + length), so a count
  // beyond that is unsatisfiable no matter what follows.
  if (count > body.size() / 2 + 1)
    throw DecodeError("stage count exceeds body");
  std::vector<StageSection> sections;
  sections.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto sid = static_cast<StageId>(b.get<std::uint8_t>());
    for (const auto& s : sections)
      if (s.id == sid) throw DecodeError("duplicate stage section");
    const auto blk = b.get_block();
    sections.push_back(
        {sid, static_cast<std::size_t>(blk.data() - body.data()),
         blk.size()});
  }
  if (b.remaining() != 0)
    throw DecodeError("trailing bytes after stage sections");
  return sections;
}

}  // namespace

ContainerInfo inspect_container(std::span<const std::uint8_t> bytes) {
  return parse_header(bytes).info;
}

ByteWriter& ContainerWriter::stage(StageId id) {
  for (auto& [sid, w] : stages_)
    if (sid == id) return w;
  return stages_.emplace_back(id, ByteWriter{}).second;
}

void ContainerWriter::add_chunk(int level, std::uint64_t tile,
                                std::size_t symbol_count,
                                std::size_t outlier_count,
                                std::vector<std::uint8_t> raw) {
  chunks_.push_back(
      {level, tile, symbol_count, outlier_count, std::move(raw)});
}

std::vector<std::uint8_t> ContainerWriter::seal(ThreadPool* pool) {
  ByteWriter meta;
  meta.put_varint(stages_.size());
  for (const auto& [sid, w] : stages_) {
    meta.put(static_cast<std::uint8_t>(sid));
    meta.put_block(w.bytes());
  }

  // Frame every chunk independently so readers can decompress exactly
  // the chunks a preview or region request needs. Chunks are natural
  // parallel units; LZB output is worker-count-independent, so the
  // archive bytes stay identical either way.
  std::vector<std::vector<std::uint8_t>> frames(chunks_.size());
  if (pool && chunks_.size() > 1) {
    pool->parallel_for(chunks_.size(), [&](std::size_t i) {
      frames[i] = lzb_compress(chunks_[i].raw, nullptr);
    });
  } else {
    for (std::size_t i = 0; i < chunks_.size(); ++i)
      frames[i] = lzb_compress(chunks_[i].raw, pool);
  }

  int level_count = 0;
  for (const auto& c : chunks_)
    if (c.level > level_count) level_count = c.level;

  ByteWriter dir;
  dir.put_varint(static_cast<std::uint64_t>(level_count));
  dir.put_varint(tiling_.tile_size);
  dir.put_varint(static_cast<std::uint64_t>(tiling_.max_level));
  dir.put_varint(chunks_.size());
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const auto& c = chunks_[i];
    dir.put_varint(static_cast<std::uint64_t>(c.level));
    dir.put_varint(c.tile == kWholeDomainTile ? 0 : c.tile + 1);
    dir.put_varint(frames[i].size());
    dir.put_varint(c.symbol_count);
    dir.put_varint(c.outlier_count);
  }

  ByteWriter out;
  out.put(kContainerMagic);
  out.put(kContainerVersion);
  out.put(static_cast<std::uint8_t>(id_));
  out.put(dtype_);
  write_dims(out, dims_);
  out.put_block(lzb_compress(meta.bytes(), pool));
  out.put_block(lzb_compress(dir.bytes(), pool));
  for (const auto& f : frames) out.put_bytes(f);
  return out.take();
}

ContainerReader::ContainerReader(std::span<const std::uint8_t> bytes,
                                 CompressorId expect_id,
                                 std::uint8_t expect_dtype,
                                 std::uint64_t max_body, ThreadPool* pool) {
  parse(bytes, max_body, pool);
  if (codec_ != expect_id) throw DecodeError("archive compressor mismatch");
  if (dtype_ != expect_dtype) throw DecodeError("archive dtype mismatch");
}

ContainerReader::ContainerReader(std::span<const std::uint8_t> bytes,
                                 std::uint64_t max_body, ThreadPool* pool) {
  parse(bytes, max_body, pool);
}

void ContainerReader::parse(std::span<const std::uint8_t> bytes,
                            std::uint64_t max_body, ThreadPool* pool) {
  ParsedHeader h = parse_header(bytes);
  version_ = h.info.version;
  codec_ = h.info.codec;
  dtype_ = h.info.dtype;
  dims_ = h.info.dims;
  max_body_ = max_body;
  pool_ = pool;

  if (version_ == 2) {
    // v2: the whole body is one LZB block of stage sections.
    body_ = lzb_decompress(h.body, max_body, pool);
    sections_ = parse_sections(body_);
    return;
  }

  ByteReader r(h.body);
  body_ = lzb_decompress(r.get_block(), max_body, pool);
  sections_ = parse_sections(body_);
  const auto dir_block = r.get_block();
  // The directory describes at most a handful of varints per chunk and a
  // chunk per level/tile; a multi-megabyte one is a bomb regardless of
  // max_body.
  const std::uint64_t dir_cap =
      std::min<std::uint64_t>(max_body, std::uint64_t{16} << 20);
  const std::vector<std::uint8_t> dir_bytes =
      lzb_decompress(dir_block, dir_cap, pool);
  parse_directory(dir_bytes);
  payload_ = r.get_bytes(r.remaining());
}

void ContainerReader::parse_directory(
    std::span<const std::uint8_t> dir_bytes) {
  ByteReader d(dir_bytes);
  const std::uint64_t level_count = d.get_varint();
  if (level_count > kMaxPayloadLevels)
    throw DecodeError("payload level count exceeds cap");
  dir_.level_count = static_cast<int>(level_count);

  const std::uint64_t tile_size = d.get_varint();
  if (tile_size != 0 &&
      (tile_size < 8 || tile_size > (std::uint64_t{1} << 30) ||
       (tile_size & (tile_size - 1)) != 0))
    throw DecodeError("bad tile size in payload directory");
  const std::uint64_t tile_levels = d.get_varint();
  if (tile_levels > level_count)
    throw DecodeError("tiled level count exceeds level count");
  if (tile_size == 0 && tile_levels != 0)
    throw DecodeError("tiled levels without a tile size");
  dir_.tiling.tile_size = static_cast<std::size_t>(tile_size);
  dir_.tiling.max_level = static_cast<int>(tile_levels);
  const TileGrid grid =
      tile_size != 0 ? TileGrid(dims_, static_cast<std::size_t>(tile_size))
                     : TileGrid{};

  const std::uint64_t count = d.get_varint();
  // Each chunk entry costs at least five directory bytes (five varints),
  // so a count beyond that is unsatisfiable no matter what follows.
  if (count > d.remaining() / 5 + 1)
    throw DecodeError("chunk count exceeds directory");
  dir_.chunks.reserve(static_cast<std::size_t>(count));

  std::uint64_t offset = 0;
  std::size_t symbol_total = 0;
  std::size_t outlier_total = 0;
  int prev_level = std::numeric_limits<int>::max();
  std::uint64_t prev_tile = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    ChunkEntry c;
    const std::uint64_t raw_level = d.get_varint();
    if (raw_level == 0 || raw_level > level_count)
      throw DecodeError("chunk level outside directory range");
    c.level = static_cast<int>(raw_level);
    const std::uint64_t tile_p1 = d.get_varint();
    c.tile = tile_p1 == 0 ? kWholeDomainTile : tile_p1 - 1;
    if (c.tile != kWholeDomainTile) {
      if (!dir_.tiling.tiled(c.level))
        throw DecodeError("tile chunk on an untiled level");
      if (c.tile >= grid.total)
        throw DecodeError("tile id outside tile grid");
    } else if (dir_.tiling.tiled(c.level)) {
      throw DecodeError("whole-domain chunk on a tiled level");
    }
    // Enforce traversal order: levels strictly descending between
    // groups; within a tiled level, tile ids strictly ascending. This
    // single rule also kills duplicate chunks.
    if (c.level < prev_level) {
      prev_level = c.level;
      prev_tile = c.tile;
    } else if (c.level == prev_level && c.tile != kWholeDomainTile &&
               prev_tile != kWholeDomainTile && c.tile > prev_tile) {
      prev_tile = c.tile;
    } else {
      throw DecodeError("duplicate or misordered payload chunk");
    }
    c.length = d.get_varint();
    if (c.length > std::numeric_limits<std::uint64_t>::max() - offset)
      throw DecodeError("payload length overflow in directory");
    c.offset = offset;
    offset += c.length;
    c.symbol_count = static_cast<std::size_t>(d.get_varint());
    if (c.symbol_count > dims_.size() - symbol_total)
      throw DecodeError("chunk symbol counts exceed field size");
    symbol_total += c.symbol_count;
    c.outlier_start = outlier_total;
    c.outlier_count = static_cast<std::size_t>(d.get_varint());
    if (c.outlier_count > dims_.size() - outlier_total)
      throw DecodeError("chunk outlier counts exceed field size");
    outlier_total += c.outlier_count;
    dir_.chunks.push_back(c);
  }
  if (d.remaining() != 0)
    throw DecodeError("trailing bytes after payload directory");
  payload_declared_ = static_cast<std::size_t>(offset);
}

std::vector<std::uint8_t> ContainerReader::chunk_bytes(
    std::size_t index) const {
  if (index >= dir_.chunks.size())
    throw DecodeError("payload chunk index out of range");
  const ChunkEntry& c = dir_.chunks[index];
  // Validated against the payload actually present, not the declared
  // total: a prefix-truncated archive serves every chunk it still holds
  // and fails only here, when a missing one is asked for.
  if (c.offset > payload_.size() || c.length > payload_.size() - c.offset)
    throw DecodeError("payload chunk extends past archive end");
  // Symbol chunks decode to symbol_count u32s; a valid Huffman frame for
  // them is bounded by a few bytes per symbol plus the code table, so
  // anything past that cap is a bomb. Raw chunks fall back to the
  // caller's body cap, like the v2 body did.
  const std::uint64_t sym_cap =
      c.symbol_count < (std::numeric_limits<std::uint64_t>::max() - 65536) / 16
          ? std::uint64_t{16} * c.symbol_count + 65536
          : std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t cap =
      c.symbol_count != 0 ? std::min<std::uint64_t>(max_body_, sym_cap)
                          : max_body_;
  auto frame = payload_.subspan(static_cast<std::size_t>(c.offset),
                                static_cast<std::size_t>(c.length));
  std::vector<std::uint8_t> raw = lzb_decompress(frame, cap, pool_);
  payload_bytes_read_.fetch_add(static_cast<std::size_t>(c.length),
                                std::memory_order_relaxed);
  return raw;
}

bool ContainerReader::has_stage(StageId id) const {
  for (const auto& s : sections_)
    if (s.id == id) return true;
  return false;
}

std::span<const std::uint8_t> ContainerReader::stage_bytes(StageId id) const {
  for (const auto& s : sections_)
    if (s.id == id)
      return std::span<const std::uint8_t>(body_).subspan(s.offset, s.size);
  throw DecodeError("missing " + stage_name(id) + " stage section");
}

}  // namespace qip
