#pragma once

// Fixed tile grid over a field domain, shared by the container v3 tile
// directory, the interpolation engine's tile-independent traversal, and
// the partial-decode entry points.
//
// Tiles split only the *fine* interpolation levels: a level l is tiled
// when l <= TileLayout::max_level. The coarse levels above stay global,
// so after decoding them the reconstruction is known on the
// 2^max_level-spaced grid everywhere — that grid is the only cross-tile
// state a tile's prediction stencils may read, which is what makes a
// tile decodable from its own symbol chunks alone (see
// docs/FORMATS.md, "tile directory").

#include <array>
#include <cstdint>

#include "util/dims.hpp"
#include "util/status.hpp"

namespace qip {

/// Sentinel tile id for whole-domain payload chunks (untiled levels and
/// non-progressive codecs).
inline constexpr std::uint64_t kWholeDomainTile = ~std::uint64_t{0};

/// How much of the payload a partial decode actually touched — the
/// figure the progressive format exists to shrink. Surfaced by `qipc
/// preview/extract --stats` and asserted on by the progressive tests.
struct PartialDecodeStats {
  std::size_t payload_bytes_read = 0;   ///< compressed chunk bytes consumed
  std::size_t payload_bytes_total = 0;  ///< payload the archive declares
};

/// Half-open box [lo, hi) in field coordinates. Axes beyond the field's
/// rank must span [0, 1).
struct Box {
  std::array<std::size_t, kMaxRank> lo{0, 0, 0, 0};
  std::array<std::size_t, kMaxRank> hi{1, 1, 1, 1};

  /// Whole-domain box for `dims`.
  static Box whole(const Dims& dims) {
    Box b;
    for (int a = 0; a < kMaxRank; ++a) b.hi[a] = dims.extent(a);
    return b;
  }
};

/// The fixed tile grid induced by a tile edge length over `dims`. Tile
/// ids are lexicographic (axis 0 outermost), matching the engine's
/// traversal order and the directory's chunk order.
struct TileGrid {
  std::array<std::size_t, kMaxRank> count{1, 1, 1, 1};
  std::size_t tile = 0;  ///< edge length (elements per axis)
  std::size_t total = 1;

  TileGrid() = default;
  TileGrid(const Dims& dims, std::size_t tile_size) : tile(tile_size) {
    for (int a = 0; a < dims.rank(); ++a) {
      count[a] = (dims.extent(a) + tile_size - 1) / tile_size;
      total *= count[a];
    }
  }

  /// Box of tile `id`; clipped to the field extents.
  Box box(std::uint64_t id, const Dims& dims) const {
    Box b;
    std::array<std::size_t, kMaxRank> c{};
    std::uint64_t rest = id;
    for (int a = kMaxRank - 1; a >= 0; --a) {
      c[a] = static_cast<std::size_t>(rest % count[a]);
      rest /= count[a];
    }
    for (int a = 0; a < kMaxRank; ++a) {
      if (a < dims.rank()) {
        b.lo[a] = c[a] * tile;
        b.hi[a] = b.lo[a] + tile < dims.extent(a) ? b.lo[a] + tile
                                                  : dims.extent(a);
      } else {
        b.lo[a] = 0;
        b.hi[a] = dims.extent(a);
      }
    }
    return b;
  }

  /// Id of the tile containing coordinate `c` (axes beyond rank ignored).
  std::uint64_t id_of(const std::array<std::size_t, kMaxRank>& c) const {
    std::uint64_t id = 0;
    for (int a = 0; a < kMaxRank; ++a) id = id * count[a] + c[a] / tile;
    return id;
  }
};

/// Tiling decision committed into an archive: which edge length, and up
/// to which interpolation level tiles apply (levels 1..max_level are
/// tiled, coarser levels stay global). max_level == 0 means untiled.
struct TileLayout {
  std::size_t tile_size = 0;
  int max_level = 0;

  bool active() const { return tile_size > 0 && max_level > 0; }
  bool tiled(int level) const { return active() && level <= max_level; }

  /// Grid spacing of the globally-known reconstruction once every
  /// untiled level has been decoded; the only out-of-tile points a tiled
  /// level's stencils may read.
  std::size_t known_stride() const { return std::size_t{1} << max_level; }

  /// The committed layout for a request of tile edge `tile_size` over
  /// `dims` with `level_count` interpolation levels. Returns an inactive
  /// layout when tiling cannot pay for itself: the edge is clamped to a
  /// power of two in [16, 4096], levels are tiled only while a tile
  /// spans at least 8 stage strides, and a grid of fewer than two tiles
  /// is no grid at all.
  static TileLayout plan(std::size_t tile_size, const Dims& dims,
                         int level_count) {
    TileLayout t;
    if (tile_size == 0) return t;
    std::size_t edge = 16;
    while (edge < tile_size && edge < 4096) edge *= 2;
    if (edge > dims.max_extent()) return t;  // single tile: pointless
    int ml = 0;
    while (ml + 1 <= level_count &&
           (std::size_t{1} << ml) * 8 <= edge)
      ++ml;
    if (ml == 0) return t;
    t.tile_size = edge;
    t.max_level = ml < level_count ? ml : level_count - 1;
    if (t.max_level <= 0) return TileLayout{};
    return t;
  }
};

}  // namespace qip
