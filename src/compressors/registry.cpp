#include "compressors/registry.hpp"

#include <stdexcept>

#include "compressors/hpez.hpp"
#include "compressors/mgard.hpp"
#include "compressors/qoz.hpp"
#include "compressors/sperr_like.hpp"
#include "compressors/sz3.hpp"
#include "compressors/tthresh_like.hpp"
#include "compressors/zfp_like.hpp"

namespace qip {
namespace {

// One descriptor per codec: name, traits, and the three typed entry
// points. make_entry() below generates every type-erased closure from
// this — adding a codec to the registry is adding one descriptor here
// and one line to the table in compressor_registry().

struct MGARDFront {
  static constexpr const char* kName = "MGARD";
  static constexpr CompressorId kId = CompressorId::kMGARD;
  static constexpr bool kInterpolation = true;
  static constexpr bool kSupportsQP = true;
  using Config = MGARDConfig;
  template <class T>
  static std::vector<std::uint8_t> compress(const T* d, const Dims& dims,
                                            const Config& c) {
    return mgard_compress(d, dims, c);
  }
  template <class T>
  static Field<T> decompress(std::span<const std::uint8_t> a) {
    return mgard_decompress<T>(a);
  }
  template <class T>
  static void decompress_into(std::span<const std::uint8_t> a, T* out,
                              const Dims& expect, ThreadPool* pool) {
    mgard_decompress_into<T>(a, out, expect, pool);
  }
  template <class T>
  static Field<T> decompress_preview(std::span<const std::uint8_t> a,
                                     int level, PartialDecodeStats* stats,
                                     ThreadPool* pool) {
    return mgard_decompress_preview<T>(a, level, pool, stats);
  }
};

struct SZ3Front {
  static constexpr const char* kName = "SZ3";
  static constexpr CompressorId kId = CompressorId::kSZ3;
  static constexpr bool kInterpolation = true;
  static constexpr bool kSupportsQP = true;
  using Config = SZ3Config;
  template <class T>
  static std::vector<std::uint8_t> compress(const T* d, const Dims& dims,
                                            const Config& c) {
    return sz3_compress(d, dims, c);
  }
  template <class T>
  static Field<T> decompress(std::span<const std::uint8_t> a) {
    return sz3_decompress<T>(a);
  }
  template <class T>
  static void decompress_into(std::span<const std::uint8_t> a, T* out,
                              const Dims& expect, ThreadPool* pool) {
    sz3_decompress_into<T>(a, out, expect, pool);
  }
  template <class T>
  static Field<T> decompress_preview(std::span<const std::uint8_t> a,
                                     int level, PartialDecodeStats* stats,
                                     ThreadPool* pool) {
    return sz3_decompress_preview<T>(a, level, pool, stats);
  }
  template <class T>
  static Field<T> decompress_region(std::span<const std::uint8_t> a,
                                    const Box& box, PartialDecodeStats* stats,
                                    ThreadPool* pool) {
    return sz3_decompress_region<T>(a, box, pool, stats);
  }
};

struct QoZFront {
  static constexpr const char* kName = "QoZ";
  static constexpr CompressorId kId = CompressorId::kQoZ;
  static constexpr bool kInterpolation = true;
  static constexpr bool kSupportsQP = true;
  using Config = QoZConfig;
  template <class T>
  static std::vector<std::uint8_t> compress(const T* d, const Dims& dims,
                                            const Config& c) {
    return qoz_compress(d, dims, c);
  }
  template <class T>
  static Field<T> decompress(std::span<const std::uint8_t> a) {
    return qoz_decompress<T>(a);
  }
  template <class T>
  static void decompress_into(std::span<const std::uint8_t> a, T* out,
                              const Dims& expect, ThreadPool* pool) {
    qoz_decompress_into<T>(a, out, expect, pool);
  }
  template <class T>
  static Field<T> decompress_preview(std::span<const std::uint8_t> a,
                                     int level, PartialDecodeStats* stats,
                                     ThreadPool* pool) {
    return qoz_decompress_preview<T>(a, level, pool, stats);
  }
  template <class T>
  static Field<T> decompress_region(std::span<const std::uint8_t> a,
                                    const Box& box, PartialDecodeStats* stats,
                                    ThreadPool* pool) {
    return qoz_decompress_region<T>(a, box, pool, stats);
  }
};

struct HPEZFront {
  static constexpr const char* kName = "HPEZ";
  static constexpr CompressorId kId = CompressorId::kHPEZ;
  static constexpr bool kInterpolation = true;
  static constexpr bool kSupportsQP = true;
  using Config = HPEZConfig;
  template <class T>
  static std::vector<std::uint8_t> compress(const T* d, const Dims& dims,
                                            const Config& c) {
    return hpez_compress(d, dims, c);
  }
  template <class T>
  static Field<T> decompress(std::span<const std::uint8_t> a) {
    return hpez_decompress<T>(a);
  }
  template <class T>
  static void decompress_into(std::span<const std::uint8_t> a, T* out,
                              const Dims& expect, ThreadPool* pool) {
    hpez_decompress_into<T>(a, out, expect, pool);
  }
  template <class T>
  static Field<T> decompress_preview(std::span<const std::uint8_t> a,
                                     int level, PartialDecodeStats* stats,
                                     ThreadPool* pool) {
    return hpez_decompress_preview<T>(a, level, pool, stats);
  }
  // Region decode works on HPEZ archives sealed with a tile size: the
  // block tuner stands down for tiled encodes (see hpez.cpp), so the
  // plan is globally tuned and the tile directory is committed like
  // SZ3/QoZ. Untiled HPEZ archives throw DecodeError as usual.
  template <class T>
  static Field<T> decompress_region(std::span<const std::uint8_t> a,
                                    const Box& box, PartialDecodeStats* stats,
                                    ThreadPool* pool) {
    return hpez_decompress_region<T>(a, box, pool, stats);
  }
};

struct ZFPFront {
  static constexpr const char* kName = "ZFP";
  static constexpr CompressorId kId = CompressorId::kZFP;
  static constexpr bool kInterpolation = false;
  static constexpr bool kSupportsQP = false;
  using Config = ZFPConfig;
  template <class T>
  static std::vector<std::uint8_t> compress(const T* d, const Dims& dims,
                                            const Config& c) {
    return zfp_compress(d, dims, c);
  }
  template <class T>
  static Field<T> decompress(std::span<const std::uint8_t> a) {
    return zfp_decompress<T>(a);
  }
  template <class T>
  static void decompress_into(std::span<const std::uint8_t> a, T* out,
                              const Dims& expect, ThreadPool* pool) {
    zfp_decompress_into<T>(a, out, expect, pool);
  }
};

struct TTHRESHFront {
  static constexpr const char* kName = "TTHRESH";
  static constexpr CompressorId kId = CompressorId::kTTHRESH;
  static constexpr bool kInterpolation = false;
  static constexpr bool kSupportsQP = false;
  using Config = TTHRESHConfig;
  template <class T>
  static std::vector<std::uint8_t> compress(const T* d, const Dims& dims,
                                            const Config& c) {
    return tthresh_compress(d, dims, c);
  }
  template <class T>
  static Field<T> decompress(std::span<const std::uint8_t> a) {
    return tthresh_decompress<T>(a);
  }
  template <class T>
  static void decompress_into(std::span<const std::uint8_t> a, T* out,
                              const Dims& expect, ThreadPool* pool) {
    tthresh_decompress_into<T>(a, out, expect, pool);
  }
};

struct SPERRFront {
  static constexpr const char* kName = "SPERR";
  static constexpr CompressorId kId = CompressorId::kSPERR;
  static constexpr bool kInterpolation = false;
  static constexpr bool kSupportsQP = false;
  using Config = SPERRConfig;
  template <class T>
  static std::vector<std::uint8_t> compress(const T* d, const Dims& dims,
                                            const Config& c) {
    return sperr_compress(d, dims, c);
  }
  template <class T>
  static Field<T> decompress(std::span<const std::uint8_t> a) {
    return sperr_decompress<T>(a);
  }
  template <class T>
  static void decompress_into(std::span<const std::uint8_t> a, T* out,
                              const Dims& expect, ThreadPool* pool) {
    sperr_decompress_into<T>(a, out, expect, pool);
  }
};

/// Generate a registry entry from a Front descriptor. The native config
/// starts from its own defaults and adopts the caller's common
/// CodecOptions surface wholesale (error bound, QP, radius, interpolant,
/// pool); codecs that ignore a field (ZFP and QP, say) simply never read
/// it.
template <class Front>
CompressorEntry make_entry() {
  CompressorEntry e;
  e.name = Front::kName;
  e.id = Front::kId;
  e.interpolation = Front::kInterpolation;
  e.supports_qp = Front::kSupportsQP;
  auto cfg_of = [](const GenericOptions& o) {
    typename Front::Config c;
    static_cast<CodecOptions&>(c) = o;
    return c;
  };
  e.compress_f32 = [cfg_of](const float* d, const Dims& dims,
                            const GenericOptions& o) {
    return Front::template compress<float>(d, dims, cfg_of(o));
  };
  e.compress_f64 = [cfg_of](const double* d, const Dims& dims,
                            const GenericOptions& o) {
    return Front::template compress<double>(d, dims, cfg_of(o));
  };
  e.decompress_f32 = [](std::span<const std::uint8_t> a) {
    return Front::template decompress<float>(a);
  };
  e.decompress_f64 = [](std::span<const std::uint8_t> a) {
    return Front::template decompress<double>(a);
  };
  e.decompress_into_f32 = [](std::span<const std::uint8_t> a, float* dst,
                             const Dims& d) {
    Front::template decompress_into<float>(a, dst, d, nullptr);
  };
  e.decompress_into_f64 = [](std::span<const std::uint8_t> a, double* dst,
                             const Dims& d) {
    Front::template decompress_into<double>(a, dst, d, nullptr);
  };
  e.decompress_into_pool_f32 = [](std::span<const std::uint8_t> a, float* dst,
                                  const Dims& d, ThreadPool* pool) {
    Front::template decompress_into<float>(a, dst, d, pool);
  };
  e.decompress_into_pool_f64 = [](std::span<const std::uint8_t> a, double* dst,
                                  const Dims& d, ThreadPool* pool) {
    Front::template decompress_into<double>(a, dst, d, pool);
  };
  // Partial-decode entry points are optional per Front; absence installs
  // a typed refusal so the std::function is never null and callers that
  // skip the supports_* check still fail with UnknownCodecError.
  if constexpr (requires(std::span<const std::uint8_t> a,
                         PartialDecodeStats* st, ThreadPool* p) {
                  Front::template decompress_preview<float>(a, 1, st, p);
                }) {
    e.supports_preview = true;
    e.decompress_preview_f32 = [](std::span<const std::uint8_t> a, int level,
                                  PartialDecodeStats* st) {
      return Front::template decompress_preview<float>(a, level, st, nullptr);
    };
    e.decompress_preview_f64 = [](std::span<const std::uint8_t> a, int level,
                                  PartialDecodeStats* st) {
      return Front::template decompress_preview<double>(a, level, st, nullptr);
    };
    e.decompress_preview_pool_f32 = [](std::span<const std::uint8_t> a,
                                       int level, PartialDecodeStats* st,
                                       ThreadPool* p) {
      return Front::template decompress_preview<float>(a, level, st, p);
    };
    e.decompress_preview_pool_f64 = [](std::span<const std::uint8_t> a,
                                       int level, PartialDecodeStats* st,
                                       ThreadPool* p) {
      return Front::template decompress_preview<double>(a, level, st, p);
    };
  } else {
    e.decompress_preview_f32 = [](std::span<const std::uint8_t>, int,
                                  PartialDecodeStats*) -> Field<float> {
      throw UnknownCodecError(std::string(Front::kName) +
                              " does not support progressive preview");
    };
    e.decompress_preview_f64 = [](std::span<const std::uint8_t>, int,
                                  PartialDecodeStats*) -> Field<double> {
      throw UnknownCodecError(std::string(Front::kName) +
                              " does not support progressive preview");
    };
    e.decompress_preview_pool_f32 =
        [](std::span<const std::uint8_t>, int, PartialDecodeStats*,
           ThreadPool*) -> Field<float> {
      throw UnknownCodecError(std::string(Front::kName) +
                              " does not support progressive preview");
    };
    e.decompress_preview_pool_f64 =
        [](std::span<const std::uint8_t>, int, PartialDecodeStats*,
           ThreadPool*) -> Field<double> {
      throw UnknownCodecError(std::string(Front::kName) +
                              " does not support progressive preview");
    };
  }
  if constexpr (requires(std::span<const std::uint8_t> a, const Box& b,
                         PartialDecodeStats* st, ThreadPool* p) {
                  Front::template decompress_region<float>(a, b, st, p);
                }) {
    e.supports_region = true;
    e.decompress_region_f32 = [](std::span<const std::uint8_t> a,
                                 const Box& b, PartialDecodeStats* st) {
      return Front::template decompress_region<float>(a, b, st, nullptr);
    };
    e.decompress_region_f64 = [](std::span<const std::uint8_t> a,
                                 const Box& b, PartialDecodeStats* st) {
      return Front::template decompress_region<double>(a, b, st, nullptr);
    };
    e.decompress_region_pool_f32 = [](std::span<const std::uint8_t> a,
                                      const Box& b, PartialDecodeStats* st,
                                      ThreadPool* p) {
      return Front::template decompress_region<float>(a, b, st, p);
    };
    e.decompress_region_pool_f64 = [](std::span<const std::uint8_t> a,
                                      const Box& b, PartialDecodeStats* st,
                                      ThreadPool* p) {
      return Front::template decompress_region<double>(a, b, st, p);
    };
  } else {
    e.decompress_region_f32 = [](std::span<const std::uint8_t>, const Box&,
                                 PartialDecodeStats*) -> Field<float> {
      throw UnknownCodecError(std::string(Front::kName) +
                              " does not support region decode");
    };
    e.decompress_region_f64 = [](std::span<const std::uint8_t>, const Box&,
                                 PartialDecodeStats*) -> Field<double> {
      throw UnknownCodecError(std::string(Front::kName) +
                              " does not support region decode");
    };
    e.decompress_region_pool_f32 =
        [](std::span<const std::uint8_t>, const Box&, PartialDecodeStats*,
           ThreadPool*) -> Field<float> {
      throw UnknownCodecError(std::string(Front::kName) +
                              " does not support region decode");
    };
    e.decompress_region_pool_f64 =
        [](std::span<const std::uint8_t>, const Box&, PartialDecodeStats*,
           ThreadPool*) -> Field<double> {
      throw UnknownCodecError(std::string(Front::kName) +
                              " does not support region decode");
    };
  }
  return e;
}

}  // namespace

const std::vector<CompressorEntry>& compressor_registry() {
  // Paper Table IV order.
  static const std::vector<CompressorEntry> entries = {
      make_entry<MGARDFront>(), make_entry<SZ3Front>(),
      make_entry<QoZFront>(),   make_entry<HPEZFront>(),
      make_entry<ZFPFront>(),   make_entry<TTHRESHFront>(),
      make_entry<SPERRFront>()};
  return entries;
}

const CompressorEntry& find_compressor(std::string_view name) {
  for (const auto& e : compressor_registry())
    if (e.name == name) return e;
  throw UnknownCodecError("unknown compressor: " + std::string(name));
}

const CompressorEntry& find_compressor_for(
    std::span<const std::uint8_t> archive) {
  const ContainerInfo info = inspect_container(archive);
  for (const auto& e : compressor_registry())
    if (e.id == info.codec) return e;
  throw UnknownCodecError(
      "unknown compressor id " +
          std::to_string(static_cast<unsigned>(info.codec)) + " in archive",
      static_cast<std::uint8_t>(info.codec), info.version);
}

std::vector<const CompressorEntry*> qp_base_compressors() {
  std::vector<const CompressorEntry*> out;
  for (const auto& e : compressor_registry())
    if (e.supports_qp) out.push_back(&e);
  return out;
}

}  // namespace qip
