#include "compressors/registry.hpp"

#include <stdexcept>

#include "compressors/archive.hpp"

#include "compressors/hpez.hpp"
#include "compressors/mgard.hpp"
#include "compressors/qoz.hpp"
#include "compressors/sperr_like.hpp"
#include "compressors/sz3.hpp"
#include "compressors/tthresh_like.hpp"
#include "compressors/zfp_like.hpp"

namespace qip {
namespace {

CompressorEntry make_mgard() {
  CompressorEntry e;
  e.name = "MGARD";
  e.interpolation = true;
  e.supports_qp = true;
  auto cfg_of = [](const GenericOptions& o) {
    MGARDConfig c;
    c.error_bound = o.error_bound;
    c.qp = o.qp;
    c.pool = o.pool;
    return c;
  };
  e.compress_f32 = [cfg_of](const float* d, const Dims& dims,
                            const GenericOptions& o) {
    return mgard_compress(d, dims, cfg_of(o));
  };
  e.decompress_f32 = [](std::span<const std::uint8_t> a) {
    return mgard_decompress<float>(a);
  };
  e.compress_f64 = [cfg_of](const double* d, const Dims& dims,
                            const GenericOptions& o) {
    return mgard_compress(d, dims, cfg_of(o));
  };
  e.decompress_f64 = [](std::span<const std::uint8_t> a) {
    return mgard_decompress<double>(a);
  };
  e.decompress_into_f32 = [](std::span<const std::uint8_t> a, float* dst,
                             const Dims& d) {
    mgard_decompress_into<float>(a, dst, d);
  };
  e.decompress_into_f64 = [](std::span<const std::uint8_t> a, double* dst,
                             const Dims& d) {
    mgard_decompress_into<double>(a, dst, d);
  };
  return e;
}

CompressorEntry make_sz3() {
  CompressorEntry e;
  e.name = "SZ3";
  e.interpolation = true;
  e.supports_qp = true;
  auto cfg_of = [](const GenericOptions& o) {
    SZ3Config c;
    c.error_bound = o.error_bound;
    c.qp = o.qp;
    c.pool = o.pool;
    return c;
  };
  e.compress_f32 = [cfg_of](const float* d, const Dims& dims,
                            const GenericOptions& o) {
    return sz3_compress(d, dims, cfg_of(o));
  };
  e.decompress_f32 = [](std::span<const std::uint8_t> a) {
    return sz3_decompress<float>(a);
  };
  e.compress_f64 = [cfg_of](const double* d, const Dims& dims,
                            const GenericOptions& o) {
    return sz3_compress(d, dims, cfg_of(o));
  };
  e.decompress_f64 = [](std::span<const std::uint8_t> a) {
    return sz3_decompress<double>(a);
  };
  e.decompress_into_f32 = [](std::span<const std::uint8_t> a, float* dst,
                             const Dims& d) {
    sz3_decompress_into<float>(a, dst, d);
  };
  e.decompress_into_f64 = [](std::span<const std::uint8_t> a, double* dst,
                             const Dims& d) {
    sz3_decompress_into<double>(a, dst, d);
  };
  return e;
}

CompressorEntry make_qoz() {
  CompressorEntry e;
  e.name = "QoZ";
  e.interpolation = true;
  e.supports_qp = true;
  auto cfg_of = [](const GenericOptions& o) {
    QoZConfig c;
    c.error_bound = o.error_bound;
    c.qp = o.qp;
    c.pool = o.pool;
    return c;
  };
  e.compress_f32 = [cfg_of](const float* d, const Dims& dims,
                            const GenericOptions& o) {
    return qoz_compress(d, dims, cfg_of(o));
  };
  e.decompress_f32 = [](std::span<const std::uint8_t> a) {
    return qoz_decompress<float>(a);
  };
  e.compress_f64 = [cfg_of](const double* d, const Dims& dims,
                            const GenericOptions& o) {
    return qoz_compress(d, dims, cfg_of(o));
  };
  e.decompress_f64 = [](std::span<const std::uint8_t> a) {
    return qoz_decompress<double>(a);
  };
  e.decompress_into_f32 = [](std::span<const std::uint8_t> a, float* dst,
                             const Dims& d) {
    qoz_decompress_into<float>(a, dst, d);
  };
  e.decompress_into_f64 = [](std::span<const std::uint8_t> a, double* dst,
                             const Dims& d) {
    qoz_decompress_into<double>(a, dst, d);
  };
  return e;
}

CompressorEntry make_hpez() {
  CompressorEntry e;
  e.name = "HPEZ";
  e.interpolation = true;
  e.supports_qp = true;
  auto cfg_of = [](const GenericOptions& o) {
    HPEZConfig c;
    c.error_bound = o.error_bound;
    c.qp = o.qp;
    c.pool = o.pool;
    return c;
  };
  e.compress_f32 = [cfg_of](const float* d, const Dims& dims,
                            const GenericOptions& o) {
    return hpez_compress(d, dims, cfg_of(o));
  };
  e.decompress_f32 = [](std::span<const std::uint8_t> a) {
    return hpez_decompress<float>(a);
  };
  e.compress_f64 = [cfg_of](const double* d, const Dims& dims,
                            const GenericOptions& o) {
    return hpez_compress(d, dims, cfg_of(o));
  };
  e.decompress_f64 = [](std::span<const std::uint8_t> a) {
    return hpez_decompress<double>(a);
  };
  e.decompress_into_f32 = [](std::span<const std::uint8_t> a, float* dst,
                             const Dims& d) {
    hpez_decompress_into<float>(a, dst, d);
  };
  e.decompress_into_f64 = [](std::span<const std::uint8_t> a, double* dst,
                             const Dims& d) {
    hpez_decompress_into<double>(a, dst, d);
  };
  return e;
}

CompressorEntry make_zfp() {
  CompressorEntry e;
  e.name = "ZFP";
  e.interpolation = false;
  e.supports_qp = false;
  auto cfg_of = [](const GenericOptions& o) {
    ZFPConfig c;
    c.error_bound = o.error_bound;
    c.pool = o.pool;
    return c;
  };
  e.compress_f32 = [cfg_of](const float* d, const Dims& dims,
                            const GenericOptions& o) {
    return zfp_compress(d, dims, cfg_of(o));
  };
  e.decompress_f32 = [](std::span<const std::uint8_t> a) {
    return zfp_decompress<float>(a);
  };
  e.compress_f64 = [cfg_of](const double* d, const Dims& dims,
                            const GenericOptions& o) {
    return zfp_compress(d, dims, cfg_of(o));
  };
  e.decompress_f64 = [](std::span<const std::uint8_t> a) {
    return zfp_decompress<double>(a);
  };
  e.decompress_into_f32 = [](std::span<const std::uint8_t> a, float* dst,
                             const Dims& d) {
    zfp_decompress_into<float>(a, dst, d);
  };
  e.decompress_into_f64 = [](std::span<const std::uint8_t> a, double* dst,
                             const Dims& d) {
    zfp_decompress_into<double>(a, dst, d);
  };
  return e;
}

CompressorEntry make_tthresh() {
  CompressorEntry e;
  e.name = "TTHRESH";
  e.interpolation = false;
  e.supports_qp = false;
  auto cfg_of = [](const GenericOptions& o) {
    TTHRESHConfig c;
    c.error_bound = o.error_bound;
    c.pool = o.pool;
    return c;
  };
  e.compress_f32 = [cfg_of](const float* d, const Dims& dims,
                            const GenericOptions& o) {
    return tthresh_compress(d, dims, cfg_of(o));
  };
  e.decompress_f32 = [](std::span<const std::uint8_t> a) {
    return tthresh_decompress<float>(a);
  };
  e.compress_f64 = [cfg_of](const double* d, const Dims& dims,
                            const GenericOptions& o) {
    return tthresh_compress(d, dims, cfg_of(o));
  };
  e.decompress_f64 = [](std::span<const std::uint8_t> a) {
    return tthresh_decompress<double>(a);
  };
  e.decompress_into_f32 = [](std::span<const std::uint8_t> a, float* dst,
                             const Dims& d) {
    tthresh_decompress_into<float>(a, dst, d);
  };
  e.decompress_into_f64 = [](std::span<const std::uint8_t> a, double* dst,
                             const Dims& d) {
    tthresh_decompress_into<double>(a, dst, d);
  };
  return e;
}

CompressorEntry make_sperr() {
  CompressorEntry e;
  e.name = "SPERR";
  e.interpolation = false;
  e.supports_qp = false;
  auto cfg_of = [](const GenericOptions& o) {
    SPERRConfig c;
    c.error_bound = o.error_bound;
    c.pool = o.pool;
    return c;
  };
  e.compress_f32 = [cfg_of](const float* d, const Dims& dims,
                            const GenericOptions& o) {
    return sperr_compress(d, dims, cfg_of(o));
  };
  e.decompress_f32 = [](std::span<const std::uint8_t> a) {
    return sperr_decompress<float>(a);
  };
  e.compress_f64 = [cfg_of](const double* d, const Dims& dims,
                            const GenericOptions& o) {
    return sperr_compress(d, dims, cfg_of(o));
  };
  e.decompress_f64 = [](std::span<const std::uint8_t> a) {
    return sperr_decompress<double>(a);
  };
  e.decompress_into_f32 = [](std::span<const std::uint8_t> a, float* dst,
                             const Dims& d) {
    sperr_decompress_into<float>(a, dst, d);
  };
  e.decompress_into_f64 = [](std::span<const std::uint8_t> a, double* dst,
                             const Dims& d) {
    sperr_decompress_into<double>(a, dst, d);
  };
  return e;
}

}  // namespace

const std::vector<CompressorEntry>& compressor_registry() {
  static const std::vector<CompressorEntry> entries = {
      make_mgard(), make_sz3(),     make_qoz(),  make_hpez(),
      make_zfp(),   make_tthresh(), make_sperr()};
  return entries;
}

const CompressorEntry& find_compressor(std::string_view name) {
  for (const auto& e : compressor_registry())
    if (e.name == name) return e;
  throw std::runtime_error("qip: unknown compressor: " + std::string(name));
}

const CompressorEntry& find_compressor_for(
    std::span<const std::uint8_t> archive) {
  switch (archive_compressor(archive)) {
    case CompressorId::kMGARD: return find_compressor("MGARD");
    case CompressorId::kSZ3: return find_compressor("SZ3");
    case CompressorId::kQoZ: return find_compressor("QoZ");
    case CompressorId::kHPEZ: return find_compressor("HPEZ");
    case CompressorId::kZFP: return find_compressor("ZFP");
    case CompressorId::kTTHRESH: return find_compressor("TTHRESH");
    case CompressorId::kSPERR: return find_compressor("SPERR");
  }
  throw std::runtime_error("qip: unknown compressor id in archive");
}

std::vector<const CompressorEntry*> qp_base_compressors() {
  std::vector<const CompressorEntry*> out;
  for (const auto& e : compressor_registry())
    if (e.supports_qp) out.push_back(&e);
  return out;
}

}  // namespace qip
