#pragma once

// Interpolation plans: the per-level (and, for HPEZ-like, per-block)
// decisions an interpolation compressor commits to. Plans are serialized
// into the archive header so decompression replays the identical
// traversal.

#include <array>
#include <cstdint>
#include <vector>

#include "predict/interpolation.hpp"
#include "util/bytes.hpp"
#include "util/dims.hpp"
#include "util/status.hpp"

namespace qip {

/// Configuration of one interpolation level.
struct LevelPlan {
  InterpKind kind = InterpKind::kCubic;
  /// Direction order over axes (first entry interpolated first). Only the
  /// first `rank` entries are meaningful. Ignored when `md` is set.
  std::array<std::int8_t, kMaxRank> order{0, 1, 2, 3};
  /// Multi-dimensional (parity-class) interpolation, HPEZ-style: points
  /// are processed by the set of axes on which their coordinate is an odd
  /// multiple of the stride, and predicted by averaging the 1-D
  /// interpolations along each such axis.
  bool md = false;
  /// Error-bound multiplier for this level (QoZ-style level-wise bounds).
  double eb_scale = 1.0;

  void save(ByteWriter& w) const {
    w.put(static_cast<std::uint8_t>(kind));
    for (auto o : order) w.put(o);
    w.put<std::uint8_t>(md ? 1 : 0);
    w.put(eb_scale);
  }
  static LevelPlan load(ByteReader& r) {
    LevelPlan p;
    const std::uint8_t kind = r.get<std::uint8_t>();
    if (kind > static_cast<std::uint8_t>(InterpKind::kCubic))
      throw DecodeError("plan: unknown interpolation kind");
    p.kind = static_cast<InterpKind>(kind);
    // `order` must be a permutation of the axis ids: the traversal
    // indexes stride/extent tables by these values directly.
    std::uint32_t seen = 0;
    for (auto& o : p.order) {
      o = r.get<std::int8_t>();
      if (o < 0 || o >= kMaxRank || (seen & (1u << o)))
        throw DecodeError("plan: axis order is not a permutation");
      seen |= 1u << o;
    }
    p.md = r.get<std::uint8_t>() != 0;
    p.eb_scale = r.get<double>();
    return p;
  }
};

/// A full traversal plan. With `block_size == 0`, `levels[l-1]` governs
/// level l globally. With `block_size > 0` (HPEZ-like), each level is
/// processed block by block and `block_choice[l-1][b]` selects the
/// governing plan from `candidates` for block b (lexicographic block
/// order); `levels[l-1].eb_scale` still applies level-wide.
struct InterpPlan {
  std::vector<LevelPlan> levels;  ///< index l-1 = level l (1 = finest)
  std::size_t block_size = 0;
  std::vector<LevelPlan> candidates;
  std::vector<std::vector<std::uint8_t>> block_choice;
  /// Per-level switch: levels with 0 here run globally under levels[l-1]
  /// even when block_size > 0 (coarse levels hold too few points per
  /// block for per-block adaptivity to pay for its stencil guards).
  std::vector<std::uint8_t> level_blockwise;

  bool blockwise(int level) const {
    return block_size > 0 &&
           static_cast<std::size_t>(level - 1) < level_blockwise.size() &&
           level_blockwise[static_cast<std::size_t>(level - 1)] != 0;
  }

  /// Uniform plan: same LevelPlan at every level.
  static InterpPlan uniform(int level_count, const LevelPlan& lp) {
    InterpPlan p;
    p.levels.assign(static_cast<std::size_t>(level_count), lp);
    return p;
  }

  void save(ByteWriter& w) const {
    w.put_varint(levels.size());
    for (const auto& l : levels) l.save(w);
    w.put_varint(block_size);
    w.put_varint(candidates.size());
    for (const auto& c : candidates) c.save(w);
    w.put_varint(block_choice.size());
    for (const auto& bc : block_choice) {
      w.put_varint(bc.size());
      w.put_bytes(bc);
    }
    w.put_varint(level_blockwise.size());
    w.put_bytes(level_blockwise);
  }
  static InterpPlan load(ByteReader& r) {
    InterpPlan p;
    // Every list entry consumes at least one stream byte (a LevelPlan
    // costs 14, a block-choice row at least its length varint), so
    // r.remaining() caps any truthful count; larger values are
    // allocation bombs from a hostile header.
    const std::uint64_t nlevels = r.get_varint();
    if (nlevels > r.remaining())
      throw DecodeError("plan: level count exceeds stream");
    p.levels.resize(static_cast<std::size_t>(nlevels));
    for (auto& l : p.levels) l = LevelPlan::load(r);
    p.block_size = static_cast<std::size_t>(r.get_varint());
    const std::uint64_t ncand = r.get_varint();
    if (ncand > r.remaining())
      throw DecodeError("plan: candidate count exceeds stream");
    p.candidates.resize(static_cast<std::size_t>(ncand));
    for (auto& c : p.candidates) c = LevelPlan::load(r);
    const std::uint64_t nchoice = r.get_varint();
    if (nchoice > r.remaining())
      throw DecodeError("plan: block-choice count exceeds stream");
    p.block_choice.resize(static_cast<std::size_t>(nchoice));
    for (auto& bc : p.block_choice) {
      const std::size_t n = static_cast<std::size_t>(r.get_varint());
      auto bytes = r.get_bytes(n);
      bc.assign(bytes.begin(), bytes.end());
    }
    {
      const std::size_t n = static_cast<std::size_t>(r.get_varint());
      auto bytes = r.get_bytes(n);
      p.level_blockwise.assign(bytes.begin(), bytes.end());
    }
    return p;
  }
};

}  // namespace qip
