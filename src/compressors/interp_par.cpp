// Runtime A/B gate for the parallel interpolation level walk.
//
// QIP_INTERP_FORCE_SEQ=1 pins every stage to the sequential traversal
// even when a thread pool is supplied — the oracle side of the
// worker-count byte-identity tests, and the triage switch for comparing
// parallel against sequential on live workloads (the runtime sibling of
// the compile-time QIP_INTERP_FORCE_GENERIC). Same shape as the SIMD
// dispatch gate in src/simd/dispatch.cpp: the environment is read once,
// and a test override beats it.

#include <atomic>
#include <cstdlib>
#include <string>

#include "compressors/interp_engine.hpp"

namespace qip {
namespace {

std::atomic<int> g_force_seq_override{-1};

bool env_force_seq() {
  static const bool v = [] {
    const char* e = std::getenv("QIP_INTERP_FORCE_SEQ");
    return e != nullptr && std::string(e) != "0";
  }();
  return v;
}

}  // namespace

bool interp_force_seq() {
  const int o = g_force_seq_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return env_force_seq();
}

void set_interp_force_seq_override(int v) {
  g_force_seq_override.store(v, std::memory_order_relaxed);
}

}  // namespace qip
