#include "compressors/hpez.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "compressors/core/driver.hpp"
#include "compressors/tuning.hpp"
#include "predict/multilevel.hpp"

namespace qip {
namespace {

/// Candidate set — a strict superset of the QoZ tuner's: sequential
/// orders plus multi-dimensional (parity-class) interpolation, cubic and
/// linear. The same list doubles as the per-block candidate table.
std::vector<LevelPlan> hpez_candidates(int rank) {
  std::vector<LevelPlan> cands;
  LevelPlan md_cubic;
  md_cubic.md = true;
  cands.push_back(md_cubic);           // 0: md cubic
  LevelPlan md_linear = md_cubic;
  md_linear.kind = InterpKind::kLinear;
  cands.push_back(md_linear);          // 1: md linear
  LevelPlan seq_fwd;                   // 2: z-first cubic (clustering-prone)
  cands.push_back(seq_fwd);
  LevelPlan seq_rev;                   // 3: x-first cubic
  for (int a = 0; a < rank; ++a)
    seq_rev.order[a] = static_cast<std::int8_t>(rank - 1 - a);
  cands.push_back(seq_rev);
  LevelPlan seq_fwd_lin = seq_fwd;     // 4: z-first linear
  seq_fwd_lin.kind = InterpKind::kLinear;
  cands.push_back(seq_fwd_lin);
  return cands;
}

/// Decide the committed interpolation plan: global per-level tuning,
/// QoZ-style (alpha, beta) selection, block-wise refinement at fine
/// levels, and a final size comparison between fully sealed block-wise
/// and global candidate archives. The comparison runs QP-blind (see
/// HPEZCodec::encode).
template <class T>
InterpPlan hpez_tune_plan(const T* data, const Dims& dims,
                          const HPEZConfig& cfg) {
  const int levels = interpolation_level_count(dims);
  const std::size_t bs = cfg.block_size;

  InterpPlan plan;
  plan.block_size = bs;
  plan.candidates = hpez_candidates(dims.rank());
  plan.levels.resize(static_cast<std::size_t>(levels));
  plan.block_choice.resize(static_cast<std::size_t>(levels));
  plan.level_blockwise.assign(static_cast<std::size_t>(levels), 0);

  // Block grid (lexicographic order must match the engine's traversal).
  std::array<std::size_t, kMaxRank> nblk{1, 1, 1, 1};
  std::size_t total_blocks = 1;
  for (int a = 0; a < dims.rank(); ++a) {
    nblk[a] = (dims.extent(a) + bs - 1) / bs;
    total_blocks *= nblk[a];
  }

  // Pass 1: global per-level tuning over the full candidate set.
  std::vector<LevelPlan> per_level(static_cast<std::size_t>(levels));
  std::vector<double> global_cost(static_cast<std::size_t>(levels), 0.0);
  for (int l = 1; l <= levels; ++l) {
    const std::size_t step = l == 1 ? 5 : (l == 2 ? 3 : 1);
    double best_cost = std::numeric_limits<double>::infinity();
    LevelPlan best = plan.candidates.front();
    for (const auto& cand : plan.candidates) {
      const double cost = InterpEngine<T>::level_cost_sample(
          data, dims, l, cand, cfg.error_bound, step);
      if (cost < best_cost) {
        best_cost = cost;
        best = cand;
      }
    }
    per_level[static_cast<std::size_t>(l - 1)] = best;
    global_cost[static_cast<std::size_t>(l - 1)] = best_cost;
  }

  // QoZ-style (alpha, beta) rate-distortion trial on the tuned levels.
  const auto [alpha, beta] =
      tune_alpha_beta(data, dims, cfg.error_bound, cfg.radius, per_level);

  // Pass 2: block-wise refinement at fine levels. Enabled only when the
  // summed per-block optima beat the global optimum by enough to cover
  // the cross-block guard penalty the sampler cannot see.
  for (int l = 1; l <= levels; ++l) {
    LevelPlan& lp = plan.levels[static_cast<std::size_t>(l - 1)];
    lp = per_level[static_cast<std::size_t>(l - 1)];
    lp.eb_scale = level_eb_scale(l, alpha, beta);
    auto& choice = plan.block_choice[static_cast<std::size_t>(l - 1)];
    choice.assign(total_blocks, 0);

    const std::size_t stride = std::size_t{1} << (l - 1);
    // A requested tile grid (random-access region decode) and per-block
    // plan refinement both want to own the fine-level traversal order;
    // the tile directory wins, so the block tuner stands down when a
    // tile size is set (see interp_tile_layout and docs/FORMATS.md).
    const bool try_blocks = cfg.tune_blocks && cfg.tile_size == 0 &&
                            stride * 4 <= bs && dims.rank() >= 2;
    if (!try_blocks) continue;

    const std::size_t step = l == 1 ? 5 : 3;
    const double eb_l = cfg.error_bound * lp.eb_scale;
    double block_total = 0.0;
    std::size_t bidx = 0;
    std::array<std::size_t, kMaxRank> b{};
    for (b[0] = 0; b[0] < nblk[0]; ++b[0])
      for (b[1] = 0; b[1] < nblk[1]; ++b[1])
        for (b[2] = 0; b[2] < nblk[2]; ++b[2])
          for (b[3] = 0; b[3] < nblk[3]; ++b[3]) {
            std::array<std::size_t, kMaxRank> lo{0, 0, 0, 0};
            std::array<std::size_t, kMaxRank> hi{1, 1, 1, 1};
            for (int a = 0; a < kMaxRank; ++a) {
              if (a < dims.rank()) {
                lo[a] = b[a] * bs;
                hi[a] = std::min(lo[a] + bs, dims.extent(a));
              } else {
                hi[a] = dims.extent(a);
              }
            }
            double best_cost = std::numeric_limits<double>::infinity();
            std::uint8_t best = 0;
            for (std::size_t ci = 0; ci < plan.candidates.size(); ++ci) {
              const double cost = InterpEngine<T>::level_cost_sample(
                  data, dims, l, plan.candidates[ci], eb_l, step, &lo, &hi);
              if (cost < best_cost) {
                best_cost = cost;
                best = static_cast<std::uint8_t>(ci);
              }
            }
            choice[bidx++] = best;
            block_total += best_cost;
          }

    // Re-sample the global winner at the block-tuner's step for a fair
    // comparison (different sampling steps are not comparable).
    const double global_at_step = InterpEngine<T>::level_cost_sample(
        data, dims, l, lp, eb_l, step);
    if (block_total < 0.98 * global_at_step)
      plan.level_blockwise[static_cast<std::size_t>(l - 1)] = 1;
  }

  // The sampled proxy cannot see the final entropy/lossless stages, so
  // commit by encoding with both the block-wise and the globally-tuned
  // plan and keeping the smaller archive. The extra pass is in character:
  // HPEZ trades compression speed for ratio via heavy serial tuning
  // (paper Table I: "medium speed, high ratio").
  const bool any_blockwise =
      std::any_of(plan.level_blockwise.begin(), plan.level_blockwise.end(),
                  [](std::uint8_t v) { return v != 0; });
  if (any_blockwise) {
    const auto arc_blk =
        interp_seal(CompressorId::kHPEZ, data, dims, plan, cfg.error_bound,
                    cfg.radius, QPConfig{}, cfg.pool, nullptr);
    InterpPlan global_plan = plan;
    global_plan.level_blockwise.assign(global_plan.level_blockwise.size(), 0);
    const auto arc_glb =
        interp_seal(CompressorId::kHPEZ, data, dims, global_plan,
                    cfg.error_bound, cfg.radius, QPConfig{}, cfg.pool, nullptr);
    if (arc_glb.size() < arc_blk.size()) plan = std::move(global_plan);
  }
  return plan;
}

/// Stage policy: heavy serial tuning picks the plan, then the shared
/// interpolation stage pipeline does everything else.
struct HPEZCodec {
  using Config = HPEZConfig;
  using Artifacts = IndexArtifacts;
  static constexpr CompressorId kId = CompressorId::kHPEZ;
  static constexpr const char* kName = "hpez";

  template <class T>
  static void encode(const T* data, const Dims& dims, const Config& cfg,
                     ContainerWriter& out, Artifacts* artifacts) {
    // The plan decision must not depend on the QP configuration, or QP
    // would change the committed plan and thus the decompressed data —
    // breaking its "same reconstruction, smaller archive" contract. So
    // the tuner (including its sealed-size comparison) runs QP-blind,
    // and the winner is encoded with the requested QP config.
    const InterpPlan plan = hpez_tune_plan(data, dims, cfg);
    // With a tile size set, the block tuner stands down (tile order and
    // per-block plans cannot coexist on a level), every level is decided
    // globally, and interp_tile_layout commits a tile grid — so HPEZ
    // archives support region decode exactly like SZ3/QoZ ones. Without
    // a tile size the plan may go block-wise at fine levels and the
    // archive keeps per-level chunks (progressive preview) only.
    interp_encode_stages(out, data, dims, plan, cfg.error_bound, cfg.radius,
                         cfg.qp, cfg.pool, artifacts, cfg.tile_size);
  }

  template <class T>
  static void decode(const ContainerReader& in, T* out, ThreadPool* pool) {
    interp_decode_stages(in, out, pool);
  }

  template <class T>
  static Field<T> decode_preview(const ContainerReader& in, int level,
                                 ThreadPool* pool, PartialDecodeStats* stats) {
    return interp_preview_stages<T>(in, level, pool, stats);
  }

  template <class T>
  static Field<T> decode_region(const ContainerReader& in, const Box& box,
                                ThreadPool* pool, PartialDecodeStats* stats) {
    return interp_region_stages<T>(in, box, pool, stats);
  }
};

}  // namespace

template <class T>
std::vector<std::uint8_t> hpez_compress(const T* data, const Dims& dims,
                                        const HPEZConfig& cfg,
                                        IndexArtifacts* artifacts) {
  return codec_seal<HPEZCodec>(data, dims, cfg, artifacts);
}

template <class T>
Field<T> hpez_decompress(std::span<const std::uint8_t> archive,
                         ThreadPool* pool) {
  return codec_open<HPEZCodec, T>(archive, pool);
}

template <class T>
void hpez_decompress_into(std::span<const std::uint8_t> archive, T* out,
                          const Dims& expect, ThreadPool* pool) {
  codec_open_into<HPEZCodec, T>(archive, out, expect, pool);
}

template <class T>
Field<T> hpez_decompress_preview(std::span<const std::uint8_t> archive,
                                 int level, ThreadPool* pool,
                                 PartialDecodeStats* stats) {
  return codec_open_preview<HPEZCodec, T>(archive, level, pool, stats);
}

template <class T>
Field<T> hpez_decompress_region(std::span<const std::uint8_t> archive,
                                const Box& box, ThreadPool* pool,
                                PartialDecodeStats* stats) {
  return codec_open_region<HPEZCodec, T>(archive, box, pool, stats);
}

template std::vector<std::uint8_t> hpez_compress<float>(
    const float*, const Dims&, const HPEZConfig&, IndexArtifacts*);
template std::vector<std::uint8_t> hpez_compress<double>(
    const double*, const Dims&, const HPEZConfig&, IndexArtifacts*);
template Field<float> hpez_decompress<float>(std::span<const std::uint8_t>,
                                             ThreadPool*);
template Field<double> hpez_decompress<double>(std::span<const std::uint8_t>,
                                               ThreadPool*);
template void hpez_decompress_into<float>(std::span<const std::uint8_t>, float*,
                                          const Dims&, ThreadPool*);
template void hpez_decompress_into<double>(std::span<const std::uint8_t>,
                                           double*, const Dims&, ThreadPool*);
template Field<float> hpez_decompress_preview<float>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
template Field<double> hpez_decompress_preview<double>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
template Field<float> hpez_decompress_region<float>(
    std::span<const std::uint8_t>, const Box&, ThreadPool*,
    PartialDecodeStats*);
template Field<double> hpez_decompress_region<double>(
    std::span<const std::uint8_t>, const Box&, ThreadPool*,
    PartialDecodeStats*);

}  // namespace qip
