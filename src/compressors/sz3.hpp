#pragma once

// SZ3-like error-bounded lossy compressor (Zhao et al., ICDE'21 /
// Liang et al., TBD'22): multilevel dynamic spline interpolation with a
// sampling-based fallback to multidimensional Lorenzo prediction, linear
// scaling quantization, Huffman coding and a byte-level lossless pass —
// plus the paper's optional quantization index prediction (QP) hook.

#include <cstdint>
#include <span>
#include <vector>

#include "compressors/core/options.hpp"
#include "compressors/core/tiles.hpp"
#include "util/dims.hpp"
#include "util/field.hpp"

namespace qip {

class ThreadPool;

/// Which value predictor an SZ3-like archive committed to.
enum class SZ3Predictor : std::uint8_t {
  kInterpolation = 0,
  kLorenzo = 1,  ///< the small-error-bound fallback; QP is never applied here
};

struct SZ3Config : CodecOptions {
  /// Try Lorenzo on a sample and switch when it is estimated cheaper
  /// (the behavior the paper observes on SegSalt at eb = 1e-5).
  bool auto_fallback = true;
};

/// Introspection data for the characterization experiments (Figs. 3-5):
/// the spatial quantization-code array and the chosen predictor.
struct SZ3Artifacts {
  std::vector<std::uint32_t> codes;  ///< code = q + radius, 0 = unpredictable
  std::vector<std::uint32_t> symbols_spatial;  ///< Q' arranged spatially
  SZ3Predictor predictor = SZ3Predictor::kInterpolation;
};

template <class T>
[[nodiscard]] std::vector<std::uint8_t> sz3_compress(const T* data, const Dims& dims,
                                       const SZ3Config& cfg,
                                       SZ3Artifacts* artifacts = nullptr);

template <class T>
[[nodiscard]] Field<T> sz3_decompress(std::span<const std::uint8_t> archive,
                                      ThreadPool* pool = nullptr);

/// Decompress straight into caller-owned storage of shape `expect`
/// (a dims mismatch throws DecodeError). Avoids the temporary Field +
/// copy of the allocating overload; used by the chunked decoder.
template <class T>
void sz3_decompress_into(std::span<const std::uint8_t> archive, T* out,
                         const Dims& expect, ThreadPool* pool = nullptr);

/// Progressive preview: decode only the interpolation levels coarser
/// than or equal to `level` and return the decimated level-`level` grid.
/// On v3 archives this reads only the coarse prefix of the payload
/// (`stats` reports how much). Lorenzo-fallback archives support level 1
/// only (the full decode).
template <class T>
[[nodiscard]] Field<T> sz3_decompress_preview(
    std::span<const std::uint8_t> archive, int level,
    ThreadPool* pool = nullptr, PartialDecodeStats* stats = nullptr);

/// Random-access region decode: return the sub-box [box.lo, box.hi),
/// reading the coarse levels plus only the tile chunks that cover the
/// box. Requires an archive sealed with a tile directory (tile_size > 0
/// at compress time); throws DecodeError otherwise.
template <class T>
[[nodiscard]] Field<T> sz3_decompress_region(
    std::span<const std::uint8_t> archive, const Box& box,
    ThreadPool* pool = nullptr, PartialDecodeStats* stats = nullptr);

extern template std::vector<std::uint8_t> sz3_compress<float>(
    const float*, const Dims&, const SZ3Config&, SZ3Artifacts*);
extern template std::vector<std::uint8_t> sz3_compress<double>(
    const double*, const Dims&, const SZ3Config&, SZ3Artifacts*);
extern template Field<float> sz3_decompress<float>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template Field<double> sz3_decompress<double>(
    std::span<const std::uint8_t>, ThreadPool*);
extern template void sz3_decompress_into<float>(std::span<const std::uint8_t>,
                                                float*, const Dims&,
                                                ThreadPool*);
extern template void sz3_decompress_into<double>(std::span<const std::uint8_t>,
                                                 double*, const Dims&,
                                                 ThreadPool*);
extern template Field<float> sz3_decompress_preview<float>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
extern template Field<double> sz3_decompress_preview<double>(
    std::span<const std::uint8_t>, int, ThreadPool*, PartialDecodeStats*);
extern template Field<float> sz3_decompress_region<float>(
    std::span<const std::uint8_t>, const Box&, ThreadPool*,
    PartialDecodeStats*);
extern template Field<double> sz3_decompress_region<double>(
    std::span<const std::uint8_t>, const Box&, ThreadPool*,
    PartialDecodeStats*);

}  // namespace qip
