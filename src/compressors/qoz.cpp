#include "compressors/qoz.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "compressors/archive.hpp"
#include "compressors/interp_engine.hpp"
#include "compressors/tuning.hpp"
#include "encode/huffman.hpp"
#include "predict/multilevel.hpp"

namespace qip {
namespace {

/// Candidate (kind, order) pairs for the per-level interpolation tuner:
/// cubic/linear crossed with slowest-first and fastest-first orders.
std::vector<LevelPlan> interp_candidates(int rank) {
  std::array<std::int8_t, kMaxRank> fwd{0, 1, 2, 3};
  std::array<std::int8_t, kMaxRank> rev{0, 1, 2, 3};
  for (int a = 0; a < rank; ++a) rev[a] = static_cast<std::int8_t>(rank - 1 - a);
  std::vector<LevelPlan> cands;
  for (InterpKind k : {InterpKind::kCubic, InterpKind::kLinear}) {
    for (const auto& o : {fwd, rev}) {
      LevelPlan lp;
      lp.kind = k;
      lp.order = o;
      cands.push_back(lp);
    }
  }
  return cands;
}

}  // namespace

template <class T>
std::vector<std::uint8_t> qoz_compress(const T* data, const Dims& dims,
                                       const QoZConfig& cfg,
                                       IndexArtifacts* artifacts) {
  const int levels = interpolation_level_count(dims);

  // Per-level interpolation tuning (coarse levels are nearly free to
  // sample; fine levels are subsampled harder).
  std::vector<LevelPlan> per_level(static_cast<std::size_t>(levels));
  if (cfg.tune_interp) {
    const auto cands = interp_candidates(dims.rank());
    for (int l = 1; l <= levels; ++l) {
      const std::size_t step = l == 1 ? 5 : (l == 2 ? 3 : 1);
      double best_cost = std::numeric_limits<double>::infinity();
      LevelPlan best = cands.front();
      for (const auto& cand : cands) {
        const double cost = InterpEngine<T>::level_cost_sample(
            data, dims, l, cand, cfg.error_bound, step);
        if (cost < best_cost) {
          best_cost = cost;
          best = cand;
        }
      }
      per_level[static_cast<std::size_t>(l - 1)] = best;
    }
  }

  double alpha = cfg.alpha, beta = cfg.beta;
  if (cfg.tune_level_eb) {
    std::tie(alpha, beta) =
        tune_alpha_beta(data, dims, cfg.error_bound, cfg.radius, per_level);
  }

  InterpPlan plan;
  plan.levels.resize(static_cast<std::size_t>(levels));
  for (int l = 1; l <= levels; ++l) {
    LevelPlan lp = per_level[static_cast<std::size_t>(l - 1)];
    lp.eb_scale = level_eb_scale(l, alpha, beta);
    plan.levels[static_cast<std::size_t>(l - 1)] = lp;
  }

  Field<T> work(dims, std::vector<T>(data, data + dims.size()));
  LinearQuantizer<T> quant(cfg.error_bound, cfg.radius);
  auto res = InterpEngine<T>::encode(work.data(), dims, plan, cfg.error_bound,
                                     quant, cfg.qp, artifacts != nullptr);
  if (artifacts) {
    artifacts->codes = std::move(res.codes);
    artifacts->symbols_spatial = std::move(res.symbols_spatial);
  }

  ByteWriter inner;
  write_dims(inner, dims);
  inner.put(cfg.error_bound);
  inner.put(cfg.radius);
  cfg.qp.save(inner);
  plan.save(inner);
  quant.save(inner);
  inner.put_block(huffman_encode(res.symbols, cfg.pool));
  return seal_archive(CompressorId::kQoZ, dtype_tag<T>(), inner.bytes(),
                      cfg.pool);
}

namespace {

/// Shared decode path: `sink(dims)` maps the archived shape to the
/// destination buffer (allocating or validating, caller's choice).
template <class T, class Sink>
void qoz_decode_to(std::span<const std::uint8_t> archive, Sink&& sink,
                   ThreadPool* pool) {
  const auto inner =
      open_archive(archive, CompressorId::kQoZ, dtype_tag<T>(),
                   std::numeric_limits<std::uint64_t>::max(), pool);
  ByteReader r(inner);
  const Dims dims = read_dims(r);
  const double eb = r.get<double>();
  [[maybe_unused]] const std::int32_t radius = r.get<std::int32_t>();
  const QPConfig qp = QPConfig::load(r);
  const InterpPlan plan = InterpPlan::load(r);
  LinearQuantizer<T> quant(eb);
  quant.load(r);
  const std::vector<std::uint32_t> symbols = huffman_decode(r.get_block(), pool);

  T* out = sink(dims);
  InterpEngine<T>::decode(symbols, dims, plan, eb, quant, qp, out);
}

}  // namespace

template <class T>
Field<T> qoz_decompress(std::span<const std::uint8_t> archive,
                        ThreadPool* pool) {
  Field<T> out;
  qoz_decode_to<T>(
      archive,
      [&](const Dims& dims) {
        out = Field<T>(dims);
        return out.data();
      },
      pool);
  return out;
}

template <class T>
void qoz_decompress_into(std::span<const std::uint8_t> archive, T* out,
                         const Dims& expect, ThreadPool* pool) {
  qoz_decode_to<T>(
      archive,
      [&](const Dims& dims) -> T* {
        if (!(dims == expect))
          throw DecodeError("qoz: archive dims mismatch for decompress_into");
        return out;
      },
      pool);
}

template std::vector<std::uint8_t> qoz_compress<float>(
    const float*, const Dims&, const QoZConfig&, IndexArtifacts*);
template std::vector<std::uint8_t> qoz_compress<double>(
    const double*, const Dims&, const QoZConfig&, IndexArtifacts*);
template Field<float> qoz_decompress<float>(std::span<const std::uint8_t>,
                                            ThreadPool*);
template Field<double> qoz_decompress<double>(std::span<const std::uint8_t>,
                                              ThreadPool*);
template void qoz_decompress_into<float>(std::span<const std::uint8_t>, float*,
                                         const Dims&, ThreadPool*);
template void qoz_decompress_into<double>(std::span<const std::uint8_t>,
                                          double*, const Dims&, ThreadPool*);

}  // namespace qip
